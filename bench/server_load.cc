// Server load generator: N client threads hammer one in-process
// wake::Server with a mixed TPC-H workload over real loopback sockets,
// reporting throughput, latency percentiles, streaming overhead, and
// robustness counters as one JSON object (the BENCH_server.json format).
//
//   build/bench/server_load [--clients N] [--queries-per-client M]
//                           [--workers N] [--max-concurrent N] [--sf F]
//                           [--data gen|tbl|wakeblock] [--data-dir DIR]
//
// --data selects the table source: gen (default) generates TPC-H in
// memory at --sf; tbl reads every `<name>.meta` table from --data-dir;
// wakeblock opens --data-dir lazily (block-at-a-time scans with synopsis
// skipping) as written by wake_pack.
//
// Every result is checked byte-identical against the in-process answer,
// so the number reported is the throughput of *correct* remote serving,
// not of a path that quietly drops frames under load.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "storage/partitioned_table.h"
#include "storage/wakeblock.h"
#include "tpch/dbgen.h"
#include "tpch/queries_sql.h"

using namespace wake;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  size_t clients = 8;
  size_t per_client = 6;
  double sf = 0.02;
  std::string data = "gen";
  std::string data_dir;
  DbOptions db_options;
  db_options.max_concurrent_queries = 8;
  db_options.max_queued = 128;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      clients = static_cast<size_t>(std::atol(value()));
    } else if (arg == "--queries-per-client") {
      per_client = static_cast<size_t>(std::atol(value()));
    } else if (arg == "--workers") {
      db_options.workers = static_cast<size_t>(std::atol(value()));
    } else if (arg == "--max-concurrent") {
      db_options.max_concurrent_queries =
          static_cast<size_t>(std::atol(value()));
    } else if (arg == "--sf") {
      sf = std::atof(value());
    } else if (arg == "--data") {
      data = value();
    } else if (arg == "--data-dir") {
      data_dir = value();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (data != "gen" && data_dir.empty()) {
    std::fprintf(stderr, "--data %s needs --data-dir DIR\n", data.c_str());
    return 2;
  }

  Catalog catalog;
  if (data == "gen") {
    tpch::DbgenConfig cfg;
    cfg.scale_factor = sf;
    cfg.partitions = 8;
    catalog = tpch::Generate(cfg);
  } else if (data == "tbl") {
    catalog = OpenTblCatalog(data_dir);
  } else if (data == "wakeblock") {
    catalog = wakeblock::OpenCatalog(data_dir);
  } else {
    std::fprintf(stderr, "unknown --data '%s' (gen|tbl|wakeblock)\n",
                 data.c_str());
    return 2;
  }
  Db db(&catalog, db_options);
  Server server(&db);
  server.Start();

  // The mixed workload: cheap scans, joins, and a grouped aggregate.
  const std::vector<int> mix = {1, 3, 6, 12, 14, 19};
  std::vector<DataFrame> truth;
  truth.reserve(mix.size());
  for (int q : mix) truth.push_back(db.Prepare(tpch::QuerySql(q)).Execute());

  std::atomic<uint64_t> ok{0}, mismatched{0}, failed{0};
  std::atomic<uint64_t> snapshots{0}, retries{0};
  std::vector<double> latencies_ms(clients * per_client, 0.0);
  auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server.port();
      copts.client_name = "load-" + std::to_string(c);
      copts.jitter_seed = 0xB0B0ULL + c;
      Client client(copts);
      for (size_t j = 0; j < per_client; ++j) {
        size_t pick = (c + j) % mix.size();
        auto q0 = Clock::now();
        try {
          QueryResult result = client.Execute(tpch::QuerySql(mix[pick]));
          latencies_ms[c * per_client + j] = MsSince(q0);
          std::string diff;
          if (result.frame != nullptr &&
              result.frame->ApproxEquals(truth[pick], 0.0, &diff)) {
            ok.fetch_add(1);
          } else {
            mismatched.fetch_add(1);
            std::fprintf(stderr, "client %zu q%d diverged: %s\n", c,
                         mix[pick], diff.c_str());
          }
        } catch (const Error& e) {
          failed.fetch_add(1);
          std::fprintf(stderr, "client %zu q%d failed (%s): %s\n", c,
                       mix[pick], ErrorCategoryName(e.category()), e.what());
        }
      }
      ClientStats stats = client.stats();
      snapshots.fetch_add(stats.snapshots_received);
      retries.fetch_add(stats.execute_retries + stats.reconnects);
      client.Close();
    });
  }
  for (auto& t : threads) t.join();
  double wall_ms = MsSince(t0);
  ServerStats sstats = server.stats();
  server.Shutdown(5000);

  std::vector<double> sorted(latencies_ms);
  std::sort(sorted.begin(), sorted.end());
  uint64_t total = ok.load() + mismatched.load() + failed.load();
  std::printf(
      "{\"bench\":\"server_load\",\"clients\":%zu,"
      "\"queries_per_client\":%zu,\"scale_factor\":%.3f,"
      "\"host_cores\":%u,\"queries_total\":%llu,\"queries_ok\":%llu,"
      "\"queries_mismatched\":%llu,\"queries_failed\":%llu,"
      "\"wall_ms\":%.1f,\"queries_per_s\":%.2f,"
      "\"latency_p50_ms\":%.1f,\"latency_p90_ms\":%.1f,"
      "\"latency_p99_ms\":%.1f,\"snapshots_streamed\":%llu,"
      "\"client_retries\":%llu,\"server_snapshots_sent\":%llu,"
      "\"server_protocol_errors\":%llu,\"server_heartbeat_kills\":%llu}\n",
      clients, per_client, sf, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(ok.load()),
      static_cast<unsigned long long>(mismatched.load()),
      static_cast<unsigned long long>(failed.load()), wall_ms,
      1000.0 * static_cast<double>(total) / wall_ms,
      Percentile(sorted, 0.50), Percentile(sorted, 0.90),
      Percentile(sorted, 0.99),
      static_cast<unsigned long long>(snapshots.load()),
      static_cast<unsigned long long>(retries.load()),
      static_cast<unsigned long long>(sstats.snapshots_sent),
      static_cast<unsigned long long>(sstats.protocol_errors),
      static_cast<unsigned long long>(sstats.heartbeat_kills));
  return (mismatched.load() + failed.load()) == 0 ? 0 : 1;
}
