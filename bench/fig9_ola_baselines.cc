// Figure 9: approximation error over time against the OLA baselines.
//  (a) vs ProgressiveDB-style middleware on single-table Q1 and Q6 —
//      initial estimates comparable, Wake converges to <1% error faster
//      (paper: 2.5x faster).
//  (b) vs WanderJoin-style random walks on modified Q3, Q7, Q10 — first
//      estimates comparable, Wake reaches <1% error faster (paper: 1.51x)
//      and converges to exact while WanderJoin plateaus near 1%.
#include <cmath>
#include <cstdio>

#include "baseline/exact_engine.h"
#include "baseline/progressive_ola.h"
#include "baseline/wander_join.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

namespace {

struct Curve {
  std::vector<double> time_s;
  std::vector<double> err_pct;
  double TimeToError(double target_pct) const {
    for (size_t i = 0; i < time_s.size(); ++i) {
      if (err_pct[i] < target_pct) return time_s[i];
    }
    return time_s.empty() ? 0.0 : time_s.back();
  }
};

void PrintCurve(const char* label, const Curve& curve) {
  std::printf("  %s:\n    %10s %10s\n", label, "elapsed_s", "MAPE%");
  for (size_t i = 0; i < curve.time_s.size(); ++i) {
    std::printf("    %10.4f %10.5f\n", curve.time_s[i], curve.err_pct[i]);
  }
}

Curve WakeCurve(const Catalog& cat, const Plan& plan, const DataFrame& truth,
                size_t key_cols) {
  Curve curve;
  WakeEngine engine(const_cast<Catalog*>(&cat));
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final || s.frame->num_rows() == 0) return;
    curve.time_s.push_back(s.elapsed_seconds);
    curve.err_pct.push_back(bench::MapePercent(truth, *s.frame, key_cols));
  });
  return curve;
}

}  // namespace

int main() {
  const Catalog& cat = bench::BenchCatalog();

  std::printf("Figure 9a: Wake vs ProgressiveDB (modified Q1, Q6)\n");
  for (int q : {1, 6}) {
    Plan plan = tpch::ModifiedQuery(q);
    size_t key_cols = q == 1 ? 2 : 0;
    ExactEngine exact(&cat);
    DataFrame truth = exact.Execute(plan.node());

    Curve wake = WakeCurve(cat, plan, truth, key_cols);
    Curve pdb;
    ProgressiveOla ola(&cat);
    ola.Execute(plan.node(), [&](const OlaState& s) {
      pdb.time_s.push_back(s.elapsed_seconds);
      pdb.err_pct.push_back(bench::MapePercent(truth, *s.frame, key_cols));
    });

    std::printf("\nModified Q%d\n", q);
    PrintCurve("Wake", wake);
    PrintCurve("ProgressiveDB", pdb);
    std::printf("  time to <1%% error: wake=%.4fs progressivedb=%.4fs "
                "(wake %.2fx faster; paper: 2.5x)\n",
                wake.TimeToError(1.0), pdb.TimeToError(1.0),
                pdb.TimeToError(1.0) / std::max(wake.TimeToError(1.0), 1e-9));
  }

  std::printf("\nFigure 9b: Wake vs WanderJoin (modified Q3, Q7, Q10)\n");
  for (int q : {3, 7, 10}) {
    Plan plan = tpch::ModifiedQuery(q);
    ExactEngine exact(&cat);
    DataFrame truth = exact.Execute(plan.node());
    double truth_value = truth.column(0).DoubleAt(0);

    Curve wake = WakeCurve(cat, plan, truth, 0);
    Curve wj_curve;
    WanderJoin wj(&cat, WanderJoinTpchSpec(q), 17);
    wj.Run(400000, 10000, [&](const WanderJoin::Estimate& est) {
      wj_curve.time_s.push_back(est.elapsed_seconds);
      wj_curve.err_pct.push_back(
          100.0 * std::fabs(est.value - truth_value) /
          std::fabs(truth_value));
    });

    std::printf("\nModified Q%d (truth=%.2f)\n", q, truth_value);
    PrintCurve("Wake", wake);
    std::printf("  WanderJoin (every 50k walks):\n    %10s %10s\n",
                "elapsed_s", "err%");
    for (size_t i = 4; i < wj_curve.time_s.size(); i += 5) {
      std::printf("    %10.4f %10.5f\n", wj_curve.time_s[i],
                  wj_curve.err_pct[i]);
    }
    std::printf(
        "  time to <1%% error: wake=%.4fs wanderjoin=%.4fs (wake %.2fx "
        "faster; paper: 1.51x)\n  final error: wake=%.5f%% (exact) "
        "wanderjoin=%.5f%% (plateaus; paper: ~1%%)\n",
        wake.TimeToError(1.0), wj_curve.TimeToError(1.0),
        wj_curve.TimeToError(1.0) / std::max(wake.TimeToError(1.0), 1e-9),
        wake.err_pct.empty() ? 0.0 : wake.err_pct.back(),
        wj_curve.err_pct.empty() ? 0.0 : wj_curve.err_pct.back());
  }
  return 0;
}
