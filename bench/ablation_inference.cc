// Ablation: growth-based inference vs naive linear scaling (DESIGN.md).
//
// Wake's cardinality estimator fits the growth power w online (§5.2); the
// obvious simpler choice is the classic OLA 1/t scale-up (w = 1). This
// ablation runs aggregation-over-aggregation workloads where group
// cardinality growth is *not* linear and reports the intermediate-state
// error of both policies:
//   - Q13-style (count per customer, then a distribution over counts):
//     the outer input grows sublinearly;
//   - a global sum over a per-key aggregate (deep Q18-style);
//   - flat-growth Q1, where both policies should coincide.
#include <cmath>
#include <cstdio>

#include "baseline/exact_engine.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

namespace {

struct ErrorSummary {
  double mean_mape = 0;
  double final_mape = 0;
};

ErrorSummary RunWith(const Catalog& cat, const Plan& plan,
                     const DataFrame& truth, size_t key_cols,
                     double fixed_w) {
  WakeOptions options;
  options.fixed_growth_w = fixed_w;
  WakeEngine engine(const_cast<Catalog*>(&cat), options);
  double total = 0, last = 0;
  size_t n = 0;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final || s.frame->num_rows() == 0) return;
    double err = bench::MapePercent(truth, *s.frame, key_cols);
    total += err;
    last = err;
    ++n;
  });
  return {n == 0 ? 0.0 : total / n, last};
}

void Compare(const char* label, const Catalog& cat, const Plan& plan,
             size_t key_cols) {
  ExactEngine exact(&cat);
  DataFrame truth = exact.Execute(plan.node());
  ErrorSummary fitted = RunWith(cat, plan, truth, key_cols, -1.0);
  ErrorSummary naive = RunWith(cat, plan, truth, key_cols, 1.0);
  ErrorSummary frozen = RunWith(cat, plan, truth, key_cols, 0.0);
  std::printf(
      "%-28s meanMAPE%%: fitted=%8.3f  naive(w=1)=%8.3f  none(w=0)=%8.3f\n",
      label, fitted.mean_mape, naive.mean_mape, frozen.mean_mape);
}

}  // namespace

int main() {
  const Catalog& cat = bench::BenchCatalog();
  std::printf("Ablation: growth-based inference (fitted w) vs fixed "
              "scaling policies\n\n");

  // Sub-linear growth: the count-distribution of Q13. Naive 1/t scaling
  // over-extrapolates the per-count group sizes early on.
  Compare("Q13 distribution", cat, tpch::Query(13), 1);

  // Deep aggregate: global sum over a per-supplier aggregate (Q15 head).
  Plan deep = Plan::Scan("lineitem")
                  .Derive({{"rev", Expr::Col("l_extendedprice") *
                                       (Expr::Float(1.0) -
                                        Expr::Col("l_discount"))}})
                  .Aggregate({"l_suppkey"}, {Sum("rev", "total")})
                  .Aggregate({}, {Sum("total", "grand")});
  Compare("sum over per-supp agg", cat, deep, 0);

  // Flat growth (low-cardinality groups): policies should coincide.
  Compare("Q1 (flat growth)", cat, tpch::Query(1), 2);

  std::printf(
      "\n(fitted should track the best column per row; naive w=1 is the\n"
      "classic OLA scale-up, wrong when group growth is sub-linear; w=0\n"
      "never extrapolates and underestimates growing aggregates)\n");
  return 0;
}
