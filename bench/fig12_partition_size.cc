// Figure 12: impact of partition size on final-result latency (§8.7).
//
// The paper sweeps 128 MB..2048 MB Parquet partitions; here the knob is
// rows-per-partition via the partition count. Reported per query: final
// latency at each partition count as a multiple of the query's best
// latency. Expected shape: queries with large merge overhead (Q13, Q15,
// Q22: many-group shuffle aggregations) improve markedly with fewer,
// larger partitions; low-merge queries (Q4, Q19, Q21) are mostly flat.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

int main() {
  const std::vector<size_t> partition_counts = {48, 24, 12, 6, 3};
  const std::vector<int> queries = {4, 19, 21, 13, 15, 22};

  // One catalog per partition count (the Fig 12 x-axis).
  const Catalog& base = bench::BenchCatalog();
  std::map<size_t, Catalog> catalogs;
  for (size_t parts : partition_counts) {
    Catalog cat;
    for (const auto& name : base.TableNames()) {
      size_t n = name == "lineitem" || name == "orders"
                     ? parts
                     : std::max<size_t>(1, parts / 2);
      cat.Add(std::make_shared<PartitionedTable>(
          base.Get(name).Repartition(n)));
    }
    catalogs.emplace(parts, std::move(cat));
  }

  std::printf("Figure 12: final-result latency vs partition count "
              "(more partitions = smaller partitions)\n%6s", "query");
  for (size_t parts : partition_counts) {
    std::printf(" %9zu", parts);
  }
  std::printf("  (columns = lineitem partition count)\n");

  for (int q : queries) {
    std::map<size_t, double> latency;
    double best = 1e100;
    for (size_t parts : partition_counts) {
      WakeEngine engine(&catalogs.at(parts));
      double final_s = 0;
      engine.Execute(tpch::Query(q).node(), [&](const OlaState& s) {
        if (s.is_final) final_s = s.elapsed_seconds;
      });
      latency[parts] = final_s;
      best = std::min(best, final_s);
    }
    std::printf("q%-5d", q);
    for (size_t parts : partition_counts) {
      std::printf(" %8.2fx", latency[parts] / best);
    }
    std::printf("   best=%.4fs\n", best);
  }
  std::printf("\n(green/low-merge: q4,q19,q21 should be flat; "
              "red/high-merge: q13,q15,q22 favor larger partitions)\n");
  return 0;
}
