// Figure 8: Wake's approximation error (MAPE) and recall over time for the
// three query categories of §8.3:
//   Q8  — low-cardinality non-clustering group-by: MAPE decreases, recall
//         reaches 100% early;
//   Q18 — clustering group-by keys: MAPE 0, recall grows linearly;
//   Q21 — mixed: recall rises quickly, MAPE falls more slowly.
#include <cstdio>

#include "baseline/exact_engine.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

int main() {
  const Catalog& cat = bench::BenchCatalog();
  for (int q : {8, 18, 21}) {
    Plan plan = tpch::Query(q);
    size_t key_cols = bench::QueryKeyColumns(q);
    ExactEngine exact(&cat);
    DataFrame truth = exact.Execute(plan.node());

    std::printf("Figure 8, Q%d (truth rows=%zu)\n%10s %10s %10s %10s\n", q,
                truth.num_rows(), "elapsed_s", "progress", "MAPE%",
                "recall%");
    WakeEngine engine(&cat);
    engine.Execute(plan.node(), [&](const OlaState& s) {
      if (s.is_final) return;
      double mape = truth.num_rows() == 0
                        ? 0.0
                        : bench::MapePercent(truth, *s.frame, key_cols);
      double recall = 100.0 * bench::Recall(truth, *s.frame, key_cols);
      std::printf("%10.4f %10.3f %10.4f %10.1f\n", s.elapsed_seconds,
                  s.progress, mape, recall);
    });
    std::printf("\n");
  }
  return 0;
}
