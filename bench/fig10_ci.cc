// Figure 10: confidence-interval convergence and correctness on Q14.
//
// The input partitions are shuffled to simulate unexpected arrival orders
// (§8.5). (a) the 95% Chebyshev CI around promo_revenue converges toward
// the estimate; (b) the relative CI range |err|/(kσ) stays below 1 (P95
// must not cross), conservative early because k ≈ 4.47.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/exact_engine.h"
#include "bench/bench_util.h"
#include "core/ci.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

int main() {
  constexpr double kConfidence = 0.95;
  const Catalog& base = bench::BenchCatalog();
  Plan plan = tpch::Query(14);
  ExactEngine exact(&base);
  double truth = exact.Execute(plan.node()).column(0).DoubleAt(0);

  std::printf(
      "Figure 10: 95%% CI on Q14 promo_revenue (k=%.2f, truth=%.4f)\n",
      ChebyshevK(kConfidence), truth);

  std::vector<double> rel_ranges;
  constexpr int kRuns = 5;
  for (int run = 0; run < kRuns; ++run) {
    Catalog shuffled;
    for (const auto& name : base.TableNames()) {
      shuffled.Add(std::make_shared<PartitionedTable>(
          base.Get(name).ShufflePartitions(900 + run)));
    }
    WakeOptions options;
    options.with_ci = true;
    WakeEngine engine(&shuffled, options);
    if (run == 0) {
      std::printf("run 0 trajectory:\n%6s %12s %12s %12s %10s\n", "state",
                  "estimate", "ci_lo", "ci_hi", "rel_range");
    }
    int state_idx = 0;
    engine.Execute(plan.node(), [&](const OlaState& s) {
      if (s.is_final || s.frame->num_rows() == 0) return;
      double est = s.frame->ColumnByName("promo_revenue").DoubleAt(0);
      double var = 0.0;
      if (s.variances != nullptr) {
        auto it = s.variances->find("promo_revenue");
        if (it != s.variances->end() && !it->second.empty()) {
          var = it->second[0];
        }
      }
      if (var <= 0.0) return;  // growth model not yet fitted
      ConfidenceInterval ci = ChebyshevInterval(est, var, kConfidence);
      double rel = RelativeCiRange(est, truth, var, kConfidence);
      rel_ranges.push_back(rel);
      if (run == 0) {
        std::printf("%6d %12.4f %12.4f %12.4f %10.4f\n", state_idx, est,
                    ci.lo, ci.hi, rel);
      }
      ++state_idx;
    });
  }

  std::sort(rel_ranges.begin(), rel_ranges.end());
  auto pct = [&](double p) {
    if (rel_ranges.empty()) return 0.0;
    size_t idx = std::min(rel_ranges.size() - 1,
                          static_cast<size_t>(p * rel_ranges.size()));
    return rel_ranges[idx];
  };
  double sum = 0;
  for (double r : rel_ranges) sum += r;
  std::printf(
      "\nacross %d shuffled runs, %zu CI states:\n"
      "  avg rel CI range: %.4f\n  P95 rel CI range: %.4f  (must not cross "
      "1.0)\n  max rel CI range: %.4f\n",
      kRuns, rel_ranges.size(), rel_ranges.empty() ? 0.0 : sum / rel_ranges.size(),
      pct(0.95), rel_ranges.empty() ? 0.0 : rel_ranges.back());
  return 0;
}
