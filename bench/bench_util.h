// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every bench binary prints the rows/series of one table or figure from
// the paper's evaluation (§8). Scale factor and partition count default to
// laptop-friendly values and can be overridden via WAKE_BENCH_SF /
// WAKE_BENCH_PARTITIONS environment variables.
#ifndef WAKE_BENCH_BENCH_UTIL_H_
#define WAKE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "tpch/dbgen.h"

namespace wake {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<size_t>(std::atoll(v)) : fallback;
}

inline double BenchScaleFactor() { return EnvDouble("WAKE_BENCH_SF", 0.05); }
inline size_t BenchPartitions() {
  return EnvSize("WAKE_BENCH_PARTITIONS", 12);
}

/// Generates (once) and returns the benchmark TPC-H catalog.
inline const Catalog& BenchCatalog() {
  static const Catalog catalog = [] {
    tpch::DbgenConfig cfg;
    cfg.scale_factor = BenchScaleFactor();
    cfg.partitions = BenchPartitions();
    std::fprintf(stderr, "[bench] generating TPC-H SF=%.3f partitions=%zu\n",
                 cfg.scale_factor, cfg.partitions);
    return tpch::Generate(cfg);
  }();
  return catalog;
}

/// Row key over the first `key_cols` columns.
inline std::string RowKey(const DataFrame& df, size_t row, size_t key_cols) {
  std::string key;
  for (size_t c = 0; c < key_cols; ++c) {
    key += df.column(c).GetValue(row).ToString();
    key += '|';
  }
  return key;
}

/// MAPE (%) of `got` vs `truth` over numeric columns past `key_cols`.
inline double MapePercent(const DataFrame& truth, const DataFrame& got,
                          size_t key_cols) {
  std::map<std::string, size_t> truth_row;
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    truth_row[RowKey(truth, r, key_cols)] = r;
  }
  double total = 0;
  size_t n = 0;
  for (size_t r = 0; r < got.num_rows(); ++r) {
    auto it = truth_row.find(RowKey(got, r, key_cols));
    if (it == truth_row.end()) continue;
    for (size_t c = key_cols; c < truth.num_columns(); ++c) {
      if (truth.column(c).type() == ValueType::kString) continue;
      double want = truth.column(c).DoubleAt(it->second);
      if (want == 0.0) continue;
      total +=
          std::fabs(got.column(c).DoubleAt(r) - want) / std::fabs(want);
      ++n;
    }
  }
  return n == 0 ? 100.0 : 100.0 * total / n;
}

/// Fraction of truth groups present in `got`.
inline double Recall(const DataFrame& truth, const DataFrame& got,
                     size_t key_cols) {
  if (truth.num_rows() == 0) return 1.0;
  std::map<std::string, bool> found;
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    found[RowKey(truth, r, key_cols)] = false;
  }
  for (size_t r = 0; r < got.num_rows(); ++r) {
    auto it = found.find(RowKey(got, r, key_cols));
    if (it != found.end()) it->second = true;
  }
  size_t hit = 0;
  for (const auto& [_, v] : found) hit += v;
  return static_cast<double>(hit) / static_cast<double>(found.size());
}

/// Number of group-by key columns in the final result of TPC-H query q
/// (columns before the aggregates; used to match rows for MAPE/recall).
inline size_t QueryKeyColumns(int q) {
  switch (q) {
    case 1: return 2;   // returnflag, linestatus
    case 2: return 8;   // full projection (keyless compare)
    case 3: return 3;
    case 4: return 1;
    case 5: return 1;
    case 7: return 3;
    case 8: return 1;
    case 9: return 2;
    case 10: return 7;
    case 11: return 1;
    case 12: return 1;
    case 13: return 1;
    case 16: return 3;
    case 18: return 5;
    case 21: return 1;
    case 22: return 1;
    default: return 0;  // single-row / global aggregates
  }
}

inline double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace bench
}  // namespace wake

#endif  // WAKE_BENCH_BENCH_UTIL_H_
