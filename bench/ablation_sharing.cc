// Ablation: shared-subplan execution vs duplicated execution (§7.3).
//
// Q11, Q15, Q17, and Q22 reference a subplan twice (a view consumed by
// both an aggregate and a join). With sharing, the subplan runs once and
// broadcasts; without, it executes once per parent — extra scans, builds,
// and aggregation state, like OLA systems without plan reuse.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

namespace {

double FinalLatency(const Catalog& cat, const Plan& plan, bool share) {
  WakeOptions options;
  options.share_subplans = share;
  WakeEngine engine(const_cast<Catalog*>(&cat), options);
  double final_s = 0;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) final_s = s.elapsed_seconds;
  });
  return final_s;
}

}  // namespace

int main() {
  const Catalog& cat = bench::BenchCatalog();
  std::printf("Ablation: shared subplans vs duplicated execution\n"
              "%6s %12s %12s %10s\n",
              "query", "shared_s", "duplicate_s", "speedup");
  for (int q : {11, 15, 17, 22}) {
    Plan plan = tpch::Query(q);
    // Warm-up pass to stabilize the page cache and allocator.
    FinalLatency(cat, plan, true);
    double shared = FinalLatency(cat, plan, true);
    double duplicated = FinalLatency(cat, plan, false);
    std::printf("q%-5d %12.4f %12.4f %9.2fx\n", q, shared, duplicated,
                duplicated / std::max(shared, 1e-9));
  }
  std::printf("\n(duplicate_s >= shared_s expected: without reuse, the\n"
              "doubly-referenced view scans and aggregates twice)\n");
  return 0;
}
