// Micro-benchmarks (google-benchmark) for the hot kernels: grouped
// aggregation merge, growth-model fitting, aggregate estimators, hash-join
// probe, expression evaluation, sorting, LIKE matching, and channel
// throughput. These quantify the per-partial costs behind Fig 11/12.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>

#include "api/db.h"
#include "common/channel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/worker_pool.h"
#include "core/agg_state.h"
#include "core/growth.h"
#include "core/inference.h"
#include "core/join_kernel.h"
#include "ingest/live_table.h"
#include "plan/props.h"
#include "storage/wakeblock.h"
#include "tpch/dbgen.h"

namespace wake {
namespace {

DataFrame MakeFact(size_t rows, int64_t groups, uint64_t seed = 11) {
  Schema schema({{"g", ValueType::kInt64}, {"v", ValueType::kFloat64}});
  DataFrame df(schema);
  Rng rng(seed);
  df.mutable_column(0)->Reserve(rows);
  df.mutable_column(1)->Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    df.mutable_column(0)->AppendInt(rng.UniformInt(0, groups - 1));
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(0, 100));
  }
  return df;
}

void BM_GroupedAggMerge(benchmark::State& state) {
  size_t rows = 64 * 1024;
  int64_t groups = state.range(0);
  DataFrame partial = MakeFact(rows, groups);
  Schema in = partial.schema();
  std::vector<AggSpec> aggs = {Sum("v", "s"), Count("n"), Avg("v", "a")};
  for (auto _ : state) {
    GroupedAggState agg({"g"}, aggs, in, AggOutputSchema(in, {"g"}, aggs));
    agg.Consume(partial);
    benchmark::DoNotOptimize(agg.Finalize(AggScaling{}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) * state.iterations());
}
BENCHMARK(BM_GroupedAggMerge)->Arg(4)->Arg(256)->Arg(16384);

void BM_GbiFinalize(benchmark::State& state) {
  DataFrame partial = MakeFact(64 * 1024, state.range(0));
  Schema in = partial.schema();
  std::vector<AggSpec> aggs = {Sum("v", "s"), Count("n")};
  GroupedAggState agg({"g"}, aggs, in, AggOutputSchema(in, {"g"}, aggs));
  agg.Consume(partial);
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.25;
  scaling.w = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Finalize(scaling));
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_GbiFinalize)->Arg(256)->Arg(16384);

void BM_GrowthModelObserve(benchmark::State& state) {
  GrowthModel model;
  double t = 0.001;
  for (auto _ : state) {
    model.Observe(t, 100.0 * t);
    t = t >= 1.0 ? 0.001 : t + 0.001;
    benchmark::DoNotOptimize(model.w());
  }
}
BENCHMARK(BM_GrowthModelObserve);

void BM_CountDistinctEstimator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateCountDistinct(120.0, 200.0, 1000.0));
  }
}
BENCHMARK(BM_CountDistinctEstimator);

void BM_HashJoinProbe(benchmark::State& state) {
  DataFrame build = MakeFact(static_cast<size_t>(state.range(0)), 1 << 16, 3);
  // Rename the build columns so the join output has no name collisions.
  Schema build_schema({{"bk", ValueType::kInt64},
                       {"bv", ValueType::kFloat64}});
  DataFrame renamed(build_schema);
  *renamed.mutable_column(0) = build.column(0);
  *renamed.mutable_column(1) = build.column(1);
  JoinHashTable table(build_schema, {"bk"});
  table.Insert(renamed);
  DataFrame probe = MakeFact(64 * 1024, 1 << 16, 5);
  Schema out = JoinOutputSchema(probe.schema(), build_schema, {"bk"},
                                JoinType::kInner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Probe(probe, {"g"}, JoinType::kInner, out));
  }
  state.SetItemsProcessed(64 * 1024 * state.iterations());
}
BENCHMARK(BM_HashJoinProbe)->Arg(1 << 12)->Arg(1 << 16);

void BM_HashJoinBuild(benchmark::State& state) {
  Schema build_schema({{"bk", ValueType::kInt64},
                       {"bv", ValueType::kFloat64}});
  DataFrame fact = MakeFact(static_cast<size_t>(state.range(0)), 1 << 16, 3);
  DataFrame build(build_schema);
  *build.mutable_column(0) = fact.column(0);
  *build.mutable_column(1) = fact.column(1);
  for (auto _ : state) {
    JoinHashTable table(build_schema, {"bk"});
    table.Insert(build);
    benchmark::DoNotOptimize(table.num_rows());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_HashJoinBuild)->Arg(1 << 12)->Arg(1 << 16);

void BM_ExprEval(benchmark::State& state) {
  DataFrame df = MakeFact(64 * 1024, 100);
  ExprPtr expr =
      Expr::And(Gt(Expr::Col("v"), Expr::Float(25.0)),
                Lt(Expr::Col("v") * Expr::Float(1.1), Expr::Float(95.0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Eval(df));
  }
  state.SetItemsProcessed(64 * 1024 * state.iterations());
}
BENCHMARK(BM_ExprEval);

void BM_SortBy(benchmark::State& state) {
  DataFrame df = MakeFact(static_cast<size_t>(state.range(0)), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(df.SortBy({{"v", true}, {"g", false}}));
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_SortBy)->Arg(1 << 12)->Arg(1 << 16);

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "carefully final deposits sleep special packages requests";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, "%special%requests%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_ChannelThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Channel<int> ch;
    std::thread producer([&] {
      for (int i = 0; i < 10000; ++i) ch.Send(i);
      ch.Close();
    });
    long total = 0;
    while (auto v = ch.Receive()) total += *v;
    producer.join();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(BM_ChannelThroughput);

}  // namespace

// ---------------------------------------------------------------------------
// One-line JSON mode (`micro_ops --json`): times the three hot kernels —
// join_build, join_probe, group_by — on a fixed workload, with int keys and
// string keys (plain vs dict-encoded), and prints a single JSON object (the
// BENCH_micro_ops.json format) so the perf trajectory of these kernels can
// be tracked across PRs.
// ---------------------------------------------------------------------------

double BestMrowsPerSec(size_t rows_per_run, const std::function<void()>& fn) {
  // Warm up once, then take the best of 5 timed runs (min wall time).
  fn();
  double best_sec = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best_sec = std::min(best_sec, elapsed.count());
  }
  return static_cast<double>(rows_per_run) / best_sec / 1e6;
}

// Dict-encoded pool of `keys` distinct "Customer#%09d"-style strings
// (18 chars — heap-allocated under libstdc++ SSO, like real TPC-H
// name/phone columns).
Column MakeStringPool(int64_t keys) {
  std::vector<std::string> pool(static_cast<size_t>(keys));
  for (int64_t k = 0; k < keys; ++k) {
    pool[static_cast<size_t>(k)] =
        StrFormat("Customer#%09lld", static_cast<long long>(k));
  }
  return Column::DictFromStrings(pool);
}

// Key column of `rows` random draws from the pool. Every column gathered
// from one pool shares its dict, mirroring partials of one source table;
// callers DecodeDict() for the plain-encoding baseline.
Column MakeStringKeys(const Column& pool, size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> idx(rows);
  for (size_t i = 0; i < rows; ++i) {
    idx[i] = static_cast<uint32_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
  }
  return pool.Take(idx);
}

struct KernelRates {
  double join_build = 0.0;
  double join_probe = 0.0;
  double group_by = 0.0;
};

// Times the three kernels over the given key columns (int, plain string,
// or dict string — the kernels are encoding-agnostic).
KernelRates MeasureKernels(size_t rows, Column build_keys, Column probe_keys,
                           Column group_keys) {
  KernelRates rates;
  ValueType key_type = build_keys.type();
  Schema build_schema({{"bk", key_type}, {"bv", ValueType::kFloat64}});
  DataFrame vals = MakeFact(rows, 1, 3);  // "v" payload column
  DataFrame build(build_schema);
  *build.mutable_column(0) = std::move(build_keys);
  *build.mutable_column(1) = vals.column(1);

  rates.join_build = BestMrowsPerSec(rows, [&] {
    JoinHashTable table(build_schema, {"bk"});
    table.Insert(build);
  });

  Schema probe_schema({{"g", key_type}, {"v", ValueType::kFloat64}});
  DataFrame probe(probe_schema);
  *probe.mutable_column(0) = std::move(probe_keys);
  *probe.mutable_column(1) = vals.column(1);
  JoinHashTable table(build_schema, {"bk"});
  // Quarter-size build keeps the probe output (~4 matches/key) bounded.
  table.Insert(build.Slice(0, rows / 4));
  Schema out_schema = JoinOutputSchema(probe_schema, build_schema, {"bk"},
                                       JoinType::kInner);
  rates.join_probe = BestMrowsPerSec(rows, [&] {
    DataFrame out = table.Probe(probe, {"g"}, JoinType::kInner, out_schema);
    if (out.num_rows() == 0) std::abort();
  });

  DataFrame agg_in(probe_schema);
  *agg_in.mutable_column(0) = std::move(group_keys);
  *agg_in.mutable_column(1) = vals.column(1);
  std::vector<AggSpec> aggs = {Sum("v", "s"), Count("n"), Avg("v", "a")};
  Schema agg_out = AggOutputSchema(probe_schema, {"g"}, aggs);
  rates.group_by = BestMrowsPerSec(rows, [&] {
    GroupedAggState agg({"g"}, aggs, probe_schema, agg_out);
    agg.Consume(agg_in);
    if (agg.num_groups() == 0) std::abort();
  });
  return rates;
}

// Morsel-parallel kernel rates at a given worker count: join_probe over a
// shared read-mostly table, group_by through the hash-sharded state. The
// outputs are byte-identical across worker counts (verified by
// core_parallel_exec_test / core_agg_merge_test); only wall time changes.
struct WorkerRates {
  double join_probe = 0.0;
  double group_by = 0.0;
};

WorkerRates MeasureWorkers(size_t rows, size_t workers,
                           const DataFrame& build, const DataFrame& probe,
                           const DataFrame& agg_in) {
  WorkerRates rates;
  WorkerPool pool(workers);
  WorkerPool* p = workers > 1 ? &pool : nullptr;

  Schema build_schema = build.schema();
  JoinHashTable table(build_schema, {"bk"});
  table.Insert(build.Slice(0, rows / 4));
  Schema out_schema = JoinOutputSchema(probe.schema(), build_schema, {"bk"},
                                       JoinType::kInner);
  rates.join_probe = BestMrowsPerSec(rows, [&] {
    DataFrame out = table.Probe(probe, {"g"}, JoinType::kInner, out_schema,
                                nullptr, nullptr, p);
    if (out.num_rows() == 0) std::abort();
  });

  std::vector<AggSpec> aggs = {Sum("v", "s"), Count("n"), Avg("v", "a")};
  Schema agg_out = AggOutputSchema(agg_in.schema(), {"g"}, aggs);
  GroupedAggState agg({"g"}, aggs, agg_in.schema(), agg_out);
  agg.EnableSharding(p);
  // Warm-up consume: the first large partial runs serially and triggers
  // the split; timed consumes measure the steady-state sharded path.
  agg.Consume(agg_in);
  rates.group_by = BestMrowsPerSec(rows, [&] { agg.Consume(agg_in); });
  if (agg.num_groups() == 0) std::abort();
  return rates;
}

// Storage read paths over TPC-H lineitem (16 columns):
//   scan_full       parse the .tbl text format, all columns
//   scan_pruned     .tbl with the Q6-style four-column projection the
//                   optimizer's scan-projection pass emits (the win is
//                   the parsing, allocation, and dict-interning of the
//                   12 untouched columns)
//   scan_columnar   full scan of the wakeblock native columnar format:
//                   every block of every column decoded through the same
//                   lazy-table chunk path the engines use. The table is
//                   opened once outside the loop — engines hold tables
//                   open in the catalog, so per-query scan cost excludes
//                   the one-time meta/dictionary load
//   scan_columnar_skip  projected wakeblock scan with a clustered
//                   l_orderkey range predicate: block min/max synopses
//                   refute ~97% of the blocks, which are never read —
//                   the rate counts the rows the scan covered, so the
//                   speedup over scan_columnar is the skipping win
struct ScanRates {
  double scan_full = 0.0;
  double scan_pruned = 0.0;
  double scan_columnar = 0.0;
  double scan_columnar_skip = 0.0;
};

ScanRates MeasureScan() {
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.02;
  cfg.partitions = 4;
  PartitionedTable lineitem = tpch::GenerateTable(cfg, "lineitem");
  auto dir = std::filesystem::temp_directory_path() /
             ("wake_micro_scan_" + std::to_string(::getpid()));
  lineitem.WriteTblDir(dir.string());
  const std::vector<std::string> pruned = {"l_orderkey", "l_extendedprice",
                                           "l_discount", "l_shipdate"};
  size_t rows = lineitem.total_rows();
  ScanRates rates;
  rates.scan_full = BestMrowsPerSec(rows, [&] {
    if (PartitionedTable::ReadTblDir(dir.string(), "lineitem")
            .total_rows() != rows) {
      std::abort();
    }
  });
  rates.scan_pruned = BestMrowsPerSec(rows, [&] {
    if (PartitionedTable::ReadTblDir(dir.string(), "lineitem", pruned)
            .total_rows() != rows) {
      std::abort();
    }
  });

  auto wb_dir = dir / "wakeblock";
  wakeblock::Write(lineitem, wb_dir.string());
  PartitionedTable lazy =
      PartitionedTable::OpenWakeblock(wb_dir.string(), "lineitem");
  rates.scan_columnar = BestMrowsPerSec(rows, [&] {
    if (lazy.Materialize({}, nullptr).num_rows() != rows) std::abort();
  });

  // lineitem is clustered by l_orderkey, so a narrow key range maps to a
  // narrow block range and every other block's min/max refutes it.
  int64_t max_key = 0;
  {
    DataFrame keys = lineitem.Materialize({"l_orderkey"});
    const Column& col = keys.column(0);
    for (size_t r = 0; r < col.size(); ++r) {
      max_key = std::max(max_key, col.IntAt(r));
    }
  }
  ExprPtr filter = Lt(Expr::Col("l_orderkey"), Expr::Int(max_key / 32 + 1));
  rates.scan_columnar_skip = BestMrowsPerSec(rows, [&] {
    if (lazy.Materialize(pruned, filter).num_rows() >= rows) std::abort();
  });
  // The rate above is only meaningful if blocks really were skipped.
  wakeblock::ScanStats stats = lazy.block_source()->stats();
  if (stats.blocks_skipped == 0) std::abort();

  std::filesystem::remove_all(dir);
  return rates;
}

// Nullable fact variant: ~1/16 of the rows in each column are null, so
// the null-aware kernels run their mixed-word paths, not just the
// all-valid fast path.
DataFrame MakeFactNullable(size_t rows, int64_t groups, uint64_t seed = 11) {
  DataFrame df = MakeFact(rows, groups, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < rows; ++i) {
    if (rng.UniformInt(0, 15) == 0) df.mutable_column(0)->SetNull(i);
    if (rng.UniformInt(0, 15) == 0) df.mutable_column(1)->SetNull(i);
  }
  return df;
}

// Filter + hash kernel rates over nullable input:
//   expr_filter_scalar  the pre-bitmap baseline — per-row IsValid byte
//                       mask, then the byte-mask FilterBy
//   expr_filter         the selection kernel — truth words off the
//                       validity bitmap, popcount-sized gather
//   null_hash_scalar    per-row HashRow over the key columns
//   null_hash           column-at-a-time HashInto (word-wise null path)
struct ExprFilterRates {
  double expr_filter_scalar = 0.0;
  double expr_filter = 0.0;
  double null_hash_scalar = 0.0;
  double null_hash = 0.0;
};

ExprFilterRates MeasureExprFilter(size_t rows) {
  DataFrame df = MakeFactNullable(rows, 100, 11);
  ExprPtr expr =
      Expr::And(Gt(Expr::Col("v"), Expr::Float(25.0)),
                Lt(Expr::Col("v") * Expr::Float(1.1), Expr::Float(95.0)));
  ExprFilterRates rates;
  rates.expr_filter_scalar = BestMrowsPerSec(rows, [&] {
    Column mask_col = expr->Eval(df);
    std::vector<uint8_t> mask(mask_col.size());
    for (size_t i = 0; i < mask.size(); ++i) {
      mask[i] = (mask_col.IsValid(i) && mask_col.ints()[i] != 0) ? 1 : 0;
    }
    if (df.FilterBy(mask).num_rows() == 0) std::abort();
  });
  rates.expr_filter = BestMrowsPerSec(rows, [&] {
    if (df.FilterBy(expr->Eval(df)).num_rows() == 0) std::abort();
  });

  const std::vector<size_t> key_cols = {0, 1};
  std::vector<uint64_t> hashes;
  uint64_t sink = 0;
  rates.null_hash_scalar = BestMrowsPerSec(rows, [&] {
    for (size_t r = 0; r < rows; ++r) sink ^= df.HashRowKeys(key_cols, r);
  });
  rates.null_hash = BestMrowsPerSec(rows, [&] {
    df.HashRowsBatch(key_cols, &hashes);
    sink ^= hashes[rows - 1];
  });
  if (sink == 0xdeadbeef) std::abort();  // keep the hashing live
  return rates;
}

// Live-ingest write path, batched appends of the MakeFact feed:
//   ingest_append    LiveTable::Append + seal/flush alone (durable
//                    wakeblock tablets land on disk as rows stream in)
//   ingest_standing  same stream with a standing grouped aggregate
//                    refreshed after every batch — the delta over
//                    ingest_append is the incremental fold cost per
//                    emitted snapshot epoch
struct IngestRates {
  double ingest_append = 0.0;
  double ingest_standing = 0.0;
};

IngestRates MeasureIngest(size_t rows) {
  constexpr size_t kBatch = 4096;
  DataFrame feed = MakeFact(rows, 1 << 10, 9);
  auto dir = std::filesystem::temp_directory_path() /
             ("wake_micro_ingest_" + std::to_string(::getpid()));
  LiveTableOptions opts;
  opts.seal_rows = 64 * 1024;
  opts.spill_dir = dir.string();

  IngestRates rates;
  rates.ingest_append = BestMrowsPerSec(rows, [&] {
    std::filesystem::remove_all(dir);
    LiveTable live("feed", feed.schema(), opts);
    for (size_t at = 0; at < rows; at += kBatch) {
      live.Append(feed.Slice(at, std::min(at + kBatch, rows)));
    }
    if (live.stats().rows_appended != rows) std::abort();
  });

  Plan plan =
      Plan::Scan("feed").Aggregate({"g"}, {Sum("v", "s"), Count("n")});
  rates.ingest_standing = BestMrowsPerSec(rows, [&] {
    std::filesystem::remove_all(dir);
    auto live = std::make_shared<LiveTable>("feed", feed.schema(), opts);
    Catalog catalog;
    catalog.AddDynamic(live);
    Db db(&catalog);
    auto sub = db.Subscribe(plan);
    for (size_t at = 0; at < rows; at += kBatch) {
      live->Append(feed.Slice(at, std::min(at + kBatch, rows)));
      sub->Refresh();
    }
    if (sub->Current().rows_covered != rows) std::abort();
  });
  std::filesystem::remove_all(dir);
  return rates;
}

int RunMicroJson() {
  constexpr size_t kRows = 1 << 18;     // 256k rows per kernel invocation
  constexpr int64_t kJoinKeys = 1 << 16;
  constexpr int64_t kGroups = 1 << 14;

  DataFrame fact = MakeFact(kRows, kJoinKeys, 3);
  DataFrame probe = MakeFact(kRows, kJoinKeys, 5);
  DataFrame agg_in = MakeFact(kRows, kGroups, 7);
  KernelRates ints = MeasureKernels(kRows, fact.column(0), probe.column(0),
                                    agg_in.column(0));

  // String keys: same draw distributions; build and probe gather from one
  // pool (shared dict, as partials of one source table), plain baseline
  // via DecodeDict.
  Column join_pool = MakeStringPool(kJoinKeys);
  Column group_pool = MakeStringPool(kGroups);
  Column build_sk = MakeStringKeys(join_pool, kRows, 3);
  Column probe_sk = MakeStringKeys(join_pool, kRows, 5);
  Column group_sk = MakeStringKeys(group_pool, kRows, 7);
  KernelRates plain =
      MeasureKernels(kRows, build_sk.DecodeDict(), probe_sk.DecodeDict(),
                     group_sk.DecodeDict());
  KernelRates dict = MeasureKernels(kRows, build_sk, probe_sk, group_sk);

  // Morsel-parallel variants (int keys) at 1/2/4 workers. On hosts with
  // fewer physical cores than workers the threads timeslice, so scaling
  // is only visible when host_cores >= workers.
  Schema build_schema({{"bk", ValueType::kInt64},
                       {"bv", ValueType::kFloat64}});
  DataFrame wbuild(build_schema);
  *wbuild.mutable_column(0) = fact.column(0);
  *wbuild.mutable_column(1) = fact.column(1);
  Schema probe_schema({{"g", ValueType::kInt64}, {"v", ValueType::kFloat64}});
  DataFrame wprobe(probe_schema);
  *wprobe.mutable_column(0) = probe.column(0);
  *wprobe.mutable_column(1) = probe.column(1);
  DataFrame wagg(probe_schema);
  *wagg.mutable_column(0) = agg_in.column(0);
  *wagg.mutable_column(1) = agg_in.column(1);
  WorkerRates w1 = MeasureWorkers(kRows, 1, wbuild, wprobe, wagg);
  WorkerRates w2 = MeasureWorkers(kRows, 2, wbuild, wprobe, wagg);
  WorkerRates w4 = MeasureWorkers(kRows, 4, wbuild, wprobe, wagg);

  ExprFilterRates ef = MeasureExprFilter(kRows);

  ScanRates scan = MeasureScan();

  IngestRates ingest = MeasureIngest(kRows);

  std::printf(
      "{\"bench\":\"micro_ops\",\"rows\":%zu,\"host_cores\":%u,"
      "\"join_build_mrows_per_s\":%.2f,\"join_probe_mrows_per_s\":%.2f,"
      "\"group_by_mrows_per_s\":%.2f,"
      "\"join_build_str_plain_mrows_per_s\":%.2f,"
      "\"join_probe_str_plain_mrows_per_s\":%.2f,"
      "\"group_by_str_plain_mrows_per_s\":%.2f,"
      "\"join_build_str_dict_mrows_per_s\":%.2f,"
      "\"join_probe_str_dict_mrows_per_s\":%.2f,"
      "\"group_by_str_dict_mrows_per_s\":%.2f,"
      "\"join_probe_w1_mrows_per_s\":%.2f,"
      "\"join_probe_w2_mrows_per_s\":%.2f,"
      "\"join_probe_w4_mrows_per_s\":%.2f,"
      "\"group_by_w1_mrows_per_s\":%.2f,"
      "\"group_by_w2_mrows_per_s\":%.2f,"
      "\"group_by_w4_mrows_per_s\":%.2f,"
      "\"expr_filter_scalar_mrows_per_s\":%.2f,"
      "\"expr_filter_mrows_per_s\":%.2f,"
      "\"null_hash_scalar_mrows_per_s\":%.2f,"
      "\"null_hash_mrows_per_s\":%.2f,"
      "\"scan_full_mrows_per_s\":%.2f,"
      "\"scan_pruned_mrows_per_s\":%.2f,"
      "\"scan_columnar_mrows_per_s\":%.2f,"
      "\"scan_columnar_skip_mrows_per_s\":%.2f,"
      "\"ingest_append_mrows_per_s\":%.2f,"
      "\"ingest_standing_mrows_per_s\":%.2f}\n",
      kRows, std::thread::hardware_concurrency(), ints.join_build,
      ints.join_probe, ints.group_by, plain.join_build, plain.join_probe,
      plain.group_by, dict.join_build, dict.join_probe, dict.group_by,
      w1.join_probe, w2.join_probe, w4.join_probe, w1.group_by, w2.group_by,
      w4.group_by, ef.expr_filter_scalar, ef.expr_filter,
      ef.null_hash_scalar, ef.null_hash, scan.scan_full, scan.scan_pruned,
      scan.scan_columnar, scan.scan_columnar_skip, ingest.ingest_append,
      ingest.ingest_standing);
  return 0;
}

}  // namespace wake

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return wake::RunMicroJson();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
