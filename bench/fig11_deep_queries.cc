// Figure 11: impact of query depth on performance (§8.6).
//
// Synthetic table with ten 4-valued group columns plus a value column; the
// depth-d query alternates max/sum aggregations over shrinking key
// prefixes. Reported: latency to the 1st, 10th, and final result vs the
// exact engine. Expected shape: Wake's per-partition pace is steady and
// execution time scales with the O(4^d) primary group cardinality.
#include <cstdio>

#include "baseline/exact_engine.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/engine.h"

using namespace wake;

namespace {

Catalog DeepCatalog(size_t rows, int cols, size_t partitions) {
  Schema schema;
  for (int c = 0; c < cols; ++c) {
    schema.AddField(Field("c" + std::to_string(c), ValueType::kInt64));
  }
  schema.AddField(Field("x", ValueType::kInt64));
  DataFrame df(schema);
  Rng rng(42);
  for (size_t r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      df.mutable_column(static_cast<size_t>(c))->AppendInt(
          rng.UniformInt(0, 3));
    }
    df.mutable_column(static_cast<size_t>(cols))
        ->AppendInt(rng.UniformInt(0, 1000000));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("deep", df, partitions)));
  return cat;
}

Plan DeepQuery(int depth, int cols) {
  Plan plan = Plan::Scan("deep");
  std::string value = "x";
  for (int level = depth; level >= 1; --level) {
    std::vector<std::string> by;
    for (int c = 0; c < std::min(level, cols); ++c) {
      by.push_back("c" + std::to_string(c));
    }
    AggSpec spec = (depth - level) % 2 == 0
                       ? Max(value, "agg" + std::to_string(level))
                       : Sum(value, "agg" + std::to_string(level));
    value = spec.output;
    plan = plan.Aggregate(by, {spec});
  }
  return plan.Aggregate({}, {Sum(value, "final")});
}

}  // namespace

int main() {
  constexpr int kCols = 10;
  const size_t rows = bench::EnvSize("WAKE_BENCH_DEEP_ROWS", 200000);
  const size_t partitions = bench::EnvSize("WAKE_BENCH_DEEP_PARTS", 50);
  Catalog cat = DeepCatalog(rows, kCols, partitions);

  std::printf(
      "Figure 11: query depth vs latency (rows=%zu, partitions=%zu)\n"
      "%6s %12s %12s %12s %12s\n",
      rows, partitions, "depth", "wake_1st_s", "wake_10th_s",
      "wake_final_s", "exact_s");
  for (int depth = 0; depth <= 10; ++depth) {
    Plan plan = DeepQuery(depth, kCols);

    WakeEngine engine(&cat);
    double first = -1, tenth = -1, final_s = 0;
    int states = 0;
    engine.Execute(plan.node(), [&](const OlaState& s) {
      if (s.frame->num_rows() == 0) return;
      ++states;
      if (states == 1) first = s.elapsed_seconds;
      if (states == 10) tenth = s.elapsed_seconds;
      if (s.is_final) final_s = s.elapsed_seconds;
    });

    ExactEngine exact(&cat);
    Stopwatch clock;
    exact.Execute(plan.node());
    double exact_s = clock.ElapsedSeconds();

    std::printf("%6d %12.4f %12.4f %12.4f %12.4f\n", depth, first,
                tenth < 0 ? final_s : tenth, final_s, exact_s);
  }
  return 0;
}
