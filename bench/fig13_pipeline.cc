// Figure 13 (Appendix C): pipelined execution timeline of Q6.
//
// Shows per-node busy intervals: the reader streams partitions while
// filter/map/agg process earlier ones concurrently — the pipelining that
// keeps Wake's total latency competitive with exact engines despite merge
// overheads.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

int main() {
  const Catalog& cat = bench::BenchCatalog();
  WakeOptions options;
  options.trace = true;
  WakeEngine engine(&cat, options);
  engine.ExecuteFinal(tpch::Query(6).node());

  std::vector<TraceSpan> spans = engine.last_trace();
  if (spans.empty()) {
    std::printf("no trace collected\n");
    return 1;
  }
  double t_end = 0;
  for (const auto& s : spans) t_end = std::max(t_end, s.end_seconds);

  // Group spans by node, preserving pipeline order of first activity.
  std::vector<std::string> order;
  std::map<std::string, std::vector<TraceSpan>> by_node;
  for (const auto& s : spans) {
    std::string name = s.node.substr(0, s.node.find(":finish"));
    if (!by_node.count(name)) order.push_back(name);
    by_node[name].push_back(s);
  }

  std::printf("Figure 13: pipelined execution of Q6 (total %.4fs)\n", t_end);
  constexpr int kWidth = 100;
  for (const auto& name : order) {
    std::string lane(kWidth, '.');
    double busy = 0;
    for (const auto& s : by_node[name]) {
      busy += s.end_seconds - s.start_seconds;
      int from = static_cast<int>(s.start_seconds / t_end * (kWidth - 1));
      int to = static_cast<int>(s.end_seconds / t_end * (kWidth - 1));
      for (int i = from; i <= to && i < kWidth; ++i) lane[i] = '#';
    }
    std::printf("%-18s |%s| busy %.1f%%\n", name.c_str(), lane.c_str(),
                100.0 * busy / t_end);
  }
  std::printf("('#' = node busy; lanes overlap in time = pipelining)\n");
  return 0;
}
