// §8.2 / §8.3 headline numbers:
//  - median first-estimate speedup over the exact engine's final answer
//  - median final-result slowdown
//  - median relative error (MAPE) of the first estimate (paper: 2.70%)
//  - median time-to-<1%-error speedup vs exact final (paper: 3.17x mean)
//  - steady-state memory vs the exact engine's peak intermediate (paper:
//    Wake uses 4.3x less peak memory than Polars on average)
#include <cstdio>

#include "baseline/exact_engine.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

int main() {
  const Catalog& cat = bench::BenchCatalog();
  std::vector<double> speedups, slowdowns, first_errors, to1pct_speedups,
      memory_ratios;

  std::printf("%-5s %11s %11s %12s %11s %10s\n", "query", "first_err%",
              "to<1%_s", "exact_s", "wake_mem_MB", "exact_MB");
  for (int q : tpch::AllQueries()) {
    Plan plan = tpch::Query(q);
    size_t key_cols = bench::QueryKeyColumns(q);

    ExactEngine exact(&cat);
    Stopwatch exact_clock;
    DataFrame truth = exact.Execute(plan.node());
    double exact_s = exact_clock.ElapsedSeconds();
    double exact_mb = static_cast<double>(exact.peak_bytes()) / 1e6;

    WakeEngine engine(&cat);
    double first_s = -1, final_s = 0, first_err = -1, to1pct = -1;
    engine.Execute(plan.node(), [&](const OlaState& s) {
      if (s.frame->num_rows() == 0) return;
      double err = bench::MapePercent(truth, *s.frame, key_cols);
      if (first_s < 0) {
        first_s = s.elapsed_seconds;
        first_err = err;
      }
      if (to1pct < 0 && err < 1.0 &&
          bench::Recall(truth, *s.frame, key_cols) >= 1.0) {
        to1pct = s.elapsed_seconds;
      }
      if (s.is_final) final_s = s.elapsed_seconds;
    });
    if (first_s < 0) first_s = final_s;
    if (to1pct < 0) to1pct = final_s;
    double wake_mb = static_cast<double>(engine.buffered_bytes()) / 1e6;

    speedups.push_back(exact_s / std::max(first_s, 1e-9));
    slowdowns.push_back(final_s / std::max(exact_s, 1e-9));
    if (first_err >= 0) first_errors.push_back(first_err);
    to1pct_speedups.push_back(exact_s / std::max(to1pct, 1e-9));
    memory_ratios.push_back(exact_mb / std::max(wake_mb, 1e-9));
    std::printf("q%-4d %10.2f%% %11.4f %12.4f %11.2f %10.2f\n", q,
                first_err, to1pct, exact_s, wake_mb, exact_mb);
  }

  std::printf(
      "\nHeadline (paper values in parentheses):\n"
      "  median first-estimate speedup:      %6.2fx (4.93x)\n"
      "  median final-result slowdown:       %6.2fx (1.3x)\n"
      "  median first-estimate error:        %6.2f%% (2.70%%)\n"
      "  median speedup to <1%% error:        %6.2fx (3.17x mean)\n"
      "  median exact/wake memory ratio:     %6.2fx (4.3x vs Polars)\n",
      bench::Median(speedups), bench::Median(slowdowns),
      bench::Median(first_errors), bench::Median(to1pct_speedups),
      bench::Median(memory_ratios));
  return 0;
}
