// Ablation: progressive merge join vs forced hash join (§7.3).
//
// When both inputs are clustered on the join keys (lineitem ⨝ orders),
// Wake picks a progressive merge join, which emits joined rows as soon as
// both sides' key ranges are complete. Forcing a hash join makes the
// build side block until EOF, delaying the first estimate — the paper's
// argument that join selection affects *how* intermediate results are
// delivered, not just total latency.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

namespace {

struct Timing {
  double first_s = -1;
  double final_s = 0;
  size_t states = 0;
};

Timing RunWith(const Catalog& cat, const Plan& plan, bool force_hash) {
  WakeOptions options;
  options.force_hash_join = force_hash;
  WakeEngine engine(const_cast<Catalog*>(&cat), options);
  Timing t;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (t.first_s < 0 && s.frame->num_rows() > 0) t.first_s = s.elapsed_seconds;
    if (s.is_final) t.final_s = s.elapsed_seconds;
    ++t.states;
  });
  if (t.first_s < 0) t.first_s = t.final_s;
  return t;
}

}  // namespace

int main() {
  const Catalog& cat = bench::BenchCatalog();
  std::printf("Ablation: merge join vs forced hash join "
              "(first-estimate / final latency, seconds)\n%6s %12s %12s "
              "%12s %12s %10s\n",
              "query", "merge_1st", "hash_1st", "merge_final", "hash_final",
              "1st_ratio");
  // Queries whose main join is lineitem ⨝ orders on the clustering key.
  for (int q : {3, 5, 10, 12, 18}) {
    Plan plan = tpch::Query(q);
    Timing merge = RunWith(cat, plan, /*force_hash=*/false);
    Timing hash = RunWith(cat, plan, /*force_hash=*/true);
    std::printf("q%-5d %12.4f %12.4f %12.4f %12.4f %9.2fx\n", q,
                merge.first_s, hash.first_s, merge.final_s, hash.final_s,
                hash.first_s / std::max(merge.first_s, 1e-9));
  }
  std::printf("\n(hash_1st >= merge_1st expected: the hash build must\n"
              "consume the whole orders side before the first probe)\n");
  return 0;
}
