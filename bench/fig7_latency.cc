// Figure 7: query latency comparison on all 22 TPC-H queries.
//
// Paper: Wake-first and Wake-final latency vs PostgreSQL, Presto, Vertica,
// Polars, and Actian Vector on 100 GB TPC-H. Here: Wake-first / Wake-final
// vs the in-process exact engine (the conventional-system stand-in) at a
// laptop scale factor. The shape to reproduce: first estimates arrive a
// large factor before any exact answer, while Wake's final latency stays
// within a small factor of (often below) the exact engine's.
#include <cstdio>

#include "baseline/exact_engine.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "tpch/queries.h"

using namespace wake;

int main() {
  const Catalog& cat = bench::BenchCatalog();
  std::printf(
      "Figure 7: TPC-H latency (seconds), SF=%.3f, %zu partitions\n"
      "%-5s %12s %12s %12s %14s %14s\n",
      bench::BenchScaleFactor(), bench::BenchPartitions(), "query",
      "exact_final", "wake_first", "wake_final", "first_speedup",
      "final_slowdown");

  std::vector<double> speedups, slowdowns;
  for (int q : tpch::AllQueries()) {
    Plan plan = tpch::Query(q);

    ExactEngine exact(&cat);
    Stopwatch exact_clock;
    DataFrame exact_result = exact.Execute(plan.node());
    double exact_s = exact_clock.ElapsedSeconds();

    WakeEngine engine(&cat);
    double first_s = -1.0, final_s = 0.0;
    engine.Execute(plan.node(), [&](const OlaState& s) {
      if (first_s < 0 && s.frame->num_rows() > 0) {
        first_s = s.elapsed_seconds;
      }
      if (s.is_final) final_s = s.elapsed_seconds;
    });
    if (first_s < 0) first_s = final_s;

    double speedup = first_s > 0 ? exact_s / first_s : 0.0;
    double slowdown = exact_s > 0 ? final_s / exact_s : 0.0;
    speedups.push_back(speedup);
    slowdowns.push_back(slowdown);
    std::printf("q%-4d %12.4f %12.4f %12.4f %13.2fx %13.2fx\n", q, exact_s,
                first_s, final_s, speedup, slowdown);
  }
  std::printf(
      "\nmedian first-estimate speedup vs exact: %.2fx  (paper: 4.93x vs "
      "Actian Vector)\nmedian final-result slowdown: %.2fx  (paper: 1.3x "
      "median)\n",
      bench::Median(speedups), bench::Median(slowdowns));
  return 0;
}
