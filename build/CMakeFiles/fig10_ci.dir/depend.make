# Empty dependencies file for fig10_ci.
# This may be replaced when dependencies are built.
