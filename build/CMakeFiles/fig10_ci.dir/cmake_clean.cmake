file(REMOVE_RECURSE
  "CMakeFiles/fig10_ci.dir/bench/fig10_ci.cc.o"
  "CMakeFiles/fig10_ci.dir/bench/fig10_ci.cc.o.d"
  "bench/fig10_ci"
  "bench/fig10_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
