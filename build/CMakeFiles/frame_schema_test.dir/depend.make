# Empty dependencies file for frame_schema_test.
# This may be replaced when dependencies are built.
