file(REMOVE_RECURSE
  "CMakeFiles/frame_schema_test.dir/tests/frame/schema_test.cc.o"
  "CMakeFiles/frame_schema_test.dir/tests/frame/schema_test.cc.o.d"
  "frame_schema_test"
  "frame_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
