# Empty dependencies file for ablation_join.
# This may be replaced when dependencies are built.
