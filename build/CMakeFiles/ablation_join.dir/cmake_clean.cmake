file(REMOVE_RECURSE
  "CMakeFiles/ablation_join.dir/bench/ablation_join.cc.o"
  "CMakeFiles/ablation_join.dir/bench/ablation_join.cc.o.d"
  "bench/ablation_join"
  "bench/ablation_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
