# Empty dependencies file for frame_data_frame_test.
# This may be replaced when dependencies are built.
