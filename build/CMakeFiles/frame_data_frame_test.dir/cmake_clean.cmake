file(REMOVE_RECURSE
  "CMakeFiles/frame_data_frame_test.dir/tests/frame/data_frame_test.cc.o"
  "CMakeFiles/frame_data_frame_test.dir/tests/frame/data_frame_test.cc.o.d"
  "frame_data_frame_test"
  "frame_data_frame_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_data_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
