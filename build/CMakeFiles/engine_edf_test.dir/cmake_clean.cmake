file(REMOVE_RECURSE
  "CMakeFiles/engine_edf_test.dir/tests/engine/edf_test.cc.o"
  "CMakeFiles/engine_edf_test.dir/tests/engine/edf_test.cc.o.d"
  "engine_edf_test"
  "engine_edf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
