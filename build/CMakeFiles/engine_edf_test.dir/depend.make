# Empty dependencies file for engine_edf_test.
# This may be replaced when dependencies are built.
