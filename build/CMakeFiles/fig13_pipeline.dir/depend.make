# Empty dependencies file for fig13_pipeline.
# This may be replaced when dependencies are built.
