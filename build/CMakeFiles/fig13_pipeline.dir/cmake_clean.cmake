file(REMOVE_RECURSE
  "CMakeFiles/fig13_pipeline.dir/bench/fig13_pipeline.cc.o"
  "CMakeFiles/fig13_pipeline.dir/bench/fig13_pipeline.cc.o.d"
  "bench/fig13_pipeline"
  "bench/fig13_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
