file(REMOVE_RECURSE
  "CMakeFiles/deep_pipeline.dir/examples/deep_pipeline.cpp.o"
  "CMakeFiles/deep_pipeline.dir/examples/deep_pipeline.cpp.o.d"
  "examples/deep_pipeline"
  "examples/deep_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
