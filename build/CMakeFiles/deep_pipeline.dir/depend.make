# Empty dependencies file for deep_pipeline.
# This may be replaced when dependencies are built.
