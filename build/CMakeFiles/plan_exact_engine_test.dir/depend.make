# Empty dependencies file for plan_exact_engine_test.
# This may be replaced when dependencies are built.
