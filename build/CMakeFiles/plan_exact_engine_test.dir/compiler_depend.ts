# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for plan_exact_engine_test.
