file(REMOVE_RECURSE
  "CMakeFiles/plan_exact_engine_test.dir/tests/plan/exact_engine_test.cc.o"
  "CMakeFiles/plan_exact_engine_test.dir/tests/plan/exact_engine_test.cc.o.d"
  "plan_exact_engine_test"
  "plan_exact_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_exact_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
