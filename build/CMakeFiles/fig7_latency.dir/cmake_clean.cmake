file(REMOVE_RECURSE
  "CMakeFiles/fig7_latency.dir/bench/fig7_latency.cc.o"
  "CMakeFiles/fig7_latency.dir/bench/fig7_latency.cc.o.d"
  "bench/fig7_latency"
  "bench/fig7_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
