file(REMOVE_RECURSE
  "CMakeFiles/fig12_partition_size.dir/bench/fig12_partition_size.cc.o"
  "CMakeFiles/fig12_partition_size.dir/bench/fig12_partition_size.cc.o.d"
  "bench/fig12_partition_size"
  "bench/fig12_partition_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_partition_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
