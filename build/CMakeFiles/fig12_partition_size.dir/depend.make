# Empty dependencies file for fig12_partition_size.
# This may be replaced when dependencies are built.
