# Empty dependencies file for storage_tpch_dbgen_test.
# This may be replaced when dependencies are built.
