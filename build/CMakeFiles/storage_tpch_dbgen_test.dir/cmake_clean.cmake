file(REMOVE_RECURSE
  "CMakeFiles/storage_tpch_dbgen_test.dir/tests/storage/tpch_dbgen_test.cc.o"
  "CMakeFiles/storage_tpch_dbgen_test.dir/tests/storage/tpch_dbgen_test.cc.o.d"
  "storage_tpch_dbgen_test"
  "storage_tpch_dbgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tpch_dbgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
