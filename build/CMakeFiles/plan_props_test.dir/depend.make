# Empty dependencies file for plan_props_test.
# This may be replaced when dependencies are built.
