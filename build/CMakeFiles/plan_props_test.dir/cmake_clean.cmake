file(REMOVE_RECURSE
  "CMakeFiles/plan_props_test.dir/tests/plan/props_test.cc.o"
  "CMakeFiles/plan_props_test.dir/tests/plan/props_test.cc.o.d"
  "plan_props_test"
  "plan_props_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
