# Empty dependencies file for frame_column_test.
# This may be replaced when dependencies are built.
