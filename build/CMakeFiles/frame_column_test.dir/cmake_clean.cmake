file(REMOVE_RECURSE
  "CMakeFiles/frame_column_test.dir/tests/frame/column_test.cc.o"
  "CMakeFiles/frame_column_test.dir/tests/frame/column_test.cc.o.d"
  "frame_column_test"
  "frame_column_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
