# Empty dependencies file for core_estimator_properties_test.
# This may be replaced when dependencies are built.
