file(REMOVE_RECURSE
  "CMakeFiles/core_estimator_properties_test.dir/tests/core/estimator_properties_test.cc.o"
  "CMakeFiles/core_estimator_properties_test.dir/tests/core/estimator_properties_test.cc.o.d"
  "core_estimator_properties_test"
  "core_estimator_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_estimator_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
