file(REMOVE_RECURSE
  "CMakeFiles/engine_deep_query_test.dir/tests/engine/deep_query_test.cc.o"
  "CMakeFiles/engine_deep_query_test.dir/tests/engine/deep_query_test.cc.o.d"
  "engine_deep_query_test"
  "engine_deep_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_deep_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
