# Empty dependencies file for engine_deep_query_test.
# This may be replaced when dependencies are built.
