# Empty dependencies file for fig11_deep_queries.
# This may be replaced when dependencies are built.
