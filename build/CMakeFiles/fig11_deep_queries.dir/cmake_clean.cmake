file(REMOVE_RECURSE
  "CMakeFiles/fig11_deep_queries.dir/bench/fig11_deep_queries.cc.o"
  "CMakeFiles/fig11_deep_queries.dir/bench/fig11_deep_queries.cc.o.d"
  "bench/fig11_deep_queries"
  "bench/fig11_deep_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_deep_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
