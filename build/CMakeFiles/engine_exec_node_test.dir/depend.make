# Empty dependencies file for engine_exec_node_test.
# This may be replaced when dependencies are built.
