file(REMOVE_RECURSE
  "CMakeFiles/engine_exec_node_test.dir/tests/engine/exec_node_test.cc.o"
  "CMakeFiles/engine_exec_node_test.dir/tests/engine/exec_node_test.cc.o.d"
  "engine_exec_node_test"
  "engine_exec_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_exec_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
