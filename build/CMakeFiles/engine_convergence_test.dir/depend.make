# Empty dependencies file for engine_convergence_test.
# This may be replaced when dependencies are built.
