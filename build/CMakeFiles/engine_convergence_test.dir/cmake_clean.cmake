file(REMOVE_RECURSE
  "CMakeFiles/engine_convergence_test.dir/tests/engine/convergence_test.cc.o"
  "CMakeFiles/engine_convergence_test.dir/tests/engine/convergence_test.cc.o.d"
  "engine_convergence_test"
  "engine_convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
