# Empty dependencies file for fig8_error_curves.
# This may be replaced when dependencies are built.
