file(REMOVE_RECURSE
  "CMakeFiles/fig8_error_curves.dir/bench/fig8_error_curves.cc.o"
  "CMakeFiles/fig8_error_curves.dir/bench/fig8_error_curves.cc.o.d"
  "bench/fig8_error_curves"
  "bench/fig8_error_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_error_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
