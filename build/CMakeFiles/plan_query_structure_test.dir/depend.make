# Empty dependencies file for plan_query_structure_test.
# This may be replaced when dependencies are built.
