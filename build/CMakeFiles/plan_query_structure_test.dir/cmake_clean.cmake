file(REMOVE_RECURSE
  "CMakeFiles/plan_query_structure_test.dir/tests/plan/query_structure_test.cc.o"
  "CMakeFiles/plan_query_structure_test.dir/tests/plan/query_structure_test.cc.o.d"
  "plan_query_structure_test"
  "plan_query_structure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_query_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
