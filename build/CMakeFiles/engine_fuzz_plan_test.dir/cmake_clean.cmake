file(REMOVE_RECURSE
  "CMakeFiles/engine_fuzz_plan_test.dir/tests/engine/fuzz_plan_test.cc.o"
  "CMakeFiles/engine_fuzz_plan_test.dir/tests/engine/fuzz_plan_test.cc.o.d"
  "engine_fuzz_plan_test"
  "engine_fuzz_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_fuzz_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
