# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for common_flat_hash_test.
