file(REMOVE_RECURSE
  "CMakeFiles/frame_expr_test.dir/tests/frame/expr_test.cc.o"
  "CMakeFiles/frame_expr_test.dir/tests/frame/expr_test.cc.o.d"
  "frame_expr_test"
  "frame_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
