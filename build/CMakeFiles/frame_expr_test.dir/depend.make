# Empty dependencies file for frame_expr_test.
# This may be replaced when dependencies are built.
