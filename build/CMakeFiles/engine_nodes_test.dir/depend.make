# Empty dependencies file for engine_nodes_test.
# This may be replaced when dependencies are built.
