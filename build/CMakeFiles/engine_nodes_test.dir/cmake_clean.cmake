file(REMOVE_RECURSE
  "CMakeFiles/engine_nodes_test.dir/tests/engine/nodes_test.cc.o"
  "CMakeFiles/engine_nodes_test.dir/tests/engine/nodes_test.cc.o.d"
  "engine_nodes_test"
  "engine_nodes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
