file(REMOVE_RECURSE
  "CMakeFiles/fig9_ola_baselines.dir/bench/fig9_ola_baselines.cc.o"
  "CMakeFiles/fig9_ola_baselines.dir/bench/fig9_ola_baselines.cc.o.d"
  "bench/fig9_ola_baselines"
  "bench/fig9_ola_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ola_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
