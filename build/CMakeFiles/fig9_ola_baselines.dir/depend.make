# Empty dependencies file for fig9_ola_baselines.
# This may be replaced when dependencies are built.
