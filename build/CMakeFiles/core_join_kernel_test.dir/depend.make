# Empty dependencies file for core_join_kernel_test.
# This may be replaced when dependencies are built.
