file(REMOVE_RECURSE
  "CMakeFiles/core_join_kernel_test.dir/tests/core/join_kernel_test.cc.o"
  "CMakeFiles/core_join_kernel_test.dir/tests/core/join_kernel_test.cc.o.d"
  "core_join_kernel_test"
  "core_join_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_join_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
