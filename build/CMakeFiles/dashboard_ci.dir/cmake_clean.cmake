file(REMOVE_RECURSE
  "CMakeFiles/dashboard_ci.dir/examples/dashboard_ci.cpp.o"
  "CMakeFiles/dashboard_ci.dir/examples/dashboard_ci.cpp.o.d"
  "examples/dashboard_ci"
  "examples/dashboard_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
