# Empty dependencies file for dashboard_ci.
# This may be replaced when dependencies are built.
