file(REMOVE_RECURSE
  "CMakeFiles/headline_stats.dir/bench/headline_stats.cc.o"
  "CMakeFiles/headline_stats.dir/bench/headline_stats.cc.o.d"
  "bench/headline_stats"
  "bench/headline_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
