# Empty dependencies file for headline_stats.
# This may be replaced when dependencies are built.
