
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/exact_engine.cc" "CMakeFiles/wake.dir/src/baseline/exact_engine.cc.o" "gcc" "CMakeFiles/wake.dir/src/baseline/exact_engine.cc.o.d"
  "/root/repo/src/baseline/progressive_ola.cc" "CMakeFiles/wake.dir/src/baseline/progressive_ola.cc.o" "gcc" "CMakeFiles/wake.dir/src/baseline/progressive_ola.cc.o.d"
  "/root/repo/src/baseline/wander_join.cc" "CMakeFiles/wake.dir/src/baseline/wander_join.cc.o" "gcc" "CMakeFiles/wake.dir/src/baseline/wander_join.cc.o.d"
  "/root/repo/src/common/strings.cc" "CMakeFiles/wake.dir/src/common/strings.cc.o" "gcc" "CMakeFiles/wake.dir/src/common/strings.cc.o.d"
  "/root/repo/src/core/agg_state.cc" "CMakeFiles/wake.dir/src/core/agg_state.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/agg_state.cc.o.d"
  "/root/repo/src/core/ci.cc" "CMakeFiles/wake.dir/src/core/ci.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/ci.cc.o.d"
  "/root/repo/src/core/edf.cc" "CMakeFiles/wake.dir/src/core/edf.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/edf.cc.o.d"
  "/root/repo/src/core/engine.cc" "CMakeFiles/wake.dir/src/core/engine.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/engine.cc.o.d"
  "/root/repo/src/core/growth.cc" "CMakeFiles/wake.dir/src/core/growth.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/growth.cc.o.d"
  "/root/repo/src/core/inference.cc" "CMakeFiles/wake.dir/src/core/inference.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/inference.cc.o.d"
  "/root/repo/src/core/join_kernel.cc" "CMakeFiles/wake.dir/src/core/join_kernel.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/join_kernel.cc.o.d"
  "/root/repo/src/core/nodes_agg.cc" "CMakeFiles/wake.dir/src/core/nodes_agg.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/nodes_agg.cc.o.d"
  "/root/repo/src/core/nodes_basic.cc" "CMakeFiles/wake.dir/src/core/nodes_basic.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/nodes_basic.cc.o.d"
  "/root/repo/src/core/nodes_join.cc" "CMakeFiles/wake.dir/src/core/nodes_join.cc.o" "gcc" "CMakeFiles/wake.dir/src/core/nodes_join.cc.o.d"
  "/root/repo/src/exec/exec_node.cc" "CMakeFiles/wake.dir/src/exec/exec_node.cc.o" "gcc" "CMakeFiles/wake.dir/src/exec/exec_node.cc.o.d"
  "/root/repo/src/frame/column.cc" "CMakeFiles/wake.dir/src/frame/column.cc.o" "gcc" "CMakeFiles/wake.dir/src/frame/column.cc.o.d"
  "/root/repo/src/frame/data_frame.cc" "CMakeFiles/wake.dir/src/frame/data_frame.cc.o" "gcc" "CMakeFiles/wake.dir/src/frame/data_frame.cc.o.d"
  "/root/repo/src/frame/expr.cc" "CMakeFiles/wake.dir/src/frame/expr.cc.o" "gcc" "CMakeFiles/wake.dir/src/frame/expr.cc.o.d"
  "/root/repo/src/frame/schema.cc" "CMakeFiles/wake.dir/src/frame/schema.cc.o" "gcc" "CMakeFiles/wake.dir/src/frame/schema.cc.o.d"
  "/root/repo/src/frame/value.cc" "CMakeFiles/wake.dir/src/frame/value.cc.o" "gcc" "CMakeFiles/wake.dir/src/frame/value.cc.o.d"
  "/root/repo/src/plan/plan.cc" "CMakeFiles/wake.dir/src/plan/plan.cc.o" "gcc" "CMakeFiles/wake.dir/src/plan/plan.cc.o.d"
  "/root/repo/src/plan/props.cc" "CMakeFiles/wake.dir/src/plan/props.cc.o" "gcc" "CMakeFiles/wake.dir/src/plan/props.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "CMakeFiles/wake.dir/src/sql/lexer.cc.o" "gcc" "CMakeFiles/wake.dir/src/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "CMakeFiles/wake.dir/src/sql/parser.cc.o" "gcc" "CMakeFiles/wake.dir/src/sql/parser.cc.o.d"
  "/root/repo/src/storage/csv.cc" "CMakeFiles/wake.dir/src/storage/csv.cc.o" "gcc" "CMakeFiles/wake.dir/src/storage/csv.cc.o.d"
  "/root/repo/src/storage/partitioned_table.cc" "CMakeFiles/wake.dir/src/storage/partitioned_table.cc.o" "gcc" "CMakeFiles/wake.dir/src/storage/partitioned_table.cc.o.d"
  "/root/repo/src/tpch/dbgen.cc" "CMakeFiles/wake.dir/src/tpch/dbgen.cc.o" "gcc" "CMakeFiles/wake.dir/src/tpch/dbgen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "CMakeFiles/wake.dir/src/tpch/queries.cc.o" "gcc" "CMakeFiles/wake.dir/src/tpch/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
