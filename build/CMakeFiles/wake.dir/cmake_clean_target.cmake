file(REMOVE_RECURSE
  "libwake.a"
)
