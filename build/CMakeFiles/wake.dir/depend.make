# Empty dependencies file for wake.
# This may be replaced when dependencies are built.
