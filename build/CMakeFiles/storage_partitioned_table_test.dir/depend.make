# Empty dependencies file for storage_partitioned_table_test.
# This may be replaced when dependencies are built.
