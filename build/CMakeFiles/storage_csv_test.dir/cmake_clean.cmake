file(REMOVE_RECURSE
  "CMakeFiles/storage_csv_test.dir/tests/storage/csv_test.cc.o"
  "CMakeFiles/storage_csv_test.dir/tests/storage/csv_test.cc.o.d"
  "storage_csv_test"
  "storage_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
