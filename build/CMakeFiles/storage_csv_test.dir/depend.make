# Empty dependencies file for storage_csv_test.
# This may be replaced when dependencies are built.
