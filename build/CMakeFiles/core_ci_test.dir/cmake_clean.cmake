file(REMOVE_RECURSE
  "CMakeFiles/core_ci_test.dir/tests/core/ci_test.cc.o"
  "CMakeFiles/core_ci_test.dir/tests/core/ci_test.cc.o.d"
  "core_ci_test"
  "core_ci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
