# Empty dependencies file for core_ci_test.
# This may be replaced when dependencies are built.
