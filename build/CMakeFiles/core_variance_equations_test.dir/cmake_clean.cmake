file(REMOVE_RECURSE
  "CMakeFiles/core_variance_equations_test.dir/tests/core/variance_equations_test.cc.o"
  "CMakeFiles/core_variance_equations_test.dir/tests/core/variance_equations_test.cc.o.d"
  "core_variance_equations_test"
  "core_variance_equations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_variance_equations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
