# Empty dependencies file for core_variance_equations_test.
# This may be replaced when dependencies are built.
