# Empty dependencies file for top_customers.
# This may be replaced when dependencies are built.
