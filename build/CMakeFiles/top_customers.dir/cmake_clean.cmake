file(REMOVE_RECURSE
  "CMakeFiles/top_customers.dir/examples/top_customers.cpp.o"
  "CMakeFiles/top_customers.dir/examples/top_customers.cpp.o.d"
  "examples/top_customers"
  "examples/top_customers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_customers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
