file(REMOVE_RECURSE
  "CMakeFiles/frame_value_test.dir/tests/frame/value_test.cc.o"
  "CMakeFiles/frame_value_test.dir/tests/frame/value_test.cc.o.d"
  "frame_value_test"
  "frame_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
