# Empty dependencies file for frame_value_test.
# This may be replaced when dependencies are built.
