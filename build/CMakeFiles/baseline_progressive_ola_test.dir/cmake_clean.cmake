file(REMOVE_RECURSE
  "CMakeFiles/baseline_progressive_ola_test.dir/tests/baseline/progressive_ola_test.cc.o"
  "CMakeFiles/baseline_progressive_ola_test.dir/tests/baseline/progressive_ola_test.cc.o.d"
  "baseline_progressive_ola_test"
  "baseline_progressive_ola_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_progressive_ola_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
