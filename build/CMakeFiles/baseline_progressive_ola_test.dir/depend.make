# Empty dependencies file for baseline_progressive_ola_test.
# This may be replaced when dependencies are built.
