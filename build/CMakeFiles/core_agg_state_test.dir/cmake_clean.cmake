file(REMOVE_RECURSE
  "CMakeFiles/core_agg_state_test.dir/tests/core/agg_state_test.cc.o"
  "CMakeFiles/core_agg_state_test.dir/tests/core/agg_state_test.cc.o.d"
  "core_agg_state_test"
  "core_agg_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_agg_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
