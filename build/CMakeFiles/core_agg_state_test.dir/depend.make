# Empty dependencies file for core_agg_state_test.
# This may be replaced when dependencies are built.
