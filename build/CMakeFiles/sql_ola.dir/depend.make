# Empty dependencies file for sql_ola.
# This may be replaced when dependencies are built.
