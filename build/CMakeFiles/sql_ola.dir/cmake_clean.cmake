file(REMOVE_RECURSE
  "CMakeFiles/sql_ola.dir/examples/sql_ola.cpp.o"
  "CMakeFiles/sql_ola.dir/examples/sql_ola.cpp.o.d"
  "examples/sql_ola"
  "examples/sql_ola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_ola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
