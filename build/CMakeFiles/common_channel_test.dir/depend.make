# Empty dependencies file for common_channel_test.
# This may be replaced when dependencies are built.
