file(REMOVE_RECURSE
  "CMakeFiles/common_channel_test.dir/tests/common/channel_test.cc.o"
  "CMakeFiles/common_channel_test.dir/tests/common/channel_test.cc.o.d"
  "common_channel_test"
  "common_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
