file(REMOVE_RECURSE
  "CMakeFiles/engine_wake_vs_exact_test.dir/tests/engine/wake_vs_exact_test.cc.o"
  "CMakeFiles/engine_wake_vs_exact_test.dir/tests/engine/wake_vs_exact_test.cc.o.d"
  "engine_wake_vs_exact_test"
  "engine_wake_vs_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_wake_vs_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
