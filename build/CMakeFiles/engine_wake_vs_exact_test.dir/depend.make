# Empty dependencies file for engine_wake_vs_exact_test.
# This may be replaced when dependencies are built.
