file(REMOVE_RECURSE
  "CMakeFiles/ablation_inference.dir/bench/ablation_inference.cc.o"
  "CMakeFiles/ablation_inference.dir/bench/ablation_inference.cc.o.d"
  "bench/ablation_inference"
  "bench/ablation_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
