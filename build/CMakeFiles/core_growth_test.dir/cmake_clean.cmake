file(REMOVE_RECURSE
  "CMakeFiles/core_growth_test.dir/tests/core/growth_test.cc.o"
  "CMakeFiles/core_growth_test.dir/tests/core/growth_test.cc.o.d"
  "core_growth_test"
  "core_growth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
