# Empty dependencies file for core_growth_test.
# This may be replaced when dependencies are built.
