file(REMOVE_RECURSE
  "CMakeFiles/baseline_wander_join_test.dir/tests/baseline/wander_join_test.cc.o"
  "CMakeFiles/baseline_wander_join_test.dir/tests/baseline/wander_join_test.cc.o.d"
  "baseline_wander_join_test"
  "baseline_wander_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_wander_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
