# Empty dependencies file for baseline_wander_join_test.
# This may be replaced when dependencies are built.
