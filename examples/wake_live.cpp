// Live ingestion + continuous OLA: a generator thread streams lineitem
// rows into a LiveTable while standing Q1/Q6 subscriptions refine their
// answers epoch by epoch — each refresh folds only the newly appended
// tablets into a persistent aggregate (never re-scanning old data), and
// every emitted snapshot is byte-identical to a from-scratch query over
// exactly the tablet set of its epoch.
//
// The program is self-checking (CI smoke-runs it): it exits non-zero
// unless (a) at least one incremental (non-final) snapshot epoch was
// observed while rows were still arriving, and (b) the final standing
// snapshot is byte-identical — compared via the wire encoding — to a
// cold re-query of the fully ingested table through the exact engine.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "common/wire.h"
#include "example_env.h"
#include "ingest/live_table.h"
#include "server/protocol.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace wake;

namespace {

/// Bit-exact frame comparison through the wire codec (doubles travel as
/// raw IEEE bit patterns, so equal encodings mean equal bytes).
std::string WireBytes(const DataFrame& df) {
  wire::WireWriter w;
  protocol::EncodeDataFrame(df, &w);
  return w.Take();
}

}  // namespace

int main() {
  tpch::DbgenConfig cfg;
  cfg.scale_factor = examples::ScaleFactor(0.01);
  cfg.partitions = 8;
  PartitionedTable base = tpch::GenerateTable(cfg, "lineitem");
  std::printf("generated %zu lineitem rows to stream\n", base.total_rows());

  const std::filesystem::path spill =
      std::filesystem::temp_directory_path() / "wake_live_spill";
  std::filesystem::remove_all(spill);

  LiveTableOptions live_opts;
  live_opts.seal_rows = 8192;  // small tablets: several epochs per run
  live_opts.spill_dir = spill.string();
  auto live = std::make_shared<LiveTable>("lineitem", base.schema(), live_opts);

  Catalog catalog;
  catalog.AddDynamic(live);
  Db db(&catalog);

  auto q1 = db.Subscribe(tpch::Query(1));
  auto q6 = db.Subscribe(tpch::Query(6));

  // Generator: stream the table in append batches, like rows arriving
  // over the ingest path.
  std::thread generator([&] {
    constexpr size_t kBatch = 2048;
    for (size_t p = 0; p < base.num_partitions(); ++p) {
      const DataFrame& part = *base.partition(p);
      for (size_t begin = 0; begin < part.num_rows(); begin += kBatch) {
        live->Append(
            part.Slice(begin, std::min(begin + kBatch, part.num_rows())));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  });

  size_t incremental_epochs = 0;
  uint64_t last_epoch = ~uint64_t{0};
  const uint64_t total = base.total_rows();
  std::printf("\n%8s %10s %8s  %s\n", "epoch", "rows", "q1 rows",
              "q6 revenue");
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    auto s1 = q1->Refresh();
    auto s6 = q6->Refresh();
    SubscriptionState cur = q1->Current();
    if (s1 && cur.epoch != last_epoch) {
      last_epoch = cur.epoch;
      if (cur.rows_covered < total) ++incremental_epochs;
      SubscriptionState c6 = q6->Current();
      double revenue = c6.frame != nullptr && c6.frame->num_rows() > 0
                           ? c6.frame->column(0).DoubleAt(0)
                           : 0.0;
      std::printf("%8llu %10llu %8zu  %14.2f\n",
                  static_cast<unsigned long long>(cur.epoch),
                  static_cast<unsigned long long>(cur.rows_covered),
                  cur.frame->num_rows(), revenue);
    }
    if (cur.rows_covered >= total) break;
    (void)s6;
  }
  generator.join();
  live->SealHot();  // flush the tail so the cold re-query sees wakeblocks
  q1->Refresh();
  q6->Refresh();

  LiveTableStats st = live->stats();
  std::printf("\ningested %llu rows, %zu cold tablets (%zu flushed), "
              "%zu incremental epochs observed\n",
              static_cast<unsigned long long>(st.rows_appended),
              st.cold_tablets, st.tablets_flushed, incremental_epochs);

  // Cold re-query: the generator has stopped, so a fresh snapshot covers
  // exactly the rows the subscriptions folded — the standing answers
  // must match it byte for byte.
  RunOptions exact;
  exact.engine = QueryEngine::kExact;
  DataFrame q1_cold = db.Prepare(tpch::Query(1)).Execute(exact);
  DataFrame q6_cold = db.Prepare(tpch::Query(6)).Execute(exact);

  bool ok = true;
  if (incremental_epochs < 1) {
    std::fprintf(stderr, "FAIL: no incremental snapshot epoch observed\n");
    ok = false;
  }
  if (WireBytes(*q1->Current().frame) != WireBytes(q1_cold)) {
    std::fprintf(stderr, "FAIL: standing Q1 != cold re-query\n");
    ok = false;
  }
  if (WireBytes(*q6->Current().frame) != WireBytes(q6_cold)) {
    std::fprintf(stderr, "FAIL: standing Q6 != cold re-query\n");
    ok = false;
  }
  if (ok) {
    std::printf("final standing Q1/Q6 snapshots byte-identical to cold "
                "re-query over %llu rows\n",
                static_cast<unsigned long long>(total));
  }
  std::filesystem::remove_all(spill);
  return ok ? 0 : 1;
}
