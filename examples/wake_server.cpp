// A runnable wake query server over generated TPC-H data.
//
//   build/examples/wake_server [--port N] [--host H] [--workers N]
//                              [--max-concurrent N] [--drain-ms N]
//
// Binds (default 127.0.0.1:14641), serves the frame protocol described in
// src/server/README.md, and on SIGTERM/SIGINT drains gracefully: no new
// queries are admitted, in-flight queries finish within the drain budget,
// stragglers are cooperatively cancelled. Exit code 0 = clean drain,
// 1 = stragglers were cancelled.
//
// Pair with build/examples/wake_client or
// build/examples/sql_ola --connect HOST:PORT.
#include <pthread.h>
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/db.h"
#include "common/error.h"
#include "example_env.h"
#include "server/server.h"
#include "tpch/dbgen.h"

using namespace wake;

int main(int argc, char** argv) {
  // Block the shutdown signals before ANY thread spawns (the Db worker
  // pool included): every later thread inherits the mask, making
  // Serve()'s sigwait the single delivery point. Without this, SIGTERM
  // delivered to a worker thread would kill the process mid-drain.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ServerOptions server_options;
  server_options.port = 14641;
  DbOptions db_options;
  db_options.max_concurrent_queries = 4;  // admission-gate remote load
  db_options.max_queued = 16;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto value = [&](const char* what) -> const char* {
        if (i + 1 >= argc) throw Error(std::string(what) + " needs a value");
        return argv[++i];
      };
      if (arg == "--port") {
        server_options.port = static_cast<uint16_t>(std::atoi(value("--port")));
      } else if (arg == "--host") {
        server_options.host = value("--host");
      } else if (arg == "--workers") {
        db_options.workers = static_cast<size_t>(std::atol(value("--workers")));
      } else if (arg == "--max-concurrent") {
        db_options.max_concurrent_queries =
            static_cast<size_t>(std::atol(value("--max-concurrent")));
      } else if (arg == "--drain-ms") {
        server_options.drain_timeout_ms = std::atol(value("--drain-ms"));
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        return 2;
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  tpch::DbgenConfig cfg;
  cfg.scale_factor = examples::ScaleFactor(0.02);
  cfg.partitions = 10;
  std::fprintf(stderr, "generating TPC-H SF %.3f ...\n", cfg.scale_factor);
  Catalog catalog = tpch::Generate(cfg);
  Db db(&catalog, db_options);

  try {
    return Serve(db, server_options);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 2;
  }
}
