// The paper's §1 data-analysis session (a rewritten TPC-H Q18): find the
// customers with the biggest orders, step by step, with OLA output at
// every step of the cascade:
//
//   lineitem = read(...)
//   order_qty  = lineitem.sum(qty, by=orderkey)        # local agg
//   lg_orders  = order_qty.filter(sum_qty > T)         # Case 1 filter
//   lg_order_cust = lg_orders.join(orders).join(customer)
//   qty_per_cust  = lg_order_cust.sum(sum_qty, by=name)  # deep agg (GBI)
//   top_cust      = qty_per_cust.sort(desc).limit(10)    # Case 3
#include <cstdio>

#include "core/edf.h"
#include "tpch/dbgen.h"

using namespace wake;

int main() {
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.05;
  cfg.partitions = 12;
  Catalog catalog = tpch::Generate(cfg);

  EdfSession session(&catalog);
  Edf lineitem = session.Read("lineitem");
  Edf order_qty = lineitem.Sum("l_quantity", {"l_orderkey"});
  Edf lg_orders = order_qty.Filter(
      Gt(Expr::Col("sum_l_quantity"), Expr::Float(150.0)));
  Edf lg_order_cust =
      lg_orders
          .Join(session.Read("orders").Project({"o_orderkey", "o_custkey"}),
                {"l_orderkey"}, {"o_orderkey"})
          .Join(session.Read("customer").Project({"c_custkey", "c_name"}),
                {"o_custkey"}, {"c_custkey"});
  Edf qty_per_cust = lg_order_cust.Sum("sum_l_quantity", {"c_name"});
  Edf top_cust =
      qty_per_cust.Sort({{"sum_sum_l_quantity", true}}, 10);

  std::printf("top customers by large-order quantity (converging):\n");
  size_t shown = 0;
  top_cust.Subscribe([&](const OlaState& s) {
    // Print a progress line for every fourth state, the full top list at
    // the end.
    if (s.is_final) {
      std::printf("\nfinal top-10 (exact):\n%s", s.frame->ToString(10).c_str());
    } else if (shown++ % 4 == 0 && s.frame->num_rows() > 0) {
      std::printf("  at %3.0f%%: leader = %-22s (est. qty %.0f)\n",
                  100 * s.progress, s.frame->column(0).StringAt(0).c_str(),
                  s.frame->column(1).DoubleAt(0));
    }
  });
  return 0;
}
