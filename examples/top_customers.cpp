// The paper's §1 data-analysis session (a rewritten TPC-H Q18): find the
// customers with the biggest orders, step by step, with OLA output at
// every step of the cascade:
//
//   lineitem = read(...)
//   order_qty  = lineitem.sum(qty, by=orderkey)        # local agg
//   lg_orders  = order_qty.filter(sum_qty > T)         # Case 1 filter
//   lg_order_cust = lg_orders.join(orders).join(customer)
//   qty_per_cust  = lg_order_cust.sum(sum_qty, by=name)  # deep agg (GBI)
//   top_cust      = qty_per_cust.sort(desc).limit(10)    # Case 3
//
// The plan is built with the fluent Plan builder and prepared/run through
// wake::Db — the OLA run streams from a cursor while a concurrent exact
// run of the same PreparedQuery double-checks the final answer.
#include <cstdio>

#include "api/db.h"
#include "example_env.h"
#include "tpch/dbgen.h"

using namespace wake;

int main() {
  tpch::DbgenConfig cfg;
  cfg.scale_factor = examples::ScaleFactor(0.05);
  cfg.partitions = 12;
  Catalog catalog = tpch::Generate(cfg);

  Plan top_cust =
      Plan::Scan("lineitem")
          .Aggregate({"l_orderkey"}, {Sum("l_quantity", "sum_l_quantity")})
          .Filter(Gt(Expr::Col("sum_l_quantity"), Expr::Float(150.0)))
          .Join(Plan::Scan("orders", {"o_orderkey", "o_custkey"}),
                JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
          .Join(Plan::Scan("customer", {"c_custkey", "c_name"}),
                JoinType::kInner, {"o_custkey"}, {"c_custkey"})
          .Aggregate({"c_name"}, {Sum("sum_l_quantity", "qty")})
          .Sort({{"qty", true}}, 10);

  Db db(&catalog);
  PreparedQuery query = db.Prepare(top_cust);

  // Two concurrent runs of one PreparedQuery against one Db: the OLA
  // stream for the analyst, the exact baseline as a cross-check. Both
  // share the session worker pool.
  QueryHandle ola = query.Run();
  RunOptions exact_run;
  exact_run.engine = QueryEngine::kExact;
  QueryHandle exact = query.Run(exact_run);

  std::printf("top customers by large-order quantity (converging):\n");
  size_t shown = 0;
  while (auto s = ola.Next()) {
    // Print a progress line for every fourth state, the full top list at
    // the end.
    if (s->is_final) {
      std::printf("\nfinal top-10 (exact):\n%s", s->frame->ToString(10).c_str());
    } else if (shown++ % 4 == 0 && s->frame->num_rows() > 0) {
      std::printf("  at %3.0f%%: leader = %-22s (est. qty %.0f)\n",
                  100 * s->progress, s->frame->column(0).StringAt(0).c_str(),
                  s->frame->column(1).DoubleAt(0));
    }
  }

  std::string diff;
  bool agree = ola.Final().ApproxEquals(exact.Final(), 1e-9, &diff);
  std::printf("\nOLA final == exact baseline: %s\n", agree ? "yes" : "NO");
  if (!agree) {
    std::printf("%s\n", diff.c_str());
    return 1;
  }
  return 0;
}
