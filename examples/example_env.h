// Shared knobs for the runnable examples.
//
// WAKE_SF scales every example's dataset (TPC-H scale factor, or a row
// multiplier for synthetic data) so CI can smoke-run them at SF 0.01
// without each example growing its own flag surface.
#ifndef WAKE_EXAMPLES_EXAMPLE_ENV_H_
#define WAKE_EXAMPLES_EXAMPLE_ENV_H_

#include <cstdlib>

namespace wake {
namespace examples {

/// TPC-H scale factor: WAKE_SF when set and positive, else `fallback`.
inline double ScaleFactor(double fallback) {
  const char* env = std::getenv("WAKE_SF");
  if (env == nullptr) return fallback;
  double sf = std::atof(env);
  return sf > 0.0 ? sf : fallback;
}

}  // namespace examples
}  // namespace wake

#endif  // WAKE_EXAMPLES_EXAMPLE_ENV_H_
