// SQL through the wake::Db session API: prepare a query (from the command
// line, a TPC-H query number, or a built-in default) against generated
// TPC-H data and stream its states from any of the three engines.
//
//   build/examples/sql_ola [--explain] [--no-optimize]
//                          [--mode ola|exact|progressive] [--workers N]
//                          [--timeout-ms N] [--memory-limit-kb N]
//                          [--data gen|tbl|wakeblock] [--data-dir DIR]
//                          [--connect HOST:PORT]
//                          ["SELECT ... FROM ..." | --tpch N]
//
// --mode selects the engine behind the same handle: ola (Wake, streaming
// converging states), exact (blocking baseline, one final state), or
// progressive (ProgressiveDB-style middleware; single-table queries
// only). --workers sizes the session's shared worker pool.
//
// --timeout-ms / --memory-limit-kb attach a resource budget. An OLA run
// that breaches its budget degrades instead of erroring: the query stops
// early and the last converging estimate is printed as a partial answer
// (with its CI), tagged with the breach reason and the fraction of data
// processed.
//
// --data selects the local table source: gen (default) generates TPC-H in
// memory; tbl reads a WriteTblDir directory; wakeblock opens a wake_pack
// output directory lazily, so scans stream block by block and the
// optimizer's pushed-down filters skip blocks their synopses refute.
//
// --connect HOST:PORT runs the same query against a remote wake_server
// instead of generating data locally: identical streaming loop, identical
// final bytes — the handle just happens to be a wake::RemoteQuery.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "api/db.h"
#include "client/client.h"
#include "common/error.h"
#include "example_env.h"
#include "storage/partitioned_table.h"
#include "storage/wakeblock.h"
#include "tpch/dbgen.h"
#include "tpch/queries_sql.h"

using namespace wake;

int main(int argc, char** argv) {
  bool explain = false;
  DbOptions db_options;
  RunOptions run_options;
  std::string mode = "ola";
  std::string connect;
  std::string data = "gen";
  std::string data_dir;
  std::string query =
      "SELECT l_shipmode, SUM(l_extendedprice * (1 - l_discount)) "
      "AS revenue, COUNT(*) AS items FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "WHERE o_orderdate >= DATE '1995-01-01' "
      "GROUP BY l_shipmode ORDER BY revenue DESC";
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--explain") {
        explain = true;
      } else if (arg == "--no-optimize") {
        db_options.optimize = false;
      } else if (arg == "--mode") {
        if (i + 1 >= argc) throw Error("--mode needs ola|exact|progressive");
        mode = argv[++i];
        if (mode == "ola") {
          run_options.engine = QueryEngine::kOla;
        } else if (mode == "exact") {
          run_options.engine = QueryEngine::kExact;
        } else if (mode == "progressive") {
          run_options.engine = QueryEngine::kProgressive;
        } else {
          throw Error("unknown --mode '" + mode + "'");
        }
      } else if (arg == "--workers") {
        if (i + 1 >= argc) throw Error("--workers needs a count");
        char* end = nullptr;
        long n = std::strtol(argv[++i], &end, 10);
        if (end == argv[i] || *end != '\0' || n < 0) {
          throw Error("--workers needs a non-negative count");
        }
        db_options.workers = static_cast<size_t>(n);
      } else if (arg == "--timeout-ms") {
        if (i + 1 >= argc) throw Error("--timeout-ms needs a count");
        run_options.timeout_ms = std::atol(argv[++i]);
        run_options.with_ci = true;  // a partial answer needs its CI
      } else if (arg == "--memory-limit-kb") {
        if (i + 1 >= argc) throw Error("--memory-limit-kb needs a count");
        run_options.memory_limit_bytes =
            static_cast<size_t>(std::atol(argv[++i])) * 1024;
        run_options.with_ci = true;
      } else if (arg == "--connect") {
        if (i + 1 >= argc) throw Error("--connect needs HOST:PORT");
        connect = argv[++i];
        if (connect.rfind(':') == std::string::npos) {
          throw Error("--connect needs HOST:PORT");
        }
      } else if (arg == "--data") {
        if (i + 1 >= argc) throw Error("--data needs gen|tbl|wakeblock");
        data = argv[++i];
        if (data != "gen" && data != "tbl" && data != "wakeblock") {
          throw Error("unknown --data '" + data + "'");
        }
      } else if (arg == "--data-dir") {
        if (i + 1 >= argc) throw Error("--data-dir needs a directory");
        data_dir = argv[++i];
      } else if (arg == "--tpch") {
        if (i + 1 >= argc) throw Error("--tpch needs a query number (1-22)");
        query = tpch::QuerySql(std::atoi(argv[++i]));
      } else {
        query = arg;
      }
    }
    if (data != "gen" && data_dir.empty()) {
      throw Error("--data " + data + " needs --data-dir DIR");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // Streaming loop + terminal report, shared by the local QueryHandle and
  // the remote wake::RemoteQuery — both speak Next()/Result().
  auto stream_and_report = [](auto& handle) -> int {
    while (auto s = handle.Next()) {
      if (!s->is_final && s->frame->num_rows() > 0) {
        std::printf("estimate at %3.0f%% progress: %zu rows, first row: ",
                    100 * s->progress, s->frame->num_rows());
        for (size_t c = 0; c < s->frame->num_columns(); ++c) {
          std::printf("%s%s", c ? " | " : "",
                      s->frame->column(c).GetValue(0).ToString().c_str());
        }
        std::printf("\n");
      }
    }
    try {
      QueryResult result = handle.Result();
      if (result.status == ResultStatus::kPartialBudget) {
        std::printf(
            "\npartial answer (budget stop: %s; %.0f%% of data "
            "processed):\n%s",
            BreachReasonName(result.breach), 100 * result.progress,
            result.frame->ToString(15).c_str());
      } else {
        std::printf("\nfinal (exact) result:\n%s",
                    result.frame->ToString(15).c_str());
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                   e.what());
      return 1;
    }
    return 0;
  };

  if (!connect.empty()) {
    size_t colon = connect.rfind(':');
    ClientOptions client_options;
    client_options.host = connect.substr(0, colon);
    client_options.port =
        static_cast<uint16_t>(std::atoi(connect.c_str() + colon + 1));
    client_options.client_name = "sql_ola";
    RemoteRunOptions remote;
    remote.engine = run_options.engine;
    remote.with_ci = run_options.with_ci;
    remote.on_breach = run_options.on_breach;
    remote.memory_limit_bytes = run_options.memory_limit_bytes;
    remote.timeout_ms = run_options.timeout_ms;
    std::printf("query (%s engine, remote %s):\n  %s\n\n", mode.c_str(),
                connect.c_str(), query.c_str());
    try {
      Client client(client_options);
      RemoteQuery handle = client.Submit(query, remote);
      return stream_and_report(handle);
    } catch (const Error& e) {
      std::fprintf(stderr, "%s error%s: %s\n",
                   ErrorCategoryName(e.category()),
                   e.retryable() ? " (retryable)" : "", e.what());
      return 1;
    }
  }

  Catalog catalog;
  try {
    if (data == "tbl") {
      catalog = OpenTblCatalog(data_dir);
    } else if (data == "wakeblock") {
      catalog = wakeblock::OpenCatalog(data_dir);
    } else {
      tpch::DbgenConfig cfg;
      cfg.scale_factor = examples::ScaleFactor(0.02);
      cfg.partitions = 10;
      catalog = tpch::Generate(cfg);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 1;
  }

  std::printf("query (%s engine):\n  %s\n\n", mode.c_str(), query.c_str());
  Db db(&catalog, db_options);
  std::optional<PreparedQuery> prepared;
  try {
    prepared = db.Prepare(query);
  } catch (const Error& e) {
    // Categories make dispatch explicit: parse errors carry the offset,
    // plan errors name the failing construct.
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 1;
  }
  if (explain) {
    std::printf("plan:\n%s\n", prepared->Explain().c_str());
  }

  QueryHandle handle = prepared->Run(run_options);
  return stream_and_report(handle);
}
