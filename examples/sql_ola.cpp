// SQL with online aggregation: run a SQL query (from the command line, a
// TPC-H query number, or a built-in default) against generated TPC-H data
// and stream the converging OLA states — the declarative interface the
// paper lists as future work, running on the Deep-OLA engine. Queries are
// run through the logical optimizer (plan/optimizer.h) first; pass
// --explain to print the plan before and after optimization.
//
//   build/examples/sql_ola [--explain] [--no-optimize]
//                          ["SELECT ... FROM ..." | --tpch N]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "core/engine.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries_sql.h"

using namespace wake;

int main(int argc, char** argv) {
  bool explain = false;
  bool optimize = true;
  std::string query =
      "SELECT l_shipmode, SUM(l_extendedprice * (1 - l_discount)) "
      "AS revenue, COUNT(*) AS items FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "WHERE o_orderdate >= DATE '1995-01-01' "
      "GROUP BY l_shipmode ORDER BY revenue DESC";
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--explain") {
        explain = true;
      } else if (arg == "--no-optimize") {
        optimize = false;
      } else if (arg == "--tpch") {
        if (i + 1 >= argc) throw Error("--tpch needs a query number (1-22)");
        query = tpch::QuerySql(std::atoi(argv[++i]));
      } else {
        query = arg;
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.02;
  cfg.partitions = 10;
  Catalog catalog = tpch::Generate(cfg);

  std::printf("query:\n  %s\n\n", query.c_str());
  Plan plan;
  try {
    plan = sql::Parse(query);
    if (explain) {
      std::printf("parsed plan:\n%s\n", PlanToString(plan.node()).c_str());
    }
    if (optimize) {
      plan = Optimize(plan, catalog);
      if (explain) {
        std::printf("optimized plan:\n%s\n",
                    PlanToString(plan.node()).c_str());
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  WakeEngine engine(&catalog);
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) {
      std::printf("\nfinal (exact) result:\n%s", s.frame->ToString(15).c_str());
    } else if (s.frame->num_rows() > 0) {
      std::printf("estimate at %3.0f%% progress: %zu rows, first row: ",
                  100 * s.progress, s.frame->num_rows());
      for (size_t c = 0; c < s.frame->num_columns(); ++c) {
        std::printf("%s%s", c ? " | " : "",
                    s.frame->column(c).GetValue(0).ToString().c_str());
      }
      std::printf("\n");
    }
  });
  return 0;
}
