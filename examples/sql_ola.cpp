// SQL with online aggregation: run a SQL query (from the command line or a
// built-in default) against generated TPC-H data and stream the converging
// OLA states — the declarative interface the paper lists as future work,
// running on the Deep-OLA engine.
//
//   build/examples/sql_ola ["SELECT ... FROM ..."]
#include <cstdio>

#include "common/error.h"
#include "core/engine.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"

using namespace wake;

int main(int argc, char** argv) {
  const char* query =
      argc > 1 ? argv[1]
               : "SELECT l_shipmode, SUM(l_extendedprice * (1 - l_discount)) "
                 "AS revenue, COUNT(*) AS items FROM lineitem "
                 "JOIN orders ON l_orderkey = o_orderkey "
                 "WHERE o_orderdate >= DATE '1995-01-01' "
                 "GROUP BY l_shipmode ORDER BY revenue DESC";

  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.02;
  cfg.partitions = 10;
  Catalog catalog = tpch::Generate(cfg);

  std::printf("query:\n  %s\n\n", query);
  Plan plan;
  try {
    plan = sql::Parse(query);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  WakeEngine engine(&catalog);
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) {
      std::printf("\nfinal (exact) result:\n%s", s.frame->ToString(15).c_str());
    } else if (s.frame->num_rows() > 0) {
      std::printf("estimate at %3.0f%% progress: %zu rows, first row: ",
                  100 * s.progress, s.frame->num_rows());
      for (size_t c = 0; c < s.frame->num_columns(); ++c) {
        std::printf("%s%s", c ? " | " : "",
                    s.frame->column(c).GetValue(0).ToString().c_str());
      }
      std::printf("\n");
    }
  });
  return 0;
}
