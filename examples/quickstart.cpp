// Quickstart: generate a small TPC-H dataset, prepare a deep OLA query
// through the wake::Db session API, and pull the converging estimates
// from a streaming cursor.
//
//   build/examples/quickstart
//
// The query is "average order size of shipped items per order" — an
// aggregation over an aggregation, which classic OLA systems cannot
// process incrementally but Wake handles natively (the paper's Deep OLA).
#include <cstdio>

#include "api/db.h"
#include "common/error.h"
#include "example_env.h"
#include "tpch/dbgen.h"

using namespace wake;

int main() {
  // 1. Data: an in-process TPC-H generator stands in for a data lake.
  tpch::DbgenConfig cfg;
  cfg.scale_factor = examples::ScaleFactor(0.02);  // ~120k lineitem rows
  cfg.partitions = 10;  // OLA granularity: one estimate per partition
  Catalog catalog = tpch::Generate(cfg);
  std::printf("generated TPC-H SF=%.2f: %zu lineitem rows in %zu partitions\n\n",
              cfg.scale_factor, catalog.Get("lineitem").total_rows(),
              catalog.Get("lineitem").num_partitions());

  // 2. A session over the catalog: Prepare parses + optimizes once; the
  //    prepared query is reusable.
  Db db(&catalog);
  PreparedQuery query = db.Prepare(
      "SELECT AVG(order_qty) AS avg_order_size "
      "FROM (SELECT SUM(l_quantity) AS order_qty "
      "      FROM lineitem GROUP BY l_orderkey)");

  // 3. Run without blocking and pull the converging states.
  QueryHandle handle = query.Run();
  std::printf("%8s %10s %18s\n", "state", "progress", "avg order size");
  int state_idx = 0;
  while (auto s = handle.Next()) {
    if (s->frame->num_rows() == 0) continue;
    std::printf("%8d %9.0f%% %18.3f%s\n", state_idx++, 100 * s->progress,
                s->frame->column(0).DoubleAt(0),
                s->is_final ? "  <- exact" : "");
  }
  // The cursor ends on completion, cancellation, or failure alike;
  // Final() is what surfaces a failed run as an error exit.
  try {
    handle.Final();
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 1;
  }
  return 0;
}
