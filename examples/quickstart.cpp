// Quickstart: generate a small TPC-H dataset, run a deep OLA query through
// the evolving-data-frame API, and watch the estimates converge.
//
//   build/examples/quickstart
//
// The query is "average order size of shipped items per ship mode" — an
// aggregation over an aggregation, which classic OLA systems cannot
// process incrementally but edfs handle natively (the paper's Deep OLA).
#include <cstdio>

#include "core/edf.h"
#include "tpch/dbgen.h"

using namespace wake;

int main() {
  // 1. Data: an in-process TPC-H generator stands in for a data lake.
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.02;  // ~120k lineitem rows
  cfg.partitions = 10;      // OLA granularity: one estimate per partition
  Catalog catalog = tpch::Generate(cfg);
  std::printf("generated TPC-H SF=%.2f: %zu lineitem rows in %zu partitions\n\n",
              cfg.scale_factor, catalog.Get("lineitem").total_rows(),
              catalog.Get("lineitem").num_partitions());

  // 2. Build the deep query with evolving data frames. Every operation on
  //    an edf yields another edf (closure, §3 of the paper).
  EdfSession session(&catalog);
  Edf per_order =
      session.Read("lineitem").Sum("l_quantity", {"l_orderkey"});
  Edf avg_order_size = per_order.Avg("sum_l_quantity", {});

  // 3. Stream the converging estimates.
  std::printf("%8s %10s %18s\n", "state", "progress", "avg order size");
  int state_idx = 0;
  avg_order_size.Subscribe([&](const OlaState& s) {
    if (s.frame->num_rows() == 0) return;
    std::printf("%8d %9.0f%% %18.3f%s\n", state_idx++, 100 * s.progress,
                s.frame->column(0).DoubleAt(0), s.is_final ? "  <- exact" : "");
  });
  return 0;
}
