// Progressive dashboard with confidence intervals (§6 of the paper):
// TPC-H Q14's promo-revenue share rendered as a live text gauge with a 95%
// Chebyshev interval that tightens as more partitions arrive. Runs through
// wake::Db with a callback subscription (RunOptions::on_state).
//
// The run carries a memory budget: if the query's materialized partials
// cross it, the engine degrades gracefully — the dashboard keeps the
// last converging estimate and renders it as a budget-limited partial
// answer instead of erroring out.
#include <cstdio>
#include <string>

#include "api/db.h"
#include "common/error.h"
#include "core/ci.h"
#include "example_env.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace wake;

namespace {

std::string Gauge(double lo, double value, double hi, double axis_max) {
  constexpr int kWidth = 52;
  auto pos = [&](double x) {
    int p = static_cast<int>(x / axis_max * (kWidth - 1));
    return std::min(std::max(p, 0), kWidth - 1);
  };
  std::string bar(kWidth, ' ');
  for (int i = pos(lo); i <= pos(hi); ++i) bar[i] = '-';
  bar[pos(lo)] = '[';
  bar[pos(hi)] = ']';
  bar[pos(value)] = '*';
  return bar;
}

}  // namespace

int main() {
  tpch::DbgenConfig cfg;
  cfg.scale_factor = examples::ScaleFactor(0.05);
  cfg.partitions = 16;
  Catalog catalog = tpch::Generate(cfg);

  Db db(&catalog);
  PreparedQuery query = db.Prepare(tpch::Query(14));

  std::printf("Q14 promo revenue share, 95%% CI (k=%.2f)\n\n", ChebyshevK(0.95));
  std::printf("%9s  %-52s  %s\n", "progress", "0% ......... share ......... 40%",
              "estimate [lo, hi]");
  RunOptions run;
  run.with_ci = true;
  // Generous for this scale factor — raises no breach in the smoke run,
  // but a heavier dataset degrades to a partial gauge instead of OOMing.
  run.memory_limit_bytes = size_t{64} << 20;
  run.on_state = [&](const OlaState& s) {
    if (s.frame->num_rows() == 0) return;
    double est = s.frame->ColumnByName("promo_revenue").DoubleAt(0);
    double var = 0.0;
    if (s.variances != nullptr) {
      auto it = s.variances->find("promo_revenue");
      if (it != s.variances->end() && !it->second.empty()) var = it->second[0];
    }
    ConfidenceInterval ci = ChebyshevInterval(est, var, 0.95);
    std::printf("%8.0f%%  %-52s  %.2f [%.2f, %.2f]%s\n", 100 * s.progress,
                Gauge(ci.lo, est, ci.hi, 40.0).c_str(), est, ci.lo, ci.hi,
                s.is_final ? "  <- exact" : "");
  };
  QueryHandle handle = query.Run(run);
  try {
    // Joins the run; surfaces a failed run as an error. A budget breach
    // is NOT an error: the gauge's last estimate stands, flagged below.
    QueryResult result = handle.Result();
    if (result.status == ResultStatus::kPartialBudget) {
      std::printf(
          "\nbudget-limited partial answer (%s; %.0f%% of data): the CI "
          "above is the final estimate\n",
          BreachReasonName(result.breach), 100 * result.progress);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 1;
  }
  return 0;
}
