// Deep OLA on a synthetic event stream: a four-level cascade
// (per-session max -> per-user sum -> per-region avg -> global max) over a
// clustered event table, showing that every level keeps producing
// converging estimates — op(op(op(op(data)))), the title capability of the
// paper. Prepared once and pulled from a wake::Db cursor.
#include <cstdio>

#include "api/db.h"
#include "common/error.h"
#include "common/rng.h"
#include "example_env.h"

using namespace wake;

namespace {

Catalog EventsCatalog(size_t rows, size_t partitions) {
  Schema schema({{"session_id", ValueType::kInt64},
                 {"user_id", ValueType::kInt64},
                 {"region", ValueType::kString},
                 {"latency_ms", ValueType::kFloat64}});
  schema.set_primary_key({"session_id"});
  schema.set_clustering_key({"session_id"});
  DataFrame df(schema);
  Rng rng(2023);
  const char* regions[] = {"us-east", "us-west", "eu", "apac"};
  int64_t session = 0;
  while (df.num_rows() < rows) {
    ++session;
    int64_t user = rng.UniformInt(1, static_cast<int64_t>(rows / 40));
    const char* region = regions[user % 4];
    int events = static_cast<int>(rng.UniformInt(1, 8));
    for (int e = 0; e < events && df.num_rows() < rows; ++e) {
      df.mutable_column(0)->AppendInt(session);
      df.mutable_column(1)->AppendInt(user);
      df.mutable_column(2)->AppendString(region);
      df.mutable_column(3)->AppendDouble(5.0 + 95.0 * rng.UniformDouble());
    }
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("events", df, partitions)));
  return cat;
}

}  // namespace

int main() {
  // WAKE_SF rescales the synthetic table the same way it rescales TPC-H
  // in the other examples (default 0.05 ~ 120k events).
  size_t rows = static_cast<size_t>(examples::ScaleFactor(0.05) * 2400000);
  if (rows < 2000) rows = 2000;
  Catalog catalog = EventsCatalog(rows, 12);

  // Depth-4 cascade. Level 1 is a local aggregation (session_id is the
  // clustering key); the rest are shuffle aggregations with growth-based
  // inference at every level.
  Plan worst_region =
      Plan::Scan("events")
          .Aggregate({"session_id", "user_id", "region"},
                     {Max("latency_ms", "peak")})
          .Aggregate({"user_id", "region"}, {Sum("peak", "load")})
          .Aggregate({"region"}, {Avg("load", "avg_load")})
          .Sort({{"avg_load", true}}, 1);

  Db db(&catalog);
  QueryHandle handle = db.Prepare(worst_region).Run();

  std::printf("worst region by average user latency-load (deep OLA, depth 4):\n");
  std::printf("%9s %12s %18s\n", "progress", "region", "avg load (est)");
  while (auto s = handle.Next()) {
    if (s->frame->num_rows() == 0) continue;
    std::printf("%8.0f%% %12s %18.2f%s\n", 100 * s->progress,
                s->frame->column(0).StringAt(0).c_str(),
                s->frame->column(1).DoubleAt(0),
                s->is_final ? "  <- exact" : "");
  }
  try {
    handle.Final();
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 1;
  }
  return 0;
}
