// Deep OLA on a synthetic event stream: a four-level cascade
// (per-session max -> per-user sum -> per-region avg -> global max) over a
// clustered event table, showing that every level keeps producing
// converging estimates — op(op(op(op(data)))), the title capability of the
// paper.
#include <cstdio>

#include "common/rng.h"
#include "core/edf.h"

using namespace wake;

namespace {

Catalog EventsCatalog(size_t rows, size_t partitions) {
  Schema schema({{"session_id", ValueType::kInt64},
                 {"user_id", ValueType::kInt64},
                 {"region", ValueType::kString},
                 {"latency_ms", ValueType::kFloat64}});
  schema.set_primary_key({"session_id"});
  schema.set_clustering_key({"session_id"});
  DataFrame df(schema);
  Rng rng(2023);
  const char* regions[] = {"us-east", "us-west", "eu", "apac"};
  int64_t session = 0;
  while (df.num_rows() < rows) {
    ++session;
    int64_t user = rng.UniformInt(1, static_cast<int64_t>(rows / 40));
    const char* region = regions[user % 4];
    int events = static_cast<int>(rng.UniformInt(1, 8));
    for (int e = 0; e < events && df.num_rows() < rows; ++e) {
      df.mutable_column(0)->AppendInt(session);
      df.mutable_column(1)->AppendInt(user);
      df.mutable_column(2)->AppendString(region);
      df.mutable_column(3)->AppendDouble(5.0 + 95.0 * rng.UniformDouble());
    }
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("events", df, partitions)));
  return cat;
}

}  // namespace

int main() {
  Catalog catalog = EventsCatalog(120000, 12);
  EdfSession session(&catalog);

  // Depth-4 cascade. Level 1 is a local aggregation (session_id is the
  // clustering key); the rest are shuffle aggregations with growth-based
  // inference at every level.
  Edf session_peak = session.Read("events").Max(
      "latency_ms", {"session_id", "user_id", "region"});
  Edf user_load = session_peak.Sum("max_latency_ms", {"user_id", "region"});
  Edf region_avg = user_load.Avg("sum_max_latency_ms", {"region"});
  Edf worst_region =
      region_avg.Sort({{"avg_sum_max_latency_ms", true}}, 1);

  std::printf("worst region by average user latency-load (deep OLA, depth 4):\n");
  std::printf("%9s %12s %18s\n", "progress", "region", "avg load (est)");
  worst_region.Subscribe([&](const OlaState& s) {
    if (s.frame->num_rows() == 0) return;
    std::printf("%8.0f%% %12s %18.2f%s\n", 100 * s.progress,
                s.frame->column(0).StringAt(0).c_str(),
                s.frame->column(1).DoubleAt(0),
                s.is_final ? "  <- exact" : "");
  });
  return 0;
}
