// wake_pack: converts tables into the wakeblock native columnar format.
//
//   build/examples/wake_pack --out DIR [--gen-tpch] [--sf X]
//                            [--partitions N] [--in TBL_DIR]
//                            [--block-rows N]
//
// Two sources, one sink:
//   --gen-tpch     generate the eight TPC-H tables in memory (--sf scale
//                  factor, --partitions partitions per table) — the
//                  default when --in is not given
//   --in TBL_DIR   read every `<name>.meta` table from a directory written
//                  by PartitionedTable::WriteTblDir
//
// Every source table is packed into `<out>/<table>/` (table.meta +
// one `<field>.col` per column); --block-rows sets the nominal rows per
// block. Engines open the result with `--data wakeblock --data-dir DIR`
// (sql_ola, server_load) or wakeblock::OpenCatalog in code.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/stopwatch.h"
#include "example_env.h"
#include "storage/partitioned_table.h"
#include "storage/wakeblock.h"
#include "tpch/dbgen.h"

using namespace wake;

int main(int argc, char** argv) {
  std::string out;
  std::string in;
  bool gen_tpch = false;
  double sf = examples::ScaleFactor(0.01);
  size_t partitions = 8;
  wakeblock::WriteOptions write_options;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--out") {
        if (i + 1 >= argc) throw Error("--out needs a directory");
        out = argv[++i];
      } else if (arg == "--in") {
        if (i + 1 >= argc) throw Error("--in needs a tbl directory");
        in = argv[++i];
      } else if (arg == "--gen-tpch") {
        gen_tpch = true;
      } else if (arg == "--sf") {
        if (i + 1 >= argc) throw Error("--sf needs a scale factor");
        sf = std::atof(argv[++i]);
        if (sf <= 0.0) throw Error("--sf needs a positive scale factor");
      } else if (arg == "--partitions") {
        if (i + 1 >= argc) throw Error("--partitions needs a count");
        long n = std::atol(argv[++i]);
        if (n <= 0) throw Error("--partitions needs a positive count");
        partitions = static_cast<size_t>(n);
      } else if (arg == "--block-rows") {
        if (i + 1 >= argc) throw Error("--block-rows needs a count");
        long n = std::atol(argv[++i]);
        if (n <= 0) throw Error("--block-rows needs a positive count");
        write_options.block_rows = static_cast<size_t>(n);
      } else {
        throw Error("unknown argument '" + arg + "'");
      }
    }
    if (out.empty()) throw Error("--out DIR is required");
    if (gen_tpch && !in.empty()) {
      throw Error("--gen-tpch and --in are mutually exclusive");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  try {
    std::vector<PartitionedTable> tables;
    if (in.empty()) {
      tpch::DbgenConfig cfg;
      cfg.scale_factor = sf;
      cfg.partitions = partitions;
      std::printf("generating TPC-H SF=%g (%zu partitions per table)\n", sf,
                  partitions);
      Catalog catalog = tpch::Generate(cfg);
      for (const auto& name : catalog.TableNames()) {
        tables.push_back(catalog.Get(name));
      }
    } else {
      std::printf("reading tbl tables from %s\n", in.c_str());
      Catalog catalog = OpenTblCatalog(in);
      for (const auto& name : catalog.TableNames()) {
        tables.push_back(catalog.Get(name));
      }
    }

    std::filesystem::create_directories(out);
    Stopwatch clock;
    size_t total_rows = 0;
    for (const auto& table : tables) {
      wakeblock::Write(table, out, write_options);
      wakeblock::BlockTablePtr packed =
          wakeblock::BlockTable::Open(out, table.name());
      total_rows += packed->total_rows();
      std::printf("  %-10s %10zu rows  %6zu blocks\n", table.name().c_str(),
                  packed->total_rows(), packed->num_blocks());
    }
    std::printf("packed %zu tables (%zu rows) into %s in %.2fs\n",
                tables.size(), total_rows, out.c_str(),
                clock.ElapsedSeconds());
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error: %s\n", ErrorCategoryName(e.category()),
                 e.what());
    return 1;
  }
  return 0;
}
