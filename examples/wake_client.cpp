// Streaming remote client for a running wake_server.
//
//   build/examples/wake_client [--connect HOST:PORT] [--tpch N] [--ci]
//                              [--repeat N] ["SELECT ..."]
//
// Connects with exponential backoff (the server may still be starting),
// submits the query, and renders the stream of converging OLA estimates
// exactly as an in-process QueryHandle would deliver them — the final
// frame is byte-identical to local execution. --repeat hammers the same
// query through Execute(), the retry loop that transparently survives
// queue-full rejections, reconnects, and drain windows; the run report
// includes the client's reconnect/resubmission/retry counters.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "client/client.h"
#include "common/error.h"
#include "tpch/queries_sql.h"

using namespace wake;

int main(int argc, char** argv) {
  ClientOptions client_options;
  client_options.port = 14641;
  client_options.client_name = "wake_client example";
  RemoteRunOptions run_options;
  int repeat = 1;
  std::string query =
      "SELECT l_shipmode, SUM(l_extendedprice * (1 - l_discount)) "
      "AS revenue, COUNT(*) AS items FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "WHERE o_orderdate >= DATE '1995-01-01' "
      "GROUP BY l_shipmode ORDER BY revenue DESC";
  try {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--connect") {
        if (i + 1 >= argc) throw Error("--connect needs HOST:PORT");
        std::string target = argv[++i];
        size_t colon = target.rfind(':');
        if (colon == std::string::npos) throw Error("--connect needs HOST:PORT");
        client_options.host = target.substr(0, colon);
        client_options.port =
            static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
      } else if (arg == "--tpch") {
        if (i + 1 >= argc) throw Error("--tpch needs a query number (1-22)");
        query = tpch::QuerySql(std::atoi(argv[++i]));
      } else if (arg == "--ci") {
        run_options.with_ci = true;
      } else if (arg == "--repeat") {
        if (i + 1 >= argc) throw Error("--repeat needs a count");
        repeat = std::atoi(argv[++i]);
      } else {
        query = arg;
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  try {
    Client client(client_options);
    client.Connect();
    std::printf("connected to %s:%u (session %llu)\nquery:\n  %s\n\n",
                client_options.host.c_str(), client_options.port,
                static_cast<unsigned long long>(client.session_id()),
                query.c_str());

    for (int round = 1; round < repeat; ++round) {
      QueryResult result = client.Execute(query, run_options);
      std::printf("round %d/%d: %zu rows (%s)\n", round, repeat,
                  result.frame ? result.frame->num_rows() : 0,
                  result.status == ResultStatus::kFinal ? "final" : "partial");
    }

    // Last round streams, so the converging estimates are visible.
    RemoteQuery handle = client.Submit(query, run_options);
    while (auto s = handle.Next()) {
      if (!s->is_final && s->frame->num_rows() > 0) {
        std::printf("estimate at %3.0f%% progress: %zu rows, first row: ",
                    100 * s->progress, s->frame->num_rows());
        for (size_t c = 0; c < s->frame->num_columns(); ++c) {
          std::printf("%s%s", c ? " | " : "",
                      s->frame->column(c).GetValue(0).ToString().c_str());
        }
        std::printf("\n");
      }
    }
    QueryResult result = handle.Result();
    std::printf("\nfinal result:\n%s", result.frame->ToString(15).c_str());

    ClientStats stats = client.stats();
    std::printf(
        "\nclient: %llu snapshots, %llu reconnects, %llu resubmissions, "
        "%llu retries\n",
        static_cast<unsigned long long>(stats.snapshots_received),
        static_cast<unsigned long long>(stats.reconnects),
        static_cast<unsigned long long>(stats.resubmissions),
        static_cast<unsigned long long>(stats.execute_retries));
    client.Close();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s error%s: %s\n", ErrorCategoryName(e.category()),
                 e.retryable() ? " (retryable)" : "", e.what());
    return 1;
  }
}
