#include "common/rng.h"

#include <gtest/gtest.h>

#include <numeric>

#include <algorithm>
#include <cmath>
#include <set>

namespace wake {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntStaysInRangeAndHitsEndpoints) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
    saw_lo |= v == -3;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ZipfStaysInRangeAndSkewsLow) {
  Rng rng(17);
  constexpr int64_t kN = 1000;
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Zipf(kN, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, kN);
    low += v <= 10;
  }
  // Zipf(1.2) concentrates mass on small values.
  EXPECT_GT(low, 4000);
}

TEST(RngTest, ChoicePicksAllElements) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Choice(items));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace wake
