#include "common/string_dict.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace wake {
namespace {

TEST(StringDictTest, InternReturnsDenseStableCodes) {
  StringDict dict;
  EXPECT_EQ(dict.Intern("alpha"), 0);
  EXPECT_EQ(dict.Intern("beta"), 1);
  EXPECT_EQ(dict.Intern("alpha"), 0);  // idempotent
  EXPECT_EQ(dict.Intern("gamma"), 2);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.At(0), "alpha");
  EXPECT_EQ(dict.At(2), "gamma");
}

TEST(StringDictTest, FindDoesNotIntern) {
  StringDict dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Find("x"), 0);
  EXPECT_EQ(dict.Find("absent"), StringDict::kNotFound);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(StringDictTest, EmptyStringIsAValue) {
  StringDict dict;
  EXPECT_EQ(dict.Intern(""), 0);
  EXPECT_EQ(dict.Find(""), 0);
  EXPECT_EQ(dict.At(0), "");
}

TEST(StringDictTest, PreHashMatchesPlainFnv) {
  // The whole encoding-compatibility story rests on this: dict-encoded
  // rows mix HashAt(code), plain rows mix FnvHash64(bytes); they must be
  // the same value.
  StringDict dict;
  std::string s = "carefully final deposits";
  int32_t code = dict.Intern(s);
  EXPECT_EQ(dict.HashAt(code), FnvHash64(s.data(), s.size()));
  EXPECT_EQ(dict.hash_data()[code], dict.HashAt(code));
}

TEST(StringDictTest, ManyEntriesSurviveGrowth) {
  StringDict dict;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(dict.Intern("entry_" + std::to_string(i)), i);
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(dict.Find("entry_" + std::to_string(i)), i);
    EXPECT_EQ(dict.At(i), "entry_" + std::to_string(i));
  }
}

TEST(StringDictTest, CopyPreservesCodes) {
  StringDict dict;
  dict.Intern("a");
  dict.Intern("b");
  StringDict clone(dict);
  EXPECT_EQ(clone.Find("b"), 1);
  clone.Intern("c");
  EXPECT_EQ(clone.size(), 3u);
  EXPECT_EQ(dict.size(), 2u);  // original untouched
}

TEST(StringDictTest, ByteSizeGrowsWithEntries) {
  StringDict small;
  small.Intern("x");
  StringDict big;
  std::string long_str(200, 'y');
  for (int i = 0; i < 100; ++i) big.Intern(long_str + std::to_string(i));
  EXPECT_GT(big.ByteSize(), small.ByteSize());
  EXPECT_GE(big.ByteSize(), 100 * 200u);  // heap payloads counted
}

}  // namespace
}  // namespace wake
