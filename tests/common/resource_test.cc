// ResourceTracker and AdmissionController unit tests: breach latching,
// parent (session) accounting, release semantics, FIFO admission.
#include "common/resource.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.h"

namespace wake {
namespace {

TEST(ResourceTrackerTest, UnarmedTrackerNeverBreaches) {
  ResourceTracker t;
  t.Charge(1u << 30);
  t.ChargeRows(1u << 30);
  EXPECT_FALSE(t.CheckBreach());
  EXPECT_FALSE(t.breached());
  EXPECT_EQ(t.reason(), BreachReason::kNone);
}

TEST(ResourceTrackerTest, MemoryBreachLatchesAndFiresCallbackOnce) {
  ResourceTracker t;
  QueryBudget budget;
  budget.memory_limit_bytes = 1000;
  t.Arm(budget);
  std::atomic<int> fired{0};
  t.set_on_breach([&] { ++fired; });

  t.Charge(600);
  EXPECT_FALSE(t.breached());
  EXPECT_EQ(t.used_bytes(), 600u);

  t.Charge(500);  // 1100 > 1000
  EXPECT_TRUE(t.breached());
  EXPECT_EQ(t.reason(), BreachReason::kMemory);
  EXPECT_EQ(fired.load(), 1);

  // Latched: more charges change nothing, the callback stays one-shot.
  t.Charge(10000);
  EXPECT_EQ(t.reason(), BreachReason::kMemory);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(t.CheckBreach());
  EXPECT_FALSE(t.BreachMessage().empty());
}

TEST(ResourceTrackerTest, CreditBalancesAndClampsAtZero) {
  ResourceTracker t;
  QueryBudget budget;
  budget.memory_limit_bytes = 1000;
  t.Arm(budget);
  t.Charge(400);
  t.Credit(300);
  EXPECT_EQ(t.used_bytes(), 100u);
  // Crediting more than charged clamps the readable value at zero.
  t.Credit(500);
  EXPECT_EQ(t.used_bytes(), 0u);
  // Balanced traffic below the limit never breaches.
  for (int i = 0; i < 100; ++i) {
    t.Charge(900);
    t.Credit(900);
  }
  EXPECT_FALSE(t.breached());
}

TEST(ResourceTrackerTest, SyncTracksRemeasuredState) {
  ResourceTracker t;
  QueryBudget budget;
  budget.memory_limit_bytes = 1000;
  t.Arm(budget);
  size_t accounted = 0;
  t.Sync(300, &accounted);
  EXPECT_EQ(accounted, 300u);
  EXPECT_EQ(t.used_bytes(), 300u);
  t.Sync(200, &accounted);  // state shrank
  EXPECT_EQ(accounted, 200u);
  EXPECT_EQ(t.used_bytes(), 200u);
  t.Sync(1500, &accounted);  // state grew past the limit
  EXPECT_TRUE(t.breached());
  EXPECT_EQ(t.reason(), BreachReason::kMemory);
}

TEST(ResourceTrackerTest, DeadlineBreachesOnPoll) {
  ResourceTracker t;
  QueryBudget budget;
  budget.timeout_ms = 1;
  t.Arm(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(t.CheckBreach());
  EXPECT_EQ(t.reason(), BreachReason::kDeadline);
}

TEST(ResourceTrackerTest, RowsScannedBreach) {
  ResourceTracker t;
  QueryBudget budget;
  budget.max_rows_scanned = 100;
  t.Arm(budget);
  t.ChargeRows(60);
  EXPECT_FALSE(t.breached());
  t.ChargeRows(60);
  EXPECT_TRUE(t.breached());
  EXPECT_EQ(t.reason(), BreachReason::kRowsScanned);
  EXPECT_EQ(t.rows_scanned(), 120u);
}

TEST(ResourceTrackerTest, SessionParentBreachesTheChargingChild) {
  ResourceTracker session;
  session.ArmSessionLimit(1000);
  ResourceTracker a;
  ResourceTracker b;
  a.Arm(QueryBudget{}, &session);
  b.Arm(QueryBudget{}, &session);

  a.Charge(800);
  EXPECT_FALSE(a.breached());
  EXPECT_FALSE(session.breached());

  b.Charge(300);  // session total 1100 > 1000
  EXPECT_TRUE(b.breached());
  EXPECT_EQ(b.reason(), BreachReason::kSessionMemory);
  // The well-behaved neighbour keeps running unbreached.
  EXPECT_FALSE(a.breached());

  // Releasing a child settles its outstanding balance with the session.
  a.Release();
  EXPECT_EQ(session.used_bytes(), 300u);
  b.Release();
  EXPECT_EQ(session.used_bytes(), 0u);
}

TEST(ResourceTrackerTest, ReleaseMakesMutatorsNoOps) {
  ResourceTracker session;
  session.ArmSessionLimit(1 << 20);
  ResourceTracker t;
  t.Arm(QueryBudget{}, &session);
  t.Charge(500);
  t.Release();
  EXPECT_EQ(session.used_bytes(), 0u);
  // Late traffic (a consumer still draining a state stream) is harmless.
  t.Charge(400);
  t.Credit(100);
  t.ChargeRows(50);
  EXPECT_EQ(session.used_bytes(), 0u);
  t.Release();  // idempotent
}

TEST(ResourceTrackerTest, ConcurrentChargesBreachExactlyOnce) {
  ResourceTracker t;
  QueryBudget budget;
  budget.memory_limit_bytes = 1000;
  t.Arm(budget);
  std::atomic<int> fired{0};
  t.set_on_breach([&] { ++fired; });
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < 1000; ++j) t.Charge(10);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(t.breached());
  EXPECT_EQ(fired.load(), 1);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, AdmitsUpToMaxActiveThenQueues) {
  AdmissionController adm(2, 4);
  auto t1 = adm.Submit();
  auto t2 = adm.Submit();
  EXPECT_EQ(adm.Await(t1, 0), AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(adm.Await(t2, 0), AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(adm.active(), 2u);
  auto t3 = adm.Submit();
  EXPECT_EQ(adm.queued(), 1u);
  adm.Release(t1);
  EXPECT_EQ(adm.Await(t3, 0), AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(adm.queued(), 0u);
  adm.Release(t2);
  adm.Release(t3);
  EXPECT_EQ(adm.active(), 0u);
}

TEST(AdmissionControllerTest, FullQueueRejectsSynchronously) {
  AdmissionController adm(1, 1);
  auto running = adm.Submit();
  auto queued = adm.Submit();
  try {
    adm.Submit();
    FAIL() << "expected kQueueFull";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kQueueFull);
  }
  adm.Cancel(queued);
  adm.Release(running);
}

TEST(AdmissionControllerTest, ZeroQueueDepthMeansImmediateRejection) {
  AdmissionController adm(1, 0);
  auto running = adm.Submit();
  EXPECT_THROW(adm.Submit(), Error);
  adm.Release(running);
  // Slot free again: next submit admits.
  auto next = adm.Submit();
  EXPECT_EQ(adm.Await(next, 0), AdmissionController::Outcome::kAdmitted);
  adm.Release(next);
}

TEST(AdmissionControllerTest, AwaitTimesOutAndLeavesTheQueue) {
  AdmissionController adm(1, 4);
  auto running = adm.Submit();
  auto waiting = adm.Submit();
  EXPECT_EQ(adm.Await(waiting, 20),
            AdmissionController::Outcome::kTimedOut);
  EXPECT_EQ(adm.queued(), 0u);  // timed-out entries do not linger
  adm.Release(running);
}

TEST(AdmissionControllerTest, CancelWhileQueuedDequeuesImmediately) {
  AdmissionController adm(1, 4);
  auto running = adm.Submit();
  auto queued = adm.Submit();
  adm.Cancel(queued);
  EXPECT_EQ(adm.Await(queued, 0), AdmissionController::Outcome::kCancelled);
  EXPECT_EQ(adm.queued(), 0u);
  // A cancelled entry must not absorb the freed slot.
  auto next = adm.Submit();
  adm.Release(running);
  EXPECT_EQ(adm.Await(next, 1000), AdmissionController::Outcome::kAdmitted);
  adm.Release(next);
}

TEST(AdmissionControllerTest, AdmissionIsFifo) {
  AdmissionController adm(1, 8);
  auto running = adm.Submit();
  std::vector<AdmissionController::TicketPtr> waiters;
  for (int i = 0; i < 3; ++i) waiters.push_back(adm.Submit());

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      if (adm.Await(waiters[i], 0) ==
          AdmissionController::Outcome::kAdmitted) {
        {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back(i);
        }
        adm.Release(waiters[i]);
      }
    });
  }
  adm.Release(running);  // start the cascade
  for (auto& th : threads) th.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));  // Submit order
}

}  // namespace
}  // namespace wake
