#include "common/strings.h"

#include <gtest/gtest.h>

namespace wake {
namespace {

TEST(SplitTest, BasicFields) {
  auto parts = Split("a|b|c", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("|x||", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiter) {
  auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Join(parts, ","), "x,,yz");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyVector) { EXPECT_EQ(Join({}, ","), ""); }

TEST(LikeMatchTest, ExactMatch) {
  EXPECT_TRUE(LikeMatch("MAIL", "MAIL"));
  EXPECT_FALSE(LikeMatch("MAIL", "SHIP"));
  EXPECT_FALSE(LikeMatch("MAIL", "MAI"));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("PROMO ANODIZED TIN", "PROMO%"));
  EXPECT_FALSE(LikeMatch("STANDARD ANODIZED TIN", "PROMO%"));
  EXPECT_TRUE(LikeMatch("LARGE BURNISHED BRASS", "%BRASS"));
  EXPECT_TRUE(LikeMatch("forest green stuff", "%green%"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
}

TEST(LikeMatchTest, MultiplePercents) {
  // The Q13 pattern.
  EXPECT_TRUE(LikeMatch("bold special handling requests",
                        "%special%requests%"));
  EXPECT_FALSE(LikeMatch("special handling", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("specialrequests", "%special%requests%"));
  // The Q16 pattern.
  EXPECT_TRUE(LikeMatch("sly Customer detected Complaints",
                        "%Customer%Complaints%"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("ct", "c_t"));
  EXPECT_TRUE(LikeMatch("cart", "c__t"));
}

TEST(LikeMatchTest, BacktrackingIsCorrect) {
  // Requires retrying the '%' expansion.
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
  EXPECT_FALSE(LikeMatch("abcabd", "%abc"));
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("forest green", "forest"));
  EXPECT_FALSE(StartsWith("fo", "forest"));
  EXPECT_TRUE(EndsWith("LARGE BRASS", "BRASS"));
  EXPECT_FALSE(EndsWith("SS", "BRASS"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("Q%-2d x=%zu", 7, size_t{42}), "Q7  x=42");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s#%09d", "Supplier", 3), "Supplier#000000003");
}

}  // namespace
}  // namespace wake
