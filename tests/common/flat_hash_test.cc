#include "common/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace wake {
namespace {

std::vector<uint32_t> Chain(const FlatHashIndex& idx, uint64_t h) {
  std::vector<uint32_t> out;
  for (uint32_t id = idx.Find(h); id != FlatHashIndex::kNil;
       id = idx.Next(id)) {
    out.push_back(id);
  }
  return out;
}

TEST(FlatHashIndexTest, FindOnEmptyReturnsNil) {
  FlatHashIndex idx;
  EXPECT_EQ(idx.Find(0), FlatHashIndex::kNil);
  EXPECT_EQ(idx.Find(0xdeadbeefULL), FlatHashIndex::kNil);
}

TEST(FlatHashIndexTest, ChainsPreserveInsertionOrder) {
  FlatHashIndex idx;
  idx.Insert(7, 0);
  idx.Insert(9, 1);
  idx.Insert(7, 2);
  idx.Insert(7, 3);
  EXPECT_EQ(Chain(idx, 7), (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(Chain(idx, 9), (std::vector<uint32_t>{1}));
  EXPECT_EQ(idx.Find(8), FlatHashIndex::kNil);
}

TEST(FlatHashIndexTest, IdenticalHashesShareOneChain) {
  // Two distinct keys colliding on the full 64-bit hash land in the same
  // chain; the caller is responsible for verifying keys when walking it.
  FlatHashIndex idx;
  idx.Insert(0x1234, 0);
  idx.Insert(0x1234, 1);
  EXPECT_EQ(idx.num_chains(), 1u);
  EXPECT_EQ(Chain(idx, 0x1234), (std::vector<uint32_t>{0, 1}));
}

TEST(FlatHashIndexTest, SurvivesGrowthAcrossManyDistinctHashes) {
  // Far past the initial capacity: forces multiple rehashes and plenty of
  // slot collisions under linear probing.
  FlatHashIndex idx;
  constexpr uint32_t kN = 50000;
  for (uint32_t i = 0; i < kN; ++i) {
    idx.Insert(static_cast<uint64_t>(i) * 0x9e3779b1ULL, i);
  }
  EXPECT_EQ(idx.num_chains(), kN);
  for (uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(Chain(idx, static_cast<uint64_t>(i) * 0x9e3779b1ULL),
              (std::vector<uint32_t>{i}))
        << "hash " << i;
  }
  EXPECT_EQ(idx.Find(kN * 0x9e3779b1ULL + 1), FlatHashIndex::kNil);
}

TEST(FlatHashIndexTest, GrowthKeepsChainsIntact) {
  FlatHashIndex idx;
  // Every id under one of four hashes; rehashes must move chains wholesale.
  for (uint32_t i = 0; i < 1000; ++i) idx.Insert(i % 4, i);
  for (uint64_t h = 0; h < 4; ++h) {
    std::vector<uint32_t> chain = Chain(idx, h);
    ASSERT_EQ(chain.size(), 250u);
    for (size_t k = 0; k < chain.size(); ++k) {
      EXPECT_EQ(chain[k], static_cast<uint32_t>(h + 4 * k));
    }
  }
}

TEST(FlatHashIndexTest, ResetDropsEntriesAndKeepsCapacity) {
  FlatHashIndex idx;
  for (uint32_t i = 0; i < 100; ++i) idx.Insert(i, i);
  size_t cap = idx.capacity();
  idx.Reset();
  EXPECT_EQ(idx.num_chains(), 0u);
  EXPECT_EQ(idx.capacity(), cap);
  EXPECT_EQ(idx.Find(5), FlatHashIndex::kNil);
  idx.Insert(5, 0);
  EXPECT_EQ(Chain(idx, 5), (std::vector<uint32_t>{0}));
}

TEST(FlatHashIndexTest, ReservePresizesCapacity) {
  FlatHashIndex idx;
  idx.Reserve(10000);
  size_t cap = idx.capacity();
  EXPECT_GE(cap * 7, 10000u * 8 / 2);  // power-of-two ≥ load-factor bound
  for (uint32_t i = 0; i < 10000; ++i) idx.Insert(i, i);
  EXPECT_EQ(idx.capacity(), cap);  // no rehash needed after Reserve
}

}  // namespace
}  // namespace wake
