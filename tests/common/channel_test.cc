#include "common/channel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace wake {
namespace {

TEST(ChannelTest, SendThenReceive) {
  Channel<int> ch;
  EXPECT_TRUE(ch.Send(1));
  EXPECT_TRUE(ch.Send(2));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.Receive().value(), 1);
  EXPECT_EQ(ch.Receive().value(), 2);
}

TEST(ChannelTest, CloseDrainsPendingThenSignalsEof) {
  Channel<int> ch;
  ch.Send(7);
  ch.Close();
  EXPECT_EQ(ch.Receive().value(), 7);
  EXPECT_FALSE(ch.Receive().has_value());
  EXPECT_FALSE(ch.Receive().has_value());  // idempotent
}

TEST(ChannelTest, SendAfterCloseIsRejected) {
  Channel<int> ch;
  ch.Close();
  EXPECT_FALSE(ch.Send(1));
  EXPECT_FALSE(ch.Receive().has_value());
}

TEST(ChannelTest, TryReceiveDoesNotBlock) {
  Channel<int> ch;
  EXPECT_FALSE(ch.TryReceive().has_value());
  ch.Send(5);
  EXPECT_EQ(ch.TryReceive().value(), 5);
}

TEST(ChannelTest, ReceiveBlocksUntilSend) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Send(99);
  });
  EXPECT_EQ(ch.Receive().value(), 99);  // blocks until the producer sends
  producer.join();
}

TEST(ChannelTest, BoundedChannelAppliesBackpressure) {
  Channel<int> ch(2);
  ch.Send(1);
  ch.Send(2);
  std::atomic<bool> third_sent{false};
  std::thread producer([&] {
    ch.Send(3);  // blocks until a slot frees
    third_sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_sent.load());
  EXPECT_EQ(ch.Receive().value(), 1);
  producer.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(ChannelTest, ManyProducersManyConsumersDeliverEverything) {
  Channel<int> ch;
  constexpr int kProducers = 4, kPerProducer = 1000, kConsumers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.Send(p * kPerProducer + i);
    });
  }
  std::atomic<long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = ch.Receive()) {
        total += *v;
        ++count;
      }
    });
  }
  for (auto& t : producers) t.join();
  ch.Close();
  for (auto& t : consumers) t.join();
  int n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long>(n) * (n - 1) / 2);
}

TEST(ChannelTest, CloseWakesBlockedReceivers) {
  Channel<int> ch;
  std::thread consumer([&] { EXPECT_FALSE(ch.Receive().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.Close();
  consumer.join();
}

TEST(ChannelTest, ReceiveAllDrainsWholeQueue) {
  Channel<int> ch;
  for (int i = 0; i < 5; ++i) ch.Send(i);
  auto batch = ch.ReceiveAll();
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[i], i);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(ChannelTest, ReceiveAllBlocksUntilFirstItem) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Send(42);
  });
  auto batch = ch.ReceiveAll();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 42);
  producer.join();
}

TEST(ChannelTest, ReceiveAllEmptyMeansClosedAndDrained) {
  Channel<int> ch;
  ch.Send(1);
  ch.Close();
  EXPECT_EQ(ch.ReceiveAll().size(), 1u);  // pending items still delivered
  EXPECT_TRUE(ch.ReceiveAll().empty());
  EXPECT_TRUE(ch.ReceiveAll().empty());  // idempotent
}

TEST(ChannelTest, ReceiveAllReleasesBackpressuredSenders) {
  Channel<int> ch(2);
  ch.Send(1);
  ch.Send(2);
  std::atomic<int> sent{0};
  std::thread p1([&] { ch.Send(3); ++sent; });
  std::thread p2([&] { ch.Send(4); ++sent; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sent.load(), 0);
  // One drain frees both slots; both blocked senders must wake.
  EXPECT_EQ(ch.ReceiveAll().size(), 2u);
  p1.join();
  p2.join();
  EXPECT_EQ(sent.load(), 2);
  EXPECT_EQ(ch.ReceiveAll().size(), 2u);
}

TEST(ChannelTest, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch;
  ch.Send(std::make_unique<int>(11));
  auto v = ch.Receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 11);
}

TEST(ChannelTest, SendAllDeliversInOrderUnderOneLock) {
  Channel<int> ch;
  std::vector<int> batch{1, 2, 3, 4, 5};
  EXPECT_EQ(ch.SendAll(std::move(batch)), 5u);
  EXPECT_TRUE(batch.empty());
  auto drained = ch.ReceiveAll();
  ASSERT_EQ(drained.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(drained[i], i + 1);
}

TEST(ChannelTest, SendAllToClosedChannelDropsEverything) {
  Channel<int> ch;
  ch.Close();
  EXPECT_EQ(ch.SendAll({7, 8, 9}), 0u);
  EXPECT_TRUE(ch.ReceiveAll().empty());
}

TEST(ChannelTest, SendAllRespectsCapacityBound) {
  Channel<int> ch(3);
  std::atomic<size_t> accepted{0};
  std::thread producer([&] { accepted = ch.SendAll({1, 2, 3, 4, 5}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Producer is blocked after filling the bound.
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.Receive().value(), 1);
  EXPECT_EQ(ch.Receive().value(), 2);
  while (auto v = ch.TryReceive()) {
  }
  producer.join();
  EXPECT_EQ(accepted.load(), 5u);
}

TEST(ChannelTest, SendAllEmptyIsNoOp) {
  Channel<int> ch;
  EXPECT_EQ(ch.SendAll({}), 0u);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(ChannelTest, SendAllWakesBlockedConsumer) {
  Channel<int> ch;
  std::atomic<long> total{0};
  std::thread consumer([&] {
    for (;;) {
      auto batch = ch.ReceiveAll();
      if (batch.empty()) break;
      for (int v : batch) total += v;
    }
  });
  ch.SendAll({1, 2, 3});
  ch.SendAll({4, 5});
  ch.Close();
  consumer.join();
  EXPECT_EQ(total.load(), 15);
}

TEST(ChannelTest, CancelDiscardsQueuedItems) {
  // Close() keeps pending items receivable; Cancel() is the stop-token
  // edge and drops them so receivers unwind immediately.
  Channel<int> ch;
  ch.Send(1);
  ch.Send(2);
  ch.Cancel();
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.Receive().has_value());
  EXPECT_TRUE(ch.ReceiveAll().empty());
  EXPECT_FALSE(ch.Send(3));  // cancelled == closed for senders
}

TEST(ChannelTest, CancelWakesBlockedReceivers) {
  Channel<int> ch;
  std::thread receiver([&] { EXPECT_FALSE(ch.Receive().has_value()); });
  std::thread drainer([&] { EXPECT_TRUE(ch.ReceiveAll().empty()); });
  ch.Cancel();
  receiver.join();
  drainer.join();
}

TEST(ChannelTest, CancelReleasesBackpressuredSenders) {
  Channel<int> ch(1);
  ch.Send(1);
  std::thread sender([&] { EXPECT_FALSE(ch.Send(2)); });  // blocks on full
  ch.Cancel();
  sender.join();
}

TEST(ChannelTest, ReceiveForReturnsQueuedItem) {
  Channel<int> ch;
  ch.Send(42);
  auto got = ch.ReceiveFor(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(ChannelTest, ReceiveForTimesOutOnEmptyOpenChannel) {
  Channel<int> ch;
  EXPECT_FALSE(ch.ReceiveFor(std::chrono::milliseconds(10)).has_value());
  EXPECT_FALSE(ch.closed());  // timeout, not EOF
}

TEST(ChannelTest, ReceiveForReturnsImmediatelyWhenClosed) {
  Channel<int> ch;
  ch.Close();
  EXPECT_FALSE(ch.ReceiveFor(std::chrono::milliseconds(10000)).has_value());
}

// ---------------------------------------------------------------------------
// Byte accounting (size() / byte_size()), the hooks the resource layer
// uses to meter queued-but-undrained partials.
// ---------------------------------------------------------------------------

// Payload whose queued memory matters; the overload is found by ADL,
// exactly like Message's.
struct Sized {
  size_t bytes = 0;
};
size_t ChannelItemBytes(const Sized& s) { return s.bytes; }

TEST(ChannelTest, ByteSizeTracksSendsAndReceives) {
  Channel<Sized> ch;
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.byte_size(), 0u);
  ch.Send(Sized{100});
  ch.Send(Sized{250});
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.byte_size(), 350u);
  EXPECT_EQ(ch.Receive()->bytes, 100u);
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_EQ(ch.byte_size(), 250u);
  EXPECT_EQ(ch.TryReceive()->bytes, 250u);
  EXPECT_EQ(ch.byte_size(), 0u);
}

TEST(ChannelTest, SendAllAccumulatesBytesReceiveAllZeroes) {
  Channel<Sized> ch;
  std::vector<Sized> batch;
  for (size_t i = 1; i <= 4; ++i) batch.push_back(Sized{i * 10});
  EXPECT_EQ(ch.SendAll(std::move(batch)), 4u);
  EXPECT_EQ(ch.byte_size(), 100u);
  EXPECT_EQ(ch.ReceiveAll().size(), 4u);
  EXPECT_EQ(ch.byte_size(), 0u);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(ChannelTest, CancelZeroesByteAccounting) {
  Channel<Sized> ch;
  ch.Send(Sized{512});
  ch.Send(Sized{512});
  ch.Cancel();
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.byte_size(), 0u);
}

TEST(ChannelTest, PayloadsWithoutAnOverloadCountZeroBytes) {
  Channel<int> ch;
  ch.Send(1);
  ch.Send(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.byte_size(), 0u);  // default ChannelItemBytes
}

}  // namespace
}  // namespace wake
