#include "common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wake {
namespace {

TEST(WorkerPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr size_t kN = 100001;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, 1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, SingleWorkerRunsInlineInRangeOrder) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<size_t> begins;
  pool.ParallelFor(10, 3, [&](size_t begin, size_t end) {
    begins.push_back(begin);
    EXPECT_LE(end, 10u);
  });
  EXPECT_EQ(begins, (std::vector<size_t>{0, 3, 6, 9}));
}

TEST(WorkerPoolTest, RangeDecompositionIndependentOfWorkers) {
  // The morsel boundaries a body observes must be identical at any
  // worker count — that is the determinism contract operators build on.
  auto collect = [](WorkerPool& pool) {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> ranges;
    pool.ParallelFor(100000, 4096, [&](size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace_back(b, e);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  WorkerPool serial(1), wide(4);
  EXPECT_EQ(collect(serial), collect(wide));
}

TEST(WorkerPoolTest, ParallelShardsRunsEachShardOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> hits(17);
  for (auto& h : hits) h.store(0);
  pool.ParallelShards(17, [&](size_t s) { hits[s].fetch_add(1); });
  for (size_t s = 0; s < 17; ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(WorkerPoolTest, BodyExceptionRethrownOnCaller) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000, 10,
                       [&](size_t begin, size_t) {
                         if (begin == 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(WorkerPoolTest, SubmitRunsTask) {
  WorkerPool pool(2);
  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.Submit([&] {
    ran.store(true);
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10), [&] { return ran.load(); });
  EXPECT_TRUE(ran.load());
}

TEST(WorkerPoolTest, ConcurrentLoopsFromManyCallers) {
  // Several node threads sharing one pool, as in a deep plan.
  WorkerPool pool(4);
  constexpr size_t kCallers = 6;
  std::vector<long> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 20; ++rep) {
        std::atomic<long> sum{0};
        pool.ParallelFor(10000, 256, [&](size_t b, size_t e) {
          long local = 0;
          for (size_t i = b; i < e; ++i) local += static_cast<long>(i);
          sum.fetch_add(local);
        });
        sums[c] = sum.load();
      }
    });
  }
  for (auto& t : callers) t.join();
  const long expect = 10000L * 9999L / 2;
  for (size_t c = 0; c < kCallers; ++c) EXPECT_EQ(sums[c], expect);
}

TEST(WorkerPoolTest, DefaultWorkersParsesEnv) {
  // Can't mutate the environment of the global pool safely here; just
  // check the parser's fallback contract.
  EXPECT_GE(WorkerPool::DefaultWorkers(), 1u);
}

}  // namespace
}  // namespace wake
