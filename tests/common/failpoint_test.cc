// Failpoint registry unit tests. These drive failpoint::Evaluate
// directly, so they run in every build — WAKE_FAILPOINTS only controls
// whether the WAKE_FAILPOINT macro sites in engine code are compiled in
// (covered by tests/chaos/).
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stopwatch.h"

namespace wake {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Reset(); }
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(FailpointTest, UnconfiguredPointIsANoOp) {
  EXPECT_NO_THROW(failpoint::Evaluate("nothing.configured"));
  EXPECT_EQ(failpoint::Hits("nothing.configured"), 0u);
}

TEST_F(FailpointTest, ErrorSpecThrowsWakeError) {
  failpoint::Configure("p", "error(1.0)");
  try {
    failpoint::Evaluate("p");
    FAIL() << "expected injected error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kExecution);
    EXPECT_NE(std::string(e.what()).find("failpoint"), std::string::npos);
  }
  EXPECT_EQ(failpoint::Hits("p"), 1u);
}

TEST_F(FailpointTest, HitCapMakesDeterministicRetrySequences) {
  failpoint::Configure("p", "error(1.0)*2");
  EXPECT_THROW(failpoint::Evaluate("p"), Error);
  EXPECT_THROW(failpoint::Evaluate("p"), Error);
  // Cap reached: the point passes from now on.
  EXPECT_NO_THROW(failpoint::Evaluate("p"));
  EXPECT_NO_THROW(failpoint::Evaluate("p"));
  EXPECT_EQ(failpoint::Hits("p"), 2u);
}

TEST_F(FailpointTest, DelaySpecSleeps) {
  failpoint::Configure("p", "delay(20ms)");
  Stopwatch clock;
  failpoint::Evaluate("p");
  EXPECT_GE(clock.ElapsedSeconds(), 0.015);
  EXPECT_EQ(failpoint::Hits("p"), 1u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerDrawSequence) {
  failpoint::Configure("p", "error(0.3)");
  int hits_a = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      failpoint::Evaluate("p");
    } catch (const Error&) {
      ++hits_a;
    }
  }
  // Same spec, fresh counters: the exact same draw sequence.
  failpoint::Reset();
  failpoint::Configure("p", "error(0.3)");
  int hits_b = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      failpoint::Evaluate("p");
    } catch (const Error&) {
      ++hits_b;
    }
  }
  EXPECT_EQ(hits_a, hits_b);
  // And the rate is in the right ballpark (deterministic, so no flake).
  EXPECT_GT(hits_a, 20);
  EXPECT_LT(hits_a, 120);
}

TEST_F(FailpointTest, OffDisablesAndResetClears) {
  failpoint::Configure("p", "error(1.0)");
  failpoint::Configure("p", "off");
  EXPECT_NO_THROW(failpoint::Evaluate("p"));
  failpoint::Configure("p", "error(1.0)");
  failpoint::Reset();
  EXPECT_NO_THROW(failpoint::Evaluate("p"));
  EXPECT_EQ(failpoint::Hits("p"), 0u);
}

TEST_F(FailpointTest, ConfigureFromStringParsesActivationLists) {
  failpoint::ConfigureFromString("a=error(1.0)*1;b=delay(1ms)");
  EXPECT_THROW(failpoint::Evaluate("a"), Error);
  EXPECT_NO_THROW(failpoint::Evaluate("a"));  // capped
  EXPECT_NO_THROW(failpoint::Evaluate("b"));
  EXPECT_EQ(failpoint::Hits("b"), 1u);
}

TEST_F(FailpointTest, MalformedSpecsAreRejectedLoudly) {
  EXPECT_THROW(failpoint::Configure("p", "explode"), Error);
  EXPECT_THROW(failpoint::Configure("p", "error(0.0)"), Error);
  EXPECT_THROW(failpoint::Configure("p", "error(1.5)"), Error);
  EXPECT_THROW(failpoint::Configure("p", "delay(abc)"), Error);
  EXPECT_THROW(failpoint::Configure("p", "error(1.0"), Error);
  EXPECT_THROW(failpoint::ConfigureFromString("no-equals-sign"), Error);
}

}  // namespace
}  // namespace wake
