#include "plan/optimizer.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "baseline/exact_engine.h"
#include "common/error.h"

namespace wake {
namespace {

ExprPtr C(const char* name) { return Expr::Col(name); }

Catalog MakeCatalog() {
  Schema sales_schema({{"id", ValueType::kInt64},
                       {"cust", ValueType::kInt64},
                       {"amount", ValueType::kFloat64},
                       {"tag", ValueType::kString}});
  sales_schema.set_primary_key({"id"});
  sales_schema.set_clustering_key({"id"});
  DataFrame sales(sales_schema);
  for (int i = 0; i < 12; ++i) {
    sales.mutable_column(0)->AppendInt(i);
    sales.mutable_column(1)->AppendInt(i % 4);
    sales.mutable_column(2)->AppendDouble(i * 10.0);
    sales.mutable_column(3)->AppendString(i % 2 ? "odd" : "even");
  }

  Schema cust_schema({{"c_id", ValueType::kInt64},
                      {"c_name", ValueType::kString},
                      {"c_region", ValueType::kString}});
  DataFrame cust(cust_schema);
  for (int i = 0; i < 3; ++i) {  // cust 3 intentionally missing
    cust.mutable_column(0)->AppendInt(i);
    cust.mutable_column(1)->AppendString("cust" + std::to_string(i));
    cust.mutable_column(2)->AppendString(i == 0 ? "east" : "west");
  }

  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("sales", sales, 3)));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("cust", cust, 1)));
  return cat;
}

class OptimizerTest : public ::testing::Test {
 protected:
  Catalog cat_ = MakeCatalog();

  std::string Shape(const PlanNodePtr& node) { return PlanToString(node); }

  // Optimization must never change results: runs both plans on the exact
  // engine and requires identical output.
  void ExpectSameResults(const PlanNodePtr& before,
                         const PlanNodePtr& after) {
    ExactEngine engine(&cat_);
    std::string diff;
    EXPECT_TRUE(engine.Execute(after).ApproxEquals(engine.Execute(before),
                                                   1e-12, &diff))
        << diff << "\nbefore:\n" << Shape(before) << "after:\n"
        << Shape(after);
  }
};

// --- constant folding ------------------------------------------------------

TEST_F(OptimizerTest, FoldsLiteralArithmeticAndComparisons) {
  ExprPtr e = FoldExpr(Expr::Int(2) * Expr::Int(3) + Expr::Int(4));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 10);

  e = FoldExpr(Gt(Expr::Float(2.5), Expr::Int(2)));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 1);

  // Division folds to float with the engine's divide-by-zero convention.
  e = FoldExpr(Expr::Int(1) / Expr::Int(0));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().type, ValueType::kFloat64);
  EXPECT_EQ(e->literal().d, 0.0);
}

TEST_F(OptimizerTest, FoldsLogicShortCircuits) {
  ExprPtr pred = Gt(C("amount"), Expr::Float(30.0));
  // TRUE AND p -> p (same pointer, not just same value).
  EXPECT_EQ(FoldExpr(Expr::And(Expr::Lit(Value::Bool(true)), pred)), pred);
  // p OR TRUE -> TRUE.
  ExprPtr e = FoldExpr(Expr::Or(pred, Expr::Lit(Value::Bool(true))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 1);
  // NOT applied to a null literal: null is falsy, so NOT null -> TRUE.
  e = FoldExpr(Expr::Not(Expr::Lit(Value::Null(ValueType::kBool))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 1);
}

TEST_F(OptimizerTest, LogicFoldKeepsBoolCoercion) {
  // `TRUE AND <int column>` must not fold to the bare column: the logic
  // node coerces its result to a non-null bool; the column is an int64.
  ExprPtr e = FoldExpr(Expr::And(Expr::Lit(Value::Bool(true)), C("id")));
  EXPECT_EQ(e->kind(), ExprKind::kLogic);
  // A deciding literal still folds regardless of the other side's type.
  e = FoldExpr(Expr::And(C("id"), Expr::Lit(Value::Bool(false))));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 0);
  // End-to-end: a projected logic value keeps its type through Optimize.
  Plan plan = Plan::Scan("sales").Map(
      {{"f", Expr::And(Eq(Expr::Int(1), Expr::Int(1)), C("id"))}});
  ExpectSameResults(plan.node(), Optimize(plan.node(), cat_));
}

TEST_F(OptimizerTest, FoldsStringPredicates) {
  ExprPtr e = FoldExpr(Expr::Like(Expr::Str("PROMO BRASS"), "PROMO%"));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 1);
  e = FoldExpr(Expr::In(Expr::Str("x"),
                        {Value::Str("a"), Value::Str("b")}));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().i, 0);
  e = FoldExpr(Expr::Substr(Expr::Str("13-555"), 1, 2));
  ASSERT_EQ(e->kind(), ExprKind::kLiteral);
  EXPECT_EQ(e->literal().s, "13");
}

TEST_F(OptimizerTest, TriviallyTrueFilterIsRemoved) {
  Plan plan = Plan::Scan("sales").Filter(
      Expr::And(Eq(Expr::Int(1), Expr::Int(1)), Gt(C("amount"),
                                                   Expr::Float(30.0))));
  PlanNodePtr folded = FoldConstantsPass(plan.node(), cat_);
  EXPECT_EQ(Shape(folded),
            "Filter (amount > 30)\n"
            "  Scan sales\n");

  // A filter that is *entirely* true disappears.
  Plan all = Plan::Scan("sales").Filter(Eq(Expr::Int(1), Expr::Int(1)));
  EXPECT_EQ(Shape(FoldConstantsPass(all.node(), cat_)), "Scan sales\n");
  ExpectSameResults(all.node(), FoldConstantsPass(all.node(), cat_));
}

// --- filter pushdown -------------------------------------------------------

TEST_F(OptimizerTest, SplitsConjunctionAcrossInnerJoinSides) {
  Plan plan = Plan::Scan("sales")
                  .Join(Plan::Scan("cust"), JoinType::kInner, {"cust"},
                        {"c_id"})
                  .Filter(Expr::And(Gt(C("amount"), Expr::Float(30.0)),
                                    Eq(C("c_region"), Expr::Str("west"))));
  PlanNodePtr pushed = PushDownFiltersPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pushed),
            "InnerJoin on [cust]=[c_id]\n"
            "  Filter (amount > 30)\n"
            "    Scan sales\n"
            "  Filter (c_region = west)\n"
            "    Scan cust\n");
  ExpectSameResults(plan.node(), pushed);
}

TEST_F(OptimizerTest, LeftJoinKeepsRightSidePredicateAbove) {
  // Pushing a right-side predicate below a LEFT join would turn dropped
  // matches into null-padded rows; it must stay above.
  Plan plan = Plan::Scan("sales")
                  .Join(Plan::Scan("cust"), JoinType::kLeft, {"cust"},
                        {"c_id"})
                  .Filter(Expr::And(Gt(C("amount"), Expr::Float(30.0)),
                                    Eq(C("c_region"), Expr::Str("west"))));
  PlanNodePtr pushed = PushDownFiltersPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pushed),
            "Filter (c_region = west)\n"
            "  LeftJoin on [cust]=[c_id]\n"
            "    Filter (amount > 30)\n"
            "      Scan sales\n"
            "    Scan cust\n");
  ExpectSameResults(plan.node(), pushed);
}

TEST_F(OptimizerTest, SemiAndAntiJoinPushToProbeSideOnly) {
  for (JoinType type : {JoinType::kSemi, JoinType::kAnti}) {
    Plan plan = Plan::Scan("sales")
                    .Join(Plan::Scan("cust"), type, {"cust"}, {"c_id"})
                    .Filter(Gt(C("amount"), Expr::Float(30.0)));
    PlanNodePtr pushed = PushDownFiltersPass(plan.node(), cat_);
    const char* name = type == JoinType::kSemi ? "Semi" : "Anti";
    EXPECT_EQ(Shape(pushed), std::string(name) +
                                 "Join on [cust]=[c_id]\n"
                                 "  Filter (amount > 30)\n"
                                 "    Scan sales\n"
                                 "  Scan cust\n");
    ExpectSameResults(plan.node(), pushed);
  }
}

TEST_F(OptimizerTest, PushesGroupKeyPredicateBelowAggregateButNotHaving) {
  Plan plan = Plan::Scan("sales")
                  .Aggregate({"cust"}, {Sum("amount", "total")})
                  .Filter(Expr::And(Lt(C("cust"), Expr::Int(3)),
                                    Gt(C("total"), Expr::Float(50.0))));
  PlanNodePtr pushed = PushDownFiltersPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pushed),
            "Filter (total > 50)\n"
            "  Aggregate by [cust] {sum(amount)->total}\n"
            "    Filter (cust < 3)\n"
            "      Scan sales\n");
  ExpectSameResults(plan.node(), pushed);
}

TEST_F(OptimizerTest, PushesThroughMapRenamesAndStopsAtComputedColumns) {
  Plan plan = Plan::Scan("sales")
                  .Map({{"k", C("cust")},
                        {"double_amount", C("amount") * Expr::Int(2)}})
                  .Filter(Expr::And(Lt(C("k"), Expr::Int(2)),
                                    Gt(C("double_amount"),
                                       Expr::Float(50.0))));
  PlanNodePtr pushed = PushDownFiltersPass(plan.node(), cat_);
  // `k` is a pure rename: its predicate pushes below the map (rewritten to
  // `cust`). `double_amount` is computed: stays above.
  EXPECT_EQ(Shape(pushed),
            "Filter (double_amount > 50)\n"
            "  Map [k, double_amount]\n"
            "    Filter (cust < 2)\n"
            "      Scan sales\n");
  ExpectSameResults(plan.node(), pushed);
}

TEST_F(OptimizerTest, FilterDoesNotCrossLimit) {
  Plan plan = Plan::Scan("sales")
                  .Sort({{"amount", true}}, 5)
                  .Filter(Gt(C("amount"), Expr::Float(30.0)));
  PlanNodePtr pushed = PushDownFiltersPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pushed),
            "Filter (amount > 30)\n"
            "  Sort limit 5\n"
            "    Scan sales\n");
  // Without a limit the filter commutes with the sort.
  Plan no_limit = Plan::Scan("sales")
                      .Sort({{"amount", true}})
                      .Filter(Gt(C("amount"), Expr::Float(30.0)));
  EXPECT_EQ(Shape(PushDownFiltersPass(no_limit.node(), cat_)),
            "Sort\n"
            "  Filter (amount > 30)\n"
            "    Scan sales\n");
  ExpectSameResults(no_limit.node(),
                    PushDownFiltersPass(no_limit.node(), cat_));
}

TEST_F(OptimizerTest, SharedSubplansAreNotDuplicatedOrPolluted) {
  // One shared aggregate feeding two parents (§7.3 reuse): the filter of
  // one parent must not leak into the shared subplan.
  Plan shared = Plan::Scan("sales").Aggregate({"cust"},
                                              {Sum("amount", "total")});
  Plan left = shared.Filter(Gt(C("total"), Expr::Float(100.0)))
                  .Map({{"h_cust", C("cust")}});
  Plan joined = left.Join(shared.Map({{"cust2", C("cust")},
                                      {"total2", C("total")}}),
                          JoinType::kInner, {"h_cust"}, {"cust2"});
  PlanNodePtr pushed = PushDownFiltersPass(joined.node(), cat_);
  // The shared aggregate node must still be one object reachable twice.
  std::set<const PlanNode*> agg_nodes;
  std::function<void(const PlanNodePtr&)> walk =
      [&](const PlanNodePtr& n) {
        if (n->op == PlanOp::kAggregate) agg_nodes.insert(n.get());
        for (const auto& in : n->inputs) walk(in);
      };
  walk(pushed);
  EXPECT_EQ(agg_nodes.size(), 1u);
  ExpectSameResults(joined.node(), pushed);
}

TEST_F(OptimizerTest, LikeOverNonStringLiteralIsLeftForRuntime) {
  // Eval raises 'LIKE over non-string'; folding to FALSE would silently
  // swallow the type error. Null input does fold (Eval yields false).
  ExprPtr bad = FoldExpr(Expr::Like(Expr::Int(5), "5%"));
  EXPECT_EQ(bad->kind(), ExprKind::kLike);
  ExprPtr null_in =
      FoldExpr(Expr::Like(Expr::Lit(Value::Null(ValueType::kString)), "x"));
  ASSERT_EQ(null_in->kind(), ExprKind::kLiteral);
  EXPECT_EQ(null_in->literal().i, 0);
}

// --- projection pruning and scan projection --------------------------------

TEST_F(OptimizerTest, SharedInputRequirementsUnionAcrossParents) {
  // Two parents of one shared scan require different columns; the
  // required-set propagation must union them — a later-visited parent
  // (here the Filter) must not clobber what the Map parent recorded.
  Plan scan = Plan::Scan("sales");
  Plan left = scan.Filter(Gt(C("amount"), Expr::Float(0.0)))
                  .Map({{"lid", C("id")}});
  Plan right = scan.Map({{"rid", C("id")}, {"rtag", C("tag")}});
  Plan joined = left.Join(right, JoinType::kInner, {"lid"}, {"rid"});
  PlanNodePtr optimized;
  ASSERT_NO_THROW(optimized = Optimize(joined.node(), cat_));
  ExpectSameResults(joined.node(), optimized);
}

TEST_F(OptimizerTest, ProjectsScansToRequiredColumns) {
  Plan plan = Plan::Scan("sales").Aggregate({"cust"},
                                            {Sum("amount", "total")});
  PlanNodePtr pruned = ProjectScansPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "Aggregate by [cust] {sum(amount)->total}\n"
            "  Scan sales [cust,amount]\n");
  ExpectSameResults(plan.node(), pruned);
}

TEST_F(OptimizerTest, CountStarKeepsOneColumn) {
  Plan plan = Plan::Scan("sales").Aggregate({}, {Count("n")});
  PlanNodePtr pruned = ProjectScansPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "Aggregate by [] {count()->n}\n"
            "  Scan sales [id]\n");
  ExpectSameResults(plan.node(), pruned);
}

TEST_F(OptimizerTest, NarrowsDeriveIntoExplicitMap) {
  Plan plan = Plan::Scan("sales")
                  .Derive({{"double_amount", C("amount") * Expr::Int(2)}})
                  .Aggregate({"cust"}, {Sum("double_amount", "total")});
  PlanNodePtr pruned = PruneProjectionsPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "Aggregate by [cust] {sum(double_amount)->total}\n"
            "  Map [cust, double_amount]\n"
            "    Scan sales\n");
  // Scan projection then narrows the storage read to what the map needs.
  PlanNodePtr projected = ProjectScansPass(pruned, cat_);
  EXPECT_EQ(Shape(projected),
            "Aggregate by [cust] {sum(double_amount)->total}\n"
            "  Map [cust, double_amount]\n"
            "    Scan sales [cust,amount]\n");
  ExpectSameResults(plan.node(), projected);
}

TEST_F(OptimizerTest, JoinKeysSurvivePruning) {
  Plan plan = Plan::Scan("sales")
                  .Join(Plan::Scan("cust"), JoinType::kInner, {"cust"},
                        {"c_id"})
                  .Aggregate({"c_name"}, {Sum("amount", "total")});
  PlanNodePtr pruned = ProjectScansPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "Aggregate by [c_name] {sum(amount)->total}\n"
            "  InnerJoin on [cust]=[c_id]\n"
            "    Scan sales [cust,amount]\n"
            "    Scan cust [c_id,c_name]\n");
  ExpectSameResults(plan.node(), pruned);
}

TEST_F(OptimizerTest, RootSchemaIsPreservedExactly) {
  // A schema-transparent root (filter over join) requires every column:
  // nothing may be pruned and the output schema must be untouched.
  Plan plan = Plan::Scan("sales")
                  .Join(Plan::Scan("cust"), JoinType::kInner, {"cust"},
                        {"c_id"})
                  .Filter(Gt(C("amount"), Expr::Float(10.0)));
  PlanNodePtr optimized = Optimize(plan.node(), cat_);
  ExactEngine engine(&cat_);
  EXPECT_TRUE(engine.Execute(optimized).schema().SameFields(
      engine.Execute(plan.node()).schema()));
  ExpectSameResults(plan.node(), optimized);
}

// --- aggregate-output pruning ----------------------------------------------

TEST_F(OptimizerTest, PrunesUnusedAggregateOutputs) {
  Plan plan = Plan::Scan("sales")
                  .Aggregate({"cust"}, {Sum("amount", "total"), Count("n"),
                                        Max("amount", "hi")})
                  .Map({{"total", C("total")}});
  PlanNodePtr pruned = PruneAggregatesPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "Map [total]\n"
            "  Aggregate by [cust] {sum(amount)->total}\n"
            "    Scan sales\n");
  ExpectSameResults(plan.node(), pruned);
}

TEST_F(OptimizerTest, GroupKeyOnlyParentKeepsOneAggregate) {
  // A parent consuming only the group keys still needs the Aggregate (it
  // dedups), so at least one aggregate must survive — the first, like
  // SurvivingProjections.
  Plan plan = Plan::Scan("sales")
                  .Aggregate({"cust"}, {Sum("amount", "total"), Count("n")})
                  .Map({{"cust", C("cust")}});
  PlanNodePtr pruned = PruneAggregatesPass(plan.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "Map [cust]\n"
            "  Aggregate by [cust] {sum(amount)->total}\n"
            "    Scan sales\n");
  ExpectSameResults(plan.node(), pruned);
}

TEST_F(OptimizerTest, RootAggregateIsNeverPruned) {
  // The root's full schema is the query result: everything is required.
  Plan plan = Plan::Scan("sales").Aggregate(
      {"cust"}, {Sum("amount", "total"), Count("n"), Max("amount", "hi")});
  PlanNodePtr pruned = PruneAggregatesPass(plan.node(), cat_);
  EXPECT_EQ(pruned, plan.node());  // untouched subtree keeps its pointer
}

TEST_F(OptimizerTest, AggPruningFreesInputColumnsForScanProjection) {
  // Dropping the count-distinct also drops its input column `tag`; the
  // next optimizer round narrows the scan accordingly.
  Plan plan = Plan::Scan("sales")
                  .Aggregate({"cust"}, {Sum("amount", "total"),
                                        CountDistinct("tag", "tags")})
                  .Map({{"total", C("total")}});
  PlanNodePtr optimized = Optimize(plan.node(), cat_);
  EXPECT_EQ(Shape(optimized),
            "Map [total]\n"
            "  Aggregate by [cust] {sum(amount)->total}\n"
            "    Scan sales [cust,amount]\n");
  ExpectSameResults(plan.node(), optimized);
}

TEST_F(OptimizerTest, SharedAggregateKeepsUnionOfParentRequirements) {
  // One Aggregate reachable through two parents that consume different
  // outputs: the survivors are the union, and the node stays shared.
  Plan agg = Plan::Scan("sales").Aggregate(
      {"cust"}, {Sum("amount", "total"), Count("n"), Max("amount", "hi")});
  Plan left = agg.Map({{"cust", C("cust")}, {"total", C("total")}});
  Plan right = agg.Map({{"cust_r", C("cust")}, {"n", C("n")}});
  Plan joined =
      left.Join(right, JoinType::kInner, {"cust"}, {"cust_r"});
  PlanNodePtr pruned = PruneAggregatesPass(joined.node(), cat_);
  EXPECT_EQ(Shape(pruned),
            "InnerJoin on [cust]=[cust_r]\n"
            "  Map [cust, total]\n"
            "    Aggregate by [cust] {sum(amount)->total, count()->n}\n"
            "      Scan sales\n"
            "  Map [cust_r, n]\n"
            "    Aggregate by [cust] {sum(amount)->total, count()->n}\n"
            "      Scan sales\n");
  EXPECT_EQ(pruned->inputs[0]->inputs[0], pruned->inputs[1]->inputs[0]);
  ExpectSameResults(joined.node(), pruned);
}

// --- the full driver -------------------------------------------------------

TEST_F(OptimizerTest, OptimizeIsIdempotent) {
  Plan plan = Plan::Scan("sales")
                  .Join(Plan::Scan("cust"), JoinType::kInner, {"cust"},
                        {"c_id"})
                  .Filter(Expr::And(Gt(C("amount"), Expr::Float(10.0)),
                                    Eq(C("c_region"), Expr::Str("west"))))
                  .Aggregate({"c_name"}, {Sum("amount", "total")})
                  .Sort({{"total", true}}, 3);
  PlanNodePtr once = Optimize(plan.node(), cat_);
  PlanNodePtr twice = Optimize(once, cat_);
  EXPECT_EQ(Shape(once), Shape(twice));
  ExpectSameResults(plan.node(), once);
}

TEST_F(OptimizerTest, OptimizeCombinesAllPasses) {
  Plan plan = Plan::Scan("sales")
                  .Derive({{"v", C("amount") * (Expr::Int(1) +
                                                Expr::Int(0))}})
                  .Join(Plan::Scan("cust"), JoinType::kInner, {"cust"},
                        {"c_id"})
                  .Filter(Expr::And(
                      Expr::Lit(Value::Bool(true)),
                      Expr::And(Gt(C("v"), Expr::Float(20.0)),
                                Eq(C("c_region"), Expr::Str("west")))))
                  .Aggregate({"c_name"}, {Sum("v", "total")})
                  .Sort({{"total", true}});
  PlanNodePtr optimized = Optimize(plan.node(), cat_);
  std::string shape = Shape(optimized);
  // Literal arithmetic folded away, the TRUE conjunct gone, the sales
  // scan projected, the region predicate on the cust scan (which needs
  // all three of its columns, so it stays unprojected — empty = all).
  // The region Filter sits directly above its scan, so it is also copied
  // into the scan's advisory prune predicate (the Filter remains as the
  // residual).
  EXPECT_EQ(shape,
            "Sort\n"
            "  Aggregate by [c_name] {sum(v)->total}\n"
            "    InnerJoin on [cust]=[c_id]\n"
            "      Filter (v > 20)\n"
            "        Map [cust, v]\n"
            "          Scan sales [cust,amount]\n"
            "      Filter (c_region = west)\n"
            "        Scan cust prune (c_region = west)\n");
  ExpectSameResults(plan.node(), optimized);
}

TEST_F(OptimizerTest, PushScanFiltersCopiesPredicateAndKeepsResidual) {
  Plan plan = Plan::Scan("sales").Filter(Gt(C("id"), Expr::Int(5)));
  PlanNodePtr after = PushScanFiltersPass(plan.node(), cat_);
  ASSERT_EQ(after->op, PlanOp::kFilter);  // residual Filter survives
  ASSERT_EQ(after->inputs[0]->op, PlanOp::kScan);
  ASSERT_NE(after->inputs[0]->scan_filter, nullptr);
  EXPECT_EQ(after->inputs[0]->scan_filter->ToString(),
            after->predicate->ToString());
  ExpectSameResults(plan.node(), after);
}

TEST_F(OptimizerTest, PushScanFiltersSkipsSharedScans) {
  // The scan also feeds the join's build side directly; specializing it
  // for the probe-side Filter would drop build-side rows.
  Plan scan = Plan::Scan("sales");
  Plan plan = scan.Filter(Gt(C("id"), Expr::Int(5)))
                  .Join(scan, JoinType::kInner, {"id"}, {"id"});
  PlanNodePtr after = PushScanFiltersPass(plan.node(), cat_);
  EXPECT_EQ(after->inputs[0]->inputs[0]->scan_filter, nullptr);
  EXPECT_EQ(after->inputs[1]->scan_filter, nullptr);
}

TEST_F(OptimizerTest, PushScanFiltersOnlyReachesAdjacentScans) {
  // A Filter above an Aggregate has no scan to specialize.
  Plan plan = Plan::Scan("sales")
                  .Aggregate({"cust"}, {Sum("amount", "total")})
                  .Filter(Gt(C("total"), Expr::Float(10.0)));
  PlanNodePtr after = PushScanFiltersPass(plan.node(), cat_);
  EXPECT_EQ(after, plan.node());  // untouched, not even cloned
}

TEST_F(OptimizerTest, PushScanFiltersIsIdempotent) {
  Plan plan = Plan::Scan("sales").Filter(Gt(C("id"), Expr::Int(5)));
  PlanNodePtr once = PushScanFiltersPass(plan.node(), cat_);
  PlanNodePtr twice = PushScanFiltersPass(once, cat_);
  EXPECT_EQ(twice, once);  // the already-pushed predicate is recognized
  EXPECT_EQ(Shape(twice), Shape(once));
}

TEST_F(OptimizerTest, OptimizedPlanValidatesAgainstInferProps) {
  // Optimize runs InferProps on its result; a malformed rewrite would
  // throw here rather than mis-execute downstream.
  Plan plan = Plan::Scan("sales")
                  .Filter(Gt(C("amount"), Expr::Float(10.0)))
                  .Aggregate({"tag"}, {Sum("amount", "total"), Count("n")})
                  .Sort({{"total", true}});
  EXPECT_NO_THROW(Optimize(plan.node(), cat_));
}

}  // namespace
}  // namespace wake
