#include "baseline/exact_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace wake {
namespace {

Catalog MakeCatalog() {
  Schema sales_schema({{"id", ValueType::kInt64},
                       {"cust", ValueType::kInt64},
                       {"amount", ValueType::kFloat64},
                       {"tag", ValueType::kString}});
  sales_schema.set_primary_key({"id"});
  sales_schema.set_clustering_key({"id"});
  DataFrame sales(sales_schema);
  // 10 rows: cust cycles 0..2, amount = id * 10.
  for (int i = 0; i < 10; ++i) {
    sales.mutable_column(0)->AppendInt(i);
    sales.mutable_column(1)->AppendInt(i % 3);
    sales.mutable_column(2)->AppendDouble(i * 10.0);
    sales.mutable_column(3)->AppendString(i % 2 ? "odd" : "even");
  }

  Schema cust_schema({{"c_id", ValueType::kInt64},
                      {"c_name", ValueType::kString}});
  DataFrame cust(cust_schema);
  for (int i = 0; i < 2; ++i) {  // cust 2 intentionally missing
    cust.mutable_column(0)->AppendInt(i);
    cust.mutable_column(1)->AppendString("cust" + std::to_string(i));
  }

  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("sales", sales, 2)));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("cust", cust, 1)));
  return cat;
}

class ExactEngineTest : public ::testing::Test {
 protected:
  Catalog cat_ = MakeCatalog();
  ExactEngine engine_{&cat_};

  DataFrame Run(const Plan& p) { return engine_.Execute(p.node()); }
};

TEST_F(ExactEngineTest, ScanMaterializesWholeTable) {
  DataFrame out = Run(Plan::Scan("sales"));
  EXPECT_EQ(out.num_rows(), 10u);
}

TEST_F(ExactEngineTest, FilterAndMap) {
  DataFrame out = Run(Plan::Scan("sales")
                          .Filter(Eq(Expr::Col("tag"), Expr::Str("even")))
                          .Map({{"double_amount",
                                 Expr::Col("amount") * Expr::Int(2)}}));
  EXPECT_EQ(out.num_rows(), 5u);
  EXPECT_EQ(out.num_columns(), 1u);
  EXPECT_DOUBLE_EQ(out.column(0).DoubleAt(1), 40.0);  // id=2 -> 20*2
}

TEST_F(ExactEngineTest, DeriveKeepsInputColumns) {
  DataFrame out =
      Run(Plan::Scan("sales").Derive({{"half", Expr::Col("amount") /
                                                   Expr::Int(2)}}));
  EXPECT_EQ(out.num_columns(), 5u);
  EXPECT_DOUBLE_EQ(out.ColumnByName("half").DoubleAt(3), 15.0);
}

TEST_F(ExactEngineTest, InnerJoinDropsUnmatched) {
  DataFrame out = Run(Plan::Scan("sales").Join(
      Plan::Scan("cust"), JoinType::kInner, {"cust"}, {"c_id"}));
  // cust 0 and 1 match: ids {0,1,3,4,6,7,9} -> 7 rows.
  EXPECT_EQ(out.num_rows(), 7u);
  EXPECT_TRUE(out.schema().HasField("c_name"));
  EXPECT_FALSE(out.schema().HasField("c_id"));
}

TEST_F(ExactEngineTest, LeftJoinPadsWithNulls) {
  DataFrame out = Run(Plan::Scan("sales").Join(
      Plan::Scan("cust"), JoinType::kLeft, {"cust"}, {"c_id"}));
  EXPECT_EQ(out.num_rows(), 10u);
  const Column& name = out.ColumnByName("c_name");
  size_t nulls = 0;
  for (size_t i = 0; i < out.num_rows(); ++i) nulls += name.IsNull(i);
  EXPECT_EQ(nulls, 3u);  // cust==2 rows: ids {2,5,8}
}

TEST_F(ExactEngineTest, SemiAndAntiJoins) {
  DataFrame semi = Run(Plan::Scan("sales").Join(
      Plan::Scan("cust"), JoinType::kSemi, {"cust"}, {"c_id"}));
  EXPECT_EQ(semi.num_rows(), 7u);
  EXPECT_EQ(semi.num_columns(), 4u);  // left columns only
  DataFrame anti = Run(Plan::Scan("sales").Join(
      Plan::Scan("cust"), JoinType::kAnti, {"cust"}, {"c_id"}));
  EXPECT_EQ(anti.num_rows(), 3u);
}

TEST_F(ExactEngineTest, SemiJoinDoesNotDuplicateOnMultiMatch) {
  // Build side with duplicate keys must not duplicate probe rows.
  Schema dup_schema({{"k", ValueType::kInt64}});
  DataFrame dup(dup_schema);
  dup.mutable_column(0)->AppendInt(0);
  dup.mutable_column(0)->AppendInt(0);
  Catalog cat = MakeCatalog();
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("dup", dup, 1)));
  ExactEngine engine(&cat);
  DataFrame out = engine.Execute(Plan::Scan("sales")
                                     .Join(Plan::Scan("dup"),
                                           JoinType::kSemi, {"cust"}, {"k"})
                                     .node());
  EXPECT_EQ(out.num_rows(), 4u);  // cust==0: ids {0,3,6,9}, once each
}

TEST_F(ExactEngineTest, CrossJoinBroadcastsScalar) {
  Plan total = Plan::Scan("sales").Aggregate({}, {Sum("amount", "total")});
  DataFrame out = Run(Plan::Scan("sales").CrossJoin(total));
  EXPECT_EQ(out.num_rows(), 10u);
  EXPECT_DOUBLE_EQ(out.ColumnByName("total").DoubleAt(0), 450.0);
}

TEST_F(ExactEngineTest, GroupByAggregates) {
  DataFrame out = Run(Plan::Scan("sales")
                          .Aggregate({"cust"}, {Sum("amount", "s"),
                                                Count("n"),
                                                Avg("amount", "a"),
                                                Min("amount", "mn"),
                                                Max("amount", "mx")})
                          .Sort({{"cust", false}}));
  ASSERT_EQ(out.num_rows(), 3u);
  // cust 0: ids {0,3,6,9} -> amounts {0,30,60,90}.
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 180.0);
  EXPECT_EQ(out.ColumnByName("n").IntAt(0), 4);
  EXPECT_DOUBLE_EQ(out.ColumnByName("a").DoubleAt(0), 45.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("mn").DoubleAt(0), 0.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("mx").DoubleAt(0), 90.0);
}

TEST_F(ExactEngineTest, CountDistinctIsExact) {
  DataFrame out = Run(
      Plan::Scan("sales").Aggregate({}, {CountDistinct("cust", "d"),
                                         CountDistinct("tag", "dt")}));
  EXPECT_EQ(out.ColumnByName("d").IntAt(0), 3);
  EXPECT_EQ(out.ColumnByName("dt").IntAt(0), 2);
}

TEST_F(ExactEngineTest, VarAndStddevArePopulationMoments) {
  DataFrame out = Run(
      Plan::Scan("sales").Aggregate({}, {VarOf("amount", "v"),
                                         StddevOf("amount", "sd")}));
  // amounts 0..90 step 10: mean 45, population variance 825.
  EXPECT_NEAR(out.ColumnByName("v").DoubleAt(0), 825.0, 1e-9);
  EXPECT_NEAR(out.ColumnByName("sd").DoubleAt(0), std::sqrt(825.0), 1e-9);
}

TEST_F(ExactEngineTest, CountSkipsNulls) {
  Plan joined = Plan::Scan("sales").Join(Plan::Scan("cust"), JoinType::kLeft,
                                         {"cust"}, {"c_id"});
  DataFrame out =
      Run(joined.Aggregate({}, {CountCol("c_name", "named"), Count("all")}));
  EXPECT_EQ(out.ColumnByName("named").IntAt(0), 7);
  EXPECT_EQ(out.ColumnByName("all").IntAt(0), 10);
}

TEST_F(ExactEngineTest, SortLimit) {
  DataFrame out =
      Run(Plan::Scan("sales").Sort({{"amount", true}}, 3));
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(out.ColumnByName("amount").DoubleAt(0), 90.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("amount").DoubleAt(2), 70.0);
}

TEST_F(ExactEngineTest, EmptyInputsFlowThrough) {
  DataFrame out = Run(Plan::Scan("sales")
                          .Filter(Gt(Expr::Col("amount"), Expr::Float(1e9)))
                          .Aggregate({"cust"}, {Sum("amount", "s")})
                          .Sort({{"s", true}}, 5));
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST_F(ExactEngineTest, AggregateOverEmptyGlobalGroupIsEmpty) {
  DataFrame out = Run(Plan::Scan("sales")
                          .Filter(Gt(Expr::Col("amount"), Expr::Float(1e9)))
                          .Aggregate({}, {Count("n")}));
  // No rows ever arrive -> no group (documented choice, matched by Wake).
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST_F(ExactEngineTest, PeakBytesTracked) {
  Run(Plan::Scan("sales"));
  EXPECT_GT(engine_.peak_bytes(), 0u);
}

}  // namespace
}  // namespace wake
