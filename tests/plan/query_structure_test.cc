// Structural properties of the TPC-H query plans: the Case 1/2/3
// classification of each operator must come out the way the paper
// describes (Fig 6 for Q18; §8.3's three query categories).
#include <gtest/gtest.h>

#include "engine/tpch_fixture.h"
#include "plan/props.h"
#include "tpch/queries.h"

namespace wake {
namespace {

// Finds the first node with the given label in the plan tree.
PlanNodePtr FindLabel(const PlanNodePtr& node, const std::string& label) {
  if (!node) return nullptr;
  if (node->label == label) return node;
  for (const auto& in : node->inputs) {
    if (auto found = FindLabel(in, label)) return found;
  }
  return nullptr;
}

TEST(QueryStructureTest, AllQueriesInferProps) {
  const Catalog& cat = testing::SharedTpch();
  for (int q : tpch::AllQueries()) {
    EXPECT_NO_THROW(InferProps(tpch::Query(q).node(), cat)) << "Q" << q;
  }
}

TEST(QueryStructureTest, Q18MatchesFig6Classification) {
  const Catalog& cat = testing::SharedTpch();
  Plan q18 = tpch::Query(18);

  // OQ: sum(qty) by orderkey — clustering-key groups, Case 1 local agg:
  // append mode, constant attributes.
  PlanNodePtr oq = FindLabel(q18.node(), "OQ");
  ASSERT_NE(oq, nullptr);
  PlanProps oq_props = InferProps(oq, cat);
  EXPECT_EQ(oq_props.mode, EvolveMode::kAppend);
  EXPECT_FALSE(oq_props.needs_inference);
  EXPECT_FALSE(oq_props.schema.field(oq_props.schema.FieldIndex("sum_qty"))
                   .mutable_attr);

  // LO: filter on sum_qty — legal as a Case 1 filter because sum_qty is
  // constant; output stays append-mode.
  PlanNodePtr lo = FindLabel(q18.node(), "LO");
  ASSERT_NE(lo, nullptr);
  EXPECT_EQ(InferProps(lo, cat).mode, EvolveMode::kAppend);

  // C: official TPC-H Q18 groups per order (the group keys include
  // l_orderkey, the clustering key), so this aggregation is *also* local —
  // groups complete within partitions and values are exact. This is
  // stronger than Fig 6's depiction, which draws the paper's §1 session
  // (sum by customer *name* only); the by-name variant is the Case 2
  // shuffle aggregation:
  PlanNodePtr c = FindLabel(q18.node(), "C");
  ASSERT_NE(c, nullptr);
  PlanProps c_props = InferProps(c, cat);
  EXPECT_EQ(c_props.mode, EvolveMode::kAppend);  // per-order grouping

  Plan by_name = Plan(lo).Join(Plan::Scan("orders").Project(
                                   {"o_orderkey", "o_custkey"}),
                               JoinType::kInner, {"l_orderkey"},
                               {"o_orderkey"})
                     .Join(Plan::Scan("customer").Project(
                               {"c_custkey", "c_name"}),
                           JoinType::kInner, {"o_custkey"}, {"c_custkey"})
                     .Aggregate({"c_name"}, {Sum("sum_qty", "qty")});
  PlanProps by_name_props = InferProps(by_name.node(), cat);
  EXPECT_EQ(by_name_props.mode, EvolveMode::kRefresh);
  EXPECT_TRUE(by_name_props.needs_inference);

  // TC: sort/limit — Case 3 refresh.
  EXPECT_EQ(InferProps(q18.node(), cat).mode, EvolveMode::kRefresh);
}

TEST(QueryStructureTest, CategoryOneQueriesAreShuffleAggs) {
  // §8.3 category 1: group-by on non-clustering low-cardinality keys.
  const Catalog& cat = testing::SharedTpch();
  for (int q : {1, 5, 7, 9, 12}) {
    PlanProps props = InferProps(tpch::Query(q).node(), cat);
    // Find the aggregate below the final sort.
    PlanNodePtr node = tpch::Query(q).node();
    while (node->op != PlanOp::kAggregate) {
      ASSERT_FALSE(node->inputs.empty()) << "Q" << q;
      node = node->inputs[0];
    }
    PlanProps agg_props = InferProps(node, cat);
    EXPECT_EQ(agg_props.mode, EvolveMode::kRefresh) << "Q" << q;
    EXPECT_TRUE(agg_props.needs_inference) << "Q" << q;
    (void)props;
  }
}

TEST(QueryStructureTest, Q3TopAggregationIsLocal) {
  // §8.3 category 2: Q3 groups by the clustering key (l_orderkey, ...);
  // its aggregation values are exact while recall grows.
  const Catalog& cat = testing::SharedTpch();
  PlanNodePtr node = tpch::Query(3).node();
  while (node->op != PlanOp::kAggregate) node = node->inputs[0];
  PlanProps props = InferProps(node, cat);
  EXPECT_EQ(props.mode, EvolveMode::kAppend);
  EXPECT_FALSE(props.needs_inference);
}

TEST(QueryStructureTest, ScansCarryTableClusteringKeys) {
  const Catalog& cat = testing::SharedTpch();
  PlanProps li = InferProps(Plan::Scan("lineitem").node(), cat);
  EXPECT_EQ(li.schema.clustering_key(),
            std::vector<std::string>{"l_orderkey"});
  PlanProps ps = InferProps(Plan::Scan("partsupp").node(), cat);
  EXPECT_EQ(ps.schema.clustering_key(),
            std::vector<std::string>{"ps_partkey"});
}

TEST(QueryStructureTest, ModifiedQueriesAreSingleAggregate) {
  const Catalog& cat = testing::SharedTpch();
  for (int q : {1, 3, 6, 7, 10}) {
    PlanNodePtr node = tpch::ModifiedQuery(q).node();
    EXPECT_EQ(node->op, PlanOp::kAggregate) << "MQ" << q;
    EXPECT_NO_THROW(InferProps(node, cat));
  }
}

}  // namespace
}  // namespace wake
