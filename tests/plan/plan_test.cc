#include "plan/plan.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

TEST(PlanBuilderTest, ScanProducesLeaf) {
  Plan p = Plan::Scan("lineitem");
  ASSERT_NE(p.node(), nullptr);
  EXPECT_EQ(p.node()->op, PlanOp::kScan);
  EXPECT_EQ(p.node()->table, "lineitem");
  EXPECT_TRUE(p.node()->inputs.empty());
}

TEST(PlanBuilderTest, ChainBuildsTree) {
  Plan p = Plan::Scan("t")
               .Filter(Gt(Expr::Col("x"), Expr::Int(0)))
               .Aggregate({"g"}, {Sum("x", "sum_x")})
               .Sort({{"sum_x", true}}, 10);
  EXPECT_EQ(p.node()->op, PlanOp::kSortLimit);
  EXPECT_EQ(p.node()->limit, 10u);
  EXPECT_EQ(p.node()->inputs[0]->op, PlanOp::kAggregate);
  EXPECT_EQ(p.node()->inputs[0]->inputs[0]->op, PlanOp::kFilter);
}

TEST(PlanBuilderTest, OpsOnEmptyPlanThrow) {
  Plan empty;
  EXPECT_THROW(empty.Filter(Expr::Int(1)), Error);
  EXPECT_THROW(empty.Aggregate({}, {Count("c")}), Error);
  EXPECT_THROW(empty.Sort({}), Error);
}

TEST(PlanBuilderTest, JoinValidatesKeyArity) {
  Plan a = Plan::Scan("a"), b = Plan::Scan("b");
  EXPECT_THROW(a.Join(b, JoinType::kInner, {"x"}, {"y", "z"}), Error);
  EXPECT_THROW(a.Join(b, JoinType::kInner, {}, {}), Error);
  Plan j = a.Join(b, JoinType::kInner, {"x"}, {"y"});
  EXPECT_EQ(j.node()->op, PlanOp::kJoin);
  EXPECT_EQ(j.node()->inputs.size(), 2u);
}

TEST(PlanBuilderTest, CrossJoinAllowsEmptyKeys) {
  Plan j = Plan::Scan("a").CrossJoin(Plan::Scan("b"));
  EXPECT_EQ(j.node()->join_type, JoinType::kCross);
  EXPECT_TRUE(j.node()->left_keys.empty());
}

TEST(PlanBuilderTest, AggregateRequiresAggs) {
  EXPECT_THROW(Plan::Scan("t").Aggregate({"g"}, {}), Error);
}

TEST(PlanBuilderTest, ProjectLowersToMap) {
  Plan p = Plan::Scan("t").Project({"a", "b"});
  EXPECT_EQ(p.node()->op, PlanOp::kMap);
  EXPECT_FALSE(p.node()->append_input);
  ASSERT_EQ(p.node()->projections.size(), 2u);
  EXPECT_EQ(p.node()->projections[0].name, "a");
}

TEST(PlanBuilderTest, DeriveSetsAppendInput) {
  Plan p = Plan::Scan("t").Derive({{"x2", Expr::Col("x")}});
  EXPECT_TRUE(p.node()->append_input);
}

TEST(PlanBuilderTest, WithLabelCopiesNode) {
  Plan p = Plan::Scan("t");
  Plan labeled = p.WithLabel("LI");
  EXPECT_EQ(labeled.node()->label, "LI");
  EXPECT_NE(p.node()->label, "LI");  // original untouched
}

TEST(PlanBuilderTest, SharedSubplansAllowed) {
  // Q15-style: one subplan feeds two parents.
  Plan rev = Plan::Scan("t").Aggregate({"k"}, {Sum("v", "total")});
  Plan max_rev = rev.Aggregate({}, {Max("total", "m")});
  Plan joined = rev.CrossJoin(max_rev);
  EXPECT_EQ(joined.node()->inputs[0], rev.node());
  EXPECT_EQ(joined.node()->inputs[1]->inputs[0], rev.node());
}

TEST(AggSpecTest, FactoriesSetFields) {
  AggSpec s = Sum("x", "sx");
  EXPECT_EQ(s.func, AggFunc::kSum);
  EXPECT_EQ(s.input, "x");
  EXPECT_EQ(s.output, "sx");
  EXPECT_EQ(Count("c").input, "");
  EXPECT_EQ(CountDistinct("k", "d").func, AggFunc::kCountDistinct);
  EXPECT_EQ(StddevOf("x", "sd").func, AggFunc::kStddev);
}

TEST(AggFuncNameTest, AllNamed) {
  EXPECT_STREQ(AggFuncName(AggFunc::kSum), "sum");
  EXPECT_STREQ(AggFuncName(AggFunc::kCountDistinct), "count_distinct");
  EXPECT_STREQ(AggFuncName(AggFunc::kVar), "var");
}

TEST(PlanToStringTest, RendersTree) {
  Plan p = Plan::Scan("t")
               .Filter(Gt(Expr::Col("x"), Expr::Int(1)))
               .Aggregate({"g"}, {Sum("x", "s")});
  std::string s = PlanToString(p.node());
  EXPECT_NE(s.find("Aggregate by [g]"), std::string::npos);
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Scan t"), std::string::npos);
}

}  // namespace
}  // namespace wake
