#include "plan/props.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

// A small clustered fact table plus a dimension table.
Catalog MakeCatalog() {
  Schema fact_schema({{"fk", ValueType::kInt64},
                      {"dim_id", ValueType::kInt64},
                      {"val", ValueType::kFloat64}});
  fact_schema.set_primary_key({"fk"});
  fact_schema.set_clustering_key({"fk"});
  DataFrame fact(fact_schema);
  for (int i = 0; i < 20; ++i) {
    fact.mutable_column(0)->AppendInt(i);
    fact.mutable_column(1)->AppendInt(i % 4);
    fact.mutable_column(2)->AppendDouble(i * 1.0);
  }

  Schema dim_schema({{"d_id", ValueType::kInt64},
                     {"d_name", ValueType::kString}});
  dim_schema.set_primary_key({"d_id"});
  dim_schema.set_clustering_key({"d_id"});
  DataFrame dim(dim_schema);
  for (int i = 0; i < 4; ++i) {
    dim.mutable_column(0)->AppendInt(i);
    dim.mutable_column(1)->AppendString("d" + std::to_string(i));
  }

  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("fact", fact, 4)));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("dim", dim, 1)));
  return cat;
}

class PropsTest : public ::testing::Test {
 protected:
  Catalog cat_ = MakeCatalog();
};

TEST_F(PropsTest, ScanIsAppendWithTableSchema) {
  PlanProps p = InferProps(Plan::Scan("fact").node(), cat_);
  EXPECT_EQ(p.mode, EvolveMode::kAppend);
  EXPECT_EQ(p.schema.num_fields(), 3u);
  EXPECT_EQ(p.schema.clustering_key(), std::vector<std::string>{"fk"});
  EXPECT_FALSE(p.needs_inference);
}

TEST_F(PropsTest, MapKeepsKeysWhenColumnsSurvive) {
  Plan p = Plan::Scan("fact").Project({"fk", "val"});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.schema.clustering_key(), std::vector<std::string>{"fk"});
  Plan dropped = Plan::Scan("fact").Project({"val"});
  EXPECT_TRUE(InferProps(dropped.node(), cat_).schema.clustering_key().empty());
}

TEST_F(PropsTest, DeriveAppendsFields) {
  Plan p = Plan::Scan("fact").Derive(
      {{"v2", Expr::Col("val") * Expr::Float(2.0)}});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.schema.num_fields(), 4u);
  EXPECT_EQ(props.schema.field(3).name, "v2");
  EXPECT_EQ(props.schema.field(3).type, ValueType::kFloat64);
  EXPECT_FALSE(props.schema.field(3).mutable_attr);
}

TEST_F(PropsTest, DuplicateMapNameThrows) {
  Plan p = Plan::Scan("fact").Derive({{"val", Expr::Col("val")}});
  EXPECT_THROW(InferProps(p.node(), cat_), Error);
}

TEST_F(PropsTest, LocalAggIsAppendAndConstant) {
  // Group keys cover the clustering key -> Case 1 local aggregation.
  Plan p = Plan::Scan("fact").Aggregate({"fk"}, {Sum("val", "sum_val")});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.mode, EvolveMode::kAppend);
  EXPECT_FALSE(props.needs_inference);
  EXPECT_FALSE(
      props.schema.field(props.schema.FieldIndex("sum_val")).mutable_attr);
  EXPECT_EQ(props.schema.clustering_key(), std::vector<std::string>{"fk"});
}

TEST_F(PropsTest, ShuffleAggIsRefreshAndMutable) {
  Plan p = Plan::Scan("fact").Aggregate({"dim_id"}, {Sum("val", "sum_val")});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.mode, EvolveMode::kRefresh);
  EXPECT_TRUE(props.needs_inference);
  EXPECT_TRUE(
      props.schema.field(props.schema.FieldIndex("sum_val")).mutable_attr);
  EXPECT_FALSE(
      props.schema.field(props.schema.FieldIndex("dim_id")).mutable_attr);
  EXPECT_EQ(props.schema.primary_key(), std::vector<std::string>{"dim_id"});
}

TEST_F(PropsTest, GlobalAggIsShuffle) {
  Plan p = Plan::Scan("fact").Aggregate({}, {Sum("val", "s")});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.mode, EvolveMode::kRefresh);
  EXPECT_TRUE(props.needs_inference);
}

TEST_F(PropsTest, AggOverAggIsRefresh) {
  Plan inner = Plan::Scan("fact").Aggregate({"dim_id"}, {Count("c")});
  Plan outer = inner.Aggregate({"c"}, {Count("dist")});
  PlanProps props = InferProps(outer.node(), cat_);
  EXPECT_EQ(props.mode, EvolveMode::kRefresh);
  EXPECT_TRUE(props.needs_inference);
}

TEST_F(PropsTest, JoinSchemaDropsRightKeys) {
  Plan p = Plan::Scan("fact").Join(Plan::Scan("dim"), JoinType::kInner,
                                   {"dim_id"}, {"d_id"});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.schema.num_fields(), 4u);  // fk, dim_id, val, d_name
  EXPECT_FALSE(props.schema.HasField("d_id"));
  EXPECT_TRUE(props.schema.HasField("d_name"));
  // Probe-side clustering survives a hash join.
  EXPECT_EQ(props.schema.clustering_key(), std::vector<std::string>{"fk"});
  EXPECT_EQ(props.mode, EvolveMode::kAppend);
}

TEST_F(PropsTest, SemiAntiJoinKeepLeftSchemaOnly) {
  for (JoinType type : {JoinType::kSemi, JoinType::kAnti}) {
    Plan p = Plan::Scan("fact").Join(Plan::Scan("dim"), type, {"dim_id"},
                                     {"d_id"});
    PlanProps props = InferProps(p.node(), cat_);
    EXPECT_EQ(props.schema.num_fields(), 3u);
    EXPECT_FALSE(props.schema.HasField("d_name"));
  }
}

TEST_F(PropsTest, JoinWithRefreshInputIsRefresh) {
  Plan agg = Plan::Scan("fact").Aggregate({"dim_id"}, {Sum("val", "sv")});
  Plan p = Plan::Scan("fact").Join(
      agg.Map({{"j_id", Expr::Col("dim_id")}, {"sv", Expr::Col("sv")}}),
      JoinType::kInner, {"dim_id"}, {"j_id"});
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.mode, EvolveMode::kRefresh);
  EXPECT_TRUE(props.schema.field(props.schema.FieldIndex("sv")).mutable_attr);
}

TEST_F(PropsTest, FilterOnMutableOverAppendThrows) {
  // Manufacture the invalid combination by hand: filters over mutable
  // attributes are only legal on refresh-mode inputs.
  Plan agg = Plan::Scan("fact").Aggregate({"dim_id"}, {Sum("val", "sv")});
  // This one is legal (refresh mode):
  EXPECT_NO_THROW(InferProps(
      agg.Filter(Gt(Expr::Col("sv"), Expr::Float(1.0))).node(), cat_));
}

TEST_F(PropsTest, SortIsRefreshAndReclusters) {
  Plan p = Plan::Scan("fact").Sort({{"val", true}}, 5);
  PlanProps props = InferProps(p.node(), cat_);
  EXPECT_EQ(props.mode, EvolveMode::kRefresh);
  EXPECT_EQ(props.schema.clustering_key(), std::vector<std::string>{"val"});
}

TEST_F(PropsTest, UnknownColumnsThrow) {
  EXPECT_THROW(
      InferProps(Plan::Scan("fact").Project({"nope"}).node(), cat_), Error);
  EXPECT_THROW(InferProps(Plan::Scan("fact")
                              .Filter(Gt(Expr::Col("nope"), Expr::Int(0)))
                              .node(),
                          cat_),
               Error);
  EXPECT_THROW(InferProps(Plan::Scan("fact")
                              .Join(Plan::Scan("dim"), JoinType::kInner,
                                    {"nope"}, {"d_id"})
                              .node(),
                          cat_),
               Error);
  EXPECT_THROW(
      InferProps(Plan::Scan("fact").Sort({{"nope", false}}).node(), cat_),
      Error);
}

TEST_F(PropsTest, AggOverStringThrowsForNumericFuncs) {
  Plan p = Plan::Scan("dim").Aggregate({}, {Sum("d_name", "s")});
  EXPECT_THROW(InferProps(p.node(), cat_), Error);
  // min/max/count_distinct over strings are fine.
  EXPECT_NO_THROW(InferProps(
      Plan::Scan("dim").Aggregate({}, {Min("d_name", "m")}).node(), cat_));
}

TEST(AggOutputSchemaTest, TypesPerFunction) {
  Schema in({{"g", ValueType::kString},
             {"i", ValueType::kInt64},
             {"f", ValueType::kFloat64}});
  Schema out = AggOutputSchema(
      in, {"g"},
      {Sum("i", "si"), Sum("f", "sf"), Count("c"), Avg("i", "a"),
       Min("i", "mn"), Max("f", "mx"), CountDistinct("g", "cd"),
       VarOf("f", "v"), StddevOf("f", "sd")});
  EXPECT_EQ(out.field(out.FieldIndex("si")).type, ValueType::kInt64);
  EXPECT_EQ(out.field(out.FieldIndex("sf")).type, ValueType::kFloat64);
  EXPECT_EQ(out.field(out.FieldIndex("c")).type, ValueType::kInt64);
  EXPECT_EQ(out.field(out.FieldIndex("a")).type, ValueType::kFloat64);
  EXPECT_EQ(out.field(out.FieldIndex("mn")).type, ValueType::kInt64);
  EXPECT_EQ(out.field(out.FieldIndex("mx")).type, ValueType::kFloat64);
  EXPECT_EQ(out.field(out.FieldIndex("cd")).type, ValueType::kInt64);
  EXPECT_EQ(out.field(out.FieldIndex("v")).type, ValueType::kFloat64);
  EXPECT_EQ(out.primary_key(), std::vector<std::string>{"g"});
}

TEST(JoinOutputSchemaTest, CollisionThrows) {
  Schema left({{"x", ValueType::kInt64}, {"shared", ValueType::kInt64}});
  Schema right({{"k", ValueType::kInt64}, {"shared", ValueType::kInt64}});
  EXPECT_THROW(JoinOutputSchema(left, right, {"k"}, JoinType::kInner), Error);
  // Semi joins never collide (left only).
  EXPECT_NO_THROW(JoinOutputSchema(left, right, {"k"}, JoinType::kSemi));
}

}  // namespace
}  // namespace wake
