// Morsel-parallel execution: probe determinism at any worker count,
// probe-side dict unification for cross-dict string joins, concurrent
// probes over one shared JoinHashTable, and engine-level 1-vs-N worker
// result identity.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/engine.h"
#include "core/join_kernel.h"
#include "plan/props.h"

namespace wake {
namespace {

Schema BuildSchema() {
  return Schema({{"bk", ValueType::kInt64}, {"bv", ValueType::kFloat64}});
}
Schema ProbeSchema() {
  return Schema({{"pk", ValueType::kInt64}, {"pv", ValueType::kFloat64}});
}

DataFrame MakeKeyed(const Schema& schema, size_t rows, int64_t keys,
                    uint64_t seed, bool with_nulls = false) {
  DataFrame df(schema);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    df.mutable_column(0)->AppendInt(rng.UniformInt(0, keys - 1));
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(0, 100));
    if (with_nulls && i % 97 == 13) df.mutable_column(0)->SetNull(i);
  }
  return df;
}

class ParallelProbeTest : public ::testing::TestWithParam<JoinType> {};

// A pooled probe must be byte-identical to the serial probe: morsel
// match vectors are stitched in morsel order, which is the serial row
// order.
TEST_P(ParallelProbeTest, PooledProbeIdenticalToSerial) {
  JoinType type = GetParam();
  constexpr size_t kProbeRows = 80 * 1024;  // > 2 morsels
  JoinHashTable table(BuildSchema(), {"bk"});
  table.Insert(MakeKeyed(BuildSchema(), 20 * 1024, 16 * 1024, 3,
                         /*with_nulls=*/true));
  DataFrame probe =
      MakeKeyed(ProbeSchema(), kProbeRows, 16 * 1024, 5, /*with_nulls=*/true);
  Schema out_schema =
      JoinOutputSchema(ProbeSchema(), BuildSchema(), {"bk"}, type);

  DataFrame serial = table.Probe(probe, {"pk"}, type, out_schema);
  WorkerPool pool(4);
  DataFrame pooled = table.Probe(probe, {"pk"}, type, out_schema, nullptr,
                                 nullptr, &pool);
  std::string diff;
  EXPECT_TRUE(pooled.ApproxEquals(serial, 0.0, &diff)) << diff;
  EXPECT_EQ(pooled.num_rows(), serial.num_rows());
}

INSTANTIATE_TEST_SUITE_P(AllJoinTypes, ParallelProbeTest,
                         ::testing::Values(JoinType::kInner, JoinType::kLeft,
                                           JoinType::kSemi,
                                           JoinType::kAnti));

Schema DictBuildSchema() {
  return Schema({{"bk", ValueType::kString}, {"bv", ValueType::kFloat64}});
}
Schema DictProbeSchema() {
  return Schema({{"pk", ValueType::kString}, {"pv", ValueType::kFloat64}});
}

// Key column of `rows` draws over "key<i>" strings; interned into `dict`
// (shared gathers) when given, else into a private dict per column.
Column MakeStringKeys(size_t rows, int64_t keys, uint64_t seed,
                      int64_t absent_every = 0) {
  Column col = Column::NewDict();
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = rng.UniformInt(0, keys - 1);
    if (absent_every > 0 && static_cast<int64_t>(i) % absent_every == 7) {
      col.AppendString("absent" + std::to_string(k));
    } else {
      col.AppendString("key" + std::to_string(k));
    }
  }
  return col;
}

// Cross-dict string join: the probe keys live in a different dict than
// the build keys. Unification remaps probe codes into the build dict once
// per partial; the result must match the plain-encoded baseline.
TEST(CrossDictProbeTest, UnifiedProbeMatchesPlainBaseline) {
  constexpr size_t kRows = 4096;
  DataFrame build(DictBuildSchema());
  *build.mutable_column(0) = MakeStringKeys(kRows / 4, 300, 11);
  for (size_t i = 0; i < kRows / 4; ++i) {
    build.mutable_column(1)->AppendDouble(static_cast<double>(i));
  }
  DataFrame probe(DictProbeSchema());
  *probe.mutable_column(0) = MakeStringKeys(kRows, 300, 13, /*absent=*/31);
  for (size_t i = 0; i < kRows; ++i) {
    probe.mutable_column(1)->AppendDouble(static_cast<double>(i) * 0.5);
  }
  ASSERT_NE(probe.column(0).dict().get(), build.column(0).dict().get());

  for (JoinType type :
       {JoinType::kInner, JoinType::kLeft, JoinType::kSemi, JoinType::kAnti}) {
    Schema out_schema =
        JoinOutputSchema(DictProbeSchema(), DictBuildSchema(), {"bk"}, type);
    JoinHashTable dict_table(DictBuildSchema(), {"bk"});
    dict_table.Insert(build);
    DataFrame unified = dict_table.Probe(probe, {"pk"}, type, out_schema);

    // Baseline: plain-encoded keys (byte comparisons everywhere).
    DataFrame plain_build(DictBuildSchema());
    *plain_build.mutable_column(0) = build.column(0).DecodeDict();
    *plain_build.mutable_column(1) = build.column(1);
    DataFrame plain_probe(DictProbeSchema());
    *plain_probe.mutable_column(0) = probe.column(0).DecodeDict();
    *plain_probe.mutable_column(1) = probe.column(1);
    JoinHashTable plain_table(DictBuildSchema(), {"bk"});
    plain_table.Insert(plain_build);
    DataFrame baseline =
        plain_table.Probe(plain_probe, {"pk"}, type, out_schema);

    std::string diff;
    EXPECT_TRUE(unified.ApproxEquals(baseline, 0.0, &diff))
        << "type=" << static_cast<int>(type) << ": " << diff;
  }
}

// The build dict growing between probes must invalidate cached "absent"
// translations (append-only dicts: found entries stay valid).
TEST(CrossDictProbeTest, BuildDictGrowthRefreshesAbsentEntries) {
  Schema bs = DictBuildSchema();
  DataFrame build1(bs);
  *build1.mutable_column(0) = Column::DictFromStrings({"a", "b"});
  build1.mutable_column(1)->AppendDouble(1.0);
  build1.mutable_column(1)->AppendDouble(2.0);
  JoinHashTable table(bs, {"bk"});
  table.Insert(build1);

  DataFrame probe(DictProbeSchema());
  *probe.mutable_column(0) = Column::DictFromStrings({"c", "a"});
  probe.mutable_column(1)->AppendDouble(0.0);
  probe.mutable_column(1)->AppendDouble(0.0);
  Schema out_schema =
      JoinOutputSchema(DictProbeSchema(), bs, {"bk"}, JoinType::kInner);
  EXPECT_EQ(table.Probe(probe, {"pk"}, JoinType::kInner, out_schema)
                .num_rows(),
            1u);  // only "a"; "c" cached absent

  // Second build partial interns "c" — the same probe must now match it.
  DataFrame build2(bs);
  Column more = Column::NewDict();
  more.AppendString("c");
  *build2.mutable_column(0) = std::move(more);
  build2.mutable_column(1)->AppendDouble(3.0);
  table.Insert(build2);
  EXPECT_EQ(table.Probe(probe, {"pk"}, JoinType::kInner, out_schema)
                .num_rows(),
            2u);
}

// The flat-hash table is read-mostly after build: many threads may probe
// one shared table concurrently (this is what the morsel-parallel join
// node does). Every thread must see the full serial result.
TEST(ConcurrentProbeTest, SharedTableProbesFromManyThreads) {
  constexpr size_t kProbeRows = 48 * 1024;
  JoinHashTable table(BuildSchema(), {"bk"});
  table.Insert(MakeKeyed(BuildSchema(), 12 * 1024, 8 * 1024, 3));
  DataFrame probe = MakeKeyed(ProbeSchema(), kProbeRows, 8 * 1024, 5);
  Schema out_schema =
      JoinOutputSchema(ProbeSchema(), BuildSchema(), {"bk"}, JoinType::kInner);
  DataFrame expected = table.Probe(probe, {"pk"}, JoinType::kInner,
                                   out_schema);

  WorkerPool pool(3);
  std::vector<int> ok(4, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        // Alternate serial and pooled probes to mix access patterns.
        WorkerPool* p = (rep % 2 == 0) ? &pool : nullptr;
        DataFrame out = table.Probe(probe, {"pk"}, JoinType::kInner,
                                    out_schema, nullptr, nullptr, p);
        if (!out.ApproxEquals(expected, 0.0)) return;
      }
      ok[t] = 1;
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 0; t < 4; ++t) EXPECT_EQ(ok[t], 1) << "thread " << t;
}

// Engine-level determinism: the same query must produce the same final
// frame with serial operators and with a 4-worker pool.
TEST(EngineWorkersTest, FinalResultIdenticalAcrossWorkerCounts) {
  Schema schema({{"key", ValueType::kInt64},
                 {"dim", ValueType::kInt64},
                 {"val", ValueType::kFloat64}});
  schema.set_primary_key({"key"});
  schema.set_clustering_key({"key"});
  DataFrame df(schema);
  Rng rng(7);
  constexpr size_t kRows = 120 * 1024;
  for (size_t i = 0; i < kRows; ++i) {
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i));
    df.mutable_column(1)->AppendInt(rng.UniformInt(0, 499));
    df.mutable_column(2)->AppendDouble(rng.UniformDouble(0, 10));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("fact", df, 3)));

  Plan plan = Plan::Scan("fact")
                  .Filter(Gt(Expr::Col("val"), Expr::Float(1.0)))
                  .Aggregate({"dim"}, {Sum("val", "s"), Count("n")});

  auto run = [&](size_t workers) {
    WakeOptions options;
    options.workers = workers;
    WakeEngine engine(&cat, options);
    return engine.ExecuteFinal(plan.node());
  };
  DataFrame serial = run(1);
  DataFrame wide = run(4);
  ASSERT_GT(serial.num_rows(), 0u);
  std::string diff;
  EXPECT_TRUE(serial.ApproxEquals(wide, 0.0, &diff)) << diff;
}

// The chunked LocalAggNode (edges snapped to group boundaries, chunk
// states merged in chunk order) must reproduce the serial state exactly.
// Grouping by the clustering key selects Case 1 local aggregation; two
// 75k-row partitions clear the 64k-row parallel threshold per partial.
TEST(EngineWorkersTest, LocalAggIdenticalAcrossWorkerCounts) {
  Schema schema({{"key", ValueType::kInt64}, {"val", ValueType::kFloat64}});
  schema.set_clustering_key({"key"});
  DataFrame df(schema);
  Rng rng(9);
  constexpr size_t kRows = 150 * 1024;
  for (size_t i = 0; i < kRows; ++i) {
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i / 3));
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(0, 10));
    if (i % 101 == 5) df.mutable_column(1)->SetNull(i);
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("fact", df, 2)));
  Plan plan =
      Plan::Scan("fact").Aggregate({"key"}, {Sum("val", "s"), Count("n")});
  auto run = [&](size_t workers) {
    WakeOptions options;
    options.workers = workers;
    WakeEngine engine(&cat, options);
    return engine.ExecuteFinal(plan.node());
  };
  DataFrame serial = run(1);
  DataFrame wide = run(4);
  ASSERT_GT(serial.num_rows(), 0u);
  std::string diff;
  EXPECT_TRUE(serial.ApproxEquals(wide, 0.0, &diff)) << diff;
}

// The morsel-parallel top-k sort (per-morsel runs + k-way merge under a
// total comparator) must match the serial stable sort at every limit —
// heavy ties and nulls exercise the row-index tie-break.
TEST(SortedIndicesTest, ParallelMatchesSerialWithTiesAndNulls) {
  Schema schema({{"v", ValueType::kInt64}, {"w", ValueType::kFloat64}});
  DataFrame df(schema);
  Rng rng(3);
  constexpr size_t kRows = 70 * 1024 + 13;  // > 2 morsels, unaligned tail
  for (size_t i = 0; i < kRows; ++i) {
    df.mutable_column(0)->AppendInt(rng.UniformInt(0, 50));  // heavy ties
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(0, 1));
    if (i % 97 == 13) df.mutable_column(0)->SetNull(i);
  }
  WorkerPool pool(4);
  for (bool desc : {false, true}) {
    for (size_t limit : {size_t{0}, size_t{1}, size_t{100}, kRows}) {
      std::vector<uint32_t> serial =
          df.SortedIndices({{"v", desc}}, limit, nullptr);
      std::vector<uint32_t> pooled =
          df.SortedIndices({{"v", desc}}, limit, &pool);
      ASSERT_EQ(serial, pooled) << "desc=" << desc << " limit=" << limit;
    }
  }
}

// Engine-level: order-by with and without a limit, serial vs pooled.
TEST(EngineWorkersTest, SortLimitIdenticalAcrossWorkerCounts) {
  Schema schema({{"key", ValueType::kInt64}, {"val", ValueType::kFloat64}});
  DataFrame df(schema);
  Rng rng(17);
  constexpr size_t kRows = 130 * 1024;
  for (size_t i = 0; i < kRows; ++i) {
    df.mutable_column(0)->AppendInt(rng.UniformInt(0, 200));  // many ties
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(0, 100));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("fact", df, 2)));
  for (size_t limit : {size_t{0}, size_t{50}}) {
    Plan plan = Plan::Scan("fact").Sort({{"key", true}, {"val", false}},
                                        limit);
    auto run = [&](size_t workers) {
      WakeOptions options;
      options.workers = workers;
      WakeEngine engine(&cat, options);
      return engine.ExecuteFinal(plan.node());
    };
    DataFrame serial = run(1);
    DataFrame wide = run(4);
    ASSERT_GT(serial.num_rows(), 0u);
    std::string diff;
    EXPECT_TRUE(serial.ApproxEquals(wide, 0.0, &diff))
        << "limit=" << limit << ": " << diff;
  }
}

}  // namespace
}  // namespace wake
