#include "core/agg_state.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "plan/props.h"

namespace wake {
namespace {

Schema InputSchema() {
  return Schema({{"g", ValueType::kInt64},
                 {"v", ValueType::kFloat64},
                 {"name", ValueType::kString}});
}

DataFrame MakeInput(const std::vector<int64_t>& g,
                    const std::vector<double>& v,
                    const std::vector<std::string>& names) {
  DataFrame df(InputSchema());
  *df.mutable_column(0) = Column::FromInts(g);
  *df.mutable_column(1) = Column::FromDoubles(v);
  *df.mutable_column(2) = Column::FromStrings(names);
  return df;
}

std::vector<AggSpec> AllAggs() {
  return {Sum("v", "s"),          Count("n"),
          CountCol("v", "nv"),    Avg("v", "a"),
          Min("v", "mn"),         Max("v", "mx"),
          CountDistinct("name", "d"), VarOf("v", "var"),
          StddevOf("v", "sd")};
}

GroupedAggState MakeState(const std::vector<std::string>& by,
                          const std::vector<AggSpec>& aggs) {
  return GroupedAggState(by, aggs, InputSchema(),
                         AggOutputSchema(InputSchema(), by, aggs));
}

TEST(GroupedAggStateTest, SingleConsumeExactFinalize) {
  auto state = MakeState({"g"}, AllAggs());
  state.Consume(MakeInput({1, 1, 2, 2, 2}, {1.0, 3.0, 5.0, 5.0, 8.0},
                          {"a", "b", "x", "x", "y"}));
  EXPECT_EQ(state.num_groups(), 2u);
  EXPECT_EQ(state.total_rows(), 5u);
  EXPECT_DOUBLE_EQ(state.MeanGroupCardinality(), 2.5);
  DataFrame out = state.Finalize(AggScaling{}).frame;
  ASSERT_EQ(out.num_rows(), 2u);
  // Group 1 appears first (insertion order).
  EXPECT_EQ(out.ColumnByName("g").IntAt(0), 1);
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 4.0);
  EXPECT_EQ(out.ColumnByName("n").IntAt(0), 2);
  EXPECT_DOUBLE_EQ(out.ColumnByName("a").DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("mn").DoubleAt(1), 5.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("mx").DoubleAt(1), 8.0);
  EXPECT_EQ(out.ColumnByName("d").IntAt(0), 2);
  EXPECT_EQ(out.ColumnByName("d").IntAt(1), 2);  // {"x","y"}
  // Group 2 values {5,5,8}: mean 6, population var 2.
  EXPECT_NEAR(out.ColumnByName("var").DoubleAt(1), 2.0, 1e-9);
}

// Table 2 merge property: consuming k partials must equal consuming the
// whole input at once — for every aggregate and any split.
class MergeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MergeEquivalence, SplitConsumeEqualsWholeConsume) {
  int pieces = GetParam();
  Rng rng(31 + pieces);
  std::vector<int64_t> g;
  std::vector<double> v;
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) {
    g.push_back(rng.UniformInt(0, 7));
    v.push_back(rng.UniformDouble(-5.0, 20.0));
    names.push_back(std::string(1, static_cast<char>('a' + rng.UniformInt(0, 12))));
  }
  DataFrame whole = MakeInput(g, v, names);

  auto whole_state = MakeState({"g"}, AllAggs());
  whole_state.Consume(whole);
  DataFrame expected = whole_state.Finalize(AggScaling{}).frame;

  auto split_state = MakeState({"g"}, AllAggs());
  size_t chunk = (whole.num_rows() + pieces - 1) / pieces;
  for (size_t begin = 0; begin < whole.num_rows(); begin += chunk) {
    split_state.Consume(
        whole.Slice(begin, std::min(begin + chunk, whole.num_rows())));
  }
  DataFrame got = split_state.Finalize(AggScaling{}).frame;

  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff)) << diff;
}

INSTANTIATE_TEST_SUITE_P(Splits, MergeEquivalence,
                         ::testing::Values(2, 3, 7, 50, 200));

TEST(GroupedAggStateTest, MedianIsExactOrderStatistic) {
  auto state = MakeState({"g"}, {MedianOf("v", "med")});
  state.Consume(MakeInput({1, 1, 1, 1, 1}, {9.0, 1.0, 5.0, 3.0, 7.0},
                          {"a", "b", "c", "d", "e"}));
  DataFrame out = state.Finalize(AggScaling{}).frame;
  EXPECT_DOUBLE_EQ(out.ColumnByName("med").DoubleAt(0), 5.0);
  // Even count: lower-median convention.
  auto even = MakeState({"g"}, {MedianOf("v", "med")});
  even.Consume(MakeInput({1, 1, 1, 1}, {4.0, 1.0, 3.0, 2.0},
                         {"a", "b", "c", "d"}));
  EXPECT_DOUBLE_EQ(
      even.Finalize(AggScaling{}).frame.ColumnByName("med").DoubleAt(0),
      2.0);
}

TEST(GbiScalingTest, MedianEstimatorIsIdentity) {
  // §5.3 order statistics: the estimate is the current sample median,
  // regardless of projected growth.
  auto state = MakeState({"g"}, {MedianOf("v", "med")});
  state.Consume(MakeInput({1, 1, 1}, {10.0, 20.0, 30.0}, {"a", "b", "c"}));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.1;
  scaling.w = 1.0;
  EXPECT_DOUBLE_EQ(
      state.Finalize(scaling).frame.ColumnByName("med").DoubleAt(0), 20.0);
}

TEST(GroupedAggStateTest, GlobalAggregateHasOneGroup) {
  auto state = MakeState({}, {Sum("v", "s"), Count("n")});
  state.Consume(MakeInput({1, 2, 3}, {1.0, 2.0, 3.0}, {"a", "b", "c"}));
  DataFrame out = state.Finalize(AggScaling{}).frame;
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 6.0);
}

TEST(GroupedAggStateTest, EmptyStateFinalizesEmpty) {
  auto state = MakeState({"g"}, {Count("n")});
  DataFrame out = state.Finalize(AggScaling{}).frame;
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(GroupedAggStateTest, ResetDropsEverything) {
  auto state = MakeState({"g"}, {Count("n")});
  state.Consume(MakeInput({1, 2}, {1, 2}, {"a", "b"}));
  EXPECT_EQ(state.num_groups(), 2u);
  state.Reset();
  EXPECT_EQ(state.num_groups(), 0u);
  EXPECT_EQ(state.total_rows(), 0u);
  state.Consume(MakeInput({5}, {5}, {"e"}));
  EXPECT_EQ(state.num_groups(), 1u);
  EXPECT_EQ(state.Finalize(AggScaling{}).frame.ColumnByName("g").IntAt(0), 5);
}

TEST(GroupedAggStateTest, NullInputsSkippedPerAggregate) {
  Schema schema({{"g", ValueType::kInt64}, {"v", ValueType::kFloat64}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(1)->AppendDouble(10.0);
  df.mutable_column(1)->AppendNull();
  std::vector<AggSpec> aggs = {Sum("v", "s"), CountCol("v", "nv"),
                               Count("n")};
  GroupedAggState state({"g"}, aggs, schema,
                        AggOutputSchema(schema, {"g"}, aggs));
  state.Consume(df);
  DataFrame out = state.Finalize(AggScaling{}).frame;
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 10.0);
  EXPECT_EQ(out.ColumnByName("nv").IntAt(0), 1);  // non-null only
  EXPECT_EQ(out.ColumnByName("n").IntAt(0), 2);   // count(*) counts rows
}

TEST(GroupedAggStateTest, HashCollisionKeepsDistinctGroupsApart) {
  // A null group key and the int key 0xdeadbeef share the same 64-bit
  // hash (nulls hash as the constant 0xdeadbeef); the key verification in
  // the flat index must still keep them in separate groups.
  const int64_t kColliding = 0xdeadbeef;
  DataFrame df(InputSchema());
  *df.mutable_column(0) =
      Column::FromInts({kColliding, 0, kColliding, 0});
  df.mutable_column(0)->SetNull(1);
  df.mutable_column(0)->SetNull(3);
  *df.mutable_column(1) = Column::FromDoubles({1.0, 10.0, 2.0, 20.0});
  *df.mutable_column(2) = Column::FromStrings({"a", "b", "c", "d"});
  auto state = MakeState({"g"}, {Sum("v", "s"), Count("n")});
  state.Consume(df);
  EXPECT_EQ(state.num_groups(), 2u);
  DataFrame out = state.Finalize(AggScaling{}).frame;
  ASSERT_EQ(out.num_rows(), 2u);
  // First group: the int key; second: the null key (insertion order).
  EXPECT_EQ(out.ColumnByName("g").IntAt(0), kColliding);
  EXPECT_TRUE(out.ColumnByName("g").IsNull(1));
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 3.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(1), 30.0);
}

TEST(GroupedAggStateTest, AllNullKeyRowsGroupTogether) {
  DataFrame df(InputSchema());
  *df.mutable_column(0) = Column::FromInts({0, 0, 0});
  for (size_t r = 0; r < 3; ++r) df.mutable_column(0)->SetNull(r);
  *df.mutable_column(1) = Column::FromDoubles({1.0, 2.0, 3.0});
  *df.mutable_column(2) = Column::FromStrings({"a", "b", "c"});
  auto state = MakeState({"g"}, {Sum("v", "s"), Count("n")});
  state.Consume(df);
  EXPECT_EQ(state.num_groups(), 1u);
  DataFrame out = state.Finalize(AggScaling{}).frame;
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_TRUE(out.ColumnByName("g").IsNull(0));
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 6.0);
  EXPECT_EQ(out.ColumnByName("n").IntAt(0), 3);
}

TEST(GroupedAggStateTest, ManyDistinctGroupsStayExact) {
  // Enough groups to force flat-index rehashes mid-consume; every group
  // must keep exactly its own rows.
  constexpr int64_t kGroups = 10000;
  std::vector<int64_t> g;
  std::vector<double> v;
  std::vector<std::string> names;
  for (int64_t i = 0; i < kGroups; ++i) {
    for (int rep = 0; rep < 2; ++rep) {
      g.push_back(i);
      v.push_back(static_cast<double>(i));
      names.push_back("x");
    }
  }
  auto state = MakeState({"g"}, {Sum("v", "s"), Count("n")});
  state.Consume(MakeInput(g, v, names));
  ASSERT_EQ(state.num_groups(), static_cast<size_t>(kGroups));
  DataFrame out = state.Finalize(AggScaling{}).frame;
  for (int64_t i = 0; i < kGroups; ++i) {
    ASSERT_EQ(out.ColumnByName("g").IntAt(i), i);
    ASSERT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(i), 2.0 * i);
    ASSERT_EQ(out.ColumnByName("n").IntAt(i), 2);
  }
}

// Growth-based scaling (§5.3).
TEST(GbiScalingTest, SumAndCountScaleByGrowth) {
  auto state = MakeState({"g"}, {Sum("v", "s"), Count("n")});
  // 4 rows in one group at t = 0.25 with linear growth.
  state.Consume(MakeInput({1, 1, 1, 1}, {2.0, 2.0, 2.0, 2.0},
                          {"a", "a", "a", "a"}));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.25;
  scaling.w = 1.0;
  DataFrame out = state.Finalize(scaling).frame;
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 32.0);  // 8 / 0.25
  EXPECT_EQ(out.ColumnByName("n").IntAt(0), 16);              // 4 / 0.25
}

TEST(GbiScalingTest, AvgVarMinMaxAreScaleInvariant) {
  auto state = MakeState({"g"}, {Avg("v", "a"), VarOf("v", "var"),
                                 Min("v", "mn"), Max("v", "mx")});
  state.Consume(MakeInput({1, 1, 1}, {1.0, 2.0, 3.0}, {"a", "b", "c"}));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.1;
  scaling.w = 1.0;
  DataFrame out = state.Finalize(scaling).frame;
  EXPECT_DOUBLE_EQ(out.ColumnByName("a").DoubleAt(0), 2.0);   // Eq 5
  EXPECT_NEAR(out.ColumnByName("var").DoubleAt(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.ColumnByName("mn").DoubleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("mx").DoubleAt(0), 3.0);
}

TEST(GbiScalingTest, ZeroGrowthMeansNoScaling) {
  auto state = MakeState({"g"}, {Sum("v", "s")});
  state.Consume(MakeInput({1, 1}, {3.0, 4.0}, {"a", "b"}));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.5;
  scaling.w = 0.0;  // complete groups (e.g. low-cardinality agg input)
  DataFrame out = state.Finalize(scaling).frame;
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 7.0);
}

TEST(GbiScalingTest, DisabledScalingAtFullProgress) {
  auto state = MakeState({"g"}, {Sum("v", "s")});
  state.Consume(MakeInput({1}, {5.0}, {"a"}));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 1.0;  // complete input: estimates must equal exact values
  scaling.w = 1.0;
  DataFrame out = state.Finalize(scaling).frame;
  EXPECT_DOUBLE_EQ(out.ColumnByName("s").DoubleAt(0), 5.0);
}

TEST(GbiScalingTest, CountDistinctUsesMm1) {
  auto state = MakeState({"g"}, {CountDistinct("name", "d")});
  // 10 rows, 5 distinct names, t = 0.5, linear growth -> x̂ = 20.
  state.Consume(MakeInput({1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
                          std::vector<double>(10, 1.0),
                          {"a", "b", "c", "d", "e", "a", "b", "c", "d", "e"}));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.5;
  scaling.w = 1.0;
  int64_t est = state.Finalize(scaling).frame.ColumnByName("d").IntAt(0);
  EXPECT_GE(est, 5);   // at least the observed distinct count
  EXPECT_LE(est, 20);  // at most the projected cardinality
}

// Confidence-interval output (§6).
TEST(AggCiTest, VariancesReportedForScaledAggregates) {
  auto state = MakeState({"g"}, {Sum("v", "s"), Count("n")});
  Rng rng(3);
  std::vector<int64_t> g(50, 1);
  std::vector<double> v;
  std::vector<std::string> names(50, "x");
  for (int i = 0; i < 50; ++i) v.push_back(rng.UniformDouble(0, 10));
  state.Consume(MakeInput(g, v, names));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.25;
  scaling.w = 1.0;
  scaling.var_w = 0.01;
  scaling.with_ci = true;
  AggResult res = state.Finalize(scaling);
  ASSERT_TRUE(res.variances.count("s"));
  ASSERT_TRUE(res.variances.count("n"));
  EXPECT_GT(res.variances["s"][0], 0.0);
  EXPECT_GT(res.variances["n"][0], 0.0);
}

TEST(AggCiTest, ExactFinalizeHasZeroVarianceWithoutInputVariance) {
  auto state = MakeState({"g"}, {Sum("v", "s")});
  state.Consume(MakeInput({1, 1}, {1.0, 2.0}, {"a", "b"}));
  AggScaling scaling;
  scaling.with_ci = true;  // CI on, scaling off (t = 1)
  AggResult res = state.Finalize(scaling);
  EXPECT_DOUBLE_EQ(res.variances["s"][0], 0.0);
}

TEST(AggCiTest, InputVariancesAccumulateIntoSums) {
  auto state = MakeState({"g"}, {Sum("v", "s")});
  DataFrame in = MakeInput({1, 1}, {1.0, 2.0}, {"a", "b"});
  VarianceMap vars{{"v", {0.5, 0.25}}};
  state.Consume(in, &vars);
  AggScaling scaling;
  scaling.with_ci = true;
  AggResult res = state.Finalize(scaling);
  EXPECT_DOUBLE_EQ(res.variances["s"][0], 0.75);  // sum of input variances
}

// --- dictionary-encoded group keys ---

TEST(GroupedAggStateTest, DictStringKeysMatchPlainResults) {
  std::vector<int64_t> g = {1, 1, 2};
  std::vector<double> v = {1.0, 2.0, 4.0};
  std::vector<std::string> names = {"x", "y", "x"};
  auto aggs = std::vector<AggSpec>{Sum("v", "s"), Count("n")};

  auto plain = MakeState({"name"}, aggs);
  plain.Consume(MakeInput(g, v, names));

  auto dict = MakeState({"name"}, aggs);
  DataFrame in = MakeInput(g, v, names);
  *in.mutable_column(2) = in.column(2).EncodeDict();
  dict.Consume(in);

  std::string diff;
  EXPECT_TRUE(dict.Finalize(AggScaling{}).frame.ApproxEquals(
      plain.Finalize(AggScaling{}).frame, 1e-12, &diff))
      << diff;
  // The stored group keys adopted the source dict: no strings copied.
  EXPECT_TRUE(
      dict.Finalize(AggScaling{}).frame.ColumnByName("name").is_dict());
}

TEST(GroupedAggStateTest, DictKeysAcrossCrossDictPartials) {
  // Partials from different sources carry different dicts; groups must
  // still merge by string value.
  auto aggs = std::vector<AggSpec>{Count("n")};
  auto state = MakeState({"name"}, aggs);
  DataFrame p1 = MakeInput({1, 1}, {1.0, 1.0}, {"x", "y"});
  *p1.mutable_column(2) = p1.column(2).EncodeDict();
  DataFrame p2 = MakeInput({1, 1}, {1.0, 1.0}, {"y", "z"});
  *p2.mutable_column(2) = p2.column(2).EncodeDict();
  ASSERT_NE(p1.column(2).dict().get(), p2.column(2).dict().get());
  state.Consume(p1);
  state.Consume(p2);
  EXPECT_EQ(state.num_groups(), 3u);  // x, y, z — "y" merged across dicts
  DataFrame out = state.Finalize(AggScaling{}).frame;
  EXPECT_EQ(out.ColumnByName("n").IntAt(1), 2);  // y counted twice
}

TEST(GroupedAggStateTest, NullDictKeysFormTheirOwnGroup) {
  auto aggs = std::vector<AggSpec>{Count("n")};
  auto state = MakeState({"name"}, aggs);
  DataFrame in = MakeInput({1, 1, 1}, {1.0, 1.0, 1.0}, {"x", "", "x"});
  *in.mutable_column(2) = in.column(2).EncodeDict();
  in.mutable_column(2)->SetNull(1);
  state.Consume(in);
  EXPECT_EQ(state.num_groups(), 2u);
  DataFrame out = state.Finalize(AggScaling{}).frame;
  EXPECT_EQ(out.ColumnByName("n").IntAt(0), 2);  // "x"
  EXPECT_TRUE(out.ColumnByName("name").IsNull(1));
  EXPECT_EQ(out.ColumnByName("n").IntAt(1), 1);  // null group
}

}  // namespace
}  // namespace wake
