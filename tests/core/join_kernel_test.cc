#include "core/join_kernel.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "plan/props.h"

namespace wake {
namespace {

Schema LeftSchema() {
  return Schema({{"lk", ValueType::kInt64}, {"lv", ValueType::kFloat64}});
}
Schema RightSchema() {
  return Schema({{"rk", ValueType::kInt64}, {"rv", ValueType::kString}});
}

DataFrame Left(const std::vector<int64_t>& keys,
               const std::vector<double>& vals) {
  DataFrame df(LeftSchema());
  *df.mutable_column(0) = Column::FromInts(keys);
  *df.mutable_column(1) = Column::FromDoubles(vals);
  return df;
}

DataFrame Right(const std::vector<int64_t>& keys,
                const std::vector<std::string>& vals) {
  DataFrame df(RightSchema());
  *df.mutable_column(0) = Column::FromInts(keys);
  *df.mutable_column(1) = Column::FromStrings(vals);
  return df;
}

TEST(JoinHashTableTest, InnerJoinMatchesAllPairs) {
  JoinHashTable table(RightSchema(), {"rk"});
  table.Insert(Right({1, 2, 2}, {"a", "b", "c"}));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kInner);
  DataFrame out = table.Probe(Left({2, 3, 1}, {20, 30, 10}), {"lk"},
                              JoinType::kInner, out_schema);
  // lk=2 matches rk=2 twice; lk=3 matches nothing; lk=1 once.
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.ColumnByName("lk").IntAt(0), 2);
  EXPECT_EQ(out.ColumnByName("rv").StringAt(2), "a");
}

TEST(JoinHashTableTest, IncrementalInsertEqualsBulkInsert) {
  JoinHashTable bulk(RightSchema(), {"rk"});
  bulk.Insert(Right({1, 2, 3, 4}, {"a", "b", "c", "d"}));
  JoinHashTable incremental(RightSchema(), {"rk"});
  incremental.Insert(Right({1, 2}, {"a", "b"}));
  incremental.Insert(Right({3, 4}, {"c", "d"}));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kInner);
  DataFrame probe = Left({4, 2, 1, 3}, {1, 2, 3, 4});
  std::string diff;
  EXPECT_TRUE(
      incremental.Probe(probe, {"lk"}, JoinType::kInner, out_schema)
          .ApproxEquals(bulk.Probe(probe, {"lk"}, JoinType::kInner,
                                   out_schema),
                        1e-12, &diff))
      << diff;
}

TEST(JoinHashTableTest, LeftJoinNullPads) {
  JoinHashTable table(RightSchema(), {"rk"});
  table.Insert(Right({1}, {"a"}));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kLeft);
  DataFrame out = table.Probe(Left({1, 9}, {10, 90}), {"lk"},
                              JoinType::kLeft, out_schema);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.ColumnByName("rv").StringAt(0), "a");
  EXPECT_TRUE(out.ColumnByName("rv").IsNull(1));
}

TEST(JoinHashTableTest, SemiAntiProduceLeftRowsOnce) {
  JoinHashTable table(RightSchema(), {"rk"});
  table.Insert(Right({1, 1, 1}, {"a", "b", "c"}));  // key 1 three times
  Schema semi_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                        JoinType::kSemi);
  DataFrame semi = table.Probe(Left({1, 2}, {10, 20}), {"lk"},
                               JoinType::kSemi, semi_schema);
  EXPECT_EQ(semi.num_rows(), 1u);  // no duplication despite 3 matches
  DataFrame anti = table.Probe(Left({1, 2}, {10, 20}), {"lk"},
                               JoinType::kAnti, semi_schema);
  EXPECT_EQ(anti.num_rows(), 1u);
  EXPECT_EQ(anti.ColumnByName("lk").IntAt(0), 2);
}

TEST(JoinHashTableTest, CrossJoinBroadcastsSingleRow) {
  JoinHashTable table(RightSchema(), {});
  table.Insert(Right({7}, {"scalar"}));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {},
                                       JoinType::kCross);
  DataFrame out = table.Probe(Left({1, 2, 3}, {1, 2, 3}), {},
                              JoinType::kCross, out_schema);
  ASSERT_EQ(out.num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.ColumnByName("rv").StringAt(i), "scalar");
  }
}

TEST(JoinHashTableTest, CrossJoinEmptyBuildYieldsEmpty) {
  JoinHashTable table(RightSchema(), {});
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {},
                                       JoinType::kCross);
  DataFrame out = table.Probe(Left({1, 2}, {1, 2}), {}, JoinType::kCross,
                              out_schema);
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(JoinHashTableTest, CrossJoinMultiRowBuildThrows) {
  JoinHashTable table(RightSchema(), {});
  table.Insert(Right({1, 2}, {"a", "b"}));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {},
                                       JoinType::kCross);
  EXPECT_THROW(
      table.Probe(Left({1}, {1}), {}, JoinType::kCross, out_schema), Error);
}

TEST(JoinHashTableTest, ResetDropsBuildRows) {
  JoinHashTable table(RightSchema(), {"rk"});
  table.Insert(Right({1}, {"a"}));
  table.Reset();
  EXPECT_EQ(table.num_rows(), 0u);
  table.Insert(Right({2}, {"b"}));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kInner);
  DataFrame out = table.Probe(Left({1, 2}, {1, 2}), {"lk"},
                              JoinType::kInner, out_schema);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.ColumnByName("lk").IntAt(0), 2);  // old build row is gone
}

TEST(JoinHashTableTest, VarianceGatherThroughJoin) {
  JoinHashTable table(RightSchema(), {"rk"});
  VarianceMap right_vars{{"rv", {0.0}}};  // present but exact
  table.Insert(Right({1}, {"a"}), &right_vars);
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kInner);
  VarianceMap left_vars{{"lv", {4.0, 9.0}}};
  VarianceMap out_vars;
  DataFrame out = table.Probe(Left({1, 1}, {10, 20}), {"lk"},
                              JoinType::kInner, out_schema, &left_vars,
                              &out_vars);
  ASSERT_EQ(out.num_rows(), 2u);
  ASSERT_TRUE(out_vars.count("lv"));
  EXPECT_DOUBLE_EQ(out_vars["lv"][0], 4.0);
  EXPECT_DOUBLE_EQ(out_vars["lv"][1], 9.0);
}

TEST(JoinHashTableTest, HashCollisionKeepsDistinctKeysApart) {
  // A null key and the int key 0xdeadbeef produce the same 64-bit hash
  // (nulls hash as the constant 0xdeadbeef), so both build rows share one
  // index chain; key verification on probe must keep them apart.
  const int64_t kColliding = 0xdeadbeef;
  DataFrame right(RightSchema());
  *right.mutable_column(0) = Column::FromInts({kColliding, 0});
  right.mutable_column(0)->SetNull(1);
  *right.mutable_column(1) = Column::FromStrings({"int", "null"});
  JoinHashTable table(RightSchema(), {"rk"});
  table.Insert(right);

  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kInner);
  DataFrame out = table.Probe(Left({kColliding}, {1.0}), {"lk"},
                              JoinType::kInner, out_schema);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.ColumnByName("rv").StringAt(0), "int");

  // The null probe key collides with 0xdeadbeef too and must only match
  // the null build row (null keys compare equal to null keys here).
  DataFrame left(LeftSchema());
  *left.mutable_column(0) = Column::FromInts({0});
  left.mutable_column(0)->SetNull(0);
  *left.mutable_column(1) = Column::FromDoubles({2.0});
  DataFrame null_out =
      table.Probe(left, {"lk"}, JoinType::kInner, out_schema);
  ASSERT_EQ(null_out.num_rows(), 1u);
  EXPECT_EQ(null_out.ColumnByName("rv").StringAt(0), "null");
}

TEST(JoinHashTableTest, ProbeEmptyBuildTable) {
  JoinHashTable table(RightSchema(), {"rk"});
  Schema inner_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                         JoinType::kInner);
  DataFrame inner = table.Probe(Left({1, 2}, {1, 2}), {"lk"},
                                JoinType::kInner, inner_schema);
  EXPECT_EQ(inner.num_rows(), 0u);
  EXPECT_TRUE(inner.schema().SameFields(inner_schema));

  // Left join against an empty build side null-pads every probe row.
  Schema left_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                        JoinType::kLeft);
  DataFrame padded = table.Probe(Left({1, 2}, {1, 2}), {"lk"},
                                 JoinType::kLeft, left_schema);
  ASSERT_EQ(padded.num_rows(), 2u);
  EXPECT_TRUE(padded.ColumnByName("rv").IsNull(0));
  EXPECT_TRUE(padded.ColumnByName("rv").IsNull(1));
}

TEST(JoinHashTableTest, ManyDistinctKeysStayExact) {
  // Thousands of keys force slot collisions and rehashes in the flat
  // index; every probe must still match exactly its own key.
  constexpr int64_t kN = 20000;
  std::vector<int64_t> keys(kN);
  std::vector<std::string> vals(kN);
  for (int64_t i = 0; i < kN; ++i) {
    keys[i] = i * 7;
    vals[i] = std::to_string(i);
  }
  JoinHashTable table(RightSchema(), {"rk"});
  table.Insert(Right(keys, vals));
  Schema out_schema = JoinOutputSchema(LeftSchema(), RightSchema(), {"rk"},
                                       JoinType::kInner);
  // Probe keys: every multiple of 7 hits, everything else misses.
  DataFrame out = table.Probe(Left({0, 7, 3, 7 * (kN - 1), 7 * kN},
                                   {0, 1, 2, 3, 4}),
                              {"lk"}, JoinType::kInner, out_schema);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.ColumnByName("rv").StringAt(0), "0");
  EXPECT_EQ(out.ColumnByName("rv").StringAt(1), "1");
  EXPECT_EQ(out.ColumnByName("rv").StringAt(2), std::to_string(kN - 1));
}

// --- dictionary-encoded string keys ---

Schema StrLeftSchema() {
  return Schema({{"lk", ValueType::kString}, {"lv", ValueType::kFloat64}});
}
Schema StrRightSchema() {
  return Schema({{"rk", ValueType::kString}, {"rv", ValueType::kInt64}});
}

DataFrame StrFrame(const Schema& schema, Column keys,
                   const std::vector<int64_t>& vals) {
  DataFrame df(schema);
  *df.mutable_column(0) = std::move(keys);
  if (schema.field(1).type == ValueType::kFloat64) {
    std::vector<double> d(vals.begin(), vals.end());
    *df.mutable_column(1) = Column::FromDoubles(d);
  } else {
    *df.mutable_column(1) = Column::FromInts(vals);
  }
  return df;
}

TEST(JoinHashTableTest, DictKeysMatchSharedDictProbe) {
  // Build and probe share one dict (same source table) — the code-compare
  // fast path; results must equal the plain-string join.
  Column pool = Column::DictFromStrings({"ant", "bee", "cat", "ant", "bee"});
  JoinHashTable table(StrRightSchema(), {"rk"});
  table.Insert(StrFrame(StrRightSchema(), pool.Slice(0, 3), {10, 20, 30}));
  Schema out_schema = JoinOutputSchema(StrLeftSchema(), StrRightSchema(),
                                       {"rk"}, JoinType::kInner);
  DataFrame out = table.Probe(
      StrFrame(StrLeftSchema(), pool.Slice(3, 5), {1, 2}), {"lk"},
      JoinType::kInner, out_schema);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.ColumnByName("lk").StringAt(0), "ant");
  EXPECT_EQ(out.ColumnByName("rv").IntAt(0), 10);
  EXPECT_EQ(out.ColumnByName("rv").IntAt(1), 20);
  // The gathered key column still shares the probe-side dict.
  ASSERT_TRUE(out.ColumnByName("lk").is_dict());
  EXPECT_EQ(out.ColumnByName("lk").dict().get(), pool.dict().get());
}

TEST(JoinHashTableTest, DictProbeAgainstPlainBuild) {
  // Cross-encoding: identical hashes, byte-compare verification.
  JoinHashTable table(StrRightSchema(), {"rk"});
  table.Insert(StrFrame(StrRightSchema(),
                        Column::FromStrings({"ant", "bee"}), {10, 20}));
  Schema out_schema = JoinOutputSchema(StrLeftSchema(), StrRightSchema(),
                                       {"rk"}, JoinType::kInner);
  DataFrame out = table.Probe(
      StrFrame(StrLeftSchema(),
               Column::DictFromStrings({"bee", "dog", "ant"}), {1, 2, 3}),
      {"lk"}, JoinType::kInner, out_schema);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.ColumnByName("lk").StringAt(0), "bee");
  EXPECT_EQ(out.ColumnByName("lk").StringAt(1), "ant");
}

TEST(JoinHashTableTest, DictKeysCrossDictJoin) {
  // Build and probe from different sources (different dicts): hashes are
  // encoding-independent, KeyEq falls back to byte compares.
  JoinHashTable table(StrRightSchema(), {"rk"});
  table.Insert(StrFrame(StrRightSchema(),
                        Column::DictFromStrings({"ant", "bee"}), {10, 20}));
  Schema out_schema = JoinOutputSchema(StrLeftSchema(), StrRightSchema(),
                                       {"rk"}, JoinType::kInner);
  DataFrame out = table.Probe(
      StrFrame(StrLeftSchema(),
               Column::DictFromStrings({"bee", "ant", "emu"}), {1, 2, 3}),
      {"lk"}, JoinType::kInner, out_schema);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.ColumnByName("rv").IntAt(0), 20);
  EXPECT_EQ(out.ColumnByName("rv").IntAt(1), 10);
}

TEST(JoinHashTableTest, NullStringKeysThroughDictJoin) {
  // Null keys match null keys (KeysEqual semantics) and never match real
  // values, under dict encoding on both sides.
  Column rk = Column::DictFromStrings({"ant", ""});
  rk.SetNull(1);
  JoinHashTable table(StrRightSchema(), {"rk"});
  table.Insert(StrFrame(StrRightSchema(), std::move(rk), {10, 20}));
  Schema out_schema = JoinOutputSchema(StrLeftSchema(), StrRightSchema(),
                                       {"rk"}, JoinType::kInner);
  Column lk = Column::DictFromStrings({"", "ant", ""});
  lk.SetNull(0);
  DataFrame out = table.Probe(
      StrFrame(StrLeftSchema(), std::move(lk), {1, 2, 3}), {"lk"},
      JoinType::kInner, out_schema);
  // Row 0 (null) matches the null build row; row 1 matches "ant"; row 2
  // (empty string, non-null) matches nothing.
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_TRUE(out.ColumnByName("lk").IsNull(0));
  EXPECT_EQ(out.ColumnByName("rv").IntAt(0), 20);
  EXPECT_EQ(out.ColumnByName("lk").StringAt(1), "ant");
  EXPECT_EQ(out.ColumnByName("rv").IntAt(1), 10);
}

TEST(JoinHashTableTest, DictLeftJoinPadsNulls) {
  Column pool = Column::DictFromStrings({"ant", "bee", "emu"});
  JoinHashTable table(StrRightSchema(), {"rk"});
  table.Insert(StrFrame(StrRightSchema(), pool.Slice(0, 1), {10}));
  Schema out_schema = JoinOutputSchema(StrLeftSchema(), StrRightSchema(),
                                       {"rk"}, JoinType::kLeft);
  DataFrame out = table.Probe(
      StrFrame(StrLeftSchema(), pool.Slice(1, 3), {1, 2}), {"lk"},
      JoinType::kLeft, out_schema);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_TRUE(out.ColumnByName("rv").IsNull(0));
  EXPECT_TRUE(out.ColumnByName("rv").IsNull(1));
}

TEST(HashJoinFunctionTest, MultiKeyJoin) {
  Schema ls({{"a", ValueType::kInt64}, {"b", ValueType::kInt64},
             {"v", ValueType::kFloat64}});
  Schema rs({{"x", ValueType::kInt64}, {"y", ValueType::kInt64},
             {"w", ValueType::kFloat64}});
  DataFrame left(ls);
  *left.mutable_column(0) = Column::FromInts({1, 1, 2});
  *left.mutable_column(1) = Column::FromInts({10, 11, 10});
  *left.mutable_column(2) = Column::FromDoubles({1, 2, 3});
  DataFrame right(rs);
  *right.mutable_column(0) = Column::FromInts({1, 2});
  *right.mutable_column(1) = Column::FromInts({10, 10});
  *right.mutable_column(2) = Column::FromDoubles({100, 200});
  Schema out_schema =
      JoinOutputSchema(ls, rs, {"x", "y"}, JoinType::kInner);
  DataFrame out =
      HashJoin(left, right, {"a", "b"}, {"x", "y"}, JoinType::kInner,
               out_schema);
  ASSERT_EQ(out.num_rows(), 2u);  // (1,10) and (2,10)
  EXPECT_DOUBLE_EQ(out.ColumnByName("w").DoubleAt(0), 100.0);
  EXPECT_DOUBLE_EQ(out.ColumnByName("w").DoubleAt(1), 200.0);
}

}  // namespace
}  // namespace wake
