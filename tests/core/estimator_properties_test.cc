// Parameterized property sweeps over the §5 estimators: monotonicity,
// consistency and boundary behaviour across the (t, w) grid.
#include <gtest/gtest.h>

#include <cmath>

#include "core/growth.h"
#include "core/inference.h"

namespace wake {
namespace {

class CardinalityGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CardinalityGrid, EstimateIsConsistentAndMonotone) {
  auto [t, w] = GetParam();
  double x = 100.0;
  double xhat = EstimateCardinality(x, t, w);
  // Never below the observed count; equals x/t^w by Eq 4.
  EXPECT_GE(xhat, x);
  EXPECT_NEAR(xhat, std::max(x, x / std::pow(t, w)), 1e-9);
  // More progress at the same count -> smaller projected final count.
  if (t < 0.9) {
    EXPECT_GE(xhat, EstimateCardinality(x, t + 0.1, w) - 1e-9);
  }
  // Stronger growth -> larger projection (t < 1).
  EXPECT_LE(EstimateCardinality(x, t, w),
            EstimateCardinality(x, t, w + 0.5) + 1e-9);
  // Consistency at completion: estimate collapses to the observation.
  EXPECT_DOUBLE_EQ(EstimateCardinality(x, 1.0, w), x);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CardinalityGrid,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.8),
                       ::testing::Values(0.0, 0.5, 1.0, 2.0)));

TEST(EstimatorPropertyTest, SumEstimatorIsLinear) {
  // f_sum(αy) = α f_sum(y) and additivity in y.
  double x = 40, xhat = 160;
  EXPECT_DOUBLE_EQ(EstimateSum(10.0, x, xhat) + EstimateSum(5.0, x, xhat),
                   EstimateSum(15.0, x, xhat));
  EXPECT_DOUBLE_EQ(EstimateSum(3.0 * 7.0, x, xhat),
                   3.0 * EstimateSum(7.0, x, xhat));
}

TEST(EstimatorPropertyTest, AvgInvarianceUnderScaling) {
  // Eq 5: the ratio of two scaled sums equals the raw ratio.
  double x = 25, xhat = 100;
  double num = EstimateSum(50.0, x, xhat);
  double den = EstimateSum(10.0, x, xhat);
  EXPECT_DOUBLE_EQ(num / den, 5.0);
}

class CountDistinctGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CountDistinctGrid, BoundedAndMonotoneInObservedDistincts) {
  auto [frac_distinct, growth] = GetParam();
  double x = 200.0;
  double xhat = x * growth;
  double y = std::max(1.0, frac_distinct * x);
  double est = EstimateCountDistinct(y, x, xhat);
  EXPECT_GE(est, y - 1e-9);
  EXPECT_LE(est, xhat + 1e-9);
  if (y + 10 <= x) {
    EXPECT_LE(est, EstimateCountDistinct(y + 10, x, xhat) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CountDistinctGrid,
    ::testing::Combine(::testing::Values(0.05, 0.25, 0.6, 0.95),
                       ::testing::Values(1.5, 3.0, 10.0)));

TEST(GrowthModelPropertyTest, FitIsInvariantToObservationScale) {
  // Multiplying every cardinality by a constant shifts the intercept, not
  // the slope.
  GrowthModel a, b;
  for (double t : {0.2, 0.4, 0.6, 0.8}) {
    a.Observe(t, 10.0 * std::pow(t, 0.7));
    b.Observe(t, 1000.0 * std::pow(t, 0.7));
  }
  EXPECT_NEAR(a.w(), b.w(), 1e-9);
  EXPECT_NEAR(a.w(), 0.7, 1e-9);
}

TEST(GrowthModelPropertyTest, MixedRegimesFitBetweenExtremes) {
  // Half the observations grow linearly, half are flat: the fitted power
  // must land strictly between 0 and 1.
  GrowthModel m;
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    m.Observe(t, 50.0 * t);  // linear component
    m.Observe(t, 50.0);      // flat component
  }
  EXPECT_GT(m.w(), 0.1);
  EXPECT_LT(m.w(), 0.9);
}

}  // namespace
}  // namespace wake
