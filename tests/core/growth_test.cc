#include "core/growth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace wake {
namespace {

TEST(GrowthModelTest, DefaultsToLinearBeforeFitting) {
  GrowthModel m;
  EXPECT_FALSE(m.fitted());
  EXPECT_DOUBLE_EQ(m.w(), 1.0);
  m.Observe(0.5, 10.0);
  EXPECT_FALSE(m.fitted());  // one point cannot determine a slope
  EXPECT_DOUBLE_EQ(m.w(), 1.0);
}

// Property sweep: exact monomials x̄ = c·t^w must be recovered exactly.
class MonomialRecovery : public ::testing::TestWithParam<double> {};

TEST_P(MonomialRecovery, RecoversPower) {
  double w = GetParam();
  GrowthModel m;
  for (double t : {0.1, 0.2, 0.35, 0.5, 0.75, 0.9}) {
    m.Observe(t, 40.0 * std::pow(t, w));
  }
  EXPECT_TRUE(m.fitted());
  EXPECT_NEAR(m.w(), w, 1e-9);
  EXPECT_NEAR(m.coefficient(), 40.0, 1e-6);
  EXPECT_NEAR(m.var_w(), 0.0, 1e-9);  // perfect fit -> zero slope variance
}

INSTANTIATE_TEST_SUITE_P(Powers, MonomialRecovery,
                         ::testing::Values(0.0, 0.3, 0.5, 1.0, 1.7, 2.0));

TEST(GrowthModelTest, ClampsToValidRange) {
  GrowthModel m;
  // Steeper than cubic growth: clamp at 3.
  for (double t : {0.1, 0.5, 0.9}) m.Observe(t, std::pow(t, 5.0));
  EXPECT_DOUBLE_EQ(m.w(), 3.0);
  GrowthModel shrink;
  // Shrinking cardinality (negative slope): clamp at 0.
  for (double t : {0.1, 0.5, 0.9}) shrink.Observe(t, 1.0 / t);
  EXPECT_DOUBLE_EQ(shrink.w(), 0.0);
}

TEST(GrowthModelTest, IgnoresInvalidObservations) {
  GrowthModel m;
  m.Observe(0.0, 5.0);    // t == 0
  m.Observe(-0.5, 5.0);   // negative t
  m.Observe(1.5, 5.0);    // t > 1
  m.Observe(0.5, 0.0);    // empty mean
  m.Observe(0.5, -3.0);   // negative mean
  EXPECT_EQ(m.num_observations(), 0u);
}

TEST(GrowthModelTest, DegenerateSameTIsUnfitted) {
  GrowthModel m;
  m.Observe(0.5, 10.0);
  m.Observe(0.5, 12.0);
  EXPECT_FALSE(m.fitted());
  EXPECT_DOUBLE_EQ(m.w(), 1.0);
}

TEST(GrowthModelTest, NoisyFitHasPositiveSlopeVariance) {
  GrowthModel m;
  Rng rng(5);
  for (int i = 1; i <= 20; ++i) {
    double t = i / 20.0;
    double noise = std::exp(0.05 * rng.Normal());
    m.Observe(t, 30.0 * t * noise);
  }
  EXPECT_NEAR(m.w(), 1.0, 0.15);
  EXPECT_GT(m.var_w(), 0.0);
  EXPECT_LT(m.var_w(), 0.1);
}

TEST(GrowthModelTest, VarianceShrinksWithMoreObservations) {
  auto fit = [](int n) {
    GrowthModel m;
    Rng rng(7);
    for (int i = 1; i <= n; ++i) {
      double t = static_cast<double>(i) / n;
      m.Observe(t, 10.0 * t * std::exp(0.1 * rng.Normal()));
    }
    return m.var_w();
  };
  EXPECT_GT(fit(5), fit(50));
}

TEST(GrowthModelTest, ResetClearsState) {
  GrowthModel m;
  for (double t : {0.2, 0.4, 0.8}) m.Observe(t, t * t);
  EXPECT_TRUE(m.fitted());
  m.Reset();
  EXPECT_FALSE(m.fitted());
  EXPECT_EQ(m.num_observations(), 0u);
}

}  // namespace
}  // namespace wake
