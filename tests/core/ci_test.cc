#include "core/ci.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace wake {
namespace {

TEST(ChebyshevKTest, MatchesPaperValueAt95) {
  // §6: k ≈ 4.5 for 95% CI (exactly sqrt(20) ≈ 4.472).
  EXPECT_NEAR(ChebyshevK(0.95), 4.4721, 1e-3);
  EXPECT_NEAR(ChebyshevK(0.99), 10.0, 1e-9);
  EXPECT_NEAR(ChebyshevK(0.75), 2.0, 1e-9);
}

TEST(ChebyshevKTest, RejectsInvalidConfidence) {
  EXPECT_THROW(ChebyshevK(0.0), Error);
  EXPECT_THROW(ChebyshevK(1.0), Error);
  EXPECT_THROW(ChebyshevK(-0.5), Error);
}

TEST(ChebyshevIntervalTest, SymmetricAroundEstimate) {
  ConfidenceInterval ci = ChebyshevInterval(100.0, 4.0, 0.75);
  EXPECT_DOUBLE_EQ(ci.half_width, 4.0);  // k=2, sigma=2
  EXPECT_DOUBLE_EQ(ci.lo, 96.0);
  EXPECT_DOUBLE_EQ(ci.hi, 104.0);
}

TEST(ChebyshevIntervalTest, ZeroVarianceCollapses) {
  ConfidenceInterval ci = ChebyshevInterval(5.0, 0.0, 0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 5.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0);
}

TEST(RelativeCiRangeTest, InsideIntervalBelowOne) {
  // err = 1, half-width = 2·sqrt(1) = 2 -> 0.5.
  EXPECT_DOUBLE_EQ(RelativeCiRange(11.0, 10.0, 1.0, 0.75), 0.5);
  EXPECT_GT(RelativeCiRange(20.0, 10.0, 1.0, 0.75), 1.0);  // not covered
}

TEST(RelativeCiRangeTest, ZeroVarianceEdgeCases) {
  EXPECT_DOUBLE_EQ(RelativeCiRange(10.0, 10.0, 0.0, 0.95), 0.0);
  EXPECT_TRUE(std::isinf(RelativeCiRange(10.0, 11.0, 0.0, 0.95)));
}

TEST(ChebyshevCoverageTest, HoldsEmpiricallyForGaussianNoise) {
  // Chebyshev is distribution-free, so for Gaussian noise coverage at 95%
  // (k≈4.47) should be essentially 100%.
  Rng rng(2024);
  int covered = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    double sigma = 2.0;
    double estimate = 50.0 + sigma * rng.Normal();
    if (RelativeCiRange(estimate, 50.0, sigma * sigma, 0.95) <= 1.0) {
      ++covered;
    }
  }
  EXPECT_GT(covered, kTrials * 0.99);
}

}  // namespace
}  // namespace wake
