// Numerical verification of the variance-propagation equations from §6 and
// Appendix B against the implementations in agg_state.cc / inference.cc.
#include <gtest/gtest.h>

#include <cmath>

#include "core/agg_state.h"
#include "core/inference.h"
#include "plan/props.h"

namespace wake {
namespace {

Schema InputSchema() {
  return Schema({{"g", ValueType::kInt64}, {"v", ValueType::kFloat64}});
}

GroupedAggState MakeState(const std::vector<AggSpec>& aggs) {
  return GroupedAggState({"g"}, aggs, InputSchema(),
                         AggOutputSchema(InputSchema(), {"g"}, aggs));
}

DataFrame OneGroup(const std::vector<double>& values) {
  DataFrame df(InputSchema());
  for (double v : values) {
    df.mutable_column(0)->AppendInt(1);
    df.mutable_column(1)->AppendDouble(v);
  }
  return df;
}

TEST(VarianceEquationsTest, CountVarianceMatchesEq10) {
  // Eq 10: Var(f_count) = (x̂ ln(1/t))² Var(w).
  auto state = MakeState({Count("n")});
  state.Consume(OneGroup(std::vector<double>(40, 1.0)));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.2;
  scaling.w = 1.0;
  scaling.var_w = 0.03;
  scaling.with_ci = true;
  AggResult res = state.Finalize(scaling);
  double xhat = EstimateCardinality(40.0, 0.2, 1.0);  // 200
  double expected = std::pow(xhat * std::log(1.0 / 0.2), 2) * 0.03;
  EXPECT_NEAR(res.variances["n"][0], expected, 1e-9 * expected);
}

TEST(VarianceEquationsTest, SumVarianceMatchesEq13) {
  // Eq 13: Var(f_sum) = [Var(y_t)·x̂² + Var(x̂)·y²] / x², with Var(y_t)
  // from the CLT as x·s² over the observed addends.
  std::vector<double> values = {1.0, 3.0, 5.0, 7.0};
  auto state = MakeState({Sum("v", "s")});
  state.Consume(OneGroup(values));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.5;
  scaling.w = 1.0;
  scaling.var_w = 0.01;
  scaling.with_ci = true;
  AggResult res = state.Finalize(scaling);

  double x = 4.0, t = 0.5, w = 1.0;
  double xhat = EstimateCardinality(x, t, w);  // 8
  double y = 16.0;                              // sum of values
  double mean = y / x;
  double s2 = 0;                                // population variance
  for (double v : values) s2 += (v - mean) * (v - mean);
  s2 /= x;
  double var_y = s2 * x;
  double lg = std::log(1.0 / t);
  double var_xhat = xhat * xhat * lg * lg * 0.01;
  double expected = (var_y * xhat * xhat + var_xhat * y * y) / (x * x);
  EXPECT_NEAR(res.variances["s"][0], expected, 1e-9 * expected);
}

TEST(VarianceEquationsTest, AvgVarianceIsCltOfTheMean) {
  // §6/Eq 14 reduces to the sample-mean variance s²/x for plain averages.
  std::vector<double> values = {2.0, 4.0, 6.0, 8.0, 10.0};
  auto state = MakeState({Avg("v", "a")});
  state.Consume(OneGroup(values));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = 0.25;
  scaling.w = 1.0;
  scaling.with_ci = true;
  AggResult res = state.Finalize(scaling);
  double mean = 6.0, s2 = 0;
  for (double v : values) s2 += (v - mean) * (v - mean);
  s2 /= values.size();
  EXPECT_NEAR(res.variances["a"][0], s2 / values.size(), 1e-12);
}

TEST(VarianceEquationsTest, CountDistinctVarianceUsesImplicitDerivative) {
  // Eq 19 with Var(y)=0: Var(f_cd) = Var(x̂)·(dY/dx̂)², where dY/dx̂ comes
  // from implicit differentiation of the MM1 equation (Eqs 15-18). We
  // verify against a numerical derivative of the estimator.
  double x = 50.0, t = 0.25, w = 1.0, var_w = 0.02;
  auto state = MakeState({CountDistinct("v", "d")});
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(i % 20);  // 20 distinct
  state.Consume(OneGroup(values));
  AggScaling scaling;
  scaling.enabled = true;
  scaling.t = t;
  scaling.w = w;
  scaling.var_w = var_w;
  scaling.with_ci = true;
  AggResult res = state.Finalize(scaling);

  double xhat = EstimateCardinality(x, t, w);
  double lg = std::log(1.0 / t);
  double var_xhat = xhat * xhat * lg * lg * var_w;
  double eps = xhat * 1e-5;
  double d_plus = EstimateCountDistinct(20.0, x, xhat + eps);
  double d_minus = EstimateCountDistinct(20.0, x, xhat - eps);
  double dy_dxhat = (d_plus - d_minus) / (2 * eps);
  double expected = var_xhat * dy_dxhat * dy_dxhat;
  EXPECT_NEAR(res.variances["d"][0], expected, 0.05 * expected);
}

TEST(VarianceEquationsTest, VarianceShrinksAsProgressGrows) {
  // The CI machinery must tighten: same data observed at later progress
  // (smaller extrapolation) yields smaller sum variance.
  auto at_progress = [&](double t) {
    auto state = MakeState({Sum("v", "s")});
    state.Consume(OneGroup({1, 2, 3, 4, 5, 6, 7, 8}));
    AggScaling scaling;
    scaling.enabled = true;
    scaling.t = t;
    scaling.w = 1.0;
    scaling.var_w = 0.01;
    scaling.with_ci = true;
    return state.Finalize(scaling).variances["s"][0];
  };
  EXPECT_GT(at_progress(0.1), at_progress(0.5));
  EXPECT_GT(at_progress(0.5), at_progress(0.9));
}

}  // namespace
}  // namespace wake
