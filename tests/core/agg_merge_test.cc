// GroupedAggState::Merge and hash-sharded consumption: sharded == serial
// for every aggregate kind, including null keys and dict-encoded keys.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/agg_state.h"
#include "plan/props.h"

namespace wake {
namespace {

Schema InputSchema() {
  return Schema({{"g", ValueType::kInt64},
                 {"v", ValueType::kFloat64},
                 {"name", ValueType::kString}});
}

// Random input; every ~17th group key and ~13th value is null.
DataFrame MakeInput(size_t rows, int64_t groups, uint64_t seed,
                    bool with_nulls = false, int64_t name_card = 31) {
  DataFrame df(InputSchema());
  Rng rng(seed);
  Column names = Column::NewDict();
  for (size_t i = 0; i < rows; ++i) {
    df.mutable_column(0)->AppendInt(rng.UniformInt(0, groups - 1));
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(-10.0, 50.0));
    names.AppendString("n" + std::to_string(rng.UniformInt(0, name_card - 1)));
    if (with_nulls && i % 17 == 3) df.mutable_column(0)->SetNull(i);
    if (with_nulls && i % 13 == 5) df.mutable_column(1)->SetNull(i);
  }
  *df.mutable_column(2) = std::move(names);
  return df;
}

std::vector<AggSpec> AllAggs() {
  return {Sum("v", "s"),           Count("n"),
          CountCol("v", "nv"),     Avg("v", "a"),
          Min("v", "mn"),          Max("v", "mx"),
          CountDistinct("name", "d"), VarOf("v", "var"),
          StddevOf("v", "sd"),     MedianOf("v", "med")};
}

std::vector<AggSpec> HotAggs() {
  return {Sum("v", "s"), Count("n"), Avg("v", "a"), VarOf("v", "var"),
          StddevOf("v", "sd")};
}

GroupedAggState MakeState(const std::vector<std::string>& by,
                          const std::vector<AggSpec>& aggs) {
  return GroupedAggState(by, aggs, InputSchema(),
                         AggOutputSchema(InputSchema(), by, aggs));
}

// Merge equivalence up to row order (states consumed independently rank
// their groups independently, so compare sorted by key).
void ExpectSameSorted(const DataFrame& a, const DataFrame& b,
                      const std::string& key) {
  std::string diff;
  EXPECT_TRUE(a.SortBy({{key, false}})
                  .ApproxEquals(b.SortBy({{key, false}}), 1e-9, &diff))
      << diff;
}

TEST(AggMergeTest, MergedPartialsEqualWholeForEveryAggKind) {
  DataFrame whole = MakeInput(600, 9, 17, /*with_nulls=*/true);
  auto serial = MakeState({"g"}, AllAggs());
  serial.Consume(whole);

  auto merged = MakeState({"g"}, AllAggs());
  for (size_t begin = 0; begin < 600; begin += 150) {
    auto part_state = MakeState({"g"}, AllAggs());
    part_state.Consume(whole.Slice(begin, begin + 150));
    merged.Merge(part_state);
  }
  EXPECT_EQ(merged.num_groups(), serial.num_groups());
  EXPECT_EQ(merged.total_rows(), serial.total_rows());
  ExpectSameSorted(merged.Finalize(AggScaling{}).frame,
                   serial.Finalize(AggScaling{}).frame, "g");
}

TEST(AggMergeTest, MergeOnDictKeys) {
  DataFrame whole = MakeInput(400, 50, 23);
  auto serial = MakeState({"name"}, AllAggs());
  serial.Consume(whole);
  auto merged = MakeState({"name"}, AllAggs());
  for (size_t begin = 0; begin < 400; begin += 100) {
    auto part_state = MakeState({"name"}, AllAggs());
    part_state.Consume(whole.Slice(begin, begin + 100));
    merged.Merge(part_state);
  }
  ExpectSameSorted(merged.Finalize(AggScaling{}).frame,
                   serial.Finalize(AggScaling{}).frame, "name");
}

TEST(AggMergeTest, MergeGlobalAggregate) {
  DataFrame whole = MakeInput(300, 5, 29, /*with_nulls=*/true);
  auto serial = MakeState({}, AllAggs());
  serial.Consume(whole);
  auto merged = MakeState({}, AllAggs());
  for (size_t begin = 0; begin < 300; begin += 100) {
    auto part_state = MakeState({}, AllAggs());
    part_state.Consume(whole.Slice(begin, begin + 100));
    merged.Merge(part_state);
  }
  std::string diff;
  EXPECT_TRUE(merged.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 1e-9, &diff))
      << diff;
}

// Sharded consumption must reproduce the serial state exactly: a group's
// rows all reach its shard in arrival order (bit-identical accumulators)
// and Finalize orders groups by first appearance (identical row order).
TEST(AggMergeTest, ShardedConsumeIsBitIdenticalToSerial) {
  constexpr size_t kRows = 8192;
  DataFrame p1 = MakeInput(kRows, 300, 41, /*with_nulls=*/true);
  DataFrame p2 = MakeInput(kRows, 300, 43, /*with_nulls=*/true);
  DataFrame p3 = MakeInput(kRows / 8, 300, 47);  // small post-shard partial

  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(p1);
  serial.Consume(p2);
  serial.Consume(p3);
  ASSERT_FALSE(serial.sharded());

  auto sharded = MakeState({"g"}, HotAggs());
  sharded.EnableSharding(nullptr, /*min_rows=*/1024);
  sharded.Consume(p1);
  EXPECT_TRUE(sharded.sharded());
  sharded.Consume(p2);
  sharded.Consume(p3);

  EXPECT_EQ(sharded.num_groups(), serial.num_groups());
  EXPECT_EQ(sharded.total_rows(), serial.total_rows());
  std::string diff;
  EXPECT_TRUE(sharded.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

TEST(AggMergeTest, ShardedConsumeOnDictKeysMatchesSerial) {
  constexpr size_t kRows = 8192;
  DataFrame p1 = MakeInput(kRows, 300, 51, false, /*name_card=*/400);
  DataFrame p2 = MakeInput(kRows, 300, 53, false, /*name_card=*/400);
  auto serial = MakeState({"name"}, HotAggs());
  serial.Consume(p1);
  serial.Consume(p2);
  auto sharded = MakeState({"name"}, HotAggs());
  sharded.EnableSharding(nullptr, 1024);
  sharded.Consume(p1);
  sharded.Consume(p2);
  ASSERT_TRUE(sharded.sharded());
  std::string diff;
  EXPECT_TRUE(sharded.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

TEST(AggMergeTest, ShardedResultIdenticalAtAnyWorkerCount) {
  constexpr size_t kRows = 16384;
  DataFrame p1 = MakeInput(kRows, 500, 61, /*with_nulls=*/true);
  DataFrame p2 = MakeInput(kRows, 500, 67, /*with_nulls=*/true);

  WorkerPool pool4(4);
  auto run = [&](WorkerPool* pool) {
    auto state = MakeState({"g"}, HotAggs());
    state.EnableSharding(pool, 1024);
    state.Consume(p1);
    state.Consume(p2);
    return state.Finalize(AggScaling{}).frame;
  };
  DataFrame w1 = run(nullptr);
  DataFrame w4 = run(&pool4);
  std::string diff;
  EXPECT_TRUE(w1.ApproxEquals(w4, 0.0, &diff)) << diff;
}

// The shard count adapts to the pool: smallest power of two covering the
// workers, clamped to [kMinShards, kMaxShards] (a small pool no longer
// pays a fixed floor of 8) — and since groups stay whole within a shard
// and output order is global first-appearance rank, every shard count
// produces bit-identical results.
TEST(AggMergeTest, ShardCountAdaptsToPoolAndNeverChangesResults) {
  constexpr size_t kRows = 16384;
  DataFrame p1 = MakeInput(kRows, 500, 71, /*with_nulls=*/true);
  DataFrame p2 = MakeInput(kRows, 500, 73, /*with_nulls=*/true);

  auto run = [&](WorkerPool* pool, size_t expect_shards) {
    auto state = MakeState({"g"}, HotAggs());
    state.EnableSharding(pool, 1024);
    EXPECT_EQ(state.num_shards(), expect_shards);
    state.Consume(p1);
    state.Consume(p2);
    EXPECT_TRUE(state.sharded());
    return state.Finalize(AggScaling{}).frame;
  };

  WorkerPool pool1(1), pool4(4), pool11(11), pool90(90);
  DataFrame base = run(nullptr, 8);          // no pool: the default
  DataFrame w1 = run(&pool1, 2);             // 1 worker -> kMinShards
  DataFrame w4 = run(&pool4, 4);             // 4 workers -> 4 (no 8-floor)
  DataFrame w11 = run(&pool11, 16);          // 11 workers -> 16
  DataFrame w90 = run(&pool90, 64);          // capped at kMaxShards
  std::string diff;
  EXPECT_TRUE(w1.ApproxEquals(base, 0.0, &diff)) << diff;
  EXPECT_TRUE(w4.ApproxEquals(base, 0.0, &diff)) << diff;
  EXPECT_TRUE(w11.ApproxEquals(base, 0.0, &diff)) << diff;
  EXPECT_TRUE(w90.ApproxEquals(base, 0.0, &diff)) << diff;
}

TEST(AggMergeTest, ColdAggregatesNeverShard) {
  auto state = MakeState({"g"}, AllAggs());  // min/max/distinct/median
  state.EnableSharding(nullptr, 64);
  state.Consume(MakeInput(4096, 100, 71));
  EXPECT_FALSE(state.sharded());
}

TEST(AggMergeTest, ResetDropsShardsAndStateStaysUsable) {
  auto state = MakeState({"g"}, HotAggs());
  state.EnableSharding(nullptr, 512);
  state.Consume(MakeInput(2048, 100, 73));
  ASSERT_TRUE(state.sharded());
  state.Reset();
  EXPECT_FALSE(state.sharded());
  EXPECT_EQ(state.num_groups(), 0u);
  DataFrame small = MakeInput(100, 10, 79);
  state.Consume(small);
  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(small);
  std::string diff;
  EXPECT_TRUE(state.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

// The snapshot path is incremental: emitting snapshot N+1 folds only the
// groups that appeared since snapshot N into the cached view, instead of
// re-merging every shard's every group per Finalize. The probe counts
// per-group fold operations — repeated Finalize calls over a stable
// group set must not grow it.
TEST(AggMergeTest, IncrementalSnapshotViewDoesNotRemergePerFinalize) {
  constexpr size_t kRows = 8192;
  DataFrame p1 = MakeInput(kRows, 300, 91);
  DataFrame p2 = MakeInput(kRows, 300, 93);

  auto state = MakeState({"g"}, HotAggs());
  state.EnableSharding(nullptr, 1024);
  state.Consume(p1);
  ASSERT_TRUE(state.sharded());
  DataFrame snap1 = state.Finalize(AggScaling{}).frame;
  size_t ops_after_first = state.snapshot_merge_ops();
  EXPECT_EQ(ops_after_first, state.num_groups());

  // Ten snapshots over an unchanged group set: zero additional folds.
  for (int i = 0; i < 10; ++i) {
    DataFrame again = state.Finalize(AggScaling{}).frame;
    std::string diff;
    EXPECT_TRUE(again.ApproxEquals(snap1, 0.0, &diff)) << diff;
  }
  EXPECT_EQ(state.snapshot_merge_ops(), ops_after_first);

  // New data folds only the newly appeared groups, and the refreshed
  // snapshot still equals a from-scratch serial state over everything.
  state.Consume(p2);
  DataFrame snap2 = state.Finalize(AggScaling{}).frame;
  size_t ops_after_second = state.snapshot_merge_ops();
  EXPECT_EQ(ops_after_second, state.num_groups());
  state.Finalize(AggScaling{});
  EXPECT_EQ(state.snapshot_merge_ops(), ops_after_second);

  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(p1);
  serial.Consume(p2);
  std::string diff;
  EXPECT_TRUE(snap2.ApproxEquals(serial.Finalize(AggScaling{}).frame, 0.0,
                                 &diff))
      << diff;
}

// A Merge into a sharded state can adopt groups ranked below the view's
// frontier (and lower the ranks of groups already in it); the view must
// rebuild, not serve a stale order. One global rank space: the sharded
// state consumes the second half of a stream first (explicit ranks),
// snapshots, then merges a state holding the first half.
TEST(AggMergeTest, SnapshotViewRebuildsAfterOutOfOrderMerge) {
  constexpr size_t kRows = 8192;
  DataFrame whole = MakeInput(kRows, 400, 97);
  DataFrame first = whole.Slice(0, kRows / 2);
  DataFrame second = whole.Slice(kRows / 2, kRows);

  auto sharded = MakeState({"g"}, HotAggs());
  sharded.EnableSharding(nullptr, 1024);
  std::vector<uint64_t> ids(kRows / 2);
  std::iota(ids.begin(), ids.end(), static_cast<uint64_t>(kRows / 2));
  sharded.Consume(second, nullptr, ids.data());
  ASSERT_TRUE(sharded.sharded());
  sharded.Finalize(AggScaling{});  // view now caches second-half order

  auto other = MakeState({"g"}, HotAggs());
  other.Consume(first);  // ranks 0 .. kRows/2-1, below the view frontier
  sharded.Merge(other);

  // Every group's first-appearance rank is now its first occurrence in
  // `whole`, so the rebuilt view must emit the same order (and, within
  // tolerance, the same values — addition order differs) as a serial
  // state over the unsplit stream.
  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(whole);
  std::string diff;
  EXPECT_TRUE(sharded.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 1e-9, &diff))
      << diff;
}

TEST(AggMergeTest, MergeOfShardedStateIntoFreshState) {
  DataFrame p1 = MakeInput(4096, 200, 83);
  auto sharded = MakeState({"g"}, HotAggs());
  sharded.EnableSharding(nullptr, 1024);
  sharded.Consume(p1);
  ASSERT_TRUE(sharded.sharded());

  auto fresh = MakeState({"g"}, HotAggs());
  fresh.Merge(sharded);
  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(p1);
  EXPECT_EQ(fresh.total_rows(), serial.total_rows());
  std::string diff;
  EXPECT_TRUE(fresh.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

}  // namespace
}  // namespace wake
