// GroupedAggState::Merge and hash-sharded consumption: sharded == serial
// for every aggregate kind, including null keys and dict-encoded keys.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/agg_state.h"
#include "plan/props.h"

namespace wake {
namespace {

Schema InputSchema() {
  return Schema({{"g", ValueType::kInt64},
                 {"v", ValueType::kFloat64},
                 {"name", ValueType::kString}});
}

// Random input; every ~17th group key and ~13th value is null.
DataFrame MakeInput(size_t rows, int64_t groups, uint64_t seed,
                    bool with_nulls = false, int64_t name_card = 31) {
  DataFrame df(InputSchema());
  Rng rng(seed);
  Column names = Column::NewDict();
  for (size_t i = 0; i < rows; ++i) {
    df.mutable_column(0)->AppendInt(rng.UniformInt(0, groups - 1));
    df.mutable_column(1)->AppendDouble(rng.UniformDouble(-10.0, 50.0));
    names.AppendString("n" + std::to_string(rng.UniformInt(0, name_card - 1)));
    if (with_nulls && i % 17 == 3) df.mutable_column(0)->SetNull(i);
    if (with_nulls && i % 13 == 5) df.mutable_column(1)->SetNull(i);
  }
  *df.mutable_column(2) = std::move(names);
  return df;
}

std::vector<AggSpec> AllAggs() {
  return {Sum("v", "s"),           Count("n"),
          CountCol("v", "nv"),     Avg("v", "a"),
          Min("v", "mn"),          Max("v", "mx"),
          CountDistinct("name", "d"), VarOf("v", "var"),
          StddevOf("v", "sd"),     MedianOf("v", "med")};
}

std::vector<AggSpec> HotAggs() {
  return {Sum("v", "s"), Count("n"), Avg("v", "a"), VarOf("v", "var"),
          StddevOf("v", "sd")};
}

GroupedAggState MakeState(const std::vector<std::string>& by,
                          const std::vector<AggSpec>& aggs) {
  return GroupedAggState(by, aggs, InputSchema(),
                         AggOutputSchema(InputSchema(), by, aggs));
}

// Merge equivalence up to row order (states consumed independently rank
// their groups independently, so compare sorted by key).
void ExpectSameSorted(const DataFrame& a, const DataFrame& b,
                      const std::string& key) {
  std::string diff;
  EXPECT_TRUE(a.SortBy({{key, false}})
                  .ApproxEquals(b.SortBy({{key, false}}), 1e-9, &diff))
      << diff;
}

TEST(AggMergeTest, MergedPartialsEqualWholeForEveryAggKind) {
  DataFrame whole = MakeInput(600, 9, 17, /*with_nulls=*/true);
  auto serial = MakeState({"g"}, AllAggs());
  serial.Consume(whole);

  auto merged = MakeState({"g"}, AllAggs());
  for (size_t begin = 0; begin < 600; begin += 150) {
    auto part_state = MakeState({"g"}, AllAggs());
    part_state.Consume(whole.Slice(begin, begin + 150));
    merged.Merge(part_state);
  }
  EXPECT_EQ(merged.num_groups(), serial.num_groups());
  EXPECT_EQ(merged.total_rows(), serial.total_rows());
  ExpectSameSorted(merged.Finalize(AggScaling{}).frame,
                   serial.Finalize(AggScaling{}).frame, "g");
}

TEST(AggMergeTest, MergeOnDictKeys) {
  DataFrame whole = MakeInput(400, 50, 23);
  auto serial = MakeState({"name"}, AllAggs());
  serial.Consume(whole);
  auto merged = MakeState({"name"}, AllAggs());
  for (size_t begin = 0; begin < 400; begin += 100) {
    auto part_state = MakeState({"name"}, AllAggs());
    part_state.Consume(whole.Slice(begin, begin + 100));
    merged.Merge(part_state);
  }
  ExpectSameSorted(merged.Finalize(AggScaling{}).frame,
                   serial.Finalize(AggScaling{}).frame, "name");
}

TEST(AggMergeTest, MergeGlobalAggregate) {
  DataFrame whole = MakeInput(300, 5, 29, /*with_nulls=*/true);
  auto serial = MakeState({}, AllAggs());
  serial.Consume(whole);
  auto merged = MakeState({}, AllAggs());
  for (size_t begin = 0; begin < 300; begin += 100) {
    auto part_state = MakeState({}, AllAggs());
    part_state.Consume(whole.Slice(begin, begin + 100));
    merged.Merge(part_state);
  }
  std::string diff;
  EXPECT_TRUE(merged.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 1e-9, &diff))
      << diff;
}

// Sharded consumption must reproduce the serial state exactly: a group's
// rows all reach its shard in arrival order (bit-identical accumulators)
// and Finalize orders groups by first appearance (identical row order).
TEST(AggMergeTest, ShardedConsumeIsBitIdenticalToSerial) {
  constexpr size_t kRows = 8192;
  DataFrame p1 = MakeInput(kRows, 300, 41, /*with_nulls=*/true);
  DataFrame p2 = MakeInput(kRows, 300, 43, /*with_nulls=*/true);
  DataFrame p3 = MakeInput(kRows / 8, 300, 47);  // small post-shard partial

  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(p1);
  serial.Consume(p2);
  serial.Consume(p3);
  ASSERT_FALSE(serial.sharded());

  auto sharded = MakeState({"g"}, HotAggs());
  sharded.EnableSharding(nullptr, /*min_rows=*/1024);
  sharded.Consume(p1);
  EXPECT_TRUE(sharded.sharded());
  sharded.Consume(p2);
  sharded.Consume(p3);

  EXPECT_EQ(sharded.num_groups(), serial.num_groups());
  EXPECT_EQ(sharded.total_rows(), serial.total_rows());
  std::string diff;
  EXPECT_TRUE(sharded.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

TEST(AggMergeTest, ShardedConsumeOnDictKeysMatchesSerial) {
  constexpr size_t kRows = 8192;
  DataFrame p1 = MakeInput(kRows, 300, 51, false, /*name_card=*/400);
  DataFrame p2 = MakeInput(kRows, 300, 53, false, /*name_card=*/400);
  auto serial = MakeState({"name"}, HotAggs());
  serial.Consume(p1);
  serial.Consume(p2);
  auto sharded = MakeState({"name"}, HotAggs());
  sharded.EnableSharding(nullptr, 1024);
  sharded.Consume(p1);
  sharded.Consume(p2);
  ASSERT_TRUE(sharded.sharded());
  std::string diff;
  EXPECT_TRUE(sharded.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

TEST(AggMergeTest, ShardedResultIdenticalAtAnyWorkerCount) {
  constexpr size_t kRows = 16384;
  DataFrame p1 = MakeInput(kRows, 500, 61, /*with_nulls=*/true);
  DataFrame p2 = MakeInput(kRows, 500, 67, /*with_nulls=*/true);

  WorkerPool pool4(4);
  auto run = [&](WorkerPool* pool) {
    auto state = MakeState({"g"}, HotAggs());
    state.EnableSharding(pool, 1024);
    state.Consume(p1);
    state.Consume(p2);
    return state.Finalize(AggScaling{}).frame;
  };
  DataFrame w1 = run(nullptr);
  DataFrame w4 = run(&pool4);
  std::string diff;
  EXPECT_TRUE(w1.ApproxEquals(w4, 0.0, &diff)) << diff;
}

// The shard count adapts to the pool: smallest power of two covering the
// workers, clamped to [kDefaultShards, kMaxShards] — and since groups stay
// whole within a shard and output order is global first-appearance rank,
// every shard count produces bit-identical results.
TEST(AggMergeTest, ShardCountAdaptsToPoolAndNeverChangesResults) {
  constexpr size_t kRows = 16384;
  DataFrame p1 = MakeInput(kRows, 500, 71, /*with_nulls=*/true);
  DataFrame p2 = MakeInput(kRows, 500, 73, /*with_nulls=*/true);

  auto run = [&](WorkerPool* pool, size_t expect_shards) {
    auto state = MakeState({"g"}, HotAggs());
    state.EnableSharding(pool, 1024);
    EXPECT_EQ(state.num_shards(), expect_shards);
    state.Consume(p1);
    state.Consume(p2);
    EXPECT_TRUE(state.sharded());
    return state.Finalize(AggScaling{}).frame;
  };

  // pool->workers() counts the caller, so WorkerPool(n) serves n+1.
  WorkerPool pool4(4), pool11(11), pool90(90);
  DataFrame base = run(nullptr, 8);          // no pool: the default floor
  DataFrame w5 = run(&pool4, 8);             // 5 workers -> floor of 8
  DataFrame w12 = run(&pool11, 16);          // 12 workers -> 16
  DataFrame w91 = run(&pool90, 64);          // capped at kMaxShards
  std::string diff;
  EXPECT_TRUE(w5.ApproxEquals(base, 0.0, &diff)) << diff;
  EXPECT_TRUE(w12.ApproxEquals(base, 0.0, &diff)) << diff;
  EXPECT_TRUE(w91.ApproxEquals(base, 0.0, &diff)) << diff;
}

TEST(AggMergeTest, ColdAggregatesNeverShard) {
  auto state = MakeState({"g"}, AllAggs());  // min/max/distinct/median
  state.EnableSharding(nullptr, 64);
  state.Consume(MakeInput(4096, 100, 71));
  EXPECT_FALSE(state.sharded());
}

TEST(AggMergeTest, ResetDropsShardsAndStateStaysUsable) {
  auto state = MakeState({"g"}, HotAggs());
  state.EnableSharding(nullptr, 512);
  state.Consume(MakeInput(2048, 100, 73));
  ASSERT_TRUE(state.sharded());
  state.Reset();
  EXPECT_FALSE(state.sharded());
  EXPECT_EQ(state.num_groups(), 0u);
  DataFrame small = MakeInput(100, 10, 79);
  state.Consume(small);
  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(small);
  std::string diff;
  EXPECT_TRUE(state.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

TEST(AggMergeTest, MergeOfShardedStateIntoFreshState) {
  DataFrame p1 = MakeInput(4096, 200, 83);
  auto sharded = MakeState({"g"}, HotAggs());
  sharded.EnableSharding(nullptr, 1024);
  sharded.Consume(p1);
  ASSERT_TRUE(sharded.sharded());

  auto fresh = MakeState({"g"}, HotAggs());
  fresh.Merge(sharded);
  auto serial = MakeState({"g"}, HotAggs());
  serial.Consume(p1);
  EXPECT_EQ(fresh.total_rows(), serial.total_rows());
  std::string diff;
  EXPECT_TRUE(fresh.Finalize(AggScaling{}).frame.ApproxEquals(
      serial.Finalize(AggScaling{}).frame, 0.0, &diff))
      << diff;
}

}  // namespace
}  // namespace wake
