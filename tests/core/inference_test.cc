#include "core/inference.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace wake {
namespace {

TEST(CardinalityEstimatorTest, LinearGrowthScalesByInverseT) {
  // Eq 4: x̂ = x / t^w.
  EXPECT_DOUBLE_EQ(EstimateCardinality(25.0, 0.25, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(EstimateCardinality(25.0, 0.5, 1.0), 50.0);
}

TEST(CardinalityEstimatorTest, ZeroGrowthKeepsCurrent) {
  EXPECT_DOUBLE_EQ(EstimateCardinality(7.0, 0.3, 0.0), 7.0);
}

TEST(CardinalityEstimatorTest, SubLinearGrowth) {
  EXPECT_NEAR(EstimateCardinality(10.0, 0.25, 0.5), 20.0, 1e-12);
}

TEST(CardinalityEstimatorTest, CompleteInputNeedsNoScaling) {
  EXPECT_DOUBLE_EQ(EstimateCardinality(42.0, 1.0, 1.0), 42.0);
}

TEST(CardinalityEstimatorTest, NeverShrinksBelowObserved) {
  EXPECT_GE(EstimateCardinality(10.0, 0.9, 3.0), 10.0);
}

TEST(SumEstimatorTest, ScalesBySamplingRatio) {
  EXPECT_DOUBLE_EQ(EstimateSum(100.0, 10.0, 40.0), 400.0);
  EXPECT_DOUBLE_EQ(EstimateSum(100.0, 10.0, 10.0), 100.0);  // no growth
  EXPECT_DOUBLE_EQ(EstimateSum(5.0, 0.0, 10.0), 5.0);       // guard x=0
}

TEST(CountDistinctTest, NoGrowthReturnsObserved) {
  EXPECT_DOUBLE_EQ(EstimateCountDistinct(7.0, 20.0, 20.0), 7.0);
  EXPECT_DOUBLE_EQ(EstimateCountDistinct(7.0, 20.0, 19.0), 7.0);
}

TEST(CountDistinctTest, AllDistinctExtrapolatesToCardinality) {
  // y == x: every observed row was distinct; the MM1 root is Y = x̂.
  double est = EstimateCountDistinct(50.0, 50.0, 500.0);
  EXPECT_NEAR(est, 500.0, 1.0);
}

TEST(CountDistinctTest, EstimateIsBracketedAndMonotone) {
  // More observed distincts at the same cardinality -> larger estimate.
  double lo = EstimateCountDistinct(10.0, 100.0, 1000.0);
  double hi = EstimateCountDistinct(60.0, 100.0, 1000.0);
  EXPECT_GE(lo, 10.0);
  EXPECT_LE(hi, 1000.0);
  EXPECT_LT(lo, hi);
}

TEST(CountDistinctTest, SolvesTheMomentEquation) {
  // The returned Y must satisfy y = Y(1 - h(x̂/Y)) (Eq 6).
  double x = 200.0, xhat = 1000.0, y = 120.0;
  double est = EstimateCountDistinct(y, x, xhat);
  double z = xhat / est;
  double residual = est * (1.0 - std::exp(LogH(z, x, xhat))) - y;
  EXPECT_NEAR(residual, 0.0, 1e-5 * y);
}

// Statistical property: drawing x of x̂ rows uniformly over D distinct
// values and estimating from the observed distinct count should recover D
// within a few percent (the estimator is unbiased under equal frequencies).
class CountDistinctRecovery
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CountDistinctRecovery, RecoversTrueDistinct) {
  auto [distinct, total] = GetParam();
  Rng rng(99);
  constexpr int kTrials = 30;
  double sum_est = 0.0;
  int sample = total / 4;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::unordered_set<int64_t> seen;
    for (int i = 0; i < sample; ++i) {
      seen.insert(rng.UniformInt(1, distinct));
    }
    sum_est += EstimateCountDistinct(static_cast<double>(seen.size()),
                                     sample, total);
  }
  double mean_est = sum_est / kTrials;
  EXPECT_NEAR(mean_est, distinct, 0.12 * distinct)
      << "D=" << distinct << " N=" << total;
}

INSTANTIATE_TEST_SUITE_P(
    Populations, CountDistinctRecovery,
    ::testing::Values(std::make_tuple(50, 2000), std::make_tuple(200, 2000),
                      std::make_tuple(500, 4000),
                      std::make_tuple(1000, 8000)));

TEST(LogHTest, MatchesDirectGammaEvaluation) {
  double x = 10.0, xhat = 40.0, z = 4.0;
  double direct = std::lgamma(xhat - z + 1) + std::lgamma(xhat - x + 1) -
                  std::lgamma(xhat - x - z + 1) - std::lgamma(xhat + 1);
  EXPECT_DOUBLE_EQ(LogH(z, x, xhat), direct);
}

TEST(HPrimeTest, MatchesNumericalDerivative) {
  double x = 50.0, xhat = 400.0, z = 3.0, eps = 1e-5;
  double numeric = (std::exp(LogH(z + eps, x, xhat)) -
                    std::exp(LogH(z - eps, x, xhat))) /
                   (2 * eps);
  EXPECT_NEAR(HPrime(z, x, xhat), numeric, 1e-6);
}

TEST(CountDistinctTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(EstimateCountDistinct(0.0, 10.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(EstimateCountDistinct(3.0, 0.0, 100.0), 3.0);
}

}  // namespace
}  // namespace wake
