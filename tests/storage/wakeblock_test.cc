// wakeblock format tests: exact round trips across every encoding, the
// lazy chunk API, projected block reads, and synopsis-based block
// skipping (with its stats counters and its must-stay-conservative
// refutation rules).
#include "storage/wakeblock.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>

#include "common/error.h"
#include "storage/partitioned_table.h"

namespace wake {
namespace {

class WakeblockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wake_wb_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

// Mixed-type frame exercising every encoding: "run" is constant per
// stretch (RLE), "narrow" spans a tiny range (FOR bit-pack), "f" holds
// raw double bit patterns, "s" is a low-cardinality dict column, and
// every column takes nulls when `with_nulls` is set.
DataFrame MixedFrame(size_t n, bool with_nulls) {
  Schema schema({{"key", ValueType::kInt64},
                 {"run", ValueType::kInt64},
                 {"narrow", ValueType::kInt64},
                 {"f", ValueType::kFloat64},
                 {"s", ValueType::kString}});
  schema.set_primary_key({"key"});
  schema.set_clustering_key({"key"});
  DataFrame df(schema);
  *df.mutable_column(4) = Column::NewDict();
  for (size_t i = 0; i < n; ++i) {
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i / 3));
    df.mutable_column(1)->AppendInt(static_cast<int64_t>(i / 100));
    if (with_nulls && i % 7 == 0) {
      df.mutable_column(2)->AppendNull();
      df.mutable_column(3)->AppendNull();
      df.mutable_column(4)->AppendNull();
    } else {
      df.mutable_column(2)->AppendInt(static_cast<int64_t>(i % 13));
      df.mutable_column(3)->AppendDouble(0.25 * static_cast<double>(i));
      df.mutable_column(4)->AppendString("tag" + std::to_string(i % 5));
    }
  }
  return df;
}

TEST_F(WakeblockTest, RoundTripIsExact) {
  for (bool with_nulls : {false, true}) {
    PartitionedTable t = PartitionedTable::FromDataFrame(
        "rt", MixedFrame(1000, with_nulls), 4);
    wakeblock::WriteOptions opts;
    opts.block_rows = 64;  // many blocks, so every encoding path repeats
    wakeblock::Write(t, dir_.string(), opts);
    PartitionedTable back = wakeblock::Read(dir_.string(), "rt");
    EXPECT_EQ(back.num_partitions(), t.num_partitions());
    std::string diff;
    EXPECT_TRUE(back.Materialize().ApproxEquals(t.Materialize(), 0.0, &diff))
        << "with_nulls=" << with_nulls << ": " << diff;
    EXPECT_EQ(back.schema().primary_key(), t.schema().primary_key());
    EXPECT_EQ(back.schema().clustering_key(), t.schema().clustering_key());
    std::filesystem::remove_all(dir_);
  }
}

TEST_F(WakeblockTest, EmptyTableAndEmptyPartitionsRoundTrip) {
  Schema schema({{"x", ValueType::kInt64}, {"s", ValueType::kString}});
  PartitionedTable t =
      PartitionedTable::FromDataFrame("empty", DataFrame(schema), 3);
  wakeblock::Write(t, dir_.string());
  PartitionedTable back = wakeblock::Read(dir_.string(), "empty");
  EXPECT_EQ(back.total_rows(), 0u);
  EXPECT_EQ(back.schema().num_fields(), 2u);
  auto lazy = wakeblock::BlockTable::Open(dir_.string(), "empty");
  EXPECT_EQ(lazy->total_rows(), 0u);
}

TEST_F(WakeblockTest, ClusteringKeyNeverStraddlesBlocks) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("ck", MixedFrame(500, false), 2);
  wakeblock::WriteOptions opts;
  opts.block_rows = 10;  // not a multiple of the 3-rows-per-key stride
  wakeblock::Write(t, dir_.string(), opts);
  auto bt = wakeblock::BlockTable::Open(dir_.string(), "ck");
  std::set<int64_t> seen;
  for (size_t b = 0; b < bt->num_blocks(); ++b) {
    DataFramePtr block = bt->ReadBlock(b, {"key"});
    const Column& keys = block->column(0);
    std::set<int64_t> here;
    for (size_t r = 0; r < keys.size(); ++r) here.insert(keys.IntAt(r));
    for (int64_t k : here) {
      EXPECT_EQ(seen.count(k), 0u) << "key " << k << " straddles blocks";
      seen.insert(k);
    }
  }
}

// Regression: a width-63 frame-of-reference block at an odd bit offset
// spans 9 bytes per value, which the unpacker once truncated to 64 staged
// bits. Doubles force this: their bit patterns span nearly the full u64
// range, and ~100-row blocks make bit-packing marginally cheaper than raw.
TEST_F(WakeblockTest, WideBitpackRoundTripIsExact) {
  Schema schema({{"f", ValueType::kFloat64}, {"big", ValueType::kInt64}});
  DataFrame df(schema);
  for (size_t i = 0; i < 100; ++i) {
    if (i % 7 == 0) {
      df.mutable_column(0)->AppendNull();
    } else {
      df.mutable_column(0)->AppendDouble(0.25 * static_cast<double>(i));
    }
    df.mutable_column(1)->AppendInt(
        i % 2 == 0 ? static_cast<int64_t>(i)
                   : (int64_t{1} << 62) + static_cast<int64_t>(i));
  }
  wakeblock::Write(PartitionedTable::FromDataFrame("wide", df, 1),
                   dir_.string());
  PartitionedTable back = wakeblock::Read(dir_.string(), "wide");
  std::string diff;
  EXPECT_TRUE(back.Materialize().ApproxEquals(df, 0.0, &diff)) << diff;
}

TEST_F(WakeblockTest, ProjectedReadMatchesFullReadSelect) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("proj", MixedFrame(300, true), 3);
  wakeblock::Write(t, dir_.string());
  for (const auto& cols : std::vector<std::vector<std::string>>{
           {"key"}, {"s"}, {"f", "narrow"}, {"s", "key"}}) {
    PartitionedTable projected = wakeblock::Read(dir_.string(), "proj", cols);
    std::string diff;
    EXPECT_TRUE(projected.Materialize().ApproxEquals(t.Materialize(cols), 0.0,
                                                     &diff))
        << diff;
  }
}

TEST_F(WakeblockTest, LazyChunkApiCoversAllRowsOnce) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("chunk", MixedFrame(400, true), 4);
  wakeblock::WriteOptions opts;
  opts.block_rows = 32;
  wakeblock::Write(t, dir_.string(), opts);
  PartitionedTable lazy =
      PartitionedTable::OpenWakeblock(dir_.string(), "chunk");
  EXPECT_TRUE(lazy.lazy());
  EXPECT_EQ(lazy.total_rows(), t.total_rows());
  EXPECT_EQ(lazy.num_partitions(), t.num_partitions());
  EXPECT_GT(lazy.num_chunks(), lazy.num_partitions());
  DataFrame gathered(lazy.schema());
  size_t rows = 0;
  for (size_t i = 0; i < lazy.num_chunks(); ++i) {
    rows += lazy.chunk_rows(i);
    gathered.Append(*lazy.ReadChunk(i, {}));
  }
  EXPECT_EQ(rows, t.total_rows());
  std::string diff;
  EXPECT_TRUE(gathered.ApproxEquals(t.Materialize(), 0.0, &diff)) << diff;
  // Partition-level APIs are the eager tables' contract.
  EXPECT_THROW(lazy.partition(0), Error);
  EXPECT_THROW(lazy.partitions(), Error);
}

TEST_F(WakeblockTest, EagerChunkApiIsThePartitionList) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("eager", MixedFrame(90, false), 3);
  EXPECT_FALSE(t.lazy());
  EXPECT_EQ(t.num_chunks(), t.num_partitions());
  for (size_t i = 0; i < t.num_chunks(); ++i) {
    EXPECT_EQ(t.chunk_rows(i), t.partition(i)->num_rows());
    // Unprojected chunks are the partition frames themselves (no copy).
    EXPECT_EQ(t.ReadChunk(i, {}).get(), t.partition(i).get());
  }
}

// --- synopsis skipping ----------------------------------------------------

// One block per key-run, so a key range predicate maps to a block range.
std::shared_ptr<const wakeblock::BlockTable> WriteClustered(
    const std::filesystem::path& dir, size_t rows) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("sk", MixedFrame(rows, true), 2);
  wakeblock::WriteOptions opts;
  opts.block_rows = 50;
  wakeblock::Write(t, dir.string(), opts);
  return wakeblock::BlockTable::Open(dir.string(), "sk");
}

// Applies `filter` the way engines do (the residual Filter node).
DataFrame ApplyFilter(const DataFrame& df, const ExprPtr& filter) {
  Column mask = filter->Eval(df);
  std::vector<uint8_t> m(mask.size());
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = (mask.IsValid(i) && mask.ints()[i] != 0) ? 1 : 0;
  }
  return df.FilterBy(m);
}

// Rows of `sk` matching `filter`, computed the slow way.
DataFrame Expected(const std::filesystem::path& dir, const ExprPtr& filter) {
  return ApplyFilter(wakeblock::Read(dir.string(), "sk").Materialize(),
                     filter);
}

TEST_F(WakeblockTest, RangePredicateSkipsBlocksAndLosesNoMatches) {
  auto bt = WriteClustered(dir_, 600);
  struct Case {
    ExprPtr filter;
    bool expect_skips;
  };
  std::vector<Case> cases;
  cases.push_back({Lt(Expr::Col("key"), Expr::Int(20)), true});
  cases.push_back({Ge(Expr::Col("key"), Expr::Int(150)), true});
  cases.push_back({Eq(Expr::Col("key"), Expr::Int(77)), true});
  cases.push_back({Expr::And(Ge(Expr::Col("key"), Expr::Int(30)),
                             Lt(Expr::Col("key"), Expr::Int(50))),
                   true});
  cases.push_back({Eq(Expr::Col("s"), Expr::Str("no such tag")), true});
  // Every row has narrow in [0,12] or null: nothing refutes.
  cases.push_back({Ge(Expr::Col("narrow"), Expr::Int(0)), false});
  for (const auto& c : cases) {
    bt->ResetStats();
    DataFrame gathered(bt->schema());
    for (size_t b = 0; b < bt->num_blocks(); ++b) {
      DataFramePtr block = bt->ReadBlock(b, {}, c.filter);
      if (block != nullptr) gathered.Append(*block);
    }
    wakeblock::ScanStats stats = bt->stats();
    EXPECT_EQ(stats.blocks_read + stats.blocks_skipped, bt->num_blocks());
    if (c.expect_skips) {
      EXPECT_GT(stats.blocks_skipped, 0u) << c.filter->ToString();
    } else {
      EXPECT_EQ(stats.blocks_skipped, 0u) << c.filter->ToString();
    }
    // Surviving blocks must hold every matching row (the residual filter
    // re-applies the predicate; skipping must never lose a match).
    DataFrame got = ApplyFilter(gathered, c.filter);
    DataFrame want = Expected(dir_, c.filter);
    std::string diff;
    EXPECT_TRUE(got.ApproxEquals(want, 0.0, &diff))
        << c.filter->ToString() << ": " << diff;
  }
}

TEST_F(WakeblockTest, NullPredicatesUseNullCountSynopsis) {
  auto bt = WriteClustered(dir_, 200);
  // narrow is null every 7th row; with 50-row blocks every block has both
  // nulls and non-nulls, so neither direction may skip — but both must
  // still return the right rows.
  for (const auto& filter :
       {Expr::IsNull(Expr::Col("narrow")),
        Expr::Not(Expr::IsNull(Expr::Col("narrow")))}) {
    bt->ResetStats();
    DataFrame gathered(bt->schema());
    for (size_t b = 0; b < bt->num_blocks(); ++b) {
      DataFramePtr block = bt->ReadBlock(b, {}, filter);
      if (block != nullptr) gathered.Append(*block);
    }
    EXPECT_EQ(bt->stats().blocks_skipped, 0u);
    DataFrame want = Expected(dir_, filter);
    std::string diff;
    EXPECT_TRUE(
        ApplyFilter(gathered, filter).ApproxEquals(want, 0.0, &diff))
        << diff;
  }
  // An all-null column block, by contrast, refutes any comparison.
  Schema schema({{"x", ValueType::kInt64}});
  DataFrame nulls(schema);
  for (int i = 0; i < 10; ++i) nulls.mutable_column(0)->AppendNull();
  wakeblock::Write(PartitionedTable::FromDataFrame("an", nulls, 1),
                   dir_.string());
  auto an = wakeblock::BlockTable::Open(dir_.string(), "an");
  EXPECT_EQ(an->ReadBlock(0, {}, Ge(Expr::Col("x"), Expr::Int(0))), nullptr);
  EXPECT_NE(an->ReadBlock(0, {}, Expr::IsNull(Expr::Col("x"))), nullptr);
}

TEST_F(WakeblockTest, SkippedRowsCountTowardStats) {
  auto bt = WriteClustered(dir_, 300);
  ExprPtr filter = Lt(Expr::Col("key"), Expr::Int(5));
  for (size_t b = 0; b < bt->num_blocks(); ++b) {
    bt->ReadBlock(b, {}, filter);
  }
  wakeblock::ScanStats stats = bt->stats();
  EXPECT_GT(stats.blocks_skipped, 0u);
  EXPECT_GT(stats.rows_skipped, 0u);
  EXPECT_EQ(stats.rows_read + stats.rows_skipped, bt->total_rows());
}

TEST_F(WakeblockTest, MaterializeWithFilterPrunesButKeepsAllMatches) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("sk", MixedFrame(600, true), 2);
  wakeblock::WriteOptions opts;
  opts.block_rows = 50;
  wakeblock::Write(t, dir_.string(), opts);
  PartitionedTable lazy = PartitionedTable::OpenWakeblock(dir_.string(), "sk");
  ExprPtr filter = Le(Expr::Col("key"), Expr::Int(10));
  DataFrame pruned = lazy.Materialize({"key", "f"}, filter);
  EXPECT_GT(lazy.block_source()->stats().blocks_skipped, 0u);
  EXPECT_LT(pruned.num_rows(), t.total_rows());
  // Every actual match survives pruning.
  DataFrame full = lazy.Materialize({"key", "f"}, nullptr);
  std::string diff;
  EXPECT_TRUE(ApplyFilter(pruned, filter)
                  .ApproxEquals(ApplyFilter(full, filter), 0.0, &diff))
      << diff;
}

TEST_F(WakeblockTest, ListTablesAndOpenCatalog) {
  wakeblock::Write(
      PartitionedTable::FromDataFrame("bbb", MixedFrame(30, false), 1),
      dir_.string());
  wakeblock::Write(
      PartitionedTable::FromDataFrame("aaa", MixedFrame(60, false), 2),
      dir_.string());
  EXPECT_EQ(wakeblock::ListTables(dir_.string()),
            (std::vector<std::string>{"aaa", "bbb"}));
  Catalog catalog = wakeblock::OpenCatalog(dir_.string());
  EXPECT_TRUE(catalog.Has("aaa"));
  EXPECT_TRUE(catalog.Has("bbb"));
  EXPECT_EQ(catalog.Get("aaa").total_rows(), 60u);
  EXPECT_TRUE(catalog.Get("aaa").lazy());
}

TEST_F(WakeblockTest, WritingALazyTableIsRejected) {
  wakeblock::Write(
      PartitionedTable::FromDataFrame("t", MixedFrame(30, false), 1),
      dir_.string());
  PartitionedTable lazy = PartitionedTable::OpenWakeblock(dir_.string(), "t");
  EXPECT_THROW(wakeblock::Write(lazy, dir_.string()), Error);
}

}  // namespace
}  // namespace wake
