#include "tpch/dbgen.h"

#include "common/error.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace wake {
namespace tpch {
namespace {

class DbgenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbgenConfig cfg;
    cfg.scale_factor = 0.01;
    cfg.partitions = 6;
    catalog_ = new Catalog(Generate(cfg));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};
Catalog* DbgenTest::catalog_ = nullptr;

TEST_F(DbgenTest, AllEightTablesExist) {
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog_->Has(name)) << name;
  }
}

TEST_F(DbgenTest, RowCountsMatchScale) {
  EXPECT_EQ(catalog_->Get("region").total_rows(), 5u);
  EXPECT_EQ(catalog_->Get("nation").total_rows(), 25u);
  EXPECT_EQ(catalog_->Get("supplier").total_rows(), 100u);
  EXPECT_EQ(catalog_->Get("customer").total_rows(), 1500u);
  EXPECT_EQ(catalog_->Get("part").total_rows(), 2000u);
  EXPECT_EQ(catalog_->Get("partsupp").total_rows(), 8000u);
  EXPECT_EQ(catalog_->Get("orders").total_rows(), 15000u);
  // lineitem: 1..7 lines per order, so ~4x orders.
  size_t li = catalog_->Get("lineitem").total_rows();
  EXPECT_GT(li, 15000u * 2);
  EXPECT_LT(li, 15000u * 7);
}

TEST_F(DbgenTest, PrimaryKeysAreUniqueAndDense) {
  DataFrame orders = catalog_->Get("orders").Materialize();
  const Column& keys = orders.ColumnByName("o_orderkey");
  std::unordered_set<int64_t> seen;
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(seen.insert(keys.IntAt(i)).second);
  }
  // Dense 1..N (unordered_set iteration order is arbitrary; check bounds).
  EXPECT_EQ(seen.size(), keys.size());
  EXPECT_TRUE(seen.count(1));
  EXPECT_TRUE(seen.count(static_cast<int64_t>(keys.size())));
}

TEST_F(DbgenTest, ForeignKeysResolve) {
  DataFrame li = catalog_->Get("lineitem").Materialize();
  size_t n_orders = catalog_->Get("orders").total_rows();
  size_t n_parts = catalog_->Get("part").total_rows();
  size_t n_supp = catalog_->Get("supplier").total_rows();
  const auto& ok = li.ColumnByName("l_orderkey").ints();
  const auto& pk = li.ColumnByName("l_partkey").ints();
  const auto& sk = li.ColumnByName("l_suppkey").ints();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GE(ok[i], 1);
    ASSERT_LE(ok[i], static_cast<int64_t>(n_orders));
    ASSERT_GE(pk[i], 1);
    ASSERT_LE(pk[i], static_cast<int64_t>(n_parts));
    ASSERT_GE(sk[i], 1);
    ASSERT_LE(sk[i], static_cast<int64_t>(n_supp));
  }
}

TEST_F(DbgenTest, PartsuppMatchesLineitemPairs) {
  // Every (l_partkey, l_suppkey) must exist in partsupp (the spec formula).
  DataFrame ps = catalog_->Get("partsupp").Materialize();
  std::set<std::pair<int64_t, int64_t>> pairs;
  const auto& ppk = ps.ColumnByName("ps_partkey").ints();
  const auto& psk = ps.ColumnByName("ps_suppkey").ints();
  for (size_t i = 0; i < ps.num_rows(); ++i) {
    pairs.insert({ppk[i], psk[i]});
  }
  DataFrame li = catalog_->Get("lineitem").Materialize();
  const auto& lpk = li.ColumnByName("l_partkey").ints();
  const auto& lsk = li.ColumnByName("l_suppkey").ints();
  for (size_t i = 0; i < std::min<size_t>(li.num_rows(), 5000); ++i) {
    ASSERT_TRUE(pairs.count({lpk[i], lsk[i]}))
        << "lineitem references missing partsupp pair";
  }
}

TEST_F(DbgenTest, DateRelationsFollowSpec) {
  DataFrame li = catalog_->Get("lineitem").Materialize();
  const auto& ship = li.ColumnByName("l_shipdate").ints();
  const auto& receipt = li.ColumnByName("l_receiptdate").ints();
  const auto& commit = li.ColumnByName("l_commitdate").ints();
  const Column& status = li.ColumnByName("l_linestatus");
  int64_t current = CurrentDate();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GT(receipt[i], ship[i]);
    ASSERT_LE(receipt[i], ship[i] + 30);
    ASSERT_GT(commit[i], 0);
    ASSERT_EQ(status.StringAt(i), ship[i] <= current ? "F" : "O");
  }
}

TEST_F(DbgenTest, ValueRangesFollowSpec) {
  DataFrame li = catalog_->Get("lineitem").Materialize();
  const auto& qty = li.ColumnByName("l_quantity").doubles();
  const auto& disc = li.ColumnByName("l_discount").doubles();
  const auto& tax = li.ColumnByName("l_tax").doubles();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GE(qty[i], 1.0);
    ASSERT_LE(qty[i], 50.0);
    ASSERT_GE(disc[i], 0.0);
    ASSERT_LE(disc[i], 0.10 + 1e-12);
    ASSERT_GE(tax[i], 0.0);
    ASSERT_LE(tax[i], 0.08 + 1e-12);
  }
}

TEST_F(DbgenTest, OrderStatusConsistentWithLineitems) {
  DataFrame li = catalog_->Get("lineitem").Materialize();
  DataFrame ord = catalog_->Get("orders").Materialize();
  std::vector<int> shipped(ord.num_rows() + 1, 0), lines(ord.num_rows() + 1, 0);
  int64_t current = CurrentDate();
  const auto& ok = li.ColumnByName("l_orderkey").ints();
  const auto& ship = li.ColumnByName("l_shipdate").ints();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ++lines[ok[i]];
    shipped[ok[i]] += ship[i] <= current;
  }
  const auto& keys = ord.ColumnByName("o_orderkey").ints();
  const Column& status = ord.ColumnByName("o_orderstatus");
  for (size_t i = 0; i < ord.num_rows(); ++i) {
    int64_t k = keys[i];
    std::string expected = shipped[k] == lines[k]
                               ? "F"
                               : (shipped[k] == 0 ? "O" : "P");
    ASSERT_EQ(status.StringAt(i), expected);
  }
}

TEST_F(DbgenTest, PhoneCountryCodeEncodesNation) {
  DataFrame cust = catalog_->Get("customer").Materialize();
  const Column& phone = cust.ColumnByName("c_phone");
  const auto& nk = cust.ColumnByName("c_nationkey").ints();
  for (size_t i = 0; i < cust.num_rows(); ++i) {
    int code = std::stoi(phone.StringAt(i).substr(0, 2));
    ASSERT_EQ(code, 10 + nk[i]);
  }
}

TEST_F(DbgenTest, TextPatternsProbedByQueriesExist) {
  DataFrame part = catalog_->Get("part").Materialize();
  const Column& type = part.ColumnByName("p_type");
  const Column& name = part.ColumnByName("p_name");
  int promo = 0, brass = 0, green = 0;
  for (size_t i = 0; i < part.num_rows(); ++i) {
    const std::string& t = type.StringAt(i);
    promo += t.rfind("PROMO", 0) == 0;
    brass += t.size() >= 5 && t.substr(t.size() - 5) == "BRASS";
    green += name.StringAt(i).find("green") != std::string::npos;
  }
  EXPECT_GT(promo, 0);
  EXPECT_GT(brass, 0);
  EXPECT_GT(green, 0);
}

TEST_F(DbgenTest, ClusteringRespectedInPartitions) {
  const PartitionedTable& li = catalog_->Get("lineitem");
  int64_t prev_max = -1;
  for (size_t p = 0; p < li.num_partitions(); ++p) {
    const auto& keys = li.partition(p)->ColumnByName("l_orderkey").ints();
    ASSERT_FALSE(keys.empty());
    EXPECT_GT(keys.front(), prev_max);
    for (size_t i = 1; i < keys.size(); ++i) {
      ASSERT_GE(keys[i], keys[i - 1]) << "not sorted within partition";
    }
    prev_max = keys.back();
  }
}

TEST(DbgenDeterminismTest, SameSeedSameData) {
  DbgenConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.partitions = 2;
  Catalog a = Generate(cfg);
  Catalog b = Generate(cfg);
  std::string diff;
  EXPECT_TRUE(a.Get("lineitem").Materialize().ApproxEquals(
      b.Get("lineitem").Materialize(), 0.0, &diff))
      << diff;
}

TEST(DbgenDeterminismTest, DifferentSeedDifferentData) {
  DbgenConfig a, b;
  a.scale_factor = b.scale_factor = 0.002;
  a.partitions = b.partitions = 2;
  b.seed = a.seed + 1;
  DataFrame da = Generate(a).Get("orders").Materialize();
  DataFrame db = Generate(b).Get("orders").Materialize();
  EXPECT_FALSE(da.ApproxEquals(db));
}

TEST(DbgenScaleTest, RowsAtScaleMatchesGeneration) {
  EXPECT_EQ(RowsAtScale("customer", 0.01), 1500u);
  EXPECT_EQ(RowsAtScale("orders", 0.1), 150000u);
  EXPECT_EQ(RowsAtScale("nation", 5.0), 25u);
  EXPECT_THROW(RowsAtScale("bogus", 1.0), Error);
}

TEST(DbgenProjectionTest, SingleTableGenerationMatchesFullCatalog) {
  DbgenConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.partitions = 4;
  Catalog full = Generate(cfg);
  for (const auto& name : full.TableNames()) {
    DataFrame whole = full.Get(name).Materialize();
    DataFrame single = GenerateTable(cfg, name).Materialize();
    std::string diff;
    EXPECT_TRUE(single.ApproxEquals(whole, 0.0, &diff))
        << name << ": " << diff;
  }
}

TEST(DbgenProjectionTest, ProjectedColumnsAreBitIdenticalToFull) {
  DbgenConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.partitions = 4;
  // Projection must consume the same random draws, so the kept columns
  // match a full generation exactly — including columns generated *after*
  // skipped ones in the row loop.
  struct Case {
    const char* table;
    std::vector<std::string> columns;
  };
  for (const auto& c : std::vector<Case>{
           {"lineitem", {"l_orderkey", "l_extendedprice", "l_shipmode"}},
           {"orders", {"o_orderkey", "o_orderdate", "o_clerk"}},
           {"customer", {"c_custkey", "c_phone", "c_mktsegment"}},
           {"supplier", {"s_suppkey", "s_acctbal"}},
           {"part", {"p_partkey", "p_container", "p_retailprice"}},
           {"partsupp", {"ps_suppkey", "ps_supplycost"}},
           {"nation", {"n_name"}},
           {"region", {"r_name", "r_comment"}}}) {
    DataFrame projected = GenerateTable(cfg, c.table, c.columns).Materialize();
    DataFrame expected =
        GenerateTable(cfg, c.table).Materialize().Select(c.columns);
    std::string diff;
    EXPECT_TRUE(projected.ApproxEquals(expected, 0.0, &diff))
        << c.table << ": " << diff;
    EXPECT_EQ(projected.num_columns(), c.columns.size());
  }
}

}  // namespace
}  // namespace tpch
}  // namespace wake
