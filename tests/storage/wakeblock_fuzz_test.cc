// Malformed-input tests for the wakeblock reader: every corruption —
// truncation, forged lengths and row counts, flipped payload bytes,
// out-of-range dictionary codes — must surface as wake::Error, never as a
// crash, out-of-bounds read, or unbounded allocation (the ASAN CI job
// runs these too).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.h"
#include "storage/partitioned_table.h"
#include "storage/wakeblock.h"

namespace wake {
namespace {

class WakeblockFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wake_wbfuzz_" + std::to_string(::getpid()));
    Schema schema({{"k", ValueType::kInt64},
                   {"f", ValueType::kFloat64},
                   {"s", ValueType::kString}});
    DataFrame df(schema);
    *df.mutable_column(2) = Column::NewDict();
    for (int i = 0; i < 500; ++i) {
      df.mutable_column(0)->AppendInt(i);
      if (i % 9 == 0) {
        df.mutable_column(1)->AppendNull();
      } else {
        df.mutable_column(1)->AppendDouble(i * 0.5);
      }
      df.mutable_column(2)->AppendString("v" + std::to_string(i % 7));
    }
    wakeblock::WriteOptions opts;
    opts.block_rows = 64;
    wakeblock::Write(PartitionedTable::FromDataFrame("t", df, 2),
                     dir_.string(), opts);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& file) const {
    return (dir_ / "t" / file).string();
  }

  static std::string Load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static void Store(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Open + decode everything; corruptions must throw before or during.
  void ExpectRejected() {
    EXPECT_THROW(
        {
          auto bt = wakeblock::BlockTable::Open(dir_.string(), "t");
          for (size_t b = 0; b < bt->num_blocks(); ++b) {
            bt->ReadBlock(b, {});
          }
        },
        Error);
  }

  std::filesystem::path dir_;
};

TEST_F(WakeblockFuzzTest, IntactTableDecodes) {
  auto bt = wakeblock::BlockTable::Open(dir_.string(), "t");
  size_t rows = 0;
  for (size_t b = 0; b < bt->num_blocks(); ++b) {
    rows += bt->ReadBlock(b, {})->num_rows();
  }
  EXPECT_EQ(rows, 500u);
}

TEST_F(WakeblockFuzzTest, TruncatedMetaRejected) {
  std::string meta = Load(Path("table.meta"));
  for (size_t keep : {size_t{0}, size_t{4}, size_t{8}, meta.size() / 2,
                      meta.size() - 1}) {
    Store(Path("table.meta"), meta.substr(0, keep));
    ExpectRejected();
  }
}

TEST_F(WakeblockFuzzTest, MetaMagicAndCrcRejected) {
  std::string meta = Load(Path("table.meta"));
  std::string bad = meta;
  bad[0] ^= 0x5a;  // magic
  Store(Path("table.meta"), bad);
  ExpectRejected();
  bad = meta;
  bad[bad.size() / 2] ^= 0x01;  // payload byte -> CRC mismatch
  Store(Path("table.meta"), bad);
  ExpectRejected();
}

TEST_F(WakeblockFuzzTest, TruncatedColumnFileRejected) {
  std::string col = Load(Path("k.col"));
  for (size_t keep :
       {size_t{0}, size_t{7}, col.size() / 2, col.size() - 1}) {
    Store(Path("k.col"), col.substr(0, keep));
    ExpectRejected();
  }
}

TEST_F(WakeblockFuzzTest, ColumnMagicAndTypeRejected) {
  std::string col = Load(Path("f.col"));
  std::string bad = col;
  bad[0] ^= 0xff;  // magic
  Store(Path("f.col"), bad);
  ExpectRejected();
  bad = col;
  bad[5] ^= 0x03;  // declared type disagrees with the meta schema
  Store(Path("f.col"), bad);
  ExpectRejected();
}

// Flip one byte at every offset of a column file: whatever it hits —
// header, synopsis, validity, payload, CRC — the reader must either
// throw or (for the synopsis bytes, which are advisory) still decode;
// it must never crash or read out of bounds.
TEST_F(WakeblockFuzzTest, SingleByteFlipsNeverCrash) {
  std::string col = Load(Path("s.col"));
  for (size_t off = 0; off < col.size(); ++off) {
    std::string bad = col;
    bad[off] ^= 0xa5;
    Store(Path("s.col"), bad);
    try {
      auto bt = wakeblock::BlockTable::Open(dir_.string(), "t");
      for (size_t b = 0; b < bt->num_blocks(); ++b) {
        bt->ReadBlock(b, {});
      }
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST_F(WakeblockFuzzTest, ForgedRowCountRejected) {
  // Block headers start right after the 8-byte column file header for the
  // first block (no dict page on int columns); rows is the first u32.
  std::string col = Load(Path("k.col"));
  ASSERT_GT(col.size(), 12u);
  for (uint32_t forged : {0u, 1u, 0xFFFFFFFFu, 1u << 23}) {
    std::string bad = col;
    bad[8] = static_cast<char>(forged & 0xff);
    bad[9] = static_cast<char>((forged >> 8) & 0xff);
    bad[10] = static_cast<char>((forged >> 16) & 0xff);
    bad[11] = static_cast<char>((forged >> 24) & 0xff);
    Store(Path("k.col"), bad);
    ExpectRejected();
  }
}

TEST_F(WakeblockFuzzTest, OutOfRangeDictCodeRejected) {
  // Corrupt the first string block's payload bytes while keeping lengths
  // intact, then fix up nothing: the CRC rejects it. To reach the code
  // range check itself, also recompute nothing — both layers throwing is
  // the contract (CRC first, range check if an attacker forges both).
  std::string col = Load(Path("s.col"));
  // Find the dict page length to locate the first block.
  ASSERT_GT(col.size(), 16u);
  auto u32 = [&](size_t at) {
    return static_cast<uint32_t>(static_cast<uint8_t>(col[at])) |
           (static_cast<uint32_t>(static_cast<uint8_t>(col[at + 1])) << 8) |
           (static_cast<uint32_t>(static_cast<uint8_t>(col[at + 2])) << 16) |
           (static_cast<uint32_t>(static_cast<uint8_t>(col[at + 3])) << 24);
  };
  uint32_t page_len = u32(12);  // count u32 at 8, page_len u32 at 12
  size_t block0 = 8 + 12 + page_len;
  ASSERT_LT(block0 + 40, col.size());
  // Flip high bits throughout the payload: codes leave the dict range.
  std::string bad = col;
  for (size_t i = block0 + 40; i < bad.size(); ++i) bad[i] ^= 0x7f;
  Store(Path("s.col"), bad);
  ExpectRejected();
}

TEST_F(WakeblockFuzzTest, MissingColumnFileRejected) {
  std::filesystem::remove(Path("f.col"));
  EXPECT_THROW(wakeblock::BlockTable::Open(dir_.string(), "t"), Error);
}

TEST_F(WakeblockFuzzTest, MissingTableRejected) {
  EXPECT_THROW(wakeblock::BlockTable::Open(dir_.string(), "ghost"), Error);
  EXPECT_THROW(wakeblock::Read(dir_.string(), "ghost"), Error);
}

}  // namespace
}  // namespace wake
