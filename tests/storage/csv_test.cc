#include "storage/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace wake {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("wake_csv_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

DataFrame SampleFrame() {
  Schema schema({{"id", ValueType::kInt64},
                 {"price", ValueType::kFloat64},
                 {"note", ValueType::kString},
                 {"day", ValueType::kDate}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(0)->AppendInt(2);
  df.mutable_column(1)->AppendDouble(3.25);
  df.mutable_column(1)->AppendDouble(-0.5);
  df.mutable_column(2)->AppendString("plain");
  df.mutable_column(2)->AppendString("has, comma and \"quote\"\nnewline");
  df.mutable_column(3)->AppendInt(DateToDays(1995, 6, 17));
  df.mutable_column(3)->AppendInt(DateToDays(1992, 1, 1));
  return df;
}

TEST_F(CsvTest, RoundTripWithQuoting) {
  DataFrame df = SampleFrame();
  WriteCsv(df, path_);
  DataFrame back = ReadCsv(path_);
  std::string diff;
  EXPECT_TRUE(back.ApproxEquals(df, 1e-12, &diff)) << diff;
  EXPECT_EQ(back.column(2).StringAt(1),
            "has, comma and \"quote\"\nnewline");
}

TEST_F(CsvTest, NullsRoundTripAsEmptyFields) {
  Schema schema({{"x", ValueType::kInt64}, {"s", ValueType::kString}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(7);
  df.mutable_column(0)->AppendNull();
  df.mutable_column(1)->AppendString("a");
  df.mutable_column(1)->AppendString("");
  WriteCsv(df, path_);
  DataFrame back = ReadCsv(path_);
  EXPECT_EQ(back.column(0).IntAt(0), 7);
  EXPECT_TRUE(back.column(0).IsNull(1));
  EXPECT_EQ(back.column(1).StringAt(1), "");  // empty string, not null
}

TEST_F(CsvTest, ReadWithProvidedSchemaSkipsHeader) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  {
    std::ofstream out(path_);
    out << "1,x\n2,y\n";
  }
  DataFrame df = ReadCsvWithSchema(path_, schema);
  EXPECT_EQ(df.num_rows(), 2u);
  EXPECT_EQ(df.column(1).StringAt(1), "y");
}

TEST_F(CsvTest, MalformedInputsThrow) {
  {
    std::ofstream out(path_);
    out << "a:i,b:s\n1,x,extra\n";
  }
  EXPECT_THROW(ReadCsv(path_), Error);
  {
    std::ofstream out(path_);
    out << "no_type_header\n";
  }
  EXPECT_THROW(ReadCsv(path_), Error);
  EXPECT_THROW(ReadCsv("/nonexistent/file.csv"), Error);
}

TEST_F(CsvTest, UnterminatedQuoteThrows) {
  {
    std::ofstream out(path_);
    out << "a:s\n\"unterminated\n";
  }
  EXPECT_THROW(ReadCsv(path_), Error);
}

TEST(ParseCsvRecordTest, HandlesQuotingStates) {
  std::string content = "a,\"b,c\",\"d\"\"e\"\nnext";
  size_t offset = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  EXPECT_EQ(fields[0], "next");
  EXPECT_FALSE(ParseCsvRecord(content, &offset, &fields));
}

TEST(ParseCsvRecordTest, CrLfLineEndings) {
  std::string content = "a,b\r\nc,d\r\n";
  size_t offset = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  EXPECT_EQ(fields[1], "b");
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  EXPECT_EQ(fields[0], "c");
}

}  // namespace
}  // namespace wake
