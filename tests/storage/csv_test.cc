#include "storage/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace wake {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("wake_csv_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

DataFrame SampleFrame() {
  Schema schema({{"id", ValueType::kInt64},
                 {"price", ValueType::kFloat64},
                 {"note", ValueType::kString},
                 {"day", ValueType::kDate}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(0)->AppendInt(2);
  df.mutable_column(1)->AppendDouble(3.25);
  df.mutable_column(1)->AppendDouble(-0.5);
  df.mutable_column(2)->AppendString("plain");
  df.mutable_column(2)->AppendString("has, comma and \"quote\"\nnewline");
  df.mutable_column(3)->AppendInt(DateToDays(1995, 6, 17));
  df.mutable_column(3)->AppendInt(DateToDays(1992, 1, 1));
  return df;
}

TEST_F(CsvTest, RoundTripWithQuoting) {
  DataFrame df = SampleFrame();
  WriteCsv(df, path_);
  DataFrame back = ReadCsv(path_);
  std::string diff;
  EXPECT_TRUE(back.ApproxEquals(df, 1e-12, &diff)) << diff;
  EXPECT_EQ(back.column(2).StringAt(1),
            "has, comma and \"quote\"\nnewline");
}

TEST_F(CsvTest, NullsRoundTripAsEmptyFields) {
  Schema schema({{"x", ValueType::kInt64}, {"s", ValueType::kString}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(7);
  df.mutable_column(0)->AppendNull();
  df.mutable_column(1)->AppendString("a");
  df.mutable_column(1)->AppendString("");
  WriteCsv(df, path_);
  DataFrame back = ReadCsv(path_);
  EXPECT_EQ(back.column(0).IntAt(0), 7);
  EXPECT_TRUE(back.column(0).IsNull(1));
  EXPECT_FALSE(back.column(1).IsNull(1));
  EXPECT_EQ(back.column(1).StringAt(1), "");  // empty string, not null
}

TEST_F(CsvTest, NullStringsDistinctFromEmptyStrings) {
  // NULL writes as an empty unquoted field, the empty string as `""`.
  Schema schema({{"s", ValueType::kString}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendString("a");
  df.mutable_column(0)->AppendNull();
  df.mutable_column(0)->AppendString("");
  WriteCsv(df, path_);
  DataFrame back = ReadCsv(path_);
  ASSERT_EQ(back.num_rows(), 3u);
  EXPECT_EQ(back.column(0).StringAt(0), "a");
  EXPECT_TRUE(back.column(0).IsNull(1));
  EXPECT_FALSE(back.column(0).IsNull(2));
  EXPECT_EQ(back.column(0).StringAt(2), "");
}

TEST_F(CsvTest, QuotedEmptyNumericFieldIsNull) {
  // Externally produced CSVs often quote every field; an empty numeric
  // field is NULL regardless of quoting (there is no empty number).
  {
    std::ofstream out(path_);
    out << "a:i,b:f\n\"\",\"\"\n1,2.5\n";
  }
  DataFrame df = ReadCsv(path_);
  ASSERT_EQ(df.num_rows(), 2u);
  EXPECT_TRUE(df.column(0).IsNull(0));
  EXPECT_TRUE(df.column(1).IsNull(0));
  EXPECT_EQ(df.column(0).IntAt(1), 1);
}

TEST_F(CsvTest, StringColumnsReadBackDictEncoded) {
  {
    std::ofstream out(path_);
    out << "k:s,v:i\nant,1\nbee,2\nant,3\n,4\n";
  }
  DataFrame df = ReadCsv(path_);
  const Column& k = df.column(0);
  ASSERT_TRUE(k.is_dict());
  EXPECT_EQ(k.dict()->size(), 2u);  // "ant", "bee" — null not interned
  EXPECT_EQ(k.codes()[0], k.codes()[2]);
  EXPECT_EQ(k.StringAt(1), "bee");
  EXPECT_TRUE(k.IsNull(3));  // unquoted empty string field is NULL
}

TEST_F(CsvTest, ReadWithProvidedSchemaSkipsHeader) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  {
    std::ofstream out(path_);
    out << "1,x\n2,y\n";
  }
  DataFrame df = ReadCsvWithSchema(path_, schema);
  EXPECT_EQ(df.num_rows(), 2u);
  EXPECT_EQ(df.column(1).StringAt(1), "y");
}

TEST_F(CsvTest, MalformedInputsThrow) {
  {
    std::ofstream out(path_);
    out << "a:i,b:s\n1,x,extra\n";
  }
  EXPECT_THROW(ReadCsv(path_), Error);
  {
    std::ofstream out(path_);
    out << "no_type_header\n";
  }
  EXPECT_THROW(ReadCsv(path_), Error);
  EXPECT_THROW(ReadCsv("/nonexistent/file.csv"), Error);
}

TEST_F(CsvTest, UnterminatedQuoteThrows) {
  {
    std::ofstream out(path_);
    out << "a:s\n\"unterminated\n";
  }
  EXPECT_THROW(ReadCsv(path_), Error);
}

TEST(ParseCsvRecordTest, HandlesQuotingStates) {
  std::string content = "a,\"b,c\",\"d\"\"e\"\nnext";
  size_t offset = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  EXPECT_EQ(fields[0], "next");
  EXPECT_FALSE(ParseCsvRecord(content, &offset, &fields));
}

TEST(ParseCsvRecordTest, CrLfLineEndings) {
  std::string content = "a,b\r\nc,d\r\n";
  size_t offset = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  EXPECT_EQ(fields[1], "b");
  ASSERT_TRUE(ParseCsvRecord(content, &offset, &fields));
  EXPECT_EQ(fields[0], "c");
}

TEST_F(CsvTest, ProjectedReadMatchesFullReadSelect) {
  DataFrame df = SampleFrame();
  WriteCsv(df, path_);
  DataFrame full = ReadCsv(path_);
  DataFrame projected = ReadCsv(path_, {"note", "id"});
  EXPECT_EQ(projected.num_columns(), 2u);
  EXPECT_EQ(projected.schema().field(0).name, "note");
  std::string diff;
  EXPECT_TRUE(projected.ApproxEquals(full.Select({"note", "id"}), 1e-9,
                                     &diff))
      << diff;
  // Projected string columns still come back dict-encoded.
  EXPECT_TRUE(projected.column(0).is_dict());
  EXPECT_THROW(ReadCsv(path_, {"nope"}), Error);
}

}  // namespace
}  // namespace wake
