#include "storage/partitioned_table.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"

namespace wake {
namespace {

DataFrame ClusteredFrame(size_t n) {
  Schema schema({{"key", ValueType::kInt64}, {"val", ValueType::kFloat64}});
  schema.set_primary_key({"key"});
  schema.set_clustering_key({"key"});
  DataFrame df(schema);
  for (size_t i = 0; i < n; ++i) {
    // Three rows per key so keys can straddle naive chunk boundaries.
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i / 3));
    df.mutable_column(1)->AppendDouble(static_cast<double>(i));
  }
  return df;
}

TEST(PartitionedTableTest, SplitsIntoRequestedPartitions) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("t", ClusteredFrame(100), 5);
  EXPECT_GE(t.num_partitions(), 4u);
  EXPECT_EQ(t.total_rows(), 100u);
  size_t sum = 0;
  for (size_t i = 0; i < t.num_partitions(); ++i) {
    sum += t.partition(i)->num_rows();
  }
  EXPECT_EQ(sum, 100u);
}

TEST(PartitionedTableTest, ClusteringKeyNeverStraddlesPartitions) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("t", ClusteredFrame(99), 7);
  std::set<int64_t> seen;
  for (size_t p = 0; p < t.num_partitions(); ++p) {
    const Column& keys = t.partition(p)->column(0);
    std::set<int64_t> here;
    for (size_t r = 0; r < keys.size(); ++r) here.insert(keys.IntAt(r));
    for (int64_t k : here) {
      EXPECT_EQ(seen.count(k), 0u)
          << "key " << k << " appears in two partitions";
      seen.insert(k);
    }
  }
}

TEST(PartitionedTableTest, MaterializeRoundTrips) {
  DataFrame df = ClusteredFrame(50);
  PartitionedTable t = PartitionedTable::FromDataFrame("t", df, 4);
  std::string diff;
  EXPECT_TRUE(t.Materialize().ApproxEquals(df, 1e-12, &diff)) << diff;
}

TEST(PartitionedTableTest, RepartitionPreservesContent) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("t", ClusteredFrame(60), 3);
  PartitionedTable r = t.Repartition(6);
  EXPECT_TRUE(r.Materialize().ApproxEquals(t.Materialize()));
  EXPECT_GT(r.num_partitions(), t.num_partitions());
}

TEST(PartitionedTableTest, ShufflePreservesRowsChangesOrder) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("t", ClusteredFrame(90), 9);
  PartitionedTable s = t.ShufflePartitions(1234);
  EXPECT_EQ(s.num_partitions(), t.num_partitions());
  EXPECT_EQ(s.total_rows(), t.total_rows());
  // Same multiset of rows once sorted back.
  DataFrame a = t.Materialize().SortBy({{"val", false}});
  DataFrame b = s.Materialize().SortBy({{"val", false}});
  EXPECT_TRUE(a.ApproxEquals(b));
}

TEST(PartitionedTableTest, EmptyFrameYieldsSinglePartition) {
  Schema schema({{"x", ValueType::kInt64}});
  PartitionedTable t =
      PartitionedTable::FromDataFrame("e", DataFrame(schema), 4);
  EXPECT_EQ(t.num_partitions(), 1u);
  EXPECT_EQ(t.total_rows(), 0u);
}

TEST(PartitionedTableTest, MetadataMatchesPartitions) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("t", ClusteredFrame(40), 4);
  TableMetadata meta = t.metadata();
  EXPECT_EQ(meta.name, "t");
  EXPECT_EQ(meta.total_rows, 40u);
  EXPECT_EQ(meta.partition_rows.size(), t.num_partitions());
}

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wake_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

DataFrame MixedFrame() {
  Schema schema({{"k", ValueType::kInt64},
                 {"f", ValueType::kFloat64},
                 {"s", ValueType::kString},
                 {"d", ValueType::kDate}});
  schema.set_primary_key({"k"});
  schema.set_clustering_key({"k"});
  DataFrame df(schema);
  for (int i = 0; i < 25; ++i) {
    df.mutable_column(0)->AppendInt(i);
    df.mutable_column(1)->AppendDouble(i * 1.25);
    df.mutable_column(2)->AppendString("row " + std::to_string(i));
    df.mutable_column(3)->AppendInt(DateToDays(1995, 1, 1) + i);
  }
  return df;
}

TEST_F(SerializationTest, TblRoundTrip) {
  PartitionedTable t = PartitionedTable::FromDataFrame("tbl", MixedFrame(), 3);
  t.WriteTblDir(dir_.string());
  PartitionedTable back = PartitionedTable::ReadTblDir(dir_.string(), "tbl");
  EXPECT_EQ(back.num_partitions(), t.num_partitions());
  std::string diff;
  EXPECT_TRUE(back.Materialize().ApproxEquals(t.Materialize(), 1e-6, &diff))
      << diff;
  EXPECT_EQ(back.schema().primary_key(), t.schema().primary_key());
  EXPECT_EQ(back.schema().clustering_key(), t.schema().clustering_key());
}

TEST_F(SerializationTest, WpartRoundTripIsExact) {
  PartitionedTable t = PartitionedTable::FromDataFrame("wp", MixedFrame(), 4);
  t.WriteWpartDir(dir_.string());
  PartitionedTable back =
      PartitionedTable::ReadWpartDir(dir_.string(), "wp");
  std::string diff;
  EXPECT_TRUE(back.Materialize().ApproxEquals(t.Materialize(), 0.0, &diff))
      << diff;
}

TEST_F(SerializationTest, WpartPreservesNulls) {
  Schema schema({{"x", ValueType::kInt64}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(0)->AppendNull();
  df.mutable_column(0)->AppendInt(3);
  PartitionedTable t = PartitionedTable::FromDataFrame("n", df, 1);
  t.WriteWpartDir(dir_.string());
  PartitionedTable back = PartitionedTable::ReadWpartDir(dir_.string(), "n");
  const Column& col = back.partition(0)->column(0);
  EXPECT_TRUE(col.IsValid(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), 3);
}

TEST_F(SerializationTest, MissingFileThrows) {
  EXPECT_THROW(PartitionedTable::ReadWpartDir(dir_.string(), "ghost"),
               Error);
}

// --- projected reads (scan column pruning reaches the storage layer) -----

TEST(SelectColumnsTest, NarrowsPartitionsAndKeyMetadata) {
  PartitionedTable t =
      PartitionedTable::FromDataFrame("m", MixedFrame(), 3);
  PartitionedTable narrow = t.SelectColumns({"k", "s"});
  EXPECT_EQ(narrow.num_partitions(), t.num_partitions());
  EXPECT_EQ(narrow.total_rows(), t.total_rows());
  EXPECT_EQ(narrow.schema().num_fields(), 2u);
  EXPECT_EQ(narrow.schema().primary_key(), t.schema().primary_key());
  std::string diff;
  EXPECT_TRUE(narrow.Materialize().ApproxEquals(
      t.Materialize({"k", "s"}), 0.0, &diff))
      << diff;
  // Dropping a key column drops the (now meaningless partial) key.
  EXPECT_TRUE(t.SelectColumns({"f", "s"}).schema().primary_key().empty());
  // Unknown and duplicated selections are rejected (the projected
  // readers map file fields to output slots by name).
  EXPECT_THROW(t.SelectColumns({"nope"}), Error);
  EXPECT_THROW(t.SelectColumns({"k", "k"}), Error);
}

TEST_F(SerializationTest, TblProjectedReadMatchesFullReadSelect) {
  PartitionedTable t = PartitionedTable::FromDataFrame("tbl", MixedFrame(), 3);
  t.WriteTblDir(dir_.string());
  PartitionedTable full = PartitionedTable::ReadTblDir(dir_.string(), "tbl");
  PartitionedTable projected =
      PartitionedTable::ReadTblDir(dir_.string(), "tbl", {"f", "d"});
  EXPECT_EQ(projected.schema().num_fields(), 2u);
  EXPECT_EQ(projected.schema().field(0).name, "f");
  std::string diff;
  EXPECT_TRUE(projected.Materialize().ApproxEquals(
      full.Materialize({"f", "d"}), 1e-6, &diff))
      << diff;
}

TEST_F(SerializationTest, WpartProjectedReadSkipsColumnsExactly) {
  PartitionedTable t = PartitionedTable::FromDataFrame("wp", MixedFrame(), 4);
  t.WriteWpartDir(dir_.string());
  // Project past a string column and past fixed-width columns, in both
  // orders, to exercise the seek/skip paths.
  for (const auto& cols : std::vector<std::vector<std::string>>{
           {"k"}, {"s"}, {"d", "k"}, {"s", "f"}}) {
    PartitionedTable projected =
        PartitionedTable::ReadWpartDir(dir_.string(), "wp", cols);
    std::string diff;
    EXPECT_TRUE(projected.Materialize().ApproxEquals(
        t.Materialize(cols), 0.0, &diff))
        << diff;
  }
}

TEST_F(SerializationTest, WpartProjectedReadPreservesNulls) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(0)->AppendNull();
  *df.mutable_column(1) = Column::NewDict();
  df.mutable_column(1)->AppendString("x");
  df.mutable_column(1)->AppendNull();
  PartitionedTable t = PartitionedTable::FromDataFrame("pn", df, 1);
  t.WriteWpartDir(dir_.string());
  // Skipping a nulled column must seek past its validity mask too.
  PartitionedTable just_b =
      PartitionedTable::ReadWpartDir(dir_.string(), "pn", {"b"});
  const Column& b = just_b.partition(0)->column(0);
  EXPECT_EQ(b.StringAt(0), "x");
  EXPECT_TRUE(b.IsNull(1));
}

TEST(CatalogTest, AddGetHas) {
  Catalog cat;
  EXPECT_FALSE(cat.Has("t"));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("t", ClusteredFrame(10), 2)));
  EXPECT_TRUE(cat.Has("t"));
  EXPECT_EQ(cat.Get("t").total_rows(), 10u);
  EXPECT_THROW(cat.Get("missing"), Error);
  EXPECT_EQ(cat.TableNames(), std::vector<std::string>{"t"});
}

}  // namespace
}  // namespace wake
