// End-to-end equivalence: every TPC-H query must produce byte-identical
// results whether the catalog is served from text .tbl partitions or from
// packed wakeblock files, on every engine and worker count. This is the
// storage engine's correctness gate: the binary format, projection
// pushdown, and block skipping must be invisible to query results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "baseline/exact_engine.h"
#include "baseline/progressive_ola.h"
#include "core/engine.h"
#include "plan/optimizer.h"
#include "storage/partitioned_table.h"
#include "storage/wakeblock.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace wake {
namespace {

struct Catalogs {
  Catalog tbl;  // text partitions read back from a WriteTblDir layout
  Catalog wb;   // lazy wakeblock-backed tables
};

// Generated, packed, and reopened once per binary: the suite runs 22
// queries x several engine configurations against the same two catalogs.
const Catalogs& Shared() {
  static const Catalogs* fixture = [] {
    tpch::DbgenConfig cfg;
    cfg.scale_factor = 0.01;
    cfg.partitions = 4;
    Catalog gen = tpch::Generate(cfg);

    auto dir = std::filesystem::temp_directory_path() /
               ("wake_wbtpch_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir / "tbl");
    for (const std::string& name : gen.TableNames()) {
      gen.Get(name).WriteTblDir((dir / "tbl").string());
    }
    auto* out = new Catalogs;
    out->tbl = OpenTblCatalog((dir / "tbl").string());
    // Pack from the parsed text catalog (the wake_pack --in pipeline):
    // byte-identical results require byte-identical source values, and the
    // text round-trip is allowed to perturb low double bits vs dbgen's
    // in-memory output.
    wakeblock::WriteOptions opts;
    opts.block_rows = 1024;  // several blocks per partition, so skipping
                             // and projection both exercise real extents
    for (const std::string& name : out->tbl.TableNames()) {
      wakeblock::Write(out->tbl.Get(name), (dir / "wb").string(), opts);
    }
    out->wb = wakeblock::OpenCatalog((dir / "wb").string());
    return out;
  }();
  return *fixture;
}

class WakeblockTpch : public ::testing::TestWithParam<int> {};

TEST_P(WakeblockTpch, ExactEngineMatchesTblExactly) {
  const Catalogs& cat = Shared();
  Plan plan = tpch::Query(GetParam());
  DataFrame expected = ExactEngine(&cat.tbl).Execute(plan.node());
  std::string diff;
  EXPECT_TRUE(ExactEngine(&cat.wb).Execute(plan.node()).ApproxEquals(
      expected, 0.0, &diff))
      << diff;
}

TEST_P(WakeblockTpch, WakeEngineMatchesTblExactlyAtOneAndFourWorkers) {
  const Catalogs& cat = Shared();
  Plan plan = tpch::Query(GetParam());
  for (size_t workers : {size_t{1}, size_t{4}}) {
    WakeOptions options;
    options.workers = workers;
    WakeEngine tbl_engine(&cat.tbl, options);
    WakeEngine wb_engine(&cat.wb, options);
    std::string diff;
    EXPECT_TRUE(wb_engine.ExecuteFinal(plan.node())
                    .ApproxEquals(tbl_engine.ExecuteFinal(plan.node()), 0.0,
                                  &diff))
        << "workers=" << workers << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, WakeblockTpch, ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// ProgressiveOla only serves single-table pipelines (Q1, Q6); its chunk
// loop is the third consumer of the lazy block-sourced chunk API.
TEST(WakeblockTpchExtra, ProgressiveOlaMatchesTblExactly) {
  const Catalogs& cat = Shared();
  for (int q : {1, 6}) {
    Plan plan = tpch::Query(q);
    DataFrame tbl_final, wb_final;
    ProgressiveOla(&cat.tbl).Execute(plan.node(), [&](const OlaState& s) {
      if (s.is_final) tbl_final = *s.frame;
    });
    ProgressiveOla(&cat.wb).Execute(plan.node(), [&](const OlaState& s) {
      if (s.is_final) wb_final = *s.frame;
    });
    std::string diff;
    EXPECT_TRUE(wb_final.ApproxEquals(tbl_final, 0.0, &diff))
        << "Q" << q << ": " << diff;
  }
}

// A clustered-key range predicate must actually skip blocks on the lazy
// catalog (the scan-filter pushdown reaches the synopses through the
// whole engine stack), while losing no matching rows.
TEST(WakeblockTpchExtra, ClusteredPredicateSkipsBlocksThroughTheEngine) {
  const Catalogs& cat = Shared();
  ExprPtr pred = Lt(Expr::Col("l_orderkey"), Expr::Int(64));
  // Optimize() copies the filter into the scan's advisory scan_filter
  // (push-scan-filters pass); the engines only consult what's on the node.
  Plan plan = Optimize(Plan::Scan("lineitem", {"l_orderkey", "l_quantity"})
                           .Filter(pred)
                           .Aggregate({}, {Count("n"), Sum("l_quantity", "qty")}),
                       cat.wb);

  DataFrame expected = ExactEngine(&cat.tbl).Execute(plan.node());
  const auto& source = cat.wb.Get("lineitem").block_source();
  wakeblock::ScanStats before = source->stats();
  DataFrame got = ExactEngine(&cat.wb).Execute(plan.node());
  wakeblock::ScanStats after = source->stats();

  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 0.0, &diff)) << diff;
  EXPECT_GT(after.blocks_skipped, before.blocks_skipped)
      << "no blocks were skipped for a clustered range predicate";
  EXPECT_GT(after.rows_skipped, before.rows_skipped);

  WakeEngine engine(&cat.wb);
  before = source->stats();
  DataFrame wake_got = engine.ExecuteFinal(plan.node());
  after = source->stats();
  EXPECT_TRUE(wake_got.ApproxEquals(expected, 0.0, &diff)) << diff;
  EXPECT_GT(after.blocks_skipped, before.blocks_skipped)
      << "the streaming engine read every block despite the pushed filter";
}

}  // namespace
}  // namespace wake
