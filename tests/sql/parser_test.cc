#include "sql/parser.h"

#include <gtest/gtest.h>

#include "baseline/exact_engine.h"
#include "common/error.h"
#include "core/engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace sql {
namespace {

DataFrame RunExact(const std::string& query) {
  ExactEngine engine(&testing::SharedTpch());
  return engine.Execute(Parse(query).node());
}

TEST(SqlParserTest, SelectStarScan) {
  DataFrame out = RunExact("SELECT * FROM nation");
  EXPECT_EQ(out.num_rows(), 25u);
  EXPECT_TRUE(out.schema().HasField("n_name"));
}

TEST(SqlParserTest, ProjectionWithAliasAndArithmetic) {
  DataFrame out = RunExact(
      "SELECT n_nationkey AS k, n_nationkey * 2 + 1 AS odd FROM nation");
  EXPECT_EQ(out.num_columns(), 2u);
  EXPECT_EQ(out.ColumnByName("odd").IntAt(3),
            out.ColumnByName("k").IntAt(3) * 2 + 1);
}

TEST(SqlParserTest, WhereWithDateLiteralAndInterval) {
  DataFrame a = RunExact(
      "SELECT COUNT(*) AS n FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL 90 DAY");
  DataFrame b = RunExact(
      "SELECT COUNT(*) AS n FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-09-02'");
  EXPECT_EQ(a.column(0).IntAt(0), b.column(0).IntAt(0));
}

TEST(SqlParserTest, Q1EquivalentToHandBuiltPlan) {
  DataFrame got = RunExact(
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
      "SUM(l_extendedprice) AS sum_base_price, "
      "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
      "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
      "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, "
      "AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus");
  ExactEngine engine(&testing::SharedTpch());
  DataFrame expected = engine.Execute(tpch::Query(1).node());
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff)) << diff;
}

TEST(SqlParserTest, Q6EquivalentToHandBuiltPlan) {
  DataFrame got = RunExact(
      "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.049 AND 0.071 AND l_quantity < 24");
  ExactEngine engine(&testing::SharedTpch());
  DataFrame expected = engine.Execute(tpch::Query(6).node());
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff)) << diff;
}

TEST(SqlParserTest, JoinWithQualifiedOnCondition) {
  DataFrame got = RunExact(
      "SELECT n_name, COUNT(*) AS suppliers FROM supplier "
      "JOIN nation ON supplier.s_nationkey = nation.n_nationkey "
      "GROUP BY n_name ORDER BY suppliers DESC, n_name");
  EXPECT_GT(got.num_rows(), 0u);
  EXPECT_EQ(got.schema().field(0).name, "n_name");
  // Counts are descending.
  const Column& counts = got.ColumnByName("suppliers");
  for (size_t i = 1; i < got.num_rows(); ++i) {
    EXPECT_GE(counts.IntAt(i - 1), counts.IntAt(i));
  }
}

TEST(SqlParserTest, OnConditionOrderIsNormalized) {
  // `nation.n_nationkey = supplier-side key` written backwards must work.
  DataFrame a = RunExact(
      "SELECT COUNT(*) AS n FROM supplier "
      "JOIN nation ON nation.n_nationkey = supplier.s_nationkey");
  DataFrame b = RunExact(
      "SELECT COUNT(*) AS n FROM supplier "
      "JOIN nation ON supplier.s_nationkey = nation.n_nationkey");
  EXPECT_EQ(a.column(0).IntAt(0), b.column(0).IntAt(0));
}

TEST(SqlParserTest, SemiAndAntiJoins) {
  DataFrame semi = RunExact(
      "SELECT COUNT(*) AS n FROM customer "
      "SEMI JOIN orders ON customer.c_custkey = orders.o_custkey");
  DataFrame anti = RunExact(
      "SELECT COUNT(*) AS n FROM customer "
      "ANTI JOIN orders ON customer.c_custkey = orders.o_custkey");
  int64_t total =
      static_cast<int64_t>(testing::SharedTpch().Get("customer").total_rows());
  EXPECT_EQ(semi.column(0).IntAt(0) + anti.column(0).IntAt(0), total);
  EXPECT_GT(anti.column(0).IntAt(0), 0);  // a third of customers order nothing
}

TEST(SqlParserTest, CountDistinctAndHaving) {
  DataFrame got = RunExact(
      "SELECT l_shipmode, COUNT(DISTINCT l_suppkey) AS supps "
      "FROM lineitem GROUP BY l_shipmode HAVING supps > 0 "
      "ORDER BY l_shipmode");
  EXPECT_EQ(got.num_rows(), 7u);  // all 7 ship modes
}

TEST(SqlParserTest, CaseWhenAndLike) {
  DataFrame got = RunExact(
      "SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN 1 ELSE 0 END) AS promo,"
      " COUNT(*) AS total FROM part");
  EXPECT_GT(got.ColumnByName("promo").IntAt(0), 0);
  EXPECT_LT(got.ColumnByName("promo").IntAt(0),
            got.ColumnByName("total").IntAt(0));
}

TEST(SqlParserTest, InListAndNotLike) {
  DataFrame got = RunExact(
      "SELECT COUNT(*) AS n FROM orders "
      "WHERE o_orderpriority IN ('1-URGENT', '2-HIGH') "
      "AND o_comment NOT LIKE '%special%requests%'");
  EXPECT_GT(got.column(0).IntAt(0), 0);
}

TEST(SqlParserTest, SubstrYearCoalesce) {
  DataFrame got = RunExact(
      "SELECT SUBSTR(c_phone, 1, 2) AS code, COUNT(*) AS n "
      "FROM customer GROUP BY code ORDER BY code LIMIT 5");
  EXPECT_LE(got.num_rows(), 5u);
  EXPECT_EQ(got.ColumnByName("code").StringAt(0).size(), 2u);
  DataFrame years = RunExact(
      "SELECT YEAR(o_orderdate) AS y, COUNT(*) AS n FROM orders "
      "GROUP BY y ORDER BY y");
  EXPECT_EQ(years.num_rows(), 7u);  // 1992..1998
}

TEST(SqlParserTest, SelectOrderDiffersFromGroupOrder) {
  DataFrame got = RunExact(
      "SELECT COUNT(*) AS n, l_returnflag FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  EXPECT_EQ(got.schema().field(0).name, "n");
  EXPECT_EQ(got.schema().field(1).name, "l_returnflag");
  EXPECT_EQ(got.num_rows(), 3u);
}

TEST(SqlParserTest, SqlPlanRunsOnWakeEngineWithOla) {
  WakeEngine engine(&testing::SharedTpch());
  Plan plan = Parse(
      "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem "
      "GROUP BY l_returnflag ORDER BY q DESC");
  size_t states = 0;
  DataFrame final_frame;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    ++states;
    if (s.is_final) final_frame = *s.frame;
  });
  EXPECT_GT(states, 2u);  // OLA states stream from a SQL query
  ExactEngine exact(&testing::SharedTpch());
  std::string diff;
  EXPECT_TRUE(final_frame.ApproxEquals(exact.Execute(plan.node()), 1e-9,
                                       &diff))
      << diff;
}

TEST(SqlParserTest, ErrorsArePositionAnnotated) {
  try {
    Parse("SELECT FROM lineitem");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(SqlParserTest, RejectsUnsupportedConstructs) {
  EXPECT_THROW(Parse("SELECT a FROM t GROUP BY a"), Error);  // no aggregate
  EXPECT_THROW(Parse("SELECT a, SUM(b) FROM t GROUP BY c"), Error);
  EXPECT_THROW(Parse("SELECT SUM(DISTINCT x) FROM t"), Error);
  EXPECT_THROW(Parse("SELECT * FROM t WHERE x = "), Error);
  EXPECT_THROW(Parse("SELECT * FROM t extra garbage"), Error);
  EXPECT_THROW(
      Parse("SELECT * FROM t WHERE l_shipdate + INTERVAL 3 DAY > x"),
      Error);  // interval on non-literal
}

TEST(SqlParserTest, MedianAggregate) {
  DataFrame got = RunExact(
      "SELECT l_returnflag, MEDIAN(l_quantity) AS med FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  ASSERT_EQ(got.num_rows(), 3u);
  for (size_t r = 0; r < got.num_rows(); ++r) {
    double med = got.ColumnByName("med").DoubleAt(r);
    EXPECT_GE(med, 1.0);
    EXPECT_LE(med, 50.0);
  }
}

TEST(SqlParserTest, Q3StyleThreeTableJoin) {
  // The full Q3 shape in SQL (sans the semi-join rewrite): three tables,
  // filters on each, grouped revenue, top-10.
  DataFrame got = RunExact(
      "SELECT l_orderkey, o_orderdate, o_shippriority, "
      "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM lineitem "
      "JOIN orders ON l_orderkey = o_orderkey "
      "JOIN customer ON o_custkey = c_custkey "
      "WHERE c_mktsegment = 'BUILDING' "
      "AND o_orderdate < DATE '1995-03-15' "
      "AND l_shipdate > DATE '1995-03-15' "
      "GROUP BY l_orderkey, o_orderdate, o_shippriority "
      "ORDER BY revenue DESC, o_orderdate LIMIT 10");
  ExactEngine engine(&testing::SharedTpch());
  DataFrame expected = engine.Execute(tpch::Query(3).node());
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-6, &diff)) << diff;
}

TEST(SqlParserTest, IsNullOverLeftJoin) {
  // Customers without orders: LEFT JOIN + IS NULL (the classic pattern).
  DataFrame via_null = RunExact(
      "SELECT COUNT(*) AS n FROM customer "
      "LEFT JOIN orders ON customer.c_custkey = orders.o_custkey "
      "WHERE o_orderkey IS NULL");
  DataFrame via_anti = RunExact(
      "SELECT COUNT(*) AS n FROM customer "
      "ANTI JOIN orders ON customer.c_custkey = orders.o_custkey");
  EXPECT_EQ(via_null.column(0).IntAt(0), via_anti.column(0).IntAt(0));
  DataFrame not_null = RunExact(
      "SELECT COUNT(*) AS n FROM customer "
      "LEFT JOIN orders ON customer.c_custkey = orders.o_custkey "
      "WHERE o_orderkey IS NOT NULL");
  EXPECT_GT(not_null.column(0).IntAt(0), 0);
}

TEST(SqlParserTest, BareLimitWithoutOrder) {
  DataFrame got = RunExact("SELECT * FROM nation LIMIT 3");
  EXPECT_EQ(got.num_rows(), 3u);
}

TEST(SqlParserTest, UnknownTableQualifierIsRejectedWithPosition) {
  // `l.` is not in scope: only `lineitem` is. The error must carry the
  // offending alias and its input offset.
  try {
    Parse("SELECT l.l_orderkey FROM lineitem");
    FAIL() << "expected scope error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("unknown table or alias 'l'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("offset 7"), std::string::npos) << msg;
  }
  // Same for qualifiers in WHERE, GROUP BY, ORDER BY, and ON clauses.
  EXPECT_THROW(Parse("SELECT * FROM lineitem WHERE x.l_quantity > 1"),
               Error);
  EXPECT_THROW(
      Parse("SELECT COUNT(*) AS n FROM supplier "
            "JOIN nation ON bogus.s_nationkey = nation.n_nationkey"),
      Error);
}

TEST(SqlParserTest, TableAliasesBringQualifiersIntoScope) {
  DataFrame got = RunExact(
      "SELECT l.l_orderkey, o.o_orderdate, COUNT(*) AS n "
      "FROM lineitem AS l JOIN orders o ON l.l_orderkey = o.o_orderkey "
      "GROUP BY l_orderkey, o_orderdate ORDER BY l_orderkey LIMIT 5");
  EXPECT_EQ(got.num_rows(), 5u);
  // The table's own name stays valid alongside the alias.
  DataFrame both = RunExact(
      "SELECT COUNT(*) AS n FROM lineitem l "
      "WHERE lineitem.l_quantity > 0 AND l.l_quantity > 0");
  EXPECT_GT(both.column(0).IntAt(0), 0);
}

TEST(SqlParserTest, OnClausePrefersLeftScopeOnAliasCollision) {
  // The left alias shadows the right table's name: `nation.` must resolve
  // to the LEFT relation (supplier aliased as nation), not flip the keys.
  DataFrame got = RunExact(
      "SELECT COUNT(*) AS n FROM supplier nation "
      "JOIN nation n2 ON nation.s_nationkey = n2.n_nationkey");
  DataFrame plain = RunExact(
      "SELECT COUNT(*) AS n FROM supplier "
      "JOIN nation ON s_nationkey = n_nationkey");
  EXPECT_EQ(got.column(0).IntAt(0), plain.column(0).IntAt(0));
}

TEST(SqlParserTest, SubqueryScopesAreIndependent) {
  // The outer alias `t` is visible outside, the inner alias `o` is not.
  DataFrame got = RunExact(
      "SELECT t.o_orderpriority, COUNT(*) AS n "
      "FROM (SELECT o.o_orderpriority FROM orders o) AS t "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority");
  EXPECT_EQ(got.num_rows(), 5u);
  EXPECT_THROW(
      Parse("SELECT o.o_orderpriority "
            "FROM (SELECT o_orderpriority FROM orders o) AS t"),
      Error);
}

TEST(SqlParserTest, DerivedTablesInFromAndJoin) {
  // FROM (SELECT ...): aggregate over an aggregate.
  DataFrame nested = RunExact(
      "SELECT MAX(cnt) AS busiest "
      "FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders "
      "GROUP BY o_custkey) AS per_cust");
  EXPECT_GT(nested.column(0).IntAt(0), 0);

  // JOIN (SELECT ...) ON: matches the plan-built semi-join decomposition.
  DataFrame sub = RunExact(
      "SELECT COUNT(*) AS n FROM orders "
      "SEMI JOIN (SELECT c_custkey FROM customer "
      "WHERE c_mktsegment = 'BUILDING') AS c "
      "ON o_custkey = c_custkey");
  Plan hand = Plan::Scan("orders")
                  .Join(Plan::Scan("customer")
                            .Filter(Eq(Expr::Col("c_mktsegment"),
                                       Expr::Str("BUILDING")))
                            .Map({{"c_custkey", Expr::Col("c_custkey")}}),
                        JoinType::kSemi, {"o_custkey"}, {"c_custkey"})
                  .Aggregate({}, {Count("n")});
  ExactEngine engine(&testing::SharedTpch());
  EXPECT_EQ(sub.column(0).IntAt(0),
            engine.Execute(hand.node()).column(0).IntAt(0));

  // CROSS JOIN (SELECT ...): scalar-subquery broadcast.
  DataFrame cross = RunExact(
      "SELECT COUNT(*) AS n FROM customer "
      "CROSS JOIN (SELECT AVG(c_acctbal) AS avg_bal FROM customer) AS a "
      "WHERE c_acctbal > avg_bal");
  EXPECT_GT(cross.column(0).IntAt(0), 0);
  int64_t total =
      static_cast<int64_t>(testing::SharedTpch().Get("customer").total_rows());
  EXPECT_LT(cross.column(0).IntAt(0), total);
}

}  // namespace
}  // namespace sql
}  // namespace wake
