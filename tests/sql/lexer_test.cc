#include "sql/lexer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace sql {
namespace {

std::vector<std::string> Texts(const std::string& input) {
  std::vector<std::string> out;
  for (const auto& t : Lex(input)) {
    if (t.type != TokenType::kEnd) out.push_back(t.text);
  }
  return out;
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  auto tokens = Lex("select FROM wHeRe");
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "WHERE");
}

TEST(LexerTest, IdentifiersAreLowercased) {
  auto tokens = Lex("LineItem L_OrderKey");
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "lineitem");
  EXPECT_EQ(tokens[1].text, "l_orderkey");
}

TEST(LexerTest, NumbersIntAndDecimal) {
  auto tokens = Lex("42 3.14 .5");
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].text, ".5");
  for (int i = 0; i < 3; ++i) EXPECT_EQ(tokens[i].type, TokenType::kNumber);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("'oops"), Error);
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  EXPECT_EQ(Texts("a <= b <> c >= d != e"),
            (std::vector<std::string>{"a", "<=", "b", "<>", "c", ">=", "d",
                                      "<>", "e"}));
}

TEST(LexerTest, LineCommentsSkipped) {
  EXPECT_EQ(Texts("a -- comment here\n b"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 4u);
}

TEST(LexerTest, UnexpectedCharacterThrows) {
  EXPECT_THROW(Lex("a ; b"), Error);
}

TEST(LexerTest, EndTokenAlwaysPresent) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace sql
}  // namespace wake
