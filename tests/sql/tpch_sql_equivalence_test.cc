// End-to-end oracle for the SQL front end + logical optimizer: every
// TPC-H query's SQL text, parsed and optimized, must produce exactly the
// results of the hand-built tpch::Query(n) plan on the exact engine, and
// the optimized plan must stay byte-identical on the Wake OLA engine at
// any worker count.
#include "tpch/queries_sql.h"

#include <gtest/gtest.h>

#include "baseline/exact_engine.h"
#include "core/engine.h"
#include "engine/tpch_fixture.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "tpch/queries.h"

namespace wake {
namespace {

class TpchSqlEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchSqlEquivalenceTest, SqlParsedAndOptimizedMatchesHandBuiltPlan) {
  int q = GetParam();
  const Catalog& catalog = testing::SharedTpch();
  ExactEngine exact(&catalog);

  DataFrame expected = exact.Execute(tpch::Query(q).node());

  Plan parsed = sql::Parse(tpch::QuerySql(q));
  // The naive parse must already be correct (filters above joins, full
  // scans) — the optimizer only makes it fast.
  DataFrame naive = exact.Execute(parsed.node());
  std::string diff;
  EXPECT_TRUE(naive.ApproxEquals(expected, 1e-9, &diff))
      << "Q" << q << " naive parse: " << diff;

  Plan optimized = Optimize(parsed, catalog);
  DataFrame got = exact.Execute(optimized.node());
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff))
      << "Q" << q << " optimized: " << diff
      << "\nplan:\n" << PlanToString(optimized.node());
}

TEST_P(TpchSqlEquivalenceTest, OptimizedPlanIsWorkerCountInvariantOnWake) {
  int q = GetParam();
  const Catalog& catalog = testing::SharedTpch();
  Plan optimized = Optimize(sql::Parse(tpch::QuerySql(q)), catalog);

  WakeOptions serial;
  serial.workers = 1;
  DataFrame w1 = WakeEngine(&catalog, serial).ExecuteFinal(optimized.node());

  WakeOptions parallel;
  parallel.workers = 4;
  DataFrame w4 =
      WakeEngine(&catalog, parallel).ExecuteFinal(optimized.node());

  // Byte-identical: zero tolerance, not approximate.
  std::string diff;
  EXPECT_TRUE(w1.ApproxEquals(w4, 0.0, &diff))
      << "Q" << q << " worker-count drift: " << diff;

  // And the OLA engine's final state agrees exactly with the hand-built
  // plan on the exact baseline.
  ExactEngine exact(&catalog);
  DataFrame expected = exact.Execute(tpch::Query(q).node());
  EXPECT_TRUE(w1.ApproxEquals(expected, 1e-9, &diff))
      << "Q" << q << " wake vs exact oracle: " << diff;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchSqlEquivalenceTest,
                         ::testing::Range(1, 23));

}  // namespace
}  // namespace wake
