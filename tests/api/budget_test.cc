// Per-query resource budgets through the wake::Db session API: graceful
// OLA degradation (kPartialBudget snapshots with CI), the kFail policy
// (kResourceExhausted), budget behaviour of each engine, and the
// idempotency of handle operations after a breach-driven stop. The TSAN
// CI config runs this binary, so racing charge/credit paths fail loudly.
#include <gtest/gtest.h>

#include <chrono>
#include <utility>

#include "api/db.h"
#include "common/error.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

class BudgetTest : public ::testing::Test {
 protected:
  const Catalog& cat_ = testing::SharedTpch();
};

TEST_F(BudgetTest, TinyMemoryBudgetDegradesOlaToPartialSnapshot) {
  Db db(&cat_);
  RunOptions run;
  run.with_ci = true;
  run.memory_limit_bytes = 16 * 1024;  // far below Q3's working set
  QueryHandle handle = db.Prepare(tpch::QuerySql(3)).Run(run);
  QueryResult result = handle.Result();  // must not throw, hang, or crash
  EXPECT_EQ(result.status, ResultStatus::kPartialBudget);
  EXPECT_EQ(result.breach, BreachReason::kMemory);
  EXPECT_LT(result.progress, 1.0);
  ASSERT_NE(result.frame, nullptr);
  // The snapshot keeps the query's schema even when the breach outran
  // every state.
  EXPECT_EQ(result.frame->num_columns(),
            db.Prepare(tpch::QuerySql(3)).schema().num_fields());
  // Final() returns the same degraded snapshot instead of throwing.
  EXPECT_EQ(handle.Final().num_rows(), result.frame->num_rows());
}

TEST_F(BudgetTest, FailPolicyRaisesResourceExhausted) {
  Db db(&cat_);
  RunOptions run;
  run.memory_limit_bytes = 16 * 1024;
  run.on_breach = OnBreach::kFail;
  QueryHandle handle = db.Prepare(tpch::QuerySql(3)).Run(run);
  try {
    handle.Final();
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kResourceExhausted);
  }
  EXPECT_TRUE(handle.done());
}

TEST_F(BudgetTest, DeadlineDegradesWithPartialStatus) {
  Db db(&cat_);
  RunOptions run;
  run.timeout_ms = 1;  // expires long before Q9 finishes
  QueryHandle handle = db.Prepare(tpch::QuerySql(9)).Run(run);
  QueryResult result = handle.Result();
  if (result.status == ResultStatus::kFinal) {
    GTEST_SKIP() << "query finished inside the deadline on this machine";
  }
  EXPECT_EQ(result.breach, BreachReason::kDeadline);
  EXPECT_LT(result.progress, 1.0);
  ASSERT_NE(result.frame, nullptr);
}

TEST_F(BudgetTest, RowsScannedCapDegrades) {
  Db db(&cat_);
  RunOptions run;
  run.max_rows_scanned = 64;  // smaller than one lineitem partition
  QueryHandle handle = db.Prepare(tpch::QuerySql(6)).Run(run);
  QueryResult result = handle.Result();
  EXPECT_EQ(result.status, ResultStatus::kPartialBudget);
  EXPECT_EQ(result.breach, BreachReason::kRowsScanned);
  EXPECT_LT(result.progress, 1.0);
}

TEST_F(BudgetTest, UnbudgetedRunsAreUnaffected) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::QuerySql(6));
  QueryHandle handle = q.Run();
  QueryResult result = handle.Result();
  EXPECT_EQ(result.status, ResultStatus::kFinal);
  EXPECT_EQ(result.breach, BreachReason::kNone);
  EXPECT_DOUBLE_EQ(result.progress, 1.0);
}

TEST_F(BudgetTest, GenerousBudgetStillProducesExactFinal) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::QuerySql(6));
  RunOptions run;
  run.memory_limit_bytes = size_t{4} << 30;
  run.timeout_ms = 600000;
  run.max_rows_scanned = size_t{1} << 40;
  QueryHandle budgeted = q.Run(run);
  QueryResult result = budgeted.Result();
  EXPECT_EQ(result.status, ResultStatus::kFinal);
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(q.Execute(), 0.0, &diff)) << diff;
}

TEST_F(BudgetTest, ExactEngineSurfacesResourceExhausted) {
  Db db(&cat_);
  RunOptions run;
  run.engine = QueryEngine::kExact;
  run.memory_limit_bytes = 16 * 1024;
  // Policy is irrelevant for a blocking engine: no partial exists, so
  // kDegrade fails too.
  QueryHandle handle = db.Prepare(tpch::QuerySql(3)).Run(run);
  try {
    handle.Final();
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kResourceExhausted);
  }
}

TEST_F(BudgetTest, ProgressiveEngineDegradesAtChunkBoundaries) {
  Db db(&cat_);
  RunOptions run;
  run.engine = QueryEngine::kProgressive;
  run.max_rows_scanned = 64;
  QueryHandle handle =
      db.Prepare("SELECT l_shipmode, SUM(l_quantity) AS qty FROM lineitem "
                 "GROUP BY l_shipmode")
          .Run(run);
  QueryResult result = handle.Result();
  EXPECT_EQ(result.status, ResultStatus::kPartialBudget);
  EXPECT_EQ(result.breach, BreachReason::kRowsScanned);
  EXPECT_LT(result.progress, 1.0);
  EXPECT_GT(result.frame->num_rows(), 0u);  // at least one chunk's estimate
}

TEST_F(BudgetTest, HandleOperationsAreIdempotentAfterBreach) {
  Db db(&cat_);
  RunOptions run;
  run.memory_limit_bytes = 16 * 1024;
  QueryHandle handle = db.Prepare(tpch::QuerySql(3)).Run(run);
  // Wait / Final / Result / Cancel in any order and multiplicity.
  handle.Wait();
  handle.Wait();
  DataFrame a = handle.Final();
  DataFrame b = handle.Final();
  EXPECT_EQ(a.num_rows(), b.num_rows());
  handle.Cancel();
  handle.Cancel();  // double-cancel after the run already stopped
  QueryResult result = handle.Result();
  EXPECT_EQ(result.status, ResultStatus::kPartialBudget);
  // The pull stream still terminates.
  while (handle.Next(std::chrono::milliseconds(100))) {
  }
  EXPECT_TRUE(handle.done());
}

TEST_F(BudgetTest, MovedFromHandleIsInert) {
  Db db(&cat_);
  QueryHandle handle = db.Prepare(tpch::QuerySql(6)).Run();
  QueryHandle moved = std::move(handle);
  // The moved-from shell: every operation is safe, none crashes.
  EXPECT_TRUE(handle.done());
  EXPECT_FALSE(handle.cancelled());
  EXPECT_EQ(handle.Next(), std::nullopt);
  handle.Cancel();
  handle.Wait();
  EXPECT_THROW(handle.Final(), Error);
  EXPECT_THROW(handle.Result(), Error);
  // The moved-to handle owns the query.
  EXPECT_EQ(moved.Result().status, ResultStatus::kFinal);
}

TEST_F(BudgetTest, BoundedStateStreamDropsOldestSnapshots) {
  Db db(&cat_);
  RunOptions run;
  run.max_buffered_states = 2;
  QueryHandle handle = db.Prepare(tpch::QuerySql(1)).Run(run);
  handle.Wait();  // never pulled while running: buffer must stay capped
  // Drain what survived: at most the cap plus the state being delivered
  // concurrently with a drop.
  size_t drained = 0;
  double last_progress = -1.0;
  bool saw_final = false;
  while (auto s = handle.Next()) {
    ++drained;
    EXPECT_GE(s->progress, last_progress);  // still in order
    last_progress = s->progress;
    saw_final = s->is_final;
  }
  EXPECT_LE(drained, 3u);
  // The final state is never the one dropped.
  EXPECT_TRUE(saw_final);
  EXPECT_EQ(handle.Final().num_rows(),
            db.Prepare(tpch::QuerySql(1)).Execute().num_rows());
}

TEST_F(BudgetTest, BudgetedRunMatchesUnbudgetedResults) {
  // Charging/crediting must be observation-only: byte-identical results.
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::QuerySql(3));
  RunOptions run;
  run.memory_limit_bytes = size_t{4} << 30;
  std::string diff;
  EXPECT_TRUE(q.Run(run).Final().ApproxEquals(q.Execute(), 0.0, &diff))
      << diff;
}

}  // namespace
}  // namespace wake
