// Admission control and session-wide memory limits through wake::Db:
// FIFO queueing behind max_concurrent_queries, synchronous kQueueFull
// rejection, admission timeouts, cancel-while-queued, and the
// total_memory_limit shared across concurrent queries. Runs under the
// TSAN CI config.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <vector>

#include "api/db.h"
#include "common/error.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  const Catalog& cat_ = testing::SharedTpch();
};

TEST_F(AdmissionTest, QueriesBeyondTheLimitQueueAndComplete) {
  DbOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued = 4;
  Db db(&cat_);
  Db gated(&cat_, opts);
  PreparedQuery q = gated.Prepare(tpch::QuerySql(6));
  DataFrame expected = db.Prepare(tpch::QuerySql(6)).Execute();
  // Three runs through one slot: all must complete with the exact result.
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 3; ++i) handles.push_back(q.Run());
  for (auto& h : handles) {
    std::string diff;
    EXPECT_TRUE(h.Final().ApproxEquals(expected, 0.0, &diff)) << diff;
  }
}

TEST_F(AdmissionTest, FullQueueRejectsRunSynchronously) {
  DbOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued = 1;
  Db db(&cat_, opts);
  PreparedQuery heavy = db.Prepare(tpch::QuerySql(9));
  QueryHandle running = heavy.Run();   // takes the slot
  QueryHandle queued = heavy.Run();    // fills the queue
  try {
    QueryHandle rejected = heavy.Run();
    FAIL() << "expected kQueueFull";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kQueueFull);
  }
  running.Cancel();
  queued.Cancel();
  running.Wait();
  queued.Wait();
}

TEST_F(AdmissionTest, AdmissionTimeoutFailsTheQueuedRun) {
  DbOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued = 4;
  Db db(&cat_, opts);
  // Hold the only slot with a bare ticket — deterministic, unlike a
  // blocker query that may finish before the timeout fires.
  AdmissionController::TicketPtr slot = db.admission()->Submit();
  RunOptions run;
  run.admission_timeout_ms = 30;
  QueryHandle waiting = db.Prepare(tpch::QuerySql(6)).Run(run);
  try {
    waiting.Final();
    FAIL() << "expected kAdmissionTimeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kAdmissionTimeout);
  }
  db.admission()->Release(slot);
}

TEST_F(AdmissionTest, CancelWhileQueuedDequeuesImmediately) {
  DbOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued = 4;
  Db db(&cat_, opts);
  QueryHandle running = db.Prepare(tpch::QuerySql(9)).Run();
  QueryHandle queued = db.Prepare(tpch::QuerySql(6)).Run();
  queued.Cancel();
  queued.Wait();  // returns without waiting for the slot
  EXPECT_TRUE(queued.done());
  EXPECT_THROW(queued.Final(), Error);
  // The freed queue entry is reusable while the heavy query still runs.
  QueryHandle next = db.Prepare(tpch::QuerySql(6)).Run();
  running.Cancel();
  running.Wait();
  EXPECT_GT(next.Final().num_rows(), 0u);
}

TEST_F(AdmissionTest, QueuedRunsAdmitInFifoOrder) {
  DbOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued = 8;
  Db db(&cat_, opts);
  QueryHandle blocker = db.Prepare(tpch::QuerySql(9)).Run();

  std::mutex order_mu;
  std::vector<int> order;
  PreparedQuery q = db.Prepare(tpch::QuerySql(6));
  std::vector<QueryHandle> waiters;
  for (int i = 0; i < 3; ++i) {
    RunOptions run;
    run.on_state = [i, &order_mu, &order](const OlaState& s) {
      if (s.is_final) {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
    };
    waiters.push_back(q.Run(run));
  }
  blocker.Cancel();  // free the slot, start the cascade
  for (auto& h : waiters) h.Wait();
  blocker.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));  // Run() order
}

TEST_F(AdmissionTest, DestroyingAQueuedHandleReleasesItsEntry) {
  DbOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queued = 1;
  Db db(&cat_, opts);
  QueryHandle running = db.Prepare(tpch::QuerySql(9)).Run();
  {
    QueryHandle queued = db.Prepare(tpch::QuerySql(6)).Run();
    (void)queued;
  }  // destructor cancels the queued run and joins its driver
  // Queue slot free again: the next run queues instead of kQueueFull.
  QueryHandle next = db.Prepare(tpch::QuerySql(6)).Run();
  running.Cancel();
  running.Wait();
  EXPECT_GT(next.Final().num_rows(), 0u);
}

TEST_F(AdmissionTest, SessionMemoryLimitBreachesTheOffendingQuery) {
  DbOptions opts;
  opts.total_memory_limit_bytes = 16 * 1024;  // below one query's partials
  Db db(&cat_, opts);
  // No per-query budget: the session limit alone governs the run.
  QueryHandle handle = db.Prepare(tpch::QuerySql(3)).Run();
  QueryResult result = handle.Result();
  EXPECT_EQ(result.status, ResultStatus::kPartialBudget);
  EXPECT_EQ(result.breach, BreachReason::kSessionMemory);
  // The session meter settles back to zero after the run released.
  EXPECT_EQ(db.session_tracker()->used_bytes(), 0u);
}

TEST_F(AdmissionTest, SessionLimitOutlivesDegradedRuns) {
  // Repeated breaches must not leak session budget (Release settles the
  // outstanding balance each time).
  DbOptions opts;
  opts.total_memory_limit_bytes = 16 * 1024;
  Db db(&cat_, opts);
  for (int i = 0; i < 3; ++i) {
    QueryResult r = db.Prepare(tpch::QuerySql(3)).Run().Result();
    EXPECT_EQ(r.status, ResultStatus::kPartialBudget);
  }
  EXPECT_EQ(db.session_tracker()->used_bytes(), 0u);
}

}  // namespace
}  // namespace wake
