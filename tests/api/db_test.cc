// wake::Db session API: prepare/run semantics, engine selection, pull and
// push delivery, error categories, and concurrent handles over one Db.
#include "api/db.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baseline/exact_engine.h"
#include "baseline/progressive_ola.h"
#include "common/error.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

const char* kShipmodeSql =
    "SELECT l_shipmode, SUM(l_quantity) AS qty, COUNT(*) AS items "
    "FROM lineitem GROUP BY l_shipmode ORDER BY qty DESC";

class DbTest : public ::testing::Test {
 protected:
  const Catalog& cat_ = testing::SharedTpch();
};

// --- Prepare ---------------------------------------------------------------

TEST_F(DbTest, ParseErrorIsCategorizedWithPosition) {
  Db db(&cat_);
  try {
    db.Prepare("SELECT FROM WHERE");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse);
    EXPECT_TRUE(e.has_position());
  }
}

TEST_F(DbTest, SemanticSqlErrorIsAlsoParseCategory) {
  Db db(&cat_);
  // Statement-level SQL rejection (not a token error): still kParse.
  try {
    db.Prepare("SELECT l_shipmode FROM lineitem HAVING COUNT(*) > 1");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse);
  }
}

TEST_F(DbTest, PlanErrorIsCategorized) {
  Db db(&cat_);
  // Parses fine; validation rejects the unknown column at Prepare time.
  try {
    db.Prepare("SELECT no_such_column FROM lineitem");
    FAIL() << "expected plan error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kPlan);
  }
}

TEST_F(DbTest, PlanErrorSurfacesWithoutOptimizerToo) {
  DbOptions options;
  options.optimize = false;
  Db db(&cat_, options);
  EXPECT_THROW(db.Prepare("SELECT no_such_column FROM lineitem"), Error);
}

TEST_F(DbTest, ExplainRendersTheOptimizedPlan) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(kShipmodeSql);
  // The optimizer projected the scan: only the two referenced columns.
  EXPECT_NE(q.Explain().find("Scan lineitem [l_quantity,l_shipmode]"),
            std::string::npos)
      << q.Explain();
  EXPECT_EQ(q.sql(), kShipmodeSql);
  EXPECT_EQ(q.schema().num_fields(), 3u);
  EXPECT_EQ(q.schema().field(0).name, "l_shipmode");
}

// --- Run: pull, push, engines ----------------------------------------------

TEST_F(DbTest, PullCursorStreamsConvergingStatesThenFinal) {
  Db db(&cat_);
  QueryHandle handle = db.Prepare(kShipmodeSql).Run();
  size_t states = 0;
  double last_progress = 0.0;
  bool saw_final = false;
  while (auto s = handle.Next()) {
    EXPECT_GE(s->progress, last_progress);  // monotone
    last_progress = s->progress;
    EXPECT_FALSE(saw_final);  // final is the last state
    saw_final = s->is_final;
    ++states;
  }
  EXPECT_TRUE(saw_final);
  EXPECT_GT(states, 1u);  // OLA streams intermediate estimates
  EXPECT_TRUE(handle.done());

  ExactEngine exact(&cat_);
  std::string diff;
  EXPECT_TRUE(handle.Final().ApproxEquals(
      exact.Execute(db.Prepare(kShipmodeSql).plan().node()), 1e-9, &diff))
      << diff;
}

TEST_F(DbTest, TimedNextDistinguishesTimeoutFromEof) {
  Db db(&cat_);
  QueryHandle handle = db.Prepare(kShipmodeSql).Run();
  handle.Wait();
  // Stream has ended: even a zero timeout drains the queued states, and
  // after the last one Next keeps returning nullopt with done() true.
  size_t states = 0;
  while (handle.Next(std::chrono::milliseconds(1000))) ++states;
  EXPECT_GT(states, 0u);
  EXPECT_TRUE(handle.done());
}

TEST_F(DbTest, CallbackAndCursorBothSeeEveryState) {
  Db db(&cat_);
  RunOptions run;
  size_t pushed = 0;
  run.on_state = [&](const OlaState&) { ++pushed; };
  QueryHandle handle = db.Prepare(kShipmodeSql).Run(run);
  size_t pulled = 0;
  while (handle.Next()) ++pulled;
  EXPECT_EQ(pushed, pulled);
}

TEST_F(DbTest, ThrowingCallbackCancelsTheRunAndPropagates) {
  Db db(&cat_);
  RunOptions run;
  run.on_state = [](const OlaState&) { throw std::runtime_error("boom"); };
  QueryHandle handle = db.Prepare(kShipmodeSql).Run(run);
  // The graph is cancelled and joined (not left running in the
  // background); the callback's exception surfaces from Final().
  EXPECT_THROW(handle.Final(), std::runtime_error);
  EXPECT_TRUE(handle.done());
}

TEST_F(DbTest, ExactEngineYieldsOneFinalState) {
  Db db(&cat_);
  RunOptions run;
  run.engine = QueryEngine::kExact;
  QueryHandle handle = db.Prepare(kShipmodeSql).Run(run);
  auto s = handle.Next();
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->is_final);
  EXPECT_EQ(s->progress, 1.0);
  EXPECT_FALSE(handle.Next().has_value());
}

TEST_F(DbTest, AllThreeEnginesAgreeOnASingleTableQuery) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(kShipmodeSql);
  DataFrame ola = q.Execute();
  RunOptions exact_run;
  exact_run.engine = QueryEngine::kExact;
  DataFrame exact = q.Execute(exact_run);
  RunOptions prog_run;
  prog_run.engine = QueryEngine::kProgressive;
  DataFrame prog = q.Execute(prog_run);
  std::string diff;
  EXPECT_TRUE(ola.ApproxEquals(exact, 1e-9, &diff)) << diff;
  EXPECT_TRUE(prog.ApproxEquals(exact, 1e-9, &diff)) << diff;
}

TEST_F(DbTest, ProgressiveEngineRejectsJoinsAsExecutionError) {
  Db db(&cat_);
  RunOptions run;
  run.engine = QueryEngine::kProgressive;
  QueryHandle handle =
      db.Prepare("SELECT COUNT(*) AS n FROM lineitem "
                 "JOIN orders ON l_orderkey = o_orderkey")
          .Run(run);
  EXPECT_THROW(handle.Final(), Error);
  EXPECT_TRUE(handle.done());
}

TEST_F(DbTest, PreparedFromPlanMatchesHandBuiltExecution) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::Query(3));
  ExactEngine exact(&cat_);
  std::string diff;
  EXPECT_TRUE(q.Execute().ApproxEquals(exact.Execute(tpch::Query(3).node()),
                                       1e-9, &diff))
      << diff;
}

TEST_F(DbTest, WithCiReportsVariances) {
  Db db(&cat_);
  RunOptions run;
  run.with_ci = true;
  bool saw_variances = false;
  run.on_state = [&](const OlaState& s) {
    saw_variances |= s.variances != nullptr && !s.variances->empty();
  };
  db.Prepare(tpch::Query(14)).Run(run).Wait();
  EXPECT_TRUE(saw_variances);
}

// --- concurrency -----------------------------------------------------------

TEST_F(DbTest, ReusingOnePreparedQueryGivesIdenticalResults) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(kShipmodeSql);
  DataFrame first = q.Execute();
  DataFrame second = q.Execute();
  std::string diff;
  EXPECT_TRUE(first.ApproxEquals(second, 0.0, &diff)) << diff;
}

TEST_F(DbTest, ConcurrentHandlesOverOneDbMatchSerialRuns) {
  Db db(&cat_);
  const int kQueries[] = {1, 3, 6, 12};
  std::vector<PreparedQuery> prepared;
  for (int q : kQueries) prepared.push_back(db.Prepare(tpch::QuerySql(q)));

  // Serial baselines first.
  std::vector<DataFrame> serial;
  for (const auto& p : prepared) serial.push_back(p.Execute());

  // Then everything in flight at once, sharing the Db pool.
  std::vector<QueryHandle> handles;
  for (const auto& p : prepared) handles.push_back(p.Run());
  for (size_t i = 0; i < handles.size(); ++i) {
    std::string diff;
    EXPECT_TRUE(handles[i].Final().ApproxEquals(serial[i], 0.0, &diff))
        << "Q" << kQueries[i] << ": " << diff;
  }
}

TEST_F(DbTest, ConcurrentMixedEnginesShareOneDb) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(kShipmodeSql);
  QueryHandle ola = q.Run();
  RunOptions exact_run;
  exact_run.engine = QueryEngine::kExact;
  QueryHandle exact = q.Run(exact_run);
  std::string diff;
  EXPECT_TRUE(ola.Final().ApproxEquals(exact.Final(), 1e-9, &diff)) << diff;
}

}  // namespace
}  // namespace wake
