// Acceptance oracle for the wake::Db facade: every TPC-H query prepared
// from SQL and run through the API must match the hand-built
// tpch::Query(n) plan on the exact engine, and the OLA engine behind the
// same handle must stay byte-identical across worker counts.
#include <gtest/gtest.h>

#include "api/db.h"
#include "baseline/exact_engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

class DbTpchTest : public ::testing::TestWithParam<int> {};

TEST_P(DbTpchTest, PreparedSqlOnExactEngineMatchesHandBuiltPlan) {
  int q = GetParam();
  const Catalog& catalog = testing::SharedTpch();
  ExactEngine oracle(&catalog);
  DataFrame expected = oracle.Execute(tpch::Query(q).node());

  Db db(&catalog);
  RunOptions run;
  run.engine = QueryEngine::kExact;
  DataFrame got = db.Prepare(tpch::QuerySql(q)).Execute(run);
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff))
      << "Q" << q << ": " << diff;
}

TEST_P(DbTpchTest, OlaHandleIsWorkerCountInvariant) {
  int q = GetParam();
  const Catalog& catalog = testing::SharedTpch();

  DbOptions serial;
  serial.workers = 1;
  Db db1(&catalog, serial);
  DataFrame w1 = db1.Prepare(tpch::QuerySql(q)).Execute();

  DbOptions parallel;
  parallel.workers = 4;
  Db db4(&catalog, parallel);
  DataFrame w4 = db4.Prepare(tpch::QuerySql(q)).Execute();

  // Byte-identical: zero tolerance, not approximate.
  std::string diff;
  EXPECT_TRUE(w1.ApproxEquals(w4, 0.0, &diff))
      << "Q" << q << " worker-count drift: " << diff;

  // And the OLA final state agrees with the hand-built exact oracle.
  ExactEngine oracle(&catalog);
  DataFrame expected = oracle.Execute(tpch::Query(q).node());
  EXPECT_TRUE(w1.ApproxEquals(expected, 1e-9, &diff))
      << "Q" << q << " api vs exact oracle: " << diff;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, DbTpchTest, ::testing::Range(1, 23));

}  // namespace
}  // namespace wake
