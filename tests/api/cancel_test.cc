// Cooperative cancellation through the wake::Db session API: bounded
// shutdown with every node thread joined (the TSAN CI config runs this
// binary, so leaked or racing threads fail loudly), plus the cancel
// semantics of each engine and of handle destruction.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "api/db.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

class CancelTest : public ::testing::Test {
 protected:
  const Catalog& cat_ = testing::SharedTpch();

  // Asserts the terminal contract after a cancel: Wait() returns, the
  // stream ends, and Final() either produced the exact answer (the
  // cancel raced completion) or throws kCancelled — never hangs, never
  // returns a truncated frame.
  static void ExpectCleanOutcome(QueryHandle& handle) {
    Stopwatch clock;
    handle.Wait();
    // Bounded shutdown: one partial of work, not the rest of the query.
    // Generous bound so sanitizer builds on loaded CI hosts stay green.
    EXPECT_LT(clock.ElapsedSeconds(), 30.0);
    EXPECT_TRUE(handle.done());
    try {
      handle.Final();
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
    }
  }
};

TEST_F(CancelTest, CancelMidOlaQueryShutsDownPromptly) {
  Db db(&cat_);
  // Q9: the heaviest multi-join query — plenty of in-flight partials.
  QueryHandle handle = db.Prepare(tpch::QuerySql(9)).Run();
  // Let it actually start streaming before cancelling.
  (void)handle.Next(std::chrono::milliseconds(2000));
  handle.Cancel();
  EXPECT_TRUE(handle.cancelled());
  ExpectCleanOutcome(handle);
  // The pull stream ends instead of blocking forever.
  while (handle.Next()) {
  }
}

TEST_F(CancelTest, CancelBeforeFirstStateIsClean) {
  Db db(&cat_);
  QueryHandle handle = db.Prepare(tpch::QuerySql(9)).Run();
  handle.Cancel();  // likely before any state was produced
  ExpectCleanOutcome(handle);
}

TEST_F(CancelTest, CancelAfterCompletionIsANoOp) {
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::QuerySql(6));
  QueryHandle handle = q.Run();
  handle.Wait();
  handle.Cancel();
  // The final result survives a late cancel.
  std::string diff;
  EXPECT_TRUE(handle.Final().ApproxEquals(q.Execute(), 0.0, &diff)) << diff;
}

TEST_F(CancelTest, CancelIsIdempotentAndConcurrent) {
  Db db(&cat_);
  QueryHandle handle = db.Prepare(tpch::QuerySql(9)).Run();
  std::vector<std::thread> cancellers;
  for (int i = 0; i < 4; ++i) {
    cancellers.emplace_back([&handle] { handle.Cancel(); });
  }
  for (auto& t : cancellers) t.join();
  ExpectCleanOutcome(handle);
}

TEST_F(CancelTest, DroppingARunningHandleCancelsAndJoins) {
  Db db(&cat_);
  {
    QueryHandle handle = db.Prepare(tpch::QuerySql(9)).Run();
    (void)handle;
  }  // destructor: cancel + join, no detached threads survive
  // A fresh query on the same Db still works afterwards.
  EXPECT_GT(db.Prepare(tpch::QuerySql(6)).Execute().num_rows(), 0u);
}

TEST_F(CancelTest, ExactEngineHonorsCancel) {
  Db db(&cat_);
  RunOptions run;
  run.engine = QueryEngine::kExact;
  QueryHandle handle = db.Prepare(tpch::QuerySql(9)).Run(run);
  handle.Cancel();
  ExpectCleanOutcome(handle);
}

TEST_F(CancelTest, ProgressiveEngineHonorsCancel) {
  Db db(&cat_);
  RunOptions run;
  run.engine = QueryEngine::kProgressive;
  QueryHandle handle =
      db.Prepare("SELECT l_shipmode, SUM(l_quantity) AS qty FROM lineitem "
                 "GROUP BY l_shipmode")
          .Run(run);
  handle.Cancel();
  ExpectCleanOutcome(handle);
}

TEST_F(CancelTest, OtherHandlesKeepRunningWhenOneIsCancelled) {
  Db db(&cat_);
  PreparedQuery heavy = db.Prepare(tpch::QuerySql(9));
  PreparedQuery light = db.Prepare(tpch::QuerySql(6));
  QueryHandle cancelled = heavy.Run();
  QueryHandle survivor = light.Run();
  cancelled.Cancel();
  std::string diff;
  EXPECT_TRUE(survivor.Final().ApproxEquals(light.Execute(), 0.0, &diff))
      << diff;
  ExpectCleanOutcome(cancelled);
}

}  // namespace
}  // namespace wake
