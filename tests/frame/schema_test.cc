#include "frame/schema.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

Schema MakeSchema() {
  Schema s({{"a", ValueType::kInt64},
            {"b", ValueType::kFloat64, /*mut=*/true},
            {"c", ValueType::kString}});
  s.set_primary_key({"a"});
  s.set_clustering_key({"a"});
  return s;
}

TEST(SchemaTest, FieldLookup) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.FieldIndex("b"), 1u);
  EXPECT_EQ(s.FindField("zzz"), Schema::npos);
  EXPECT_TRUE(s.HasField("c"));
  EXPECT_FALSE(s.HasField("d"));
  EXPECT_THROW(s.FieldIndex("zzz"), Error);
}

TEST(SchemaTest, FieldIndexErrorListsKnownColumns) {
  Schema s = MakeSchema();
  try {
    s.FieldIndex("missing");
    FAIL();
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("missing"), std::string::npos);
    EXPECT_NE(msg.find("a"), std::string::npos);  // lists what exists
  }
}

TEST(SchemaTest, ClusteringContainedIn) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.ClusteringContainedIn({"a"}));
  EXPECT_TRUE(s.ClusteringContainedIn({"b", "a"}));
  EXPECT_FALSE(s.ClusteringContainedIn({"b"}));
  Schema unclustered({{"x", ValueType::kInt64}});
  // No clustering key: never "contained" (so aggregations are shuffles).
  EXPECT_FALSE(unclustered.ClusteringContainedIn({"x"}));
}

TEST(SchemaTest, MultiColumnClusteringContainment) {
  Schema s({{"k1", ValueType::kInt64}, {"k2", ValueType::kInt64},
            {"v", ValueType::kFloat64}});
  s.set_clustering_key({"k1", "k2"});
  EXPECT_TRUE(s.ClusteringContainedIn({"k2", "k1", "v"}));
  EXPECT_FALSE(s.ClusteringContainedIn({"k1"}));  // prefix is not enough
}

TEST(SchemaTest, AnyMutable) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.AnyMutable({"a", "b"}));
  EXPECT_FALSE(s.AnyMutable({"a", "c"}));
  EXPECT_FALSE(s.AnyMutable({"ghost"}));  // unknown names are ignored
}

TEST(SchemaTest, SameFieldsIgnoresKeys) {
  Schema a = MakeSchema();
  Schema b = MakeSchema();
  b.set_primary_key({});
  EXPECT_TRUE(a.SameFields(b));
  b.AddField(Field("d", ValueType::kInt64));
  EXPECT_FALSE(a.SameFields(b));
}

TEST(SchemaTest, ToStringMarksMutables) {
  std::string s = MakeSchema().ToString();
  EXPECT_NE(s.find("b:float64*"), std::string::npos);
  EXPECT_NE(s.find("a:int64"), std::string::npos);
}

}  // namespace
}  // namespace wake
