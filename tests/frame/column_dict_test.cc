// Dictionary-encoded string columns: round trips, gathers that share the
// dict (no string copies), cross-dict appends, nulls, and hash/compare
// equivalence with the plain encoding.
#include <gtest/gtest.h>

#include "common/error.h"
#include "frame/column.h"

namespace wake {
namespace {

TEST(ColumnDictTest, EncodeDecodeRoundTrip) {
  Column plain = Column::FromStrings({"a", "b", "a", "c", ""});
  plain.SetNull(3);
  Column dict = plain.EncodeDict();
  ASSERT_TRUE(dict.is_dict());
  EXPECT_EQ(dict.size(), 5u);
  EXPECT_EQ(dict.dict()->size(), 3u);  // "a", "b", "" — null never interned
  EXPECT_EQ(dict.codes()[0], dict.codes()[2]);
  EXPECT_TRUE(dict.IsNull(3));
  Column back = dict.DecodeDict();
  EXPECT_FALSE(back.is_dict());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(back.IsNull(i), plain.IsNull(i));
    if (!plain.IsNull(i)) EXPECT_EQ(back.StringAt(i), plain.StringAt(i));
  }
}

TEST(ColumnDictTest, StringAtWorksUnderBothEncodings) {
  Column dict = Column::DictFromStrings({"x", "y", "x"});
  EXPECT_EQ(dict.StringAt(0), "x");
  EXPECT_EQ(dict.StringAt(1), "y");
  dict.AppendNull();
  EXPECT_EQ(dict.StringAt(3), "");  // null rows read as empty
}

TEST(ColumnDictTest, TakeGathersCodesAndSharesDict) {
  Column c = Column::DictFromStrings({"a", "b", "c", "d"});
  c.SetNull(2);
  Column t = c.Take({3, 2, 0});
  ASSERT_TRUE(t.is_dict());
  // Shared dict identity: the gather copied int32 codes, not strings.
  EXPECT_EQ(t.dict().get(), c.dict().get());
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.StringAt(0), "d");
  EXPECT_TRUE(t.IsNull(1));
  EXPECT_EQ(t.StringAt(2), "a");
}

TEST(ColumnDictTest, FilterByAndSliceShareDict) {
  Column c = Column::DictFromStrings({"a", "b", "c", "d"});
  Column f = c.FilterBy({1, 0, 1, 0});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f.dict().get(), c.dict().get());
  EXPECT_EQ(f.StringAt(1), "c");
  Column s = c.Slice(1, 3);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.dict().get(), c.dict().get());
  EXPECT_EQ(s.StringAt(0), "b");
}

TEST(ColumnDictTest, AppendColumnSameDictConcatenatesCodes) {
  Column c = Column::DictFromStrings({"a", "b"});
  Column d = c.Slice(0, 1);  // shares c's dict
  d.AppendColumn(c);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.dict().get(), c.dict().get());
  EXPECT_EQ(d.StringAt(2), "b");
}

TEST(ColumnDictTest, AppendColumnCrossDictRemaps) {
  Column a = Column::DictFromStrings({"a", "b"});
  Column b = Column::DictFromStrings({"b", "c"});
  b.AppendNull();
  a.AppendColumn(b);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.StringAt(2), "b");
  EXPECT_EQ(a.StringAt(3), "c");
  EXPECT_TRUE(a.IsNull(4));
  // "b" exists once in the remapped dict; codes from both sources agree.
  EXPECT_EQ(a.codes()[1], a.codes()[2]);
  EXPECT_EQ(a.dict()->size(), 3u);
}

TEST(ColumnDictTest, AppendColumnCrossDictCopiesSharedDictFirst) {
  Column a = Column::DictFromStrings({"a"});
  Column alias = a;  // shares a's dict
  Column b = Column::DictFromStrings({"z"});
  a.AppendColumn(b);  // must not intern "z" into the shared pool
  EXPECT_EQ(alias.dict()->size(), 1u);
  EXPECT_NE(a.dict().get(), alias.dict().get());
  EXPECT_EQ(a.StringAt(1), "z");
}

TEST(ColumnDictTest, EmptyPlainDestinationAdoptsDict) {
  Column src = Column::DictFromStrings({"a", "b"});
  Column dst(ValueType::kString);  // plain, empty — e.g. DataFrame(schema)
  dst.AppendColumn(src);
  ASSERT_TRUE(dst.is_dict());
  EXPECT_EQ(dst.dict().get(), src.dict().get());
  EXPECT_EQ(dst.StringAt(1), "b");
}

TEST(ColumnDictTest, AppendPlainIntoDictInterns) {
  Column dict = Column::DictFromStrings({"a"});
  Column plain = Column::FromStrings({"b", "a"});
  plain.SetNull(0);
  dict.AppendColumn(plain);
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_TRUE(dict.IsNull(1));
  EXPECT_EQ(dict.codes()[0], dict.codes()[2]);  // "a" re-used
}

TEST(ColumnDictTest, AppendDictIntoNonEmptyPlainDecodes) {
  Column plain = Column::FromStrings({"p"});
  Column dict = Column::DictFromStrings({"q"});
  plain.AppendColumn(dict);
  EXPECT_FALSE(plain.is_dict());
  EXPECT_EQ(plain.StringAt(1), "q");
}

TEST(ColumnDictTest, HashEqualsPlainEncoding) {
  std::vector<std::string> values = {"", "a", "carefully final deposits",
                                     "Customer#000000042"};
  Column plain = Column::FromStrings(values);
  Column dict = plain.EncodeDict();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(plain.HashRow(i, 7), dict.HashRow(i, 7)) << i;
  }
  std::vector<uint64_t> hp(values.size(), 42), hd(values.size(), 42);
  plain.HashInto(hp.data(), hp.size());
  dict.HashInto(hd.data(), hd.size());
  EXPECT_EQ(hp, hd);
}

TEST(ColumnDictTest, NullHashesMatchAcrossEncodings) {
  Column plain = Column::FromStrings({"a", "b"});
  plain.SetNull(1);
  Column dict = plain.EncodeDict();
  EXPECT_EQ(plain.HashRow(1, 3), dict.HashRow(1, 3));
}

TEST(ColumnDictTest, CompareRowsAcrossEncodings) {
  Column plain = Column::FromStrings({"apple", "banana"});
  Column dict = plain.EncodeDict();
  EXPECT_EQ(dict.CompareRows(0, plain, 0), 0);
  EXPECT_LT(dict.CompareRows(0, plain, 1), 0);
  EXPECT_GT(plain.CompareRows(1, dict, 0), 0);
  // Same dict, equal codes short-circuits.
  EXPECT_EQ(dict.CompareRows(1, dict, 1), 0);
}

TEST(ColumnDictTest, AppendFromAdoptsAndCopiesCodes) {
  Column src = Column::DictFromStrings({"a", "b"});
  src.AppendNull();
  Column dst(ValueType::kString);
  dst.AppendFrom(src, 1);
  ASSERT_TRUE(dst.is_dict());
  EXPECT_EQ(dst.dict().get(), src.dict().get());
  dst.AppendFrom(src, 2);  // null
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.StringAt(0), "b");
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnDictTest, SetNullClearsCode) {
  Column c = Column::DictFromStrings({"a", "b"});
  c.SetNull(0);
  EXPECT_EQ(c.codes()[0], Column::kNullCode);
  EXPECT_TRUE(c.IsNull(0));
  EXPECT_EQ(c.StringAt(1), "b");
}

TEST(ColumnDictTest, GetValueAndAppendValueRoundTrip) {
  Column c = Column::NewDict();
  c.AppendValue(Value::Str("hello"));
  c.AppendValue(Value::Null(ValueType::kString));
  EXPECT_EQ(c.GetValue(0).s, "hello");
  EXPECT_TRUE(c.GetValue(1).is_null);
}

TEST(ColumnDictTest, ByteSizeCountsCodesAndDict) {
  Column c = Column::NewDict();
  std::string long_str(300, 'x');
  for (int i = 0; i < 1000; ++i) c.AppendString(long_str + std::to_string(i));
  // 1000 int32 codes + 1000 distinct ~300-byte pool entries.
  EXPECT_GE(c.ByteSize(), 1000 * sizeof(int32_t) + 1000 * 300u);
  // Codes dominate growth once the dict saturates: appending existing
  // values adds 4 bytes/row, not a string.
  size_t before = c.ByteSize();
  for (int i = 0; i < 1000; ++i) c.AppendString(long_str + "0");
  size_t growth = c.ByteSize() - before;
  EXPECT_LT(growth, 1000 * sizeof(std::string));
}

}  // namespace
}  // namespace wake
