// ValidityBitmap: word-packed null masks. Edge cases around the 64-bit
// word boundary (lengths 1/63/64/65/...), lazy allocation (empty ==
// all-valid), the padding invariant (bits past size() always set),
// unaligned Slice/AppendBitmap splices, packed-byte round trips, and a
// property test checking the bitmap-backed Column kernels against a
// byte-per-row reference model.
#include "frame/validity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "frame/column.h"

namespace wake {
namespace {

// Reference model: one byte per row, 1 = valid.
std::vector<uint8_t> ToModel(const ValidityBitmap& v, size_t n) {
  std::vector<uint8_t> m(n, 1);
  for (size_t i = 0; i < n; ++i) m[i] = v.empty() ? 1 : (v.Get(i) ? 1 : 0);
  return m;
}

ValidityBitmap FromModel(const std::vector<uint8_t>& m) {
  return ValidityBitmap::FromBoolBytes(m.data(), m.size());
}

TEST(ValidityBitmapTest, EmptyMeansAllValid) {
  ValidityBitmap v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.bits(), 0u);
  EXPECT_EQ(v.CountNulls(), 0u);
  EXPECT_TRUE(v.AllValid());
}

TEST(ValidityBitmapTest, NonMultipleOf64Lengths) {
  for (size_t n : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 129u, 200u, 1000u}) {
    ValidityBitmap v = ValidityBitmap::AllValid(n);
    EXPECT_EQ(v.bits(), n);
    EXPECT_EQ(v.num_words(), (n + 63) / 64);
    EXPECT_TRUE(v.AllValid()) << n;
    EXPECT_EQ(v.CountNulls(), 0u) << n;
    // Null out the last row only: the padding bits past n must not leak
    // into the count, and AllValid must flip exactly then.
    v.SetNull(n - 1);
    EXPECT_FALSE(v.AllValid()) << n;
    EXPECT_EQ(v.CountNulls(), 1u) << n;
    EXPECT_FALSE(v.Get(n - 1));
    if (n > 1) EXPECT_TRUE(v.Get(n - 2));
    v.SetValid(n - 1);
    EXPECT_TRUE(v.AllValid()) << n;
  }
}

TEST(ValidityBitmapTest, AllNullMask) {
  const size_t n = 130;
  ValidityBitmap v = ValidityBitmap::AllValid(n);
  for (size_t i = 0; i < n; ++i) v.SetNull(i);
  EXPECT_EQ(v.CountNulls(), n);
  EXPECT_FALSE(v.AllValid());
  for (size_t i = 0; i < n; ++i) EXPECT_FALSE(v.Get(i));
  // Padding stays set even when every real bit is clear.
  EXPECT_EQ(v.words()[v.num_words() - 1] >> (n % 64), ~0ULL >> (n % 64));
}

TEST(ValidityBitmapTest, AppendBitPadsNewWordsValid) {
  ValidityBitmap v;
  for (size_t i = 0; i < 150; ++i) v.Append(i % 3 != 0);
  EXPECT_EQ(v.bits(), 150u);
  for (size_t i = 0; i < 150; ++i) EXPECT_EQ(v.Get(i), i % 3 != 0) << i;
  EXPECT_EQ(v.CountNulls(), 50u);
}

TEST(ValidityBitmapTest, AppendAllValidThenNulls) {
  ValidityBitmap v;
  v.AppendAllValid(70);
  EXPECT_EQ(v.bits(), 70u);
  EXPECT_TRUE(v.AllValid());
  v.Append(false);
  EXPECT_EQ(v.bits(), 71u);
  EXPECT_EQ(v.CountNulls(), 1u);
  EXPECT_FALSE(v.Get(70));
}

TEST(ValidityBitmapTest, SliceAtUnalignedOffsets) {
  const size_t n = 300;
  std::vector<uint8_t> model(n);
  std::mt19937_64 rng(7);
  for (size_t i = 0; i < n; ++i) model[i] = (rng() % 4 != 0) ? 1 : 0;
  ValidityBitmap v = FromModel(model);
  for (size_t begin : {0u, 1u, 63u, 64u, 65u, 100u, 191u, 192u, 193u}) {
    for (size_t len : {0u, 1u, 5u, 63u, 64u, 65u, 107u}) {
      if (begin + len > n) continue;
      ValidityBitmap s = v.Slice(begin, begin + len);
      EXPECT_EQ(s.bits(), len);
      for (size_t i = 0; i < len; ++i) {
        EXPECT_EQ(s.Get(i), model[begin + i] != 0)
            << "begin=" << begin << " len=" << len << " i=" << i;
      }
      // The slice must satisfy the padding invariant too.
      EXPECT_EQ(s.CountNulls(), static_cast<size_t>(std::count(
                                    model.begin() + begin,
                                    model.begin() + begin + len, 0)));
    }
  }
}

TEST(ValidityBitmapTest, AppendBitmapAtUnalignedOffsets) {
  std::mt19937_64 rng(11);
  for (size_t left_n : {0u, 1u, 37u, 64u, 65u, 130u}) {
    for (size_t right_n : {0u, 1u, 50u, 64u, 100u, 200u}) {
      std::vector<uint8_t> lm(left_n), rm(right_n);
      for (auto& b : lm) b = (rng() % 3 != 0) ? 1 : 0;
      for (auto& b : rm) b = (rng() % 3 != 0) ? 1 : 0;
      ValidityBitmap v = FromModel(lm);
      v.AppendBitmap(FromModel(rm));
      ASSERT_EQ(v.bits(), left_n + right_n);
      for (size_t i = 0; i < left_n; ++i) {
        EXPECT_EQ(v.Get(i), lm[i] != 0) << left_n << "+" << right_n;
      }
      for (size_t i = 0; i < right_n; ++i) {
        EXPECT_EQ(v.Get(left_n + i), rm[i] != 0) << left_n << "+" << right_n;
      }
    }
  }
}

TEST(ValidityBitmapTest, PackedBytesRoundTrip) {
  for (size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u}) {
    std::vector<uint8_t> model(n);
    std::mt19937_64 rng(n);
    for (auto& b : model) b = (rng() % 2) ? 1 : 0;
    ValidityBitmap v = FromModel(model);
    std::vector<uint8_t> packed((n + 7) / 8);
    v.ToPackedBytes(packed.data());
    ValidityBitmap back = ValidityBitmap::FromPackedBytes(packed.data(), n);
    EXPECT_EQ(v, back) << n;
    // Bit order matches the wakeblock layout: bits[r/8] >> (r%8).
    for (size_t r = 0; r < n; ++r) {
      EXPECT_EQ((packed[r / 8] >> (r % 8)) & 1, model[r]) << n << ":" << r;
    }
  }
}

TEST(ValidityBitmapTest, FromPackedBytesNormalizesForgedPadding) {
  // Trailing bits in the last byte past n are meaningless on disk; a
  // forged (zeroed or random) tail must not corrupt CountNulls/AllValid.
  const size_t n = 10;  // 2 bytes, 6 padding bits
  std::vector<uint8_t> packed = {0xff, 0x03};  // all 10 rows valid
  ValidityBitmap clean = ValidityBitmap::FromPackedBytes(packed.data(), n);
  EXPECT_TRUE(clean.AllValid());
  packed[1] = 0xc3;  // forge two padding bits high... still all valid
  EXPECT_TRUE(ValidityBitmap::FromPackedBytes(packed.data(), n).AllValid());
  packed[1] = 0x02;  // row 8 null, padding zero
  ValidityBitmap v = ValidityBitmap::FromPackedBytes(packed.data(), n);
  EXPECT_EQ(v.CountNulls(), 1u);
  EXPECT_FALSE(v.Get(8));
  // ToPackedBytes emits canonical zero padding regardless of input tail.
  std::vector<uint8_t> out(2, 0xaa);
  v.ToPackedBytes(out.data());
  EXPECT_EQ(out[1], 0x02);
}

TEST(ValidityBitmapTest, BoolBytesRoundTrip) {
  std::vector<uint8_t> model = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 1};
  ValidityBitmap v = FromModel(model);
  std::vector<uint8_t> out(model.size(), 9);
  v.ToBoolBytes(out.data());
  EXPECT_EQ(out, model);
  EXPECT_EQ(v.CountNulls(), 5u);
}

// ---------------------------------------------------------------------------
// Column-level behavior: lazy allocation and the byte-model property test.
// ---------------------------------------------------------------------------

TEST(ValidityBitmapColumnTest, LazyAllocationContract) {
  Column c = Column::FromInts({1, 2, 3});
  EXPECT_TRUE(c.validity().empty());  // never touched => no allocation
  EXPECT_FALSE(c.has_nulls());
  c.SetNull(1);
  EXPECT_FALSE(c.validity().empty());
  EXPECT_TRUE(c.IsNull(1));
  c.mutable_validity()->SetValid(1);
  c.CompactValidity();
  EXPECT_TRUE(c.validity().empty());  // all-valid compacts back to lazy
}

// Random columns with nulls pushed through the gather/filter/append/hash
// kernels; every step is checked against a byte-per-row reference model.
TEST(ValidityBitmapColumnTest, PropertyPackedMatchesByteModel) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t n = 100 + static_cast<size_t>(rng() % 400);
    std::vector<int64_t> ints(n);
    std::vector<uint8_t> model(n);
    for (size_t i = 0; i < n; ++i) {
      ints[i] = static_cast<int64_t>(rng() % 1000);
      model[i] = (rng() % 5 != 0) ? 1 : 0;
    }
    Column col = Column::FromInts(ints);
    for (size_t i = 0; i < n; ++i) {
      if (!model[i]) col.SetNull(i);
    }

    // IsNull agrees with the model.
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(col.IsNull(i), model[i] == 0) << trial << ":" << i;
    }

    // Take: gathered rows carry gathered validity.
    std::vector<uint32_t> idx;
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 2) idx.push_back(static_cast<uint32_t>(rng() % n));
    }
    Column taken = col.Take(idx);
    ASSERT_EQ(taken.size(), idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      ASSERT_EQ(taken.IsNull(i), model[idx[i]] == 0) << trial << ":" << i;
    }

    // FilterBy: kept rows carry their validity.
    std::vector<uint8_t> mask(n);
    for (auto& b : mask) b = (rng() % 2) ? 1 : 0;
    Column filtered = col.FilterBy(mask);
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      ASSERT_EQ(filtered.IsNull(out), model[i] == 0) << trial << ":" << i;
      ++out;
    }
    ASSERT_EQ(filtered.size(), out);

    // SelectionFrom treats null mask rows as not-selected.
    Column pred = Column::FromInts(std::vector<int64_t>(mask.begin(),
                                                        mask.end()));
    pred.SetNull(0);
    std::vector<uint32_t> sel = Column::SelectionFrom(pred);
    std::vector<uint32_t> want;
    for (size_t i = 1; i < n; ++i) {
      if (mask[i]) want.push_back(static_cast<uint32_t>(i));
    }
    ASSERT_EQ(sel, want) << trial;

    // AppendColumn at an unaligned length: both halves keep their masks.
    Column appended = col.Slice(0, n / 3);
    appended.AppendColumn(col.Slice(n / 3, n));
    ASSERT_EQ(appended.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(appended.IsNull(i), model[i] == 0) << trial << ":" << i;
    }

    // HashInto (batch, word-wise) == HashRow (per row).
    std::vector<uint64_t> hashes(n, 0x9e3779b97f4a7c15ULL);
    std::vector<uint64_t> expect = hashes;
    col.HashInto(hashes.data(), n);
    for (size_t i = 0; i < n; ++i) {
      expect[i] = col.HashRow(i, expect[i]);
    }
    ASSERT_EQ(hashes, expect) << trial;

    // Slice at unaligned offsets preserves the model.
    const size_t b = 1 + static_cast<size_t>(rng() % (n - 1));
    Column sliced = col.Slice(b, n);
    for (size_t i = b; i < n; ++i) {
      ASSERT_EQ(sliced.IsNull(i - b), model[i] == 0) << trial << ":" << i;
    }
  }
}

// The same property for dict-encoded string columns, whose hash kernel
// takes the pre-hashed-dictionary path.
TEST(ValidityBitmapColumnTest, DictHashBatchMatchesPerRow) {
  std::vector<std::string> vals;
  for (int i = 0; i < 300; ++i) vals.push_back("k" + std::to_string(i % 17));
  Column dict = Column::DictFromStrings(vals);
  for (size_t i = 0; i < vals.size(); i += 7) dict.SetNull(i);
  std::vector<uint64_t> hashes(vals.size(), 5);
  std::vector<uint64_t> expect(vals.size(), 5);
  dict.HashInto(hashes.data(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    expect[i] = dict.HashRow(i, expect[i]);
  }
  EXPECT_EQ(hashes, expect);
}

}  // namespace
}  // namespace wake
