#include "frame/expr.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

DataFrame TestFrame() {
  Schema schema({{"i", ValueType::kInt64},
                 {"f", ValueType::kFloat64},
                 {"s", ValueType::kString},
                 {"d", ValueType::kDate}});
  DataFrame df(schema);
  *df.mutable_column(0) = Column::FromInts({1, 2, 3});
  *df.mutable_column(1) = Column::FromDoubles({0.5, 1.5, 2.5});
  *df.mutable_column(2) =
      Column::FromStrings({"PROMO TIN", "STANDARD BRASS", "PROMO BRASS"});
  *df.mutable_column(3) = Column::FromInts(
      {DateToDays(1994, 5, 1), DateToDays(1995, 7, 1), DateToDays(1996, 1, 1)},
      ValueType::kDate);
  return df;
}

TEST(ExprTest, ColumnAndLiteral) {
  DataFrame df = TestFrame();
  Column c = Expr::Col("i")->Eval(df);
  EXPECT_EQ(c.IntAt(2), 3);
  Column lit = Expr::Int(7)->Eval(df);
  ASSERT_EQ(lit.size(), 3u);
  EXPECT_EQ(lit.IntAt(0), 7);
}

TEST(ExprTest, UnknownColumnThrows) {
  DataFrame df = TestFrame();
  EXPECT_THROW(Expr::Col("zzz")->Eval(df), Error);
}

TEST(ExprTest, IntArithmeticStaysInt) {
  DataFrame df = TestFrame();
  Column c = (Expr::Col("i") * Expr::Int(10) + Expr::Int(1))->Eval(df);
  EXPECT_EQ(c.type(), ValueType::kInt64);
  EXPECT_EQ(c.IntAt(1), 21);
}

TEST(ExprTest, MixedArithmeticPromotesToFloat) {
  DataFrame df = TestFrame();
  Column c = (Expr::Col("i") + Expr::Col("f"))->Eval(df);
  EXPECT_EQ(c.type(), ValueType::kFloat64);
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 1.5);
}

TEST(ExprTest, DivisionAlwaysFloatAndGuardsZero) {
  DataFrame df = TestFrame();
  Column c = (Expr::Col("i") / Expr::Int(2))->Eval(df);
  EXPECT_EQ(c.type(), ValueType::kFloat64);
  EXPECT_DOUBLE_EQ(c.DoubleAt(2), 1.5);
  Column z = (Expr::Col("i") / Expr::Int(0))->Eval(df);
  EXPECT_DOUBLE_EQ(z.DoubleAt(0), 0.0);  // div-by-zero yields 0, not inf
}

TEST(ExprTest, Comparisons) {
  DataFrame df = TestFrame();
  Column ge = Ge(Expr::Col("i"), Expr::Int(2))->Eval(df);
  EXPECT_EQ(ge.IntAt(0), 0);
  EXPECT_EQ(ge.IntAt(1), 1);
  EXPECT_EQ(ge.IntAt(2), 1);
  Column ne = Ne(Expr::Col("s"), Expr::Str("PROMO TIN"))->Eval(df);
  EXPECT_EQ(ne.IntAt(0), 0);
  EXPECT_EQ(ne.IntAt(1), 1);
}

TEST(ExprTest, MixedNumericComparison) {
  DataFrame df = TestFrame();
  Column c = Lt(Expr::Col("f"), Expr::Col("i"))->Eval(df);  // 0.5<1, 1.5<2, 2.5<3
  EXPECT_EQ(c.IntAt(0), 1);
  EXPECT_EQ(c.IntAt(1), 1);
  EXPECT_EQ(c.IntAt(2), 1);
}

TEST(ExprTest, DateComparison) {
  DataFrame df = TestFrame();
  Column c = Lt(Expr::Col("d"), Expr::Date(1995, 1, 1))->Eval(df);
  EXPECT_EQ(c.IntAt(0), 1);
  EXPECT_EQ(c.IntAt(1), 0);
}

TEST(ExprTest, LogicAndOrNot) {
  DataFrame df = TestFrame();
  auto a = Gt(Expr::Col("i"), Expr::Int(1));
  auto b = Lt(Expr::Col("f"), Expr::Float(2.0));
  Column band = Expr::And(a, b)->Eval(df);
  EXPECT_EQ(band.IntAt(0), 0);
  EXPECT_EQ(band.IntAt(1), 1);
  EXPECT_EQ(band.IntAt(2), 0);
  Column bor = Expr::Or(a, b)->Eval(df);
  EXPECT_EQ(bor.IntAt(0), 1);
  EXPECT_EQ(bor.IntAt(2), 1);
  Column bnot = Expr::Not(a)->Eval(df);
  EXPECT_EQ(bnot.IntAt(0), 1);
  EXPECT_EQ(bnot.IntAt(1), 0);
}

TEST(ExprTest, LikeAndIn) {
  DataFrame df = TestFrame();
  Column like = Expr::Like(Expr::Col("s"), "PROMO%")->Eval(df);
  EXPECT_EQ(like.IntAt(0), 1);
  EXPECT_EQ(like.IntAt(1), 0);
  EXPECT_EQ(like.IntAt(2), 1);
  Column in = Expr::In(Expr::Col("i"),
                       {Value::Int(1), Value::Int(3)})->Eval(df);
  EXPECT_EQ(in.IntAt(0), 1);
  EXPECT_EQ(in.IntAt(1), 0);
  EXPECT_EQ(in.IntAt(2), 1);
}

TEST(ExprTest, LikeOverNonStringThrows) {
  DataFrame df = TestFrame();
  EXPECT_THROW(Expr::Like(Expr::Col("i"), "%x%")->Eval(df), Error);
}

TEST(ExprTest, CaseWhen) {
  DataFrame df = TestFrame();
  Column c = Expr::Case(Gt(Expr::Col("i"), Expr::Int(1)), Expr::Col("f"),
                        Expr::Float(0.0))
                 ->Eval(df);
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 0.0);
  EXPECT_DOUBLE_EQ(c.DoubleAt(1), 1.5);
}

TEST(ExprTest, CaseMixedIntFloatPromotes) {
  DataFrame df = TestFrame();
  Column c = Expr::Case(Gt(Expr::Col("i"), Expr::Int(1)), Expr::Col("i"),
                        Expr::Float(0.5))
                 ->Eval(df);
  EXPECT_EQ(c.type(), ValueType::kFloat64);
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 0.5);
  EXPECT_DOUBLE_EQ(c.DoubleAt(2), 3.0);
}

TEST(ExprTest, CoalesceReplacesNulls) {
  Schema schema({{"x", ValueType::kInt64}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(5);
  df.mutable_column(0)->AppendNull();
  Column c = Expr::Coalesce(Expr::Col("x"), Value::Int(0))->Eval(df);
  EXPECT_EQ(c.IntAt(0), 5);
  EXPECT_EQ(c.IntAt(1), 0);
  EXPECT_FALSE(c.has_nulls());
}

TEST(ExprTest, SubstrIsOneBased) {
  DataFrame df = TestFrame();
  Column c = Expr::Substr(Expr::Col("s"), 1, 5)->Eval(df);
  EXPECT_EQ(c.StringAt(0), "PROMO");
  Column c2 = Expr::Substr(Expr::Col("s"), 7, 3)->Eval(df);
  EXPECT_EQ(c2.StringAt(0), "TIN");
}

TEST(ExprTest, Year) {
  DataFrame df = TestFrame();
  Column c = Expr::Year(Expr::Col("d"))->Eval(df);
  EXPECT_EQ(c.IntAt(0), 1994);
  EXPECT_EQ(c.IntAt(2), 1996);
}

TEST(ExprTest, NullPropagationThroughArithmetic) {
  Schema schema({{"x", ValueType::kInt64}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(1);
  df.mutable_column(0)->AppendNull();
  Column c = (Expr::Col("x") + Expr::Int(1))->Eval(df);
  EXPECT_EQ(c.IntAt(0), 2);
  EXPECT_TRUE(c.IsNull(1));
  // Comparisons with null are false, not null.
  Column cmp = Gt(Expr::Col("x"), Expr::Int(0))->Eval(df);
  EXPECT_EQ(cmp.IntAt(0), 1);
  EXPECT_EQ(cmp.IntAt(1), 0);
}

TEST(ExprTest, IsNull) {
  Schema schema({{"x", ValueType::kInt64}});
  DataFrame df(schema);
  df.mutable_column(0)->AppendInt(5);
  df.mutable_column(0)->AppendNull();
  Column c = Expr::IsNull(Expr::Col("x"))->Eval(df);
  EXPECT_EQ(c.IntAt(0), 0);
  EXPECT_EQ(c.IntAt(1), 1);
  Column nn = Expr::Not(Expr::IsNull(Expr::Col("x")))->Eval(df);
  EXPECT_EQ(nn.IntAt(0), 1);
  EXPECT_EQ(nn.IntAt(1), 0);
  EXPECT_EQ(Expr::IsNull(Expr::Col("x"))->ResultType(schema),
            ValueType::kBool);
  EXPECT_NE(Expr::IsNull(Expr::Col("x"))->ToString().find("IS NULL"),
            std::string::npos);
}

TEST(ExprTest, ResultTypeInference) {
  Schema schema = TestFrame().schema();
  EXPECT_EQ(Expr::Col("i")->ResultType(schema), ValueType::kInt64);
  EXPECT_EQ((Expr::Col("i") + Expr::Col("f"))->ResultType(schema),
            ValueType::kFloat64);
  EXPECT_EQ((Expr::Col("i") / Expr::Int(2))->ResultType(schema),
            ValueType::kFloat64);
  EXPECT_EQ(Gt(Expr::Col("i"), Expr::Int(0))->ResultType(schema),
            ValueType::kBool);
  EXPECT_EQ(Expr::Substr(Expr::Col("s"), 1, 2)->ResultType(schema),
            ValueType::kString);
  EXPECT_EQ(Expr::Year(Expr::Col("d"))->ResultType(schema),
            ValueType::kInt64);
}

TEST(ExprTest, CollectColumnsAndReadsMutable) {
  Schema schema({{"a", ValueType::kFloat64, /*mut=*/true},
                 {"b", ValueType::kFloat64, /*mut=*/false}});
  auto e = Expr::Col("a") + Expr::Col("b");
  std::set<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"a", "b"}));
  EXPECT_TRUE(e->ReadsMutable(schema));
  EXPECT_FALSE(Expr::Col("b")->ReadsMutable(schema));
}

TEST(ExprTest, ToStringIsReadable) {
  auto e = Expr::And(Gt(Expr::Col("x"), Expr::Int(3)),
                     Expr::Like(Expr::Col("s"), "a%"));
  std::string s = e->ToString();
  EXPECT_NE(s.find("x > 3"), std::string::npos);
  EXPECT_NE(s.find("LIKE 'a%'"), std::string::npos);
}

// --- variance propagation (§6) ---

TEST(ExprVarianceTest, ColumnPassesVarianceThrough) {
  DataFrame df = TestFrame();
  std::vector<double> var_f = {1.0, 2.0, 3.0};
  std::unordered_map<std::string, const std::vector<double>*> vars{
      {"f", &var_f}};
  Column value;
  std::vector<double> var;
  Expr::Col("f")->EvalWithVariance(df, vars, &value, &var);
  EXPECT_EQ(var, var_f);
  Expr::Col("i")->EvalWithVariance(df, vars, &value, &var);
  EXPECT_EQ(var, std::vector<double>(3, 0.0));
}

TEST(ExprVarianceTest, SumOfIndependents) {
  DataFrame df = TestFrame();
  std::vector<double> var_f = {1.0, 2.0, 3.0};
  std::unordered_map<std::string, const std::vector<double>*> vars{
      {"f", &var_f}};
  Column value;
  std::vector<double> var;
  (Expr::Col("f") + Expr::Col("f"))->EvalWithVariance(df, vars, &value, &var);
  EXPECT_DOUBLE_EQ(var[0], 2.0);  // Var(A)+Var(B) under independence
}

TEST(ExprVarianceTest, ProductRule) {
  DataFrame df = TestFrame();
  std::vector<double> var_f = {4.0, 4.0, 4.0};
  std::unordered_map<std::string, const std::vector<double>*> vars{
      {"f", &var_f}};
  Column value;
  std::vector<double> var;
  (Expr::Col("f") * Expr::Int(10))->EvalWithVariance(df, vars, &value, &var);
  // Var(cX) = c² Var(X) = 100 * 4.
  EXPECT_DOUBLE_EQ(var[0], 400.0);
}

TEST(ExprVarianceTest, QuotientRule) {
  DataFrame df = TestFrame();
  std::vector<double> var_f = {1.0, 1.0, 1.0};
  std::unordered_map<std::string, const std::vector<double>*> vars{
      {"f", &var_f}};
  Column value;
  std::vector<double> var;
  (Expr::Col("f") / Expr::Float(2.0))->EvalWithVariance(df, vars, &value,
                                                        &var);
  EXPECT_DOUBLE_EQ(var[0], 0.25);  // Var(X/2) = Var(X)/4
}

TEST(ExprVarianceTest, NonDifferentiableNodesYieldZero) {
  DataFrame df = TestFrame();
  std::vector<double> var_f = {1.0, 1.0, 1.0};
  std::unordered_map<std::string, const std::vector<double>*> vars{
      {"f", &var_f}};
  Column value;
  std::vector<double> var;
  Gt(Expr::Col("f"), Expr::Float(1.0))->EvalWithVariance(df, vars, &value,
                                                         &var);
  EXPECT_EQ(var, std::vector<double>(3, 0.0));
}

}  // namespace
}  // namespace wake
