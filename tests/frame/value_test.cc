#include "frame/value.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

TEST(DateTest, EpochIsZero) { EXPECT_EQ(DateToDays(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DateToDays(1970, 1, 2), 1);
  EXPECT_EQ(DateToDays(1969, 12, 31), -1);
  EXPECT_EQ(DateToDays(2000, 3, 1) - DateToDays(2000, 2, 28), 2);  // leap
  EXPECT_EQ(DateToDays(1900, 3, 1) - DateToDays(1900, 2, 28), 1);  // no leap
}

TEST(DateTest, RoundTripsAcrossTpchRange) {
  for (int64_t d = DateToDays(1992, 1, 1); d <= DateToDays(1998, 12, 31);
       d += 13) {
    int y, m, dd;
    DaysToDate(d, &y, &m, &dd);
    EXPECT_EQ(DateToDays(y, m, dd), d);
  }
}

TEST(DateTest, FormatAndParse) {
  int64_t days = DateToDays(1995, 6, 17);
  EXPECT_EQ(FormatDate(days), "1995-06-17");
  EXPECT_EQ(ParseDate("1995-06-17"), days);
  EXPECT_EQ(ParseDate(FormatDate(DateToDays(1992, 1, 1))), 8035);
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_THROW(ParseDate("not-a-date"), Error);
  EXPECT_THROW(ParseDate("1995-13-01"), Error);
  EXPECT_THROW(ParseDate("1995-00-10"), Error);
}

TEST(DateTest, ExtractYear) {
  EXPECT_EQ(ExtractYear(DateToDays(1995, 1, 1)), 1995);
  EXPECT_EQ(ExtractYear(DateToDays(1995, 12, 31)), 1995);
  EXPECT_EQ(ExtractYear(DateToDays(1996, 1, 1)), 1996);
}

TEST(ValueTest, Factories) {
  EXPECT_EQ(Value::Int(5).i, 5);
  EXPECT_EQ(Value::Float(2.5).d, 2.5);
  EXPECT_EQ(Value::Str("x").s, "x");
  EXPECT_TRUE(Value::Null(ValueType::kInt64).is_null);
  EXPECT_EQ(Value::Bool(true).i, 1);
}

TEST(ValueTest, AsDoublePromotesInts) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Float(3.5).AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(Value::Date(10).AsDouble(), 10.0);
}

TEST(ValueTest, EqualityAcrossNumericTypes) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_EQ(Value::Float(3.0), Value::Int(3));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_FALSE(Value::Str("a") == Value::Str("b"));
  EXPECT_EQ(Value::Null(ValueType::kInt64), Value::Null(ValueType::kInt64));
  EXPECT_FALSE(Value::Null(ValueType::kInt64) == Value::Int(0));
}

TEST(ValueTest, OrderingWithNullsFirst) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_FALSE(Value::Int(2) < Value::Int(1));
  EXPECT_TRUE(Value::Null(ValueType::kInt64) < Value::Int(-100));
  EXPECT_TRUE(Value::Str("a") < Value::Str("b"));
  EXPECT_TRUE(Value::Float(1.5) < Value::Int(2));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Null(ValueType::kInt64).ToString(), "NULL");
  EXPECT_EQ(Value::Date(DateToDays(1994, 2, 3)).ToString(), "1994-02-03");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kFloat64), "float64");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
  EXPECT_STREQ(ValueTypeName(ValueType::kDate), "date");
}

TEST(ValueTypeTest, Predicates) {
  EXPECT_TRUE(IsIntPhysical(ValueType::kDate));
  EXPECT_TRUE(IsIntPhysical(ValueType::kBool));
  EXPECT_FALSE(IsIntPhysical(ValueType::kFloat64));
  EXPECT_TRUE(IsNumeric(ValueType::kFloat64));
  EXPECT_FALSE(IsNumeric(ValueType::kString));
}

}  // namespace
}  // namespace wake
