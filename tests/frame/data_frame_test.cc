#include "frame/data_frame.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

DataFrame MakeFrame() {
  Schema schema({{"k", ValueType::kInt64},
                 {"v", ValueType::kFloat64},
                 {"s", ValueType::kString}});
  DataFrame df(schema);
  *df.mutable_column(0) = Column::FromInts({3, 1, 2, 1});
  *df.mutable_column(1) = Column::FromDoubles({30.0, 10.0, 20.0, 11.0});
  *df.mutable_column(2) = Column::FromStrings({"c", "a", "b", "a"});
  return df;
}

TEST(DataFrameTest, ConstructionFromSchema) {
  DataFrame df = MakeFrame();
  EXPECT_EQ(df.num_rows(), 4u);
  EXPECT_EQ(df.num_columns(), 3u);
  EXPECT_EQ(df.ColumnByName("v").DoubleAt(2), 20.0);
  EXPECT_THROW(df.ColumnByName("nope"), Error);
}

TEST(DataFrameTest, AddColumnValidatesRowCount) {
  DataFrame df = MakeFrame();
  EXPECT_THROW(
      df.AddColumn(Field("w", ValueType::kInt64), Column::FromInts({1})),
      Error);
  df.AddColumn(Field("w", ValueType::kInt64),
               Column::FromInts({1, 2, 3, 4}));
  EXPECT_EQ(df.num_columns(), 4u);
}

TEST(DataFrameTest, TakeAndFilter) {
  DataFrame df = MakeFrame();
  DataFrame t = df.Take({2, 0});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).IntAt(0), 2);
  EXPECT_EQ(t.column(2).StringAt(1), "c");

  DataFrame f = df.FilterBy({0, 1, 0, 1});
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_EQ(f.column(0).IntAt(0), 1);
  EXPECT_EQ(f.column(0).IntAt(1), 1);
}

TEST(DataFrameTest, SliceAndHead) {
  DataFrame df = MakeFrame();
  EXPECT_EQ(df.Slice(1, 3).num_rows(), 2u);
  EXPECT_EQ(df.Head(2).num_rows(), 2u);
  EXPECT_EQ(df.Head(100).num_rows(), 4u);
}

TEST(DataFrameTest, SelectReordersColumns) {
  DataFrame df = MakeFrame();
  DataFrame s = df.Select({"s", "k"});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.schema().field(0).name, "s");
  EXPECT_EQ(s.column(1).IntAt(0), 3);
}

TEST(DataFrameTest, AppendChecksSchema) {
  DataFrame a = MakeFrame();
  DataFrame b = MakeFrame();
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 8u);
  Schema other({{"x", ValueType::kInt64}});
  DataFrame c(other);
  EXPECT_THROW(a.Append(c), Error);
}

TEST(DataFrameTest, AppendIntoEmptyAdoptsSchema) {
  DataFrame empty;
  empty.Append(MakeFrame());
  EXPECT_EQ(empty.num_rows(), 4u);
  EXPECT_EQ(empty.num_columns(), 3u);
}

TEST(DataFrameTest, SortBySingleKey) {
  DataFrame df = MakeFrame();
  DataFrame sorted = df.SortBy({{"k", false}});
  EXPECT_EQ(sorted.column(0).IntAt(0), 1);
  EXPECT_EQ(sorted.column(0).IntAt(3), 3);
}

TEST(DataFrameTest, SortByIsStableAndHandlesDescending) {
  DataFrame df = MakeFrame();
  DataFrame sorted = df.SortBy({{"k", false}, {"v", true}});
  // k=1 rows: v=11 then v=10 (descending by v).
  EXPECT_EQ(sorted.column(1).DoubleAt(0), 11.0);
  EXPECT_EQ(sorted.column(1).DoubleAt(1), 10.0);
}

TEST(DataFrameTest, SortStringsDescending) {
  DataFrame df = MakeFrame();
  DataFrame sorted = df.SortBy({{"s", true}});
  EXPECT_EQ(sorted.column(2).StringAt(0), "c");
  EXPECT_EQ(sorted.column(2).StringAt(3), "a");
}

TEST(DataFrameTest, KeysEqualAndHash) {
  DataFrame df = MakeFrame();
  std::vector<size_t> cols = {0, 2};
  EXPECT_TRUE(df.KeysEqual(cols, 1, df, cols, 3));   // (1,"a") == (1,"a")
  EXPECT_FALSE(df.KeysEqual(cols, 0, df, cols, 1));
  EXPECT_EQ(df.HashRowKeys(cols, 1), df.HashRowKeys(cols, 3));
}

TEST(DataFrameTest, ApproxEqualsToleratesFloatNoise) {
  DataFrame a = MakeFrame();
  DataFrame b = MakeFrame();
  (*b.mutable_column(1)->mutable_doubles())[0] += 1e-12;
  std::string diff;
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9, &diff)) << diff;
  (*b.mutable_column(1)->mutable_doubles())[0] += 1.0;
  EXPECT_FALSE(a.ApproxEquals(b, 1e-9, &diff));
  EXPECT_NE(diff.find("v"), std::string::npos);
}

TEST(DataFrameTest, ApproxEqualsCatchesRowCountAndSchema) {
  DataFrame a = MakeFrame();
  std::string diff;
  EXPECT_FALSE(a.ApproxEquals(a.Head(2), 1e-9, &diff));
  DataFrame renamed = MakeFrame();
  renamed.mutable_schema()->mutable_field(0)->name = "zz";
  EXPECT_FALSE(a.ApproxEquals(renamed, 1e-9, &diff));
}

TEST(DataFrameTest, ToStringShowsHeaderAndRows) {
  std::string s = MakeFrame().ToString(2);
  EXPECT_NE(s.find("k | v | s"), std::string::npos);
  EXPECT_NE(s.find("4 rows total"), std::string::npos);
}

TEST(BuildGroupsTest, GroupsByKey) {
  DataFrame df = MakeFrame();
  GroupIndex gi = BuildGroups(df, {"k"});
  EXPECT_EQ(gi.num_groups, 3u);
  EXPECT_EQ(gi.group_of_row[1], gi.group_of_row[3]);  // both k=1
  EXPECT_NE(gi.group_of_row[0], gi.group_of_row[1]);
}

TEST(BuildGroupsTest, MultiColumnKeys) {
  DataFrame df = MakeFrame();
  GroupIndex gi = BuildGroups(df, {"k", "s"});
  EXPECT_EQ(gi.num_groups, 3u);  // (3,c), (1,a), (2,b); (1,a) repeats
}

TEST(BuildGroupsTest, EmptyKeysMeansGlobalGroup) {
  DataFrame df = MakeFrame();
  GroupIndex gi = BuildGroups(df, {});
  EXPECT_EQ(gi.num_groups, 1u);
  for (uint32_t g : gi.group_of_row) EXPECT_EQ(g, 0u);
}

TEST(BuildGroupsTest, EmptyFrameHasNoGroups) {
  Schema schema({{"k", ValueType::kInt64}});
  DataFrame df(schema);
  EXPECT_EQ(BuildGroups(df, {}).num_groups, 0u);
  EXPECT_EQ(BuildGroups(df, {"k"}).num_groups, 0u);
}

}  // namespace
}  // namespace wake
