#include "frame/column.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wake {
namespace {

TEST(ColumnTest, FromIntsBasics) {
  Column c = Column::FromInts({1, 2, 3});
  EXPECT_EQ(c.type(), ValueType::kInt64);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.IntAt(1), 2);
  EXPECT_FALSE(c.has_nulls());
}

TEST(ColumnTest, AppendNullAllocatesMask) {
  Column c = Column::FromInts({1, 2});
  c.AppendNull();
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.has_nulls());
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_TRUE(c.IsNull(2));
}

TEST(ColumnTest, SetNullThenCompact) {
  Column c = Column::FromInts({1, 2, 3});
  c.SetNull(1);
  EXPECT_TRUE(c.IsNull(1));
  Column d = Column::FromInts({1});
  d.CompactValidity();  // no mask; no-op
  EXPECT_FALSE(d.has_nulls());
}

TEST(ColumnTest, TakeGathersRowsAndNulls) {
  Column c = Column::FromInts({10, 20, 30, 40});
  c.SetNull(2);
  Column t = c.Take({3, 2, 0});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.IntAt(0), 40);
  EXPECT_TRUE(t.IsNull(1));
  EXPECT_EQ(t.IntAt(2), 10);
}

TEST(ColumnTest, TakeCompactsWhenNoNullsSelected) {
  Column c = Column::FromInts({10, 20, 30});
  c.SetNull(2);
  Column t = c.Take({0, 1});
  EXPECT_FALSE(t.has_nulls());
}

TEST(ColumnTest, FilterBy) {
  Column c = Column::FromDoubles({1.5, 2.5, 3.5});
  Column f = c.FilterBy({1, 0, 1});
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f.DoubleAt(0), 1.5);
  EXPECT_DOUBLE_EQ(f.DoubleAt(1), 3.5);
}

TEST(ColumnTest, FilterByWrongLengthThrows) {
  Column c = Column::FromInts({1, 2});
  EXPECT_THROW(c.FilterBy({1}), Error);
}

TEST(ColumnTest, AppendColumnMergesNullMasks) {
  Column a = Column::FromInts({1, 2});
  Column b = Column::FromInts({3, 4});
  b.SetNull(0);
  a.AppendColumn(b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_TRUE(a.IsValid(1));
  EXPECT_TRUE(a.IsNull(2));
  EXPECT_EQ(a.IntAt(3), 4);
}

TEST(ColumnTest, AppendColumnTypeMismatchThrows) {
  Column a = Column::FromInts({1});
  Column b = Column::FromDoubles({1.0});
  EXPECT_THROW(a.AppendColumn(b), Error);
}

TEST(ColumnTest, Slice) {
  Column c = Column::FromStrings({"a", "b", "c", "d"});
  Column s = c.Slice(1, 3);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.StringAt(0), "b");
  EXPECT_EQ(s.StringAt(1), "c");
}

TEST(ColumnTest, CompareRowsSameType) {
  Column c = Column::FromInts({1, 2, 2});
  EXPECT_LT(c.CompareRows(0, c, 1), 0);
  EXPECT_GT(c.CompareRows(1, c, 0), 0);
  EXPECT_EQ(c.CompareRows(1, c, 2), 0);
}

TEST(ColumnTest, CompareRowsMixedNumeric) {
  // Regression: filters compare int columns against derived float columns.
  Column ints = Column::FromInts({5, 10});
  Column floats = Column::FromDoubles({7.5, 10.0});
  EXPECT_LT(ints.CompareRows(0, floats, 0), 0);
  EXPECT_GT(ints.CompareRows(1, floats, 0), 0);
  EXPECT_EQ(ints.CompareRows(1, floats, 1), 0);
  EXPECT_GT(floats.CompareRows(0, ints, 0), 0);
}

TEST(ColumnTest, CompareRowsNullsFirst) {
  Column c = Column::FromInts({1, 2});
  c.SetNull(0);
  EXPECT_LT(c.CompareRows(0, c, 1), 0);
  EXPECT_GT(c.CompareRows(1, c, 0), 0);
  EXPECT_EQ(c.CompareRows(0, c, 0), 0);  // null == null for sorting
}

TEST(ColumnTest, CompareRowsStrings) {
  Column c = Column::FromStrings({"apple", "banana"});
  EXPECT_LT(c.CompareRows(0, c, 1), 0);
  EXPECT_EQ(c.CompareRows(1, c, 1), 0);
}

TEST(ColumnTest, HashRowConsistency) {
  Column a = Column::FromInts({42, 43});
  Column b = Column::FromInts({42, 44});
  EXPECT_EQ(a.HashRow(0, 7), b.HashRow(0, 7));
  EXPECT_NE(a.HashRow(1, 7), b.HashRow(1, 7));
  EXPECT_NE(a.HashRow(0, 7), a.HashRow(0, 8));  // seed matters
}

TEST(ColumnTest, HashRowIntVsEqualFloatDiffer) {
  // Hash need not be equal across physical types; join keys are same-typed.
  Column s1 = Column::FromStrings({"abc"});
  Column s2 = Column::FromStrings({"abc"});
  EXPECT_EQ(s1.HashRow(0, 1), s2.HashRow(0, 1));
}

TEST(ColumnTest, GetAndAppendValueRoundTrip) {
  Column c(ValueType::kFloat64);
  c.AppendValue(Value::Float(1.25));
  c.AppendValue(Value::Null(ValueType::kFloat64));
  EXPECT_DOUBLE_EQ(c.GetValue(0).d, 1.25);
  EXPECT_TRUE(c.GetValue(1).is_null);
}

TEST(ColumnTest, ByteSizeGrowsWithData) {
  Column small = Column::FromInts({1});
  Column big = Column::FromInts(std::vector<int64_t>(1000, 7));
  EXPECT_GT(big.ByteSize(), small.ByteSize());
}

TEST(ColumnTest, AppendColumnIntoEmptyKeepsNulls) {
  Column src = Column::FromInts({1, 2});
  src.SetNull(1);
  Column dst(ValueType::kInt64);
  dst.AppendColumn(src);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_FALSE(dst.IsNull(0));
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, ByteSizeDoesNotDoubleCountSsoStrings) {
  // Strings short enough for the SSO buffer occupy exactly
  // sizeof(std::string); only longer strings add heap capacity.
  Column sso = Column::FromStrings({"ab", "cd"});
  EXPECT_EQ(sso.ByteSize(), sso.strings().capacity() * sizeof(std::string));
  std::string long_str(200, 'x');
  Column heap = Column::FromStrings({long_str});
  EXPECT_GE(heap.ByteSize(), sizeof(std::string) + 200);
}

}  // namespace
}  // namespace wake
