// LiveTable + standing-query tests: the epoch/consistency contract
// (any emitted snapshot is byte-identical to a from-scratch exact/OLA
// query over the same tablet set, at any worker count, in hot-only /
// mixed / cold-only tablet states), crash-safe flush recovery
// (truncate-at-every-byte tablets are quarantined, never served),
// retention leases, and subscription lifecycle.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "common/error.h"
#include "ingest/live_table.h"
#include "plan/plan.h"
#include "server/protocol.h"

namespace wake {
namespace {

namespace fs = std::filesystem;

Schema EventSchema() {
  return Schema({{"k", ValueType::kString},
                 {"v", ValueType::kFloat64},
                 {"id", ValueType::kInt64}});
}

/// Rows [start, start + n) of a deterministic event stream.
DataFrame MakeRows(int64_t start, int64_t n) {
  DataFrame df(EventSchema());
  *df.mutable_column(0) = Column::NewDict();
  for (int64_t i = start; i < start + n; ++i) {
    df.mutable_column(0)->AppendString("g" + std::to_string(i % 7));
    df.mutable_column(1)->AppendDouble(static_cast<double>(i) * 0.25);
    df.mutable_column(2)->AppendInt(i);
  }
  return df;
}

/// The standing query the tests maintain: filter + derived column +
/// grouped aggregate + sort (the supported plan shape, end to end).
Plan StandingPlan() {
  return Plan::Scan("events")
      .Filter(Gt(Expr::Col("v"), Expr::Float(3.0)))
      .Derive({{"v2", Expr::Col("v") * Expr::Float(2.0)}})
      .Aggregate({"k"}, {Sum("v2", "s"), Avg("v", "a"), Count("c")})
      .Sort({{"k", false}});
}

/// Bit-exact frame comparison through the wire codec (doubles travel as
/// raw IEEE bit patterns).
std::string WireBytes(const DataFrame& df) {
  wire::WireWriter w;
  protocol::EncodeDataFrame(df, &w);
  return w.Take();
}

fs::path FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 (tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

class LiveTableTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!spill_.empty()) fs::remove_all(spill_);
  }
  fs::path spill_;
};

TEST_F(LiveTableTest, AppendSealSnapshotLifecycle) {
  spill_ = FreshDir("wake_live_basic");
  LiveTableOptions opts;
  opts.seal_rows = 64;
  opts.spill_dir = spill_.string();
  LiveTable live("events", EventSchema(), opts);

  EXPECT_EQ(live.Snapshot()->total_rows(), 0u);
  live.Append(MakeRows(0, 40));
  LiveTableStats st = live.stats();
  EXPECT_EQ(st.hot_rows, 40u);
  EXPECT_EQ(st.cold_tablets, 0u);

  live.Append(MakeRows(40, 40));  // crosses 64: seals + flushes
  st = live.stats();
  EXPECT_EQ(st.hot_rows, 0u);
  EXPECT_EQ(st.cold_tablets, 1u);
  EXPECT_EQ(st.tablets_flushed, 1u);
  EXPECT_EQ(st.flush_failures, 0u);

  live.Append(MakeRows(80, 10));
  LiveSnapshot snap = live.SnapshotInfo();
  EXPECT_EQ(snap.end_row, 90u);
  EXPECT_EQ(snap.table->total_rows(), 90u);
  ASSERT_EQ(snap.tablets.size(), 2u);
  EXPECT_FALSE(snap.tablets[0].hot);
  EXPECT_TRUE(snap.tablets[1].hot);
  // The cold tablet reopened lazily (wakeblock-backed, synopses live).
  EXPECT_TRUE(snap.tablets[0].table->lazy());

  // Snapshot content equals the appended rows, in append order.
  DataFrame all = snap.table->Materialize();
  EXPECT_EQ(WireBytes(all), WireBytes(MakeRows(0, 90)));

  // A snapshot is immutable: appends after it are invisible to it.
  live.Append(MakeRows(90, 10));
  EXPECT_EQ(snap.table->total_rows(), 90u);
  EXPECT_EQ(live.Snapshot()->total_rows(), 100u);

  // Appends must match the registered schema.
  DataFrame bad(Schema({{"x", ValueType::kInt64}}));
  bad.mutable_column(0)->AppendInt(1);
  EXPECT_THROW(live.Append(bad), Error);
}

// The tentpole acceptance matrix: at hot-only, mixed, and cold-only
// tablet states, the standing query's snapshot must be byte-identical
// to a from-scratch exact AND OLA query over the same tablet set, with
// 1 and 4 workers.
TEST_F(LiveTableTest, EpochSnapshotIdentityMatrix) {
  spill_ = FreshDir("wake_live_matrix");
  LiveTableOptions opts;
  opts.seal_rows = 256;
  opts.spill_dir = spill_.string();
  auto live = std::make_shared<LiveTable>("events", EventSchema(), opts);
  Catalog catalog;
  catalog.AddDynamic(live);

  DbOptions one;
  one.workers = 1;
  DbOptions four;
  four.workers = 4;
  Db db1(&catalog, one);
  Db db4(&catalog, four);
  auto sub = db1.Subscribe(StandingPlan());

  auto expect_identity = [&](const char* stage) {
    sub->Refresh();
    SubscriptionState cur = sub->Current();
    ASSERT_NE(cur.frame, nullptr) << stage;
    for (Db* db : {&db1, &db4}) {
      for (QueryEngine engine : {QueryEngine::kExact, QueryEngine::kOla}) {
        RunOptions run;
        run.engine = engine;
        DataFrame fresh = db->Prepare(StandingPlan()).Execute(run);
        EXPECT_EQ(WireBytes(*cur.frame), WireBytes(fresh))
            << stage << " engine=" << static_cast<int>(engine)
            << " workers=" << db->options().workers;
      }
    }
  };

  // Hot-only: everything below the seal threshold.
  live->Append(MakeRows(0, 100));
  live->Append(MakeRows(100, 60));
  expect_identity("hot-only");

  // Mixed: a sealed (flushed, lazy) tablet plus a fresh hot tail.
  live->Append(MakeRows(160, 200));  // crosses 256: seals all hot rows
  live->Append(MakeRows(360, 90));
  ASSERT_EQ(live->stats().cold_tablets, 1u);
  ASSERT_EQ(live->stats().hot_rows, 90u);
  expect_identity("mixed");

  // Cold-only: force-seal the tail.
  live->SealHot();
  ASSERT_EQ(live->stats().hot_rows, 0u);
  expect_identity("cold-only");

  // And again after more rounds of growth (multiple incremental folds).
  live->Append(MakeRows(450, 300));
  live->Append(MakeRows(750, 40));
  expect_identity("mixed-second-round");
}

// A subscription folds each row exactly once even when appends race the
// refresh loop, and converges to the from-scratch answer.
TEST_F(LiveTableTest, ConcurrentAppendsAndRefreshesConverge) {
  spill_ = FreshDir("wake_live_race");
  LiveTableOptions opts;
  opts.seal_rows = 128;
  opts.spill_dir = spill_.string();
  auto live = std::make_shared<LiveTable>("events", EventSchema(), opts);
  Catalog catalog;
  catalog.AddDynamic(live);
  Db db(&catalog);
  auto sub = db.Subscribe(StandingPlan());

  constexpr int64_t kTotal = 4000;
  std::thread appender([&] {
    for (int64_t at = 0; at < kTotal; at += 100) {
      live->Append(MakeRows(at, 100));
    }
  });
  uint64_t covered = 0;
  while (covered < static_cast<uint64_t>(kTotal)) {
    sub->Refresh();
    uint64_t now = sub->Current().rows_covered;
    EXPECT_GE(now, covered);  // watermark never regresses
    covered = now;
  }
  appender.join();
  sub->Refresh();

  RunOptions run;
  run.engine = QueryEngine::kExact;
  DataFrame fresh = db.Prepare(StandingPlan()).Execute(run);
  EXPECT_EQ(WireBytes(*sub->Current().frame), WireBytes(fresh));
}

TEST_F(LiveTableTest, RefreshWithoutNewRowsReturnsNullopt) {
  spill_ = FreshDir("wake_live_nullopt");
  LiveTableOptions opts;
  opts.seal_rows = 1 << 20;
  opts.spill_dir = spill_.string();
  auto live = std::make_shared<LiveTable>("events", EventSchema(), opts);
  Catalog catalog;
  catalog.AddDynamic(live);
  Db db(&catalog);
  auto sub = db.Subscribe(StandingPlan());

  // First refresh emits (an empty state), even with no data.
  auto first = sub->Refresh();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->frame->num_rows(), 0u);
  EXPECT_FALSE(sub->Refresh().has_value());

  live->Append(MakeRows(0, 50));
  auto second = sub->Refresh();
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->frame->num_rows(), 0u);
  EXPECT_FALSE(sub->Refresh().has_value());
}

TEST_F(LiveTableTest, UnsupportedSubscriptionsRejectedAtPlanTime) {
  spill_ = FreshDir("wake_live_reject");
  auto live = std::make_shared<LiveTable>("events", EventSchema(),
                                          LiveTableOptions{});
  Catalog catalog;
  catalog.AddDynamic(live);
  // A static table next to the live one.
  catalog.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("fixed", MakeRows(0, 10), 2)));
  Db db(&catalog);

  // No aggregate.
  EXPECT_THROW(db.Subscribe(Plan::Scan("events")), Error);
  // Aggregate over a static table.
  EXPECT_THROW(db.Subscribe(Plan::Scan("fixed").Aggregate({}, {Count("c")})),
               Error);
  try {
    db.Subscribe(Plan::Scan("fixed").Aggregate({}, {Count("c")}));
    FAIL() << "expected kPlan";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kPlan);
  }
}

TEST_F(LiveTableTest, RetentionEvictionHonorsSnapshotLeases) {
  spill_ = FreshDir("wake_live_retention");
  LiveTableOptions opts;
  opts.seal_rows = 32;
  opts.retain_tablets = 2;
  opts.spill_dir = spill_.string();
  LiveTable live("events", EventSchema(), opts);

  live.Append(MakeRows(0, 32));   // tablet 0
  live.Append(MakeRows(32, 32));  // tablet 1
  LiveSnapshot old_snap = live.SnapshotInfo();
  EXPECT_EQ(old_snap.table->total_rows(), 64u);

  live.Append(MakeRows(64, 32));  // tablet 2: evicts tablet 0
  live.Append(MakeRows(96, 32));  // tablet 3: evicts tablet 1
  LiveTableStats st = live.stats();
  EXPECT_EQ(st.cold_tablets, 2u);
  EXPECT_EQ(st.rows_evicted, 64u);

  LiveSnapshot now = live.SnapshotInfo();
  EXPECT_EQ(now.start_row, 64u);
  EXPECT_EQ(now.table->total_rows(), 64u);
  EXPECT_EQ(WireBytes(now.table->Materialize()), WireBytes(MakeRows(64, 64)));

  // The pre-eviction snapshot still reads its full row set: the lease
  // keeps the evicted tablets (and their directories) alive.
  EXPECT_EQ(WireBytes(old_snap.table->Materialize()),
            WireBytes(MakeRows(0, 64)));
  EXPECT_TRUE(fs::exists(spill_ / "t00000000"));

  // Releasing the last lease deletes the evicted tablets' directories.
  old_snap = LiveSnapshot{};
  EXPECT_FALSE(fs::exists(spill_ / "t00000000"));
  EXPECT_FALSE(fs::exists(spill_ / "t00000001"));
  EXPECT_TRUE(fs::exists(spill_ / "t00000002"));
}

TEST_F(LiveTableTest, SubscriptionOutrunByRetentionFailsLoudly) {
  spill_ = FreshDir("wake_live_outrun");
  LiveTableOptions opts;
  opts.seal_rows = 32;
  opts.retain_tablets = 1;
  opts.spill_dir = spill_.string();
  auto live = std::make_shared<LiveTable>("events", EventSchema(), opts);
  Catalog catalog;
  catalog.AddDynamic(live);
  Db db(&catalog);
  auto sub = db.Subscribe(StandingPlan());

  live->Append(MakeRows(0, 32));
  sub->Refresh();  // watermark 32
  // Two more tablets: the second eviction drops rows [32, 64) that the
  // subscription never folded — it must fail, not silently skip rows.
  live->Append(MakeRows(32, 32));
  live->Append(MakeRows(64, 32));
  try {
    sub->Refresh();
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kResourceExhausted);
  }
}

TEST_F(LiveTableTest, RecoveryReopensPublishedTablets) {
  spill_ = FreshDir("wake_live_recover");
  LiveTableOptions opts;
  opts.seal_rows = 48;
  opts.spill_dir = spill_.string();
  {
    LiveTable live("events", EventSchema(), opts);
    live.Append(MakeRows(0, 48));
    live.Append(MakeRows(48, 48));
    live.Append(MakeRows(96, 20));  // hot tail: lost on "crash" (never acked
                                    // as durable — only sealed tablets are)
    ASSERT_EQ(live.stats().tablets_flushed, 2u);
  }
  // Staging debris from a crash mid-flush must be discarded on recovery.
  fs::create_directories(spill_ / ".staging_t00000007" / "events");
  std::ofstream(spill_ / ".staging_t00000007" / "events" / "junk.col")
      << "partial";

  LiveTable recovered("events", EventSchema(), opts);
  LiveTableStats st = recovered.stats();
  EXPECT_EQ(st.tablets_recovered, 2u);
  EXPECT_EQ(st.tablets_quarantined, 0u);
  EXPECT_EQ(WireBytes(recovered.Snapshot()->Materialize()),
            WireBytes(MakeRows(0, 96)));
  EXPECT_FALSE(fs::exists(spill_ / ".staging_t00000007"));

  // New appends continue the sequence after the recovered tablets.
  recovered.Append(MakeRows(96, 48));
  EXPECT_EQ(recovered.stats().cold_tablets, 3u);
  EXPECT_TRUE(fs::exists(spill_ / "t00000002"));

  // Recovery under a different schema is a loud configuration error.
  EXPECT_THROW(LiveTable("events",
                         Schema({{"other", ValueType::kInt64}}), opts),
               Error);
}

// The crash-safety satellite: truncate a flushed tablet at EVERY byte
// length (every file) and prove recovery quarantines it — torn writes
// are detected via CRC/extent validation and never served.
TEST_F(LiveTableTest, TornTabletsQuarantinedAtEveryTruncationPoint) {
  spill_ = FreshDir("wake_live_torn");
  LiveTableOptions opts;
  opts.seal_rows = 16;
  opts.spill_dir = spill_.string();
  {
    LiveTable live("events", EventSchema(), opts);
    live.Append(MakeRows(0, 16));
    ASSERT_EQ(live.stats().tablets_flushed, 1u);
  }
  const fs::path tablet = spill_ / "t00000000";
  ASSERT_TRUE(fs::exists(tablet));

  // Pristine copy of every file in the tablet.
  std::map<fs::path, std::string> pristine;
  for (const auto& entry : fs::recursive_directory_iterator(tablet)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    pristine[entry.path()] =
        std::string(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GE(pristine.size(), 4u);  // table.meta + three .col files

  auto restore = [&] {
    fs::remove_all(spill_ / "quarantine");
    fs::create_directories(tablet / "events");
    for (const auto& [path, bytes] : pristine) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
  };
  auto expect_quarantined = [&](const std::string& what) {
    LiveTable rec("events", EventSchema(), opts);
    LiveTableStats st = rec.stats();
    EXPECT_EQ(st.tablets_quarantined, 1u) << what;
    EXPECT_EQ(st.tablets_recovered, 0u) << what;
    EXPECT_EQ(rec.Snapshot()->total_rows(), 0u) << what;
    EXPECT_FALSE(fs::exists(tablet)) << what;
    EXPECT_TRUE(fs::exists(spill_ / "quarantine" / "t00000000")) << what;
  };

  size_t cases = 0;
  for (const auto& [path, bytes] : pristine) {
    for (size_t len = 0; len < bytes.size(); ++len) {
      restore();
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
      out.close();
      expect_quarantined(path.filename().string() + " truncated to " +
                         std::to_string(len));
      ++cases;
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "stopping after first failing truncation (" << cases
               << " cases ran)";
      }
    }
    // Deleting the file outright must quarantine too.
    restore();
    fs::remove(path);
    expect_quarantined(path.filename().string() + " missing");
  }

  // Sanity: the pristine tablet still recovers after all that.
  restore();
  LiveTable rec("events", EventSchema(), opts);
  EXPECT_EQ(rec.stats().tablets_recovered, 1u);
  EXPECT_EQ(WireBytes(rec.Snapshot()->Materialize()),
            WireBytes(MakeRows(0, 16)));
}

}  // namespace
}  // namespace wake
