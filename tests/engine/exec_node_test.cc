// Direct tests of the execution substrate: node lifecycle, the input
// multiplexer, EOF propagation, and trace recording.
#include "exec/exec_node.h"

#include <gtest/gtest.h>

#include <atomic>

namespace wake {
namespace {

DataFramePtr TinyFrame(int64_t value) {
  Schema schema({{"x", ValueType::kInt64}});
  auto df = std::make_shared<DataFrame>(schema);
  df->mutable_column(0)->AppendInt(value);
  return df;
}

/// Source emitting `count` messages then closing.
class CountingSource : public ExecNode {
 public:
  explicit CountingSource(int count) : ExecNode("source"), count_(count) {}

 protected:
  void Process(size_t, const Message&) override {}
  void RunSource() override {
    for (int i = 0; i < count_; ++i) {
      Message msg;
      msg.frame = TinyFrame(i);
      msg.progress = static_cast<double>(i + 1) / count_;
      Emit(std::move(msg));
    }
  }

 private:
  int count_;
};

/// Records per-port message counts; forwards everything.
class RecordingNode : public ExecNode {
 public:
  explicit RecordingNode(size_t ports)
      : ExecNode("recorder"), per_port_(ports), closed_(ports) {}

  std::vector<std::atomic<int>> per_port_;
  std::vector<std::atomic<int>> closed_;
  std::atomic<bool> finished{false};

 protected:
  void Process(size_t port, const Message& msg) override {
    ++per_port_[port];
    Message copy = msg;
    Emit(std::move(copy));
  }
  void OnInputClosed(size_t port) override { ++closed_[port]; }
  void Finish() override { finished = true; }
};

TEST(ExecNodeTest, SourceEmitsAndClosesOutput) {
  CountingSource source(5);
  source.Start(nullptr);
  int received = 0;
  while (auto msg = source.output()->Receive()) ++received;
  source.Join();
  EXPECT_EQ(received, 5);
  EXPECT_TRUE(source.output()->closed());
}

TEST(ExecNodeTest, MuxDeliversFromAllPortsAndSignalsEofOnce) {
  CountingSource a(7), b(3);
  RecordingNode recorder(2);
  recorder.AddInput(a.output());
  recorder.AddInput(b.output());
  a.Start(nullptr);
  b.Start(nullptr);
  recorder.Start(nullptr);
  int total = 0;
  while (auto msg = recorder.output()->Receive()) ++total;
  a.Join();
  b.Join();
  recorder.Join();
  EXPECT_EQ(recorder.per_port_[0].load(), 7);
  EXPECT_EQ(recorder.per_port_[1].load(), 3);
  EXPECT_EQ(recorder.closed_[0].load(), 1);
  EXPECT_EQ(recorder.closed_[1].load(), 1);
  EXPECT_TRUE(recorder.finished.load());
  EXPECT_EQ(total, 10);
}

TEST(ExecNodeTest, ChainsPropagateEofThroughStages) {
  CountingSource source(4);
  RecordingNode mid(1), tail(1);
  mid.AddInput(source.output());
  tail.AddInput(mid.output());
  source.Start(nullptr);
  mid.Start(nullptr);
  tail.Start(nullptr);
  int total = 0;
  while (auto msg = tail.output()->Receive()) ++total;
  source.Join();
  mid.Join();
  tail.Join();
  EXPECT_EQ(total, 4);
  EXPECT_TRUE(tail.finished.load());
}

TEST(ExecNodeTest, TraceRecordsSpansForProcessedMessages) {
  TraceLog trace;
  CountingSource source(3);
  RecordingNode recorder(1);
  recorder.AddInput(source.output());
  source.Start(&trace);
  recorder.Start(&trace);
  while (recorder.output()->Receive()) {
  }
  source.Join();
  recorder.Join();
  auto spans = trace.Spans();
  int source_spans = 0, recorder_spans = 0;
  for (const auto& s : spans) {
    source_spans += s.node == "source";
    recorder_spans += s.node == "recorder";
    EXPECT_LE(s.start_seconds, s.end_seconds);
  }
  EXPECT_EQ(source_spans, 1);        // one span for the whole source run
  EXPECT_GE(recorder_spans, 3);      // one per message (+ eof)
}

TEST(ExecNodeTest, ClaimOutputBroadcastsToAllSubscribers) {
  CountingSource source(6);
  MessageChannelPtr a = source.ClaimOutput();
  MessageChannelPtr b = source.ClaimOutput();
  EXPECT_NE(a.get(), b.get());
  source.Start(nullptr);
  int na = 0, nb = 0;
  while (a->Receive()) ++na;
  while (b->Receive()) ++nb;
  source.Join();
  EXPECT_EQ(na, 6);  // every subscriber sees every message
  EXPECT_EQ(nb, 6);
}

TEST(ExecNodeTest, FirstClaimReturnsPrimaryOutput) {
  CountingSource source(1);
  EXPECT_EQ(source.ClaimOutput().get(), source.output().get());
  source.Start(nullptr);
  while (source.output()->Receive()) {
  }
  source.Join();
}

TEST(ExecNodeTest, ProgressMetadataSurvivesForwarding) {
  CountingSource source(4);
  RecordingNode recorder(1);
  recorder.AddInput(source.output());
  source.Start(nullptr);
  recorder.Start(nullptr);
  double last = 0;
  while (auto msg = recorder.output()->Receive()) {
    EXPECT_GT(msg->progress, last);
    last = msg->progress;
  }
  source.Join();
  recorder.Join();
  EXPECT_DOUBLE_EQ(last, 1.0);
}

}  // namespace
}  // namespace wake
