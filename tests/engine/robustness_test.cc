// Robustness and stress tests: disk round trips feeding the engine,
// concurrent query execution, skewed data distributions, single-partition
// degenerate layouts, and corrupted storage inputs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "baseline/exact_engine.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace {

TEST(RobustnessTest, QueryOverDiskRoundTrippedCatalog) {
  // Write TPC-H to .wpart files, reload, and verify query equality — the
  // full §4.4 base-table-metadata path.
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("wake_disk_" + std::to_string(::getpid()));
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.partitions = 4;
  Catalog mem = tpch::Generate(cfg);
  Catalog disk;
  for (const auto& name : mem.TableNames()) {
    mem.Get(name).WriteWpartDir(dir.string());
    disk.Add(std::make_shared<PartitionedTable>(
        PartitionedTable::ReadWpartDir(dir.string(), name)));
  }
  for (int q : {1, 6, 12, 18}) {
    WakeEngine a(&mem), b(&disk);
    std::string diff;
    EXPECT_TRUE(a.ExecuteFinal(tpch::Query(q).node())
                    .ApproxEquals(b.ExecuteFinal(tpch::Query(q).node()),
                                  1e-9, &diff))
        << "Q" << q << ": " << diff;
  }
  fs::remove_all(dir);
}

TEST(RobustnessTest, CorruptedWpartIsRejected) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("wake_corrupt_" + std::to_string(::getpid()));
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.partitions = 2;
  Catalog mem = tpch::Generate(cfg);
  mem.Get("nation").WriteWpartDir(dir.string());

  // Bad magic.
  {
    std::fstream f(dir / "nation.0.wpart",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  EXPECT_THROW(PartitionedTable::ReadWpartDir(dir.string(), "nation"),
               Error);

  // Truncation.
  mem.Get("nation").WriteWpartDir(dir.string());
  {
    auto path = dir / "nation.0.wpart";
    auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);
  }
  EXPECT_THROW(PartitionedTable::ReadWpartDir(dir.string(), "nation"),
               Error);
  fs::remove_all(dir);
}

TEST(RobustnessTest, ConcurrentEnginesShareOneCatalog) {
  const Catalog& cat = testing::SharedTpch();
  ExactEngine exact(&cat);
  std::vector<DataFrame> expected;
  std::vector<int> queries = {1, 4, 6, 12, 14, 19};
  for (int q : queries) expected.push_back(exact.Execute(tpch::Query(q).node()));

  std::vector<std::string> failures(queries.size());
  std::vector<std::thread> workers;
  for (size_t i = 0; i < queries.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        WakeEngine engine(&cat);
        DataFrame got = engine.ExecuteFinal(tpch::Query(queries[i]).node());
        std::string diff;
        if (!got.ApproxEquals(expected[i], 1e-6, &diff)) failures[i] = diff;
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (auto& w : workers) w.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(failures[i].empty())
        << "Q" << queries[i] << ": " << failures[i];
  }
}

TEST(RobustnessTest, SinglePartitionDegeneratesToOneExactState) {
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.partitions = 1;
  Catalog cat = tpch::Generate(cfg);
  WakeEngine engine(&cat);
  ExactEngine exact(&cat);
  Plan plan = tpch::Query(6);
  DataFrame got = engine.ExecuteFinal(plan.node());
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(exact.Execute(plan.node()), 1e-9, &diff))
      << diff;
}

TEST(RobustnessTest, SkewedGroupsStillConvergeExactly) {
  // Zipf-distributed group keys: a few giant groups, a long tail of new
  // keys appearing late — stress for the growth model; the final state
  // must still be exact (the §4.5 guarantee is distribution-free).
  Schema schema({{"k", ValueType::kInt64},
                 {"g", ValueType::kInt64},
                 {"v", ValueType::kFloat64}});
  schema.set_primary_key({"k"});
  schema.set_clustering_key({"k"});
  DataFrame df(schema);
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    df.mutable_column(0)->AppendInt(i);
    df.mutable_column(1)->AppendInt(rng.Zipf(5000, 1.3));
    df.mutable_column(2)->AppendDouble(rng.UniformDouble(0, 10));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("skew", df, 16)));
  Plan plan = Plan::Scan("skew")
                  .Aggregate({"g"}, {Sum("v", "s"), Count("n")})
                  .Aggregate({}, {Count("groups"), Sum("s", "total")});
  WakeEngine engine(&cat);
  ExactEngine exact(&cat);
  DataFrame expected = exact.Execute(plan.node());
  std::vector<double> totals;
  DataFrame got;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) {
      got = *s.frame;
    } else if (s.frame->num_rows() > 0) {
      totals.push_back(s.frame->ColumnByName("total").DoubleAt(0));
    }
  });
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff)) << diff;
  // Late estimates should approach the truth even under skew.
  double truth = expected.ColumnByName("total").DoubleAt(0);
  ASSERT_GE(totals.size(), 8u);
  EXPECT_NEAR(totals[totals.size() - 2], truth, 0.1 * truth);
}

TEST(RobustnessTest, SubplanSharingPreservesResults) {
  // Q11/Q15/Q17/Q22 reuse a subplan through two parents; the shared
  // (broadcast) execution must produce exactly the duplicated execution's
  // results.
  const Catalog& cat = testing::SharedTpch();
  for (int q : {11, 15, 17, 22}) {
    Plan plan = tpch::Query(q);
    WakeOptions shared_opts;
    shared_opts.share_subplans = true;
    WakeOptions dup_opts;
    dup_opts.share_subplans = false;
    WakeEngine shared(&cat, shared_opts), duplicated(&cat, dup_opts);
    std::string diff;
    EXPECT_TRUE(
        shared.ExecuteFinal(plan.node())
            .ApproxEquals(duplicated.ExecuteFinal(plan.node()), 1e-9, &diff))
        << "Q" << q << ": " << diff;
  }
}

TEST(RobustnessTest, RepeatedExecutionIsDeterministicInResult) {
  // Thread interleavings vary between runs, but every run must deliver
  // the same final frame.
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::Query(12);
  WakeEngine engine(&cat);
  DataFrame first = engine.ExecuteFinal(plan.node());
  for (int run = 0; run < 4; ++run) {
    std::string diff;
    EXPECT_TRUE(
        engine.ExecuteFinal(plan.node()).ApproxEquals(first, 0.0, &diff))
        << diff;
  }
}

TEST(RobustnessTest, WideMultiKeyMergeJoin) {
  // Multi-column clustering keys through the merge join path.
  Schema schema({{"k1", ValueType::kInt64},
                 {"k2", ValueType::kInt64},
                 {"v", ValueType::kFloat64}});
  schema.set_primary_key({"k1", "k2"});
  schema.set_clustering_key({"k1", "k2"});
  DataFrame df(schema);
  for (int a = 0; a < 100; ++a) {
    for (int b = 0; b < 5; ++b) {
      df.mutable_column(0)->AppendInt(a);
      df.mutable_column(1)->AppendInt(b);
      df.mutable_column(2)->AppendDouble(a * 10.0 + b);
    }
  }
  // A second table with the same clustering but a distinct value column,
  // differently partitioned, so the merge join must align key ranges.
  Schema schema2({{"k1", ValueType::kInt64},
                  {"k2", ValueType::kInt64},
                  {"w", ValueType::kFloat64}});
  schema2.set_primary_key({"k1", "k2"});
  schema2.set_clustering_key({"k1", "k2"});
  DataFrame df2(schema2);
  for (int a = 0; a < 100; ++a) {
    for (int b = 0; b < 5; ++b) {
      df2.mutable_column(0)->AppendInt(a);
      df2.mutable_column(1)->AppendInt(b);
      df2.mutable_column(2)->AppendDouble(a - b);
    }
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("pairs", df, 7)));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("pairs2", df2, 4)));
  Plan joined = Plan::Scan("pairs").Join(
      Plan::Scan("pairs2"), JoinType::kInner, {"k1", "k2"}, {"k1", "k2"});
  WakeEngine engine(&cat);
  ExactEngine exact(&cat);
  DataFrame expected = exact.Execute(joined.node());
  DataFrame got = engine.ExecuteFinal(joined.node());
  ASSERT_EQ(expected.num_rows(), 500u);
  std::string diff;
  EXPECT_TRUE(got.SortBy({{"k1", false}, {"k2", false}})
                  .ApproxEquals(
                      expected.SortBy({{"k1", false}, {"k2", false}}), 1e-12,
                      &diff))
      << diff;
}

}  // namespace
}  // namespace wake
