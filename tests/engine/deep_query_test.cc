// Deep synthetic queries (§8.6): alternating aggregations over a wide
// group space; Wake must match the exact engine at every depth and emit
// regular intermediate results.
#include <gtest/gtest.h>

#include "baseline/exact_engine.h"
#include "common/rng.h"
#include "core/engine.h"

namespace wake {
namespace {

// The §8.6 synthetic table scaled down: `cols` group-by columns with 4
// unique values each plus a value column x.
Catalog SyntheticDeep(size_t rows, int cols, size_t partitions,
                      uint64_t seed = 7) {
  Schema schema;
  for (int c = 0; c < cols; ++c) {
    schema.AddField(Field("c" + std::to_string(c), ValueType::kInt64));
  }
  schema.AddField(Field("x", ValueType::kInt64));
  DataFrame df(schema);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      df.mutable_column(static_cast<size_t>(c))->AppendInt(
          rng.UniformInt(0, 3));
    }
    df.mutable_column(static_cast<size_t>(cols))
        ->AppendInt(rng.UniformInt(0, 1000));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("deep", df, partitions)));
  return cat;
}

// Builds the depth-d alternating query of §8.6:
//   d=0: sum(x)
//   d=1: max(x) by c0        then sum of that
//   d=2: max(x) by (c0,c1) -> sum by c0 -> sum   etc.
Plan DeepQuery(int depth, int cols) {
  Plan plan = Plan::Scan("deep");
  std::string value = "x";
  for (int level = depth; level >= 1; --level) {
    std::vector<std::string> by;
    for (int c = 0; c < std::min(level, cols); ++c) {
      by.push_back("c" + std::to_string(c));
    }
    AggSpec spec = (depth - level) % 2 == 0 ? Max(value, "agg" +
                                                  std::to_string(level))
                                            : Sum(value, "agg" +
                                                  std::to_string(level));
    value = spec.output;
    plan = plan.Aggregate(by, {spec});
  }
  plan = plan.Aggregate({}, {Sum(value, "final")});
  return plan;
}

class DeepQueryDepth : public ::testing::TestWithParam<int> {};

TEST_P(DeepQueryDepth, WakeMatchesExactAtEveryDepth) {
  int depth = GetParam();
  Catalog cat = SyntheticDeep(4000, 5, 8);
  Plan plan = DeepQuery(depth, 5);
  ExactEngine exact(&cat);
  DataFrame expected = exact.Execute(plan.node());
  WakeEngine engine(&cat);
  size_t states = 0;
  DataFrame got;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    ++states;
    if (s.is_final) got = *s.frame;
  });
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-9, &diff)) << diff;
  // Deep OLA property: intermediate outputs at every depth (at least one
  // state per source partition reaches the sink).
  EXPECT_GE(states, 8u) << "deep pipeline swallowed intermediate states";
}

INSTANTIATE_TEST_SUITE_P(Depths, DeepQueryDepth, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "depth" + std::to_string(info.param);
                         });

TEST(DeepQueryTest, EstimatesAtDepthTwoAreReasonable) {
  // sum over (sum by c0): inner groups grow, the outer sum must still
  // land near the truth early (within 40% on uniform data).
  Catalog cat = SyntheticDeep(20000, 3, 20);
  Plan inner = Plan::Scan("deep").Aggregate({"c0"}, {Sum("x", "s0")});
  Plan outer = inner.Aggregate({}, {Sum("s0", "total")});
  ExactEngine exact(&cat);
  double truth = exact.Execute(outer.node()).column(0).DoubleAt(0);
  WakeEngine engine(&cat);
  std::vector<double> estimates;
  engine.Execute(outer.node(), [&](const OlaState& s) {
    if (!s.is_final && s.frame->num_rows() > 0) {
      estimates.push_back(s.frame->column(0).DoubleAt(0));
    }
  });
  ASSERT_GE(estimates.size(), 5u);
  // Skip the very first estimates (growth model unfitted), then check.
  double mid = estimates[estimates.size() / 2];
  EXPECT_NEAR(mid, truth, 0.4 * std::fabs(truth));
  // Late estimates should be very close.
  EXPECT_NEAR(estimates.back(), truth, 0.02 * std::fabs(truth));
}

TEST(DeepQueryTest, CountDistinctNestsInsideDeepQueries) {
  Catalog cat = SyntheticDeep(3000, 4, 6);
  Plan plan = Plan::Scan("deep")
                  .Aggregate({"c0", "c1"}, {CountDistinct("x", "d")})
                  .Aggregate({"c0"}, {Sum("d", "sum_d")})
                  .Aggregate({}, {Max("sum_d", "m")});
  ExactEngine exact(&cat);
  WakeEngine engine(&cat);
  std::string diff;
  EXPECT_TRUE(engine.ExecuteFinal(plan.node())
                  .ApproxEquals(exact.Execute(plan.node()), 1e-9, &diff))
      << diff;
}

TEST(DeepQueryTest, AvgOverAvgMatchesExact) {
  Catalog cat = SyntheticDeep(3000, 4, 6);
  Plan plan = Plan::Scan("deep")
                  .Aggregate({"c0", "c1"}, {Avg("x", "a1")})
                  .Aggregate({"c0"}, {Avg("a1", "a2")})
                  .Sort({{"c0", false}});
  ExactEngine exact(&cat);
  WakeEngine engine(&cat);
  std::string diff;
  EXPECT_TRUE(engine.ExecuteFinal(plan.node())
                  .ApproxEquals(exact.Execute(plan.node()), 1e-9, &diff))
      << diff;
}

TEST(DeepQueryTest, MedianInDeepPipeline) {
  Catalog cat = SyntheticDeep(2000, 3, 5);
  Plan plan = Plan::Scan("deep")
                  .Aggregate({"c0"}, {MedianOf("x", "med")})
                  .Aggregate({}, {Max("med", "max_med")});
  ExactEngine exact(&cat);
  WakeEngine engine(&cat);
  std::string diff;
  EXPECT_TRUE(engine.ExecuteFinal(plan.node())
                  .ApproxEquals(exact.Execute(plan.node()), 1e-9, &diff))
      << diff;
}

TEST(DeepQueryTest, VarStddevInDeepPipeline) {
  Catalog cat = SyntheticDeep(2000, 3, 5);
  Plan plan = Plan::Scan("deep")
                  .Aggregate({"c0"}, {VarOf("x", "v"), StddevOf("x", "sd")})
                  .Aggregate({}, {Max("v", "max_v"), Min("sd", "min_sd")});
  ExactEngine exact(&cat);
  WakeEngine engine(&cat);
  std::string diff;
  EXPECT_TRUE(engine.ExecuteFinal(plan.node())
                  .ApproxEquals(exact.Execute(plan.node()), 1e-9, &diff))
      << diff;
}

}  // namespace
}  // namespace wake
