// OLA quality properties (§4.5, §8.3): errors shrink as progress grows,
// recall converges to 1, estimates are approximately unbiased over shuffled
// partition orders, and confidence intervals cover the truth.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baseline/exact_engine.h"
#include "core/ci.h"
#include "core/engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace {

// Key of a result row over the group columns (all columns up to `cols`).
std::string RowKey(const DataFrame& df, size_t row, size_t cols) {
  std::string key;
  for (size_t c = 0; c < cols; ++c) {
    key += df.column(c).GetValue(row).ToString();
    key += '|';
  }
  return key;
}

// MAPE of `got` vs `truth` over every numeric column after the first
// `key_cols` group columns, matched on those group columns; missing groups
// are skipped (recall measures those).
double Mape(const DataFrame& truth, const DataFrame& got, size_t key_cols) {
  std::map<std::string, size_t> expected_row;
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    expected_row[RowKey(truth, r, key_cols)] = r;
  }
  double total = 0;
  size_t n = 0;
  for (size_t r = 0; r < got.num_rows(); ++r) {
    auto it = expected_row.find(RowKey(got, r, key_cols));
    if (it == expected_row.end()) continue;
    for (size_t c = key_cols; c < truth.num_columns(); ++c) {
      if (truth.column(c).type() == ValueType::kString) continue;
      double want = truth.column(c).DoubleAt(it->second);
      if (want == 0.0) continue;
      total += std::fabs(got.column(c).DoubleAt(r) - want) /
               std::fabs(want);
      ++n;
    }
  }
  return n == 0 ? 1.0 : total / n;
}

double Recall(const DataFrame& truth, const DataFrame& got,
              size_t key_cols) {
  if (truth.num_rows() == 0) return 1.0;
  std::map<std::string, bool> found;
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    found[RowKey(truth, r, key_cols)] = false;
  }
  for (size_t r = 0; r < got.num_rows(); ++r) {
    auto it = found.find(RowKey(got, r, key_cols));
    if (it != found.end()) it->second = true;
  }
  size_t hit = 0;
  for (const auto& [_, v] : found) hit += v;
  return static_cast<double>(hit) / found.size();
}

TEST(ConvergenceTest, Q1ErrorShrinksAndRecallCompletesEarly) {
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::Query(1);
  ExactEngine exact(&cat);
  DataFrame truth = exact.Execute(plan.node());

  WakeEngine engine(&cat);
  std::vector<double> mapes, recalls;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) return;
    mapes.push_back(Mape(truth, *s.frame, 2));  // 2 group columns in Q1
    recalls.push_back(Recall(truth, *s.frame, 2));
  });
  ASSERT_GE(mapes.size(), 4u);
  // First estimate already decent (low-cardinality groups, §8.3 cat. 1).
  EXPECT_LT(mapes.front(), 0.2);
  EXPECT_LT(mapes.back(), 1e-9);  // exact at the end
  EXPECT_DOUBLE_EQ(recalls.front(), 1.0);
  // Errors shrink overall (allow local non-monotonicity).
  EXPECT_LT(mapes[mapes.size() / 2], mapes.front() + 1e-12);
}

TEST(ConvergenceTest, Q18RecallGrowsLinearly) {
  // Clustering-key aggregation: values exact, recall grows (§8.3 cat. 2).
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::Query(18);
  ExactEngine exact(&cat);
  DataFrame truth = exact.Execute(plan.node());
  if (truth.num_rows() == 0) GTEST_SKIP() << "no qualifying orders at this SF";

  WakeEngine engine(&cat);
  std::vector<double> recalls;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    recalls.push_back(Recall(truth, *s.frame, 5));  // 5 group columns
  });
  EXPECT_DOUBLE_EQ(recalls.back(), 1.0);
  EXPECT_LE(recalls.front(), recalls.back());
}

TEST(ConvergenceTest, GlobalSumFirstEstimateIsClose) {
  // Q6-style single sum over uniform data: the first scaled estimate must
  // land near the truth (the "unseen mimics observed" premise).
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::Query(6);
  ExactEngine exact(&cat);
  double truth = exact.Execute(plan.node()).column(0).DoubleAt(0);
  WakeEngine engine(&cat);
  double first = 0;
  bool got_first = false;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (!got_first && s.frame->num_rows() > 0) {
      first = s.frame->column(0).DoubleAt(0);
      got_first = true;
    }
  });
  ASSERT_TRUE(got_first);
  EXPECT_NEAR(first, truth, 0.15 * std::fabs(truth));
}

TEST(ConvergenceTest, EstimatesUnbiasedOverShuffledPartitionOrders) {
  // Mean-like aggregates must be unbiased (§4.5): averaging first
  // estimates across shuffled partition orders should approach the truth.
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.partitions = 10;
  Catalog base = tpch::Generate(cfg);
  Plan plan = tpch::ModifiedQuery(6);
  ExactEngine exact(&base);
  double truth = exact.Execute(plan.node()).column(0).DoubleAt(0);

  double sum_first = 0;
  constexpr int kOrders = 8;
  for (int i = 0; i < kOrders; ++i) {
    Catalog shuffled;
    for (const auto& name : base.TableNames()) {
      shuffled.Add(std::make_shared<PartitionedTable>(
          base.Get(name).ShufflePartitions(1000 + i)));
    }
    WakeEngine engine(&shuffled);
    bool got_first = false;
    engine.Execute(plan.node(), [&](const OlaState& s) {
      if (!got_first && s.frame->num_rows() > 0) {
        sum_first += s.frame->column(0).DoubleAt(0);
        got_first = true;
      }
    });
  }
  double mean_first = sum_first / kOrders;
  EXPECT_NEAR(mean_first, truth, 0.12 * std::fabs(truth));
}

TEST(ConvergenceTest, CiCoversTruthOnQ14) {
  // Fig 10: 95% Chebyshev intervals must bound the true answer for (almost)
  // every intermediate state.
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::Query(14);
  ExactEngine exact(&cat);
  double truth = exact.Execute(plan.node()).column(0).DoubleAt(0);

  WakeOptions options;
  options.with_ci = true;
  WakeEngine engine(&cat, options);
  size_t states = 0, covered = 0, with_var = 0;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final || s.frame->num_rows() == 0) return;
    ++states;
    double est = s.frame->ColumnByName("promo_revenue").DoubleAt(0);
    double var = 0.0;
    if (s.variances != nullptr) {
      auto it = s.variances->find("promo_revenue");
      if (it != s.variances->end() && !it->second.empty()) {
        var = it->second[0];
        with_var += var > 0.0;
      }
    }
    if (RelativeCiRange(est, truth, var, 0.95) <= 1.0) ++covered;
  });
  ASSERT_GT(states, 2u);
  EXPECT_GT(with_var, 0u) << "no positive variances propagated";
  // Chebyshev at k≈4.47 is very conservative; near-total coverage expected
  // (the first state may predate a fitted growth model).
  EXPECT_GE(covered + 1, states);
}

TEST(ConvergenceTest, ProgressIsMonotonePerQuery) {
  const Catalog& cat = testing::SharedTpch();
  for (int q : {3, 13, 18}) {
    WakeEngine engine(&cat);
    double last = -1.0;
    engine.Execute(tpch::Query(q).node(), [&](const OlaState& s) {
      EXPECT_GE(s.progress, last) << "Q" << q;
      last = s.progress;
    });
    EXPECT_DOUBLE_EQ(last, 1.0);
  }
}

}  // namespace
}  // namespace wake
