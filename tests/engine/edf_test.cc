// The user-facing edf API (§3): closure under operations, live results,
// get()/get_final() semantics.
#include "core/edf.h"

#include "common/error.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baseline/exact_engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace {

TEST(EdfTest, ReadValidatesTableName) {
  EdfSession session(&testing::SharedTpch());
  EXPECT_NO_THROW(session.Read("lineitem"));
  EXPECT_THROW(session.Read("bogus"), Error);
}

TEST(EdfTest, ClosureUnderOperations) {
  // Every op on an edf yields another edf; the chain builds a plan tree.
  EdfSession session(&testing::SharedTpch());
  Edf result = session.Read("lineitem")
                   .Filter(Gt(Expr::Col("l_quantity"), Expr::Float(10.0)))
                   .Sum("l_quantity", {"l_orderkey"})
                   .Filter(Gt(Expr::Col("sum_l_quantity"), Expr::Float(50.0)))
                   .Sort({{"sum_l_quantity", true}}, 5);
  EXPECT_EQ(result.plan().node()->op, PlanOp::kSortLimit);
  DataFrame final_frame = result.GetFinal();
  EXPECT_LE(final_frame.num_rows(), 5u);
}

TEST(EdfTest, PaperSessionQ18Style) {
  // The §1 analysis session: deep OLA over a local agg, filter, two joins,
  // a shuffle agg, and a sort.
  const Catalog& cat = testing::SharedTpch();
  EdfSession session(&cat);
  Edf lineitem = session.Read("lineitem");
  Edf order_qty = lineitem.Sum("l_quantity", {"l_orderkey"});
  Edf lg_orders = order_qty.Filter(
      Gt(Expr::Col("sum_l_quantity"), Expr::Float(150.0)));
  Edf joined = lg_orders
                   .Join(session.Read("orders").Project(
                             {"o_orderkey", "o_custkey"}),
                         {"l_orderkey"}, {"o_orderkey"})
                   .Join(session.Read("customer").Project(
                             {"c_custkey", "c_name"}),
                         {"o_custkey"}, {"c_custkey"});
  Edf top = joined.Sum("sum_l_quantity", {"c_name"})
                .Sort({{"sum_sum_l_quantity", true}}, 10);

  // The equivalent single plan on the exact engine.
  DataFrame expected =
      ExactEngine(&cat).Execute(top.plan().node());
  std::string diff;
  EXPECT_TRUE(top.GetFinal().ApproxEquals(expected, 1e-6, &diff)) << diff;
}

TEST(EdfTest, RunReturnsLiveHandleThatConverges) {
  EdfSession session(&testing::SharedTpch());
  Edf q = session.Read("lineitem").Sum("l_quantity", {"l_returnflag"});
  EdfResult live = q.Run();
  DataFrame final_frame = live.GetFinal();
  EXPECT_TRUE(live.is_final());
  EXPECT_DOUBLE_EQ(live.progress(), 1.0);
  EXPECT_GE(live.num_states(), 2u);
  EXPECT_EQ(final_frame.num_rows(), 3u);  // R, A, N
}

TEST(EdfTest, SubscribeStreamsStates) {
  EdfSession session(&testing::SharedTpch());
  size_t states = 0;
  bool saw_final = false;
  session.Read("orders")
      .CountBy({"o_orderpriority"})
      .Subscribe([&](const OlaState& s) {
        ++states;
        saw_final |= s.is_final;
      });
  EXPECT_GE(states, 3u);
  EXPECT_TRUE(saw_final);
}

TEST(EdfTest, AggregationSugarNamesOutputs) {
  EdfSession session(&testing::SharedTpch());
  DataFrame avg =
      session.Read("lineitem").Avg("l_discount", {}).GetFinal();
  EXPECT_TRUE(avg.schema().HasField("avg_l_discount"));
  DataFrame mins =
      session.Read("lineitem").Min("l_shipdate", {}).GetFinal();
  EXPECT_TRUE(mins.schema().HasField("min_l_shipdate"));
  DataFrame distinct =
      session.Read("lineitem").CountDistinct("l_suppkey", {}).GetFinal();
  EXPECT_TRUE(distinct.schema().HasField("count_distinct_l_suppkey"));
  DataFrame maxs = session.Read("orders").Max("o_totalprice", {}).GetFinal();
  EXPECT_TRUE(maxs.schema().HasField("max_o_totalprice"));
}

TEST(EdfTest, DeriveAndMapCompose) {
  EdfSession session(&testing::SharedTpch());
  DataFrame out =
      session.Read("lineitem")
          .Derive({{"rev", Expr::Col("l_extendedprice") *
                               (Expr::Float(1.0) - Expr::Col("l_discount"))}})
          .Sum("rev", {})
          .GetFinal();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_GT(out.column(0).DoubleAt(0), 0.0);
}

TEST(EdfTest, GetReturnsLatestStateWhileRunning) {
  EdfSession session(&testing::SharedTpch());
  Edf q = session.Read("lineitem").Sum("l_extendedprice", {"l_shipmode"});
  EdfResult live = q.Run();
  // Poll until at least one state lands, then verify snapshot sanity.
  for (int i = 0; i < 200 && live.Get() == nullptr; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  DataFramePtr snapshot = live.Get();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_LE(snapshot->num_rows(), 7u);  // at most the 7 ship modes
  live.GetFinal();
}

}  // namespace
}  // namespace wake
