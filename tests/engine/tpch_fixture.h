// Shared TPC-H catalog for engine tests (generated once per binary).
#ifndef WAKE_TESTS_ENGINE_TPCH_FIXTURE_H_
#define WAKE_TESTS_ENGINE_TPCH_FIXTURE_H_

#include "tpch/dbgen.h"

namespace wake {
namespace testing {

inline const Catalog& SharedTpch() {
  static const Catalog catalog = [] {
    tpch::DbgenConfig cfg;
    cfg.scale_factor = 0.02;
    cfg.partitions = 8;
    return tpch::Generate(cfg);
  }();
  return catalog;
}

}  // namespace testing
}  // namespace wake

#endif  // WAKE_TESTS_ENGINE_TPCH_FIXTURE_H_
