// Integration: the Wake OLA engine must converge to exactly the answer the
// blocking exact engine produces, for every TPC-H query (the paper's
// convergence guarantee, §4.5: the edf at t = 1 is the exact answer).
#include <gtest/gtest.h>

#include "common/error.h"

#include "baseline/exact_engine.h"
#include "core/engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace {

class TpchQueryEquality : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryEquality, FinalResultMatchesExactEngine) {
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::Query(GetParam());
  ExactEngine exact(&cat);
  DataFrame expected = exact.Execute(plan.node());

  WakeEngine engine(&cat);
  size_t states = 0;
  DataFrame got;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    ++states;
    if (s.is_final) got = *s.frame;
  });
  EXPECT_GT(states, 1u) << "no intermediate states produced";
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(expected, 1e-6, &diff)) << diff;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryEquality,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

class ModifiedQueryEquality : public ::testing::TestWithParam<int> {};

TEST_P(ModifiedQueryEquality, FinalResultMatchesExactEngine) {
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::ModifiedQuery(GetParam());
  ExactEngine exact(&cat);
  WakeEngine engine(&cat);
  std::string diff;
  EXPECT_TRUE(engine.ExecuteFinal(plan.node())
                  .ApproxEquals(exact.Execute(plan.node()), 1e-6, &diff))
      << diff;
}

INSTANTIATE_TEST_SUITE_P(Modified, ModifiedQueryEquality,
                         ::testing::Values(1, 3, 6, 7, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "MQ" + std::to_string(info.param);
                         });

TEST(TpchQueryEqualityExtra, CiModeDoesNotChangeFinalResults) {
  const Catalog& cat = testing::SharedTpch();
  WakeOptions options;
  options.with_ci = true;
  WakeEngine engine(&cat, options);
  ExactEngine exact(&cat);
  for (int q : {1, 6, 14, 18}) {
    Plan plan = tpch::Query(q);
    std::string diff;
    EXPECT_TRUE(engine.ExecuteFinal(plan.node())
                    .ApproxEquals(exact.Execute(plan.node()), 1e-6, &diff))
        << "Q" << q << ": " << diff;
  }
}

TEST(TpchQueryEqualityExtra, RepartitioningDoesNotChangeFinalResults) {
  // Final answers must be independent of the partition layout (§8.7 varies
  // partition sizes; correctness must hold for all of them).
  tpch::DbgenConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.partitions = 3;
  Catalog base = tpch::Generate(cfg);
  Catalog repartitioned;
  for (const auto& name : base.TableNames()) {
    repartitioned.Add(std::make_shared<PartitionedTable>(
        base.Get(name).Repartition(name == "lineitem" ? 11 : 5)));
  }
  for (int q : {1, 3, 6, 13, 18}) {
    Plan plan = tpch::Query(q);
    WakeEngine a(&base), b(&repartitioned);
    std::string diff;
    EXPECT_TRUE(a.ExecuteFinal(plan.node())
                    .ApproxEquals(b.ExecuteFinal(plan.node()), 1e-6, &diff))
        << "Q" << q << ": " << diff;
  }
}

TEST(TpchQueryEqualityExtra, QueryNumberValidation) {
  EXPECT_THROW(tpch::Query(0), Error);
  EXPECT_THROW(tpch::Query(23), Error);
  EXPECT_THROW(tpch::ModifiedQuery(2), Error);
  EXPECT_EQ(tpch::AllQueries().size(), 22u);
}

}  // namespace
}  // namespace wake
