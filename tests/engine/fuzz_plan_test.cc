// Randomized plan fuzzing: generate random (but valid) plans over a
// synthetic star schema and check that the Wake OLA engine's final answer
// always equals the blocking exact engine's. This sweeps operator
// combinations no hand-written test enumerates: filter/derive stacking,
// all join types, local vs shuffle aggregations, agg-over-agg, and
// sort/limit tails.
#include <gtest/gtest.h>

#include "baseline/exact_engine.h"
#include "common/rng.h"
#include "core/engine.h"

namespace wake {
namespace {

Catalog FuzzCatalog(uint64_t seed) {
  Rng rng(seed);
  Schema fact_schema({{"id", ValueType::kInt64},
                      {"dim_id", ValueType::kInt64},
                      {"bucket", ValueType::kInt64},
                      {"amount", ValueType::kFloat64},
                      {"flag", ValueType::kString}});
  fact_schema.set_primary_key({"id"});
  fact_schema.set_clustering_key({"id"});
  DataFrame fact(fact_schema);
  size_t rows = 2000 + static_cast<size_t>(rng.UniformInt(0, 3000));
  for (size_t i = 0; i < rows; ++i) {
    fact.mutable_column(0)->AppendInt(static_cast<int64_t>(i));
    fact.mutable_column(1)->AppendInt(rng.UniformInt(0, 19));
    fact.mutable_column(2)->AppendInt(rng.Zipf(50, 1.1));
    fact.mutable_column(3)->AppendDouble(rng.UniformDouble(-100, 100));
    fact.mutable_column(4)->AppendString(rng.UniformInt(0, 1) ? "hot"
                                                              : "cold");
  }
  Schema dim_schema({{"d_id", ValueType::kInt64},
                     {"d_weight", ValueType::kFloat64}});
  dim_schema.set_primary_key({"d_id"});
  dim_schema.set_clustering_key({"d_id"});
  DataFrame dim(dim_schema);
  for (int i = 0; i < 16; ++i) {  // ids 0..15: some fact dim_ids dangle
    dim.mutable_column(0)->AppendInt(i);
    dim.mutable_column(1)->AppendDouble(rng.UniformDouble(0.5, 2.0));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(PartitionedTable::FromDataFrame(
      "fact", fact, 3 + static_cast<size_t>(rng.UniformInt(0, 9)))));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("dim", dim, 2)));
  return cat;
}

Plan RandomPlan(Rng& rng) {
  Plan plan = Plan::Scan("fact");
  // Optional filter stack.
  int filters = static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < filters; ++i) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        plan = plan.Filter(Gt(Expr::Col("amount"),
                              Expr::Float(rng.UniformDouble(-50, 50))));
        break;
      case 1:
        plan = plan.Filter(Eq(Expr::Col("flag"), Expr::Str("hot")));
        break;
      case 2:
        plan = plan.Filter(Le(Expr::Col("bucket"),
                              Expr::Int(rng.UniformInt(2, 40))));
        break;
      default:
        plan = plan.Filter(Expr::In(
            Expr::Col("dim_id"),
            {Value::Int(rng.UniformInt(0, 19)),
             Value::Int(rng.UniformInt(0, 19)),
             Value::Int(rng.UniformInt(0, 19))}));
        break;
    }
  }
  // Optional derive.
  if (rng.UniformInt(0, 1)) {
    plan = plan.Derive({{"scaled", Expr::Col("amount") *
                                       Expr::Float(rng.UniformDouble(0.5, 2))}});
  }
  // Optional join.
  int join_kind = static_cast<int>(rng.UniformInt(0, 3));
  bool joined = false;
  if (join_kind > 0) {
    JoinType type = join_kind == 1
                        ? JoinType::kInner
                        : (join_kind == 2 ? JoinType::kSemi : JoinType::kAnti);
    plan = plan.Join(Plan::Scan("dim"), type, {"dim_id"}, {"d_id"});
    joined = type == JoinType::kInner;
  }
  // Aggregation: local (by id) or shuffle (by dim_id/bucket/flag) or both.
  int agg_choice = static_cast<int>(rng.UniformInt(0, 3));
  std::vector<std::string> group;
  switch (agg_choice) {
    case 0: group = {"id"}; break;        // local
    case 1: group = {"dim_id"}; break;    // shuffle
    case 2: group = {"bucket", "flag"}; break;
    case 3: group = {}; break;            // global
  }
  std::vector<AggSpec> aggs;
  aggs.push_back(Sum("amount", "s"));
  if (rng.UniformInt(0, 1)) aggs.push_back(Count("n"));
  if (rng.UniformInt(0, 1)) aggs.push_back(Avg("amount", "a"));
  if (rng.UniformInt(0, 1)) aggs.push_back(Min("amount", "mn"));
  if (rng.UniformInt(0, 1)) aggs.push_back(CountDistinct("bucket", "d"));
  if (joined && rng.UniformInt(0, 1)) {
    aggs.push_back(Max("d_weight", "mw"));
  }
  plan = plan.Aggregate(group, aggs);
  // Optional second-level aggregation (the Deep-OLA case).
  if (!group.empty() && rng.UniformInt(0, 1)) {
    plan = plan.Aggregate({}, {Sum("s", "total"), Count("groups")});
  } else if (rng.UniformInt(0, 1)) {
    // Sort tail with optional limit.
    std::vector<SortKey> keys = {{"s", rng.UniformInt(0, 1) == 1}};
    plan = plan.Sort(std::move(keys),
                     rng.UniformInt(0, 1) ? 0 : 5);
  }
  return plan;
}

class FuzzPlans : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPlans, WakeFinalAlwaysEqualsExact) {
  uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  Catalog cat = FuzzCatalog(seed);
  Rng rng(seed * 7919);
  for (int trial = 0; trial < 6; ++trial) {
    Plan plan = RandomPlan(rng);
    ExactEngine exact(&cat);
    WakeEngine engine(&cat);
    DataFrame expected = exact.Execute(plan.node());
    DataFrame got = engine.ExecuteFinal(plan.node());
    // Row order of shuffle-agg snapshots is insertion order, which can
    // differ from the exact engine's when merging partials; compare as
    // multisets by sorting on every column.
    std::vector<SortKey> all_cols;
    for (const auto& f : expected.schema().fields()) {
      all_cols.push_back({f.name, false});
    }
    std::string diff;
    EXPECT_TRUE(got.SortBy(all_cols).ApproxEquals(expected.SortBy(all_cols),
                                                  1e-6, &diff))
        << "seed=" << seed << " trial=" << trial << "\n"
        << PlanToString(plan.node()) << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPlans, ::testing::Range(0, 10));

}  // namespace
}  // namespace wake
