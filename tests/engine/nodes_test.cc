// Operator-node behaviour tests through small single-node (or few-node)
// engine runs on synthetic tables.
#include <gtest/gtest.h>

#include "baseline/exact_engine.h"
#include "core/engine.h"

namespace wake {
namespace {

// Clustered fact table: key 0..n-1 (clustering), dim in 0..3. By default
// val == key; with `decorrelate` set, values are position-independent so
// partitions are exchangeable (the OLA premise for estimate-quality tests).
Catalog SyntheticCatalog(size_t n, size_t partitions,
                         bool decorrelate = false) {
  Schema schema({{"key", ValueType::kInt64},
                 {"dim", ValueType::kInt64},
                 {"val", ValueType::kFloat64}});
  schema.set_primary_key({"key"});
  schema.set_clustering_key({"key"});
  DataFrame df(schema);
  for (size_t i = 0; i < n; ++i) {
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i));
    df.mutable_column(1)->AppendInt(static_cast<int64_t>(i % 4));
    df.mutable_column(2)->AppendDouble(
        static_cast<double>(decorrelate ? (i * 37) % 101 : i));
  }
  Schema dim_schema({{"d_id", ValueType::kInt64},
                     {"d_name", ValueType::kString}});
  dim_schema.set_primary_key({"d_id"});
  dim_schema.set_clustering_key({"d_id"});
  DataFrame dim(dim_schema);
  for (int i = 0; i < 4; ++i) {
    dim.mutable_column(0)->AppendInt(i);
    dim.mutable_column(1)->AppendString("dim" + std::to_string(i));
  }
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("fact", df, partitions)));
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("dim", dim, 1)));
  return cat;
}

TEST(ReaderNodeTest, EmitsOneStatePerPartitionWithMonotoneProgress) {
  Catalog cat = SyntheticCatalog(100, 5);
  WakeEngine engine(&cat);
  std::vector<double> progresses;
  size_t rows = 0;
  engine.Execute(Plan::Scan("fact").node(), [&](const OlaState& s) {
    if (s.is_final) {
      rows = s.frame->num_rows();
      return;
    }
    progresses.push_back(s.progress);
  });
  ASSERT_EQ(progresses.size(), 5u);
  for (size_t i = 1; i < progresses.size(); ++i) {
    EXPECT_GT(progresses[i], progresses[i - 1]);
  }
  EXPECT_DOUBLE_EQ(progresses.back(), 1.0);
  EXPECT_EQ(rows, 100u);
}

TEST(MapFilterNodeTest, StreamsPerPartial) {
  Catalog cat = SyntheticCatalog(100, 4);
  WakeEngine engine(&cat);
  Plan plan = Plan::Scan("fact")
                  .Filter(Lt(Expr::Col("val"), Expr::Float(50.0)))
                  .Map({{"v2", Expr::Col("val") * Expr::Int(2)}});
  size_t states = 0;
  DataFrame final_frame;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    ++states;
    if (s.is_final) final_frame = *s.frame;
  });
  EXPECT_GE(states, 4u);
  EXPECT_EQ(final_frame.num_rows(), 50u);
  EXPECT_DOUBLE_EQ(final_frame.column(0).DoubleAt(49), 98.0);
}

TEST(LocalAggNodeTest, AppendsCompleteGroupsOnly) {
  // Clustering-key groups: earlier states must be prefixes of the final
  // result, with values already exact (constant attributes, Case 1).
  Catalog cat = SyntheticCatalog(120, 6);
  WakeEngine engine(&cat);
  Plan plan = Plan::Scan("fact").Aggregate({"key"}, {Sum("val", "s")});
  DataFrame final_frame;
  std::vector<DataFrame> states;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) {
      final_frame = *s.frame;
    } else {
      states.push_back(*s.frame);
    }
  });
  ASSERT_EQ(final_frame.num_rows(), 120u);
  for (const DataFrame& state : states) {
    ASSERT_LE(state.num_rows(), final_frame.num_rows());
    std::string diff;
    EXPECT_TRUE(state.ApproxEquals(
        final_frame.Slice(0, state.num_rows()), 1e-12, &diff))
        << diff;
  }
}

TEST(ShuffleAggNodeTest, EstimatesConvergeToExact) {
  Catalog cat = SyntheticCatalog(1000, 10, /*decorrelate=*/true);
  WakeEngine engine(&cat);
  ExactEngine exact(&cat);
  Plan plan = Plan::Scan("fact").Aggregate({"dim"}, {Sum("val", "s"),
                                                     Count("n")});
  DataFrame expected = exact.Execute(plan.node());
  std::vector<DataFrame> states;
  DataFrame final_frame;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    if (s.is_final) {
      final_frame = *s.frame;
    } else {
      states.push_back(*s.frame);
    }
  });
  std::string diff;
  EXPECT_TRUE(final_frame.SortBy({{"dim", false}})
                  .ApproxEquals(expected.SortBy({{"dim", false}}), 1e-9,
                                &diff))
      << diff;
  // Uniform data: even the first estimate should be within 25% of truth.
  ASSERT_FALSE(states.empty());
  double truth = 0, first = 0;
  for (size_t g = 0; g < expected.num_rows(); ++g) {
    truth += expected.ColumnByName("s").DoubleAt(g);
  }
  for (size_t g = 0; g < states.front().num_rows(); ++g) {
    first += states.front().ColumnByName("s").DoubleAt(g);
  }
  EXPECT_NEAR(first, truth, 0.25 * truth);
}

TEST(HashJoinNodeTest, ProbeStreamsBuildBlocks) {
  Catalog cat = SyntheticCatalog(200, 8);
  WakeEngine engine(&cat);
  ExactEngine exact(&cat);
  Plan plan = Plan::Scan("fact").Join(Plan::Scan("dim"), JoinType::kInner,
                                      {"dim"}, {"d_id"});
  DataFrame expected = exact.Execute(plan.node());
  size_t states = 0;
  DataFrame final_frame;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    ++states;
    if (s.is_final) final_frame = *s.frame;
  });
  EXPECT_GE(states, 8u);  // one per probe partial
  std::string diff;
  EXPECT_TRUE(final_frame.ApproxEquals(expected, 1e-12, &diff)) << diff;
}

TEST(MergeJoinNodeTest, UsedForClusteredKeysAndCorrect) {
  // Self-join on the clustering key exercises MergeJoinNode.
  Catalog cat = SyntheticCatalog(150, 5);
  WakeEngine engine(&cat);
  ExactEngine exact(&cat);
  Plan right = Plan::Scan("fact").Map({{"rkey", Expr::Col("key")},
                                       {"rval", Expr::Col("val")}});
  // rkey keeps clustering? map renames, so clustering is dropped; instead
  // join fact with fact on key (clustering on both sides).
  Plan left = Plan::Scan("fact");
  Plan self = left.Join(Plan::Scan("fact").Project({"key", "dim"})
                            .Map({{"key2", Expr::Col("key")},
                                  {"dim2", Expr::Col("dim")}}),
                        JoinType::kInner, {"key"}, {"key2"});
  (void)right;
  DataFrame got = engine.ExecuteFinal(self.node());
  DataFrame expected = exact.Execute(self.node());
  std::string diff;
  EXPECT_TRUE(got.SortBy({{"key", false}})
                  .ApproxEquals(expected.SortBy({{"key", false}}), 1e-12,
                                &diff))
      << diff;
  EXPECT_EQ(got.num_rows(), 150u);
}

TEST(SortLimitNodeTest, EveryStateIsSortedAndLimited) {
  Catalog cat = SyntheticCatalog(90, 6);
  WakeEngine engine(&cat);
  Plan plan = Plan::Scan("fact").Sort({{"val", true}}, 10);
  size_t checked = 0;
  engine.Execute(plan.node(), [&](const OlaState& s) {
    const DataFrame& f = *s.frame;
    EXPECT_LE(f.num_rows(), 10u);
    for (size_t i = 1; i < f.num_rows(); ++i) {
      EXPECT_GE(f.ColumnByName("val").DoubleAt(i - 1),
                f.ColumnByName("val").DoubleAt(i));
    }
    ++checked;
  });
  EXPECT_GE(checked, 6u);
}

TEST(EngineTest, TraceCollectsSpansWhenEnabled) {
  Catalog cat = SyntheticCatalog(100, 4);
  WakeOptions options;
  options.trace = true;
  WakeEngine engine(&cat, options);
  engine.ExecuteFinal(
      Plan::Scan("fact").Aggregate({"dim"}, {Count("n")}).node());
  const auto& spans = engine.last_trace();
  ASSERT_FALSE(spans.empty());
  bool saw_reader = false, saw_agg = false;
  for (const auto& s : spans) {
    saw_reader |= s.node.find("read") != std::string::npos;
    saw_agg |= s.node.find("agg") != std::string::npos;
    EXPECT_GE(s.end_seconds, s.start_seconds);
  }
  EXPECT_TRUE(saw_reader);
  EXPECT_TRUE(saw_agg);
}

TEST(EngineTest, BufferedBytesReported) {
  Catalog cat = SyntheticCatalog(500, 4);
  WakeEngine engine(&cat);
  engine.ExecuteFinal(Plan::Scan("fact")
                          .Join(Plan::Scan("dim"), JoinType::kInner, {"dim"},
                                {"d_id"})
                          .Sort({{"val", true}}, 100)
                          .node());
  EXPECT_GT(engine.buffered_bytes(), 0u);
}

TEST(EngineTest, EmptyScanStillFinalizes) {
  Schema schema({{"x", ValueType::kInt64}});
  schema.set_clustering_key({"x"});
  Catalog cat;
  cat.Add(std::make_shared<PartitionedTable>(
      PartitionedTable::FromDataFrame("empty", DataFrame(schema), 1)));
  WakeEngine engine(&cat);
  bool finalized = false;
  engine.Execute(Plan::Scan("empty").Aggregate({}, {Count("n")}).node(),
                 [&](const OlaState& s) { finalized |= s.is_final; });
  EXPECT_TRUE(finalized);
}

}  // namespace
}  // namespace wake
