// The kIngest/kIngestAck wire path: codec roundtrips, end-to-end remote
// appends through Server::HandleIngest + Client::Ingest (with the
// appended rows visible to remote queries, byte-identical to local
// execution), server-side rejections keeping their error category, and
// drain refusing new appends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "api/db.h"
#include "client/client.h"
#include "common/error.h"
#include "ingest/live_table.h"
#include "server/protocol.h"
#include "server/server.h"

namespace wake {
namespace {

namespace fs = std::filesystem;
using protocol::FrameType;

Schema EventSchema() {
  return Schema({{"k", ValueType::kString},
                 {"v", ValueType::kFloat64},
                 {"id", ValueType::kInt64}});
}

DataFrame MakeRows(int64_t start, int64_t n) {
  DataFrame df(EventSchema());
  *df.mutable_column(0) = Column::NewDict();
  for (int64_t i = start; i < start + n; ++i) {
    df.mutable_column(0)->AppendString("g" + std::to_string(i % 5));
    df.mutable_column(1)->AppendDouble(static_cast<double>(i) * 0.5);
    df.mutable_column(2)->AppendInt(i);
  }
  return df;
}

std::string WireBytes(const DataFrame& df) {
  wire::WireWriter w;
  protocol::EncodeDataFrame(df, &w);
  return w.Take();
}

ServerOptions FastServer() {
  ServerOptions options;
  options.heartbeat_interval_ms = 100;
  options.heartbeat_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  return options;
}

ClientOptions FastClient(uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 5000;
  options.heartbeat_interval_ms = 100;
  options.heartbeat_timeout_ms = 2000;
  options.backoff.initial_ms = 20;
  options.backoff.max_ms = 250;
  options.backoff.max_attempts = 6;
  return options;
}

TEST(IngestCodec, IngestRoundtrip) {
  protocol::Ingest msg;
  msg.ingest_id = 42;
  msg.table = "events";
  msg.rows = std::make_shared<DataFrame>(MakeRows(7, 13));

  protocol::Ingest back = protocol::DecodeIngest(protocol::Encode(msg));
  EXPECT_EQ(back.ingest_id, 42u);
  EXPECT_EQ(back.table, "events");
  ASSERT_NE(back.rows, nullptr);
  EXPECT_EQ(WireBytes(*back.rows), WireBytes(*msg.rows));
}

TEST(IngestCodec, IngestAckRoundtrip) {
  protocol::IngestAck ack;
  ack.ingest_id = 9;
  ack.ok = false;
  ack.epoch = 17;
  ack.total_rows = 1234;
  ack.category = ErrorCategory::kResourceExhausted;
  ack.message = "tablet retention dropped rows";

  protocol::IngestAck back = protocol::DecodeIngestAck(protocol::Encode(ack));
  EXPECT_EQ(back.ingest_id, 9u);
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.epoch, 17u);
  EXPECT_EQ(back.total_rows, 1234u);
  EXPECT_EQ(back.category, ErrorCategory::kResourceExhausted);
  EXPECT_EQ(back.message, "tablet retention dropped rows");
}

TEST(IngestCodec, UnknownAckCategoryDecodesAsExecution) {
  protocol::IngestAck ack;
  ack.ingest_id = 1;
  ack.ok = false;
  ack.category = ErrorCategory::kPlan;
  ack.message = "x";
  std::string payload = protocol::Encode(ack);
  // The category byte sits right after ingest_id(8) + ok(1) + epoch(8) +
  // total_rows(8); a future category from a newer peer must not crash an
  // older decoder.
  payload[8 + 1 + 8 + 8] = static_cast<char>(0xEE);
  EXPECT_EQ(protocol::DecodeIngestAck(payload).category,
            ErrorCategory::kExecution);
}

class IngestEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    live_ = std::make_shared<LiveTable>("events", EventSchema(),
                                        LiveTableOptions{});
    catalog_.AddDynamic(live_);
    catalog_.Add(std::make_shared<PartitionedTable>(
        PartitionedTable::FromDataFrame("fixed", MakeRows(0, 8), 2)));
  }

  std::shared_ptr<LiveTable> live_;
  Catalog catalog_;
};

TEST_F(IngestEndToEndTest, RemoteAppendsVisibleToRemoteQueries) {
  Db db(&catalog_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));

  IngestResult first = client.Ingest("events", MakeRows(0, 100));
  EXPECT_EQ(first.total_rows, 100u);
  EXPECT_GE(first.epoch, 1u);
  IngestResult second = client.Ingest("events", MakeRows(100, 50));
  EXPECT_EQ(second.total_rows, 150u);
  EXPECT_GT(second.epoch, first.epoch);
  EXPECT_EQ(client.stats().ingests_acked, 2u);
  EXPECT_EQ(live_->stats().rows_appended, 150u);

  const std::string sql =
      "SELECT k, SUM(v) AS s, COUNT(*) AS c FROM events "
      "GROUP BY k ORDER BY k";
  QueryResult remote = client.Execute(sql);
  ASSERT_NE(remote.frame, nullptr);
  DataFrame local = db.Prepare(sql).Execute();
  EXPECT_EQ(WireBytes(*remote.frame), WireBytes(local));
  EXPECT_EQ(remote.frame->num_rows(), 5u);  // five distinct keys

  client.Close();
  EXPECT_TRUE(server.Shutdown(1000));
}

TEST_F(IngestEndToEndTest, RejectionsKeepTheirErrorCategory) {
  Db db(&catalog_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));

  // Unknown table and static table are plan errors, not retryable.
  for (const char* table : {"nope", "fixed"}) {
    try {
      client.Ingest(table, MakeRows(0, 4));
      FAIL() << "expected kPlan for table " << table;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kPlan) << table;
      EXPECT_FALSE(e.retryable()) << table;
    }
  }
  // Schema-mismatched rows are rejected server-side, connection intact.
  DataFrame bad(Schema({{"x", ValueType::kInt64}}));
  bad.mutable_column(0)->AppendInt(1);
  EXPECT_THROW(client.Ingest("events", bad), Error);
  EXPECT_EQ(live_->stats().rows_appended, 0u);

  // The connection survives rejected appends: a good one still lands.
  EXPECT_EQ(client.Ingest("events", MakeRows(0, 4)).total_rows, 4u);

  client.Close();
  EXPECT_TRUE(server.Shutdown(1000));
}

TEST_F(IngestEndToEndTest, DrainingServerRefusesAppends) {
  Db db(&catalog_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));
  ASSERT_EQ(client.Ingest("events", MakeRows(0, 4)).total_rows, 4u);

  std::thread drainer([&] { server.Shutdown(2000); });
  bool refused = false;
  // The drain announcement races the next append; whichever way it
  // lands, no append may be silently dropped: each either acks (rows
  // counted) or throws.
  uint64_t acked_rows = 4;
  for (int i = 0; i < 50 && !refused; ++i) {
    try {
      IngestResult r = client.Ingest("events", MakeRows(0, 1));
      acked_rows += 1;
      EXPECT_EQ(r.total_rows, acked_rows);
    } catch (const Error&) {
      refused = true;
    }
  }
  drainer.join();
  EXPECT_TRUE(refused) << "shutdown never refused an append";
  EXPECT_EQ(live_->stats().rows_appended, acked_rows);
  client.Close();
}

}  // namespace
}  // namespace wake
