// End-to-end wake::Server <-> wake::Client over loopback: byte-identical
// results, multiplexed streams, admission rejections with retry hints,
// cancellation, heartbeat kills, slow consumers, reconnect after restart,
// and graceful drain. Runs in every CI configuration (no failpoints
// needed; the network-fault sweeps live in tests/chaos/net_chaos_test.cc).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "client/client.h"
#include "common/error.h"
#include "common/socket.h"
#include "engine/tpch_fixture.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

using protocol::FrameType;

/// Heavy enough to reliably hold an admission slot / be mid-flight when
/// the test acts (same role it plays in tests/api/admission_test.cc).
constexpr int kHeavyQuery = 9;

ServerOptions FastServer() {
  ServerOptions options;
  options.heartbeat_interval_ms = 100;
  options.heartbeat_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  return options;
}

ClientOptions FastClient(uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 5000;
  options.heartbeat_interval_ms = 100;
  options.heartbeat_timeout_ms = 2000;
  options.backoff.initial_ms = 20;
  options.backoff.max_ms = 250;
  options.backoff.max_attempts = 6;
  return options;
}

/// Polls `pred` for up to `budget_ms`; true when it held.
bool EventuallyMs(int64_t budget_ms, const std::function<bool()>& pred) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class ServerClientTest : public ::testing::Test {
 protected:
  const Catalog& cat_ = testing::SharedTpch();
};

TEST_F(ServerClientTest, RemoteResultIsByteIdenticalToLocal) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));
  for (int q : {1, 3, 6}) {
    DataFrame local = db.Prepare(tpch::QuerySql(q)).Execute();
    QueryResult remote = client.Execute(tpch::QuerySql(q));
    ASSERT_TRUE(remote.frame != nullptr) << "q" << q;
    EXPECT_EQ(remote.status, ResultStatus::kFinal);
    std::string diff;
    EXPECT_TRUE(remote.frame->ApproxEquals(local, 0.0, &diff))
        << "q" << q << ": " << diff;
  }
  client.Close();
  EXPECT_TRUE(server.Shutdown(1000));
}

TEST_F(ServerClientTest, StreamingSnapshotsConvergeToFinal) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));
  DataFrame local = db.Prepare(tpch::QuerySql(1)).Execute();

  RemoteQuery handle = client.Submit(tpch::QuerySql(1));
  size_t snapshots = 0;
  double last_progress = -1.0;
  bool saw_final = false;
  while (auto s = handle.Next()) {
    ++snapshots;
    EXPECT_GE(s->progress, last_progress) << "progress went backwards";
    last_progress = s->progress;
    saw_final = s->is_final;
    ASSERT_TRUE(s->frame != nullptr);
  }
  EXPECT_GE(snapshots, 1u);
  EXPECT_TRUE(saw_final) << "stream ended without a final snapshot";
  QueryResult result = handle.Result();
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

TEST_F(ServerClientTest, MultiplexedQueriesShareOneConnection) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));

  const std::vector<int> queries = {6, 12, 14, 19};
  std::vector<RemoteQuery> handles;
  for (int q : queries) handles.push_back(client.Submit(tpch::QuerySql(q)));
  for (size_t i = 0; i < handles.size(); ++i) {
    QueryResult remote = handles[i].Result();
    DataFrame local = db.Prepare(tpch::QuerySql(queries[i])).Execute();
    std::string diff;
    EXPECT_TRUE(remote.frame->ApproxEquals(local, 0.0, &diff))
        << "q" << queries[i] << ": " << diff;
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.queries_started, 4u);
  server.Stop();
}

TEST_F(ServerClientTest, ExactEngineRunsRemotely) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));
  RemoteRunOptions run;
  run.engine = QueryEngine::kExact;
  QueryResult remote = client.Execute(tpch::QuerySql(6), run);
  DataFrame local = db.Prepare(tpch::QuerySql(6)).Execute();
  std::string diff;
  EXPECT_TRUE(remote.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

TEST_F(ServerClientTest, QueueFullSurfacesRetryableWithHint) {
  DbOptions gated;
  gated.max_concurrent_queries = 1;
  gated.max_queued = 0;
  Db db(&cat_, gated);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));

  RemoteQuery heavy = client.Submit(tpch::QuerySql(kHeavyQuery));
  ASSERT_TRUE(heavy.Next().has_value()) << "heavy query produced no state";
  // The slot is taken and the queue is zero-depth: this submit must be
  // rejected with the retryable category and a backoff hint.
  RemoteQuery rejected = client.Submit(tpch::QuerySql(6));
  try {
    rejected.Result();
    FAIL() << "expected kQueueFull";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kQueueFull);
    EXPECT_TRUE(e.retryable());
    EXPECT_GT(e.retry_after_ms(), 0);
  }
  heavy.Cancel();
  heavy.Wait();
  // Once the slot frees, Execute()'s retry loop recovers on its own.
  EXPECT_TRUE(EventuallyMs(5000, [&] {
    return server.stats().active_queries == 0;
  }));
  QueryResult ok = client.Execute(tpch::QuerySql(6));
  EXPECT_EQ(ok.status, ResultStatus::kFinal);
  server.Stop();
}

TEST_F(ServerClientTest, CancelPropagatesToServer) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));
  RemoteQuery handle = client.Submit(tpch::QuerySql(kHeavyQuery));
  ASSERT_TRUE(handle.Next().has_value());
  handle.Cancel();
  // Either the cancel landed (kCancelled) or it raced completion.
  try {
    QueryResult result = handle.Result();
    EXPECT_TRUE(result.frame != nullptr);
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
  }
  EXPECT_TRUE(EventuallyMs(5000, [&] {
    return server.stats().active_queries == 0;
  })) << "server leaked a cancelled query";
  server.Stop();
}

TEST_F(ServerClientTest, DisconnectCancelsInFlightQueries) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  {
    Client client(FastClient(server.port()));
    RemoteQuery handle = client.Submit(tpch::QuerySql(kHeavyQuery));
    ASSERT_TRUE(handle.Next().has_value());
    client.Close();  // vanishing consumer
  }
  EXPECT_TRUE(EventuallyMs(5000, [&] {
    ServerStats stats = server.stats();
    return stats.active_queries == 0 && stats.active_connections == 0;
  })) << "disconnected client left a query running";
  server.Stop();
}

TEST_F(ServerClientTest, SlowConsumerStillGetsFinalSnapshot) {
  Db db(&cat_);
  ServerOptions options = FastServer();
  options.max_snapshot_backlog = 2;  // tight: drops intermediates readily
  Server server(&db, options);
  server.Start();
  Client client(FastClient(server.port()));
  DataFrame local = db.Prepare(tpch::QuerySql(1)).Execute();

  RemoteQuery handle = client.Submit(tpch::QuerySql(1));
  bool saw_final = false;
  size_t snapshots = 0;
  while (auto s = handle.Next()) {
    ++snapshots;
    saw_final = s->is_final;
    std::this_thread::sleep_for(std::chrono::milliseconds(40));  // lag
  }
  EXPECT_TRUE(saw_final)
      << "slow consumer lost the final snapshot (" << snapshots << " seen)";
  QueryResult result = handle.Result();
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

TEST_F(ServerClientTest, HeartbeatKillsSilentConnection) {
  Db db(&cat_);
  ServerOptions options = FastServer();
  options.heartbeat_interval_ms = 50;
  options.heartbeat_timeout_ms = 250;
  Server server(&db, options);
  server.Start();

  // A raw socket that handshakes, then goes silent (no pongs, no reads
  // from our side are required — the server just hears nothing).
  net::Socket raw = net::Connect("127.0.0.1", server.port(), 2000);
  protocol::Hello hello;
  hello.client_name = "zombie";
  protocol::SendFrame(raw, FrameType::kHello, protocol::Encode(hello), 2000,
                      1u << 20);
  protocol::RecvResult welcome = protocol::RecvFrame(raw, 2000, 2000, 1u << 20);
  ASSERT_EQ(welcome.status, protocol::RecvResult::Status::kFrame);
  ASSERT_EQ(welcome.type, FrameType::kWelcome);

  EXPECT_TRUE(EventuallyMs(5000, [&] {
    return server.stats().heartbeat_kills >= 1;
  })) << "silent connection was never killed";
  EXPECT_TRUE(EventuallyMs(2000, [&] {
    return server.stats().active_connections == 0;
  }));
  server.Stop();
}

TEST_F(ServerClientTest, ConnectionCapRejectsWithRetryableError) {
  Db db(&cat_);
  ServerOptions options = FastServer();
  options.max_connections = 1;
  Server server(&db, options);
  server.Start();

  Client first(FastClient(server.port()));
  first.Connect();
  ClientOptions second_options = FastClient(server.port());
  second_options.backoff.max_attempts = 2;
  Client second(second_options);
  try {
    second.Connect();
    FAIL() << "expected rejection at connection capacity";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUnavailable);
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_GE(server.stats().connections_rejected, 1u);
  // Capacity frees with the first client; the second can now connect.
  first.Close();
  EXPECT_TRUE(EventuallyMs(3000, [&] {
    try {
      second.Connect();
      return true;
    } catch (const Error&) {
      return false;
    }
  }));
  server.Stop();
}

TEST_F(ServerClientTest, ClientReconnectsAfterServerRestart) {
  Db db(&cat_);
  auto server1 = std::make_unique<Server>(&db, FastServer());
  server1->Start();
  uint16_t port = server1->port();

  Client client(FastClient(port));
  QueryResult before = client.Execute(tpch::QuerySql(6));
  EXPECT_EQ(before.status, ResultStatus::kFinal);

  server1->Shutdown(1000);
  server1.reset();
  ServerOptions takeover = FastServer();
  takeover.port = port;
  Server server2(&db, takeover);
  server2.Start();

  // Execute() transparently reconnects (retryable error path) and the
  // result is still byte-identical.
  QueryResult after = client.Execute(tpch::QuerySql(6));
  std::string diff;
  EXPECT_TRUE(after.frame->ApproxEquals(*before.frame, 0.0, &diff)) << diff;
  EXPECT_GE(client.stats().reconnects, 1u);
  server2.Stop();
}

TEST_F(ServerClientTest, GracefulDrainLetsInFlightQueriesFinish) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));

  RemoteQuery handle = client.Submit(tpch::QuerySql(kHeavyQuery));
  ASSERT_TRUE(handle.Next().has_value());
  // Drain with a generous budget: the in-flight query must finish
  // naturally and the client must still receive every terminal frame.
  std::thread consumer([&] {
    while (handle.Next()) {
    }
  });
  bool clean = server.Shutdown(60000);
  consumer.join();
  EXPECT_TRUE(clean);
  QueryResult result = handle.Result();
  EXPECT_EQ(result.status, ResultStatus::kFinal);
  EXPECT_TRUE(client.server_draining());
}

TEST_F(ServerClientTest, ZeroDrainCancelsStragglersWithTerminalError) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));

  RemoteQuery handle = client.Submit(tpch::QuerySql(kHeavyQuery));
  ASSERT_TRUE(handle.Next().has_value());
  bool clean = server.Shutdown(0);
  // Whether the query is still mid-flight when the zero-budget drain
  // lands is a race. The invariants: the client always gets a terminal
  // (never a hang), and a query the drain cut down is never reported as
  // a clean shutdown.
  try {
    QueryResult result = handle.Result();
    EXPECT_EQ(result.status, ResultStatus::kFinal)
        << "query finished just before the cancel landed";
  } catch (const Error& e) {
    EXPECT_FALSE(clean) << "a cancelled straggler cannot be a clean drain";
    EXPECT_TRUE(e.category() == ErrorCategory::kCancelled ||
                e.category() == ErrorCategory::kNetwork ||
                e.category() == ErrorCategory::kUnavailable)
        << ErrorCategoryName(e.category());
  }
}

TEST_F(ServerClientTest, PartialIoReassemblyStaysByteIdentical) {
  Db db(&cat_);
  Server server(&db, FastServer());
  server.Start();
  Client client(FastClient(server.port()));
  DataFrame local = db.Prepare(tpch::QuerySql(6)).Execute();
  net::TestSetIoChunk(7);  // every syscall moves at most 7 bytes
  QueryResult remote = client.Execute(tpch::QuerySql(6));
  net::TestSetIoChunk(0);
  std::string diff;
  EXPECT_TRUE(remote.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

}  // namespace
}  // namespace wake
