// Wire + message codec robustness: every message type survives a
// round trip bit-for-bit, and every malformed input — truncated,
// corrupted, oversized, out-of-range — fails with a categorized
// wake::Error(kProtocol), never a crash or an over-allocation.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/socket.h"
#include "common/wire.h"
#include "frame/data_frame.h"
#include "server/protocol.h"

namespace wake {
namespace {

using protocol::FrameType;

DataFrame MakeFrame() {
  Schema schema({{"k", ValueType::kInt64},
                 {"v", ValueType::kFloat64},
                 {"s", ValueType::kString}});
  DataFrame df(schema);
  *df.mutable_column(0) = Column::FromInts({3, 1, 2, 1});
  *df.mutable_column(1) =
      Column::FromDoubles({30.5, 1.0 / 3.0, -0.0, 6.02214076e23});
  *df.mutable_column(2) = Column::FromStrings({"c", "", "b", "a"});
  df.mutable_column(1)->SetNull(2);
  df.mutable_column(2)->SetNull(1);
  return df;
}

TEST(WireTest, Crc32KnownVector) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(wire::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(wire::Crc32("", 0), 0u);
}

TEST(WireTest, FrameHeaderRoundTrip) {
  wire::FrameHeader header;
  header.type = 5;
  header.payload_len = 1234;
  header.crc = 0xDEADBEEF;
  uint8_t buf[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, buf);
  wire::FrameHeader back = wire::DecodeFrameHeader(buf, 1u << 20);
  EXPECT_EQ(back.version, wire::kProtocolVersion);
  EXPECT_EQ(back.type, 5);
  EXPECT_EQ(back.payload_len, 1234u);
  EXPECT_EQ(back.crc, 0xDEADBEEFu);
}

TEST(WireTest, FrameHeaderRejectsGarbage) {
  wire::FrameHeader header;
  header.type = 1;
  header.payload_len = 16;
  uint8_t good[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, good);

  struct Case {
    const char* name;
    void (*corrupt)(uint8_t*);
    size_t max_payload;
  };
  const Case cases[] = {
      {"bad magic", [](uint8_t* b) { b[0] ^= 0xFF; }, 1u << 20},
      {"bad version", [](uint8_t* b) { b[4] = 99; }, 1u << 20},
      {"reserved bits set", [](uint8_t* b) { b[6] = 1; }, 1u << 20},
      {"oversized payload", [](uint8_t*) {}, 8},  // 16 > max_payload 8
  };
  for (const Case& c : cases) {
    uint8_t buf[wire::kFrameHeaderBytes];
    std::memcpy(buf, good, sizeof(buf));
    c.corrupt(buf);
    try {
      wire::DecodeFrameHeader(buf, c.max_payload);
      FAIL() << c.name << ": expected kProtocol";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kProtocol) << c.name;
      EXPECT_FALSE(e.retryable()) << c.name;
    }
  }
}

TEST(WireTest, ReaderBoundsChecked) {
  wire::WireWriter w;
  w.U32(7);
  std::string buf = w.Take();
  wire::WireReader r(buf.data(), buf.size());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_THROW(r.U8(), Error);
  try {
    wire::WireReader r2(buf.data(), buf.size());
    r2.U64();
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
  }
}

TEST(ProtocolTest, ControlMessagesRoundTrip) {
  protocol::Hello hello;
  hello.client_name = "dashboard-7";
  protocol::Hello hello2 = protocol::DecodeHello(protocol::Encode(hello));
  EXPECT_EQ(hello2.protocol_version, wire::kProtocolVersion);
  EXPECT_EQ(hello2.client_name, "dashboard-7");

  protocol::Welcome welcome;
  welcome.server_name = "wake";
  welcome.session_id = 42;
  protocol::Welcome welcome2 =
      protocol::DecodeWelcome(protocol::Encode(welcome));
  EXPECT_EQ(welcome2.server_name, "wake");
  EXPECT_EQ(welcome2.session_id, 42u);

  protocol::Accepted accepted;
  accepted.query_id = 9;
  EXPECT_EQ(protocol::DecodeAccepted(protocol::Encode(accepted)).query_id, 9u);

  protocol::Cancel cancel;
  cancel.query_id = 11;
  EXPECT_EQ(protocol::DecodeCancel(protocol::Encode(cancel)).query_id, 11u);

  protocol::Ping ping;
  ping.nonce = 77;
  EXPECT_EQ(protocol::DecodePing(protocol::Encode(ping)).nonce, 77u);

  protocol::Drain drain;
  drain.deadline_ms = 2500;
  EXPECT_EQ(protocol::DecodeDrain(protocol::Encode(drain)).deadline_ms, 2500);

  protocol::Goodbye goodbye;
  goodbye.reason = "drained";
  EXPECT_EQ(protocol::DecodeGoodbye(protocol::Encode(goodbye)).reason,
            "drained");
}

TEST(ProtocolTest, SubmitRoundTrip) {
  protocol::Submit submit;
  submit.query_id = 3;
  submit.sql = "SELECT COUNT(*) FROM lineitem";
  submit.engine = QueryEngine::kExact;
  submit.with_ci = true;
  submit.on_breach = OnBreach::kFail;
  submit.memory_limit_bytes = 1 << 20;
  submit.timeout_ms = 1500;
  submit.max_rows_scanned = 123456;
  submit.max_buffered_states = 3;
  submit.admission_timeout_ms = 250;
  protocol::Submit back = protocol::DecodeSubmit(protocol::Encode(submit));
  EXPECT_EQ(back.query_id, 3u);
  EXPECT_EQ(back.sql, submit.sql);
  EXPECT_EQ(back.engine, QueryEngine::kExact);
  EXPECT_TRUE(back.with_ci);
  EXPECT_EQ(back.on_breach, OnBreach::kFail);
  EXPECT_EQ(back.memory_limit_bytes, submit.memory_limit_bytes);
  EXPECT_EQ(back.timeout_ms, 1500);
  EXPECT_EQ(back.max_rows_scanned, 123456u);
  EXPECT_EQ(back.max_buffered_states, 3u);
  EXPECT_EQ(back.admission_timeout_ms, 250);
}

TEST(ProtocolTest, SnapshotRoundTripBitIdentical) {
  protocol::Snapshot snap;
  snap.query_id = 8;
  snap.is_final = true;
  snap.progress = 0.625;
  snap.elapsed_seconds = 1.5;
  snap.frame = std::make_shared<const DataFrame>(MakeFrame());
  auto variances = std::make_shared<VarianceMap>();
  (*variances)["v"] = {0.5, 0.25, 1.0 / 7.0, 0.0};
  snap.variances = variances;

  protocol::Snapshot back = protocol::DecodeSnapshot(protocol::Encode(snap));
  EXPECT_EQ(back.query_id, 8u);
  EXPECT_TRUE(back.is_final);
  EXPECT_EQ(back.progress, 0.625);
  EXPECT_EQ(back.elapsed_seconds, 1.5);
  std::string diff;
  ASSERT_TRUE(back.frame != nullptr);
  EXPECT_TRUE(back.frame->ApproxEquals(*snap.frame, 0.0, &diff)) << diff;
  EXPECT_TRUE(back.frame->column(1).IsNull(2));
  EXPECT_TRUE(back.frame->column(2).IsNull(1));
  ASSERT_TRUE(back.variances != nullptr);
  ASSERT_EQ(back.variances->count("v"), 1u);
  EXPECT_EQ(back.variances->at("v"), variances->at("v"));
}

TEST(ProtocolTest, TerminalMessagesRoundTrip) {
  protocol::QueryDone done;
  done.query_id = 4;
  done.status = ResultStatus::kPartialBudget;
  done.breach = BreachReason::kDeadline;
  done.progress = 0.375;
  protocol::QueryDone done2 = protocol::DecodeQueryDone(protocol::Encode(done));
  EXPECT_EQ(done2.status, ResultStatus::kPartialBudget);
  EXPECT_EQ(done2.breach, BreachReason::kDeadline);
  EXPECT_EQ(done2.progress, 0.375);

  protocol::QueryError err;
  err.query_id = 4;
  err.category = ErrorCategory::kQueueFull;
  err.retry_after_ms = 150;
  err.message = "admission queue full";
  protocol::QueryError err2 =
      protocol::DecodeQueryError(protocol::Encode(err));
  Error rebuilt = protocol::ToError(err2);
  EXPECT_EQ(rebuilt.category(), ErrorCategory::kQueueFull);
  EXPECT_TRUE(rebuilt.retryable());
  EXPECT_EQ(rebuilt.retry_after_ms(), 150);
  EXPECT_STREQ(rebuilt.what(), "admission queue full");
}

// The fuzz-style table: systematically malformed payloads must all throw
// kProtocol. Every prefix of a valid payload is a truncation case; a few
// targeted corruptions cover out-of-range enums and forged sizes.
TEST(ProtocolTest, MalformedPayloadTable) {
  protocol::Submit submit;
  submit.query_id = 1;
  submit.sql = "SELECT 1";
  std::string valid_submit = protocol::Encode(submit);

  protocol::Snapshot snap;
  snap.query_id = 2;
  snap.frame = std::make_shared<const DataFrame>(MakeFrame());
  std::string valid_snapshot = protocol::Encode(snap);

  // Truncations: every strict prefix must be rejected, never crash.
  for (size_t n = 0; n < valid_submit.size(); ++n) {
    try {
      protocol::DecodeSubmit(valid_submit.substr(0, n));
      FAIL() << "submit truncated to " << n << " bytes decoded";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kProtocol) << "at " << n;
    }
  }
  for (size_t n = 0; n < valid_snapshot.size(); n += 3) {
    try {
      protocol::DecodeSnapshot(valid_snapshot.substr(0, n));
      FAIL() << "snapshot truncated to " << n << " bytes decoded";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kProtocol) << "at " << n;
    }
  }

  // Out-of-range enum byte: Submit's engine is the u8 right after
  // query_id (u64) + sql (u32 len + bytes).
  {
    std::string bad = valid_submit;
    size_t engine_off = 8 + 4 + submit.sql.size();
    ASSERT_LT(engine_off, bad.size());
    bad[engine_off] = static_cast<char>(0x7F);
    EXPECT_THROW(protocol::DecodeSubmit(bad), Error);
    try {
      protocol::DecodeSubmit(bad);
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
    }
  }

  // A forged row count must fail the bounds check BEFORE allocating.
  {
    wire::WireWriter w;
    protocol::EncodeSchema(snap.frame->schema(), &w);
    w.U64(0xFFFFFFFFFFFFull);  // claims ~280 trillion rows
    std::string forged = w.Take();
    wire::WireReader r(forged.data(), forged.size());
    try {
      protocol::DecodeDataFrame(&r);
      FAIL() << "forged row count decoded";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
    }
  }

  // Unknown error category byte decodes as kExecution (fatal), not UB.
  {
    protocol::QueryError err;
    err.category = ErrorCategory::kExecution;
    std::string payload = protocol::Encode(err);
    payload[8] = static_cast<char>(0xEE);  // category byte after query_id
    protocol::QueryError back = protocol::DecodeQueryError(payload);
    EXPECT_EQ(back.category, ErrorCategory::kExecution);
    EXPECT_FALSE(protocol::ToError(back).retryable());
  }
}

// Frame I/O over a real loopback socket: CRC corruption, truncation and
// oversize must surface as categorized errors on the receiving side.
class FrameIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    listener_ = net::Listen("127.0.0.1", 0);
    uint16_t port = net::LocalPort(listener_);
    client_ = net::Connect("127.0.0.1", port, 2000);
    server_ = net::Accept(listener_, 2000);
    ASSERT_TRUE(server_.valid());
  }
  void TearDown() override { net::TestSetIoChunk(0); }

  net::Socket listener_, client_, server_;
};

TEST_F(FrameIoTest, SendRecvRoundTrip) {
  protocol::Ping ping;
  ping.nonce = 123;
  protocol::SendFrame(client_, FrameType::kPing, protocol::Encode(ping), 2000,
                      1u << 20);
  protocol::RecvResult r = protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
  ASSERT_EQ(r.status, protocol::RecvResult::Status::kFrame);
  EXPECT_EQ(r.type, FrameType::kPing);
  EXPECT_EQ(protocol::DecodePing(r.payload).nonce, 123u);
}

TEST_F(FrameIoTest, RoundTripSurvivesPartialIo) {
  // Force every send/recv syscall to move at most 3 bytes: headers and
  // payloads arrive torn and must be reassembled.
  net::TestSetIoChunk(3);
  protocol::Snapshot snap;
  snap.query_id = 5;
  snap.frame = std::make_shared<const DataFrame>(MakeFrame());
  std::string payload = protocol::Encode(snap);
  std::thread sender([&] {
    protocol::SendFrame(client_, FrameType::kSnapshot, payload, 5000,
                        1u << 20);
  });
  protocol::RecvResult r = protocol::RecvFrame(server_, 5000, 5000, 1u << 20);
  sender.join();
  ASSERT_EQ(r.status, protocol::RecvResult::Status::kFrame);
  protocol::Snapshot back = protocol::DecodeSnapshot(r.payload);
  std::string diff;
  EXPECT_TRUE(back.frame->ApproxEquals(*snap.frame, 0.0, &diff)) << diff;
}

TEST_F(FrameIoTest, IdleAndEofAreNormalOutcomes) {
  protocol::RecvResult idle = protocol::RecvFrame(server_, 50, 2000, 1u << 20);
  EXPECT_EQ(idle.status, protocol::RecvResult::Status::kIdle);
  client_.Close();
  protocol::RecvResult eof = protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
  EXPECT_EQ(eof.status, protocol::RecvResult::Status::kEof);
}

TEST_F(FrameIoTest, CorruptCrcRejected) {
  protocol::Ping ping;
  ping.nonce = 1;
  std::string payload = protocol::Encode(ping);
  wire::FrameHeader header;
  header.type = static_cast<uint8_t>(FrameType::kPing);
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.crc = wire::Crc32(payload.data(), payload.size()) ^ 0x1;  // flip
  uint8_t hdr[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, hdr);
  net::SendAll(client_, hdr, sizeof(hdr), 2000);
  net::SendAll(client_, payload.data(), payload.size(), 2000);
  try {
    protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
    FAIL() << "corrupt CRC accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
  }
}

TEST_F(FrameIoTest, TruncatedFrameRejected) {
  // A header promising 100 payload bytes, then the peer closes without
  // sending any of them: a frame already in flight was cut off — that
  // is a protocol violation, never a clean EOF.
  wire::FrameHeader header;
  header.type = static_cast<uint8_t>(FrameType::kGoodbye);
  header.payload_len = 100;
  header.crc = 0;
  uint8_t hdr[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, hdr);
  net::SendAll(client_, hdr, sizeof(hdr), 2000);
  client_.Close();
  try {
    protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
    FAIL() << "truncated frame accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
  }
}

TEST_F(FrameIoTest, TornPayloadRejected) {
  // Same truncation but mid-payload (10 of 100 bytes land): surfaces as
  // a torn read — kNetwork, the retryable transport category — and is
  // never accepted as a frame.
  wire::FrameHeader header;
  header.type = static_cast<uint8_t>(FrameType::kGoodbye);
  header.payload_len = 100;
  header.crc = 0;
  uint8_t hdr[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, hdr);
  net::SendAll(client_, hdr, sizeof(hdr), 2000);
  net::SendAll(client_, "0123456789", 10, 2000);
  client_.Close();
  try {
    protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
    FAIL() << "torn frame accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kNetwork);
  }
}

TEST_F(FrameIoTest, OversizedFrameRejectedBothSides) {
  std::string big(256, 'x');
  EXPECT_THROW(
      protocol::SendFrame(client_, FrameType::kGoodbye, big, 2000, 64),
      Error);
  // Hand-roll the oversized header to test the receiving side too.
  wire::FrameHeader header;
  header.type = static_cast<uint8_t>(FrameType::kGoodbye);
  header.payload_len = 1u << 30;
  header.crc = 0;
  uint8_t hdr[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, hdr);
  net::SendAll(client_, hdr, sizeof(hdr), 2000);
  try {
    protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
    FAIL() << "oversized frame accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
  }
}

TEST_F(FrameIoTest, UnknownFrameTypeRejected) {
  std::string payload = "??";
  wire::FrameHeader header;
  header.type = 200;  // no such FrameType
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.crc = wire::Crc32(payload.data(), payload.size());
  uint8_t hdr[wire::kFrameHeaderBytes];
  wire::EncodeFrameHeader(header, hdr);
  net::SendAll(client_, hdr, sizeof(hdr), 2000);
  net::SendAll(client_, payload.data(), payload.size(), 2000);
  try {
    protocol::RecvFrame(server_, 2000, 2000, 1u << 20);
    FAIL() << "unknown frame type accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kProtocol);
  }
}

}  // namespace
}  // namespace wake
