// Acceptance sweep: every TPC-H query executed through the server must
// be byte-identical to the same query run in-process against the same
// Db. This is the end-to-end guarantee that serialization, streaming,
// and the client reassembly path add exactly nothing to the result.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/db.h"
#include "client/client.h"
#include "engine/tpch_fixture.h"
#include "server/server.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

class ServerTpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Db>(&testing::SharedTpch());
    server_ = std::make_unique<Server>(db_.get());
    server_->Start();
    ClientOptions copts;
    copts.port = server_->port();
    client_ = std::make_unique<Client>(copts);
  }

  void TearDown() override {
    client_->Close();
    server_->Stop();
  }

  std::unique_ptr<Db> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

class ServerTpchQuery : public ServerTpchTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(ServerTpchQuery, RemoteMatchesLocalExactly) {
  const int q = GetParam();
  DataFrame local = db_->Prepare(tpch::QuerySql(q)).Execute();
  QueryResult remote = client_->Execute(tpch::QuerySql(q));
  ASSERT_TRUE(remote.frame != nullptr);
  EXPECT_EQ(remote.status, ResultStatus::kFinal);
  std::string diff;
  EXPECT_TRUE(remote.frame->ApproxEquals(local, 0.0, &diff))
      << "q" << q << " diverged over the wire: " << diff;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ServerTpchQuery, ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace wake
