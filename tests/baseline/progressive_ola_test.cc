#include "baseline/progressive_ola.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

#include "baseline/exact_engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace {

TEST(ProgressiveOlaTest, FinalStateMatchesExactEngine) {
  const Catalog& cat = testing::SharedTpch();
  for (int q : {1, 6}) {
    Plan plan = tpch::ModifiedQuery(q);
    ExactEngine exact(&cat);
    DataFrame expected = exact.Execute(plan.node());
    ProgressiveOla ola(&cat);
    DataFrame final_frame;
    size_t states = 0;
    ola.Execute(plan.node(), [&](const OlaState& s) {
      ++states;
      if (s.is_final) final_frame = *s.frame;
    });
    EXPECT_GE(states, 2u);
    std::string diff;
    EXPECT_TRUE(final_frame.ApproxEquals(expected, 1e-6, &diff))
        << "MQ" << q << ": " << diff;
  }
}

TEST(ProgressiveOlaTest, IntermediateSumsAreLinearlyScaled) {
  const Catalog& cat = testing::SharedTpch();
  Plan plan = tpch::ModifiedQuery(6);
  ExactEngine exact(&cat);
  double truth = exact.Execute(plan.node()).column(0).DoubleAt(0);
  ProgressiveOla ola(&cat);
  std::vector<double> estimates;
  ola.Execute(plan.node(), [&](const OlaState& s) {
    if (s.frame->num_rows() > 0) {
      estimates.push_back(s.frame->column(0).DoubleAt(0));
    }
  });
  ASSERT_GE(estimates.size(), 3u);
  // Scaled estimates hover near the truth throughout (uniform data).
  for (double est : estimates) {
    EXPECT_NEAR(est, truth, 0.2 * std::fabs(truth));
  }
}

TEST(ProgressiveOlaTest, ProgressReportsChunkFractions) {
  const Catalog& cat = testing::SharedTpch();
  ProgressiveOla ola(&cat);
  std::vector<double> progress;
  ola.Execute(tpch::ModifiedQuery(1).node(), [&](const OlaState& s) {
    progress.push_back(s.progress);
  });
  ASSERT_GE(progress.size(), 2u);
  for (size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GT(progress[i], progress[i - 1]);
  }
  EXPECT_DOUBLE_EQ(progress.back(), 1.0);
}

TEST(ProgressiveOlaTest, RejectsJoinsAndMissingAggregates) {
  const Catalog& cat = testing::SharedTpch();
  ProgressiveOla ola(&cat);
  auto noop = [](const OlaState&) {};
  // Q3 has joins: unsupported, like the authors' single-table middleware.
  EXPECT_THROW(ola.Execute(tpch::Query(3).node(), noop), Error);
  // A bare scan has no aggregation to progressively refine.
  EXPECT_THROW(ola.Execute(Plan::Scan("lineitem").node(), noop), Error);
}

}  // namespace
}  // namespace wake
