#include "baseline/wander_join.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

#include <cmath>

#include "baseline/exact_engine.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries.h"

namespace wake {
namespace {

class WanderJoinSpecTest : public ::testing::TestWithParam<int> {};

TEST_P(WanderJoinSpecTest, ExactSumMatchesExactEngine) {
  // The walk graph's full enumeration must equal the relational answer —
  // this pins the spec (filters, hops, value) to the modified query.
  const Catalog& cat = testing::SharedTpch();
  int q = GetParam();
  WanderJoin wj(&cat, WanderJoinTpchSpec(q), 1);
  wj.BuildIndexes();
  double walk_truth = wj.ExactSum();

  ExactEngine exact(&cat);
  DataFrame res = exact.Execute(tpch::ModifiedQuery(q).node());
  ASSERT_EQ(res.num_rows(), 1u);
  double engine_truth = res.column(0).DoubleAt(0);
  EXPECT_NEAR(walk_truth, engine_truth,
              1e-6 * std::max(1.0, std::fabs(engine_truth)));
}

TEST_P(WanderJoinSpecTest, EstimatesConvergeNearTruth) {
  const Catalog& cat = testing::SharedTpch();
  int q = GetParam();
  WanderJoin wj(&cat, WanderJoinTpchSpec(q), 7);
  wj.BuildIndexes();
  double truth = wj.ExactSum();
  if (truth == 0.0) GTEST_SKIP() << "degenerate truth at this scale";

  double last_rel_err = 1.0;
  wj.Run(200000, 200000, [&](const WanderJoin::Estimate& est) {
    last_rel_err = std::fabs(est.value - truth) / std::fabs(truth);
  });
  // WanderJoin converges to a few percent but (by design) not to exact —
  // the behaviour Fig 9b contrasts with Wake.
  EXPECT_LT(last_rel_err, 0.10) << "MQ" << q;
}

INSTANTIATE_TEST_SUITE_P(ModifiedQueries, WanderJoinSpecTest,
                         ::testing::Values(3, 7, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "MQ" + std::to_string(info.param);
                         });

TEST(WanderJoinTest, VarianceShrinksWithWalks) {
  const Catalog& cat = testing::SharedTpch();
  WanderJoin wj(&cat, WanderJoinTpchSpec(10), 3);
  std::vector<double> variances;
  wj.Run(20000, 5000, [&](const WanderJoin::Estimate& est) {
    variances.push_back(est.variance);
  });
  ASSERT_GE(variances.size(), 3u);
  EXPECT_LT(variances.back(), variances.front());
}

TEST(WanderJoinTest, ReportsAtRequestedCadence) {
  const Catalog& cat = testing::SharedTpch();
  WanderJoin wj(&cat, WanderJoinTpchSpec(3), 5);
  std::vector<size_t> walk_counts;
  wj.Run(1000, 250, [&](const WanderJoin::Estimate& est) {
    walk_counts.push_back(est.walks);
  });
  EXPECT_EQ(walk_counts, (std::vector<size_t>{250, 500, 750, 1000}));
}

TEST(WanderJoinTest, InvalidSpecNumberThrows) {
  EXPECT_THROW(WanderJoinTpchSpec(2), Error);
}

}  // namespace
}  // namespace wake
