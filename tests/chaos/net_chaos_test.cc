// Network chaos suite: the full server/client path under injected
// faults at the four net.* failpoint sites (accept, read, write,
// serialize), plus abrupt mid-stream disconnects and drain-under-load.
//
// Built in every configuration; skips without -DWAKE_FAILPOINTS=ON (the
// registry exists, the sites don't). The CI `build-failpoints` job runs
// this binary under ASAN with WAKE_CHAOS_ITERS=100.
//
// Invariants under network fault injection:
//   - no hang: every Execute()/Submit() reaches a terminal outcome;
//   - that outcome is exactly one of {byte-identical final result,
//     categorized retryable error, categorized fatal error} — never a
//     crash, a torn frame accepted as valid, or a leaked server query;
//   - transient faults (capped specs) are absorbed by the client's
//     reconnect/backoff machinery and leave the result exact;
//   - a vanished client cancels its server-side queries within the
//     heartbeat window;
//   - serialization faults drop only intermediate snapshots — a final
//     that cannot be encoded surfaces as a terminal error.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "client/client.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/socket.h"
#include "engine/tpch_fixture.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

using protocol::FrameType;

bool FailpointsCompiledIn() {
#ifdef WAKE_FAILPOINTS
  return true;
#else
  return false;
#endif
}

int ChaosIterations() {
  if (const char* env = std::getenv("WAKE_CHAOS_ITERS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 20;
}

bool EventuallyMs(int64_t budget_ms, const std::function<bool()>& pred) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

ServerOptions ChaosServer() {
  ServerOptions options;
  options.heartbeat_interval_ms = 50;
  options.heartbeat_timeout_ms = 1000;
  options.write_timeout_ms = 2000;
  options.retry_hint_ms = 20;
  return options;
}

ClientOptions ChaosClient(uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 5000;
  options.heartbeat_interval_ms = 50;
  options.heartbeat_timeout_ms = 1000;
  options.backoff.initial_ms = 10;
  options.backoff.max_ms = 100;
  options.backoff.max_attempts = 8;
  return options;
}

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FailpointsCompiledIn()) {
      GTEST_SKIP() << "built without WAKE_FAILPOINTS; no sites to fire";
    }
    failpoint::Reset();
  }
  void TearDown() override { failpoint::Reset(); }

  const Catalog& cat_ = testing::SharedTpch();
};

/// A retryable category is an acceptable terminal outcome under chaos;
/// anything else must be one of the explicitly fatal kinds.
void ExpectCategorized(const Error& e) {
  EXPECT_TRUE(e.retryable() || e.category() == ErrorCategory::kProtocol ||
              e.category() == ErrorCategory::kExecution ||
              e.category() == ErrorCategory::kCancelled)
      << "uncategorized chaos outcome: " << ErrorCategoryName(e.category())
      << ": " << e.what();
}

TEST_F(NetChaosTest, ClientBackoffRecoversDroppedAccepts) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  DataFrame local = db.Prepare(tpch::QuerySql(6)).Execute();

  // The first three inbound connections die server-side before the
  // handshake; the client's backoff must ride through all of them.
  failpoint::Configure("net.accept", "error(1.0)*3");
  Client client(ChaosClient(server.port()));
  QueryResult result = client.Execute(tpch::QuerySql(6));
  EXPECT_EQ(failpoint::Hits("net.accept"), 3u);
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

TEST_F(NetChaosTest, CappedReadFaultsAreAbsorbed) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  DataFrame local = db.Prepare(tpch::QuerySql(6)).Execute();
  Client client(ChaosClient(server.port()));
  // Warm the connection so the fault lands mid-session, then kill the
  // next two socket reads (whichever side issues them): both sides treat
  // it as a disconnect and the client reconnects + resubmits.
  client.Connect();
  failpoint::Configure("net.read", "error(1.0)*2");
  QueryResult result = client.Execute(tpch::QuerySql(6));
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  EXPECT_GE(failpoint::Hits("net.read"), 2u);
  server.Stop();
}

TEST_F(NetChaosTest, CappedWriteFaultsAreAbsorbed) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  DataFrame local = db.Prepare(tpch::QuerySql(6)).Execute();
  Client client(ChaosClient(server.port()));
  client.Connect();
  failpoint::Configure("net.write", "error(1.0)*2");
  QueryResult result = client.Execute(tpch::QuerySql(6));
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

/// Probabilistic sweep over the read/write path: every query must reach
/// a categorized terminal outcome — success and retryable failure are
/// both acceptable; hangs, crashes, and mystery categories are not.
TEST_F(NetChaosTest, ReadWriteFaultSweepNeverHangsOrTearsResults) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  DataFrame local = db.Prepare(tpch::QuerySql(6)).Execute();

  const int iters = ChaosIterations();
  int successes = 0;
  int failures = 0;
  for (int i = 0; i < iters; ++i) {
    // Alternate which site misbehaves; low probability so some streams
    // survive end to end and prove byte-identity under partial faults.
    failpoint::Configure("net.read", i % 2 == 0 ? "error(0.01)" : "off");
    failpoint::Configure("net.write", i % 2 == 1 ? "error(0.01)" : "off");
    ClientOptions copts = ChaosClient(server.port());
    copts.backoff.max_attempts = 4;
    copts.jitter_seed = 0xC4405ULL + static_cast<uint64_t>(i);
    Client client(copts);
    try {
      QueryResult result = client.Execute(tpch::QuerySql(6));
      ASSERT_TRUE(result.frame != nullptr);
      std::string diff;
      EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff))
          << "iter " << i << " survived chaos but diverged: " << diff;
      ++successes;
    } catch (const Error& e) {
      ExpectCategorized(e);
      ++failures;
    }
    client.Close();
  }
  failpoint::Reset();
  EXPECT_EQ(successes + failures, iters);
  // The server must not have leaked queries or connections either way.
  EXPECT_TRUE(EventuallyMs(5000, [&] {
    ServerStats stats = server.stats();
    return stats.active_queries == 0 && stats.active_connections == 0;
  }));
  // And with chaos off, the path is immediately healthy again.
  Client clean(ChaosClient(server.port()));
  QueryResult result = clean.Execute(tpch::QuerySql(6));
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

TEST_F(NetChaosTest, SerializeFaultsDropOnlyIntermediateSnapshots) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  DataFrame local = db.Prepare(tpch::QuerySql(1)).Execute();
  Client client(ChaosClient(server.port()));

  // The first two snapshot encodes fail: both are intermediates (the
  // stream has many), both are silently skipped, and the final still
  // arrives byte-identical.
  failpoint::Configure("net.serialize", "error(1.0)*2");
  RemoteQuery handle = client.Submit(tpch::QuerySql(1));
  bool saw_final = false;
  while (auto s = handle.Next()) saw_final = s->is_final;
  EXPECT_TRUE(saw_final);
  QueryResult result = handle.Result();
  EXPECT_EQ(failpoint::Hits("net.serialize"), 2u);
  std::string diff;
  EXPECT_TRUE(result.frame->ApproxEquals(local, 0.0, &diff)) << diff;
  server.Stop();
}

TEST_F(NetChaosTest, UnserializableFinalSurfacesAsTerminalError) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  Client client(ChaosClient(server.port()));
  // Every snapshot encode fails, the final included: the client must
  // see a terminal kExecution error — never a hang, never silence.
  failpoint::Configure("net.serialize", "error(1.0)");
  RemoteQuery handle = client.Submit(tpch::QuerySql(6));
  try {
    handle.Result();
    FAIL() << "expected the unserializable final to surface as an error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kExecution);
  }
  server.Stop();
}

TEST_F(NetChaosTest, MidStreamKillCancelsServerQueryWithinHeartbeat) {
  Db db(&cat_);
  ServerOptions options = ChaosServer();
  options.heartbeat_interval_ms = 50;
  options.heartbeat_timeout_ms = 400;
  Server server(&db, options);
  server.Start();

  // Stretch the query so it is reliably mid-flight when the socket dies.
  failpoint::Configure("channel.send", "delay(2ms)");

  // Raw wire session: handshake, submit, read one snapshot, then vanish
  // without so much as a goodbye.
  net::Socket raw = net::Connect("127.0.0.1", server.port(), 2000);
  protocol::Hello hello;
  hello.client_name = "rude";
  protocol::SendFrame(raw, FrameType::kHello, protocol::Encode(hello), 2000,
                      64u << 20);
  protocol::RecvResult welcome =
      protocol::RecvFrame(raw, 2000, 2000, 64u << 20);
  ASSERT_EQ(welcome.type, FrameType::kWelcome);
  protocol::Submit submit;
  submit.query_id = 1;
  submit.sql = tpch::QuerySql(9);
  protocol::SendFrame(raw, FrameType::kSubmit, protocol::Encode(submit), 2000,
                      64u << 20);
  ASSERT_TRUE(EventuallyMs(5000, [&] {
    return server.stats().active_queries == 1;
  }));
  raw.Close();  // abrupt: RST/EOF, no cancel, no goodbye

  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(EventuallyMs(3000, [&] {
    return server.stats().active_queries == 0;
  })) << "server kept running a query for a vanished client";
  auto detect_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  // EOF detection is bounded by the heartbeat/poll cadence plus the
  // cooperative-cancel latency of the engine, not by the full timeout.
  EXPECT_LT(detect_ms, 2000) << "cancel took too long after the kill";
  server.Stop();
}

TEST_F(NetChaosTest, DrainUnderChaosTerminatesEverything) {
  Db db(&cat_);
  Server server(&db, ChaosServer());
  server.Start();
  Client client(ChaosClient(server.port()));

  failpoint::Configure("channel.send", "delay(1ms)");
  RemoteQuery slow = client.Submit(tpch::QuerySql(9));
  ASSERT_TRUE(slow.Next().has_value());
  failpoint::Configure("net.write", "error(0.02)");

  // Either outcome of the race is legal: a write fault can condemn the
  // connection first (query cancelled, drain trivially clean) or the
  // stretched Q9 overruns the budget (stragglers cancelled, not clean).
  // What must hold: Shutdown returns, and every handle terminates.
  server.Shutdown(100);
  try {
    QueryResult result = slow.Result();
    EXPECT_TRUE(result.frame != nullptr);  // won the race, fine
  } catch (const Error& e) {
    ExpectCategorized(e);
  }
  // Submitting against the drained server fails categorized, not hung.
  try {
    client.Execute(tpch::QuerySql(6));
    FAIL() << "the server is gone; Execute cannot succeed";
  } catch (const Error& e) {
    ExpectCategorized(e);
  }
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace wake
