// Chaos coverage for the ingest flush path (the `ingest.flush`
// failpoint, fired once per hot-tablet seal).
//
// Invariants under injected flush failures:
//   - appended rows NEVER become unreadable: a tablet whose flush failed
//     stays resident in memory and keeps serving queries;
//   - the failure is counted (stats().flush_failures) and nothing is
//     published to the spill directory for that tablet — no torn dirs;
//   - once the fault clears, later seals flush normally, and recovery
//     over the spill dir sees exactly the tablets whose flush succeeded.
//
// Built in every configuration; without -DWAKE_FAILPOINTS=ON the site is
// compiled out and every test skips. The CI `build-failpoints` job runs
// this binary alongside the engine and network chaos suites.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "api/db.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "ingest/live_table.h"
#include "plan/plan.h"
#include "server/protocol.h"

namespace wake {
namespace {

namespace fs = std::filesystem;

bool FailpointsCompiledIn() {
#ifdef WAKE_FAILPOINTS
  return true;
#else
  return false;
#endif
}

Schema EventSchema() {
  return Schema({{"k", ValueType::kString},
                 {"v", ValueType::kFloat64},
                 {"id", ValueType::kInt64}});
}

DataFrame MakeRows(int64_t start, int64_t n) {
  DataFrame df(EventSchema());
  *df.mutable_column(0) = Column::NewDict();
  for (int64_t i = start; i < start + n; ++i) {
    df.mutable_column(0)->AppendString("g" + std::to_string(i % 3));
    df.mutable_column(1)->AppendDouble(static_cast<double>(i));
    df.mutable_column(2)->AppendInt(i);
  }
  return df;
}

std::string WireBytes(const DataFrame& df) {
  wire::WireWriter w;
  protocol::EncodeDataFrame(df, &w);
  return w.Take();
}

class IngestChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FailpointsCompiledIn()) {
      GTEST_SKIP() << "built without WAKE_FAILPOINTS; no sites to fire";
    }
    failpoint::Reset();
    spill_ = fs::temp_directory_path() /
             ("wake_ingest_chaos_" + std::to_string(::getpid()));
    fs::remove_all(spill_);
  }
  void TearDown() override {
    failpoint::Reset();
    if (!spill_.empty()) fs::remove_all(spill_);
  }

  LiveTableOptions Opts() const {
    LiveTableOptions opts;
    opts.seal_rows = 32;
    opts.spill_dir = spill_.string();
    return opts;
  }

  fs::path spill_;
};

TEST_F(IngestChaosTest, FailedFlushKeepsRowsServableAndIsCounted) {
  LiveTable live("events", EventSchema(), Opts());
  failpoint::Configure("ingest.flush", "error(1.0)*2");

  live.Append(MakeRows(0, 32));   // seal 1: flush fails
  live.Append(MakeRows(32, 32));  // seal 2: flush fails
  live.Append(MakeRows(64, 32));  // seal 3: fault cap exhausted, flushes

  EXPECT_EQ(failpoint::Hits("ingest.flush"), 2u);
  LiveTableStats st = live.stats();
  EXPECT_EQ(st.flush_failures, 2u);
  EXPECT_EQ(st.tablets_flushed, 1u);
  EXPECT_EQ(st.cold_tablets, 3u);
  EXPECT_EQ(st.hot_rows, 0u);

  // No data loss, no reordering: all 96 rows serve, in append order.
  EXPECT_EQ(WireBytes(live.Snapshot()->Materialize()),
            WireBytes(MakeRows(0, 96)));

  // Nothing torn on disk: only the successfully flushed tablet
  // published, and no staging debris survived the failure cleanup.
  EXPECT_FALSE(fs::exists(spill_ / "t00000000"));
  EXPECT_FALSE(fs::exists(spill_ / "t00000001"));
  EXPECT_TRUE(fs::exists(spill_ / "t00000002"));
  for (const auto& entry : fs::directory_iterator(spill_)) {
    EXPECT_NE(entry.path().filename().string().rfind(".staging", 0), 0u)
        << "staging debris left behind: " << entry.path();
  }
}

TEST_F(IngestChaosTest, StandingQueryUnaffectedByFlushFailures) {
  auto live = std::make_shared<LiveTable>("events", EventSchema(), Opts());
  Catalog catalog;
  catalog.AddDynamic(live);
  Db db(&catalog);
  Plan plan = Plan::Scan("events")
                  .Aggregate({"k"}, {Sum("v", "s"), Count("c")})
                  .Sort({{"k", false}});
  auto sub = db.Subscribe(plan);

  failpoint::Configure("ingest.flush", "error(1.0)");
  for (int64_t at = 0; at < 128; at += 32) {
    live->Append(MakeRows(at, 32));
    sub->Refresh();
  }
  EXPECT_EQ(live->stats().flush_failures, 4u);
  failpoint::Configure("ingest.flush", "off");
  live->Append(MakeRows(128, 32));  // flushes normally again
  sub->Refresh();
  EXPECT_EQ(live->stats().tablets_flushed, 1u);

  // The standing answer equals a from-scratch query — memory-resident
  // tablets are first-class members of the snapshot's tablet set.
  RunOptions run;
  run.engine = QueryEngine::kExact;
  EXPECT_EQ(WireBytes(*sub->Current().frame),
            WireBytes(db.Prepare(plan).Execute(run)));
}

TEST_F(IngestChaosTest, RecoverySeesExactlyTheFlushedTablets) {
  {
    LiveTable live("events", EventSchema(), Opts());
    live.Append(MakeRows(0, 32));  // tablet 0 flushes cleanly
    failpoint::Configure("ingest.flush", "error(1.0)");
    live.Append(MakeRows(32, 32));  // tablet 1 stays memory-only
    failpoint::Configure("ingest.flush", "off");
    live.Append(MakeRows(64, 32));  // tablet 2 flushes cleanly
    ASSERT_EQ(live.stats().tablets_flushed, 2u);
    ASSERT_EQ(live.Snapshot()->total_rows(), 96u);
  }
  // After a "crash", only the durable (flushed) tablets come back; the
  // memory-only tablet's rows are the documented loss window.
  LiveTable recovered("events", EventSchema(), Opts());
  LiveTableStats st = recovered.stats();
  EXPECT_EQ(st.tablets_recovered, 2u);
  EXPECT_EQ(st.tablets_quarantined, 0u);
  DataFrame expect(EventSchema());
  expect.Append(MakeRows(0, 32));
  expect.Append(MakeRows(64, 32));
  EXPECT_EQ(WireBytes(recovered.Snapshot()->Materialize()),
            WireBytes(expect));
}

}  // namespace
}  // namespace wake
