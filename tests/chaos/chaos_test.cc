// Chaos suite: concurrent TPC-H queries under injected faults.
//
// Built in every configuration, but the engine-level failpoint sites are
// only compiled in with -DWAKE_FAILPOINTS=ON — without it every test
// skips (the registry exists, the sites don't). The CI `build-failpoints`
// job runs this binary under ASAN with WAKE_CHAOS_ITERS=100.
//
// Invariants under fault injection:
//   - no hang: every handle reaches done() and its state stream ends;
//   - every handle terminates in exactly ONE of {final, partial-budget,
//     categorized error, cancelled};
//   - transient reader faults are absorbed by the readers' bounded retry
//     and leave the result exact;
//   - persistent faults surface as categorized wake::Error, never as a
//     crash, terminate(), or torn state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/db.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "engine/tpch_fixture.h"
#include "tpch/queries_sql.h"

namespace wake {
namespace {

bool FailpointsCompiledIn() {
#ifdef WAKE_FAILPOINTS
  return true;
#else
  return false;
#endif
}

int ChaosIterations() {
  if (const char* env = std::getenv("WAKE_CHAOS_ITERS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 20;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FailpointsCompiledIn()) {
      GTEST_SKIP() << "built without WAKE_FAILPOINTS; no sites to fire";
    }
    failpoint::Reset();
  }
  void TearDown() override { failpoint::Reset(); }

  const Catalog& cat_ = testing::SharedTpch();
};

// Every way a handle may end. Exactly one must apply.
enum class Terminal { kFinal, kPartialBudget, kError, kCancelled };

Terminal Classify(QueryHandle& handle) {
  try {
    QueryResult result = handle.Result();
    return result.status == ResultStatus::kPartialBudget
               ? Terminal::kPartialBudget
               : Terminal::kFinal;
  } catch (const Error& e) {
    // Every fault-path throw is a categorized wake::Error; anything else
    // (std::exception, terminate) fails the test harness outright.
    return e.category() == ErrorCategory::kCancelled ? Terminal::kCancelled
                                                     : Terminal::kError;
  }
}

TEST_F(ChaosTest, TransientReaderFaultsAreAbsorbedByRetry) {
  // Two injected failures, three attempts per partition: the first
  // partition eats both faults in its retry loop, and the query's answer
  // stays exact.
  failpoint::Configure("reader.read_batch", "error(1.0)*2");
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::QuerySql(6));
  DataFrame got = q.Run().Final();
  EXPECT_EQ(failpoint::Hits("reader.read_batch"), 2u);
  failpoint::Reset();
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(q.Execute(), 0.0, &diff)) << diff;
}

TEST_F(ChaosTest, PersistentReaderFaultSurfacesCategorizedError) {
  // Uncapped error(1.0): every retry attempt fails, the reader gives up,
  // and the run ends in a categorized error — not a hang and not a
  // partial result presented as final.
  failpoint::Configure("reader.read_batch", "error(1.0)");
  Db db(&cat_);
  QueryHandle handle = db.Prepare(tpch::QuerySql(6)).Run();
  try {
    handle.Final();
    FAIL() << "expected the injected fault to surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kExecution);
    EXPECT_NE(std::string(e.what()).find("failpoint"), std::string::npos);
  }
  EXPECT_TRUE(handle.done());
  // The state stream terminates too.
  while (handle.Next(std::chrono::milliseconds(100))) {
  }
}

TEST_F(ChaosTest, JoinBuildFaultPropagatesThroughTheGraph) {
  // Fault a non-source operator: the node thread unwinds, the graph
  // cancels, and the consumer sees one categorized error.
  failpoint::Configure("join.build", "error(1.0)");
  Db db(&cat_);
  QueryHandle handle = db.Prepare(tpch::QuerySql(3)).Run();
  try {
    handle.Final();
    FAIL() << "expected the injected fault to surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kExecution);
  }
  EXPECT_TRUE(handle.done());
}

TEST_F(ChaosTest, ChannelDelaysDoNotChangeResults) {
  // Slow every channel send: pure latency, no reordering the merge layer
  // can't absorb — results stay exact.
  failpoint::Configure("channel.send", "delay(1ms)");
  Db db(&cat_);
  PreparedQuery q = db.Prepare(tpch::QuerySql(6));
  DataFrame got = q.Run().Final();
  EXPECT_GT(failpoint::Hits("channel.send"), 0u);
  failpoint::Reset();
  std::string diff;
  EXPECT_TRUE(got.ApproxEquals(q.Execute(), 0.0, &diff)) << diff;
}

TEST_F(ChaosTest, WorkerPoolDispatchFaultIsCapturedNotFatal) {
  // The dispatch site only fires when morsels actually go through the
  // pool (a serial configuration runs inline and never evaluates it), so
  // assert the implication, not the firing: if it fired, the run ended
  // in a categorized error; either way nothing crashed or hung.
  failpoint::Configure("worker_pool.dispatch", "error(1.0)");
  Db db(&cat_);
  QueryHandle handle = db.Prepare(tpch::QuerySql(1)).Run();
  Terminal outcome = Classify(handle);
  EXPECT_TRUE(handle.done());
  if (failpoint::Hits("worker_pool.dispatch") > 0) {
    EXPECT_EQ(outcome, Terminal::kError);
  } else {
    EXPECT_EQ(outcome, Terminal::kFinal);
  }
}

TEST_F(ChaosTest, SweepConcurrentQueriesUnderRandomFaults) {
  // The main invariant check: iterations of concurrent queries — one
  // plain, one memory-budgeted, one deadline-budgeted, one cancelled
  // mid-flight — under probabilistic reader/join faults. Every handle
  // must terminate, in bounded time, in exactly one legal terminal
  // state. The fault draws are deterministic per (name, draw index), so
  // a failing iteration replays.
  Db db(&cat_);
  PreparedQuery q6 = db.Prepare(tpch::QuerySql(6));
  PreparedQuery q3 = db.Prepare(tpch::QuerySql(3));
  PreparedQuery q1 = db.Prepare(tpch::QuerySql(1));

  const int iters = ChaosIterations();
  int finals = 0, partials = 0, errors = 0, cancels = 0;
  for (int iter = 0; iter < iters; ++iter) {
    failpoint::Reset();
    failpoint::ConfigureFromString(
        "reader.read_batch=error(0.05);join.build=error(0.02);"
        "channel.send=delay(1ms)*8");

    std::vector<QueryHandle> handles;
    handles.push_back(q6.Run());

    RunOptions budgeted;
    budgeted.memory_limit_bytes = 64 * 1024;
    handles.push_back(q3.Run(budgeted));

    RunOptions deadline;
    deadline.timeout_ms = 20;
    handles.push_back(q1.Run(deadline));

    RunOptions doomed;
    doomed.on_breach = OnBreach::kFail;
    doomed.memory_limit_bytes = 32 * 1024;
    handles.push_back(q3.Run(doomed));

    handles.front().Cancel();  // cancel races the faults

    for (auto& handle : handles) {
      handle.Wait();
      ASSERT_TRUE(handle.done()) << "iteration " << iter;
      switch (Classify(handle)) {
        case Terminal::kFinal: ++finals; break;
        case Terminal::kPartialBudget: ++partials; break;
        case Terminal::kError: ++errors; break;
        case Terminal::kCancelled: ++cancels; break;
      }
      // No hang: the pull stream ends for every handle.
      while (handle.Next(std::chrono::milliseconds(100))) {
      }
    }
  }
  // 4 handles per iteration, each counted exactly once.
  EXPECT_EQ(finals + partials + errors + cancels, iters * 4);
  // The budgeted Q3 runs breach on every iteration (64KB is far below
  // its working set), so degraded terminals must actually occur.
  EXPECT_GT(partials + errors, 0);
}

}  // namespace
}  // namespace wake
