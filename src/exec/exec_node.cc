#include "exec/exec_node.h"

#include "common/error.h"

namespace wake {

ExecNode::ExecNode(std::string label) : label_(std::move(label)) {
  outputs_.push_back(std::make_shared<MessageChannel>());
}

ExecNode::~ExecNode() { Join(); }

void ExecNode::AddInput(MessageChannelPtr channel) {
  CheckArg(channel != nullptr, "null input channel");
  inputs_.push_back(std::move(channel));
  ports_closed_.push_back(0);
}

MessageChannelPtr ExecNode::ClaimOutput() {
  if (!primary_claimed_) {
    primary_claimed_ = true;
    return outputs_[0];
  }
  outputs_.push_back(std::make_shared<MessageChannel>());
  return outputs_.back();
}

void ExecNode::Start(TraceLog* trace) {
  thread_ = std::thread([this, trace] { Run(trace); });
}

void ExecNode::Join() {
  for (auto& f : forwarders_) {
    if (f.joinable()) f.join();
  }
  if (thread_.joinable()) thread_.join();
}

void ExecNode::CloseOutputs() {
  for (auto& out : outputs_) out->Close();
}

void ExecNode::Run(TraceLog* trace) {
  if (inputs_.empty()) {
    double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
    RunSource();
    if (trace) {
      trace->Record(label_, t0, trace->epoch().ElapsedSeconds());
    }
    CloseOutputs();
    return;
  }

  // Multiplex all inputs into one internal queue; forwarders tag messages
  // with their port and send a final EOF marker when their channel closes.
  // Both hops are batched: one ReceiveAll per burst of queued partials,
  // one SendAll (single lock, single wakeup) to re-enqueue the burst.
  auto merged = std::make_shared<Channel<Tagged>>();
  size_t ports = inputs_.size();
  forwarders_.reserve(ports);
  for (size_t p = 0; p < ports; ++p) {
    forwarders_.emplace_back([this, merged, p] {
      std::vector<Tagged> tagged;
      for (;;) {
        auto batch = inputs_[p]->ReceiveAll();
        if (batch.empty()) break;  // closed and drained
        tagged.clear();
        tagged.reserve(batch.size());
        for (auto& msg : batch) {
          tagged.push_back(Tagged{p, false, std::move(msg)});
        }
        merged->SendAll(std::move(tagged));
      }
      merged->Send(Tagged{p, true, Message{}});
    });
  }

  size_t open_ports = ports;
  while (open_ports > 0) {
    // Drain whatever has accumulated, buffer the emits the batch
    // produces, then flush them as one SendAll per output.
    auto batch = merged->ReceiveAll();
    if (batch.empty()) break;  // defensive; merged never closes early
    emit_buffering_ = true;
    for (auto& tagged : batch) {
      double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
      if (tagged.eof) {
        ports_closed_[tagged.port] = 1;
        --open_ports;
        OnInputClosed(tagged.port);
      } else {
        Process(tagged.port, tagged.msg);
      }
      if (trace) {
        trace->Record(label_, t0, trace->epoch().ElapsedSeconds());
      }
      if (open_ports == 0) break;
    }
    emit_buffering_ = false;
    FlushEmits();
  }
  double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
  emit_buffering_ = true;
  Finish();
  emit_buffering_ = false;
  FlushEmits();
  if (trace) {
    trace->Record(label_ + ":finish", t0, trace->epoch().ElapsedSeconds());
  }
  CloseOutputs();
}

void ExecNode::FlushEmits() {
  if (emit_buffer_.empty()) return;
  for (size_t i = 1; i < outputs_.size(); ++i) {
    std::vector<Message> copy(emit_buffer_.begin(), emit_buffer_.end());
    outputs_[i]->SendAll(std::move(copy));
  }
  outputs_[0]->SendAll(std::move(emit_buffer_));
  emit_buffer_.clear();
}

}  // namespace wake
