#include "exec/exec_node.h"

#include "common/error.h"

namespace wake {

ExecNode::ExecNode(std::string label)
    : label_(std::move(label)),
      merged_(std::make_shared<Channel<Tagged>>()) {
  outputs_.push_back(std::make_shared<MessageChannel>());
}

ExecNode::~ExecNode() { Join(); }

void ExecNode::AddInput(MessageChannelPtr channel) {
  CheckArg(channel != nullptr, "null input channel");
  inputs_.push_back(std::move(channel));
  ports_closed_.push_back(0);
}

MessageChannelPtr ExecNode::ClaimOutput() {
  if (!primary_claimed_) {
    primary_claimed_ = true;
    return outputs_[0];
  }
  outputs_.push_back(std::make_shared<MessageChannel>());
  return outputs_.back();
}

void ExecNode::Start(TraceLog* trace) {
  thread_ = std::thread([this, trace] { Run(trace); });
}

void ExecNode::Join() {
  // The node thread owns forwarder creation, and a cancelled graph can be
  // joined while Run() is still spawning them — join the node thread
  // first so `forwarders_` is stable before it is iterated. The run loop
  // never outlives its forwarders on the normal path (EOF markers) and
  // exits independently of them on the cancelled path (channels are
  // cancelled), so this order cannot deadlock.
  if (thread_.joinable()) thread_.join();
  for (auto& f : forwarders_) {
    if (f.joinable()) f.join();
  }
}

void ExecNode::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  // Cancel every channel this node's threads can block on. Input channels
  // are upstream nodes' outputs, so a graph-wide stop cancels each edge
  // (harmlessly) from both ends.
  for (auto& in : inputs_) in->Cancel();
  merged_->Cancel();
  for (auto& out : outputs_) out->Cancel();
}

void ExecNode::CloseOutputs() {
  for (auto& out : outputs_) out->Close();
}

void ExecNode::Run(TraceLog* trace) {
  try {
    RunBody(trace);
  } catch (...) {
    // A failing operator must not take the process down (node threads have
    // no caller to unwind into) and must not let downstream nodes Finish()
    // over silently truncated input as if it were complete. Latch the stop
    // flag, unblock everyone touching this node's channels, and hand the
    // error to the graph owner, who stops the rest of the graph and
    // rethrows it to the driver.
    stop_.store(true, std::memory_order_relaxed);
    std::exception_ptr error = std::current_exception();
    for (auto& in : inputs_) in->Cancel();
    merged_->Cancel();
    for (auto& out : outputs_) out->Cancel();
    emit_buffering_ = false;
    emit_buffer_.clear();
    if (error_handler_) error_handler_(error);
  }
  CloseOutputs();
}

void ExecNode::SyncStateAccounting() {
  if (tracker_ != nullptr) {
    tracker_->Sync(BufferedBytes(), &accounted_state_bytes_);
    tracker_->CheckBreach();
  }
}

void ExecNode::RunBody(TraceLog* trace) {
  if (inputs_.empty()) {
    double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
    RunSource();
    if (trace) {
      trace->Record(label_, t0, trace->epoch().ElapsedSeconds());
    }
    return;
  }

  // Multiplex all inputs into one internal queue; forwarders tag messages
  // with their port and send a final EOF marker when their channel closes.
  // Both hops are batched: one ReceiveAll per burst of queued partials,
  // one SendAll (single lock, single wakeup) to re-enqueue the burst.
  size_t ports = inputs_.size();
  forwarders_.reserve(ports);
  for (size_t p = 0; p < ports; ++p) {
    forwarders_.emplace_back([this, p] {
      try {
        std::vector<Tagged> tagged;
        for (;;) {
          auto batch = inputs_[p]->ReceiveAll();
          if (batch.empty()) break;  // closed/cancelled and drained
          tagged.clear();
          tagged.reserve(batch.size());
          for (auto& msg : batch) {
            tagged.push_back(Tagged{p, false, std::move(msg)});
          }
          merged_->SendAll(std::move(tagged));
        }
        merged_->Send(Tagged{p, true, Message{}});
      } catch (...) {
        // Same containment as Run(): without the EOF marker the run loop
        // would wait on this port forever, so cancel the edge and report.
        std::exception_ptr error = std::current_exception();
        merged_->Cancel();
        inputs_[p]->Cancel();
        if (error_handler_) error_handler_(error);
      }
    });
  }

  size_t open_ports = ports;
  while (open_ports > 0 && !stopped()) {
    // Drain whatever has accumulated, buffer the emits the batch
    // produces, then flush them as one SendAll per output.
    auto batch = merged_->ReceiveAll();
    if (batch.empty()) break;  // cancelled (merged never closes at EOF)
    emit_buffering_ = true;
    for (auto& tagged : batch) {
      if (stopped()) break;  // drop the rest of the drained batch
      double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
      if (tagged.eof) {
        ports_closed_[tagged.port] = 1;
        --open_ports;
        OnInputClosed(tagged.port);
      } else {
        if (tracker_ != nullptr && tagged.msg.frame != nullptr) {
          // The partial left its queue; anything Process retains
          // reappears in the BufferedBytes sync below.
          tracker_->Credit(tagged.msg.frame->ByteSize());
        }
        Process(tagged.port, tagged.msg);
      }
      if (trace) {
        trace->Record(label_, t0, trace->epoch().ElapsedSeconds());
      }
      if (open_ports == 0) break;
    }
    emit_buffering_ = false;
    FlushEmits();
    SyncStateAccounting();
  }
  // A stopped node produces no final state: its output stream is already
  // cancelled, and computing a last snapshot would delay shutdown.
  if (!stopped()) {
    double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
    emit_buffering_ = true;
    Finish();
    emit_buffering_ = false;
    FlushEmits();
    SyncStateAccounting();
    if (trace) {
      trace->Record(label_ + ":finish", t0, trace->epoch().ElapsedSeconds());
    }
  }
  emit_buffering_ = false;
  emit_buffer_.clear();
}

void ExecNode::FlushEmits() {
  if (emit_buffer_.empty()) return;
  for (size_t i = 1; i < outputs_.size(); ++i) {
    std::vector<Message> copy(emit_buffer_.begin(), emit_buffer_.end());
    outputs_[i]->SendAll(std::move(copy));
  }
  outputs_[0]->SendAll(std::move(emit_buffer_));
  emit_buffer_.clear();
}

}  // namespace wake
