#include "exec/exec_node.h"

#include "common/error.h"

namespace wake {

ExecNode::ExecNode(std::string label) : label_(std::move(label)) {
  outputs_.push_back(std::make_shared<MessageChannel>());
}

ExecNode::~ExecNode() { Join(); }

void ExecNode::AddInput(MessageChannelPtr channel) {
  CheckArg(channel != nullptr, "null input channel");
  inputs_.push_back(std::move(channel));
  ports_closed_.push_back(0);
}

MessageChannelPtr ExecNode::ClaimOutput() {
  if (!primary_claimed_) {
    primary_claimed_ = true;
    return outputs_[0];
  }
  outputs_.push_back(std::make_shared<MessageChannel>());
  return outputs_.back();
}

void ExecNode::Start(TraceLog* trace) {
  thread_ = std::thread([this, trace] { Run(trace); });
}

void ExecNode::Join() {
  for (auto& f : forwarders_) {
    if (f.joinable()) f.join();
  }
  if (thread_.joinable()) thread_.join();
}

void ExecNode::CloseOutputs() {
  for (auto& out : outputs_) out->Close();
}

void ExecNode::Run(TraceLog* trace) {
  if (inputs_.empty()) {
    double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
    RunSource();
    if (trace) {
      trace->Record(label_, t0, trace->epoch().ElapsedSeconds());
    }
    CloseOutputs();
    return;
  }

  // Multiplex all inputs into one internal queue; forwarders tag messages
  // with their port and send a final EOF marker when their channel closes.
  auto merged = std::make_shared<Channel<Tagged>>();
  size_t ports = inputs_.size();
  forwarders_.reserve(ports);
  for (size_t p = 0; p < ports; ++p) {
    forwarders_.emplace_back([this, merged, p] {
      // Batched drain: one lock per burst of queued partials.
      for (;;) {
        auto batch = inputs_[p]->ReceiveAll();
        if (batch.empty()) break;  // closed and drained
        for (auto& msg : batch) {
          merged->Send(Tagged{p, false, std::move(msg)});
        }
      }
      merged->Send(Tagged{p, true, Message{}});
    });
  }

  size_t open_ports = ports;
  while (open_ports > 0) {
    auto tagged = merged->Receive();
    if (!tagged.has_value()) break;  // defensive; merged never closes early
    double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
    if (tagged->eof) {
      ports_closed_[tagged->port] = 1;
      --open_ports;
      OnInputClosed(tagged->port);
    } else {
      Process(tagged->port, tagged->msg);
    }
    if (trace) {
      trace->Record(label_, t0, trace->epoch().ElapsedSeconds());
    }
  }
  double t0 = trace ? trace->epoch().ElapsedSeconds() : 0.0;
  Finish();
  if (trace) {
    trace->Record(label_ + ":finish", t0, trace->epoch().ElapsedSeconds());
  }
  CloseOutputs();
}

}  // namespace wake
