// Execution node base class: one operator, one thread, message channels.
//
// Per §7.2 of the paper, every node runs on its own thread, reads messages
// from its input channels, updates its intrinsic state, and writes
// extrinsic-state messages to its output channel. Nodes with several
// inputs receive through an internal multiplexer (forwarder threads tag
// messages with their port) so a slow input never blocks a ready one.
// Channels are unbounded: Wake trades memory for pipeline liveness, the
// cost the paper acknowledges in Table 1.
#ifndef WAKE_EXEC_EXEC_NODE_H_
#define WAKE_EXEC_EXEC_NODE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/resource.h"
#include "exec/message.h"
#include "exec/trace.h"

namespace wake {

using MessageChannel = Channel<Message>;
using MessageChannelPtr = std::shared_ptr<MessageChannel>;

/// Base class for all operators in a running query graph.
class ExecNode {
 public:
  explicit ExecNode(std::string label);
  virtual ~ExecNode();

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  void AddInput(MessageChannelPtr channel);

  /// Primary output channel (for single-consumer wiring and tests).
  const MessageChannelPtr& output() const { return outputs_[0]; }

  /// Claims an output subscription. The first claim returns the primary
  /// channel; later claims add broadcast channels, so one node can feed
  /// several consumers — this implements the paper's shared-subplan
  /// optimization (§7.3: reusing build tables / aggregates that appear
  /// multiple times in a query). Must be called before Start().
  MessageChannelPtr ClaimOutput();

  const std::string& label() const { return label_; }

  /// Attaches the per-query resource tracker (may be null). The node
  /// charges emitted partials (per destination channel) and its own
  /// operator state (BufferedBytes, re-measured per drained batch), and
  /// credits messages as it consumes them — so the tracker sees
  /// queued-but-undrained partials plus live operator state. Must be
  /// called before Start().
  void SetResourceTracker(ResourceTracker* tracker) { tracker_ = tracker; }

  /// Installs the graph-owner's node-failure hook. A node thread (or one
  /// of its input forwarders) that exits via exception cancels its own
  /// channels and reports here instead of terminating the process; the
  /// owner stops the rest of the graph and surfaces the error. May be
  /// invoked concurrently from several threads. Must be called before
  /// Start().
  void SetErrorHandler(std::function<void(std::exception_ptr)> handler) {
    error_handler_ = std::move(handler);
  }

  /// Spawns the node thread. `trace` may be null.
  void Start(TraceLog* trace);

  /// Joins the node thread (must be called before destruction if started).
  void Join();

  /// Requests cooperative shutdown: sets the stop flag and cancels this
  /// node's input, internal, and output channels so every thread blocked
  /// on them (forwarders, the run loop, downstream consumers) unwinds
  /// promptly without draining pending work. The run loop re-checks the
  /// flag between messages, so in-flight Process calls finish their
  /// current partial and then exit; Finish() is skipped on a stopped
  /// node (no final snapshot is computed). Thread-safe and idempotent;
  /// cancelling a whole graph means calling this on every node. Must only
  /// be called after the graph is fully wired (all AddInput/ClaimOutput
  /// done), i.e. on a started query.
  void RequestStop();

  /// Requests a *drain* stop — the graceful half of budget enforcement.
  /// Unlike RequestStop() nothing is cancelled: only source loops react
  /// (they stop feeding the graph and close their outputs), EOF
  /// propagates, and every downstream node finishes normally over the
  /// truncated input — so the engine's last snapshot is a genuine
  /// best-estimate over the data processed so far, CI included.
  /// Thread-safe and idempotent.
  void RequestDrainStop() {
    drain_stop_.store(true, std::memory_order_relaxed);
  }

  /// Approximate bytes currently buffered in node state (hash tables,
  /// pending frames, aggregation state); used for the peak-memory
  /// comparison of §8.2.
  virtual size_t BufferedBytes() const { return 0; }

 protected:
  /// Handles one message from input `port`.
  virtual void Process(size_t port, const Message& msg) = 0;

  /// Called once when input `port` reaches EOF.
  virtual void OnInputClosed(size_t /*port*/) {}

  /// Called after every input reached EOF, before the output closes.
  virtual void Finish() {}

  /// Source nodes (no inputs) override this instead of Process.
  virtual void RunSource() {}

  /// Sends to every claimed output (frames are shared immutable pointers,
  /// so broadcast is a cheap pointer copy). While the run loop is
  /// processing a drained input batch, emits are buffered and flushed as
  /// one SendAll per output at the end of the batch — one lock and one
  /// consumer wakeup per burst instead of one per message. Source nodes
  /// (RunSource) emit immediately so readers keep streaming partials.
  void Emit(Message msg) {
    if (tracker_ != nullptr && msg.frame != nullptr) {
      // One charge per destination queue; the consumer credits on drain.
      tracker_->Charge(msg.frame->ByteSize() * outputs_.size());
    }
    if (emit_buffering_) {
      emit_buffer_.push_back(std::move(msg));
      // Cap the buffer so a long drained batch (e.g. a join replaying
      // its pending probes at build EOF) still streams to downstream
      // nodes: the lock is amortized kEmitFlushBatch ways either way.
      if (emit_buffer_.size() >= kEmitFlushBatch) FlushEmits();
      return;
    }
    for (size_t i = 1; i < outputs_.size(); ++i) outputs_[i]->Send(msg);
    outputs_[0]->Send(std::move(msg));
  }

  size_t num_inputs() const { return inputs_.size(); }
  bool input_closed(size_t port) const { return ports_closed_[port]; }

  /// True once RequestStop() was called. Long-running operator bodies
  /// (source partition loops, EOF replay loops) poll this between units
  /// of work so cancellation latency stays bounded by one partial.
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// True once RequestDrainStop() was called. Source loops poll it to
  /// stop feeding the graph; estimate-producing Finish() paths use it to
  /// keep their scaling at the observed progress instead of claiming a
  /// complete input.
  bool drain_stopped() const {
    return drain_stop_.load(std::memory_order_relaxed);
  }

  /// The per-query tracker (null when the run is unbudgeted).
  ResourceTracker* tracker() const { return tracker_; }

 private:
  struct Tagged {
    size_t port = 0;
    bool eof = false;
    Message msg;
  };

  void Run(TraceLog* trace);
  void RunBody(TraceLog* trace);

  void CloseOutputs();

  /// Re-measures operator state and settles the delta with the tracker.
  void SyncStateAccounting();

  /// Max messages buffered before Emit flushes mid-batch.
  static constexpr size_t kEmitFlushBatch = 64;

  /// Sends the buffered emits, one SendAll per output, in emit order.
  void FlushEmits();

  std::string label_;
  std::vector<MessageChannelPtr> inputs_;
  std::vector<MessageChannelPtr> outputs_;  // [0] = primary
  bool primary_claimed_ = false;
  // Input multiplexer queue; a member (created eagerly) so RequestStop can
  // cancel it from another thread while the run loop blocks on it.
  std::shared_ptr<Channel<Tagged>> merged_;
  std::vector<std::thread> forwarders_;
  std::thread thread_;
  std::vector<uint8_t> ports_closed_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_stop_{false};
  ResourceTracker* tracker_ = nullptr;
  std::function<void(std::exception_ptr)> error_handler_;
  size_t accounted_state_bytes_ = 0;  // node-thread only
  bool emit_buffering_ = false;
  std::vector<Message> emit_buffer_;
};

}  // namespace wake

#endif  // WAKE_EXEC_EXEC_NODE_H_
