// Messages flowing between execution nodes (§7.2 of the paper).
//
// A message carries a shared pointer to an immutable data frame (one
// partial of one edf state) plus the progress metadata nodes need to
// maintain their intrinsic states. Two stream disciplines exist, matching
// the evolve modes of plan/props.h:
//  - append  (refresh == false): frames accumulate; earlier rows are final.
//  - refresh (refresh == true):  each frame is a complete snapshot that
//    replaces everything previously received on this edge.
// End-of-stream is signalled by closing the channel, the EOF of §7.2.
#ifndef WAKE_EXEC_MESSAGE_H_
#define WAKE_EXEC_MESSAGE_H_

#include <memory>

#include "core/agg_state.h"
#include "frame/data_frame.h"

namespace wake {

/// One unit of inter-node data flow.
struct Message {
  DataFramePtr frame;
  /// Progress t of this edf: fraction of the transitive base-table input
  /// consumed so far (§4.1). Monotone per edge; 1.0 on the last message.
  double progress = 0.0;
  /// Snapshot counter for refresh streams (0 on append streams).
  uint64_t version = 0;
  /// True if this frame replaces all previously received content.
  bool refresh = false;
  /// Optional per-column variances of mutable attributes (§6).
  std::shared_ptr<const VarianceMap> variances;
};

/// Channel byte accounting: a queued message costs its frame (frames are
/// shared immutable pointers, so broadcast edges each count the same
/// frame — a deliberate overcount on the rare shared-subplan fan-outs).
inline size_t ChannelItemBytes(const Message& msg) {
  return msg.frame != nullptr ? msg.frame->ByteSize() : 0;
}

}  // namespace wake

#endif  // WAKE_EXEC_MESSAGE_H_
