// Execution tracing: per-node activity spans used to reproduce the
// pipelined-execution timeline (Fig 13 / Appendix C).
#ifndef WAKE_EXEC_TRACE_H_
#define WAKE_EXEC_TRACE_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace wake {

/// One busy interval of one node.
struct TraceSpan {
  std::string node;
  double start_seconds = 0.0;  // relative to trace epoch
  double end_seconds = 0.0;
};

/// Thread-safe span collector shared by all nodes of a running graph.
class TraceLog {
 public:
  TraceLog() = default;

  void Record(const std::string& node, double start_s, double end_s) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back({node, start_s, end_s});
  }

  std::vector<TraceSpan> Spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  const Stopwatch& epoch() const { return epoch_; }

 private:
  mutable std::mutex mu_;
  Stopwatch epoch_;
  std::vector<TraceSpan> spans_;
};

}  // namespace wake

#endif  // WAKE_EXEC_TRACE_H_
