// wake::Client — the fault-tolerant remote session over a wake server.
//
// Mirrors the wake::Db session shape (api/db.h) across a socket: Submit()
// returns a RemoteQuery streaming the same converging OlaStates a local
// QueryHandle yields, and results are byte-identical to in-process
// execution (tests/server/server_tpch_test.cc holds that line for all 22
// TPC-H queries).
//
// Robustness contract:
//  - Connect() dials + handshakes under exponential backoff with jitter
//    (BackoffPolicy); retryable failures — refused/reset connections,
//    handshake EOF, server-at-capacity kGoodbye — are retried, protocol
//    violations are not.
//  - On connection loss, queries the server never acknowledged (no
//    kAccepted yet) are resubmitted automatically after reconnect: not
//    yet admitted means not running, so resubmission cannot duplicate
//    work. Acknowledged queries fail with a retryable
//    wake::Error(kNetwork) instead — the server MAY still be running
//    them, so the decision to re-run belongs to the caller.
//  - Execute() is that caller: a blocking submit-and-wait that re-runs
//    the whole (read-only, hence idempotent) query while the error is
//    retryable(), honoring retry_after_ms hints over its own backoff.
//  - The reader thread answers server pings, so a client blocked in a
//    long Next() never trips the server's heartbeat kill; a server
//    silent past heartbeat_timeout_ms is declared dead client-side.
//
// Threading: Client is safe to share across threads. Each RemoteQuery
// follows the QueryHandle contract — one consumer thread for
// Next()/Wait()/Result(), Cancel() from anywhere. Client must outlive
// its RemoteQuerys.
#ifndef WAKE_CLIENT_CLIENT_H_
#define WAKE_CLIENT_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/db.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/socket.h"

namespace wake {

class Client;

/// Exponential backoff with multiplicative jitter: attempt k sleeps
/// min(max_ms, initial_ms * multiplier^k) * U[1-jitter, 1+jitter].
struct BackoffPolicy {
  int64_t initial_ms = 100;
  int64_t max_ms = 5000;
  double multiplier = 2.0;
  double jitter = 0.25;
  /// Connection attempts per Connect() cycle; also Execute()'s cap on
  /// full-query retries.
  int max_attempts = 8;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string client_name = "wake-client";
  int64_t connect_timeout_ms = 5000;
  /// Budget for mid-frame reads and whole-frame writes.
  int64_t io_timeout_ms = 5000;
  /// Cadence of the reader's liveness tick (answer pings, detect silence).
  int64_t heartbeat_interval_ms = 500;
  /// A server silent for this long while queries are in flight is
  /// declared dead and the connection recycled.
  int64_t heartbeat_timeout_ms = 5000;
  size_t max_frame_bytes = 64u << 20;
  BackoffPolicy backoff;
  /// Seed for backoff jitter (deterministic by default so chaos tests
  /// replay exactly).
  uint64_t jitter_seed = 0x5EEDB0FFULL;
};

/// The remotable subset of RunOptions — everything that travels in a
/// kSubmit frame. on_state has no remote equivalent: pull via Next().
struct RemoteRunOptions {
  QueryEngine engine = QueryEngine::kOla;
  bool with_ci = false;
  OnBreach on_breach = OnBreach::kDegrade;
  uint64_t memory_limit_bytes = 0;
  int64_t timeout_ms = 0;
  uint64_t max_rows_scanned = 0;
  /// Requested snapshot backlog; the server clamps into
  /// [1, ServerOptions::max_snapshot_backlog].
  uint64_t max_buffered_states = 0;
  int64_t admission_timeout_ms = 0;
};

struct ClientStats {
  uint64_t reconnects = 0;      // successful connections after the first
  uint64_t resubmissions = 0;   // un-acked queries resent after reconnect
  uint64_t execute_retries = 0; // full-query re-runs by Execute()
  uint64_t snapshots_received = 0;
  uint64_t ingests_acked = 0;   // successful remote appends
};

/// Server acknowledgment of one Ingest() append.
struct IngestResult {
  /// Live-table epoch that first contains the appended rows.
  uint64_t epoch = 0;
  /// The table's lifetime appended-row count after this append.
  uint64_t total_rows = 0;
};

/// A live remote query. Same consumer contract as QueryHandle; remains
/// usable (drains buffered snapshots, reports its terminal) after the
/// connection drops.
class RemoteQuery {
 public:
  RemoteQuery() = default;
  ~RemoteQuery();  // best-effort Cancel if still running
  RemoteQuery(RemoteQuery&&) noexcept;
  RemoteQuery& operator=(RemoteQuery&&) = delete;

  /// Next snapshot, blocking until one arrives or the stream ends
  /// (std::nullopt). The last snapshot of a successful run has
  /// is_final = true.
  std::optional<OlaState> Next();
  /// Like Next() but waits at most `timeout`; std::nullopt also means
  /// timeout — check done().
  std::optional<OlaState> Next(std::chrono::milliseconds timeout);

  /// Requests cancellation (local mark + best-effort kCancel frame).
  /// Idempotent, any thread.
  void Cancel();
  /// Blocks until the query reached a terminal. Does not throw.
  void Wait();
  /// Wait(), then the terminal result (frame = last received snapshot).
  /// Throws the query's error if it failed — retryable() tells transient
  /// (connection lost, queue full) from deterministic failures.
  QueryResult Result();
  /// Result().frame, dereferenced.
  DataFrame Final();

  bool done() const;

 private:
  friend class Client;
  struct State;
  RemoteQuery(Client* client, std::shared_ptr<State> state);
  Client* client_ = nullptr;
  std::shared_ptr<State> state_;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();  // Close()

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Ensures a live connection, dialing with backoff if needed. Throws
  /// the last attempt's error once the policy is exhausted. Idempotent;
  /// called implicitly by Submit()/Execute().
  void Connect();

  /// Sends Goodbye, closes the socket, fails in-flight queries
  /// (kCancelled). Idempotent; the client is dead afterwards.
  void Close();

  bool connected() const;
  /// True once the server announced kDrain on the current connection.
  bool server_draining() const;
  /// Session id assigned by the server's kWelcome (0 before connect).
  uint64_t session_id() const;

  /// Submits a query and returns its streaming handle. Connects first if
  /// needed (that connect may throw). After submission, connection
  /// failures surface through the handle's Result(), not here.
  RemoteQuery Submit(const std::string& sql,
                     const RemoteRunOptions& options = {});

  /// Blocking submit-and-wait with automatic retry of retryable failures
  /// (reconnect + resubmit included), honoring retry_after_ms hints.
  QueryResult Execute(const std::string& sql,
                      const RemoteRunOptions& options = {});

  /// Appends `rows` to live table `table` on the server, blocking until
  /// the server acknowledges. Unlike Execute(), an append is NOT
  /// idempotent, so the client never auto-retries: if the connection is
  /// lost between send and ack the outcome is ambiguous — the rows may
  /// or may not have landed — and Ingest throws a retryable
  /// wake::Error(kNetwork) saying so; re-sending is the caller's call
  /// (it risks duplicate rows). Server-side rejections (unknown table,
  /// schema mismatch, drain) arrive as their original error category.
  IngestResult Ingest(const std::string& table, const DataFrame& rows);

  ClientStats stats() const;

 private:
  friend class RemoteQuery;

  using State = RemoteQuery::State;

  /// One in-flight Ingest() waiting for its kIngestAck.
  struct PendingIngest;

  void ReaderLoop();
  bool TryConnectCycle();
  void RecvLoop();
  void HandleDisconnect(const Error& cause);
  void RouteFrame(uint8_t type, const std::string& payload);
  bool SendOnWire(uint8_t type, const std::string& payload);
  void CancelQuery(const std::shared_ptr<State>& state);
  int64_t BackoffDelayMs(int attempt);
  void FailQuery(const std::shared_ptr<State>& state, const Error& e);

  ClientOptions options_;

  mutable std::mutex mu_;  // sock_ identity, maps, flags (before write_mu_)
  std::mutex write_mu_;    // frame writes on sock_
  net::Socket sock_;
  bool connected_ = false;
  bool stopping_ = false;
  bool want_connect_ = false;
  bool draining_ = false;
  uint64_t session_id_ = 0;
  uint64_t next_query_id_ = 1;
  uint64_t connect_epoch_ = 0;  // bumped when a connect cycle fails
  std::optional<Error> connect_error_;
  std::unordered_map<uint64_t, std::shared_ptr<State>> queries_;
  std::vector<std::shared_ptr<State>> resubmit_;  // un-acked, awaiting retry
  uint64_t next_ingest_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<PendingIngest>> ingests_;
  std::condition_variable conn_cv_;   // wakes the reader
  std::condition_variable state_cv_;  // wakes Connect() waiters
  std::thread reader_;
  std::chrono::steady_clock::time_point last_inbound_;
  std::chrono::steady_clock::time_point last_ping_;
  uint64_t ping_nonce_ = 0;

  std::mutex rng_mu_;
  Rng rng_;

  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> resubmissions_{0};
  std::atomic<uint64_t> execute_retries_{0};
  std::atomic<uint64_t> snapshots_received_{0};
  std::atomic<uint64_t> ingests_acked_{0};
  std::atomic<uint64_t> connections_made_{0};
};

}  // namespace wake

#endif  // WAKE_CLIENT_CLIENT_H_
