#include "client/client.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "common/strings.h"
#include "server/protocol.h"

namespace wake {

using protocol::FrameType;
using Clock = std::chrono::steady_clock;

namespace {

int64_t MsSince(Clock::time_point then) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               then)
      .count();
}

}  // namespace

/// Shared between the RemoteQuery handle (consumer side) and the client's
/// reader thread (producer side). Self-contained: once terminal, every
/// handle method works without the Client.
struct RemoteQuery::State {
  uint64_t id = 0;
  std::string sql;
  RemoteRunOptions options;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<OlaState> pending;   // received, not yet pulled via Next()
  std::optional<OlaState> last;   // latest snapshot (Result()'s frame)
  bool accepted = false;          // server sent kAccepted
  bool terminal = false;
  bool cancel_requested = false;
  ResultStatus status = ResultStatus::kFinal;
  BreachReason breach = BreachReason::kNone;
  double progress = 1.0;
  std::optional<Error> error;

  /// The kSubmit payload reproducing this query (used for the initial
  /// send and for safe resubmission after reconnect).
  protocol::Submit ToSubmit() const {
    protocol::Submit submit;
    submit.query_id = id;
    submit.sql = sql;
    submit.engine = options.engine;
    submit.with_ci = options.with_ci;
    submit.on_breach = options.on_breach;
    submit.memory_limit_bytes = options.memory_limit_bytes;
    submit.timeout_ms = options.timeout_ms;
    submit.max_rows_scanned = options.max_rows_scanned;
    submit.max_buffered_states = options.max_buffered_states;
    submit.admission_timeout_ms = options.admission_timeout_ms;
    return submit;
  }
};

// --- RemoteQuery ---------------------------------------------------------

RemoteQuery::RemoteQuery(Client* client, std::shared_ptr<State> state)
    : client_(client), state_(std::move(state)) {}

RemoteQuery::RemoteQuery(RemoteQuery&& other) noexcept
    : client_(other.client_), state_(std::move(other.state_)) {
  other.client_ = nullptr;
}

RemoteQuery::~RemoteQuery() {
  if (!state_ || !client_) return;
  bool live;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    live = !state_->terminal;
  }
  if (live) Cancel();
}

std::optional<OlaState> RemoteQuery::Next() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&] { return !state_->pending.empty() || state_->terminal; });
  if (state_->pending.empty()) return std::nullopt;
  OlaState state = std::move(state_->pending.front());
  state_->pending.pop_front();
  return state;
}

std::optional<OlaState> RemoteQuery::Next(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait_for(lock, timeout, [&] {
    return !state_->pending.empty() || state_->terminal;
  });
  if (state_->pending.empty()) return std::nullopt;
  OlaState state = std::move(state_->pending.front());
  state_->pending.pop_front();
  return state;
}

void RemoteQuery::Cancel() {
  if (!state_) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->terminal || state_->cancel_requested) return;
    state_->cancel_requested = true;
  }
  if (client_) client_->CancelQuery(state_);
}

void RemoteQuery::Wait() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->terminal; });
}

QueryResult RemoteQuery::Result() {
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->error) throw *state_->error;
  QueryResult result;
  if (state_->last) {
    result.frame = state_->last->frame;
    result.variances = state_->last->variances;
  }
  result.status = state_->status;
  result.breach = state_->breach;
  result.progress = state_->progress;
  return result;
}

DataFrame RemoteQuery::Final() {
  QueryResult result = Result();
  CheckArg(result.frame != nullptr, "query finished without a snapshot");
  return *result.frame;
}

bool RemoteQuery::done() const {
  if (!state_) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->terminal;
}

// --- Client --------------------------------------------------------------

Client::Client(ClientOptions options)
    : options_(std::move(options)), rng_(options_.jitter_seed) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

struct Client::PendingIngest {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  protocol::IngestAck ack;
  std::optional<Error> error;

  void Finish(std::optional<Error> e, protocol::IngestAck a = {}) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (done) return;
      done = true;
      error = std::move(e);
      ack = std::move(a);
    }
    cv.notify_all();
  }
};

Client::~Client() { Close(); }

void Client::Connect() {
  std::unique_lock<std::mutex> lock(mu_);
  if (connected_) return;
  if (stopping_) throw Error("client is closed", ErrorCategory::kCancelled);
  uint64_t epoch = connect_epoch_;
  want_connect_ = true;
  conn_cv_.notify_all();
  state_cv_.wait(lock, [&] {
    return connected_ || connect_epoch_ != epoch || stopping_;
  });
  if (connected_) return;
  if (stopping_) throw Error("client is closed", ErrorCategory::kCancelled);
  throw *connect_error_;
}

void Client::Close() {
  bool first;
  {
    std::lock_guard<std::mutex> lock(mu_);
    first = !stopping_;
    stopping_ = true;
    std::lock_guard<std::mutex> wlock(write_mu_);
    if (first && connected_ && sock_.valid()) {
      try {
        protocol::SendFrame(sock_, FrameType::kGoodbye,
                            protocol::Encode(protocol::Goodbye{"client closing"}),
                            100, options_.max_frame_bytes);
      } catch (const Error&) {
      }
    }
    sock_.ShutdownBoth();  // unblock the reader
  }
  conn_cv_.notify_all();
  state_cv_.notify_all();
  if (reader_.joinable()) reader_.join();
  std::unordered_map<uint64_t, std::shared_ptr<State>> leftover;
  std::vector<std::shared_ptr<State>> orphans;
  std::unordered_map<uint64_t, std::shared_ptr<PendingIngest>> waiting;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queries_);
    orphans.swap(resubmit_);
    waiting.swap(ingests_);
    std::lock_guard<std::mutex> wlock(write_mu_);
    sock_.Close();
    connected_ = false;
  }
  Error closed("client closed", ErrorCategory::kCancelled);
  for (auto& entry : leftover) FailQuery(entry.second, closed);
  for (auto& state : orphans) FailQuery(state, closed);
  for (auto& entry : waiting) entry.second->Finish(closed);
}

bool Client::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connected_;
}

bool Client::server_draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

uint64_t Client::session_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_id_;
}

RemoteQuery Client::Submit(const std::string& sql,
                           const RemoteRunOptions& options) {
  Connect();
  auto state = std::make_shared<State>();
  state->sql = sql;
  state->options = options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw Error("client is closed", ErrorCategory::kCancelled);
    state->id = next_query_id_++;
    queries_[state->id] = state;
  }
  // A failed send must never strand the query: if the disconnect was
  // ALREADY processed between Connect() returning and the queries_
  // insert above, the reader has no EOF left to observe, so nothing
  // would ever collect this query and Result() would block forever.
  while (!SendOnWire(static_cast<uint8_t>(FrameType::kSubmit),
                     protocol::Encode(state->ToSubmit()))) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queries_.count(state->id) == 0) break;  // failed/collected already
      if (!connected_) {
        // HandleDisconnect (which flips connected_ and queues un-acked
        // queries under this same lock) either already queued it, or ran
        // before the insert and never saw it — queue it ourselves then.
        if (std::find(resubmit_.begin(), resubmit_.end(), state) ==
            resubmit_.end()) {
          resubmit_.push_back(state);
          conn_cv_.notify_all();
        }
        break;
      }
    }
    // Still (or again) connected: either a reconnect raced the failed
    // send — retry on the new socket — or the reader has not yet turned
    // our shutdown into a disconnect; it will, momentarily.
    std::this_thread::yield();
  }
  return RemoteQuery(this, state);
}

IngestResult Client::Ingest(const std::string& table, const DataFrame& rows) {
  Connect();
  auto pending = std::make_shared<PendingIngest>();
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw Error("client is closed", ErrorCategory::kCancelled);
    id = next_ingest_id_++;
    ingests_[id] = pending;
  }
  protocol::Ingest msg;
  msg.ingest_id = id;
  msg.table = table;
  msg.rows = std::make_shared<DataFrame>(rows);
  // Once any byte of the frame may have reached the server, the append
  // is ambiguous on failure — the whole frame could have been applied
  // even though our write errored. No silent retry, ever.
  Error ambiguous(
      "ingest outcome unknown: connection lost before acknowledgment "
      "(the rows may or may not have been appended)",
      ErrorCategory::kNetwork);
  if (!SendOnWire(static_cast<uint8_t>(FrameType::kIngest),
                  protocol::Encode(msg))) {
    std::lock_guard<std::mutex> lock(mu_);
    ingests_.erase(id);
    throw ambiguous;
  }
  std::unique_lock<std::mutex> plock(pending->mu);
  pending->cv.wait(plock, [&] { return pending->done; });
  if (pending->error) throw *pending->error;
  ingests_acked_.fetch_add(1);
  return IngestResult{pending->ack.epoch, pending->ack.total_rows};
}

QueryResult Client::Execute(const std::string& sql,
                            const RemoteRunOptions& options) {
  int attempts = std::max(1, options_.backoff.max_attempts);
  for (int attempt = 0;; ++attempt) {
    try {
      RemoteQuery query = Submit(sql, options);
      return query.Result();
    } catch (const Error& e) {
      if (!e.retryable() || attempt + 1 >= attempts) throw;
      execute_retries_.fetch_add(1);
      int64_t delay = std::max(BackoffDelayMs(attempt), e.retry_after_ms());
      std::unique_lock<std::mutex> lock(mu_);
      state_cv_.wait_for(lock, std::chrono::milliseconds(delay),
                         [&] { return stopping_; });
      if (stopping_) {
        throw Error("client is closed", ErrorCategory::kCancelled);
      }
    }
  }
}

ClientStats Client::stats() const {
  ClientStats stats;
  stats.reconnects = reconnects_.load();
  stats.resubmissions = resubmissions_.load();
  stats.execute_retries = execute_retries_.load();
  stats.snapshots_received = snapshots_received_.load();
  stats.ingests_acked = ingests_acked_.load();
  return stats;
}

void Client::ReaderLoop() {
  for (;;) {
    bool do_connect = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      conn_cv_.wait(lock, [&] {
        return stopping_ || connected_ || want_connect_ || !resubmit_.empty();
      });
      if (stopping_) return;
      do_connect = !connected_;
    }
    if (do_connect) {
      TryConnectCycle();
      continue;
    }
    RecvLoop();
  }
}

bool Client::TryConnectCycle() {
  Error last("connect never attempted", ErrorCategory::kNetwork);
  int attempts = std::max(1, options_.backoff.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      int64_t delay =
          std::max(BackoffDelayMs(attempt - 1), last.retry_after_ms());
      std::unique_lock<std::mutex> lock(mu_);
      conn_cv_.wait_for(lock, std::chrono::milliseconds(delay),
                        [&] { return stopping_; });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return false;
    }
    try {
      net::Socket sock = net::Connect(options_.host, options_.port,
                                      options_.connect_timeout_ms);
      protocol::Hello hello;
      hello.client_name = options_.client_name;
      protocol::SendFrame(sock, FrameType::kHello, protocol::Encode(hello),
                          options_.io_timeout_ms, options_.max_frame_bytes);
      protocol::RecvResult r =
          protocol::RecvFrame(sock, options_.connect_timeout_ms,
                              options_.io_timeout_ms, options_.max_frame_bytes);
      if (r.status != protocol::RecvResult::Status::kFrame) {
        throw Error("server closed the connection during handshake",
                    ErrorCategory::kNetwork);
      }
      if (r.type == FrameType::kGoodbye) {
        protocol::Goodbye bye = protocol::DecodeGoodbye(r.payload);
        throw Error("server refused connection: " + bye.reason,
                    ErrorCategory::kUnavailable);
      }
      if (r.type != FrameType::kWelcome) {
        throw Error(StrFormat("expected kWelcome, got %s",
                              protocol::FrameTypeName(r.type)),
                    ErrorCategory::kProtocol);
      }
      protocol::Welcome welcome = protocol::DecodeWelcome(r.payload);
      if (welcome.protocol_version != wire::kProtocolVersion) {
        throw Error(StrFormat("server speaks protocol version %u, not %u",
                              welcome.protocol_version,
                              wire::kProtocolVersion),
                    ErrorCategory::kProtocol);
      }
      std::vector<std::shared_ptr<State>> to_resubmit;
      {
        std::lock_guard<std::mutex> lock(mu_);
        std::lock_guard<std::mutex> wlock(write_mu_);
        sock_ = std::move(sock);
        connected_ = true;
        draining_ = false;
        want_connect_ = false;
        session_id_ = welcome.session_id;
        to_resubmit.swap(resubmit_);
        if (connections_made_.fetch_add(1) > 0) reconnects_.fetch_add(1);
      }
      last_inbound_ = Clock::now();
      last_ping_ = last_inbound_;
      for (const auto& state : to_resubmit) {
        bool cancelled;
        {
          std::lock_guard<std::mutex> slock(state->mu);
          cancelled = state->cancel_requested;
        }
        if (cancelled) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            queries_.erase(state->id);
          }
          FailQuery(state,
                    Error("query cancelled", ErrorCategory::kCancelled));
          continue;
        }
        // Never admitted => never ran: resubmission cannot duplicate work.
        if (SendOnWire(static_cast<uint8_t>(FrameType::kSubmit),
                       protocol::Encode(state->ToSubmit()))) {
          resubmissions_.fetch_add(1);
        }
        // On failure the socket is down again; the recv loop EOFs at once
        // and recollects this still-un-acked query for the next cycle.
      }
      state_cv_.notify_all();
      return true;
    } catch (const Error& e) {
      last = e;
      if (e.category() == ErrorCategory::kProtocol) break;  // hopeless
    }
  }
  // Exhausted: report to Connect() waiters and fail the queries that were
  // waiting on this reconnect.
  std::vector<std::shared_ptr<State>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connect_error_ = last;
    ++connect_epoch_;
    want_connect_ = false;
    orphans.swap(resubmit_);
    for (const auto& state : orphans) queries_.erase(state->id);
  }
  for (const auto& state : orphans) FailQuery(state, last);
  state_cv_.notify_all();
  return false;
}

void Client::RecvLoop() {
  try {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
      }
      protocol::RecvResult r = protocol::RecvFrame(
          sock_, options_.heartbeat_interval_ms, options_.io_timeout_ms,
          options_.max_frame_bytes);
      if (r.status == protocol::RecvResult::Status::kEof) {
        throw Error("server closed the connection", ErrorCategory::kNetwork);
      }
      Clock::time_point now = Clock::now();
      if (r.status == protocol::RecvResult::Status::kIdle) {
        bool in_flight;
        {
          std::lock_guard<std::mutex> lock(mu_);
          in_flight = !queries_.empty();
        }
        int64_t silent_ms = MsSince(last_inbound_);
        if (in_flight && silent_ms > options_.heartbeat_timeout_ms) {
          throw Error(StrFormat("server unresponsive for %lld ms",
                                static_cast<long long>(silent_ms)),
                      ErrorCategory::kNetwork);
        }
        if (MsSince(last_ping_) >= options_.heartbeat_interval_ms) {
          last_ping_ = now;
          protocol::Ping ping;
          ping.nonce = ++ping_nonce_;
          SendOnWire(static_cast<uint8_t>(FrameType::kPing),
                     protocol::Encode(ping));
        }
        continue;
      }
      last_inbound_ = now;
      if (r.type == FrameType::kGoodbye) {
        protocol::Goodbye bye = protocol::DecodeGoodbye(r.payload);
        throw Error("server closed the session: " +
                        (bye.reason.empty() ? "goodbye" : bye.reason),
                    ErrorCategory::kUnavailable);
      }
      RouteFrame(static_cast<uint8_t>(r.type), r.payload);
    }
  } catch (const Error& e) {
    // Whatever broke the read loop is, from a query's perspective, a
    // transport disconnection: re-categorize anything that is neither
    // already retryable nor a protocol violation (kProtocol stays fatal —
    // a corrupt peer is not fixed by reconnecting) as kNetwork so the
    // retry/backoff machinery engages. Injected faults (net.read) land
    // here as kExecution and must not poison acked queries as
    // non-retryable.
    if (e.retryable() || e.category() == ErrorCategory::kProtocol) {
      HandleDisconnect(e);
    } else {
      HandleDisconnect(Error(std::string("connection lost: ") + e.what(),
                             ErrorCategory::kNetwork));
    }
  }
}

void Client::RouteFrame(uint8_t raw_type, const std::string& payload) {
  auto lookup = [&](uint64_t id, bool take) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(id);
    if (it == queries_.end()) return std::shared_ptr<State>();
    std::shared_ptr<State> state = it->second;
    if (take) queries_.erase(it);
    return state;
  };
  switch (static_cast<FrameType>(raw_type)) {
    case FrameType::kPing:
      SendOnWire(static_cast<uint8_t>(FrameType::kPong),
                 protocol::Encode(protocol::DecodePing(payload)));
      return;
    case FrameType::kPong:
      return;
    case FrameType::kDrain: {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      return;
    }
    case FrameType::kAccepted: {
      protocol::Accepted accepted = protocol::DecodeAccepted(payload);
      std::shared_ptr<State> state = lookup(accepted.query_id, false);
      if (!state) return;
      std::lock_guard<std::mutex> lock(state->mu);
      state->accepted = true;
      return;
    }
    case FrameType::kSnapshot: {
      protocol::Snapshot snap = protocol::DecodeSnapshot(payload);
      std::shared_ptr<State> state = lookup(snap.query_id, false);
      if (!state) return;  // released or cancelled handle; drop silently
      snapshots_received_.fetch_add(1);
      OlaState ola;
      ola.frame = snap.frame;
      ola.progress = snap.progress;
      ola.is_final = snap.is_final;
      ola.elapsed_seconds = snap.elapsed_seconds;
      ola.variances = snap.variances;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->last = ola;
        state->pending.push_back(std::move(ola));
      }
      state->cv.notify_all();
      return;
    }
    case FrameType::kQueryDone: {
      protocol::QueryDone done = protocol::DecodeQueryDone(payload);
      std::shared_ptr<State> state = lookup(done.query_id, true);
      if (!state) return;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->status = done.status;
        state->breach = done.breach;
        state->progress = done.progress;
        state->terminal = true;
      }
      state->cv.notify_all();
      return;
    }
    case FrameType::kQueryError: {
      protocol::QueryError err = protocol::DecodeQueryError(payload);
      std::shared_ptr<State> state = lookup(err.query_id, true);
      if (!state) return;
      FailQuery(state, protocol::ToError(err));
      return;
    }
    case FrameType::kIngestAck: {
      protocol::IngestAck ack = protocol::DecodeIngestAck(payload);
      std::shared_ptr<PendingIngest> pending;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = ingests_.find(ack.ingest_id);
        if (it == ingests_.end()) return;  // abandoned waiter; drop
        pending = it->second;
        ingests_.erase(it);
      }
      if (ack.ok) {
        pending->Finish(std::nullopt, std::move(ack));
      } else {
        pending->Finish(Error(ack.message, ack.category));
      }
      return;
    }
    default:
      throw Error(StrFormat("unexpected %s frame from server",
                            protocol::FrameTypeName(
                                static_cast<FrameType>(raw_type))),
                  ErrorCategory::kProtocol);
  }
}

void Client::HandleDisconnect(const Error& cause) {
  std::vector<std::shared_ptr<State>> acked;
  std::vector<std::shared_ptr<PendingIngest>> lost_ingests;
  bool have_resubmits = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::lock_guard<std::mutex> wlock(write_mu_);
    sock_.Close();
    // Every in-flight append is now ambiguous: the frame may have been
    // applied before the connection died. Never auto-resent.
    for (auto& entry : ingests_) lost_ingests.push_back(entry.second);
    ingests_.clear();
    connected_ = false;
    session_id_ = 0;
    for (auto it = queries_.begin(); it != queries_.end();) {
      std::shared_ptr<State>& state = it->second;
      bool is_acked;
      {
        std::lock_guard<std::mutex> slock(state->mu);
        is_acked = state->accepted || state->terminal;
      }
      if (is_acked) {
        // The server may still be running this query; whether to re-run
        // is the caller's call (Execute() retries, Submit() callers see a
        // retryable error).
        acked.push_back(state);
        it = queries_.erase(it);
      } else {
        // Never admitted: queue for automatic, safe resubmission. Stays
        // in queries_ under the same id so frames route after reconnect.
        resubmit_.push_back(state);
        have_resubmits = true;
        ++it;
      }
    }
  }
  Error error = cause;
  if (error.retryable() && error.retry_after_ms() == 0) {
    error.set_retry_after_ms(options_.backoff.initial_ms);
  }
  for (const auto& state : acked) FailQuery(state, error);
  for (const auto& pending : lost_ingests) {
    pending->Finish(
        Error("ingest outcome unknown: connection lost before "
              "acknowledgment (the rows may or may not have been "
              "appended): " +
                  std::string(cause.what()),
              ErrorCategory::kNetwork));
  }
  if (have_resubmits) conn_cv_.notify_all();
}

bool Client::SendOnWire(uint8_t type, const std::string& payload) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!sock_.valid()) return false;
  try {
    protocol::SendFrame(sock_, static_cast<FrameType>(type), payload,
                        options_.io_timeout_ms, options_.max_frame_bytes);
    return true;
  } catch (const Error&) {
    sock_.ShutdownBoth();  // reader observes EOF and recycles
    return false;
  }
}

void Client::CancelQuery(const std::shared_ptr<State>& state) {
  bool send;
  {
    std::lock_guard<std::mutex> lock(mu_);
    send = connected_;
    if (!send) {
      resubmit_.erase(std::remove(resubmit_.begin(), resubmit_.end(), state),
                      resubmit_.end());
      queries_.erase(state->id);
    }
  }
  if (send) {
    // Best-effort: the server answers with kQueryError(kCancelled).
    SendOnWire(static_cast<uint8_t>(FrameType::kCancel),
               protocol::Encode(protocol::Cancel{state->id}));
  } else {
    FailQuery(state, Error("query cancelled", ErrorCategory::kCancelled));
  }
}

int64_t Client::BackoffDelayMs(int attempt) {
  double base = static_cast<double>(options_.backoff.initial_ms);
  double cap = static_cast<double>(std::max<int64_t>(options_.backoff.max_ms,
                                                     options_.backoff.initial_ms));
  for (int i = 0; i < attempt && base < cap; ++i) {
    base *= options_.backoff.multiplier;
  }
  base = std::min(base, cap);
  double factor = 1.0;
  double jitter = std::min(std::max(options_.backoff.jitter, 0.0), 1.0);
  if (jitter > 0.0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    factor = rng_.UniformDouble(1.0 - jitter, 1.0 + jitter);
  }
  return std::max<int64_t>(1, std::llround(base * factor));
}

void Client::FailQuery(const std::shared_ptr<State>& state, const Error& e) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->terminal) return;
    state->error = e;
    state->terminal = true;
  }
  state->cv.notify_all();
}

}  // namespace wake
