#include "server/server.h"

#include <pthread.h>
#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "ingest/live_table.h"
#include "server/protocol.h"

namespace wake {

using protocol::FrameType;
using Clock = std::chrono::steady_clock;

/// One in-flight query of a connection. The raw pointer handed to the
/// pump thread stays valid for the pump's whole life: the owning
/// unique_ptr is only destroyed after the pump is joined (lazy reap in
/// HandleSubmit or TeardownConnection).
struct Server::ConnQuery {
  uint64_t id;
  QueryHandle handle;
  std::thread pump;
  std::atomic<bool> finished{false};
  ConnQuery(uint64_t id_in, QueryHandle&& handle_in)
      : id(id_in), handle(std::move(handle_in)) {}
};

/// One accepted client connection. Owned jointly (shared_ptr) by the
/// server's connection list, the reader thread, and every pump thread of
/// its queries; `alive` flips false exactly once, at the start of
/// teardown (or on the first failed write), after which writes are
/// refused and the socket is shut down so every blocked thread unwinds.
struct Server::Connection {
  net::Socket sock;
  uint64_t session_id = 0;

  std::mutex write_mu;            // serializes whole frames onto the socket
  std::atomic<bool> alive{true};  // false once the connection is dying
  std::atomic<bool> done{false};  // reader exited, queries cleaned up

  // Liveness bookkeeping, touched only by the reader thread.
  Clock::time_point last_read = Clock::now();
  Clock::time_point last_ping = Clock::now();
  uint64_t ping_nonce = 0;

  std::mutex q_mu;
  std::vector<std::unique_ptr<ConnQuery>> queries;

  std::thread reader;
};

bool Server::WriteFrame(Connection& conn, FrameType type,
                        const std::string& payload, int64_t timeout_ms,
                        size_t max_frame_bytes) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!conn.alive.load(std::memory_order_acquire)) return false;
  try {
    protocol::SendFrame(conn.sock, type, payload, timeout_ms,
                        max_frame_bytes);
    return true;
  } catch (const Error&) {
    // A stalled or reset write condemns the whole connection: snapshots
    // for other queries of this client cannot get through either.
    conn.alive.store(false, std::memory_order_release);
    conn.sock.ShutdownBoth();
    return false;
  }
}

Server::Server(Db* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  CheckArg(db != nullptr, "Server needs a Db");
}

Server::~Server() { Stop(); }

void Server::Start() {
  CheckArg(!running_.load(), "Server::Start called twice");
  listener_ = net::Listen(options_.host, options_.port);
  port_ = net::LocalPort(listener_);
  draining_.store(false);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    net::Socket sock;
    try {
      sock = net::Accept(listener_, 200);
    } catch (const Error&) {
      break;  // listener torn down
    }
    ReapFinishedConnections();
    if (!sock.valid()) continue;  // poll timeout or transient accept error
    try {
      WAKE_FAILPOINT("net.accept");
    } catch (const Error&) {
      continue;  // injected accept fault: drop this connection
    }
    if (draining_.load(std::memory_order_acquire)) {
      connections_rejected_.fetch_add(1);
      // Mirror the at-capacity path: a categorized goodbye lets the
      // client surface a retryable kUnavailable instead of a bare EOF.
      try {
        protocol::SendFrame(sock, FrameType::kGoodbye,
                            protocol::Encode(protocol::Goodbye{
                                "server is draining"}),
                            options_.write_timeout_ms,
                            options_.max_frame_bytes);
      } catch (const Error&) {
      }
      continue;
    }
    size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& c : conns_) {
        if (!c->done.load(std::memory_order_acquire)) ++live;
      }
    }
    if (live >= options_.max_connections) {
      connections_rejected_.fetch_add(1);
      // Tell the client why before closing: it reads kGoodbye where it
      // expected kWelcome and surfaces a retryable kUnavailable.
      try {
        protocol::SendFrame(sock, FrameType::kGoodbye,
                            protocol::Encode(protocol::Goodbye{
                                "server at connection capacity"}),
                            options_.write_timeout_ms,
                            options_.max_frame_bytes);
      } catch (const Error&) {
      }
      continue;
    }
    connections_accepted_.fetch_add(1);
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(sock);
    conn->session_id = next_session_id_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void Server::ServeConnection(const std::shared_ptr<Connection>& conn) {
  // Handshake: the first frame must be kHello, within the handshake
  // budget — half-open or garbage-speaking connections die here.
  try {
    protocol::RecvResult r =
        protocol::RecvFrame(conn->sock, options_.handshake_timeout_ms,
                            options_.handshake_timeout_ms,
                            options_.max_frame_bytes);
    bool ok = r.status == protocol::RecvResult::Status::kFrame &&
              r.type == FrameType::kHello;
    if (ok) {
      protocol::Hello hello = protocol::DecodeHello(r.payload);
      ok = hello.protocol_version == wire::kProtocolVersion;
      if (!ok) {
        WriteFrame(*conn, FrameType::kGoodbye,
                   protocol::Encode(protocol::Goodbye{StrFormat(
                       "unsupported protocol version %u",
                       hello.protocol_version)}),
                   options_.write_timeout_ms, options_.max_frame_bytes);
      }
    }
    if (!ok || !WriteFrame(*conn, FrameType::kWelcome,
                           protocol::Encode(protocol::Welcome{
                               wire::kProtocolVersion, "wake",
                               conn->session_id}),
                           options_.write_timeout_ms,
                           options_.max_frame_bytes)) {
      TeardownConnection(conn);
      return;
    }
  } catch (const Error& e) {
    if (e.category() == ErrorCategory::kProtocol) {
      protocol_errors_.fetch_add(1);
    }
    TeardownConnection(conn);
    return;
  }

  conn->last_read = Clock::now();
  conn->last_ping = Clock::now();
  try {
    while (conn->alive.load(std::memory_order_acquire)) {
      protocol::RecvResult r = protocol::RecvFrame(
          conn->sock, options_.heartbeat_interval_ms,
          options_.heartbeat_timeout_ms, options_.max_frame_bytes);
      if (r.status == protocol::RecvResult::Status::kEof) break;
      Clock::time_point now = Clock::now();
      if (r.status == protocol::RecvResult::Status::kIdle) {
        auto silent_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->last_read)
                .count();
        if (silent_ms > options_.heartbeat_timeout_ms) {
          // Dead or partitioned peer: nothing inbound for a full
          // heartbeat window (pongs included). Cancel its queries.
          heartbeat_kills_.fetch_add(1);
          break;
        }
        auto since_ping =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->last_ping)
                .count();
        if (since_ping >= options_.heartbeat_interval_ms) {
          conn->last_ping = now;
          if (!WriteFrame(*conn, FrameType::kPing,
                          protocol::Encode(
                              protocol::Ping{++conn->ping_nonce}),
                          options_.write_timeout_ms,
                          options_.max_frame_bytes)) {
            break;
          }
        }
        continue;
      }
      conn->last_read = now;
      bool closing = false;
      switch (r.type) {
        case FrameType::kSubmit:
          HandleSubmit(conn, r.payload);
          break;
        case FrameType::kIngest:
          HandleIngest(conn, r.payload);
          break;
        case FrameType::kCancel: {
          protocol::Cancel cancel = protocol::DecodeCancel(r.payload);
          std::lock_guard<std::mutex> lock(conn->q_mu);
          for (auto& q : conn->queries) {
            if (q->id == cancel.query_id) q->handle.Cancel();
          }
          break;
        }
        case FrameType::kPing:
          WriteFrame(*conn, FrameType::kPong,
                     protocol::Encode(protocol::DecodePing(r.payload)),
                     options_.write_timeout_ms, options_.max_frame_bytes);
          break;
        case FrameType::kPong:
          break;  // last_read already refreshed
        case FrameType::kGoodbye:
          closing = true;
          break;
        default:
          throw Error(StrFormat("unexpected %s frame from client",
                                protocol::FrameTypeName(r.type)),
                      ErrorCategory::kProtocol);
      }
      if (closing) break;
    }
  } catch (const Error& e) {
    if (e.category() == ErrorCategory::kProtocol) {
      protocol_errors_.fetch_add(1);
      WriteFrame(*conn, FrameType::kGoodbye,
                 protocol::Encode(protocol::Goodbye{e.what()}),
                 options_.write_timeout_ms, options_.max_frame_bytes);
    }
    // kNetwork: the connection is simply gone; teardown below.
  }
  TeardownConnection(conn);
}

void Server::HandleSubmit(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  protocol::Submit submit = protocol::DecodeSubmit(payload);
  auto reject = [&](const Error& e) {
    int64_t hint = e.retry_after_ms();
    if (hint == 0 && e.retryable()) hint = options_.retry_hint_ms;
    WriteFrame(*conn, FrameType::kQueryError,
               protocol::Encode(protocol::QueryError{
                   submit.query_id, e.category(), hint, e.what()}),
               options_.write_timeout_ms, options_.max_frame_bytes);
  };
  if (draining_.load(std::memory_order_acquire)) {
    reject(Error("server is draining for shutdown",
                 ErrorCategory::kUnavailable));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->q_mu);
    // Lazy reap: joined-and-finished pumps make room before the linear
    // duplicate-id scan.
    conn->queries.erase(
        std::remove_if(conn->queries.begin(), conn->queries.end(),
                       [](const std::unique_ptr<ConnQuery>& q) {
                         if (!q->finished.load(std::memory_order_acquire)) {
                           return false;
                         }
                         if (q->pump.joinable()) q->pump.join();
                         return true;
                       }),
        conn->queries.end());
    for (const auto& q : conn->queries) {
      if (q->id == submit.query_id) {
        reject(Error(StrFormat("duplicate query id %llu on this connection",
                               static_cast<unsigned long long>(
                                   submit.query_id)),
                     ErrorCategory::kProtocol));
        return;
      }
    }
  }
  try {
    PreparedQuery prepared = db_->Prepare(submit.sql);
    RunOptions run;
    run.engine = submit.engine;
    run.with_ci = submit.with_ci;
    run.on_breach = submit.on_breach;
    run.memory_limit_bytes = submit.memory_limit_bytes;
    run.timeout_ms = submit.timeout_ms;
    run.max_rows_scanned = submit.max_rows_scanned;
    run.admission_timeout_ms = submit.admission_timeout_ms;
    // Remote streams are never unbounded: clamp the snapshot backlog into
    // [1, max_snapshot_backlog]. Snapshots are cumulative, so a slow
    // consumer skips ahead over dropped intermediates; the final snapshot
    // is enqueued last and can never be displaced.
    size_t backlog = submit.max_buffered_states == 0
                         ? options_.max_snapshot_backlog
                         : std::min<size_t>(submit.max_buffered_states,
                                            options_.max_snapshot_backlog);
    run.max_buffered_states = std::max<size_t>(1, backlog);
    QueryHandle handle = prepared.Run(run);  // may throw kQueueFull now
    queries_started_.fetch_add(1);
    active_queries_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn->q_mu);
    auto query =
        std::make_unique<ConnQuery>(submit.query_id, std::move(handle));
    ConnQuery* raw = query.get();
    conn->queries.push_back(std::move(query));
    // Ack before the pump starts so kAccepted precedes every snapshot on
    // the wire; once acked, the client must NOT blindly resubmit (the
    // query is live in the admission system).
    WriteFrame(*conn, FrameType::kAccepted,
               protocol::Encode(protocol::Accepted{submit.query_id}),
               options_.write_timeout_ms, options_.max_frame_bytes);
    // The raw pointer (not the id) goes to the pump: a lookup by id races
    // TeardownConnection swapping conn->queries out, whereas the pointee
    // is guaranteed alive until the pump itself is joined.
    raw->pump = std::thread([this, conn, raw] { PumpQuery(conn, raw); });
  } catch (const Error& e) {
    reject(e);
  }
}

void Server::HandleIngest(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  protocol::Ingest ingest = protocol::DecodeIngest(payload);
  protocol::IngestAck ack;
  ack.ingest_id = ingest.ingest_id;
  try {
    if (draining_.load(std::memory_order_acquire)) {
      throw Error("server is draining for shutdown",
                  ErrorCategory::kUnavailable);
    }
    auto dyn = db_->catalog().GetDynamic(ingest.table);
    if (dyn == nullptr) {
      throw Error("table '" + ingest.table + "' is not a live table",
                  ErrorCategory::kPlan);
    }
    auto live = std::dynamic_pointer_cast<LiveTable>(dyn);
    if (live == nullptr) {
      throw Error("table '" + ingest.table + "' does not accept appends",
                  ErrorCategory::kPlan);
    }
    ack.epoch = live->Append(*ingest.rows);
    ack.total_rows = live->stats().rows_appended;
    ack.ok = true;
  } catch (const Error& e) {
    ack.ok = false;
    ack.category = e.category();
    ack.message = e.what();
  }
  WriteFrame(*conn, FrameType::kIngestAck, protocol::Encode(ack),
             options_.write_timeout_ms, options_.max_frame_bytes);
}

void Server::PumpQuery(const std::shared_ptr<Connection>& conn,
                       ConnQuery* query) {
  const uint64_t query_id = query->id;
  bool conn_ok = true;
  bool sent_terminal = false;
  while (auto state = query->handle.Next()) {
    protocol::Snapshot snap;
    snap.query_id = query_id;
    snap.is_final = state->is_final;
    snap.progress = state->progress;
    snap.elapsed_seconds = state->elapsed_seconds;
    snap.frame = state->frame;
    snap.variances = state->variances;
    std::string payload;
    try {
      WAKE_FAILPOINT("net.serialize");
      payload = protocol::Encode(snap);
    } catch (const Error& e) {
      // Serialization failure (net.serialize failpoint, oversized
      // frame): an intermediate snapshot is skippable — the next one
      // supersedes it — but a lost FINAL snapshot must surface as a
      // terminal error, never as a silent hang.
      if (!state->is_final) continue;
      WriteFrame(*conn, FrameType::kQueryError,
                 protocol::Encode(protocol::QueryError{
                     query_id, ErrorCategory::kExecution, 0,
                     std::string("final snapshot failed to serialize: ") +
                         e.what()}),
                 options_.write_timeout_ms, options_.max_frame_bytes);
      sent_terminal = true;
      break;
    }
    if (!WriteFrame(*conn, FrameType::kSnapshot, payload,
                    options_.write_timeout_ms, options_.max_frame_bytes)) {
      conn_ok = false;
      break;
    }
    snapshots_sent_.fetch_add(1);
  }
  if (!conn_ok) {
    // The client is gone (or hopelessly stalled): a disconnected
    // consumer must not keep a query running.
    query->handle.Cancel();
    query->handle.Wait();
  } else if (!sent_terminal) {
    try {
      QueryResult result = query->handle.Result();
      WriteFrame(*conn, FrameType::kQueryDone,
                 protocol::Encode(protocol::QueryDone{
                     query_id, result.status, result.breach,
                     result.progress}),
                 options_.write_timeout_ms, options_.max_frame_bytes);
    } catch (const Error& e) {
      int64_t hint = e.retry_after_ms();
      if (hint == 0 && e.retryable()) hint = options_.retry_hint_ms;
      WriteFrame(*conn, FrameType::kQueryError,
                 protocol::Encode(protocol::QueryError{
                     query_id, e.category(), hint, e.what()}),
                 options_.write_timeout_ms, options_.max_frame_bytes);
    } catch (const std::exception& e) {
      WriteFrame(*conn, FrameType::kQueryError,
                 protocol::Encode(protocol::QueryError{
                     query_id, ErrorCategory::kExecution, 0, e.what()}),
                 options_.write_timeout_ms, options_.max_frame_bytes);
    }
  }
  query->finished.store(true, std::memory_order_release);
  active_queries_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void Server::TeardownConnection(const std::shared_ptr<Connection>& conn) {
  conn->alive.store(false, std::memory_order_release);
  conn->sock.ShutdownBoth();  // unblock any writer stuck in poll
  std::vector<std::unique_ptr<ConnQuery>> queries;
  {
    std::lock_guard<std::mutex> lock(conn->q_mu);
    queries.swap(conn->queries);
  }
  // Dead connection => no consumer: cancel every in-flight handle, then
  // join the pumps (which unblock because the handles' state streams
  // close and writes fail fast on the shut-down socket).
  for (auto& q : queries) q->handle.Cancel();
  for (auto& q : queries) {
    if (q->pump.joinable()) q->pump.join();
  }
  queries.clear();  // ~QueryHandle joins each query's driver thread
  conn->sock.Close();
  conn->done.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void Server::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::shared_ptr<Connection>& c) {
                                if (!c->done.load(
                                        std::memory_order_acquire)) {
                                  return false;
                                }
                                if (c->reader.joinable()) c->reader.join();
                                return true;
                              }),
               conns_.end());
}

bool Server::Shutdown(int64_t drain_timeout_ms) {
  if (!running_.exchange(false)) return true;  // idempotent
  draining_.store(true, std::memory_order_release);

  // Phase 0 — freeze the connection set: stop the accept loop BEFORE
  // snapshotting conns_. A connection accepted after the snapshot would
  // otherwise miss every phase below — never told goodbye, never shut
  // down, its reader never joined — and could outlive the server.
  // ShutdownBoth (not Close) wakes the accept poll instantly without
  // racing fd reuse, so a zero-budget drain stays zero-budget.
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Phase 1 — announce: existing clients learn no new work is welcome
  // and in-flight queries have `drain_timeout_ms` to finish.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (const auto& conn : conns) {
    if (conn->done.load(std::memory_order_acquire)) continue;
    WriteFrame(*conn, FrameType::kDrain,
               protocol::Encode(protocol::Drain{drain_timeout_ms}),
               options_.write_timeout_ms, options_.max_frame_bytes);
  }

  // Phase 2 — drain: wait for every in-flight query to reach its natural
  // terminal (final snapshot + done marker) within the budget.
  bool clean;
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    clean = drain_cv_.wait_for(
        lock, std::chrono::milliseconds(std::max<int64_t>(0,
                                                          drain_timeout_ms)),
        [&] { return active_queries_.load() == 0; });
  }

  // Phase 3 — cooperative cancel of the stragglers; their pumps send
  // kQueryError(kCancelled) so clients still get a categorized terminal.
  if (!clean) {
    for (const auto& conn : conns) {
      std::lock_guard<std::mutex> lock(conn->q_mu);
      for (auto& q : conn->queries) q->handle.Cancel();
    }
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(2000),
                       [&] { return active_queries_.load() == 0; });
  }

  // Phase 4 — close shop: say goodbye, shut every socket down (reader
  // threads unwind on EOF), join everything.
  for (const auto& conn : conns) {
    if (conn->done.load(std::memory_order_acquire)) continue;
    WriteFrame(*conn, FrameType::kGoodbye,
               protocol::Encode(protocol::Goodbye{"server shutting down"}),
               options_.write_timeout_ms, options_.max_frame_bytes);
    conn->sock.ShutdownBoth();
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  return clean;
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_rejected = connections_rejected_.load();
  stats.queries_started = queries_started_.load();
  stats.active_queries = active_queries_.load();
  stats.snapshots_sent = snapshots_sent_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.heartbeat_kills = heartbeat_kills_.load();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& c : conns_) {
    if (!c->done.load(std::memory_order_acquire)) ++stats.active_connections;
  }
  return stats;
}

int Serve(Db& db, ServerOptions options) {
  // Block the shutdown signals BEFORE any thread spawns so every engine /
  // server thread inherits the mask and sigwait below is the one place
  // they are delivered.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  Server server(&db, options);
  server.Start();
  std::fprintf(stderr, "wake server listening on %s:%u\n",
               options.host.c_str(), server.port());
  int sig = 0;
  sigwait(&set, &sig);
  std::fprintf(stderr,
               "signal %d: draining (budget %lld ms) ...\n", sig,
               static_cast<long long>(options.drain_timeout_ms));
  bool clean = server.Shutdown(options.drain_timeout_ms);
  std::fprintf(stderr, "drain %s\n",
               clean ? "complete: all queries finished"
                     : "deadline hit: stragglers cancelled");
  return clean ? 0 : 1;
}

}  // namespace wake
