#include "server/protocol.h"

#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"

namespace wake {
namespace protocol {

namespace {

/// Enum bytes are validated on decode: a byte outside the enum's range is
/// a protocol error (enums never round-trip to garbage values).
uint8_t CheckRange(uint8_t v, uint8_t max, const char* what) {
  if (v > max) {
    throw Error(StrFormat("bad %s value %u on the wire", what, v),
                ErrorCategory::kProtocol);
  }
  return v;
}

void EncodeVariances(const std::shared_ptr<const VarianceMap>& variances,
                     wire::WireWriter* w) {
  if (variances == nullptr) {
    w->U32(0);
    return;
  }
  w->U32(static_cast<uint32_t>(variances->size()));
  for (const auto& entry : *variances) {
    w->Str(entry.first);
    w->U32(static_cast<uint32_t>(entry.second.size()));
    for (double v : entry.second) w->F64(v);
  }
}

std::shared_ptr<const VarianceMap> DecodeVariances(wire::WireReader* r) {
  uint32_t n = r->U32();
  if (n == 0) return nullptr;
  auto map = std::make_shared<VarianceMap>();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = r->Str();
    uint32_t len = r->U32();
    r->Require(static_cast<size_t>(len) * 8, "variance vector");
    std::vector<double>& vec = (*map)[std::move(name)];
    vec.reserve(len);
    for (uint32_t k = 0; k < len; ++k) vec.push_back(r->F64());
  }
  return map;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kWelcome: return "welcome";
    case FrameType::kSubmit: return "submit";
    case FrameType::kAccepted: return "accepted";
    case FrameType::kSnapshot: return "snapshot";
    case FrameType::kQueryDone: return "query-done";
    case FrameType::kQueryError: return "query-error";
    case FrameType::kCancel: return "cancel";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kDrain: return "drain";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kIngest: return "ingest";
    case FrameType::kIngestAck: return "ingest-ack";
  }
  return "unknown";
}

// --- schema / frame ------------------------------------------------------

void EncodeSchema(const Schema& schema, wire::WireWriter* w) {
  w->U16(static_cast<uint16_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    w->Str(f.name);
    w->U8(static_cast<uint8_t>(f.type));
    w->U8(f.mutable_attr ? 1 : 0);
  }
  auto names = [&w](const std::vector<std::string>& list) {
    w->U16(static_cast<uint16_t>(list.size()));
    for (const auto& n : list) w->Str(n);
  };
  names(schema.primary_key());
  names(schema.clustering_key());
}

Schema DecodeSchema(wire::WireReader* r) {
  uint16_t nfields = r->U16();
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint16_t i = 0; i < nfields; ++i) {
    Field f;
    f.name = r->Str();
    f.type = static_cast<ValueType>(
        CheckRange(r->U8(), static_cast<uint8_t>(ValueType::kBool),
                   "value type"));
    f.mutable_attr = r->U8() != 0;
    fields.push_back(std::move(f));
  }
  Schema schema(std::move(fields));
  auto names = [&r]() {
    uint16_t n = r->U16();
    std::vector<std::string> list;
    list.reserve(n);
    for (uint16_t i = 0; i < n; ++i) list.push_back(r->Str());
    return list;
  };
  schema.set_primary_key(names());
  schema.set_clustering_key(names());
  return schema;
}

void EncodeDataFrame(const DataFrame& df, wire::WireWriter* w) {
  WAKE_FAILPOINT("net.serialize");
  EncodeSchema(df.schema(), w);
  uint64_t rows = df.num_rows();
  w->U64(rows);
  for (size_t c = 0; c < df.num_columns(); ++c) {
    const Column& col = df.column(c);
    bool has_validity = col.has_nulls();
    w->U8(has_validity ? 1 : 0);
    if (has_validity) {
      // Wire format keeps one 0/1 byte per row; expand from the bitmap.
      std::vector<uint8_t> validity(rows);
      col.validity().ToBoolBytes(validity.data());
      w->Bytes(validity.data(), rows);
    }
    if (col.type() == ValueType::kString) {
      for (uint64_t i = 0; i < rows; ++i) {
        w->Str(col.IsNull(i) ? std::string() : col.StringAt(i));
      }
    } else if (IsIntPhysical(col.type())) {
      for (uint64_t i = 0; i < rows; ++i) w->I64(col.ints()[i]);
    } else {
      for (uint64_t i = 0; i < rows; ++i) w->F64(col.doubles()[i]);
    }
  }
}

DataFrame DecodeDataFrame(wire::WireReader* r) {
  Schema schema = DecodeSchema(r);
  DataFrame df(schema);
  uint64_t rows = r->U64();
  // Every row costs at least one payload byte per column (validity or
  // data), so an honest frame satisfies this before any allocation.
  if (schema.num_fields() > 0) r->Require(rows, "rows");
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    Column* col = df.mutable_column(c);
    bool has_validity = r->U8() != 0;
    std::vector<uint8_t> validity;
    if (has_validity) {
      r->Require(rows, "validity mask");
      validity.resize(rows);
      r->Bytes(validity.data(), rows);
    }
    if (col->type() == ValueType::kString) {
      // Each string costs at least its u32 length prefix; without this
      // bound a forged row count would amplify a small frame into a
      // sizeof(std::string)-per-row reserve before the first Str() throws.
      r->Require(rows * 4, "string column");
      auto* strings = col->mutable_strings();
      strings->reserve(rows);
      for (uint64_t i = 0; i < rows; ++i) strings->push_back(r->Str());
    } else if (IsIntPhysical(col->type())) {
      r->Require(rows * 8, "int column");
      auto* ints = col->mutable_ints();
      ints->reserve(rows);
      for (uint64_t i = 0; i < rows; ++i) ints->push_back(r->I64());
    } else {
      r->Require(rows * 8, "float column");
      auto* doubles = col->mutable_doubles();
      doubles->reserve(rows);
      for (uint64_t i = 0; i < rows; ++i) doubles->push_back(r->F64());
    }
    if (has_validity) col->set_validity(std::move(validity));
  }
  return df;
}

// --- message payloads ----------------------------------------------------

std::string Encode(const Hello& msg) {
  wire::WireWriter w;
  w.U32(msg.protocol_version);
  w.Str(msg.client_name);
  return w.Take();
}

Hello DecodeHello(const std::string& payload) {
  wire::WireReader r(payload);
  Hello msg;
  msg.protocol_version = r.U32();
  msg.client_name = r.Str();
  return msg;
}

std::string Encode(const Welcome& msg) {
  wire::WireWriter w;
  w.U32(msg.protocol_version);
  w.Str(msg.server_name);
  w.U64(msg.session_id);
  return w.Take();
}

Welcome DecodeWelcome(const std::string& payload) {
  wire::WireReader r(payload);
  Welcome msg;
  msg.protocol_version = r.U32();
  msg.server_name = r.Str();
  msg.session_id = r.U64();
  return msg;
}

std::string Encode(const Submit& msg) {
  wire::WireWriter w;
  w.U64(msg.query_id);
  w.Str(msg.sql);
  w.U8(static_cast<uint8_t>(msg.engine));
  w.U8(msg.with_ci ? 1 : 0);
  w.U8(static_cast<uint8_t>(msg.on_breach));
  w.U64(msg.memory_limit_bytes);
  w.I64(msg.timeout_ms);
  w.U64(msg.max_rows_scanned);
  w.U64(msg.max_buffered_states);
  w.I64(msg.admission_timeout_ms);
  return w.Take();
}

Submit DecodeSubmit(const std::string& payload) {
  wire::WireReader r(payload);
  Submit msg;
  msg.query_id = r.U64();
  msg.sql = r.Str();
  msg.engine = static_cast<QueryEngine>(
      CheckRange(r.U8(), static_cast<uint8_t>(QueryEngine::kProgressive),
                 "query engine"));
  msg.with_ci = r.U8() != 0;
  msg.on_breach = static_cast<OnBreach>(
      CheckRange(r.U8(), static_cast<uint8_t>(OnBreach::kFail),
                 "breach policy"));
  msg.memory_limit_bytes = r.U64();
  msg.timeout_ms = r.I64();
  msg.max_rows_scanned = r.U64();
  msg.max_buffered_states = r.U64();
  msg.admission_timeout_ms = r.I64();
  return msg;
}

std::string Encode(const Accepted& msg) {
  wire::WireWriter w;
  w.U64(msg.query_id);
  return w.Take();
}

Accepted DecodeAccepted(const std::string& payload) {
  wire::WireReader r(payload);
  Accepted msg;
  msg.query_id = r.U64();
  return msg;
}

std::string Encode(const Snapshot& msg) {
  wire::WireWriter w;
  w.U64(msg.query_id);
  w.U8(msg.is_final ? 1 : 0);
  w.F64(msg.progress);
  w.F64(msg.elapsed_seconds);
  EncodeVariances(msg.variances, &w);
  CheckArg(msg.frame != nullptr, "snapshot without frame");
  EncodeDataFrame(*msg.frame, &w);
  return w.Take();
}

Snapshot DecodeSnapshot(const std::string& payload) {
  wire::WireReader r(payload);
  Snapshot msg;
  msg.query_id = r.U64();
  msg.is_final = r.U8() != 0;
  msg.progress = r.F64();
  msg.elapsed_seconds = r.F64();
  msg.variances = DecodeVariances(&r);
  msg.frame = std::make_shared<DataFrame>(DecodeDataFrame(&r));
  return msg;
}

std::string Encode(const QueryDone& msg) {
  wire::WireWriter w;
  w.U64(msg.query_id);
  w.U8(static_cast<uint8_t>(msg.status));
  w.U8(static_cast<uint8_t>(msg.breach));
  w.F64(msg.progress);
  return w.Take();
}

QueryDone DecodeQueryDone(const std::string& payload) {
  wire::WireReader r(payload);
  QueryDone msg;
  msg.query_id = r.U64();
  msg.status = static_cast<ResultStatus>(
      CheckRange(r.U8(), static_cast<uint8_t>(ResultStatus::kPartialBudget),
                 "result status"));
  msg.breach = static_cast<BreachReason>(
      CheckRange(r.U8(), static_cast<uint8_t>(BreachReason::kSessionMemory),
                 "breach reason"));
  msg.progress = r.F64();
  return msg;
}

std::string Encode(const QueryError& msg) {
  wire::WireWriter w;
  w.U64(msg.query_id);
  w.U8(static_cast<uint8_t>(msg.category));
  w.I64(msg.retry_after_ms);
  w.Str(msg.message);
  return w.Take();
}

QueryError DecodeQueryError(const std::string& payload) {
  wire::WireReader r(payload);
  QueryError msg;
  msg.query_id = r.U64();
  // Unknown categories (a newer peer) decode as kExecution: fatal is the
  // safe default for an error we cannot classify.
  uint8_t raw = r.U8();
  msg.category = raw > static_cast<uint8_t>(ErrorCategory::kUnavailable)
                     ? ErrorCategory::kExecution
                     : static_cast<ErrorCategory>(raw);
  msg.retry_after_ms = r.I64();
  msg.message = r.Str();
  return msg;
}

Error ToError(const QueryError& msg) {
  Error e(msg.message, msg.category);
  e.set_retry_after_ms(msg.retry_after_ms);
  return e;
}

std::string Encode(const Cancel& msg) {
  wire::WireWriter w;
  w.U64(msg.query_id);
  return w.Take();
}

Cancel DecodeCancel(const std::string& payload) {
  wire::WireReader r(payload);
  Cancel msg;
  msg.query_id = r.U64();
  return msg;
}

std::string Encode(const Ping& msg) {
  wire::WireWriter w;
  w.U64(msg.nonce);
  return w.Take();
}

Ping DecodePing(const std::string& payload) {
  wire::WireReader r(payload);
  Ping msg;
  msg.nonce = r.U64();
  return msg;
}

std::string Encode(const Drain& msg) {
  wire::WireWriter w;
  w.I64(msg.deadline_ms);
  return w.Take();
}

Drain DecodeDrain(const std::string& payload) {
  wire::WireReader r(payload);
  Drain msg;
  msg.deadline_ms = r.I64();
  return msg;
}

std::string Encode(const Goodbye& msg) {
  wire::WireWriter w;
  w.Str(msg.reason);
  return w.Take();
}

Goodbye DecodeGoodbye(const std::string& payload) {
  wire::WireReader r(payload);
  Goodbye msg;
  msg.reason = r.Str();
  return msg;
}

std::string Encode(const Ingest& msg) {
  wire::WireWriter w;
  w.U64(msg.ingest_id);
  w.Str(msg.table);
  EncodeDataFrame(msg.rows != nullptr ? *msg.rows : DataFrame(), &w);
  return w.Take();
}

Ingest DecodeIngest(const std::string& payload) {
  wire::WireReader r(payload);
  Ingest msg;
  msg.ingest_id = r.U64();
  msg.table = r.Str();
  msg.rows = std::make_shared<DataFrame>(DecodeDataFrame(&r));
  return msg;
}

std::string Encode(const IngestAck& msg) {
  wire::WireWriter w;
  w.U64(msg.ingest_id);
  w.U8(msg.ok ? 1 : 0);
  w.U64(msg.epoch);
  w.U64(msg.total_rows);
  w.U8(static_cast<uint8_t>(msg.category));
  w.Str(msg.message);
  return w.Take();
}

IngestAck DecodeIngestAck(const std::string& payload) {
  wire::WireReader r(payload);
  IngestAck msg;
  msg.ingest_id = r.U64();
  msg.ok = r.U8() != 0;
  msg.epoch = r.U64();
  msg.total_rows = r.U64();
  // Same policy as QueryError: unknown category bytes mean a newer
  // peer; classify as fatal.
  uint8_t raw = r.U8();
  msg.category = raw > static_cast<uint8_t>(ErrorCategory::kUnavailable)
                     ? ErrorCategory::kExecution
                     : static_cast<ErrorCategory>(raw);
  msg.message = r.Str();
  return msg;
}

// --- frame I/O -----------------------------------------------------------

void SendFrame(const net::Socket& sock, FrameType type,
               const std::string& payload, int64_t timeout_ms,
               size_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes) {
    throw Error(StrFormat("refusing to send oversized %s frame: %zu bytes "
                          "(limit %zu)",
                          FrameTypeName(type), payload.size(),
                          max_frame_bytes),
                ErrorCategory::kProtocol);
  }
  wire::FrameHeader header;
  header.type = static_cast<uint8_t>(type);
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.crc = wire::Crc32(payload.data(), payload.size());
  // One contiguous buffer, one SendAll: a frame is either fully queued to
  // the kernel or the connection is declared dead — no interleaving with
  // frames written by other threads (callers serialize on a write mutex).
  std::string buf;
  buf.resize(wire::kFrameHeaderBytes);
  wire::EncodeFrameHeader(header, reinterpret_cast<uint8_t*>(&buf[0]));
  buf.append(payload);
  net::SendAll(sock, buf.data(), buf.size(), timeout_ms);
}

RecvResult RecvFrame(const net::Socket& sock, int64_t idle_timeout_ms,
                     int64_t io_timeout_ms, size_t max_frame_bytes) {
  RecvResult result;
  uint8_t header_bytes[wire::kFrameHeaderBytes];
  switch (net::RecvAll(sock, header_bytes, sizeof(header_bytes),
                       idle_timeout_ms, io_timeout_ms)) {
    case net::RecvStatus::kIdle:
      result.status = RecvResult::Status::kIdle;
      return result;
    case net::RecvStatus::kEof:
      result.status = RecvResult::Status::kEof;
      return result;
    case net::RecvStatus::kOk:
      break;
  }
  wire::FrameHeader header =
      wire::DecodeFrameHeader(header_bytes, max_frame_bytes);
  result.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    // The payload belongs to a frame already in flight: EOF here is a
    // truncated frame (protocol violation), not a clean close.
    switch (net::RecvAll(sock, &result.payload[0], header.payload_len,
                         io_timeout_ms, io_timeout_ms)) {
      case net::RecvStatus::kOk:
        break;
      case net::RecvStatus::kEof:
        throw Error("truncated frame: peer closed mid-payload",
                    ErrorCategory::kProtocol);
      case net::RecvStatus::kIdle:
        throw Error("frame payload timed out", ErrorCategory::kNetwork);
    }
  }
  uint32_t crc = wire::Crc32(result.payload.data(), result.payload.size());
  if (crc != header.crc) {
    throw Error(StrFormat("frame CRC mismatch: got 0x%08x want 0x%08x "
                          "(corrupt stream)",
                          crc, header.crc),
                ErrorCategory::kProtocol);
  }
  if (header.type < static_cast<uint8_t>(FrameType::kHello) ||
      header.type > static_cast<uint8_t>(FrameType::kIngestAck)) {
    throw Error(StrFormat("unknown frame type %u", header.type),
                ErrorCategory::kProtocol);
  }
  result.status = RecvResult::Status::kFrame;
  result.type = static_cast<FrameType>(header.type);
  return result;
}

}  // namespace protocol
}  // namespace wake
