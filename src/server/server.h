// wake::Server — the TCP front end over a wake::Db session.
//
// Each accepted connection gets a reader thread speaking the frame
// protocol (server/protocol.h); each submitted query maps onto one
// wake::QueryHandle whose snapshots a dedicated pump thread streams back
// over the socket. Robustness invariants, all chaos-tested
// (tests/chaos/net_chaos_test.cc):
//
//  - A killed connection (EOF, reset, heartbeat timeout) cancels every
//    in-flight handle of that connection — a vanished dashboard never
//    leaks a running query.
//  - A slow consumer stalls only its own socket writes; the query keeps
//    refining under a bounded snapshot backlog (RunOptions::
//    max_buffered_states, drop-oldest), so intermediate snapshots are
//    skipped but the FINAL snapshot is always delivered. A write stalled
//    past write_timeout_ms declares the connection dead.
//  - Graceful drain (Shutdown): stop accepting, tell every client
//    (kDrain), let in-flight queries finish until the deadline, then
//    cooperatively cancel the stragglers. Every query terminates; no
//    thread is left behind.
//  - Failpoint sites net.accept / net.read / net.write / net.serialize
//    let the chaos suite inject faults at every stage of the path.
//
// Connection lifecycle state machine (one reader thread per connection):
//
//   ACCEPTED --hello/welcome--> SERVING --kDrain--> DRAINING
//       |                         |  |                 |
//       |  handshake timeout      |  +--EOF/timeout/protocol error--+
//       v                         v                                 v
//    CLOSED <----------------- CLOSING  (cancel handles, join pumps)
//
// wake::Serve(db, options) is the blocking convenience used by
// examples/wake_server.cpp: Start(), wait for SIGINT/SIGTERM, then
// Shutdown(drain) — the unit-testable pieces stay on the Server class.
#ifndef WAKE_SERVER_SERVER_H_
#define WAKE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "common/socket.h"

namespace wake {

namespace protocol {
enum class FrameType : uint8_t;
}

struct ServerOptions {
  /// Bind address. Defaults to loopback; set "0.0.0.0" to serve remotely.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back with Server::port()).
  uint16_t port = 0;
  /// Connections beyond this are accepted and immediately told goodbye
  /// (retryable kUnavailable), so a client sees a categorized rejection
  /// instead of a silent queue.
  size_t max_connections = 256;
  /// A new connection must complete the hello/welcome handshake within
  /// this budget or it is dropped (half-open connection hygiene).
  int64_t handshake_timeout_ms = 5000;
  /// The reader wakes at this cadence to check liveness and send pings
  /// over idle connections.
  int64_t heartbeat_interval_ms = 500;
  /// A connection with no inbound traffic for this long is declared dead
  /// and its queries cancelled. Also bounds how long a mid-frame read may
  /// stall.
  int64_t heartbeat_timeout_ms = 5000;
  /// A frame write (snapshot push) stalled longer than this declares the
  /// connection dead — the slow-consumer kill switch.
  int64_t write_timeout_ms = 5000;
  /// Frames larger than this are rejected (kProtocol) in either
  /// direction.
  size_t max_frame_bytes = 64u << 20;
  /// Upper bound on any query's snapshot backlog (and the default when a
  /// client asks for 0 = unbounded): remote streams always run bounded,
  /// drop-oldest — that is what keeps a slow dashboard from buffering
  /// the whole query history server-side.
  size_t max_snapshot_backlog = 4;
  /// retry_after_ms hint attached to retryable rejections (queue full,
  /// drain) when the underlying error carries none.
  int64_t retry_hint_ms = 100;
  /// Drain budget used by Serve() on SIGTERM/SIGINT.
  int64_t drain_timeout_ms = 5000;
};

/// Counters for tests, the drain loop, and ops visibility. Snapshot
/// semantics: values are read individually (no cross-field atomicity).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  size_t active_connections = 0;
  uint64_t queries_started = 0;
  size_t active_queries = 0;
  uint64_t snapshots_sent = 0;
  uint64_t protocol_errors = 0;
  uint64_t heartbeat_kills = 0;
};

class Server {
 public:
  /// `db` must outlive the server. Options are fixed at construction.
  Server(Db* db, ServerOptions options = {});
  ~Server();  // Stop() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Throws
  /// wake::Error(kNetwork) if the address cannot be bound.
  void Start();

  /// Bound port (useful with port 0). Valid after Start().
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, announce kDrain to every client,
  /// wait up to `drain_timeout_ms` for in-flight queries to finish, then
  /// cooperatively cancel the rest and close every connection. Returns
  /// true when every query finished naturally within the deadline
  /// (false = at least one had to be cancelled). Idempotent.
  bool Shutdown(int64_t drain_timeout_ms);

  /// Immediate stop: Shutdown with a zero drain budget.
  void Stop() { Shutdown(0); }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  struct Connection;
  struct ConnQuery;

  /// Best-effort frame write; a failure condemns the connection (shuts
  /// the socket down so its reader unwinds) and returns false.
  static bool WriteFrame(Connection& conn, protocol::FrameType type,
                         const std::string& payload, int64_t timeout_ms,
                         size_t max_frame_bytes);

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& conn);
  void HandleSubmit(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void HandleIngest(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void PumpQuery(const std::shared_ptr<Connection>& conn, ConnQuery* query);
  void TeardownConnection(const std::shared_ptr<Connection>& conn);
  void ReapFinishedConnections();

  Db* db_;
  ServerOptions options_;
  net::Socket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  // Query completion tracking for the drain loop.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> queries_started_{0};
  std::atomic<size_t> active_queries_{0};
  std::atomic<uint64_t> snapshots_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> heartbeat_kills_{0};
};

/// Blocking convenience for server binaries: Start(), wait for SIGTERM /
/// SIGINT, Shutdown(options.drain_timeout_ms). Returns 0 on a clean
/// drain, 1 when stragglers had to be cancelled. Signal disposition is
/// process-wide: call from the main thread before spawning other signal-
/// sensitive machinery.
int Serve(Db& db, ServerOptions options = {});

}  // namespace wake

#endif  // WAKE_SERVER_SERVER_H_
