// Message layer of the wake query-serving protocol.
//
// One frame (common/wire.h) carries one message. The conversation:
//
//   client                           server
//   ------                           ------
//   kHello            ->
//                     <-             kWelcome
//   kSubmit(id, sql)  ->
//                     <-             kAccepted(id)        admission ack
//                     <-             kSnapshot(id, ...)*  converging OLA
//                     <-             kSnapshot(id, final)
//                     <-             kQueryDone(id) | kQueryError(id)
//   kCancel(id)       ->                                  (any time)
//   kIngest(id, rows) ->                                  live-table append
//                     <-             kIngestAck(id)
//   kPing/kPong       <->                                 liveness
//                     <-             kDrain               server shutdown
//   kGoodbye          <->                                 orderly close
//
// Submit ids are client-assigned and scoped to the connection; several
// queries stream interleaved over one socket. kQueryError carries the
// wake::Error category plus a retry-after hint so a client can tell
// transient rejections (queue full, admission timeout, drain) from
// deterministic failures (parse, plan, execution).
//
// Every Decode* function is total over arbitrary bytes: malformed input
// throws wake::Error(kProtocol), never crashes — the fuzz-style table in
// tests/server/wire_protocol_test.cc holds this line.
#ifndef WAKE_SERVER_PROTOCOL_H_
#define WAKE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/db.h"
#include "common/socket.h"
#include "common/wire.h"
#include "core/engine.h"
#include "frame/data_frame.h"

namespace wake {
namespace protocol {

/// One frame type per message (the u8 in the frame header).
enum class FrameType : uint8_t {
  kHello = 1,
  kWelcome = 2,
  kSubmit = 3,
  kAccepted = 4,
  kSnapshot = 5,
  kQueryDone = 6,
  kQueryError = 7,
  kCancel = 8,
  kPing = 9,
  kPong = 10,
  kDrain = 11,
  kGoodbye = 12,
  kIngest = 13,
  kIngestAck = 14,
};

const char* FrameTypeName(FrameType type);

struct Hello {
  uint32_t protocol_version = wire::kProtocolVersion;
  std::string client_name;
};

struct Welcome {
  uint32_t protocol_version = wire::kProtocolVersion;
  std::string server_name;
  uint64_t session_id = 0;
};

/// Query submission: sql + the remotable subset of RunOptions (budgets,
/// engine, CI, backpressure bound — everything except the local-only
/// on_state callback).
struct Submit {
  uint64_t query_id = 0;
  std::string sql;
  QueryEngine engine = QueryEngine::kOla;
  bool with_ci = false;
  OnBreach on_breach = OnBreach::kDegrade;
  uint64_t memory_limit_bytes = 0;
  int64_t timeout_ms = 0;
  uint64_t max_rows_scanned = 0;
  /// Client-requested snapshot backlog; the server clamps it into
  /// [1, ServerOptions::max_snapshot_backlog] — a remote stream is never
  /// unbounded (that is the slow-consumer backpressure contract).
  uint64_t max_buffered_states = 0;
  int64_t admission_timeout_ms = 0;
};

struct Accepted {
  uint64_t query_id = 0;
};

/// One OLA snapshot of one query (intermediate or final).
struct Snapshot {
  uint64_t query_id = 0;
  bool is_final = false;
  double progress = 0.0;
  double elapsed_seconds = 0.0;
  DataFramePtr frame;
  std::shared_ptr<const VarianceMap> variances;
};

/// Terminal marker after the last snapshot of a successful run.
struct QueryDone {
  uint64_t query_id = 0;
  ResultStatus status = ResultStatus::kFinal;
  BreachReason breach = BreachReason::kNone;
  double progress = 1.0;
};

/// Terminal marker for a failed (or cancelled) run.
struct QueryError {
  uint64_t query_id = 0;
  ErrorCategory category = ErrorCategory::kExecution;
  int64_t retry_after_ms = 0;
  std::string message;
};

struct Cancel {
  uint64_t query_id = 0;
};

struct Ping {
  uint64_t nonce = 0;
};

/// Server is shutting down: no new submits on this connection; in-flight
/// queries run to completion until `deadline_ms` from now, then are
/// cooperatively cancelled.
struct Drain {
  int64_t deadline_ms = 0;
};

struct Goodbye {
  std::string reason;
};

/// Appends rows to a live (dynamic) table. `ingest_id` is
/// client-assigned and scoped to the connection, like submit ids; the
/// server answers every Ingest with exactly one IngestAck carrying the
/// same id.
struct Ingest {
  uint64_t ingest_id = 0;
  std::string table;
  DataFramePtr rows;
};

/// Outcome of one Ingest. Appends are not idempotent, so a client whose
/// connection dies between Ingest and IngestAck must treat the append
/// as *ambiguous* — the client surfaces that instead of retrying.
struct IngestAck {
  uint64_t ingest_id = 0;
  bool ok = false;
  /// On success: the live-table epoch that first contains the rows, and
  /// the table's lifetime appended-row count after this append.
  uint64_t epoch = 0;
  uint64_t total_rows = 0;
  /// On failure: the server-side error.
  ErrorCategory category = ErrorCategory::kExecution;
  std::string message;
};

// --- payload codecs ------------------------------------------------------

std::string Encode(const Hello& msg);
std::string Encode(const Welcome& msg);
std::string Encode(const Submit& msg);
std::string Encode(const Accepted& msg);
std::string Encode(const Snapshot& msg);
std::string Encode(const QueryDone& msg);
std::string Encode(const QueryError& msg);
std::string Encode(const Cancel& msg);
std::string Encode(const Ping& msg);  // payload shared by kPing and kPong
std::string Encode(const Drain& msg);
std::string Encode(const Goodbye& msg);
std::string Encode(const Ingest& msg);
std::string Encode(const IngestAck& msg);

Hello DecodeHello(const std::string& payload);
Welcome DecodeWelcome(const std::string& payload);
Submit DecodeSubmit(const std::string& payload);
Accepted DecodeAccepted(const std::string& payload);
Snapshot DecodeSnapshot(const std::string& payload);
QueryDone DecodeQueryDone(const std::string& payload);
QueryError DecodeQueryError(const std::string& payload);
Cancel DecodeCancel(const std::string& payload);
Ping DecodePing(const std::string& payload);
Drain DecodeDrain(const std::string& payload);
Goodbye DecodeGoodbye(const std::string& payload);
Ingest DecodeIngest(const std::string& payload);
IngestAck DecodeIngestAck(const std::string& payload);

/// Rebuilds the wake::Error a QueryError frame describes (category,
/// retry-after hint preserved; unknown category bytes decode as
/// kExecution, i.e. fatal).
Error ToError(const QueryError& msg);

/// DataFrame <-> bytes. Values survive bit-for-bit (doubles are raw IEEE
/// bit patterns); dict-encoded string columns arrive as plain columns —
/// an encoding change, never a value change. Decode is bounds-checked
/// against the payload, so forged row counts fail with kProtocol before
/// any allocation.
void EncodeDataFrame(const DataFrame& df, wire::WireWriter* writer);
DataFrame DecodeDataFrame(wire::WireReader* reader);

void EncodeSchema(const Schema& schema, wire::WireWriter* writer);
Schema DecodeSchema(wire::WireReader* reader);

// --- frame I/O -----------------------------------------------------------

/// Writes one frame (header + CRC + payload) within `timeout_ms`.
/// Throws wake::Error(kNetwork) on stall/reset, kProtocol if the payload
/// exceeds max_frame_bytes.
void SendFrame(const net::Socket& sock, FrameType type,
               const std::string& payload, int64_t timeout_ms,
               size_t max_frame_bytes);

struct RecvResult {
  enum class Status : uint8_t { kFrame, kIdle, kEof };
  Status status = Status::kIdle;
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Reads one frame. Waits at most `idle_timeout_ms` for the first byte
/// (kIdle / kEof are normal outcomes there: heartbeat poll / clean
/// close); once a frame has started, the header and payload must land
/// within `io_timeout_ms` or the read fails (kNetwork). Header
/// validation and CRC mismatches throw kProtocol.
RecvResult RecvFrame(const net::Socket& sock, int64_t idle_timeout_ms,
                     int64_t io_timeout_ms, size_t max_frame_bytes);

}  // namespace protocol
}  // namespace wake

#endif  // WAKE_SERVER_PROTOCOL_H_
