#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/error.h"

namespace wake {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",  "GROUP",    "BY",     "ORDER",
      "LIMIT",  "JOIN",  "INNER",  "LEFT",     "SEMI",   "ANTI",
      "ON",     "AND",   "OR",     "NOT",      "AS",     "ASC",
      "DESC",   "LIKE",  "IN",     "BETWEEN",  "DATE",   "HAVING",
      "SUM",    "COUNT", "AVG",    "MIN",      "MAX",    "DISTINCT",
      "VAR",    "STDDEV","MEDIAN", "YEAR",   "SUBSTR",   "COALESCE", "CASE",
      "WHEN",   "THEN",  "ELSE",   "END",      "IS",     "NULL",
      "TRUE",   "FALSE", "OUTER",  "CROSS",    "INTERVAL", "DAY"};
  return kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

std::vector<Token> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;  // -- line comment
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdent, ToLower(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool saw_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !saw_dot))) {
        saw_dot |= input[i] == '.';
        ++i;
      }
      tokens.push_back({TokenType::kNumber, input.substr(start, i - start),
                        start});
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      while (true) {
        if (i >= n) {
          throw Error("unterminated string literal at offset " +
                          std::to_string(start),
                      ErrorCategory::kParse, start);
        }
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escape
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        value += input[i++];
      }
      tokens.push_back({TokenType::kString, value, start});
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two,
                          start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),*+-/=<>.";
    if (kSingles.find(c) == std::string::npos) {
      throw Error(std::string("unexpected character '") + c + "' at offset " +
                      std::to_string(start),
                  ErrorCategory::kParse, start);
    }
    tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
    ++i;
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace sql
}  // namespace wake
