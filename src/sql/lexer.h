// SQL lexer for the wake SQL front end (the declarative interface the
// paper lists as future work, §7.3/§10).
#ifndef WAKE_SQL_LEXER_H_
#define WAKE_SQL_LEXER_H_

#include <string>
#include <vector>

namespace wake {
namespace sql {

enum class TokenType : uint8_t {
  kKeyword,  // upper-cased SQL keyword (SELECT, FROM, ...)
  kIdent,    // identifier (column/table names, lower-cased)
  kNumber,   // integer or decimal literal
  kString,   // '...' literal (quotes stripped, '' unescaped)
  kSymbol,   // punctuation / operator: ( ) , * + - / = <> <= >= < > .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // keyword/symbol text, identifier, or literal value
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Tokenizes `input`. Throws wake::Error on malformed literals. Keywords
/// are recognized case-insensitively and reported upper-case; identifiers
/// are lower-cased (SQL-style case folding).
std::vector<Token> Lex(const std::string& input);

}  // namespace sql
}  // namespace wake

#endif  // WAKE_SQL_LEXER_H_
