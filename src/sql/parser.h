// SQL front end: parses a SELECT statement into a wake logical plan.
//
// The paper leaves a declarative interface as future work (§3.3, §10);
// this module provides one for the supported operator algebra:
//
//   SELECT <expr [AS name] | agg(expr) [AS name] | *> [, ...]
//   FROM <table> [ [INNER|LEFT|SEMI|ANTI] JOIN <table> ON a = b [AND ...]
//                | CROSS JOIN <table> ]*
//   [WHERE <predicate>]
//   [GROUP BY col [, ...]]   [HAVING <predicate>]
//   [ORDER BY col [ASC|DESC] [, ...]]   [LIMIT n]
//
// Expressions: arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN (...),
// LIKE, CASE WHEN, DATE 'yyyy-mm-dd' (± INTERVAL n DAY), YEAR(),
// SUBSTR(), COALESCE(); aggregates SUM/COUNT/COUNT(DISTINCT)/AVG/MIN/MAX/
// VAR/STDDEV. Table qualifiers (`l.l_orderkey`) are accepted and stripped
// (TPC-H columns are globally unique). Subqueries are not supported —
// express them by composing plans/edfs, as the paper's API does.
//
// Example:
//   Plan plan = sql::Parse(
//       "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem "
//       "WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag "
//       "ORDER BY q DESC LIMIT 5");
//   WakeEngine(&catalog).Execute(plan.node(), on_state);
#ifndef WAKE_SQL_PARSER_H_
#define WAKE_SQL_PARSER_H_

#include <string>

#include "plan/plan.h"

namespace wake {
namespace sql {

/// Parses one SELECT statement into a plan. Throws wake::Error with a
/// position-annotated message on syntax errors or unsupported constructs.
Plan Parse(const std::string& statement);

}  // namespace sql
}  // namespace wake

#endif  // WAKE_SQL_PARSER_H_
