// SQL front end: parses a SELECT statement into a wake logical plan.
//
// The paper leaves a declarative interface as future work (§3.3, §10);
// this module provides one for the supported operator algebra:
//
//   SELECT <expr [AS name] | agg(expr) [AS name] | *> [, ...]
//   FROM <relation> [ [INNER|LEFT|SEMI|ANTI] JOIN <relation>
//                       ON a = b [AND ...]
//                   | CROSS JOIN <relation> ]*
//   [WHERE <predicate>]
//   [GROUP BY col [, ...]]   [HAVING <predicate>]
//   [ORDER BY col [ASC|DESC] [, ...]]   [LIMIT n]
//
// where <relation> is `table [[AS] alias]` or a parenthesized SELECT
// (derived table) with an optional alias — enough to express all 22
// TPC-H queries in the plan decomposition style of the paper (scalar
// subqueries via CROSS JOIN over an aggregating subquery, EXISTS via
// SEMI/ANTI JOIN; see tpch/queries_sql.h).
//
// Expressions: arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN (...),
// LIKE, CASE WHEN, DATE 'yyyy-mm-dd' (± INTERVAL n DAY), YEAR(),
// SUBSTR(), COALESCE(); aggregates SUM/COUNT/COUNT(DISTINCT)/AVG/MIN/MAX/
// VAR/STDDEV/MEDIAN. Table qualifiers (`l.l_orderkey`) are validated
// against the tables and aliases in FROM/JOIN scope (unknown qualifiers
// raise a position-annotated wake::Error), then stripped — TPC-H column
// names are globally unique. Correlated subqueries are not supported —
// express them by composing plans/edfs, as the paper's API does.
//
// Example:
//   Plan plan = sql::Parse(
//       "SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem "
//       "WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag "
//       "ORDER BY q DESC LIMIT 5");
//   WakeEngine(&catalog).Execute(plan.node(), on_state);
#ifndef WAKE_SQL_PARSER_H_
#define WAKE_SQL_PARSER_H_

#include <string>

#include "plan/plan.h"

namespace wake {
namespace sql {

/// Parses one SELECT statement into a plan. Throws wake::Error with a
/// position-annotated message on syntax errors or unsupported constructs.
Plan Parse(const std::string& statement);

}  // namespace sql
}  // namespace wake

#endif  // WAKE_SQL_PARSER_H_
