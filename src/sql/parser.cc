#include "sql/parser.h"

#include <algorithm>
#include <optional>

#include "common/error.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace wake {
namespace sql {

namespace {

// Semantic SQL checks (aggregate/star/GROUP BY shape): statement-level
// rejections of the SQL text, so they carry the parse category like the
// token-level Fail() path (no single-token position to attach).
void CheckSql(bool condition, const std::string& message) {
  if (!condition) throw Error(message, ErrorCategory::kParse);
}

/// One SELECT-list item: either a scalar expression or an aggregate call.
struct SelectItem {
  bool star = false;
  bool is_agg = false;
  AggFunc func = AggFunc::kCount;
  ExprPtr agg_arg;     // null for COUNT(*)
  std::string agg_arg_column;  // plain column name if the arg is one
  ExprPtr scalar;
  std::string alias;   // empty = derive a name
};

class Parser {
 public:
  explicit Parser(const std::string& input) : tokens_(Lex(input)) {}

  Plan ParseStatement() {
    Plan plan = ParseSelect();
    Expect(TokenType::kEnd, "");
    return plan;
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool AtSymbol(const char* sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool AcceptKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool AcceptSymbol(const char* sym) {
    if (!AtSymbol(sym)) return false;
    Advance();
    return true;
  }
  [[noreturn]] void Fail(const std::string& message) const {
    throw Error("SQL error at offset " + std::to_string(Peek().position) +
                    " (near '" + Peek().text + "'): " + message,
                ErrorCategory::kParse, Peek().position);
  }
  void ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) Fail(std::string("expected ") + kw);
  }
  void ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) Fail(std::string("expected '") + sym + "'");
  }
  void Expect(TokenType type, const char* what) {
    if (Peek().type != type) Fail(std::string("expected ") + what);
    Advance();
  }

  /// Identifier with an optional table qualifier (`t.col` -> `col`).
  /// Qualifiers are recorded and validated against the FROM/JOIN scope
  /// once the full statement is parsed (SELECT items appear before FROM);
  /// the column keeps its bare name (TPC-H names are globally unique).
  std::string ParseColumnName() {
    std::string qualifier;
    return ParseQualified(&qualifier);
  }

  // --- expression grammar (precedence climbing) ---
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr left = ParseAnd();
    while (AcceptKeyword("OR")) {
      left = Expr::Or(std::move(left), ParseAnd());
    }
    return left;
  }

  ExprPtr ParseAnd() {
    ExprPtr left = ParseNot();
    while (AcceptKeyword("AND")) {
      left = Expr::And(std::move(left), ParseNot());
    }
    return left;
  }

  ExprPtr ParseNot() {
    if (AcceptKeyword("NOT")) return Expr::Not(ParseNot());
    return ParsePredicate();
  }

  ExprPtr ParsePredicate() {
    ExprPtr left = ParseAdditive();
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      ExpectKeyword("NULL");
      ExprPtr test = Expr::IsNull(std::move(left));
      return negated ? Expr::Not(std::move(test)) : test;
    }
    if (AcceptKeyword("BETWEEN")) {
      ExprPtr lo = ParseAdditive();
      ExpectKeyword("AND");
      ExprPtr hi = ParseAdditive();
      return Expr::And(Ge(left, std::move(lo)), Le(left, std::move(hi)));
    }
    bool negate = false;
    if (AtKeyword("NOT") &&
        (Peek(1).text == "LIKE" || Peek(1).text == "IN")) {
      Advance();
      negate = true;
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) Fail("expected LIKE pattern");
      ExprPtr result = Expr::Like(std::move(left), Advance().text);
      return negate ? Expr::Not(std::move(result)) : result;
    }
    if (AcceptKeyword("IN")) {
      ExpectSymbol("(");
      std::vector<Value> values;
      do {
        values.push_back(ParseLiteralValue());
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
      ExprPtr result = Expr::In(std::move(left), std::move(values));
      return negate ? Expr::Not(std::move(result)) : result;
    }
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"=", CompareOp::kEq},  {"<>", CompareOp::kNe},
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
        {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (AcceptSymbol(sym)) {
        return Expr::Cmp(op, std::move(left), ParseAdditive());
      }
    }
    return left;
  }

  ExprPtr ParseAdditive() {
    ExprPtr left = ParseMultiplicative();
    while (AtSymbol("+") || AtSymbol("-")) {
      bool add = Advance().text == "+";
      // DATE 'x' +/- INTERVAL n DAY folds into a date literal.
      if (AtKeyword("INTERVAL")) {
        Advance();
        if (Peek().type != TokenType::kNumber) Fail("expected day count");
        int64_t days = std::stoll(Advance().text);
        ExpectKeyword("DAY");
        CheckSql(left->kind() == ExprKind::kLiteral &&
                     left->literal().type == ValueType::kDate,
                 "INTERVAL arithmetic requires a DATE literal left side");
        int64_t base = left->literal().i;
        left = Expr::Lit(Value::Date(add ? base + days : base - days));
        continue;
      }
      ExprPtr right = ParseMultiplicative();
      left = add ? std::move(left) + std::move(right)
                 : std::move(left) - std::move(right);
    }
    return left;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr left = ParseUnary();
    while (AtSymbol("*") || AtSymbol("/")) {
      bool mul = Advance().text == "*";
      ExprPtr right = ParseUnary();
      left = mul ? std::move(left) * std::move(right)
                 : std::move(left) / std::move(right);
    }
    return left;
  }

  ExprPtr ParseUnary() {
    if (AcceptSymbol("-")) return Expr::Int(0) - ParseUnary();
    if (AcceptSymbol("+")) return ParseUnary();
    return ParsePrimary();
  }

  Value ParseLiteralValue() {
    if (Peek().type == TokenType::kNumber) {
      std::string text = Advance().text;
      if (text.find('.') != std::string::npos) {
        return Value::Float(std::stod(text));
      }
      return Value::Int(std::stoll(text));
    }
    if (Peek().type == TokenType::kString) {
      return Value::Str(Advance().text);
    }
    if (AcceptKeyword("DATE")) {
      if (Peek().type != TokenType::kString) Fail("expected date string");
      return Value::Date(ParseDate(Advance().text));
    }
    if (AcceptKeyword("TRUE")) return Value::Bool(true);
    if (AcceptKeyword("FALSE")) return Value::Bool(false);
    Fail("expected literal");
  }

  ExprPtr ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kNumber:
      case TokenType::kString:
        return Expr::Lit(ParseLiteralValue());
      case TokenType::kIdent:
        return Expr::Col(ParseColumnName());
      case TokenType::kSymbol:
        if (AcceptSymbol("(")) {
          ExprPtr inner = ParseExpr();
          ExpectSymbol(")");
          return inner;
        }
        Fail("unexpected symbol in expression");
      case TokenType::kKeyword: {
        if (AtKeyword("DATE")) return Expr::Lit(ParseLiteralValue());
        if (AcceptKeyword("YEAR")) {
          ExpectSymbol("(");
          ExprPtr arg = ParseExpr();
          ExpectSymbol(")");
          return Expr::Year(std::move(arg));
        }
        if (AcceptKeyword("SUBSTR")) {
          ExpectSymbol("(");
          ExprPtr arg = ParseExpr();
          ExpectSymbol(",");
          if (Peek().type != TokenType::kNumber) Fail("expected start");
          int64_t start = std::stoll(Advance().text);
          ExpectSymbol(",");
          if (Peek().type != TokenType::kNumber) Fail("expected length");
          int64_t len = std::stoll(Advance().text);
          ExpectSymbol(")");
          return Expr::Substr(std::move(arg), start, len);
        }
        if (AcceptKeyword("COALESCE")) {
          ExpectSymbol("(");
          ExprPtr arg = ParseExpr();
          ExpectSymbol(",");
          Value fallback = ParseLiteralValue();
          ExpectSymbol(")");
          return Expr::Coalesce(std::move(arg), std::move(fallback));
        }
        if (AcceptKeyword("CASE")) {
          ExpectKeyword("WHEN");
          ExprPtr cond = ParseExpr();
          ExpectKeyword("THEN");
          ExprPtr then_expr = ParseExpr();
          ExpectKeyword("ELSE");
          ExprPtr else_expr = ParseExpr();
          ExpectKeyword("END");
          return Expr::Case(std::move(cond), std::move(then_expr),
                            std::move(else_expr));
        }
        Fail("unsupported keyword in expression");
      }
      default:
        Fail("unexpected end of input in expression");
    }
  }

  // --- SELECT list ---
  std::optional<AggFunc> AggKeyword() {
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"SUM", AggFunc::kSum},   {"COUNT", AggFunc::kCount},
        {"AVG", AggFunc::kAvg},   {"MIN", AggFunc::kMin},
        {"MAX", AggFunc::kMax},   {"VAR", AggFunc::kVar},
        {"STDDEV", AggFunc::kStddev}, {"MEDIAN", AggFunc::kMedian}};
    for (const auto& [kw, func] : kAggs) {
      if (AtKeyword(kw) && Peek(1).text == "(") {
        Advance();
        return func;
      }
    }
    return std::nullopt;
  }

  SelectItem ParseSelectItem() {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.star = true;
      return item;
    }
    if (auto func = AggKeyword()) {
      item.is_agg = true;
      item.func = *func;
      ExpectSymbol("(");
      if (item.func == AggFunc::kCount && AcceptSymbol("*")) {
        // COUNT(*): no argument.
      } else {
        if (AcceptKeyword("DISTINCT")) {
          CheckSql(item.func == AggFunc::kCount,
                   "DISTINCT only supported inside COUNT()");
          item.func = AggFunc::kCountDistinct;
        }
        item.agg_arg = ParseExpr();
        if (item.agg_arg->kind() == ExprKind::kColumn) {
          item.agg_arg_column = item.agg_arg->column_name();
        }
      }
      ExpectSymbol(")");
    } else {
      item.scalar = ParseExpr();
    }
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdent) Fail("expected alias");
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdent &&
               item.scalar != nullptr) {
      // implicit alias: `expr name`
      item.alias = Advance().text;
    }
    return item;
  }

  // --- FROM / JOIN ---

  /// Optional `[AS] alias` after a table name or subquery.
  std::string MaybeAlias() {
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdent) Fail("expected alias");
      return Advance().text;
    }
    if (Peek().type == TokenType::kIdent) return Advance().text;
    return "";
  }

  /// One relation in FROM/JOIN: a table name or a parenthesized SELECT,
  /// each with an optional alias. Every name/alias is registered in the
  /// statement's scope; `names` receives the ways this relation can be
  /// qualified (used to orient ON-clause keys).
  Plan ParseRelation(std::vector<std::string>* names) {
    if (AcceptSymbol("(")) {
      Plan sub = ParseSelect();
      ExpectSymbol(")");
      std::string alias = MaybeAlias();
      if (!alias.empty()) {
        names->push_back(alias);
        scope_.push_back(alias);
      }
      return sub;
    }
    if (Peek().type != TokenType::kIdent) {
      Fail("expected table name or subquery");
    }
    std::string table = Advance().text;
    names->push_back(table);
    scope_.push_back(table);
    std::string alias = MaybeAlias();
    if (!alias.empty()) {
      names->push_back(alias);
      scope_.push_back(alias);
    }
    return Plan::Scan(std::move(table));
  }

  Plan ParseFrom() {
    std::vector<std::string> names;
    Plan plan = ParseRelation(&names);
    while (true) {
      JoinType type;
      if (AcceptKeyword("JOIN")) {
        type = JoinType::kInner;
      } else if (AtKeyword("INNER") && Peek(1).text == "JOIN") {
        Advance();
        Advance();
        type = JoinType::kInner;
      } else if (AtKeyword("LEFT")) {
        Advance();
        AcceptKeyword("OUTER");
        ExpectKeyword("JOIN");
        type = JoinType::kLeft;
      } else if (AtKeyword("SEMI") && Peek(1).text == "JOIN") {
        Advance();
        Advance();
        type = JoinType::kSemi;
      } else if (AtKeyword("ANTI") && Peek(1).text == "JOIN") {
        Advance();
        Advance();
        type = JoinType::kAnti;
      } else if (AtKeyword("CROSS") && Peek(1).text == "JOIN") {
        Advance();
        Advance();
        std::vector<std::string> right_names;
        plan = plan.CrossJoin(ParseRelation(&right_names));
        continue;
      } else {
        break;
      }
      // Names in scope before the right relation parses belong to the
      // left side; a qualifier naming the left side wins even if the
      // right relation reuses the same name/alias.
      size_t left_scope_end = scope_.size();
      std::vector<std::string> right_names;
      Plan right = ParseRelation(&right_names);
      ExpectKeyword("ON");
      std::vector<std::string> left_keys, right_keys;
      do {
        // a = b; columns written in either order — the column qualified
        // with the joined relation's name/alias (or listed second) is the
        // right key.
        std::string a_qual, b_qual;
        std::string a = ParseQualified(&a_qual);
        ExpectSymbol("=");
        std::string b = ParseQualified(&b_qual);
        auto in_left_scope = [&](const std::string& qual) {
          return std::find(scope_.begin(), scope_.begin() + left_scope_end,
                           qual) != scope_.begin() + left_scope_end;
        };
        bool a_is_right =
            !in_left_scope(a_qual) &&
            std::find(right_names.begin(), right_names.end(), a_qual) !=
                right_names.end();
        if (a_is_right) {
          left_keys.push_back(b);
          right_keys.push_back(a);
        } else {
          left_keys.push_back(a);
          right_keys.push_back(b);
        }
      } while (AcceptKeyword("AND"));
      plan = plan.Join(right, type, std::move(left_keys),
                       std::move(right_keys));
    }
    return plan;
  }

  std::string ParseQualified(std::string* qualifier) {
    if (Peek().type != TokenType::kIdent) Fail("expected column name");
    size_t position = Peek().position;
    std::string name = Advance().text;
    if (AtSymbol(".")) {
      Advance();
      *qualifier = name;
      qualifier_refs_.push_back({name, position});
      if (Peek().type != TokenType::kIdent) Fail("expected column name");
      name = Advance().text;
    }
    return name;
  }

  // --- the statement ---

  /// Every recorded `qual.col` must name a table or alias brought into
  /// scope by this statement's FROM/JOIN clause.
  void ValidateQualifiers() {
    for (const auto& [qual, position] : qualifier_refs_) {
      if (std::find(scope_.begin(), scope_.end(), qual) == scope_.end()) {
        throw Error("SQL error at offset " + std::to_string(position) +
                        " (near '" + qual + "'): unknown table or alias '" +
                        qual + "' (not in FROM/JOIN scope)",
                    ErrorCategory::kParse, position);
      }
    }
  }

  Plan ParseSelect() {
    // Each (sub)statement validates its own qualifiers against its own
    // FROM/JOIN scope; save and restore around nested SELECTs.
    std::vector<std::string> saved_scope = std::move(scope_);
    std::vector<std::pair<std::string, size_t>> saved_refs =
        std::move(qualifier_refs_);
    scope_.clear();
    qualifier_refs_.clear();
    Plan plan = ParseSelectBody();
    ValidateQualifiers();
    scope_ = std::move(saved_scope);
    qualifier_refs_ = std::move(saved_refs);
    return plan;
  }

  Plan ParseSelectBody() {
    ExpectKeyword("SELECT");
    std::vector<SelectItem> items;
    do {
      items.push_back(ParseSelectItem());
    } while (AcceptSymbol(","));
    ExpectKeyword("FROM");
    Plan plan = ParseFrom();

    if (AcceptKeyword("WHERE")) plan = plan.Filter(ParseExpr());

    std::vector<std::string> group_by;
    bool has_group = false;
    if (AcceptKeyword("GROUP")) {
      ExpectKeyword("BY");
      has_group = true;
      do {
        group_by.push_back(ParseColumnName());
      } while (AcceptSymbol(","));
    }

    bool has_agg = false;
    for (const auto& item : items) has_agg |= item.is_agg;
    CheckSql(!has_group || has_agg,
             "GROUP BY requires at least one aggregate in SELECT");

    if (has_agg) {
      plan = LowerAggregate(plan, items, group_by);
    } else if (!(items.size() == 1 && items[0].star)) {
      std::vector<NamedExpr> projections;
      for (size_t i = 0; i < items.size(); ++i) {
        CheckSql(!items[i].star, "'*' cannot be mixed with expressions");
        projections.push_back(
            {OutputName(items[i], i), items[i].scalar});
      }
      plan = plan.Map(std::move(projections));
    }

    if (AcceptKeyword("HAVING")) {
      CheckSql(has_agg, "HAVING requires aggregation");
      plan = plan.Filter(ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      ExpectKeyword("BY");
      std::vector<SortKey> keys;
      do {
        SortKey key;
        key.column = ParseColumnName();
        if (AcceptKeyword("DESC")) {
          key.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        keys.push_back(std::move(key));
      } while (AcceptSymbol(","));
      size_t limit = 0;
      if (AcceptKeyword("LIMIT")) {
        if (Peek().type != TokenType::kNumber) Fail("expected limit");
        limit = static_cast<size_t>(std::stoull(Advance().text));
      }
      plan = plan.Sort(std::move(keys), limit);
    } else if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) Fail("expected limit");
      size_t limit = static_cast<size_t>(std::stoull(Advance().text));
      plan = plan.Sort({}, limit);
    }
    return plan;
  }

  std::string OutputName(const SelectItem& item, size_t index) const {
    if (!item.alias.empty()) return item.alias;
    if (item.is_agg) {
      std::string base = AggFuncName(item.func);
      if (!item.agg_arg_column.empty()) {
        return base + "_" + item.agg_arg_column;
      }
      return base + (index > 0 ? "_" + std::to_string(index) : "");
    }
    if (item.scalar->kind() == ExprKind::kColumn) {
      return item.scalar->column_name();
    }
    return "expr_" + std::to_string(index);
  }

  Plan LowerAggregate(Plan plan, const std::vector<SelectItem>& items,
                      const std::vector<std::string>& group_by) {
    // Materialize non-column aggregate arguments as derived columns.
    std::vector<NamedExpr> derived;
    std::vector<AggSpec> specs;
    std::vector<std::string> final_columns;
    size_t temp_idx = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      CheckSql(!item.star, "'*' cannot be mixed with aggregates");
      std::string out = OutputName(item, i);
      if (item.is_agg) {
        AggSpec spec;
        spec.func = item.func;
        spec.output = out;
        if (item.agg_arg == nullptr) {
          spec.input = "";  // COUNT(*)
        } else if (!item.agg_arg_column.empty()) {
          spec.input = item.agg_arg_column;
        } else {
          spec.input = "__agg_arg_" + std::to_string(temp_idx++);
          derived.push_back({spec.input, item.agg_arg});
        }
        specs.push_back(std::move(spec));
      } else {
        bool is_group_column =
            item.scalar->kind() == ExprKind::kColumn &&
            std::find(group_by.begin(), group_by.end(),
                      item.scalar->column_name()) != group_by.end();
        bool aliased_group_expr =
            std::find(group_by.begin(), group_by.end(), out) !=
            group_by.end();
        CheckSql(is_group_column || aliased_group_expr,
                 "non-aggregate SELECT item '" + out +
                     "' must be a GROUP BY column");
        // `GROUP BY <alias>` over an expression: derive the expression as
        // a column named by the alias before aggregating.
        if (!is_group_column) derived.push_back({out, item.scalar});
      }
      final_columns.push_back(out);
    }
    if (!derived.empty()) plan = plan.Derive(std::move(derived));
    plan = plan.Aggregate(group_by, std::move(specs));
    // Re-project to the SELECT order/names when they differ from the
    // aggregate's natural group-keys-first layout (handles aliased group
    // columns too).
    std::vector<std::string> natural = group_by;
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].is_agg) natural.push_back(final_columns[i]);
    }
    if (natural != final_columns) {
      std::vector<NamedExpr> reorder;
      for (size_t i = 0; i < items.size(); ++i) {
        // Plain group columns may be renamed to their alias; everything
        // else already carries its output name after the aggregate.
        ExprPtr source =
            !items[i].is_agg && items[i].scalar->kind() == ExprKind::kColumn
                ? items[i].scalar
                : Expr::Col(final_columns[i]);
        reorder.push_back({final_columns[i], std::move(source)});
      }
      plan = plan.Map(std::move(reorder));
    }
    return plan;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Tables/aliases in scope for the SELECT currently being parsed.
  std::vector<std::string> scope_;
  /// (qualifier, input offset) pairs awaiting scope validation.
  std::vector<std::pair<std::string, size_t>> qualifier_refs_;
};

}  // namespace

Plan Parse(const std::string& statement) {
  Parser parser(statement);
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace wake
