// The 22 TPC-H benchmark queries expressed as wake logical plans (§8.1).
//
// Every query is written in the Deep-OLA decomposition style of the paper:
// scalar subqueries become aggregate subplans broadcast via cross joins,
// EXISTS/NOT EXISTS become semi/anti joins, and Q21's correlated EXISTS
// pair is rewritten through per-order distinct-supplier counts. The same
// plans run on the Wake OLA engine and the exact baseline, so their final
// results are directly comparable.
#ifndef WAKE_TPCH_QUERIES_H_
#define WAKE_TPCH_QUERIES_H_

#include "plan/plan.h"

namespace wake {
namespace tpch {

/// Plan for TPC-H query `number` (1-22). Throws wake::Error otherwise.
Plan Query(int number);

/// All query numbers, 1..22.
std::vector<int> AllQueries();

/// Single-aggregate "modified" queries used for the OLA-system comparison
/// (Fig 9): Q1/Q6 single-table forms for the ProgressiveDB comparison and
/// Q3/Q7/Q10 join-aggregate forms (no group-by, no sort) matching the
/// WanderJoin evaluation. Valid numbers: 1, 3, 6, 7, 10.
Plan ModifiedQuery(int number);

}  // namespace tpch
}  // namespace wake

#endif  // WAKE_TPCH_QUERIES_H_
