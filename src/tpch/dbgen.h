// In-process TPC-H data generator (dbgen substitute).
//
// Generates the eight TPC-H tables at a given scale factor with the exact
// schema, key integrity (every foreign key resolves), spec value ranges,
// spec date logic (shipdate/commitdate/receiptdate relative to orderdate,
// returnflag/linestatus derived from the 1995-06-17 "current date"), and the
// text patterns the 22 queries probe with LIKE ('%green%', 'PROMO%',
// '%special%requests%', '%Customer%Complaints%', ...).
//
// Deviations from the official dbgen, documented in DESIGN.md: order keys
// are dense (not sparse), comment text comes from a small word pool, and the
// ship mode list uses "AIR REG" (matching Q19's literal) instead of
// "REG AIR". All deviations are self-consistent: queries and data agree.
//
// Tables are clustered (sorted + partition-boundary aligned) on their
// primary keys: lineitem on l_orderkey, orders on o_orderkey, etc.
#ifndef WAKE_TPCH_DBGEN_H_
#define WAKE_TPCH_DBGEN_H_

#include <cstdint>

#include "storage/partitioned_table.h"

namespace wake {
namespace tpch {

/// Generator configuration.
struct DbgenConfig {
  /// TPC-H scale factor; SF 1.0 is ~6M lineitem rows. Benches use 0.01-0.1.
  double scale_factor = 0.01;
  /// Partition count for the two large streamed tables (lineitem, orders).
  /// Mid-size tables get half, nation/region one.
  size_t partitions = 8;
  uint64_t seed = 20230307;  // arXiv date of the paper, for determinism
};

/// TPC-H "current date" used for returnflag / linestatus / orderstatus.
int64_t CurrentDate();

/// Generates all eight tables into a catalog.
Catalog Generate(const DbgenConfig& config);

/// Generates a single table (same contents as the corresponding table from
/// Generate with the same config) without building the rest of the
/// catalog. A non-empty `columns` list makes generation projected: the
/// same random draws are consumed (so kept columns are bit-identical to a
/// full generation) but unselected columns are never built, stored, or
/// dict-encoded, and the result carries the narrowed schema.
PartitionedTable GenerateTable(const DbgenConfig& config,
                               const std::string& name,
                               const std::vector<std::string>& columns = {});

/// Row count for `table` at `scale_factor` (lineitem returns the expected
/// value; its actual count varies with the per-order line count draw).
size_t RowsAtScale(const std::string& table, double scale_factor);

}  // namespace tpch
}  // namespace wake

#endif  // WAKE_TPCH_DBGEN_H_
