#include "tpch/queries.h"

#include "common/error.h"

namespace wake {
namespace tpch {

namespace {

ExprPtr C(const char* name) { return Expr::Col(name); }
ExprPtr D(int y, int m, int d) { return Expr::Date(y, m, d); }
ExprPtr F(double x) { return Expr::Float(x); }
ExprPtr I(int64_t x) { return Expr::Int(x); }
ExprPtr S(const char* s) { return Expr::Str(s); }

std::vector<Value> Strs(std::initializer_list<const char*> items) {
  std::vector<Value> out;
  for (const char* s : items) out.push_back(Value::Str(s));
  return out;
}

std::vector<Value> Ints(std::initializer_list<int64_t> items) {
  std::vector<Value> out;
  for (int64_t v : items) out.push_back(Value::Int(v));
  return out;
}

ExprPtr Between(ExprPtr col, ExprPtr lo, ExprPtr hi) {
  ExprPtr lower = Ge(col, std::move(lo));
  ExprPtr upper = Le(col, std::move(hi));
  return Expr::And(std::move(lower), std::move(upper));
}

// revenue := l_extendedprice * (1 - l_discount)
ExprPtr Revenue() {
  return C("l_extendedprice") * (F(1.0) - C("l_discount"));
}

// -- Q1: pricing summary report -------------------------------------------
Plan Q1() {
  return Plan::Scan("lineitem")
      .Filter(Le(C("l_shipdate"), D(1998, 9, 2)))  // 1998-12-01 - 90 days
      .Derive({{"disc_price", Revenue()},
               {"charge", Revenue() * (F(1.0) + C("l_tax"))}})
      .Aggregate({"l_returnflag", "l_linestatus"},
                 {Sum("l_quantity", "sum_qty"),
                  Sum("l_extendedprice", "sum_base_price"),
                  Sum("disc_price", "sum_disc_price"),
                  Sum("charge", "sum_charge"),
                  Avg("l_quantity", "avg_qty"),
                  Avg("l_extendedprice", "avg_price"),
                  Avg("l_discount", "avg_disc"),
                  Count("count_order")})
      .Sort({{"l_returnflag", false}, {"l_linestatus", false}});
}

// Suppliers in `region_name`, with nation names attached.
Plan SuppliersInRegion(const char* region_name) {
  Plan nations = Plan::Scan("nation").Join(
      Plan::Scan("region").Filter(Eq(C("r_name"), S(region_name))),
      JoinType::kSemi, {"n_regionkey"}, {"r_regionkey"});
  return Plan::Scan("supplier").Join(nations, JoinType::kInner,
                                     {"s_nationkey"}, {"n_nationkey"});
}

// -- Q2: minimum cost supplier ---------------------------------------------
Plan Q2() {
  Plan part_f = Plan::Scan("part")
                    .Filter(Expr::And(Eq(C("p_size"), I(15)),
                                      Expr::Like(C("p_type"), "%BRASS")))
                    .Project({"p_partkey", "p_mfgr"});
  Plan supp_eu = SuppliersInRegion("EUROPE")
                     .Project({"s_suppkey", "s_acctbal", "s_name", "n_name",
                               "s_address", "s_phone", "s_comment"});
  Plan ps_eu = Plan::Scan("partsupp")
                   .Project({"ps_partkey", "ps_suppkey", "ps_supplycost"})
                   .Join(supp_eu, JoinType::kInner, {"ps_suppkey"},
                         {"s_suppkey"});
  Plan joined =
      ps_eu.Join(part_f, JoinType::kInner, {"ps_partkey"}, {"p_partkey"});
  Plan min_cost = joined.Aggregate({"ps_partkey"},
                                   {Min("ps_supplycost", "min_cost")});
  return joined
      .Join(min_cost.Map({{"mc_partkey", C("ps_partkey")},
                          {"min_cost", C("min_cost")}}),
            JoinType::kInner, {"ps_partkey"}, {"mc_partkey"})
      .Filter(Eq(C("ps_supplycost"), C("min_cost")))
      .Map({{"s_acctbal", C("s_acctbal")},
            {"s_name", C("s_name")},
            {"n_name", C("n_name")},
            {"p_partkey", C("ps_partkey")},
            {"p_mfgr", C("p_mfgr")},
            {"s_address", C("s_address")},
            {"s_phone", C("s_phone")},
            {"s_comment", C("s_comment")}})
      .Sort({{"s_acctbal", true},
             {"n_name", false},
             {"s_name", false},
             {"p_partkey", false}},
            100);
}

// -- Q3: shipping priority -------------------------------------------------
Plan Q3() {
  Plan cust = Plan::Scan("customer")
                  .Filter(Eq(C("c_mktsegment"), S("BUILDING")))
                  .Project({"c_custkey"});
  Plan ord = Plan::Scan("orders")
                 .Filter(Lt(C("o_orderdate"), D(1995, 3, 15)))
                 .Join(cust, JoinType::kSemi, {"o_custkey"}, {"c_custkey"})
                 .Project({"o_orderkey", "o_orderdate", "o_shippriority"});
  return Plan::Scan("lineitem")
      .Filter(Gt(C("l_shipdate"), D(1995, 3, 15)))
      .Project({"l_orderkey", "l_extendedprice", "l_discount"})
      .Join(ord, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Derive({{"rev", Revenue()}})
      .Aggregate({"l_orderkey", "o_orderdate", "o_shippriority"},
                 {Sum("rev", "revenue")})
      .Sort({{"revenue", true}, {"o_orderdate", false}}, 10);
}

// -- Q4: order priority checking -------------------------------------------
Plan Q4() {
  Plan late = Plan::Scan("lineitem")
                  .Filter(Lt(C("l_commitdate"), C("l_receiptdate")))
                  .Project({"l_orderkey"});
  return Plan::Scan("orders")
      .Filter(Expr::And(Ge(C("o_orderdate"), D(1993, 7, 1)),
                        Lt(C("o_orderdate"), D(1993, 10, 1))))
      .Join(late, JoinType::kSemi, {"o_orderkey"}, {"l_orderkey"})
      .Aggregate({"o_orderpriority"}, {Count("order_count")})
      .Sort({{"o_orderpriority", false}});
}

// -- Q5: local supplier volume ----------------------------------------------
Plan Q5() {
  Plan supp = SuppliersInRegion("ASIA").Project(
      {"s_suppkey", "s_nationkey", "n_name"});
  Plan ord = Plan::Scan("orders")
                 .Filter(Expr::And(Ge(C("o_orderdate"), D(1994, 1, 1)),
                                   Lt(C("o_orderdate"), D(1995, 1, 1))))
                 .Join(Plan::Scan("customer").Project(
                           {"c_custkey", "c_nationkey"}),
                       JoinType::kInner, {"o_custkey"}, {"c_custkey"})
                 .Project({"o_orderkey", "c_nationkey"});
  return Plan::Scan("lineitem")
      .Project({"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"})
      .Join(ord, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Join(supp, JoinType::kInner, {"l_suppkey", "c_nationkey"},
            {"s_suppkey", "s_nationkey"})
      .Derive({{"rev", Revenue()}})
      .Aggregate({"n_name"}, {Sum("rev", "revenue")})
      .Sort({{"revenue", true}});
}

// -- Q6: forecasting revenue change -----------------------------------------
Plan Q6() {
  return Plan::Scan("lineitem")
      .Filter(Expr::And(
          Expr::And(Ge(C("l_shipdate"), D(1994, 1, 1)),
                    Lt(C("l_shipdate"), D(1995, 1, 1))),
          Expr::And(Between(C("l_discount"), F(0.049), F(0.071)),
                    Lt(C("l_quantity"), F(24.0)))))
      .Derive({{"rev", C("l_extendedprice") * C("l_discount")}})
      .Aggregate({}, {Sum("rev", "revenue")});
}

// -- Q7: volume shipping -----------------------------------------------------
Plan Q7() {
  auto nation_pair = Strs({"FRANCE", "GERMANY"});
  Plan supp = Plan::Scan("supplier")
                  .Join(Plan::Scan("nation").Filter(
                            Expr::In(C("n_name"), nation_pair)),
                        JoinType::kInner, {"s_nationkey"}, {"n_nationkey"})
                  .Map({{"s_suppkey", C("s_suppkey")},
                        {"supp_nation", C("n_name")}});
  Plan cust = Plan::Scan("customer")
                  .Join(Plan::Scan("nation").Filter(
                            Expr::In(C("n_name"), nation_pair)),
                        JoinType::kInner, {"c_nationkey"}, {"n_nationkey"})
                  .Map({{"c_custkey", C("c_custkey")},
                        {"cust_nation", C("n_name")}});
  Plan ord = Plan::Scan("orders")
                 .Project({"o_orderkey", "o_custkey"})
                 .Join(cust, JoinType::kInner, {"o_custkey"}, {"c_custkey"})
                 .Project({"o_orderkey", "cust_nation"});
  return Plan::Scan("lineitem")
      .Filter(Between(C("l_shipdate"), D(1995, 1, 1), D(1996, 12, 31)))
      .Project({"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
                "l_shipdate"})
      .Join(ord, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Join(supp, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})
      .Filter(Expr::Or(
          Expr::And(Eq(C("supp_nation"), S("FRANCE")),
                    Eq(C("cust_nation"), S("GERMANY"))),
          Expr::And(Eq(C("supp_nation"), S("GERMANY")),
                    Eq(C("cust_nation"), S("FRANCE")))))
      .Derive({{"l_year", Expr::Year(C("l_shipdate"))}, {"volume", Revenue()}})
      .Aggregate({"supp_nation", "cust_nation", "l_year"},
                 {Sum("volume", "revenue")})
      .Sort({{"supp_nation", false},
             {"cust_nation", false},
             {"l_year", false}});
}

// -- Q8: national market share ------------------------------------------------
Plan Q8() {
  Plan part_f = Plan::Scan("part")
                    .Filter(Eq(C("p_type"), S("ECONOMY ANODIZED STEEL")))
                    .Project({"p_partkey"});
  Plan am_nations =
      Plan::Scan("nation")
          .Join(Plan::Scan("region").Filter(Eq(C("r_name"), S("AMERICA"))),
                JoinType::kSemi, {"n_regionkey"}, {"r_regionkey"})
          .Project({"n_nationkey"});
  Plan cust = Plan::Scan("customer")
                  .Join(am_nations, JoinType::kSemi, {"c_nationkey"},
                        {"n_nationkey"})
                  .Project({"c_custkey"});
  Plan ord = Plan::Scan("orders")
                 .Filter(Between(C("o_orderdate"), D(1995, 1, 1),
                                 D(1996, 12, 31)))
                 .Join(cust, JoinType::kSemi, {"o_custkey"}, {"c_custkey"})
                 .Project({"o_orderkey", "o_orderdate"});
  Plan supp = Plan::Scan("supplier")
                  .Join(Plan::Scan("nation"), JoinType::kInner,
                        {"s_nationkey"}, {"n_nationkey"})
                  .Map({{"s_suppkey", C("s_suppkey")},
                        {"nation", C("n_name")}});
  return Plan::Scan("lineitem")
      .Join(part_f, JoinType::kSemi, {"l_partkey"}, {"p_partkey"})
      .Project({"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"})
      .Join(ord, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Join(supp, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})
      .Derive({{"o_year", Expr::Year(C("o_orderdate"))},
               {"volume", Revenue()}})
      .Derive({{"brazil_volume",
                Expr::Case(Eq(C("nation"), S("BRAZIL")), C("volume"),
                           F(0.0))}})
      .Aggregate({"o_year"}, {Sum("brazil_volume", "brazil"),
                              Sum("volume", "total")})
      .Map({{"o_year", C("o_year")},
            {"mkt_share", C("brazil") / C("total")}})
      .Sort({{"o_year", false}});
}

// -- Q9: product type profit measure -----------------------------------------
Plan Q9() {
  Plan part_f = Plan::Scan("part")
                    .Filter(Expr::Like(C("p_name"), "%green%"))
                    .Project({"p_partkey"});
  Plan supp = Plan::Scan("supplier")
                  .Join(Plan::Scan("nation"), JoinType::kInner,
                        {"s_nationkey"}, {"n_nationkey"})
                  .Map({{"s_suppkey", C("s_suppkey")},
                        {"nation", C("n_name")}});
  return Plan::Scan("lineitem")
      .Join(part_f, JoinType::kSemi, {"l_partkey"}, {"p_partkey"})
      .Join(Plan::Scan("partsupp").Project(
                {"ps_partkey", "ps_suppkey", "ps_supplycost"}),
            JoinType::kInner, {"l_partkey", "l_suppkey"},
            {"ps_partkey", "ps_suppkey"})
      .Join(Plan::Scan("orders").Project({"o_orderkey", "o_orderdate"}),
            JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Join(supp, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})
      .Derive({{"o_year", Expr::Year(C("o_orderdate"))},
               {"amount", Revenue() - C("ps_supplycost") * C("l_quantity")}})
      .Aggregate({"nation", "o_year"}, {Sum("amount", "sum_profit")})
      .Sort({{"nation", false}, {"o_year", true}});
}

// -- Q10: returned item reporting ---------------------------------------------
Plan Q10() {
  Plan ord = Plan::Scan("orders")
                 .Filter(Expr::And(Ge(C("o_orderdate"), D(1993, 10, 1)),
                                   Lt(C("o_orderdate"), D(1994, 1, 1))))
                 .Project({"o_orderkey", "o_custkey"});
  Plan cust = Plan::Scan("customer")
                  .Join(Plan::Scan("nation").Project(
                            {"n_nationkey", "n_name"}),
                        JoinType::kInner, {"c_nationkey"}, {"n_nationkey"});
  return Plan::Scan("lineitem")
      .Filter(Eq(C("l_returnflag"), S("R")))
      .Project({"l_orderkey", "l_extendedprice", "l_discount"})
      .Join(ord, JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Join(cust, JoinType::kInner, {"o_custkey"}, {"c_custkey"})
      .Derive({{"rev", Revenue()}})
      .Aggregate({"o_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
                  "c_address", "c_comment"},
                 {Sum("rev", "revenue")})
      .Sort({{"revenue", true}}, 20);
}

// -- Q11: important stock identification ---------------------------------------
Plan Q11() {
  Plan supp_de =
      Plan::Scan("supplier")
          .Join(Plan::Scan("nation").Filter(Eq(C("n_name"), S("GERMANY"))),
                JoinType::kSemi, {"s_nationkey"}, {"n_nationkey"})
          .Project({"s_suppkey"});
  Plan ps = Plan::Scan("partsupp")
                .Join(supp_de, JoinType::kSemi, {"ps_suppkey"}, {"s_suppkey"})
                .Derive({{"value", C("ps_supplycost") * C("ps_availqty")}});
  Plan grouped = ps.Aggregate({"ps_partkey"}, {Sum("value", "value")});
  Plan threshold = ps.Aggregate({}, {Sum("value", "total_value")})
                       .Map({{"threshold", C("total_value") * F(0.0001)}});
  return grouped.CrossJoin(threshold)
      .Filter(Gt(C("value"), C("threshold")))
      .Project({"ps_partkey", "value"})
      .Sort({{"value", true}});
}

// -- Q12: shipping modes and order priority -------------------------------------
Plan Q12() {
  auto high = Expr::In(C("o_orderpriority"), Strs({"1-URGENT", "2-HIGH"}));
  return Plan::Scan("lineitem")
      .Filter(Expr::And(
          Expr::And(Expr::In(C("l_shipmode"), Strs({"MAIL", "SHIP"})),
                    Lt(C("l_commitdate"), C("l_receiptdate"))),
          Expr::And(Lt(C("l_shipdate"), C("l_commitdate")),
                    Expr::And(Ge(C("l_receiptdate"), D(1994, 1, 1)),
                              Lt(C("l_receiptdate"), D(1995, 1, 1))))))
      .Project({"l_orderkey", "l_shipmode"})
      .Join(Plan::Scan("orders").Project({"o_orderkey", "o_orderpriority"}),
            JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
      .Derive({{"high_line", Expr::Case(high, I(1), I(0))},
               {"low_line", Expr::Case(high, I(0), I(1))}})
      .Aggregate({"l_shipmode"}, {Sum("high_line", "high_line_count"),
                                  Sum("low_line", "low_line_count")})
      .Sort({{"l_shipmode", false}});
}

// -- Q13: customer distribution --------------------------------------------------
Plan Q13() {
  Plan ord = Plan::Scan("orders")
                 .Filter(Expr::Not(
                     Expr::Like(C("o_comment"), "%special%requests%")))
                 .Project({"o_orderkey", "o_custkey"});
  Plan per_cust =
      ord.Aggregate({"o_custkey"}, {CountCol("o_orderkey", "c_count")});
  return Plan::Scan("customer")
      .Project({"c_custkey"})
      .Join(per_cust, JoinType::kLeft, {"c_custkey"}, {"o_custkey"})
      .Map({{"c_count", Expr::Coalesce(C("c_count"), Value::Int(0))}})
      .Aggregate({"c_count"}, {Count("custdist")})
      .Sort({{"custdist", true}, {"c_count", true}});
}

// -- Q14: promotion effect ---------------------------------------------------------
Plan Q14() {
  return Plan::Scan("lineitem")
      .Filter(Expr::And(Ge(C("l_shipdate"), D(1995, 9, 1)),
                        Lt(C("l_shipdate"), D(1995, 10, 1))))
      .Project({"l_partkey", "l_extendedprice", "l_discount"})
      .Join(Plan::Scan("part").Project({"p_partkey", "p_type"}),
            JoinType::kInner, {"l_partkey"}, {"p_partkey"})
      .Derive({{"rev", Revenue()}})
      .Derive({{"promo_rev", Expr::Case(Expr::Like(C("p_type"), "PROMO%"),
                                        C("rev"), F(0.0))}})
      .Aggregate({}, {Sum("promo_rev", "promo"), Sum("rev", "total")})
      .Map({{"promo_revenue", F(100.0) * C("promo") / C("total")}});
}

// -- Q15: top supplier --------------------------------------------------------------
Plan Q15() {
  Plan revenue = Plan::Scan("lineitem")
                     .Filter(Expr::And(Ge(C("l_shipdate"), D(1996, 1, 1)),
                                       Lt(C("l_shipdate"), D(1996, 4, 1))))
                     .Derive({{"rev", Revenue()}})
                     .Aggregate({"l_suppkey"}, {Sum("rev", "total_revenue")});
  Plan max_rev = revenue.Aggregate({}, {Max("total_revenue", "max_rev")});
  return revenue.CrossJoin(max_rev)
      .Filter(Eq(C("total_revenue"), C("max_rev")))
      .Join(Plan::Scan("supplier").Project(
                {"s_suppkey", "s_name", "s_address", "s_phone"}),
            JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})
      .Map({{"s_suppkey", C("l_suppkey")},
            {"s_name", C("s_name")},
            {"s_address", C("s_address")},
            {"s_phone", C("s_phone")},
            {"total_revenue", C("total_revenue")}})
      .Sort({{"s_suppkey", false}});
}

// -- Q16: parts/supplier relationship -------------------------------------------------
Plan Q16() {
  Plan part_f =
      Plan::Scan("part")
          .Filter(Expr::And(
              Expr::And(Ne(C("p_brand"), S("Brand#45")),
                        Expr::Not(Expr::Like(C("p_type"),
                                             "MEDIUM POLISHED%"))),
              Expr::In(C("p_size"), Ints({49, 14, 23, 45, 19, 3, 36, 9}))))
          .Project({"p_partkey", "p_brand", "p_type", "p_size"});
  Plan bad_supp = Plan::Scan("supplier")
                      .Filter(Expr::Like(C("s_comment"),
                                         "%Customer%Complaints%"))
                      .Project({"s_suppkey"});
  return Plan::Scan("partsupp")
      .Project({"ps_partkey", "ps_suppkey"})
      .Join(bad_supp, JoinType::kAnti, {"ps_suppkey"}, {"s_suppkey"})
      .Join(part_f, JoinType::kInner, {"ps_partkey"}, {"p_partkey"})
      .Aggregate({"p_brand", "p_type", "p_size"},
                 {CountDistinct("ps_suppkey", "supplier_cnt")})
      .Sort({{"supplier_cnt", true},
             {"p_brand", false},
             {"p_type", false},
             {"p_size", false}});
}

// -- Q17: small-quantity-order revenue ---------------------------------------------------
Plan Q17() {
  Plan part_f = Plan::Scan("part")
                    .Filter(Expr::And(Eq(C("p_brand"), S("Brand#23")),
                                      Eq(C("p_container"), S("MED BOX"))))
                    .Project({"p_partkey"});
  Plan li = Plan::Scan("lineitem")
                .Project({"l_orderkey", "l_partkey", "l_quantity",
                          "l_extendedprice"})
                .Join(part_f, JoinType::kSemi, {"l_partkey"}, {"p_partkey"});
  Plan avg_qty = li.Aggregate({"l_partkey"}, {Avg("l_quantity", "avg_qty")})
                     .Map({{"aq_partkey", C("l_partkey")},
                           {"avg_qty", C("avg_qty")}});
  return li.Join(avg_qty, JoinType::kInner, {"l_partkey"}, {"aq_partkey"})
      .Filter(Lt(C("l_quantity"), F(0.2) * C("avg_qty")))
      .Aggregate({}, {Sum("l_extendedprice", "total_price")})
      .Map({{"avg_yearly", C("total_price") / F(7.0)}});
}

// -- Q18: large volume customer (the paper's running example, Fig 6) --------------------
Plan Q18() {
  Plan order_qty = Plan::Scan("lineitem")
                       .Aggregate({"l_orderkey"}, {Sum("l_quantity",
                                                       "sum_qty")})
                       .WithLabel("OQ");
  Plan lg_orders =
      order_qty.Filter(Gt(C("sum_qty"), F(300.0))).WithLabel("LO");
  Plan lg_order_cust =
      lg_orders
          .Join(Plan::Scan("orders").Project(
                    {"o_orderkey", "o_custkey", "o_orderdate",
                     "o_totalprice"}),
                JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
          .WithLabel("OO")
          .Join(Plan::Scan("customer").Project({"c_custkey", "c_name"}),
                JoinType::kInner, {"o_custkey"}, {"c_custkey"})
          .WithLabel("OC");
  return lg_order_cust
      .Aggregate({"c_name", "o_custkey", "l_orderkey", "o_orderdate",
                  "o_totalprice"},
                 {Sum("sum_qty", "total_qty")})
      .WithLabel("C")
      .Sort({{"o_totalprice", true}, {"o_orderdate", false}}, 100)
      .WithLabel("TC");
}

// -- Q19: discounted revenue --------------------------------------------------------------
Plan Q19() {
  auto bracket = [](const char* brand,
                    std::initializer_list<const char*> containers,
                    double qty_lo, double qty_hi, int64_t size_hi) {
    return Expr::And(
        Expr::And(Eq(C("p_brand"), S(brand)),
                  Expr::In(C("p_container"), Strs(containers))),
        Expr::And(Between(C("l_quantity"), F(qty_lo), F(qty_hi)),
                  Between(C("p_size"), I(1), I(size_hi))));
  };
  return Plan::Scan("lineitem")
      .Filter(Expr::And(
          Expr::In(C("l_shipmode"), Strs({"AIR", "AIR REG"})),
          Eq(C("l_shipinstruct"), S("DELIVER IN PERSON"))))
      .Project({"l_partkey", "l_quantity", "l_extendedprice", "l_discount"})
      .Join(Plan::Scan("part").Project(
                {"p_partkey", "p_brand", "p_container", "p_size"}),
            JoinType::kInner, {"l_partkey"}, {"p_partkey"})
      .Filter(Expr::Or(
          bracket("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1,
                  11, 5),
          Expr::Or(bracket("Brand#23",
                           {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10,
                           20, 10),
                   bracket("Brand#34",
                           {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30,
                           15))))
      .Derive({{"rev", Revenue()}})
      .Aggregate({}, {Sum("rev", "revenue")});
}

// -- Q20: potential part promotion -----------------------------------------------------------
Plan Q20() {
  Plan part_f = Plan::Scan("part")
                    .Filter(Expr::Like(C("p_name"), "forest%"))
                    .Project({"p_partkey"});
  Plan qty = Plan::Scan("lineitem")
                 .Filter(Expr::And(Ge(C("l_shipdate"), D(1994, 1, 1)),
                                   Lt(C("l_shipdate"), D(1995, 1, 1))))
                 .Aggregate({"l_partkey", "l_suppkey"},
                            {Sum("l_quantity", "sum_qty")})
                 .Map({{"q_partkey", C("l_partkey")},
                       {"q_suppkey", C("l_suppkey")},
                       {"half_qty", F(0.5) * C("sum_qty")}});
  Plan avail =
      Plan::Scan("partsupp")
          .Project({"ps_partkey", "ps_suppkey", "ps_availqty"})
          .Join(part_f, JoinType::kSemi, {"ps_partkey"}, {"p_partkey"})
          .Join(qty, JoinType::kInner, {"ps_partkey", "ps_suppkey"},
                {"q_partkey", "q_suppkey"})
          .Filter(Gt(C("ps_availqty"), C("half_qty")))
          .Project({"ps_suppkey"});
  return Plan::Scan("supplier")
      .Join(Plan::Scan("nation").Filter(Eq(C("n_name"), S("CANADA"))),
            JoinType::kSemi, {"s_nationkey"}, {"n_nationkey"})
      .Join(avail, JoinType::kSemi, {"s_suppkey"}, {"ps_suppkey"})
      .Map({{"s_name", C("s_name")}, {"s_address", C("s_address")}})
      .Sort({{"s_name", false}});
}

// -- Q21: suppliers who kept orders waiting ---------------------------------------------------
// The correlated EXISTS / NOT EXISTS pair is rewritten through per-order
// distinct supplier counts: EXISTS l2 (other supplier on the order) ⇔
// count_distinct(all suppliers) > 1; NOT EXISTS l3 (other *late* supplier)
// ⇔ count_distinct(late suppliers) == 1.
Plan Q21() {
  Plan supp_sa =
      Plan::Scan("supplier")
          .Join(Plan::Scan("nation").Filter(Eq(C("n_name"),
                                               S("SAUDI ARABIA"))),
                JoinType::kSemi, {"s_nationkey"}, {"n_nationkey"})
          .Project({"s_suppkey", "s_name"});
  Plan nsupp_all =
      Plan::Scan("lineitem")
          .Aggregate({"l_orderkey"}, {CountDistinct("l_suppkey", "nsupp")})
          .Map({{"a_orderkey", C("l_orderkey")}, {"nsupp", C("nsupp")}});
  Plan late = Plan::Scan("lineitem")
                  .Filter(Gt(C("l_receiptdate"), C("l_commitdate")))
                  .Project({"l_orderkey", "l_suppkey"});
  Plan nsupp_late =
      late.Aggregate({"l_orderkey"}, {CountDistinct("l_suppkey", "nlate")})
          .Map({{"b_orderkey", C("l_orderkey")}, {"nlate", C("nlate")}});
  Plan ord_f = Plan::Scan("orders")
                   .Filter(Eq(C("o_orderstatus"), S("F")))
                   .Project({"o_orderkey"});
  return late
      .Join(ord_f, JoinType::kSemi, {"l_orderkey"}, {"o_orderkey"})
      .Join(nsupp_all, JoinType::kInner, {"l_orderkey"}, {"a_orderkey"})
      .Join(nsupp_late, JoinType::kInner, {"l_orderkey"}, {"b_orderkey"})
      .Filter(Expr::And(Gt(C("nsupp"), I(1)), Eq(C("nlate"), I(1))))
      .Join(supp_sa, JoinType::kInner, {"l_suppkey"}, {"s_suppkey"})
      .Aggregate({"s_name"}, {Count("numwait")})
      .Sort({{"numwait", true}, {"s_name", false}}, 100);
}

// -- Q22: global sales opportunity --------------------------------------------------------------
Plan Q22() {
  auto codes = Strs({"13", "31", "23", "29", "30", "18", "17"});
  Plan cust = Plan::Scan("customer")
                  .Derive({{"cntrycode", Expr::Substr(C("c_phone"), 1, 2)}})
                  .Filter(Expr::In(C("cntrycode"), codes))
                  .Project({"c_custkey", "c_acctbal", "cntrycode"});
  Plan avg_bal = cust.Filter(Gt(C("c_acctbal"), F(0.0)))
                     .Aggregate({}, {Avg("c_acctbal", "avg_bal")});
  return cust.CrossJoin(avg_bal)
      .Filter(Gt(C("c_acctbal"), C("avg_bal")))
      .Join(Plan::Scan("orders").Project({"o_custkey"}), JoinType::kAnti,
            {"c_custkey"}, {"o_custkey"})
      .Aggregate({"cntrycode"},
                 {Count("numcust"), Sum("c_acctbal", "totacctbal")})
      .Sort({{"cntrycode", false}});
}

}  // namespace

Plan Query(int number) {
  switch (number) {
    case 1: return Q1();
    case 2: return Q2();
    case 3: return Q3();
    case 4: return Q4();
    case 5: return Q5();
    case 6: return Q6();
    case 7: return Q7();
    case 8: return Q8();
    case 9: return Q9();
    case 10: return Q10();
    case 11: return Q11();
    case 12: return Q12();
    case 13: return Q13();
    case 14: return Q14();
    case 15: return Q15();
    case 16: return Q16();
    case 17: return Q17();
    case 18: return Q18();
    case 19: return Q19();
    case 20: return Q20();
    case 21: return Q21();
    case 22: return Q22();
    default:
      throw Error("TPC-H query number must be 1..22");
  }
}

std::vector<int> AllQueries() {
  std::vector<int> out;
  for (int q = 1; q <= 22; ++q) out.push_back(q);
  return out;
}

Plan ModifiedQuery(int number) {
  switch (number) {
    case 1:
      // Single-table Q1 (ProgressiveDB comparison): the Q1 aggregation
      // without the final sort.
      return Plan::Scan("lineitem")
          .Filter(Le(C("l_shipdate"), D(1998, 9, 2)))
          .Derive({{"disc_price", Revenue()}})
          .Aggregate({"l_returnflag", "l_linestatus"},
                     {Sum("l_quantity", "sum_qty"),
                      Sum("disc_price", "sum_disc_price"),
                      Avg("l_discount", "avg_disc"), Count("count_order")});
    case 6:
      return Q6();
    case 3:
      // WanderJoin-style Q3: single SUM over the 3-way join, no group-by.
      return Plan::Scan("lineitem")
          .Filter(Gt(C("l_shipdate"), D(1995, 3, 15)))
          .Join(Plan::Scan("orders")
                    .Filter(Lt(C("o_orderdate"), D(1995, 3, 15)))
                    .Join(Plan::Scan("customer")
                              .Filter(Eq(C("c_mktsegment"), S("BUILDING")))
                              .Project({"c_custkey"}),
                          JoinType::kSemi, {"o_custkey"}, {"c_custkey"})
                    .Project({"o_orderkey"}),
                JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
          .Derive({{"rev", Revenue()}})
          .Aggregate({}, {Sum("rev", "revenue")});
    case 7: {
      auto nation_pair = Strs({"FRANCE", "GERMANY"});
      Plan supp = Plan::Scan("supplier")
                      .Join(Plan::Scan("nation").Filter(
                                Expr::In(C("n_name"), nation_pair)),
                            JoinType::kSemi, {"s_nationkey"},
                            {"n_nationkey"})
                      .Project({"s_suppkey"});
      return Plan::Scan("lineitem")
          .Filter(Between(C("l_shipdate"), D(1995, 1, 1), D(1996, 12, 31)))
          .Join(supp, JoinType::kSemi, {"l_suppkey"}, {"s_suppkey"})
          .Derive({{"volume", Revenue()}})
          .Aggregate({}, {Sum("volume", "revenue")});
    }
    case 10:
      return Plan::Scan("lineitem")
          .Filter(Eq(C("l_returnflag"), S("R")))
          .Join(Plan::Scan("orders")
                    .Filter(Expr::And(Ge(C("o_orderdate"), D(1993, 10, 1)),
                                      Lt(C("o_orderdate"), D(1994, 1, 1))))
                    .Project({"o_orderkey"}),
                JoinType::kInner, {"l_orderkey"}, {"o_orderkey"})
          .Derive({{"rev", Revenue()}})
          .Aggregate({}, {Sum("rev", "revenue")});
    default:
      throw Error("modified query must be one of 1, 3, 6, 7, 10");
  }
}

}  // namespace tpch
}  // namespace wake
