#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace wake {
namespace tpch {

namespace {

// --- fixed vocabulary (subset of the spec's lists; every value a query
// probes for is present) ---

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};

const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

// "AIR REG" instead of the spec's "REG AIR" so Q19's literal IN-list
// ('AIR', 'AIR REG') matches generated data; self-consistent substitution.
const char* kShipModes[] = {"AIR REG", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};

const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                "TAKE BACK RETURN"};

const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM",
                                "LARGE",    "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* kContainerSyllable1[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR",
                                     "PKG",  "PACK", "CAN", "DRUM"};

// Part-name color words (Q9 greps '%green%', Q20 'forest%').
const char* kColors[] = {
    "almond",  "antique",   "aquamarine", "azure",   "beige",    "bisque",
    "black",   "blanched",  "blue",       "blush",   "brown",    "burlywood",
    "chartreuse", "chocolate", "coral",    "cornflower", "cream", "cyan",
    "dark",    "deep",      "dim",        "dodger",  "drab",     "firebrick",
    "forest",  "frosted",   "gainsboro",  "ghost",   "goldenrod","green",
    "grey",    "honeydew",  "hot",        "indian",  "ivory",    "khaki",
    "lace",    "lavender",  "lawn",       "lemon",   "light",    "lime",
    "linen",   "magenta",   "maroon",     "medium",  "metallic", "midnight",
    "mint",    "misty",     "moccasin",   "navajo",  "navy",     "olive",
    "orange",  "orchid",    "pale",       "papaya",  "peach",    "peru",
    "pink",    "plum",      "powder",     "puff",    "purple",   "red",
    "rose",    "rosy",      "royal",      "saddle",  "salmon",   "sandy",
    "seashell","sienna",    "sky",        "slate",   "smoke",    "snow",
    "spring",  "steel",     "tan",        "thistle", "tomato",   "turquoise",
    "violet",  "wheat",     "white",      "yellow"};

// Generic comment filler words (no '|' so the .tbl writer stays unescaped).
const char* kWords[] = {
    "carefully", "quickly",  "furiously", "slowly",   "blithely", "ideas",
    "requests",  "deposits", "accounts",  "packages", "theodolites",
    "instructions", "pinto",  "beans",    "foxes",    "dependencies",
    "platelets", "asymptotes", "somas",   "sauternes", "warhorses",
    "sleep",     "wake",     "nag",       "haggle",   "cajole",   "detect",
    "integrate", "engage",   "bold",      "final",    "express",  "regular",
    "even",      "special",  "silent",    "unusual",  "ironic",   "pending",
    "sly",       "busy",     "close",     "dogged",   "daring",   "brave"};

template <size_t N>
const char* Pick(Rng& rng, const char* (&pool)[N]) {
  return pool[rng.Next() % N];
}

std::string Comment(Rng& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.UniformInt(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += Pick(rng, kWords);
  }
  return out;
}

std::string Phone(Rng& rng, int64_t nationkey) {
  // Country code 10 + nationkey, so SUBSTRING(phone, 1, 2) gives the codes
  // Q22 filters on ('13','31','23','29','30','18','17').
  return StrFormat("%02d-%03d-%03d-%04d", static_cast<int>(10 + nationkey),
                   static_cast<int>(rng.UniformInt(100, 999)),
                   static_cast<int>(rng.UniformInt(100, 999)),
                   static_cast<int>(rng.UniformInt(1000, 9999)));
}

double Money(Rng& rng, int64_t cents_lo, int64_t cents_hi) {
  return static_cast<double>(rng.UniformInt(cents_lo, cents_hi)) / 100.0;
}

int64_t kStartDate() { return DateToDays(1992, 1, 1); }
int64_t kEndDate() { return DateToDays(1998, 8, 2); }

size_t ScaleCount(double sf, double base, size_t minimum = 1) {
  return std::max<size_t>(minimum,
                          static_cast<size_t>(std::llround(sf * base)));
}

// Spec ps_suppkey formula: spreads a part's four suppliers over the supplier
// space so partsupp joins are uniform.
int64_t PartSupplier(int64_t partkey, int64_t i, int64_t num_suppliers) {
  int64_t s = num_suppliers;
  return (partkey + i * (s / 4 + (partkey - 1) / s)) % s + 1;
}

Schema MakeSchema(std::vector<Field> fields, std::vector<std::string> pk,
                  std::vector<std::string> cluster) {
  Schema schema(std::move(fields));
  schema.set_primary_key(std::move(pk));
  schema.set_clustering_key(std::move(cluster));
  return schema;
}

// Frame whose string columns are dict-encoded: dbgen is a source, so the
// engine never sees per-row strings from generated tables (AppendString
// interns into each column's private dict).
DataFrame NewFrame(const Schema& schema) {
  DataFrame df(schema);
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (schema.field(c).type == ValueType::kString) {
      *df.mutable_column(c) = Column::NewDict();
    }
  }
  return df;
}

PartitionedTable BuildRegion(const DbgenConfig& config) {
  Rng rng(config.seed ^ 0x7265ULL);
  Schema schema = MakeSchema({{"r_regionkey", ValueType::kInt64},
                              {"r_name", ValueType::kString},
                              {"r_comment", ValueType::kString}},
                             {"r_regionkey"}, {"r_regionkey"});
  DataFrame df = NewFrame(schema);
  for (int64_t i = 0; i < 5; ++i) {
    df.mutable_column(0)->AppendInt(i);
    df.mutable_column(1)->AppendString(kRegions[i]);
    df.mutable_column(2)->AppendString(Comment(rng, 3, 10));
  }
  return PartitionedTable::FromDataFrame("region", df, 1);
}

PartitionedTable BuildNation(const DbgenConfig& config) {
  Rng rng(config.seed ^ 0x6e61ULL);
  Schema schema = MakeSchema({{"n_nationkey", ValueType::kInt64},
                              {"n_name", ValueType::kString},
                              {"n_regionkey", ValueType::kInt64},
                              {"n_comment", ValueType::kString}},
                             {"n_nationkey"}, {"n_nationkey"});
  DataFrame df = NewFrame(schema);
  for (int64_t i = 0; i < 25; ++i) {
    df.mutable_column(0)->AppendInt(i);
    df.mutable_column(1)->AppendString(kNations[i].name);
    df.mutable_column(2)->AppendInt(kNations[i].region);
    df.mutable_column(3)->AppendString(Comment(rng, 3, 10));
  }
  return PartitionedTable::FromDataFrame("nation", df, 1);
}

PartitionedTable BuildSupplier(const DbgenConfig& config) {
  Rng rng(config.seed ^ 0x7375ULL);
  size_t n = ScaleCount(config.scale_factor, 10000.0, 20);
  Schema schema = MakeSchema({{"s_suppkey", ValueType::kInt64},
                              {"s_name", ValueType::kString},
                              {"s_address", ValueType::kString},
                              {"s_nationkey", ValueType::kInt64},
                              {"s_phone", ValueType::kString},
                              {"s_acctbal", ValueType::kFloat64},
                              {"s_comment", ValueType::kString}},
                             {"s_suppkey"}, {"s_suppkey"});
  DataFrame df = NewFrame(schema);
  for (size_t i = 1; i <= n; ++i) {
    int64_t nationkey = rng.UniformInt(0, 24);
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i));
    df.mutable_column(1)->AppendString(StrFormat("Supplier#%09zu", i));
    df.mutable_column(2)->AppendString(Comment(rng, 2, 4));
    df.mutable_column(3)->AppendInt(nationkey);
    df.mutable_column(4)->AppendString(Phone(rng, nationkey));
    df.mutable_column(5)->AppendDouble(Money(rng, -99999, 999999));
    // Per spec, ~5 of 10000 suppliers carry the Customer...Complaints text
    // (Q16 anti-join); use 1/1000 so small SFs still have matches.
    std::string comment = Comment(rng, 5, 12);
    if (rng.UniformInt(0, 999) == 0) {
      comment += " Customer detected Complaints";
    }
    df.mutable_column(6)->AppendString(comment);
  }
  return PartitionedTable::FromDataFrame(
      "supplier", df, std::max<size_t>(1, config.partitions / 2));
}

PartitionedTable BuildCustomer(const DbgenConfig& config) {
  Rng rng(config.seed ^ 0x6375ULL);
  size_t n = ScaleCount(config.scale_factor, 150000.0, 150);
  Schema schema = MakeSchema({{"c_custkey", ValueType::kInt64},
                              {"c_name", ValueType::kString},
                              {"c_address", ValueType::kString},
                              {"c_nationkey", ValueType::kInt64},
                              {"c_phone", ValueType::kString},
                              {"c_acctbal", ValueType::kFloat64},
                              {"c_mktsegment", ValueType::kString},
                              {"c_comment", ValueType::kString}},
                             {"c_custkey"}, {"c_custkey"});
  DataFrame df = NewFrame(schema);
  for (size_t i = 1; i <= n; ++i) {
    int64_t nationkey = rng.UniformInt(0, 24);
    df.mutable_column(0)->AppendInt(static_cast<int64_t>(i));
    df.mutable_column(1)->AppendString(StrFormat("Customer#%09zu", i));
    df.mutable_column(2)->AppendString(Comment(rng, 2, 4));
    df.mutable_column(3)->AppendInt(nationkey);
    df.mutable_column(4)->AppendString(Phone(rng, nationkey));
    df.mutable_column(5)->AppendDouble(Money(rng, -99999, 999999));
    df.mutable_column(6)->AppendString(Pick(rng, kSegments));
    df.mutable_column(7)->AppendString(Comment(rng, 4, 10));
  }
  return PartitionedTable::FromDataFrame(
      "customer", df, std::max<size_t>(1, config.partitions / 2));
}

PartitionedTable BuildPart(const DbgenConfig& config) {
  Rng rng(config.seed ^ 0x7061ULL);
  size_t n = ScaleCount(config.scale_factor, 200000.0, 200);
  Schema schema = MakeSchema({{"p_partkey", ValueType::kInt64},
                              {"p_name", ValueType::kString},
                              {"p_mfgr", ValueType::kString},
                              {"p_brand", ValueType::kString},
                              {"p_type", ValueType::kString},
                              {"p_size", ValueType::kInt64},
                              {"p_container", ValueType::kString},
                              {"p_retailprice", ValueType::kFloat64},
                              {"p_comment", ValueType::kString}},
                             {"p_partkey"}, {"p_partkey"});
  DataFrame df = NewFrame(schema);
  for (size_t i = 1; i <= n; ++i) {
    int64_t partkey = static_cast<int64_t>(i);
    int mfgr = static_cast<int>(rng.UniformInt(1, 5));
    int brand = mfgr * 10 + static_cast<int>(rng.UniformInt(1, 5));
    std::string name;
    for (int w = 0; w < 5; ++w) {
      if (w > 0) name += ' ';
      name += Pick(rng, kColors);
    }
    std::string type = std::string(Pick(rng, kTypeSyllable1)) + " " +
                       Pick(rng, kTypeSyllable2) + " " +
                       Pick(rng, kTypeSyllable3);
    std::string container = std::string(Pick(rng, kContainerSyllable1)) +
                            " " + Pick(rng, kContainerSyllable2);
    // Spec retail price formula (cents).
    double retail =
        (90000.0 + ((partkey / 10) % 20001) + 100.0 * (partkey % 1000)) /
        100.0;
    df.mutable_column(0)->AppendInt(partkey);
    df.mutable_column(1)->AppendString(name);
    df.mutable_column(2)->AppendString(StrFormat("Manufacturer#%d", mfgr));
    df.mutable_column(3)->AppendString(StrFormat("Brand#%d", brand));
    df.mutable_column(4)->AppendString(type);
    df.mutable_column(5)->AppendInt(rng.UniformInt(1, 50));
    df.mutable_column(6)->AppendString(container);
    df.mutable_column(7)->AppendDouble(retail);
    df.mutable_column(8)->AppendString(Comment(rng, 2, 6));
  }
  return PartitionedTable::FromDataFrame(
      "part", df, std::max<size_t>(1, config.partitions / 2));
}

PartitionedTable BuildPartsupp(const DbgenConfig& config,
                               size_t num_parts, size_t num_suppliers) {
  Rng rng(config.seed ^ 0x7073ULL);
  Schema schema = MakeSchema({{"ps_partkey", ValueType::kInt64},
                              {"ps_suppkey", ValueType::kInt64},
                              {"ps_availqty", ValueType::kInt64},
                              {"ps_supplycost", ValueType::kFloat64},
                              {"ps_comment", ValueType::kString}},
                             {"ps_partkey", "ps_suppkey"}, {"ps_partkey"});
  DataFrame df = NewFrame(schema);
  for (size_t p = 1; p <= num_parts; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      df.mutable_column(0)->AppendInt(static_cast<int64_t>(p));
      df.mutable_column(1)->AppendInt(PartSupplier(
          static_cast<int64_t>(p), i, static_cast<int64_t>(num_suppliers)));
      df.mutable_column(2)->AppendInt(rng.UniformInt(1, 9999));
      df.mutable_column(3)->AppendDouble(Money(rng, 100, 100000));
      df.mutable_column(4)->AppendString(Comment(rng, 2, 6));
    }
  }
  return PartitionedTable::FromDataFrame(
      "partsupp", df, std::max<size_t>(1, config.partitions / 2));
}

struct OrdersAndLineitem {
  PartitionedTable orders;
  PartitionedTable lineitem;
};

OrdersAndLineitem BuildOrdersLineitem(const DbgenConfig& config,
                                      const DataFrame& part,
                                      size_t num_customers,
                                      size_t num_suppliers) {
  Rng rng(config.seed ^ 0x6f72ULL);
  size_t num_orders = ScaleCount(config.scale_factor, 1500000.0, 1500);
  size_t num_parts = part.num_rows();
  const auto& retail = part.ColumnByName("p_retailprice").doubles();

  Schema orders_schema = MakeSchema(
      {{"o_orderkey", ValueType::kInt64},
       {"o_custkey", ValueType::kInt64},
       {"o_orderstatus", ValueType::kString},
       {"o_totalprice", ValueType::kFloat64},
       {"o_orderdate", ValueType::kDate},
       {"o_orderpriority", ValueType::kString},
       {"o_clerk", ValueType::kString},
       {"o_shippriority", ValueType::kInt64},
       {"o_comment", ValueType::kString}},
      {"o_orderkey"}, {"o_orderkey"});
  Schema lineitem_schema = MakeSchema(
      {{"l_orderkey", ValueType::kInt64},
       {"l_partkey", ValueType::kInt64},
       {"l_suppkey", ValueType::kInt64},
       {"l_linenumber", ValueType::kInt64},
       {"l_quantity", ValueType::kFloat64},
       {"l_extendedprice", ValueType::kFloat64},
       {"l_discount", ValueType::kFloat64},
       {"l_tax", ValueType::kFloat64},
       {"l_returnflag", ValueType::kString},
       {"l_linestatus", ValueType::kString},
       {"l_shipdate", ValueType::kDate},
       {"l_commitdate", ValueType::kDate},
       {"l_receiptdate", ValueType::kDate},
       {"l_shipinstruct", ValueType::kString},
       {"l_shipmode", ValueType::kString},
       {"l_comment", ValueType::kString}},
      {"l_orderkey", "l_linenumber"}, {"l_orderkey"});

  DataFrame orders = NewFrame(orders_schema);
  DataFrame lineitem = NewFrame(lineitem_schema);
  size_t num_clerks = std::max<size_t>(
      1, static_cast<size_t>(config.scale_factor * 1000));
  int64_t current = CurrentDate();

  for (size_t ok = 1; ok <= num_orders; ++ok) {
    // Spec: a third of customers have no orders (custkey % 3 == 0 skipped).
    int64_t custkey;
    do {
      custkey = rng.UniformInt(1, static_cast<int64_t>(num_customers));
    } while (custkey % 3 == 0 && num_customers >= 3);

    int64_t orderdate =
        rng.UniformInt(kStartDate(), kEndDate() - 151);
    int lines = static_cast<int>(rng.UniformInt(1, 7));
    double total = 0.0;
    int shipped = 0;
    for (int ln = 1; ln <= lines; ++ln) {
      int64_t partkey = rng.UniformInt(1, static_cast<int64_t>(num_parts));
      int64_t suppkey = PartSupplier(partkey, rng.UniformInt(0, 3),
                                     static_cast<int64_t>(num_suppliers));
      double quantity = static_cast<double>(rng.UniformInt(1, 50));
      double extprice = quantity * retail[static_cast<size_t>(partkey - 1)];
      double discount = static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.UniformInt(0, 8)) / 100.0;
      int64_t shipdate = orderdate + rng.UniformInt(1, 121);
      int64_t commitdate = orderdate + rng.UniformInt(30, 90);
      int64_t receiptdate = shipdate + rng.UniformInt(1, 30);
      std::string returnflag;
      if (receiptdate <= current) {
        returnflag = rng.UniformInt(0, 1) ? "R" : "A";
      } else {
        returnflag = "N";
      }
      bool is_shipped = shipdate <= current;
      shipped += is_shipped ? 1 : 0;

      lineitem.mutable_column(0)->AppendInt(static_cast<int64_t>(ok));
      lineitem.mutable_column(1)->AppendInt(partkey);
      lineitem.mutable_column(2)->AppendInt(suppkey);
      lineitem.mutable_column(3)->AppendInt(ln);
      lineitem.mutable_column(4)->AppendDouble(quantity);
      lineitem.mutable_column(5)->AppendDouble(extprice);
      lineitem.mutable_column(6)->AppendDouble(discount);
      lineitem.mutable_column(7)->AppendDouble(tax);
      lineitem.mutable_column(8)->AppendString(returnflag);
      lineitem.mutable_column(9)->AppendString(is_shipped ? "F" : "O");
      lineitem.mutable_column(10)->AppendInt(shipdate);
      lineitem.mutable_column(11)->AppendInt(commitdate);
      lineitem.mutable_column(12)->AppendInt(receiptdate);
      lineitem.mutable_column(13)->AppendString(Pick(rng, kShipInstructs));
      lineitem.mutable_column(14)->AppendString(Pick(rng, kShipModes));
      lineitem.mutable_column(15)->AppendString(Comment(rng, 2, 6));
      total += extprice * (1.0 - discount) * (1.0 + tax);
    }
    std::string status = shipped == lines ? "F" : (shipped == 0 ? "O" : "P");
    // ~3% of order comments carry the 'special ... requests' pattern Q13
    // filters out.
    std::string comment = Comment(rng, 4, 12);
    if (rng.UniformInt(0, 32) == 0) {
      comment += " special handling requests";
    }
    orders.mutable_column(0)->AppendInt(static_cast<int64_t>(ok));
    orders.mutable_column(1)->AppendInt(custkey);
    orders.mutable_column(2)->AppendString(status);
    orders.mutable_column(3)->AppendDouble(total);
    orders.mutable_column(4)->AppendInt(orderdate);
    orders.mutable_column(5)->AppendString(Pick(rng, kPriorities));
    orders.mutable_column(6)->AppendString(StrFormat(
        "Clerk#%09d", static_cast<int>(rng.UniformInt(
                          1, static_cast<int64_t>(num_clerks)))));
    orders.mutable_column(7)->AppendInt(0);
    orders.mutable_column(8)->AppendString(comment);
  }

  OrdersAndLineitem out;
  out.orders =
      PartitionedTable::FromDataFrame("orders", orders, config.partitions);
  out.lineitem = PartitionedTable::FromDataFrame("lineitem", lineitem,
                                                 config.partitions);
  return out;
}

}  // namespace

int64_t CurrentDate() { return DateToDays(1995, 6, 17); }

Catalog Generate(const DbgenConfig& config) {
  CheckArg(config.scale_factor > 0, "scale factor must be positive");
  CheckArg(config.partitions > 0, "partitions must be positive");
  Catalog catalog;
  catalog.Add(std::make_shared<PartitionedTable>(BuildRegion(config)));
  catalog.Add(std::make_shared<PartitionedTable>(BuildNation(config)));
  auto supplier = BuildSupplier(config);
  auto customer = BuildCustomer(config);
  auto part = BuildPart(config);
  auto partsupp = BuildPartsupp(config, part.total_rows(),
                                supplier.total_rows());
  auto ol = BuildOrdersLineitem(config, part.Materialize(),
                                customer.total_rows(), supplier.total_rows());
  catalog.Add(std::make_shared<PartitionedTable>(std::move(supplier)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(customer)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(part)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(partsupp)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(ol.orders)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(ol.lineitem)));
  return catalog;
}

PartitionedTable GenerateTable(const DbgenConfig& config,
                               const std::string& name) {
  Catalog catalog = Generate(config);
  return catalog.Get(name);
}

size_t RowsAtScale(const std::string& table, double sf) {
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return ScaleCount(sf, 10000.0, 20);
  if (table == "customer") return ScaleCount(sf, 150000.0, 150);
  if (table == "part") return ScaleCount(sf, 200000.0, 200);
  if (table == "partsupp") return 4 * ScaleCount(sf, 200000.0, 200);
  if (table == "orders") return ScaleCount(sf, 1500000.0, 1500);
  if (table == "lineitem") return 4 * ScaleCount(sf, 1500000.0, 1500);
  throw Error("unknown table " + table);
}

}  // namespace tpch
}  // namespace wake
