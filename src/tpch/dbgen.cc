#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace wake {
namespace tpch {

namespace {

// --- fixed vocabulary (subset of the spec's lists; every value a query
// probes for is present) ---

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};

const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

// "AIR REG" instead of the spec's "REG AIR" so Q19's literal IN-list
// ('AIR', 'AIR REG') matches generated data; self-consistent substitution.
const char* kShipModes[] = {"AIR REG", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};

const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                "TAKE BACK RETURN"};

const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM",
                                "LARGE",    "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* kContainerSyllable1[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR",
                                     "PKG",  "PACK", "CAN", "DRUM"};

// Part-name color words (Q9 greps '%green%', Q20 'forest%').
const char* kColors[] = {
    "almond",  "antique",   "aquamarine", "azure",   "beige",    "bisque",
    "black",   "blanched",  "blue",       "blush",   "brown",    "burlywood",
    "chartreuse", "chocolate", "coral",    "cornflower", "cream", "cyan",
    "dark",    "deep",      "dim",        "dodger",  "drab",     "firebrick",
    "forest",  "frosted",   "gainsboro",  "ghost",   "goldenrod","green",
    "grey",    "honeydew",  "hot",        "indian",  "ivory",    "khaki",
    "lace",    "lavender",  "lawn",       "lemon",   "light",    "lime",
    "linen",   "magenta",   "maroon",     "medium",  "metallic", "midnight",
    "mint",    "misty",     "moccasin",   "navajo",  "navy",     "olive",
    "orange",  "orchid",    "pale",       "papaya",  "peach",    "peru",
    "pink",    "plum",      "powder",     "puff",    "purple",   "red",
    "rose",    "rosy",      "royal",      "saddle",  "salmon",   "sandy",
    "seashell","sienna",    "sky",        "slate",   "smoke",    "snow",
    "spring",  "steel",     "tan",        "thistle", "tomato",   "turquoise",
    "violet",  "wheat",     "white",      "yellow"};

// Generic comment filler words (no '|' so the .tbl writer stays unescaped).
const char* kWords[] = {
    "carefully", "quickly",  "furiously", "slowly",   "blithely", "ideas",
    "requests",  "deposits", "accounts",  "packages", "theodolites",
    "instructions", "pinto",  "beans",    "foxes",    "dependencies",
    "platelets", "asymptotes", "somas",   "sauternes", "warhorses",
    "sleep",     "wake",     "nag",       "haggle",   "cajole",   "detect",
    "integrate", "engage",   "bold",      "final",    "express",  "regular",
    "even",      "special",  "silent",    "unusual",  "ironic",   "pending",
    "sly",       "busy",     "close",     "dogged",   "daring",   "brave"};

template <size_t N>
const char* Pick(Rng& rng, const char* (&pool)[N]) {
  return pool[rng.Next() % N];
}

std::string Comment(Rng& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.UniformInt(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += Pick(rng, kWords);
  }
  return out;
}

// Consumes exactly the draws of Comment without building the string, so
// projected generation keeps the random stream (and every other column)
// bit-identical to a full generation.
void SkipComment(Rng& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.UniformInt(min_words, max_words));
  for (int i = 0; i < n; ++i) rng.Next();
}

std::string Phone(Rng& rng, int64_t nationkey) {
  // Country code 10 + nationkey, so SUBSTRING(phone, 1, 2) gives the codes
  // Q22 filters on ('13','31','23','29','30','18','17').
  return StrFormat("%02d-%03d-%03d-%04d", static_cast<int>(10 + nationkey),
                   static_cast<int>(rng.UniformInt(100, 999)),
                   static_cast<int>(rng.UniformInt(100, 999)),
                   static_cast<int>(rng.UniformInt(1000, 9999)));
}

double Money(Rng& rng, int64_t cents_lo, int64_t cents_hi) {
  return static_cast<double>(rng.UniformInt(cents_lo, cents_hi)) / 100.0;
}

int64_t kStartDate() { return DateToDays(1992, 1, 1); }
int64_t kEndDate() { return DateToDays(1998, 8, 2); }

size_t ScaleCount(double sf, double base, size_t minimum = 1) {
  return std::max<size_t>(minimum,
                          static_cast<size_t>(std::llround(sf * base)));
}

// Spec ps_suppkey formula: spreads a part's four suppliers over the supplier
// space so partsupp joins are uniform.
int64_t PartSupplier(int64_t partkey, int64_t i, int64_t num_suppliers) {
  int64_t s = num_suppliers;
  return (partkey + i * (s / 4 + (partkey - 1) / s)) % s + 1;
}

Schema MakeSchema(std::vector<Field> fields, std::vector<std::string> pk,
                  std::vector<std::string> cluster) {
  Schema schema(std::move(fields));
  schema.set_primary_key(std::move(pk));
  schema.set_clustering_key(std::move(cluster));
  return schema;
}

// Frame whose string columns are dict-encoded: dbgen is a source, so the
// engine never sees per-row strings from generated tables (AppendString
// interns into each column's private dict).
DataFrame NewFrame(const Schema& schema) {
  DataFrame df(schema);
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (schema.field(c).type == ValueType::kString) {
      *df.mutable_column(c) = Column::NewDict();
    }
  }
  return df;
}

// Projected generation: maps full-schema field indices to output columns.
// `columns == nullptr` keeps everything; a pointer to an empty list keeps
// nothing (used for the discarded half of the orders/lineitem pair). The
// random draws of skipped columns are still consumed by the builders, so
// kept columns are bit-identical to a full generation.
class Projection {
 public:
  Projection(const Schema& full, const std::vector<std::string>* columns)
      : schema_(columns == nullptr ? full : full.Select(*columns)),
        frame_(NewFrame(schema_)),
        slot_(full.ProjectionSlots(schema_)) {}

  bool want(size_t field) const { return slot_[field] != Schema::npos; }
  Column* col(size_t field) { return frame_.mutable_column(slot_[field]); }
  DataFrame& frame() { return frame_; }

 private:
  Schema schema_;
  DataFrame frame_;
  std::vector<size_t> slot_;
};

PartitionedTable BuildRegion(const DbgenConfig& config,
                             const std::vector<std::string>* columns =
                                 nullptr) {
  Rng rng(config.seed ^ 0x7265ULL);
  Schema schema = MakeSchema({{"r_regionkey", ValueType::kInt64},
                              {"r_name", ValueType::kString},
                              {"r_comment", ValueType::kString}},
                             {"r_regionkey"}, {"r_regionkey"});
  Projection p(schema, columns);
  for (int64_t i = 0; i < 5; ++i) {
    if (p.want(0)) p.col(0)->AppendInt(i);
    if (p.want(1)) p.col(1)->AppendString(kRegions[i]);
    if (p.want(2)) {
      p.col(2)->AppendString(Comment(rng, 3, 10));
    } else {
      SkipComment(rng, 3, 10);
    }
  }
  return PartitionedTable::FromDataFrame("region", p.frame(), 1);
}

PartitionedTable BuildNation(const DbgenConfig& config,
                             const std::vector<std::string>* columns =
                                 nullptr) {
  Rng rng(config.seed ^ 0x6e61ULL);
  Schema schema = MakeSchema({{"n_nationkey", ValueType::kInt64},
                              {"n_name", ValueType::kString},
                              {"n_regionkey", ValueType::kInt64},
                              {"n_comment", ValueType::kString}},
                             {"n_nationkey"}, {"n_nationkey"});
  Projection p(schema, columns);
  for (int64_t i = 0; i < 25; ++i) {
    if (p.want(0)) p.col(0)->AppendInt(i);
    if (p.want(1)) p.col(1)->AppendString(kNations[i].name);
    if (p.want(2)) p.col(2)->AppendInt(kNations[i].region);
    if (p.want(3)) {
      p.col(3)->AppendString(Comment(rng, 3, 10));
    } else {
      SkipComment(rng, 3, 10);
    }
  }
  return PartitionedTable::FromDataFrame("nation", p.frame(), 1);
}

PartitionedTable BuildSupplier(const DbgenConfig& config,
                               const std::vector<std::string>* columns =
                                   nullptr) {
  Rng rng(config.seed ^ 0x7375ULL);
  size_t n = ScaleCount(config.scale_factor, 10000.0, 20);
  Schema schema = MakeSchema({{"s_suppkey", ValueType::kInt64},
                              {"s_name", ValueType::kString},
                              {"s_address", ValueType::kString},
                              {"s_nationkey", ValueType::kInt64},
                              {"s_phone", ValueType::kString},
                              {"s_acctbal", ValueType::kFloat64},
                              {"s_comment", ValueType::kString}},
                             {"s_suppkey"}, {"s_suppkey"});
  Projection p(schema, columns);
  for (size_t i = 1; i <= n; ++i) {
    int64_t nationkey = rng.UniformInt(0, 24);
    if (p.want(0)) p.col(0)->AppendInt(static_cast<int64_t>(i));
    if (p.want(1)) p.col(1)->AppendString(StrFormat("Supplier#%09zu", i));
    if (p.want(2)) {
      p.col(2)->AppendString(Comment(rng, 2, 4));
    } else {
      SkipComment(rng, 2, 4);
    }
    if (p.want(3)) p.col(3)->AppendInt(nationkey);
    std::string phone = Phone(rng, nationkey);  // fixed 3 draws
    if (p.want(4)) p.col(4)->AppendString(std::move(phone));
    double acctbal = Money(rng, -99999, 999999);
    if (p.want(5)) p.col(5)->AppendDouble(acctbal);
    // Per spec, ~5 of 10000 suppliers carry the Customer...Complaints text
    // (Q16 anti-join); use 1/1000 so small SFs still have matches.
    if (p.want(6)) {
      std::string comment = Comment(rng, 5, 12);
      if (rng.UniformInt(0, 999) == 0) {
        comment += " Customer detected Complaints";
      }
      p.col(6)->AppendString(comment);
    } else {
      SkipComment(rng, 5, 12);
      rng.UniformInt(0, 999);
    }
  }
  return PartitionedTable::FromDataFrame(
      "supplier", p.frame(), std::max<size_t>(1, config.partitions / 2));
}

PartitionedTable BuildCustomer(const DbgenConfig& config,
                               const std::vector<std::string>* columns =
                                   nullptr) {
  Rng rng(config.seed ^ 0x6375ULL);
  size_t n = ScaleCount(config.scale_factor, 150000.0, 150);
  Schema schema = MakeSchema({{"c_custkey", ValueType::kInt64},
                              {"c_name", ValueType::kString},
                              {"c_address", ValueType::kString},
                              {"c_nationkey", ValueType::kInt64},
                              {"c_phone", ValueType::kString},
                              {"c_acctbal", ValueType::kFloat64},
                              {"c_mktsegment", ValueType::kString},
                              {"c_comment", ValueType::kString}},
                             {"c_custkey"}, {"c_custkey"});
  Projection p(schema, columns);
  for (size_t i = 1; i <= n; ++i) {
    int64_t nationkey = rng.UniformInt(0, 24);
    if (p.want(0)) p.col(0)->AppendInt(static_cast<int64_t>(i));
    if (p.want(1)) p.col(1)->AppendString(StrFormat("Customer#%09zu", i));
    if (p.want(2)) {
      p.col(2)->AppendString(Comment(rng, 2, 4));
    } else {
      SkipComment(rng, 2, 4);
    }
    if (p.want(3)) p.col(3)->AppendInt(nationkey);
    std::string phone = Phone(rng, nationkey);  // fixed 3 draws
    if (p.want(4)) p.col(4)->AppendString(std::move(phone));
    double acctbal = Money(rng, -99999, 999999);
    if (p.want(5)) p.col(5)->AppendDouble(acctbal);
    const char* segment = Pick(rng, kSegments);
    if (p.want(6)) p.col(6)->AppendString(segment);
    if (p.want(7)) {
      p.col(7)->AppendString(Comment(rng, 4, 10));
    } else {
      SkipComment(rng, 4, 10);
    }
  }
  return PartitionedTable::FromDataFrame(
      "customer", p.frame(), std::max<size_t>(1, config.partitions / 2));
}

PartitionedTable BuildPart(const DbgenConfig& config,
                           const std::vector<std::string>* columns =
                               nullptr) {
  Rng rng(config.seed ^ 0x7061ULL);
  size_t n = ScaleCount(config.scale_factor, 200000.0, 200);
  Schema schema = MakeSchema({{"p_partkey", ValueType::kInt64},
                              {"p_name", ValueType::kString},
                              {"p_mfgr", ValueType::kString},
                              {"p_brand", ValueType::kString},
                              {"p_type", ValueType::kString},
                              {"p_size", ValueType::kInt64},
                              {"p_container", ValueType::kString},
                              {"p_retailprice", ValueType::kFloat64},
                              {"p_comment", ValueType::kString}},
                             {"p_partkey"}, {"p_partkey"});
  Projection p(schema, columns);
  for (size_t i = 1; i <= n; ++i) {
    int64_t partkey = static_cast<int64_t>(i);
    int mfgr = static_cast<int>(rng.UniformInt(1, 5));
    int brand = mfgr * 10 + static_cast<int>(rng.UniformInt(1, 5));
    if (p.want(1)) {
      std::string name;
      for (int w = 0; w < 5; ++w) {
        if (w > 0) name += ' ';
        name += Pick(rng, kColors);
      }
      p.col(1)->AppendString(name);
    } else {
      for (int w = 0; w < 5; ++w) rng.Next();
    }
    const char* t1 = Pick(rng, kTypeSyllable1);
    const char* t2 = Pick(rng, kTypeSyllable2);
    const char* t3 = Pick(rng, kTypeSyllable3);
    const char* c1 = Pick(rng, kContainerSyllable1);
    const char* c2 = Pick(rng, kContainerSyllable2);
    // Spec retail price formula (cents).
    double retail =
        (90000.0 + ((partkey / 10) % 20001) + 100.0 * (partkey % 1000)) /
        100.0;
    if (p.want(0)) p.col(0)->AppendInt(partkey);
    if (p.want(2)) p.col(2)->AppendString(StrFormat("Manufacturer#%d", mfgr));
    if (p.want(3)) p.col(3)->AppendString(StrFormat("Brand#%d", brand));
    if (p.want(4)) {
      p.col(4)->AppendString(std::string(t1) + " " + t2 + " " + t3);
    }
    int64_t size = rng.UniformInt(1, 50);
    if (p.want(5)) p.col(5)->AppendInt(size);
    if (p.want(6)) p.col(6)->AppendString(std::string(c1) + " " + c2);
    if (p.want(7)) p.col(7)->AppendDouble(retail);
    if (p.want(8)) {
      p.col(8)->AppendString(Comment(rng, 2, 6));
    } else {
      SkipComment(rng, 2, 6);
    }
  }
  return PartitionedTable::FromDataFrame(
      "part", p.frame(), std::max<size_t>(1, config.partitions / 2));
}

PartitionedTable BuildPartsupp(const DbgenConfig& config, size_t num_parts,
                               size_t num_suppliers,
                               const std::vector<std::string>* columns =
                                   nullptr) {
  Rng rng(config.seed ^ 0x7073ULL);
  Schema schema = MakeSchema({{"ps_partkey", ValueType::kInt64},
                              {"ps_suppkey", ValueType::kInt64},
                              {"ps_availqty", ValueType::kInt64},
                              {"ps_supplycost", ValueType::kFloat64},
                              {"ps_comment", ValueType::kString}},
                             {"ps_partkey", "ps_suppkey"}, {"ps_partkey"});
  Projection proj(schema, columns);
  for (size_t p = 1; p <= num_parts; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      if (proj.want(0)) proj.col(0)->AppendInt(static_cast<int64_t>(p));
      if (proj.want(1)) {
        proj.col(1)->AppendInt(PartSupplier(
            static_cast<int64_t>(p), i,
            static_cast<int64_t>(num_suppliers)));
      }
      int64_t availqty = rng.UniformInt(1, 9999);
      if (proj.want(2)) proj.col(2)->AppendInt(availqty);
      double cost = Money(rng, 100, 100000);
      if (proj.want(3)) proj.col(3)->AppendDouble(cost);
      if (proj.want(4)) {
        proj.col(4)->AppendString(Comment(rng, 2, 6));
      } else {
        SkipComment(rng, 2, 6);
      }
    }
  }
  return PartitionedTable::FromDataFrame(
      "partsupp", proj.frame(), std::max<size_t>(1, config.partitions / 2));
}

struct OrdersAndLineitem {
  PartitionedTable orders;
  PartitionedTable lineitem;
};

OrdersAndLineitem BuildOrdersLineitem(
    const DbgenConfig& config, const DataFrame& part, size_t num_customers,
    size_t num_suppliers,
    const std::vector<std::string>* orders_columns = nullptr,
    const std::vector<std::string>* lineitem_columns = nullptr) {
  Rng rng(config.seed ^ 0x6f72ULL);
  size_t num_orders = ScaleCount(config.scale_factor, 1500000.0, 1500);
  size_t num_parts = part.num_rows();
  const auto& retail = part.ColumnByName("p_retailprice").doubles();

  Schema orders_schema = MakeSchema(
      {{"o_orderkey", ValueType::kInt64},
       {"o_custkey", ValueType::kInt64},
       {"o_orderstatus", ValueType::kString},
       {"o_totalprice", ValueType::kFloat64},
       {"o_orderdate", ValueType::kDate},
       {"o_orderpriority", ValueType::kString},
       {"o_clerk", ValueType::kString},
       {"o_shippriority", ValueType::kInt64},
       {"o_comment", ValueType::kString}},
      {"o_orderkey"}, {"o_orderkey"});
  Schema lineitem_schema = MakeSchema(
      {{"l_orderkey", ValueType::kInt64},
       {"l_partkey", ValueType::kInt64},
       {"l_suppkey", ValueType::kInt64},
       {"l_linenumber", ValueType::kInt64},
       {"l_quantity", ValueType::kFloat64},
       {"l_extendedprice", ValueType::kFloat64},
       {"l_discount", ValueType::kFloat64},
       {"l_tax", ValueType::kFloat64},
       {"l_returnflag", ValueType::kString},
       {"l_linestatus", ValueType::kString},
       {"l_shipdate", ValueType::kDate},
       {"l_commitdate", ValueType::kDate},
       {"l_receiptdate", ValueType::kDate},
       {"l_shipinstruct", ValueType::kString},
       {"l_shipmode", ValueType::kString},
       {"l_comment", ValueType::kString}},
      {"l_orderkey", "l_linenumber"}, {"l_orderkey"});

  Projection orders(orders_schema, orders_columns);
  Projection li(lineitem_schema, lineitem_columns);
  size_t num_clerks = std::max<size_t>(
      1, static_cast<size_t>(config.scale_factor * 1000));
  int64_t current = CurrentDate();

  for (size_t ok = 1; ok <= num_orders; ++ok) {
    // Spec: a third of customers have no orders (custkey % 3 == 0 skipped).
    int64_t custkey;
    do {
      custkey = rng.UniformInt(1, static_cast<int64_t>(num_customers));
    } while (custkey % 3 == 0 && num_customers >= 3);

    int64_t orderdate =
        rng.UniformInt(kStartDate(), kEndDate() - 151);
    int lines = static_cast<int>(rng.UniformInt(1, 7));
    double total = 0.0;
    int shipped = 0;
    for (int ln = 1; ln <= lines; ++ln) {
      int64_t partkey = rng.UniformInt(1, static_cast<int64_t>(num_parts));
      int64_t suppkey = PartSupplier(partkey, rng.UniformInt(0, 3),
                                     static_cast<int64_t>(num_suppliers));
      double quantity = static_cast<double>(rng.UniformInt(1, 50));
      double extprice = quantity * retail[static_cast<size_t>(partkey - 1)];
      double discount = static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.UniformInt(0, 8)) / 100.0;
      int64_t shipdate = orderdate + rng.UniformInt(1, 121);
      int64_t commitdate = orderdate + rng.UniformInt(30, 90);
      int64_t receiptdate = shipdate + rng.UniformInt(1, 30);
      const char* returnflag = "N";
      if (receiptdate <= current) {
        returnflag = rng.UniformInt(0, 1) ? "R" : "A";
      }
      bool is_shipped = shipdate <= current;
      shipped += is_shipped ? 1 : 0;

      if (li.want(0)) li.col(0)->AppendInt(static_cast<int64_t>(ok));
      if (li.want(1)) li.col(1)->AppendInt(partkey);
      if (li.want(2)) li.col(2)->AppendInt(suppkey);
      if (li.want(3)) li.col(3)->AppendInt(ln);
      if (li.want(4)) li.col(4)->AppendDouble(quantity);
      if (li.want(5)) li.col(5)->AppendDouble(extprice);
      if (li.want(6)) li.col(6)->AppendDouble(discount);
      if (li.want(7)) li.col(7)->AppendDouble(tax);
      if (li.want(8)) li.col(8)->AppendString(returnflag);
      if (li.want(9)) li.col(9)->AppendString(is_shipped ? "F" : "O");
      if (li.want(10)) li.col(10)->AppendInt(shipdate);
      if (li.want(11)) li.col(11)->AppendInt(commitdate);
      if (li.want(12)) li.col(12)->AppendInt(receiptdate);
      const char* instruct = Pick(rng, kShipInstructs);
      if (li.want(13)) li.col(13)->AppendString(instruct);
      const char* mode = Pick(rng, kShipModes);
      if (li.want(14)) li.col(14)->AppendString(mode);
      if (li.want(15)) {
        li.col(15)->AppendString(Comment(rng, 2, 6));
      } else {
        SkipComment(rng, 2, 6);
      }
      total += extprice * (1.0 - discount) * (1.0 + tax);
    }
    const char* status = shipped == lines ? "F" : (shipped == 0 ? "O" : "P");
    // ~3% of order comments carry the 'special ... requests' pattern Q13
    // filters out.
    if (orders.want(8)) {
      std::string comment = Comment(rng, 4, 12);
      if (rng.UniformInt(0, 32) == 0) {
        comment += " special handling requests";
      }
      orders.col(8)->AppendString(comment);
    } else {
      SkipComment(rng, 4, 12);
      rng.UniformInt(0, 32);
    }
    if (orders.want(0)) orders.col(0)->AppendInt(static_cast<int64_t>(ok));
    if (orders.want(1)) orders.col(1)->AppendInt(custkey);
    if (orders.want(2)) orders.col(2)->AppendString(status);
    if (orders.want(3)) orders.col(3)->AppendDouble(total);
    if (orders.want(4)) orders.col(4)->AppendInt(orderdate);
    const char* priority = Pick(rng, kPriorities);
    if (orders.want(5)) orders.col(5)->AppendString(priority);
    int clerk = static_cast<int>(
        rng.UniformInt(1, static_cast<int64_t>(num_clerks)));
    if (orders.want(6)) {
      orders.col(6)->AppendString(StrFormat("Clerk#%09d", clerk));
    }
    if (orders.want(7)) orders.col(7)->AppendInt(0);
  }

  OrdersAndLineitem out;
  out.orders = PartitionedTable::FromDataFrame("orders", orders.frame(),
                                               config.partitions);
  out.lineitem = PartitionedTable::FromDataFrame("lineitem", li.frame(),
                                                 config.partitions);
  return out;
}

}  // namespace

int64_t CurrentDate() { return DateToDays(1995, 6, 17); }

Catalog Generate(const DbgenConfig& config) {
  CheckArg(config.scale_factor > 0, "scale factor must be positive");
  CheckArg(config.partitions > 0, "partitions must be positive");
  Catalog catalog;
  catalog.Add(std::make_shared<PartitionedTable>(BuildRegion(config)));
  catalog.Add(std::make_shared<PartitionedTable>(BuildNation(config)));
  auto supplier = BuildSupplier(config);
  auto customer = BuildCustomer(config);
  auto part = BuildPart(config);
  auto partsupp = BuildPartsupp(config, part.total_rows(),
                                supplier.total_rows());
  auto ol = BuildOrdersLineitem(config, part.Materialize(),
                                customer.total_rows(), supplier.total_rows());
  catalog.Add(std::make_shared<PartitionedTable>(std::move(supplier)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(customer)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(part)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(partsupp)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(ol.orders)));
  catalog.Add(std::make_shared<PartitionedTable>(std::move(ol.lineitem)));
  return catalog;
}

PartitionedTable GenerateTable(const DbgenConfig& config,
                               const std::string& name,
                               const std::vector<std::string>& columns) {
  CheckArg(config.scale_factor > 0, "scale factor must be positive");
  CheckArg(config.partitions > 0, "partitions must be positive");
  // Each table draws from its own seeded stream, so single-table
  // generation reproduces exactly the table Generate() would build.
  const std::vector<std::string>* cols = columns.empty() ? nullptr : &columns;
  if (name == "region") return BuildRegion(config, cols);
  if (name == "nation") return BuildNation(config, cols);
  if (name == "supplier") return BuildSupplier(config, cols);
  if (name == "customer") return BuildCustomer(config, cols);
  if (name == "part") return BuildPart(config, cols);
  if (name == "partsupp") {
    return BuildPartsupp(config, RowsAtScale("part", config.scale_factor),
                         RowsAtScale("supplier", config.scale_factor), cols);
  }
  if (name == "orders" || name == "lineitem") {
    // The pair generates together (lineitems nest inside orders); the
    // discarded half materializes no columns at all.
    static const std::vector<std::string> kNone;
    std::vector<std::string> retail_only = {"p_retailprice"};
    DataFrame part = BuildPart(config, &retail_only).Materialize();
    bool want_orders = name == "orders";
    OrdersAndLineitem ol = BuildOrdersLineitem(
        config, part, RowsAtScale("customer", config.scale_factor),
        RowsAtScale("supplier", config.scale_factor),
        want_orders ? cols : &kNone, want_orders ? &kNone : cols);
    return want_orders ? std::move(ol.orders) : std::move(ol.lineitem);
  }
  throw Error("unknown table " + name);
}

size_t RowsAtScale(const std::string& table, double sf) {
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return ScaleCount(sf, 10000.0, 20);
  if (table == "customer") return ScaleCount(sf, 150000.0, 150);
  if (table == "part") return ScaleCount(sf, 200000.0, 200);
  if (table == "partsupp") return 4 * ScaleCount(sf, 200000.0, 200);
  if (table == "orders") return ScaleCount(sf, 1500000.0, 1500);
  if (table == "lineitem") return 4 * ScaleCount(sf, 1500000.0, 1500);
  throw Error("unknown table " + table);
}

}  // namespace tpch
}  // namespace wake
