// The 22 TPC-H benchmark queries as SQL text in the dialect of
// sql/parser.h.
//
// Each text mirrors the hand-built plan of tpch/queries.h in the paper's
// decomposition style: scalar subqueries are CROSS JOINs over aggregating
// derived tables, EXISTS / NOT EXISTS become SEMI / ANTI joins, and Q21's
// correlated EXISTS pair goes through per-order distinct-supplier counts.
// Parsing a text and running it through wake::Optimize produces exactly
// the results of the corresponding tpch::Query(n) plan on every engine —
// the hand-tuned plans serve as the regression oracle for the SQL front
// end plus optimizer (see tests/sql/tpch_sql_equivalence_test.cc).
#ifndef WAKE_TPCH_QUERIES_SQL_H_
#define WAKE_TPCH_QUERIES_SQL_H_

namespace wake {
namespace tpch {

/// SQL text for TPC-H query `number` (1-22). Throws wake::Error otherwise.
const char* QuerySql(int number);

}  // namespace tpch
}  // namespace wake

#endif  // WAKE_TPCH_QUERIES_SQL_H_
