#include "tpch/queries_sql.h"

#include "common/error.h"

namespace wake {
namespace tpch {

namespace {

// -- Q1: pricing summary report -------------------------------------------
const char* kQ1 =
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
    "SUM(l_extendedprice) AS sum_base_price, "
    "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
    "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
    "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, "
    "AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
    "FROM lineitem "
    "WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL 90 DAY "
    "GROUP BY l_returnflag, l_linestatus "
    "ORDER BY l_returnflag, l_linestatus";

// -- Q2: minimum cost supplier --------------------------------------------
const char* kQ2 =
    "SELECT s_acctbal, s_name, n_name, ps_partkey AS p_partkey, p_mfgr, "
    "s_address, s_phone, s_comment "
    "FROM partsupp "
    "JOIN (SELECT s_suppkey, s_acctbal, s_name, n_name, s_address, s_phone, "
    "s_comment FROM supplier "
    "JOIN (SELECT n_nationkey, n_name FROM nation "
    "SEMI JOIN (SELECT r_regionkey FROM region WHERE r_name = 'EUROPE') AS r "
    "ON n_regionkey = r_regionkey) AS n "
    "ON s_nationkey = n_nationkey) AS se "
    "ON ps_suppkey = s_suppkey "
    "JOIN (SELECT p_partkey, p_mfgr FROM part "
    "WHERE p_size = 15 AND p_type LIKE '%BRASS') AS pf "
    "ON ps_partkey = p_partkey "
    "JOIN (SELECT ps_partkey AS mc_partkey, MIN(ps_supplycost) AS min_cost "
    "FROM partsupp "
    "JOIN (SELECT s_suppkey FROM supplier "
    "JOIN (SELECT n_nationkey FROM nation "
    "SEMI JOIN (SELECT r_regionkey FROM region WHERE r_name = 'EUROPE') AS r2 "
    "ON n_regionkey = r_regionkey) AS n2 "
    "ON s_nationkey = n_nationkey) AS se2 "
    "ON ps_suppkey = s_suppkey "
    "JOIN (SELECT p_partkey FROM part "
    "WHERE p_size = 15 AND p_type LIKE '%BRASS') AS pf2 "
    "ON ps_partkey = p_partkey "
    "GROUP BY ps_partkey) AS mc "
    "ON ps_partkey = mc_partkey "
    "WHERE ps_supplycost = min_cost "
    "ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100";

// -- Q3: shipping priority ------------------------------------------------
const char* kQ3 =
    "SELECT l_orderkey, o_orderdate, o_shippriority, "
    "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM lineitem "
    "JOIN (SELECT o_orderkey, o_orderdate, o_shippriority FROM orders "
    "SEMI JOIN (SELECT c_custkey FROM customer "
    "WHERE c_mktsegment = 'BUILDING') AS c "
    "ON o_custkey = c_custkey "
    "WHERE o_orderdate < DATE '1995-03-15') AS o "
    "ON l_orderkey = o_orderkey "
    "WHERE l_shipdate > DATE '1995-03-15' "
    "GROUP BY l_orderkey, o_orderdate, o_shippriority "
    "ORDER BY revenue DESC, o_orderdate LIMIT 10";

// -- Q4: order priority checking ------------------------------------------
const char* kQ4 =
    "SELECT o_orderpriority, COUNT(*) AS order_count "
    "FROM orders "
    "SEMI JOIN (SELECT l_orderkey FROM lineitem "
    "WHERE l_commitdate < l_receiptdate) AS l "
    "ON o_orderkey = l_orderkey "
    "WHERE o_orderdate >= DATE '1993-07-01' "
    "AND o_orderdate < DATE '1993-10-01' "
    "GROUP BY o_orderpriority ORDER BY o_orderpriority";

// -- Q5: local supplier volume --------------------------------------------
const char* kQ5 =
    "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM lineitem "
    "JOIN (SELECT o_orderkey, c_nationkey FROM orders "
    "JOIN (SELECT c_custkey, c_nationkey FROM customer) AS c "
    "ON o_custkey = c_custkey "
    "WHERE o_orderdate >= DATE '1994-01-01' "
    "AND o_orderdate < DATE '1995-01-01') AS o "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT s_suppkey, s_nationkey, n_name FROM supplier "
    "JOIN (SELECT n_nationkey, n_name FROM nation "
    "SEMI JOIN (SELECT r_regionkey FROM region WHERE r_name = 'ASIA') AS r "
    "ON n_regionkey = r_regionkey) AS n "
    "ON s_nationkey = n_nationkey) AS s "
    "ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
    "GROUP BY n_name ORDER BY revenue DESC";

// -- Q6: forecasting revenue change ---------------------------------------
const char* kQ6 =
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
    "WHERE l_shipdate >= DATE '1994-01-01' "
    "AND l_shipdate < DATE '1995-01-01' "
    "AND l_discount BETWEEN 0.049 AND 0.071 AND l_quantity < 24";

// -- Q7: volume shipping ---------------------------------------------------
const char* kQ7 =
    "SELECT supp_nation, cust_nation, YEAR(l_shipdate) AS l_year, "
    "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM lineitem "
    "JOIN (SELECT o_orderkey, cust_nation FROM orders "
    "JOIN (SELECT c_custkey, n_name AS cust_nation FROM customer "
    "JOIN (SELECT n_nationkey, n_name FROM nation "
    "WHERE n_name IN ('FRANCE', 'GERMANY')) AS n "
    "ON c_nationkey = n_nationkey) AS c "
    "ON o_custkey = c_custkey) AS o "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT s_suppkey, n_name AS supp_nation FROM supplier "
    "JOIN (SELECT n_nationkey, n_name FROM nation "
    "WHERE n_name IN ('FRANCE', 'GERMANY')) AS n2 "
    "ON s_nationkey = n_nationkey) AS s "
    "ON l_suppkey = s_suppkey "
    "WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
    "AND ((supp_nation = 'FRANCE' AND cust_nation = 'GERMANY') "
    "OR (supp_nation = 'GERMANY' AND cust_nation = 'FRANCE')) "
    "GROUP BY supp_nation, cust_nation, l_year "
    "ORDER BY supp_nation, cust_nation, l_year";

// -- Q8: national market share --------------------------------------------
const char* kQ8 =
    "SELECT o_year, brazil / total AS mkt_share "
    "FROM (SELECT YEAR(o_orderdate) AS o_year, "
    "SUM(CASE WHEN nation = 'BRAZIL' "
    "THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) AS brazil, "
    "SUM(l_extendedprice * (1 - l_discount)) AS total "
    "FROM lineitem "
    "SEMI JOIN (SELECT p_partkey FROM part "
    "WHERE p_type = 'ECONOMY ANODIZED STEEL') AS pf "
    "ON l_partkey = p_partkey "
    "JOIN (SELECT o_orderkey, o_orderdate FROM orders "
    "SEMI JOIN (SELECT c_custkey FROM customer "
    "SEMI JOIN (SELECT n_nationkey FROM nation "
    "SEMI JOIN (SELECT r_regionkey FROM region "
    "WHERE r_name = 'AMERICA') AS r "
    "ON n_regionkey = r_regionkey) AS n "
    "ON c_nationkey = n_nationkey) AS c "
    "ON o_custkey = c_custkey "
    "WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') AS o "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT s_suppkey, n_name AS nation FROM supplier "
    "JOIN (SELECT n_nationkey, n_name FROM nation) AS n2 "
    "ON s_nationkey = n_nationkey) AS s "
    "ON l_suppkey = s_suppkey "
    "GROUP BY o_year) AS t "
    "ORDER BY o_year";

// -- Q9: product type profit measure --------------------------------------
const char* kQ9 =
    "SELECT nation, YEAR(o_orderdate) AS o_year, "
    "SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) "
    "AS sum_profit "
    "FROM lineitem "
    "SEMI JOIN (SELECT p_partkey FROM part "
    "WHERE p_name LIKE '%green%') AS pf "
    "ON l_partkey = p_partkey "
    "JOIN (SELECT ps_partkey, ps_suppkey, ps_supplycost FROM partsupp) AS ps "
    "ON l_partkey = ps_partkey AND l_suppkey = ps_suppkey "
    "JOIN (SELECT o_orderkey, o_orderdate FROM orders) AS o "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT s_suppkey, n_name AS nation FROM supplier "
    "JOIN (SELECT n_nationkey, n_name FROM nation) AS n "
    "ON s_nationkey = n_nationkey) AS s "
    "ON l_suppkey = s_suppkey "
    "GROUP BY nation, o_year ORDER BY nation, o_year DESC";

// -- Q10: returned item reporting -----------------------------------------
const char* kQ10 =
    "SELECT o_custkey, c_name, c_acctbal, c_phone, n_name, c_address, "
    "c_comment, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM lineitem "
    "JOIN (SELECT o_orderkey, o_custkey FROM orders "
    "WHERE o_orderdate >= DATE '1993-10-01' "
    "AND o_orderdate < DATE '1994-01-01') AS o "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT c_custkey, c_name, c_acctbal, c_phone, c_address, "
    "c_comment, n_name FROM customer "
    "JOIN (SELECT n_nationkey, n_name FROM nation) AS n "
    "ON c_nationkey = n_nationkey) AS c "
    "ON o_custkey = c_custkey "
    "WHERE l_returnflag = 'R' "
    "GROUP BY o_custkey, c_name, c_acctbal, c_phone, n_name, c_address, "
    "c_comment "
    "ORDER BY revenue DESC LIMIT 20";

// -- Q11: important stock identification -----------------------------------
const char* kQ11 =
    "SELECT ps_partkey, value "
    "FROM (SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value "
    "FROM partsupp "
    "SEMI JOIN (SELECT s_suppkey FROM supplier "
    "SEMI JOIN (SELECT n_nationkey FROM nation "
    "WHERE n_name = 'GERMANY') AS n "
    "ON s_nationkey = n_nationkey) AS sd "
    "ON ps_suppkey = s_suppkey "
    "GROUP BY ps_partkey) AS g "
    "CROSS JOIN (SELECT total_value * 0.0001 AS threshold "
    "FROM (SELECT SUM(ps_supplycost * ps_availqty) AS total_value "
    "FROM partsupp "
    "SEMI JOIN (SELECT s_suppkey FROM supplier "
    "SEMI JOIN (SELECT n_nationkey FROM nation "
    "WHERE n_name = 'GERMANY') AS n2 "
    "ON s_nationkey = n_nationkey) AS sd2 "
    "ON ps_suppkey = s_suppkey) AS tv) AS th "
    "WHERE value > threshold "
    "ORDER BY value DESC";

// -- Q12: shipping modes and order priority --------------------------------
const char* kQ12 =
    "SELECT l_shipmode, "
    "SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') "
    "THEN 1 ELSE 0 END) AS high_line_count, "
    "SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') "
    "THEN 0 ELSE 1 END) AS low_line_count "
    "FROM lineitem "
    "JOIN (SELECT o_orderkey, o_orderpriority FROM orders) AS o "
    "ON l_orderkey = o_orderkey "
    "WHERE l_shipmode IN ('MAIL', 'SHIP') "
    "AND l_commitdate < l_receiptdate "
    "AND l_shipdate < l_commitdate "
    "AND l_receiptdate >= DATE '1994-01-01' "
    "AND l_receiptdate < DATE '1995-01-01' "
    "GROUP BY l_shipmode ORDER BY l_shipmode";

// -- Q13: customer distribution --------------------------------------------
const char* kQ13 =
    "SELECT c_count, COUNT(*) AS custdist "
    "FROM (SELECT COALESCE(c_count, 0) AS c_count "
    "FROM customer "
    "LEFT JOIN (SELECT o_custkey, COUNT(o_orderkey) AS c_count FROM orders "
    "WHERE o_comment NOT LIKE '%special%requests%' "
    "GROUP BY o_custkey) AS pc "
    "ON c_custkey = o_custkey) AS t "
    "GROUP BY c_count "
    "ORDER BY custdist DESC, c_count DESC";

// -- Q14: promotion effect --------------------------------------------------
const char* kQ14 =
    "SELECT 100.0 * promo / total AS promo_revenue "
    "FROM (SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' "
    "THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) AS promo, "
    "SUM(l_extendedprice * (1 - l_discount)) AS total "
    "FROM lineitem "
    "JOIN (SELECT p_partkey, p_type FROM part) AS p "
    "ON l_partkey = p_partkey "
    "WHERE l_shipdate >= DATE '1995-09-01' "
    "AND l_shipdate < DATE '1995-10-01') AS t";

// -- Q15: top supplier -------------------------------------------------------
const char* kQ15 =
    "SELECT l_suppkey AS s_suppkey, s_name, s_address, s_phone, "
    "total_revenue "
    "FROM (SELECT l_suppkey, "
    "SUM(l_extendedprice * (1 - l_discount)) AS total_revenue "
    "FROM lineitem "
    "WHERE l_shipdate >= DATE '1996-01-01' "
    "AND l_shipdate < DATE '1996-04-01' "
    "GROUP BY l_suppkey) AS r "
    "CROSS JOIN (SELECT MAX(total_revenue) AS max_rev "
    "FROM (SELECT l_suppkey, "
    "SUM(l_extendedprice * (1 - l_discount)) AS total_revenue "
    "FROM lineitem "
    "WHERE l_shipdate >= DATE '1996-01-01' "
    "AND l_shipdate < DATE '1996-04-01' "
    "GROUP BY l_suppkey) AS r2) AS mx "
    "JOIN (SELECT s_suppkey, s_name, s_address, s_phone FROM supplier) AS s "
    "ON l_suppkey = s_suppkey "
    "WHERE total_revenue = max_rev "
    "ORDER BY s_suppkey";

// -- Q16: parts/supplier relationship ---------------------------------------
const char* kQ16 =
    "SELECT p_brand, p_type, p_size, "
    "COUNT(DISTINCT ps_suppkey) AS supplier_cnt "
    "FROM partsupp "
    "ANTI JOIN (SELECT s_suppkey FROM supplier "
    "WHERE s_comment LIKE '%Customer%Complaints%') AS bs "
    "ON ps_suppkey = s_suppkey "
    "JOIN (SELECT p_partkey, p_brand, p_type, p_size FROM part "
    "WHERE p_brand <> 'Brand#45' "
    "AND p_type NOT LIKE 'MEDIUM POLISHED%' "
    "AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)) AS pf "
    "ON ps_partkey = p_partkey "
    "GROUP BY p_brand, p_type, p_size "
    "ORDER BY supplier_cnt DESC, p_brand, p_type, p_size";

// -- Q17: small-quantity-order revenue ---------------------------------------
const char* kQ17 =
    "SELECT total_price / 7.0 AS avg_yearly "
    "FROM (SELECT SUM(l_extendedprice) AS total_price "
    "FROM (SELECT l_orderkey, l_partkey, l_quantity, l_extendedprice "
    "FROM lineitem "
    "SEMI JOIN (SELECT p_partkey FROM part "
    "WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX') AS pf "
    "ON l_partkey = p_partkey) AS li "
    "JOIN (SELECT l_partkey AS aq_partkey, AVG(l_quantity) AS avg_qty "
    "FROM (SELECT l_orderkey, l_partkey, l_quantity, l_extendedprice "
    "FROM lineitem "
    "SEMI JOIN (SELECT p_partkey FROM part "
    "WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX') AS pf2 "
    "ON l_partkey = p_partkey) AS li2 "
    "GROUP BY l_partkey) AS aq "
    "ON l_partkey = aq_partkey "
    "WHERE l_quantity < 0.2 * avg_qty) AS t";

// -- Q18: large volume customer ----------------------------------------------
const char* kQ18 =
    "SELECT c_name, o_custkey, l_orderkey, o_orderdate, o_totalprice, "
    "SUM(sum_qty) AS total_qty "
    "FROM (SELECT l_orderkey, SUM(l_quantity) AS sum_qty FROM lineitem "
    "GROUP BY l_orderkey HAVING sum_qty > 300) AS oq "
    "JOIN (SELECT o_orderkey, o_custkey, o_orderdate, o_totalprice "
    "FROM orders) AS o "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT c_custkey, c_name FROM customer) AS c "
    "ON o_custkey = c_custkey "
    "GROUP BY c_name, o_custkey, l_orderkey, o_orderdate, o_totalprice "
    "ORDER BY o_totalprice DESC, o_orderdate LIMIT 100";

// -- Q19: discounted revenue -------------------------------------------------
const char* kQ19 =
    "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM lineitem "
    "JOIN (SELECT p_partkey, p_brand, p_container, p_size FROM part) AS p "
    "ON l_partkey = p_partkey "
    "WHERE l_shipmode IN ('AIR', 'AIR REG') "
    "AND l_shipinstruct = 'DELIVER IN PERSON' "
    "AND ((p_brand = 'Brand#12' "
    "AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') "
    "AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5) "
    "OR (p_brand = 'Brand#23' "
    "AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') "
    "AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10) "
    "OR (p_brand = 'Brand#34' "
    "AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') "
    "AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))";

// -- Q20: potential part promotion -------------------------------------------
const char* kQ20 =
    "SELECT s_name, s_address "
    "FROM supplier "
    "SEMI JOIN (SELECT n_nationkey FROM nation "
    "WHERE n_name = 'CANADA') AS n "
    "ON s_nationkey = n_nationkey "
    "SEMI JOIN (SELECT ps_suppkey "
    "FROM partsupp "
    "SEMI JOIN (SELECT p_partkey FROM part "
    "WHERE p_name LIKE 'forest%') AS pf "
    "ON ps_partkey = p_partkey "
    "JOIN (SELECT l_partkey AS q_partkey, l_suppkey AS q_suppkey, "
    "0.5 * sum_qty AS half_qty "
    "FROM (SELECT l_partkey, l_suppkey, SUM(l_quantity) AS sum_qty "
    "FROM lineitem "
    "WHERE l_shipdate >= DATE '1994-01-01' "
    "AND l_shipdate < DATE '1995-01-01' "
    "GROUP BY l_partkey, l_suppkey) AS q0) AS q "
    "ON ps_partkey = q_partkey AND ps_suppkey = q_suppkey "
    "WHERE ps_availqty > half_qty) AS avail "
    "ON s_suppkey = ps_suppkey "
    "ORDER BY s_name";

// -- Q21: suppliers who kept orders waiting ----------------------------------
const char* kQ21 =
    "SELECT s_name, COUNT(*) AS numwait "
    "FROM (SELECT l_orderkey, l_suppkey FROM lineitem "
    "WHERE l_receiptdate > l_commitdate) AS late "
    "SEMI JOIN (SELECT o_orderkey FROM orders "
    "WHERE o_orderstatus = 'F') AS of "
    "ON l_orderkey = o_orderkey "
    "JOIN (SELECT l_orderkey AS a_orderkey, "
    "COUNT(DISTINCT l_suppkey) AS nsupp FROM lineitem "
    "GROUP BY l_orderkey) AS na "
    "ON l_orderkey = a_orderkey "
    "JOIN (SELECT l_orderkey AS b_orderkey, "
    "COUNT(DISTINCT l_suppkey) AS nlate FROM lineitem "
    "WHERE l_receiptdate > l_commitdate "
    "GROUP BY l_orderkey) AS nl "
    "ON l_orderkey = b_orderkey "
    "JOIN (SELECT s_suppkey, s_name FROM supplier "
    "SEMI JOIN (SELECT n_nationkey FROM nation "
    "WHERE n_name = 'SAUDI ARABIA') AS sa "
    "ON s_nationkey = n_nationkey) AS ss "
    "ON l_suppkey = s_suppkey "
    "WHERE nsupp > 1 AND nlate = 1 "
    "GROUP BY s_name "
    "ORDER BY numwait DESC, s_name LIMIT 100";

// -- Q22: global sales opportunity -------------------------------------------
const char* kQ22 =
    "SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal "
    "FROM (SELECT c_custkey, c_acctbal, SUBSTR(c_phone, 1, 2) AS cntrycode "
    "FROM customer "
    "WHERE SUBSTR(c_phone, 1, 2) IN "
    "('13', '31', '23', '29', '30', '18', '17')) AS cust "
    "CROSS JOIN (SELECT AVG(c_acctbal) AS avg_bal "
    "FROM (SELECT c_custkey, c_acctbal, SUBSTR(c_phone, 1, 2) AS cntrycode "
    "FROM customer "
    "WHERE SUBSTR(c_phone, 1, 2) IN "
    "('13', '31', '23', '29', '30', '18', '17')) AS cust2 "
    "WHERE c_acctbal > 0.0) AS ab "
    "ANTI JOIN (SELECT o_custkey FROM orders) AS o "
    "ON c_custkey = o_custkey "
    "WHERE c_acctbal > avg_bal "
    "GROUP BY cntrycode "
    "ORDER BY cntrycode";

}  // namespace

const char* QuerySql(int number) {
  switch (number) {
    case 1: return kQ1;
    case 2: return kQ2;
    case 3: return kQ3;
    case 4: return kQ4;
    case 5: return kQ5;
    case 6: return kQ6;
    case 7: return kQ7;
    case 8: return kQ8;
    case 9: return kQ9;
    case 10: return kQ10;
    case 11: return kQ11;
    case 12: return kQ12;
    case 13: return kQ13;
    case 14: return kQ14;
    case 15: return kQ15;
    case 16: return kQ16;
    case 17: return kQ17;
    case 18: return kQ18;
    case 19: return kQ19;
    case 20: return kQ20;
    case 21: return kQ21;
    case 22: return kQ22;
    default:
      throw Error("TPC-H query number must be 1..22");
  }
}

}  // namespace tpch
}  // namespace wake
