// ReaderNode, MapNode, FilterNode (Case 1 operators).
#include "core/nodes.h"

#include <chrono>
#include <thread>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/worker_pool.h"

namespace wake {

namespace {

// Rows per morsel for parallel projection/selection. Expressions are
// row-local, so per-morsel evaluation over slices stitched in morsel
// order reproduces the serial output exactly.
constexpr size_t kEvalMorselRows = 32 * 1024;

// Transient read faults (I/O hiccups; injected via the reader.read_batch
// failpoint) are absorbed by a short bounded retry before the error is
// allowed to kill the query.
constexpr int kReadAttempts = 3;

}  // namespace

// ---------------------------------------------------------------------------
// ReaderNode
// ---------------------------------------------------------------------------

ReaderNode::ReaderNode(TablePtr table, NodeOptions,
                       std::vector<std::string> columns, ExprPtr filter)
    : ExecNode("read(" + table->name() + ")"),
      table_(std::move(table)),
      columns_(std::move(columns)),
      filter_(std::move(filter)) {
  if (!columns_.empty()) {
    // Key-aware narrowing (keys survive only if all their columns do);
    // DataFrame::Select alone would keep stale key metadata.
    narrowed_schema_ = table_->schema().Select(columns_);
  }
}

void ReaderNode::RunSource() {
  size_t total = table_->total_rows();
  size_t seen = 0;
  bool emitted_final = total == 0;
  for (size_t i = 0; i < table_->num_chunks(); ++i) {
    if (stopped() || drain_stopped()) return;  // cancel / budget drain
    if (tracker() != nullptr && tracker()->CheckBreach()) return;
    for (int attempt = 1;; ++attempt) {
      try {
        WAKE_FAILPOINT("reader.read_batch");
        break;
      } catch (const Error&) {
        if (attempt >= kReadAttempts) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
      }
    }
    // Skipped chunks (synopses refute filter_) still advance `seen`: the
    // partial's progress t honestly covers their rows — they just
    // contribute none — so OLA's 1/t scaling stays unbiased. Only decoded
    // rows are charged to the budget.
    seen += table_->chunk_rows(i);
    DataFramePtr chunk = table_->ReadChunk(i, columns_, filter_);
    if (chunk == nullptr) continue;
    if (tracker() != nullptr) tracker()->ChargeRows(chunk->num_rows());
    Message msg;
    msg.frame = std::move(chunk);
    msg.progress =
        total == 0 ? 1.0
                   : static_cast<double>(seen) / static_cast<double>(total);
    emitted_final = msg.progress >= 1.0;
    Emit(std::move(msg));
  }
  if (!emitted_final) {
    // Every remaining chunk was skipped; downstream still needs a t=1.0
    // partial to finalize. Emit an empty frame carrying it.
    Message msg;
    msg.frame = std::make_shared<DataFrame>(
        columns_.empty() ? table_->schema() : narrowed_schema_);
    msg.progress = 1.0;
    Emit(std::move(msg));
  }
}

// ---------------------------------------------------------------------------
// MapNode
// ---------------------------------------------------------------------------

MapNode::MapNode(const PlanNode& plan, const Schema& input_schema,
                 const Schema& output_schema, NodeOptions options)
    : ExecNode(plan.label.empty() ? "map" : plan.label),
      projections_(plan.projections),
      append_input_(plan.append_input),
      input_schema_(input_schema),
      output_schema_(output_schema),
      options_(options) {}

void MapNode::Process(size_t, const Message& msg) {
  const DataFrame& in = *msg.frame;
  size_t n = in.num_rows();
  WorkerPool* pool = options_.pool;
  const bool vars_in = options_.with_ci && msg.variances != nullptr;
  if (pool != nullptr && !vars_in && pool->workers() > 1 &&
      n >= 2 * kEvalMorselRows) {
    // Morsel-parallel projection: evaluate each slice independently and
    // stitch in morsel order (identical to the serial evaluation).
    size_t morsels = (n + kEvalMorselRows - 1) / kEvalMorselRows;
    std::vector<DataFrame> parts(morsels);
    pool->ParallelFor(n, kEvalMorselRows, [&](size_t b, size_t e) {
      DataFrame slice = in.Slice(b, e);
      DataFrame part(output_schema_);
      size_t col = 0;
      if (append_input_) {
        for (size_t c = 0; c < slice.num_columns(); ++c) {
          *part.mutable_column(col++) = slice.column(c);
        }
      }
      for (const auto& p : projections_) {
        *part.mutable_column(col++) = p.expr->Eval(slice);
      }
      parts[b / kEvalMorselRows] = std::move(part);
    });
    DataFrame stitched(output_schema_);
    for (auto& part : parts) stitched.Append(part);
    Message result;
    result.frame = std::make_shared<DataFrame>(std::move(stitched));
    result.progress = msg.progress;
    result.version = msg.version;
    result.refresh = msg.refresh;
    Emit(std::move(result));
    return;
  }

  auto out = std::make_shared<DataFrame>(output_schema_);
  size_t col = 0;
  if (append_input_) {
    for (size_t c = 0; c < in.num_columns(); ++c) {
      *out->mutable_column(col++) = in.column(c);
    }
  }

  Message result;
  if (vars_in) {
    // Propagate uncertainty through the projection expressions (§6).
    std::unordered_map<std::string, const std::vector<double>*> var_of;
    for (const auto& [name, vars] : *msg.variances) var_of[name] = &vars;
    auto out_vars = std::make_shared<VarianceMap>();
    if (append_input_) {
      for (const auto& [name, vars] : *msg.variances) {
        if (output_schema_.HasField(name)) (*out_vars)[name] = vars;
      }
    }
    for (const auto& p : projections_) {
      Column value;
      std::vector<double> var;
      p.expr->EvalWithVariance(in, var_of, &value, &var);
      *out->mutable_column(col++) = std::move(value);
      (*out_vars)[p.name] = std::move(var);
    }
    result.variances = std::move(out_vars);
  } else {
    for (const auto& p : projections_) {
      *out->mutable_column(col++) = p.expr->Eval(in);
    }
  }
  result.frame = std::move(out);
  result.progress = msg.progress;
  result.version = msg.version;
  result.refresh = msg.refresh;
  Emit(std::move(result));
}

// ---------------------------------------------------------------------------
// FilterNode
// ---------------------------------------------------------------------------

FilterNode::FilterNode(ExprPtr predicate, const Schema& schema,
                       NodeOptions options)
    : ExecNode("filter"),
      predicate_(std::move(predicate)),
      schema_(schema),
      options_(options) {}

void FilterNode::Process(size_t, const Message& msg) {
  const DataFrame& in = *msg.frame;
  size_t n = in.num_rows();
  WorkerPool* pool = options_.pool;
  const bool vars_in = options_.with_ci && msg.variances != nullptr;
  if (pool != nullptr && !vars_in && pool->workers() > 1 &&
      n >= 2 * kEvalMorselRows) {
    // Morsel-parallel selection: evaluate the predicate and filter each
    // slice independently, stitch surviving rows in morsel order.
    size_t morsels = (n + kEvalMorselRows - 1) / kEvalMorselRows;
    std::vector<DataFrame> parts(morsels);
    pool->ParallelFor(n, kEvalMorselRows, [&](size_t b, size_t e) {
      DataFrame slice = in.Slice(b, e);
      // Selection-kernel filter straight off the evaluated mask column —
      // no per-row byte-mask copy.
      parts[b / kEvalMorselRows] = slice.FilterBy(predicate_->Eval(slice));
    });
    DataFrame stitched(schema_);
    for (auto& part : parts) stitched.Append(part);
    Message result;
    result.frame = std::make_shared<DataFrame>(std::move(stitched));
    result.progress = msg.progress;
    result.version = msg.version;
    result.refresh = msg.refresh;
    Emit(std::move(result));
    return;
  }

  // Selection-kernel filter: one popcount-sized selection vector drives
  // both the frame gather and the variance gather.
  std::vector<uint32_t> sel = Column::SelectionFrom(predicate_->Eval(in));
  Message result;
  result.frame = std::make_shared<DataFrame>(in.Take(sel));
  result.progress = msg.progress;
  result.version = msg.version;
  result.refresh = msg.refresh;
  if (options_.with_ci && msg.variances != nullptr) {
    auto out_vars = std::make_shared<VarianceMap>();
    for (const auto& [name, vars] : *msg.variances) {
      auto& dst = (*out_vars)[name];
      dst.reserve(sel.size());
      for (uint32_t i : sel) {
        if (i < vars.size()) dst.push_back(vars[i]);
      }
    }
    result.variances = std::move(out_vars);
  }
  Emit(std::move(result));
}

}  // namespace wake
