#include "core/growth.h"

#include <algorithm>
#include <cmath>

namespace wake {

void GrowthModel::Observe(double t, double mean_cardinality) {
  if (t <= 0.0 || t > 1.0 || mean_cardinality <= 0.0) return;
  double x = std::log(t);
  double y = std::log(mean_cardinality);
  ++n_;
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  sxy_ += x * y;
  syy_ += y * y;
}

bool GrowthModel::fitted() const {
  if (n_ < 2) return false;
  double den = static_cast<double>(n_) * sxx_ - sx_ * sx_;
  return den > 1e-12;
}

double GrowthModel::w() const {
  if (!fitted()) return 1.0;
  double n = static_cast<double>(n_);
  double slope = (n * sxy_ - sx_ * sy_) / (n * sxx_ - sx_ * sx_);
  return std::clamp(slope, 0.0, 3.0);
}

double GrowthModel::coefficient() const {
  if (!fitted()) return 1.0;
  double n = static_cast<double>(n_);
  double slope = (n * sxy_ - sx_ * sy_) / (n * sxx_ - sx_ * sx_);
  double intercept = (sy_ - slope * sx_) / n;
  return std::exp(intercept);
}

double GrowthModel::var_w() const {
  if (n_ < 3 || !fitted()) return 0.0;
  double n = static_cast<double>(n_);
  double sxx_c = sxx_ - sx_ * sx_ / n;  // centered
  double syy_c = syy_ - sy_ * sy_ / n;
  double sxy_c = sxy_ - sx_ * sy_ / n;
  double slope = sxy_c / sxx_c;
  double sse = syy_c - slope * sxy_c;
  if (sse < 0.0) sse = 0.0;
  double sigma2 = sse / (n - 2.0);
  return sigma2 / sxx_c;
}

void GrowthModel::Reset() {
  n_ = 0;
  sx_ = sy_ = sxx_ = sxy_ = syy_ = 0.0;
}

}  // namespace wake
