#include "core/join_kernel.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "common/worker_pool.h"

namespace wake {

namespace {

// Probe rows per morsel. The decomposition is a function of the input
// size only (never of the worker count), and per-morsel match vectors are
// concatenated in morsel order, so a parallel probe reproduces the serial
// row order bit-for-bit.
constexpr size_t kProbeMorselRows = 16 * 1024;
// Output rows per parallel-gather task.
constexpr size_t kGatherGrainRows = 64 * 1024;

// Translated probe code for a string absent from the build dict: such a
// row can never match (every build key is interned in the build dict).
// Distinct from Column::kNullCode, which marks genuine nulls.
constexpr int32_t kAbsentCode = -2;

// Thread-local code→chain-head memo for probes whose single string key
// carries build-dict codes (either because it shares the build side's
// dict, or after cross-dict unification translated it into build codes):
// the first probe of each distinct code pays one hash+slot walk, every
// later row is an array load. Validated against (table, build version,
// build dict object); codes within one dict object are append-only, so
// hits are never stale.
struct ProbeCodeCache {
  // Distinct from FlatHashIndex::kNil (a legitimate cached "no match").
  static constexpr uint32_t kUnresolved = 0xFFFFFFFEu;
  uint64_t table_id = 0;  // 0 == never filled
  uint64_t build_version = 0;
  uint64_t dict_id = 0;
  std::vector<uint32_t> heads;  // code -> chain head (kNil == no match)
  uint32_t null_head = kUnresolved;
};

// Thread-local probe-dict → build-dict code translation for cross-dict
// string joins: each distinct probe entry is resolved against the build
// dict once per (probe dict, build dict) pair instead of byte-comparing
// every candidate of every row. Both dicts are append-only, so cached
// translations never go stale; entries cached as absent are re-resolved
// when the build dict has grown.
struct DictRemapCache {
  uint64_t from_id = 0;  // 0 == never filled (dict ids start at 1)
  uint64_t to_id = 0;
  size_t to_size = 0;
  std::vector<int32_t> map;  // probe code -> build code / kAbsentCode
};

std::atomic<uint64_t> next_table_id{0};

// Translates the probe key column's codes into build-dict codes, reusing
// the thread-local remap. Returns a shadow column sharing the build dict
// (null rows normalized to kNullCode) for the shared-dict probe fast path.
Column TranslateProbeCodes(const Column& probe, const StringDict* build_dict,
                           const StringDictPtr& build_dict_ptr) {
  static thread_local DictRemapCache cache;
  const StringDict* from = probe.dict().get();
  if (cache.from_id != from->id() || cache.to_id != build_dict->id()) {
    cache.from_id = from->id();
    cache.to_id = build_dict->id();
    cache.to_size = build_dict->size();
    cache.map.clear();
  }
  if (cache.to_size != build_dict->size()) {
    // The build dict grew since entries were cached: strings recorded as
    // absent may exist now. Found entries can never change (append-only).
    for (size_t c = 0; c < cache.map.size(); ++c) {
      if (cache.map[c] != kAbsentCode) continue;
      int32_t b = build_dict->Find(from->At(static_cast<int32_t>(c)));
      if (b != StringDict::kNotFound) cache.map[c] = b;
    }
    cache.to_size = build_dict->size();
  }
  size_t known = cache.map.size();
  if (known < from->size()) {
    cache.map.resize(from->size());
    for (size_t c = known; c < from->size(); ++c) {
      int32_t b = build_dict->Find(from->At(static_cast<int32_t>(c)));
      cache.map[c] = b == StringDict::kNotFound ? kAbsentCode : b;
    }
  }

  const int32_t* pcodes = probe.codes().data();
  size_t n = probe.codes().size();
  std::vector<int32_t> tcodes(n);
  const bool nulls = probe.has_nulls();
  for (size_t r = 0; r < n; ++r) {
    int32_t pc = pcodes[r];
    tcodes[r] = (pc < 0 || (nulls && probe.IsNull(r))) ? Column::kNullCode
                                                       : cache.map[pc];
  }
  ValidityBitmap valid = probe.validity();  // copy; may be empty
  return Column::DictFromCodes(build_dict_ptr, std::move(tcodes),
                               std::move(valid));
}

// Shapes `dst` to hold `n` rows gathered from `src` (same type and
// encoding), with a writable all-valid mask when the gather can produce
// nulls. Parallel gather tasks then write disjoint row ranges.
void ShapeGatherDst(const Column& src, size_t n, bool may_null, Column* dst) {
  *dst = Column(src.type());
  switch (src.type()) {
    case ValueType::kFloat64:
      dst->mutable_doubles()->resize(n);
      break;
    case ValueType::kString:
      if (src.is_dict()) {
        dst->AdoptDict(src.dict());
        dst->mutable_codes()->resize(n);
      } else {
        dst->mutable_strings()->resize(n);
      }
      break;
    default:
      dst->mutable_ints()->resize(n);
      break;
  }
  if (may_null) dst->set_validity(ValidityBitmap::AllValid(n));
}

// dst rows [begin, end) = src rows idx[begin..end); rows with
// pad_valid[i] == 0 (left-join placeholders) are nulled. Mirrors
// Column::Take + SetNull semantics exactly.
void GatherRows(const Column& src, const uint32_t* idx,
                const uint8_t* pad_valid, size_t begin, size_t end,
                Column* dst) {
  switch (src.type()) {
    case ValueType::kFloat64: {
      const double* s = src.doubles().data();
      double* d = dst->mutable_doubles()->data();
      for (size_t i = begin; i < end; ++i) d[i] = s[idx[i]];
      break;
    }
    case ValueType::kString:
      if (src.is_dict()) {
        const int32_t* s = src.codes().data();
        int32_t* d = dst->mutable_codes()->data();
        for (size_t i = begin; i < end; ++i) d[i] = s[idx[i]];
      } else {
        const std::vector<std::string>& s = src.strings();
        std::vector<std::string>& d = *dst->mutable_strings();
        for (size_t i = begin; i < end; ++i) d[i] = s[idx[i]];
      }
      break;
    default: {
      const int64_t* s = src.ints().data();
      int64_t* d = dst->mutable_ints()->data();
      for (size_t i = begin; i < end; ++i) d[i] = s[idx[i]];
      break;
    }
  }
  if (!dst->has_nulls()) return;
  // Bitmap writes are clear-only into an all-valid mask. Gather ranges
  // are kGatherGrainRows-aligned — a multiple of 64 — so parallel tasks
  // never share a validity word.
  uint64_t* dw = dst->mutable_validity()->mutable_words();
  const ValidityBitmap* sv = src.has_nulls() ? &src.validity() : nullptr;
  for (size_t i = begin; i < end; ++i) {
    const bool row_valid = (sv == nullptr || sv->Get(idx[i])) &&
                           (pad_valid == nullptr || pad_valid[i] != 0);
    if (!row_valid) dw[i >> 6] &= ~(1ULL << (i & 63));
  }
}

}  // namespace

JoinHashTable::JoinHashTable(const Schema& right_schema,
                             std::vector<std::string> right_keys)
    : right_schema_(right_schema),
      right_keys_(std::move(right_keys)),
      build_(right_schema),
      table_id_(++next_table_id) {
  for (const auto& k : right_keys_) {
    key_cols_.push_back(right_schema_.FieldIndex(k));
  }
}

void JoinHashTable::Reserve(size_t expected_rows) {
  index_.Reserve(expected_rows);
}

void JoinHashTable::Insert(const DataFrame& right_partial,
                           const VarianceMap* variances) {
  ++build_version_;
  size_t base = build_.num_rows();
  build_.Append(right_partial);
  if (variances != nullptr) {
    for (const auto& [col, vars] : *variances) {
      auto& dst = build_vars_[col];
      dst.resize(base, 0.0);
      dst.insert(dst.end(), vars.begin(), vars.end());
    }
  }
  if (key_cols_.empty()) return;  // cross join: no index needed
  // The incoming partial holds exactly the appended rows, so hash it
  // column-at-a-time instead of re-reading the accumulated build frame.
  static thread_local std::vector<uint64_t> hashes;
  right_partial.HashRowsBatch(key_cols_, &hashes);
  for (size_t r = 0; r < hashes.size(); ++r) {
    index_.Insert(hashes[r], static_cast<uint32_t>(base + r));
  }
}

void JoinHashTable::Reset() {
  ++build_version_;
  build_ = DataFrame(right_schema_);
  build_vars_.clear();
  index_.Reset();
}

void JoinHashTable::MatchRange(const DataFrame& left,
                               const std::vector<size_t>& lcols,
                               const KeyEq& eq, const Column* dict_key,
                               JoinType type, size_t begin, size_t end,
                               std::vector<uint32_t>* lrows,
                               std::vector<uint32_t>* rrows,
                               std::vector<uint8_t>* rvalid) const {
  const bool pad = type == JoinType::kLeft;
  size_t n = end - begin;
  lrows->reserve(lrows->size() + n);
  if (type == JoinType::kInner || pad) {
    rrows->reserve(rrows->size() + n);
    if (pad) rvalid->reserve(rvalid->size() + n);
  }

  // Pipelined probe: resolve every row's chain head first (slot array
  // prefetched ahead), then verify keys and emit matches with the chain
  // arena and build-side key rows prefetched ahead.
  constexpr size_t kPrefetchAhead = 8;
  static thread_local std::vector<uint32_t> heads;
  heads.resize(n);
  if (dict_key != nullptr) {
    // Build-dict codes (shared dict, or cross-dict translated): chain
    // heads come from the per-thread code memo; only first-seen codes
    // touch the hash index.
    static thread_local ProbeCodeCache cache;
    const StringDict* d = build_.column(key_cols_[0]).dict().get();
    if (cache.table_id != table_id_ ||
        cache.build_version != build_version_ || cache.dict_id != d->id()) {
      cache.table_id = table_id_;
      cache.build_version = build_version_;
      cache.dict_id = d->id();
      cache.heads.assign(d->size(), ProbeCodeCache::kUnresolved);
      cache.null_head = ProbeCodeCache::kUnresolved;
    } else if (cache.heads.size() < d->size()) {
      cache.heads.resize(d->size(), ProbeCodeCache::kUnresolved);
    }
    const int32_t* codes = dict_key->codes().data();
    const bool nulls = dict_key->has_nulls();
    for (size_t r = begin; r < end; ++r) {
      if (nulls && dict_key->IsNull(r)) {
        if (cache.null_head == ProbeCodeCache::kUnresolved) {
          cache.null_head = index_.Find(left.HashRowKeys(lcols, r));
        }
        heads[r - begin] = cache.null_head;
        continue;
      }
      int32_t code = codes[r];
      if (code < 0) {
        // kAbsentCode: interned nowhere on the build side, no match.
        heads[r - begin] = FlatHashIndex::kNil;
        continue;
      }
      uint32_t head = cache.heads[code];
      if (head == ProbeCodeCache::kUnresolved) {
        head = index_.Find(left.HashRowKeys(lcols, r));
        cache.heads[code] = head;
      }
      heads[r - begin] = head;
    }
  } else {
    static thread_local std::vector<uint64_t> hashes;
    left.HashRowsBatchRange(lcols, begin, end, &hashes);
    for (size_t i = 0; i < n; ++i) {
      if (i + kPrefetchAhead < n) {
        index_.Prefetch(hashes[i + kPrefetchAhead]);
      }
      heads[i] = index_.Find(hashes[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      uint32_t ahead = heads[i + kPrefetchAhead];
      if (ahead != FlatHashIndex::kNil) {
        index_.PrefetchChain(ahead);
        eq.PrefetchRight(ahead);
      }
    }
    size_t r = begin + i;
    bool matched = false;
    for (uint32_t cand = heads[i]; cand != FlatHashIndex::kNil;
         cand = index_.Next(cand)) {
      // Verify the real keys: chains hold every row whose 64-bit hash
      // collided, and distinct keys must not merge.
      if (!eq.Equal(r, cand)) continue;
      matched = true;
      if (type == JoinType::kInner || pad) {
        lrows->push_back(static_cast<uint32_t>(r));
        rrows->push_back(cand);
        if (pad) rvalid->push_back(1);
      } else {
        break;  // semi/anti only need existence
      }
    }
    if (type == JoinType::kSemi && matched) {
      lrows->push_back(static_cast<uint32_t>(r));
    } else if (type == JoinType::kAnti && !matched) {
      lrows->push_back(static_cast<uint32_t>(r));
    } else if (pad && !matched) {
      lrows->push_back(static_cast<uint32_t>(r));
      rrows->push_back(0);  // placeholder row; nulled in the gather
      rvalid->push_back(0);
    }
  }
}

DataFrame JoinHashTable::Probe(const DataFrame& left,
                               const std::vector<std::string>& left_keys,
                               JoinType type, const Schema& out_schema,
                               const VarianceMap* left_vars,
                               VarianceMap* out_vars,
                               WorkerPool* pool) const {
  CheckArg(type == JoinType::kCross || !key_cols_.empty(),
           "hash join requires keys for non-cross joins");
  std::vector<size_t> lcols = left.ColumnIndices(left_keys);
  size_t n = left.num_rows();

  // Phase 1: match selection vectors. `rvalid` (left joins only) marks
  // which rrows entries are real matches vs null-padded placeholders.
  // Thread-local scratch: probes run once per partial, and re-faulting
  // multi-MB vectors on every call costs more than the probe itself.
  static thread_local std::vector<uint32_t> lrows;
  static thread_local std::vector<uint32_t> rrows;
  static thread_local std::vector<uint8_t> rvalid;
  lrows.clear();
  rrows.clear();
  rvalid.clear();

  size_t morsels = (n + kProbeMorselRows - 1) / kProbeMorselRows;
  const bool parallel =
      pool != nullptr && pool->workers() > 1 && morsels > 1 &&
      type != JoinType::kCross;

  if (type == JoinType::kCross) {
    CheckArg(build_.num_rows() <= 1,
             "cross join build side must produce at most one row");
    if (build_.num_rows() == 1) {
      lrows.resize(n);
      rrows.assign(n, 0);
      for (size_t i = 0; i < n; ++i) lrows[i] = static_cast<uint32_t>(i);
    }
  } else {
    // Dict fast path: single string key carrying build-dict codes. A key
    // sharing the build dict is used as-is; a key over a different dict
    // is unified by translating its codes into the build dict once per
    // partial (the shadow column), so candidate verification stays a
    // code compare instead of per-candidate byte comparison.
    const Column* dict_key = nullptr;
    Column shadow;  // owns translated codes while probing
    if (lcols.size() == 1 && build_.num_rows() > 0) {
      const Column& lkc = left.column(lcols[0]);
      const Column& bkc = build_.column(key_cols_[0]);
      if (lkc.is_dict() && bkc.is_dict()) {
        if (lkc.dict().get() == bkc.dict().get()) {
          dict_key = &lkc;
        } else {
          shadow = TranslateProbeCodes(lkc, bkc.dict().get(), bkc.dict());
          dict_key = &shadow;
        }
      }
    }
    KeyEq eq = dict_key != nullptr
                   ? KeyEq(*dict_key, build_.column(key_cols_[0]))
                   : KeyEq(left, lcols, build_, key_cols_);
    if (!parallel) {
      MatchRange(left, lcols, eq, dict_key, type, 0, n, &lrows, &rrows,
                 &rvalid);
    } else {
      // Per-morsel match vectors, stitched in morsel order: identical to
      // the serial single pass at any worker count.
      struct Matches {
        std::vector<uint32_t> lrows, rrows;
        std::vector<uint8_t> rvalid;
      };
      std::vector<Matches> parts(morsels);
      pool->ParallelFor(n, kProbeMorselRows, [&](size_t b, size_t e) {
        Matches& m = parts[b / kProbeMorselRows];
        MatchRange(left, lcols, eq, dict_key, type, b, e, &m.lrows,
                   &m.rrows, &m.rvalid);
      });
      size_t totl = 0, totr = 0, totv = 0;
      std::vector<size_t> offl(morsels), offr(morsels), offv(morsels);
      for (size_t m = 0; m < morsels; ++m) {
        offl[m] = totl;
        offr[m] = totr;
        offv[m] = totv;
        totl += parts[m].lrows.size();
        totr += parts[m].rrows.size();
        totv += parts[m].rvalid.size();
      }
      lrows.resize(totl);
      rrows.resize(totr);
      rvalid.resize(totv);
      // Snapshot the data pointers on this thread: thread_local names are
      // not captured by lambdas, so referencing the vectors inside the
      // pool-executed body would resolve to the pool thread's instances.
      uint32_t* lp = lrows.data();
      uint32_t* rp = rrows.data();
      uint8_t* vp = rvalid.data();
      pool->ParallelShards(morsels, [&, lp, rp, vp](size_t m) {
        std::copy(parts[m].lrows.begin(), parts[m].lrows.end(),
                  lp + offl[m]);
        std::copy(parts[m].rrows.begin(), parts[m].rrows.end(),
                  rp + offr[m]);
        std::copy(parts[m].rvalid.begin(), parts[m].rvalid.end(),
                  vp + offv[m]);
      });
    }
  }

  // Phase 2: gather output columns from the selection vectors — left
  // columns by lrows, right columns (minus join keys) by rrows.
  DataFrame out(out_schema);
  const bool build_empty = build_.num_rows() == 0;
  const bool right_cols_out =
      type != JoinType::kSemi && type != JoinType::kAnti;

  struct GatherJob {
    const Column* src;
    const uint32_t* idx;
    const uint8_t* pad_valid;
    size_t out_col;
  };
  std::vector<GatherJob> jobs;
  for (size_t col = 0; col < left.num_columns(); ++col) {
    jobs.push_back({&left.column(col), lrows.data(), nullptr, col});
  }
  if (right_cols_out && !build_empty) {
    size_t col = left.num_columns();
    const uint8_t* pv = rvalid.empty() ? nullptr : rvalid.data();
    for (size_t rc = 0; rc < build_.num_columns(); ++rc) {
      if (std::find(key_cols_.begin(), key_cols_.end(), rc) !=
          key_cols_.end()) {
        continue;
      }
      jobs.push_back({&build_.column(rc), rrows.data(), pv, col});
      ++col;
    }
  }

  size_t out_rows = lrows.size();
  if (parallel && out_rows >= kGatherGrainRows) {
    // Parallel gather into pre-shaped columns: tasks are (column,
    // output-row-range) pairs writing disjoint ranges.
    for (const GatherJob& j : jobs) {
      ShapeGatherDst(*j.src, out_rows,
                     j.src->has_nulls() || j.pad_valid != nullptr,
                     out.mutable_column(j.out_col));
    }
    size_t ranges = (out_rows + kGatherGrainRows - 1) / kGatherGrainRows;
    pool->ParallelShards(jobs.size() * ranges, [&](size_t t) {
      const GatherJob& j = jobs[t / ranges];
      size_t r = t % ranges;
      size_t b = r * kGatherGrainRows;
      size_t e = std::min(b + kGatherGrainRows, out_rows);
      GatherRows(*j.src, j.idx, j.pad_valid, b, e,
                 out.mutable_column(j.out_col));
    });
    for (const GatherJob& j : jobs) {
      out.mutable_column(j.out_col)->CompactValidity();
    }
  } else {
    for (const GatherJob& j : jobs) {
      // The selection vectors already exist; hand them to Take directly.
      Column dst = j.src->Take(j.idx == lrows.data() ? lrows : rrows);
      if (j.pad_valid != nullptr) {
        for (size_t i = 0; i < out_rows; ++i) {
          if (j.pad_valid[i] == 0) dst.SetNull(i);
        }
      }
      *out.mutable_column(j.out_col) = std::move(dst);
    }
  }
  if (right_cols_out && build_empty) {
    // Placeholder index 0 has nothing to gather; pad all-null rows.
    size_t col = left.num_columns();
    for (size_t rc = 0; rc < build_.num_columns(); ++rc) {
      if (std::find(key_cols_.begin(), key_cols_.end(), rc) !=
          key_cols_.end()) {
        continue;
      }
      Column dst(build_.column(rc).type());
      for (size_t i = 0; i < rrows.size(); ++i) dst.AppendNull();
      *out.mutable_column(col) = std::move(dst);
      ++col;
    }
  }

  // Variance gather for CI mode.
  if (out_vars != nullptr) {
    if (left_vars != nullptr) {
      for (const auto& [name, vars] : *left_vars) {
        if (!out_schema.HasField(name)) continue;
        auto& dst = (*out_vars)[name];
        dst.reserve(lrows.size());
        for (uint32_t lr : lrows) {
          dst.push_back(lr < vars.size() ? vars[lr] : 0.0);
        }
      }
    }
    if (!build_vars_.empty() && type != JoinType::kSemi &&
        type != JoinType::kAnti) {
      for (const auto& [name, vars] : build_vars_) {
        if (!out_schema.HasField(name)) continue;
        auto& dst = (*out_vars)[name];
        dst.reserve(rrows.size());
        for (size_t i = 0; i < rrows.size(); ++i) {
          bool valid = rvalid.empty() || rvalid[i] != 0;
          dst.push_back(valid && rrows[i] < vars.size() ? vars[rrows[i]]
                                                        : 0.0);
        }
      }
    }
  }
  return out;
}

DataFrame HashJoin(const DataFrame& left, const DataFrame& right,
                   const std::vector<std::string>& left_keys,
                   const std::vector<std::string>& right_keys, JoinType type,
                   const Schema& out_schema) {
  JoinHashTable table(right.schema(), right_keys);
  table.Reserve(right.num_rows());
  table.Insert(right);
  return table.Probe(left, left_keys, type, out_schema);
}

}  // namespace wake
