#include "core/join_kernel.h"

#include <algorithm>

#include "common/error.h"

namespace wake {

JoinHashTable::JoinHashTable(const Schema& right_schema,
                             std::vector<std::string> right_keys)
    : right_schema_(right_schema),
      right_keys_(std::move(right_keys)),
      build_(right_schema) {
  for (const auto& k : right_keys_) {
    key_cols_.push_back(right_schema_.FieldIndex(k));
  }
}

void JoinHashTable::Insert(const DataFrame& right_partial,
                           const VarianceMap* variances) {
  size_t base = build_.num_rows();
  build_.Append(right_partial);
  if (variances != nullptr) {
    for (const auto& [col, vars] : *variances) {
      auto& dst = build_vars_[col];
      dst.resize(base, 0.0);
      dst.insert(dst.end(), vars.begin(), vars.end());
    }
  }
  for (size_t r = base; r < build_.num_rows(); ++r) {
    index_[build_.HashRowKeys(key_cols_, r)].push_back(
        static_cast<uint32_t>(r));
  }
}

void JoinHashTable::Reset() {
  build_ = DataFrame(right_schema_);
  build_vars_.clear();
  index_.clear();
}

DataFrame JoinHashTable::Probe(const DataFrame& left,
                               const std::vector<std::string>& left_keys,
                               JoinType type, const Schema& out_schema,
                               const VarianceMap* left_vars,
                               VarianceMap* out_vars) const {
  std::vector<size_t> lcols = left.ColumnIndices(left_keys);
  size_t n = left.num_rows();

  // Row-pair lists; right == -1 encodes a null-padded (left join) row.
  std::vector<uint32_t> lrows;
  std::vector<int64_t> rrows;

  if (type == JoinType::kCross) {
    CheckArg(build_.num_rows() <= 1,
             "cross join build side must produce at most one row");
    if (build_.num_rows() == 1) {
      lrows.resize(n);
      rrows.assign(n, 0);
      for (size_t i = 0; i < n; ++i) lrows[i] = static_cast<uint32_t>(i);
    }
  } else {
    lrows.reserve(n);
    rrows.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      uint64_t h = left.HashRowKeys(lcols, r);
      auto it = index_.find(h);
      bool matched = false;
      if (it != index_.end()) {
        for (uint32_t cand : it->second) {
          if (left.KeysEqual(lcols, r, build_, key_cols_, cand)) {
            matched = true;
            if (type == JoinType::kInner || type == JoinType::kLeft) {
              lrows.push_back(static_cast<uint32_t>(r));
              rrows.push_back(cand);
            } else {
              break;  // semi/anti only need existence
            }
          }
        }
      }
      if (type == JoinType::kSemi && matched) {
        lrows.push_back(static_cast<uint32_t>(r));
      } else if (type == JoinType::kAnti && !matched) {
        lrows.push_back(static_cast<uint32_t>(r));
      } else if (type == JoinType::kLeft && !matched) {
        lrows.push_back(static_cast<uint32_t>(r));
        rrows.push_back(-1);
      }
    }
  }

  // Assemble output columns: left columns gathered by lrows, then right
  // columns (minus join keys) gathered by rrows.
  DataFrame out(out_schema);
  size_t col = 0;
  for (; col < left.num_columns(); ++col) {
    *out.mutable_column(col) = left.column(col).Take(lrows);
  }
  if (type != JoinType::kSemi && type != JoinType::kAnti) {
    for (size_t rc = 0; rc < build_.num_columns(); ++rc) {
      if (std::find(key_cols_.begin(), key_cols_.end(), rc) !=
          key_cols_.end()) {
        continue;
      }
      const Column& src = build_.column(rc);
      Column dst(src.type());
      dst.Reserve(rrows.size());
      // Typed gather loops (GetValue/AppendValue per row would allocate).
      for (int64_t rr : rrows) {
        if (rr < 0 || src.IsNull(static_cast<size_t>(rr))) {
          dst.AppendNull();
        } else if (src.type() == ValueType::kString) {
          dst.AppendString(src.StringAt(static_cast<size_t>(rr)));
        } else if (src.type() == ValueType::kFloat64) {
          dst.AppendDouble(src.doubles()[static_cast<size_t>(rr)]);
        } else {
          dst.AppendInt(src.ints()[static_cast<size_t>(rr)]);
        }
      }
      *out.mutable_column(col) = std::move(dst);
      ++col;
    }
  }

  // Variance gather for CI mode.
  if (out_vars != nullptr) {
    if (left_vars != nullptr) {
      for (const auto& [name, vars] : *left_vars) {
        if (!out_schema.HasField(name)) continue;
        auto& dst = (*out_vars)[name];
        dst.reserve(lrows.size());
        for (uint32_t lr : lrows) {
          dst.push_back(lr < vars.size() ? vars[lr] : 0.0);
        }
      }
    }
    if (!build_vars_.empty() && type != JoinType::kSemi &&
        type != JoinType::kAnti) {
      for (const auto& [name, vars] : build_vars_) {
        if (!out_schema.HasField(name)) continue;
        auto& dst = (*out_vars)[name];
        dst.reserve(rrows.size());
        for (int64_t rr : rrows) {
          dst.push_back(rr >= 0 && static_cast<size_t>(rr) < vars.size()
                            ? vars[static_cast<size_t>(rr)]
                            : 0.0);
        }
      }
    }
  }
  return out;
}

DataFrame HashJoin(const DataFrame& left, const DataFrame& right,
                   const std::vector<std::string>& left_keys,
                   const std::vector<std::string>& right_keys, JoinType type,
                   const Schema& out_schema) {
  JoinHashTable table(right.schema(), right_keys);
  table.Insert(right);
  return table.Probe(left, left_keys, type, out_schema);
}

}  // namespace wake
