#include "core/join_kernel.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"

namespace wake {

namespace {

// Thread-local code→chain-head memo for probes whose single string key
// shares the build side's dict: the first probe of each distinct code pays
// one hash+slot walk, every later row is an array load. Validated against
// (table, build version, dict object); codes within one dict object are
// append-only, so hits are never stale.
struct ProbeCodeCache {
  // Distinct from FlatHashIndex::kNil (a legitimate cached "no match").
  static constexpr uint32_t kUnresolved = 0xFFFFFFFEu;
  uint64_t table_id = 0;  // 0 == never filled
  uint64_t build_version = 0;
  const StringDict* dict = nullptr;
  std::vector<uint32_t> heads;  // code -> chain head (kNil == no match)
  uint32_t null_head = kUnresolved;
};

std::atomic<uint64_t> next_table_id{0};

}  // namespace

JoinHashTable::JoinHashTable(const Schema& right_schema,
                             std::vector<std::string> right_keys)
    : right_schema_(right_schema),
      right_keys_(std::move(right_keys)),
      build_(right_schema),
      table_id_(++next_table_id) {
  for (const auto& k : right_keys_) {
    key_cols_.push_back(right_schema_.FieldIndex(k));
  }
}

void JoinHashTable::Reserve(size_t expected_rows) {
  index_.Reserve(expected_rows);
}

void JoinHashTable::Insert(const DataFrame& right_partial,
                           const VarianceMap* variances) {
  ++build_version_;
  size_t base = build_.num_rows();
  build_.Append(right_partial);
  if (variances != nullptr) {
    for (const auto& [col, vars] : *variances) {
      auto& dst = build_vars_[col];
      dst.resize(base, 0.0);
      dst.insert(dst.end(), vars.begin(), vars.end());
    }
  }
  if (key_cols_.empty()) return;  // cross join: no index needed
  // The incoming partial holds exactly the appended rows, so hash it
  // column-at-a-time instead of re-reading the accumulated build frame.
  static thread_local std::vector<uint64_t> hashes;
  right_partial.HashRowsBatch(key_cols_, &hashes);
  for (size_t r = 0; r < hashes.size(); ++r) {
    index_.Insert(hashes[r], static_cast<uint32_t>(base + r));
  }
}

void JoinHashTable::Reset() {
  ++build_version_;
  build_ = DataFrame(right_schema_);
  build_vars_.clear();
  index_.Reset();
}

DataFrame JoinHashTable::Probe(const DataFrame& left,
                               const std::vector<std::string>& left_keys,
                               JoinType type, const Schema& out_schema,
                               const VarianceMap* left_vars,
                               VarianceMap* out_vars) const {
  CheckArg(type == JoinType::kCross || !key_cols_.empty(),
           "hash join requires keys for non-cross joins");
  std::vector<size_t> lcols = left.ColumnIndices(left_keys);
  size_t n = left.num_rows();

  // Phase 1: match selection vectors. `rvalid` (left joins only) marks
  // which rrows entries are real matches vs null-padded placeholders.
  // Thread-local scratch: probes run once per partial, and re-faulting
  // multi-MB vectors on every call costs more than the probe itself.
  static thread_local std::vector<uint32_t> lrows;
  static thread_local std::vector<uint32_t> rrows;
  static thread_local std::vector<uint8_t> rvalid;
  lrows.clear();
  rrows.clear();
  rvalid.clear();
  const bool pad = type == JoinType::kLeft;

  if (type == JoinType::kCross) {
    CheckArg(build_.num_rows() <= 1,
             "cross join build side must produce at most one row");
    if (build_.num_rows() == 1) {
      lrows.resize(n);
      rrows.assign(n, 0);
      for (size_t i = 0; i < n; ++i) lrows[i] = static_cast<uint32_t>(i);
    }
  } else {
    KeyEq eq(left, lcols, build_, key_cols_);
    lrows.reserve(n);
    if (type == JoinType::kInner || pad) {
      rrows.reserve(n);
      if (pad) rvalid.reserve(n);
    }
    // Pipelined probe: resolve every row's chain head first (slot array
    // prefetched ahead), then verify keys and emit matches with the chain
    // arena and build-side key rows prefetched ahead.
    constexpr size_t kPrefetchAhead = 8;
    static thread_local std::vector<uint32_t> heads;
    heads.resize(n);
    const Column* dict_key = nullptr;
    if (lcols.size() == 1) {
      const Column& lkc = left.column(lcols[0]);
      const Column& bkc = build_.column(key_cols_[0]);
      if (lkc.is_dict() && lkc.dict().get() == bkc.dict().get()) {
        dict_key = &lkc;
      }
    }
    if (dict_key != nullptr) {
      // Shared-dict string key: chain heads come from the code memo; only
      // first-seen codes touch the hash index.
      static thread_local ProbeCodeCache cache;
      const StringDict* d = dict_key->dict().get();
      if (cache.table_id != table_id_ ||
          cache.build_version != build_version_ || cache.dict != d) {
        cache.table_id = table_id_;
        cache.build_version = build_version_;
        cache.dict = d;
        cache.heads.assign(d->size(), ProbeCodeCache::kUnresolved);
        cache.null_head = ProbeCodeCache::kUnresolved;
      } else if (cache.heads.size() < d->size()) {
        cache.heads.resize(d->size(), ProbeCodeCache::kUnresolved);
      }
      const int32_t* codes = dict_key->codes().data();
      const bool nulls = dict_key->has_nulls();
      for (size_t r = 0; r < n; ++r) {
        if (nulls && dict_key->IsNull(r)) {
          if (cache.null_head == ProbeCodeCache::kUnresolved) {
            cache.null_head = index_.Find(left.HashRowKeys(lcols, r));
          }
          heads[r] = cache.null_head;
          continue;
        }
        uint32_t head = cache.heads[codes[r]];
        if (head == ProbeCodeCache::kUnresolved) {
          head = index_.Find(left.HashRowKeys(lcols, r));
          cache.heads[codes[r]] = head;
        }
        heads[r] = head;
      }
    } else {
      static thread_local std::vector<uint64_t> hashes;
      left.HashRowsBatch(lcols, &hashes);
      for (size_t r = 0; r < n; ++r) {
        if (r + kPrefetchAhead < n) {
          index_.Prefetch(hashes[r + kPrefetchAhead]);
        }
        heads[r] = index_.Find(hashes[r]);
      }
    }
    for (size_t r = 0; r < n; ++r) {
      if (r + kPrefetchAhead < n) {
        uint32_t ahead = heads[r + kPrefetchAhead];
        if (ahead != FlatHashIndex::kNil) {
          index_.PrefetchChain(ahead);
          eq.PrefetchRight(ahead);
        }
      }
      bool matched = false;
      for (uint32_t cand = heads[r]; cand != FlatHashIndex::kNil;
           cand = index_.Next(cand)) {
        // Verify the real keys: chains hold every row whose 64-bit hash
        // collided, and distinct keys must not merge.
        if (!eq.Equal(r, cand)) continue;
        matched = true;
        if (type == JoinType::kInner || pad) {
          lrows.push_back(static_cast<uint32_t>(r));
          rrows.push_back(cand);
          if (pad) rvalid.push_back(1);
        } else {
          break;  // semi/anti only need existence
        }
      }
      if (type == JoinType::kSemi && matched) {
        lrows.push_back(static_cast<uint32_t>(r));
      } else if (type == JoinType::kAnti && !matched) {
        lrows.push_back(static_cast<uint32_t>(r));
      } else if (pad && !matched) {
        lrows.push_back(static_cast<uint32_t>(r));
        rrows.push_back(0);  // placeholder row; nulled in the gather
        rvalid.push_back(0);
      }
    }
  }

  // Phase 2: gather output columns from the selection vectors — left
  // columns by lrows, right columns (minus join keys) by rrows.
  DataFrame out(out_schema);
  size_t col = 0;
  for (; col < left.num_columns(); ++col) {
    *out.mutable_column(col) = left.column(col).Take(lrows);
  }
  if (type != JoinType::kSemi && type != JoinType::kAnti) {
    const bool build_empty = build_.num_rows() == 0;
    for (size_t rc = 0; rc < build_.num_columns(); ++rc) {
      if (std::find(key_cols_.begin(), key_cols_.end(), rc) !=
          key_cols_.end()) {
        continue;
      }
      const Column& src = build_.column(rc);
      Column dst(src.type());
      if (build_empty) {
        // Placeholder index 0 has nothing to gather; pad all-null rows.
        for (size_t i = 0; i < rrows.size(); ++i) dst.AppendNull();
      } else {
        dst = src.Take(rrows);
        for (size_t i = 0; i < rvalid.size(); ++i) {
          if (rvalid[i] == 0) dst.SetNull(i);
        }
      }
      *out.mutable_column(col) = std::move(dst);
      ++col;
    }
  }

  // Variance gather for CI mode.
  if (out_vars != nullptr) {
    if (left_vars != nullptr) {
      for (const auto& [name, vars] : *left_vars) {
        if (!out_schema.HasField(name)) continue;
        auto& dst = (*out_vars)[name];
        dst.reserve(lrows.size());
        for (uint32_t lr : lrows) {
          dst.push_back(lr < vars.size() ? vars[lr] : 0.0);
        }
      }
    }
    if (!build_vars_.empty() && type != JoinType::kSemi &&
        type != JoinType::kAnti) {
      for (const auto& [name, vars] : build_vars_) {
        if (!out_schema.HasField(name)) continue;
        auto& dst = (*out_vars)[name];
        dst.reserve(rrows.size());
        for (size_t i = 0; i < rrows.size(); ++i) {
          bool valid = rvalid.empty() || rvalid[i] != 0;
          dst.push_back(valid && rrows[i] < vars.size() ? vars[rrows[i]]
                                                        : 0.0);
        }
      }
    }
  }
  return out;
}

DataFrame HashJoin(const DataFrame& left, const DataFrame& right,
                   const std::vector<std::string>& left_keys,
                   const std::vector<std::string>& right_keys, JoinType type,
                   const Schema& out_schema) {
  JoinHashTable table(right.schema(), right_keys);
  table.Reserve(right.num_rows());
  table.Insert(right);
  return table.Probe(left, left_keys, type, out_schema);
}

}  // namespace wake
