// Evolving data frames: the user-facing Deep-OLA API (§3 of the paper).
//
// An Edf is a handle to a (lazily built) operator graph over evolving
// data. Because edfs are closed under the set operations below, any
// operation on an Edf yields another Edf — the core contribution of the
// paper. Execution is started explicitly with Run(), which returns a live
// EdfResult whose Get() exposes the latest converging state and whose
// GetFinal() blocks for the exact answer, mirroring edf.get() /
// edf.get_final() in §3.1.
//
// Example (the paper's §1 session / TPC-H Q18):
//
//   EdfSession session(&catalog);
//   Edf lineitem   = session.Read("lineitem");
//   Edf order_qty  = lineitem.Sum("l_quantity", {"l_orderkey"});
//   Edf lg_orders  = order_qty.Filter(Gt(Expr::Col("sum_l_quantity"),
//                                        Expr::Float(300)));
//   Edf top_cust   = lg_orders.Join(session.Read("orders"),
//                                   {"l_orderkey"}, {"o_orderkey"})
//                        .Join(session.Read("customer"),
//                              {"o_custkey"}, {"c_custkey"})
//                        .Sum("sum_l_quantity", {"c_name"})
//                        .Sort({{"sum_sum_l_quantity", true}}, 100);
//   EdfResult live = top_cust.Run();
//   ... live.Get() ...            // converging estimates
//   DataFrame exact = live.GetFinal();
#ifndef WAKE_CORE_EDF_H_
#define WAKE_CORE_EDF_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "core/engine.h"
#include "tpch/dbgen.h"

namespace wake {

class Edf;

/// Owns the catalog/engine binding for a set of edfs.
class EdfSession {
 public:
  explicit EdfSession(const Catalog* catalog, WakeOptions options = {});

  /// Creates an edf directly from a data source (§3.1 "read").
  Edf Read(const std::string& table) const;

  const Catalog* catalog() const { return catalog_; }
  const WakeOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  WakeOptions options_;
};

/// A live, running query: a stream of converging states.
class EdfResult {
 public:
  ~EdfResult();
  EdfResult(EdfResult&&) noexcept;
  EdfResult& operator=(EdfResult&&) = delete;

  /// Latest state (null before the first state arrives).
  DataFramePtr Get() const;

  /// True once the latest state holds the final answer (§3.1 is_final).
  bool is_final() const;

  /// Progress t of the latest state.
  double progress() const;

  /// Number of states observed so far.
  size_t num_states() const;

  /// Blocks until processing completes, then returns the exact answer.
  DataFrame GetFinal();

 private:
  friend class Edf;
  EdfResult() = default;

  struct Shared {
    mutable std::mutex mu;
    DataFramePtr latest;
    double progress = 0.0;
    size_t states = 0;
    std::atomic<bool> final_flag{false};
  };
  std::shared_ptr<Shared> shared_;
  std::unique_ptr<WakeEngine> engine_;
  std::thread worker_;
};

/// An evolving data frame (closed under the operations below).
class Edf {
 public:
  /// --- the §3.2 operation set ---
  Edf Map(std::vector<NamedExpr> projections) const;
  Edf Derive(std::vector<NamedExpr> projections) const;
  Edf Project(const std::vector<std::string>& columns) const;
  Edf Filter(ExprPtr predicate) const;
  Edf Join(const Edf& right, std::vector<std::string> left_keys,
           std::vector<std::string> right_keys,
           JoinType type = JoinType::kInner) const;
  Edf Agg(std::vector<std::string> by, std::vector<AggSpec> aggs) const;
  Edf Sort(std::vector<SortKey> keys, size_t limit = 0) const;

  /// Aggregation sugar; output columns are named `<fn>_<col>`.
  Edf Sum(const std::string& col, std::vector<std::string> by) const;
  Edf CountBy(std::vector<std::string> by) const;
  Edf Avg(const std::string& col, std::vector<std::string> by) const;
  Edf Min(const std::string& col, std::vector<std::string> by) const;
  Edf Max(const std::string& col, std::vector<std::string> by) const;
  Edf CountDistinct(const std::string& col,
                    std::vector<std::string> by) const;

  /// Starts OLA execution, returning a live result handle.
  EdfResult Run() const;

  /// Runs to completion with a per-state callback (blocking).
  void Subscribe(const StateCallback& on_state) const;

  /// Shortcut: run to completion and return the exact answer.
  DataFrame GetFinal() const;

  const Plan& plan() const { return plan_; }

 private:
  friend class EdfSession;
  Edf(const EdfSession* session, Plan plan)
      : session_(session), plan_(std::move(plan)) {}

  const EdfSession* session_;
  Plan plan_;
};

}  // namespace wake

#endif  // WAKE_CORE_EDF_H_
