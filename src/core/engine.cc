#include "core/engine.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/worker_pool.h"

namespace wake {

WakeEngine::WakeEngine(const Catalog* catalog, WakeOptions options)
    : catalog_(catalog), options_(options) {
  CheckArg(catalog != nullptr, "null catalog");
  if (options_.workers == 0) {
    // Process-wide pool; skip it entirely when it would be serial anyway.
    if (WorkerPool::DefaultWorkers() > 1) pool_ = &WorkerPool::Global();
  } else if (options_.workers > 1) {
    owned_pool_ = std::make_unique<WorkerPool>(options_.workers);
    pool_ = owned_pool_.get();
  }
}

WakeEngine::Compiled WakeEngine::CompileRec(
    const PlanNodePtr& plan,
    std::vector<std::unique_ptr<ExecNode>>* nodes,
    CompileMemo* memo) const {
  // Shared-subplan reuse (§7.3): a PlanNode object reachable through
  // several parents compiles to one ExecNode with broadcast outputs.
  if (options_.share_subplans) {
    auto it = memo->find(plan.get());
    if (it != memo->end()) return it->second;
  }
  Compiled out;
  out.props = InferProps(plan, *catalog_);
  NodeOptions node_options;
  node_options.with_ci = options_.with_ci;
  node_options.fixed_growth_w = options_.fixed_growth_w;
  node_options.pool = pool_;

  switch (plan->op) {
    case PlanOp::kScan: {
      // Projected scan: the reader narrows each partition as it streams,
      // so downstream nodes only ever gather the columns the plan needs
      // and no full-table narrowed copy is ever held.
      nodes->push_back(std::make_unique<ReaderNode>(
          catalog_->GetPtr(plan->table), node_options, plan->columns));
      break;
    }
    case PlanOp::kMap: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      nodes->push_back(std::make_unique<MapNode>(
          *plan, in.props.schema, out.props.schema, node_options));
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
    case PlanOp::kFilter: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      nodes->push_back(std::make_unique<FilterNode>(
          plan->predicate, in.props.schema, node_options));
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
    case PlanOp::kJoin: {
      Compiled left = CompileRec(plan->inputs[0], nodes, memo);
      Compiled right = CompileRec(plan->inputs[1], nodes, memo);
      bool both_append = left.props.mode == EvolveMode::kAppend &&
                         right.props.mode == EvolveMode::kAppend;
      bool clustered =
          !plan->left_keys.empty() &&
          left.props.schema.clustering_key() == plan->left_keys &&
          right.props.schema.clustering_key() == plan->right_keys;
      bool mergeable = (plan->join_type == JoinType::kInner ||
                        plan->join_type == JoinType::kLeft) &&
                       both_append && clustered && !options_.force_hash_join;
      if (mergeable) {
        nodes->push_back(std::make_unique<MergeJoinNode>(
            *plan, left.props.schema, right.props.schema, out.props.schema,
            node_options));
      } else {
        nodes->push_back(std::make_unique<HashJoinNode>(
            *plan, left.props.schema, right.props.schema, out.props.schema,
            node_options));
      }
      nodes->back()->AddInput(left.node->ClaimOutput());
      nodes->back()->AddInput(right.node->ClaimOutput());
      break;
    }
    case PlanOp::kAggregate: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      if (out.props.mode == EvolveMode::kAppend) {
        nodes->push_back(std::make_unique<LocalAggNode>(
            *plan, in.props.schema, out.props.schema, node_options));
      } else {
        nodes->push_back(std::make_unique<ShuffleAggNode>(
            *plan, in.props.schema, out.props.schema, node_options));
      }
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
    case PlanOp::kSortLimit: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      nodes->push_back(std::make_unique<SortLimitNode>(
          *plan, in.props.schema, node_options));
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
  }
  out.node = nodes->back().get();
  if (options_.share_subplans) (*memo)[plan.get()] = out;
  return out;
}

void WakeEngine::Execute(const PlanNodePtr& plan,
                         const StateCallback& on_state) {
  std::vector<std::unique_ptr<ExecNode>> nodes;
  CompileMemo memo;
  Compiled root = CompileRec(plan, &nodes, &memo);

  TraceLog trace;
  Stopwatch clock;
  for (auto& n : nodes) n->Start(options_.trace ? &trace : nullptr);

  // Collector: assemble the evolving result from the root's stream.
  DataFrame content(root.props.schema);
  std::shared_ptr<const VarianceMap> latest_vars;
  double progress = 0.0;
  bool got_any = false;
  MessageChannelPtr channel = root.node->ClaimOutput();
  for (;;) {
    // Batched drain: one lock per burst of root-stream messages.
    auto batch = channel->ReceiveAll();
    if (batch.empty()) break;  // closed and drained
    for (auto& msg : batch) {
      if (msg.refresh) {
        content = *msg.frame;
      } else {
        content.Append(*msg.frame);
      }
      progress = std::max(progress, msg.progress);
      latest_vars = msg.variances;
      got_any = true;
      if (on_state) {
        OlaState state;
        state.frame = std::make_shared<DataFrame>(content);
        state.progress = progress;
        state.is_final = false;
        state.elapsed_seconds = clock.ElapsedSeconds();
        state.variances = latest_vars;
        on_state(state);
      }
    }
  }
  for (auto& n : nodes) n->Join();

  buffered_bytes_ = content.ByteSize();
  for (const auto& n : nodes) buffered_bytes_ += n->BufferedBytes();
  last_trace_ = options_.trace ? trace.Spans() : std::vector<TraceSpan>{};

  if (on_state) {
    OlaState state;
    state.frame = std::make_shared<DataFrame>(std::move(content));
    state.progress = got_any ? 1.0 : progress;
    state.is_final = true;
    state.elapsed_seconds = clock.ElapsedSeconds();
    state.variances = latest_vars;
    on_state(state);
  }
}

DataFrame WakeEngine::ExecuteFinal(const PlanNodePtr& plan) {
  DataFrame final_frame;
  Execute(plan, [&](const OlaState& state) {
    if (state.is_final) final_frame = *state.frame;
  });
  return final_frame;
}

}  // namespace wake
