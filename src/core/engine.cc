#include "core/engine.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/worker_pool.h"

namespace wake {

WakeEngine::WakeEngine(const Catalog* catalog, WakeOptions options)
    : catalog_(catalog), options_(options) {
  CheckArg(catalog != nullptr, "null catalog");
  if (options_.pool != nullptr) {
    // Externally owned (shared) pool, e.g. one wake::Db pool serving
    // several concurrent query handles.
    pool_ = options_.pool;
  } else {
    pool_ = ResolveWorkerPool(options_.workers, &owned_pool_);
  }
}

WakeEngine::Compiled WakeEngine::CompileRec(
    const PlanNodePtr& plan,
    std::vector<std::unique_ptr<ExecNode>>* nodes,
    CompileMemo* memo) const {
  // Shared-subplan reuse (§7.3): a PlanNode object reachable through
  // several parents compiles to one ExecNode with broadcast outputs.
  if (options_.share_subplans) {
    auto it = memo->find(plan.get());
    if (it != memo->end()) return it->second;
  }
  Compiled out;
  out.props = InferProps(plan, *catalog_);
  NodeOptions node_options;
  node_options.with_ci = options_.with_ci;
  node_options.fixed_growth_w = options_.fixed_growth_w;
  node_options.pool = pool_;

  switch (plan->op) {
    case PlanOp::kScan: {
      // Projected scan: the reader narrows each partition as it streams,
      // so downstream nodes only ever gather the columns the plan needs
      // and no full-table narrowed copy is ever held.
      nodes->push_back(std::make_unique<ReaderNode>(
          catalog_->GetPtr(plan->table), node_options, plan->columns,
          plan->scan_filter));
      break;
    }
    case PlanOp::kMap: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      nodes->push_back(std::make_unique<MapNode>(
          *plan, in.props.schema, out.props.schema, node_options));
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
    case PlanOp::kFilter: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      nodes->push_back(std::make_unique<FilterNode>(
          plan->predicate, in.props.schema, node_options));
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
    case PlanOp::kJoin: {
      Compiled left = CompileRec(plan->inputs[0], nodes, memo);
      Compiled right = CompileRec(plan->inputs[1], nodes, memo);
      bool both_append = left.props.mode == EvolveMode::kAppend &&
                         right.props.mode == EvolveMode::kAppend;
      bool clustered =
          !plan->left_keys.empty() &&
          left.props.schema.clustering_key() == plan->left_keys &&
          right.props.schema.clustering_key() == plan->right_keys;
      bool mergeable = (plan->join_type == JoinType::kInner ||
                        plan->join_type == JoinType::kLeft) &&
                       both_append && clustered && !options_.force_hash_join;
      if (mergeable) {
        nodes->push_back(std::make_unique<MergeJoinNode>(
            *plan, left.props.schema, right.props.schema, out.props.schema,
            node_options));
      } else {
        nodes->push_back(std::make_unique<HashJoinNode>(
            *plan, left.props.schema, right.props.schema, out.props.schema,
            node_options));
      }
      nodes->back()->AddInput(left.node->ClaimOutput());
      nodes->back()->AddInput(right.node->ClaimOutput());
      break;
    }
    case PlanOp::kAggregate: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      if (out.props.mode == EvolveMode::kAppend) {
        nodes->push_back(std::make_unique<LocalAggNode>(
            *plan, in.props.schema, out.props.schema, node_options));
      } else {
        nodes->push_back(std::make_unique<ShuffleAggNode>(
            *plan, in.props.schema, out.props.schema, node_options));
      }
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
    case PlanOp::kSortLimit: {
      Compiled in = CompileRec(plan->inputs[0], nodes, memo);
      nodes->push_back(std::make_unique<SortLimitNode>(
          *plan, in.props.schema, node_options));
      nodes->back()->AddInput(in.node->ClaimOutput());
      break;
    }
  }
  out.node = nodes->back().get();
  if (options_.share_subplans) (*memo)[plan.get()] = out;
  return out;
}

std::unique_ptr<EngineRun> WakeEngine::Start(const PlanNodePtr& plan) const {
  auto run = std::unique_ptr<EngineRun>(new EngineRun());
  CompileMemo memo;
  Compiled root = CompileRec(plan, &run->nodes_, &memo);
  run->root_props_ = std::move(root.props);
  run->channel_ = root.node->ClaimOutput();
  run->trace_enabled_ = options_.trace;
  run->tracker_ = options_.tracker;
  run->clock_.Restart();
  // The run is heap-owned and joins its nodes before destruction, so the
  // raw pointer captured by the error handler cannot dangle.
  EngineRun* raw = run.get();
  for (auto& n : run->nodes_) {
    n->SetResourceTracker(options_.tracker);
    n->SetErrorHandler(
        [raw](std::exception_ptr error) { raw->OnNodeError(std::move(error)); });
    n->Start(options_.trace ? &run->trace_ : nullptr);
  }
  return run;
}

EngineRun::~EngineRun() {
  // An uncollected run still has live node threads; cancel so they unwind
  // instead of running the query to completion into a dead channel, then
  // let the nodes' destructors join them.
  if (!collected_) Cancel();
}

void EngineRun::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  for (auto& n : nodes_) n->RequestStop();
}

void EngineRun::DegradeStop() {
  for (auto& n : nodes_) n->RequestDrainStop();
}

void EngineRun::OnNodeError(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_) error_ = std::move(error);
  }
  Cancel();
}

void EngineRun::Collect(const StateCallback& on_state) {
  CheckArg(!collected_, "EngineRun::Collect called twice");
  try {
    CollectImpl(on_state);
  } catch (...) {
    // A throwing state callback must not leave the graph running in the
    // background: cancel, join every node thread, then re-throw — the
    // "joins before returning" contract holds on every exit path.
    Cancel();
    for (auto& n : nodes_) n->Join();
    collected_ = true;
    throw;
  }
  // A node thread died (injected fault, bad expression): the graph was
  // cancelled and the collector drained empty; surface the original error
  // to the driver now that every thread is joined.
  std::exception_ptr node_error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    node_error = error_;
  }
  if (node_error) std::rethrow_exception(node_error);
}

void EngineRun::CollectImpl(const StateCallback& on_state) {
  // Collector: assemble the evolving result from the root's stream.
  DataFrame content(root_props_.schema);
  std::shared_ptr<const VarianceMap> latest_vars;
  double progress = 0.0;
  bool got_any = false;
  for (;;) {
    // Batched drain: one lock per burst of root-stream messages.
    auto batch = channel_->ReceiveAll();
    if (batch.empty()) break;  // closed/cancelled and drained
    for (auto& msg : batch) {
      if (cancelled()) break;
      if (tracker_ != nullptr && msg.frame != nullptr) {
        tracker_->Credit(msg.frame->ByteSize());
      }
      if (msg.refresh) {
        content = *msg.frame;
      } else {
        content.Append(*msg.frame);
      }
      progress = std::max(progress, msg.progress);
      latest_vars = msg.variances;
      got_any = true;
      if (on_state) {
        OlaState state;
        state.frame = std::make_shared<DataFrame>(content);
        state.progress = progress;
        state.is_final = false;
        state.elapsed_seconds = clock_.ElapsedSeconds();
        state.variances = latest_vars;
        on_state(state);
      }
    }
    if (cancelled()) break;
    // Deadline poll: breaches must be observed even while the graph is
    // computing without moving memory.
    if (tracker_ != nullptr) tracker_->CheckBreach();
  }
  for (auto& n : nodes_) n->Join();

  buffered_bytes_ = content.ByteSize();
  for (const auto& n : nodes_) buffered_bytes_ += n->BufferedBytes();
  spans_ = trace_enabled_ ? trace_.Spans() : std::vector<TraceSpan>{};
  collected_ = true;

  // A cancelled run ends without a final state: the root stream was cut
  // mid-query, so `content` is a truncated prefix, not the exact answer.
  // A *degraded* run (budget breach, kDegrade policy) does deliver its
  // last state — but its progress must report how far the drain actually
  // got, not claim a complete input.
  bool degraded = tracker_ != nullptr && tracker_->breached();
  if (on_state && !cancelled()) {
    OlaState state;
    state.frame = std::make_shared<DataFrame>(std::move(content));
    state.progress = (got_any && !degraded) ? 1.0 : progress;
    state.is_final = true;
    state.elapsed_seconds = clock_.ElapsedSeconds();
    state.variances = latest_vars;
    on_state(state);
  }
}

void WakeEngine::Execute(const PlanNodePtr& plan,
                         const StateCallback& on_state) {
  std::unique_ptr<EngineRun> run = Start(plan);
  run->Collect(on_state);
  buffered_bytes_ = run->buffered_bytes();
  last_trace_ = run->trace_spans();
}

DataFrame WakeEngine::ExecuteFinal(const PlanNodePtr& plan) {
  DataFrame final_frame;
  Execute(plan, [&](const OlaState& state) {
    if (state.is_final) final_frame = *state.frame;
  });
  return final_frame;
}

}  // namespace wake
