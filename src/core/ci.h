// Confidence intervals from propagated variances (§6 of the paper).
//
// Wake carries per-cell variances of mutable attributes through the
// pipeline (initial variances from aggregation-specific estimators in
// agg_state.cc, propagation through maps/joins in expr.cc/join_kernel.cc).
// This header turns a (estimate, variance) pair into a distribution-free
// Chebyshev interval: [y - kσ, y + kσ] with k = sqrt(1/(1-δ)) for
// confidence level 1-δ (k ≈ 4.47 at 95%).
#ifndef WAKE_CORE_CI_H_
#define WAKE_CORE_CI_H_

#include <cmath>

namespace wake {

/// A symmetric confidence interval around an estimate.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;
};

/// Chebyshev multiplier k = sqrt(1/(1-confidence)); e.g. ~4.47 for 0.95.
double ChebyshevK(double confidence);

/// Interval for `estimate` with variance `variance` at `confidence`.
ConfidenceInterval ChebyshevInterval(double estimate, double variance,
                                     double confidence);

/// Relative CI range |estimate - truth| / (k·σ): the Fig 10b metric. A
/// value above 1 means the interval failed to cover the truth. Returns 0
/// when σ == 0 and the estimate is exact, +inf when σ == 0 but wrong.
double RelativeCiRange(double estimate, double truth, double variance,
                       double confidence);

}  // namespace wake

#endif  // WAKE_CORE_CI_H_
