// HashJoinNode and MergeJoinNode.
#include "core/nodes.h"

#include "common/error.h"
#include "common/failpoint.h"

namespace wake {

// ---------------------------------------------------------------------------
// HashJoinNode
// ---------------------------------------------------------------------------

HashJoinNode::HashJoinNode(const PlanNode& plan, const Schema& left_schema,
                           const Schema& right_schema,
                           const Schema& output_schema, NodeOptions options)
    : ExecNode(plan.label.empty() ? "hash-join" : plan.label),
      join_type_(plan.join_type),
      left_keys_(plan.left_keys),
      output_schema_(output_schema),
      options_(options),
      table_(right_schema, plan.right_keys) {
  (void)left_schema;
}

size_t HashJoinNode::BufferedBytes() const {
  size_t bytes = table_.ByteSize();
  for (const auto& m : pending_probe_) bytes += m.frame->ByteSize();
  return bytes;
}

void HashJoinNode::Process(size_t port, const Message& msg) {
  if (port == 1) {
    // Build side. A refresh snapshot replaces all prior build content; the
    // final snapshot (at build EOF) is the one probes run against, which
    // realizes the paper's rule that joins on mutable attributes block
    // until the attribute values are final (§3.3).
    if (msg.refresh) table_.Reset();
    WAKE_FAILPOINT("join.build");
    table_.Insert(*msg.frame, msg.variances.get());
    return;
  }
  if (!build_done_) {
    pending_probe_.push_back(msg);
    return;
  }
  ProbeAndEmit(msg);
}

void HashJoinNode::OnInputClosed(size_t port) {
  if (port != 1) return;
  build_done_ = true;
  for (auto& msg : pending_probe_) {
    if (stopped()) break;  // cancel can land mid-replay of pending probes
    ProbeAndEmit(msg);
  }
  pending_probe_.clear();
}

void HashJoinNode::ProbeAndEmit(const Message& msg) {
  Message result;
  if (options_.with_ci) {
    auto out_vars = std::make_shared<VarianceMap>();
    result.frame = std::make_shared<DataFrame>(
        table_.Probe(*msg.frame, left_keys_, join_type_, output_schema_,
                     msg.variances.get(), out_vars.get(), options_.pool));
    if (!out_vars->empty()) result.variances = std::move(out_vars);
  } else {
    result.frame = std::make_shared<DataFrame>(
        table_.Probe(*msg.frame, left_keys_, join_type_, output_schema_,
                     nullptr, nullptr, options_.pool));
  }
  result.progress = msg.progress;
  result.version = msg.version;
  result.refresh = msg.refresh;
  Emit(std::move(result));
}

// ---------------------------------------------------------------------------
// MergeJoinNode
// ---------------------------------------------------------------------------

MergeJoinNode::MergeJoinNode(const PlanNode& plan, const Schema& left_schema,
                             const Schema& right_schema,
                             const Schema& output_schema, NodeOptions options)
    : ExecNode(plan.label.empty() ? "merge-join" : plan.label),
      join_type_(plan.join_type),
      left_keys_(plan.left_keys),
      left_schema_(left_schema),
      output_schema_(output_schema),
      options_(options),
      table_(right_schema, plan.right_keys),
      left_pending_(left_schema) {
  CheckArg(join_type_ == JoinType::kInner || join_type_ == JoinType::kLeft,
           "merge join supports inner/left joins");
  left_key_cols_ = left_pending_.ColumnIndices(left_keys_);
  Schema watermark_schema;
  for (const auto& k : plan.right_keys) {
    watermark_schema.AddField(
        right_schema.field(right_schema.FieldIndex(k)));
  }
  right_watermark_ = DataFrame(watermark_schema);
  for (size_t i = 0; i < plan.right_keys.size(); ++i) {
    right_key_cols_.push_back(i);
  }
}

size_t MergeJoinNode::BufferedBytes() const {
  return table_.ByteSize() + left_pending_.ByteSize();
}

void MergeJoinNode::Process(size_t port, const Message& msg) {
  if (port == 1) {
    const DataFrame& frame = *msg.frame;
    table_.Insert(frame);
    if (frame.num_rows() > 0) {
      // The right side arrives clustered on its join keys, so the last
      // row's key is a completeness watermark: every key <= it is final.
      size_t last = frame.num_rows() - 1;
      std::vector<uint32_t> idx{static_cast<uint32_t>(last)};
      std::vector<std::string> names;
      for (const auto& f : right_watermark_.schema().fields()) {
        names.push_back(f.name);
      }
      right_watermark_ = frame.Select(names).Take(idx);
    }
    right_progress_ = msg.progress;
  } else {
    left_pending_.Append(*msg.frame);
    left_progress_ = msg.progress;
  }
  EmitReady();
}

void MergeJoinNode::OnInputClosed(size_t port) {
  if (port == 1) {
    right_done_ = true;
    right_progress_ = 1.0;
    EmitReady();
  }
}

void MergeJoinNode::EmitReady() {
  size_t n = left_pending_.num_rows();
  size_t end = left_consumed_;
  if (right_done_) {
    end = n;
  } else if (right_watermark_.num_rows() == 1) {
    while (end < n) {
      bool within = true;
      for (size_t k = 0; k < left_key_cols_.size(); ++k) {
        int c = left_pending_.column(left_key_cols_[k])
                    .CompareRows(end, right_watermark_.column(k), 0);
        if (c > 0) {
          within = false;
          break;
        }
        if (c < 0) break;  // strictly below on this key: within
      }
      if (!within) break;
      ++end;
    }
  }

  double progress = std::min(left_progress_, right_progress_);
  Message result;
  if (end == left_consumed_) {
    // Nothing ready. Emit an empty partial only when it carries a new
    // progress value (each message triggers downstream snapshot work, so
    // progress-free empties are pure overhead).
    if (progress <= last_emitted_progress_) return;
    result.frame = std::make_shared<DataFrame>(output_schema_);
  } else {
    DataFrame batch = left_pending_.Slice(left_consumed_, end);
    left_consumed_ = end;
    // Compact the pending buffer once the emitted prefix dominates, so
    // buffered bytes stay proportional to the unemitted suffix.
    if (left_consumed_ == n) {
      left_pending_ = DataFrame(left_schema_);
      left_consumed_ = 0;
    } else if (left_consumed_ > 8192 && left_consumed_ * 2 >= n) {
      left_pending_ = left_pending_.Slice(left_consumed_, n);
      left_consumed_ = 0;
    }
    result.frame = std::make_shared<DataFrame>(
        table_.Probe(batch, left_keys_, join_type_, output_schema_, nullptr,
                     nullptr, options_.pool));
  }
  result.progress = progress;
  last_emitted_progress_ = progress;
  Emit(std::move(result));
}

}  // namespace wake
