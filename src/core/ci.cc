#include "core/ci.h"

#include <limits>

#include "common/error.h"

namespace wake {

double ChebyshevK(double confidence) {
  CheckArg(confidence > 0.0 && confidence < 1.0,
           "confidence must be in (0, 1)");
  return std::sqrt(1.0 / (1.0 - confidence));
}

ConfidenceInterval ChebyshevInterval(double estimate, double variance,
                                     double confidence) {
  double sigma = variance > 0.0 ? std::sqrt(variance) : 0.0;
  double half = ChebyshevK(confidence) * sigma;
  return {estimate - half, estimate + half, half};
}

double RelativeCiRange(double estimate, double truth, double variance,
                       double confidence) {
  double half = ChebyshevK(confidence) *
                (variance > 0.0 ? std::sqrt(variance) : 0.0);
  double err = std::fabs(estimate - truth);
  if (half == 0.0) {
    return err == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return err / half;
}

}  // namespace wake
