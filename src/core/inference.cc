#include "core/inference.h"

#include <algorithm>
#include <cmath>

namespace wake {

double EstimateCardinality(double x, double t, double w) {
  if (x <= 0.0) return 0.0;
  if (t <= 0.0) return x;
  if (t >= 1.0) return x;
  double xhat = x / std::pow(t, w);
  return std::max(xhat, x);
}

double EstimateSum(double y, double x, double xhat) {
  if (x <= 0.0) return y;
  return y * (xhat / x);
}

namespace {

// Digamma via the asymptotic series with the recurrence psi(x) =
// psi(x+1) - 1/x to shift the argument above 6.
double Digamma(double x) {
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  double inv = 1.0 / x;
  double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

}  // namespace

double LogH(double z, double x, double xhat) {
  // Requires xhat - x - z + 1 > 0 (caller enforces the domain).
  return std::lgamma(xhat - z + 1.0) + std::lgamma(xhat - x + 1.0) -
         std::lgamma(xhat - x - z + 1.0) - std::lgamma(xhat + 1.0);
}

double HPrime(double z, double x, double xhat) {
  double h = std::exp(LogH(z, x, xhat));
  // d(log h)/dz = -psi(xhat - z + 1) + psi(xhat - x - z + 1)
  double dlogh = -Digamma(xhat - z + 1.0) + Digamma(xhat - x - z + 1.0);
  return h * dlogh;
}

double EstimateCountDistinct(double y, double x, double xhat) {
  if (y <= 0.0) return 0.0;
  if (x <= 0.0 || xhat <= x * (1.0 + 1e-12)) return y;  // no growth expected
  // Solve g(Y) = Y(1 - h(xhat/Y)) - y = 0 on (lo, hi].
  // Domain: z = xhat/Y < xhat - x + 1  =>  Y > xhat / (xhat - x + 1).
  double lo = std::max(y, xhat / (xhat - x + 1.0) * (1.0 + 1e-9));
  double hi = xhat;
  if (lo >= hi) return std::min(std::max(y, lo), xhat);
  auto g = [&](double cand) {
    double z = xhat / cand;
    return cand * (1.0 - std::exp(LogH(z, x, xhat))) - y;
  };
  double glo = g(lo);
  double ghi = g(hi);  // = x - y >= 0
  if (glo >= 0.0) return lo;   // already above target at the lower bound
  if (ghi <= 0.0) return hi;   // y == x: every observed row distinct
  // Safeguarded Newton–Raphson: fall back to bisection when the Newton
  // step leaves the bracket (standard rtsafe scheme).
  double cand = 0.5 * (lo + hi);
  for (int iter = 0; iter < 60; ++iter) {
    double z = xhat / cand;
    double h = std::exp(LogH(z, x, xhat));
    double val = cand * (1.0 - h) - y;
    if (std::fabs(val) < 1e-9 * std::max(1.0, y)) break;
    if (val > 0.0) {
      hi = cand;
    } else {
      lo = cand;
    }
    // g'(Y) = 1 - h + z·h'(z)
    double deriv = 1.0 - h + z * HPrime(z, x, xhat);
    double next = deriv != 0.0 ? cand - val / deriv : cand;
    if (next <= lo || next >= hi || !std::isfinite(next)) {
      next = 0.5 * (lo + hi);
    }
    if (std::fabs(next - cand) < 1e-12 * std::max(1.0, cand)) {
      cand = next;
      break;
    }
    cand = next;
  }
  return std::clamp(cand, y, xhat);
}

}  // namespace wake
