// Grouped aggregation state: the intrinsic-state representation and
// key-based merge operator (⊕) of Table 2, plus the intrinsic→extrinsic
// conversion (growth-based inference, §5; confidence intervals, §6).
//
// One GroupedAggState instance backs:
//  - the exact engine's hash aggregation (Consume once, Finalize unscaled),
//  - Wake's shuffle-aggregation node (Consume per partial ⇒ incremental
//    merge, Finalize with scaling per snapshot),
//  - Wake's local-aggregation node (per-partition Consume + exact
//    Finalize), and
//  - the ProgressiveDB-style baseline (naive linear scaling).
//
// Intrinsic representations (Table 2):
//   count            -> count per key
//   sum              -> sum per key
//   avg              -> (sum, count) per key
//   min/max          -> extreme per key
//   var/stddev       -> (sum, sumsq, count) per key
//   count_distinct   -> exact value set per key (footnote 3: no sketches)
//
// Parallelism: states are single-writer, but the state merge operator is
// associative, so EnableSharding() lets a state split itself into
// hash-disjoint sub-states ("shards") once the input is large enough.
// Each incoming partial is then partitioned by group-key hash and the
// buckets are consumed into their shards concurrently on a WorkerPool.
// The shard count adapts to the pool size (more workers, more shards),
// which is safe because the result never depends on the decomposition:
// a group's rows all land in one shard in input order, so every
// accumulator sees exactly the serial addition order, and Finalize emits
// groups by their global first-appearance rank — identical output at any
// shard or worker count.
#ifndef WAKE_CORE_AGG_STATE_H_
#define WAKE_CORE_AGG_STATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash.h"
#include "frame/data_frame.h"
#include "plan/plan.h"

namespace wake {

class WorkerPool;

/// Per-column variance vectors keyed by column name (CI plumbing).
using VarianceMap = std::unordered_map<std::string, std::vector<double>>;

/// Scaling context for Finalize. Disabled => exact results (t = 1).
struct AggScaling {
  bool enabled = false;
  double t = 1.0;      // current progress
  double w = 1.0;      // fitted growth power
  double var_w = 0.0;  // Var(w) from the OLS fit (CI only)
  bool with_ci = false;
};

/// Finalize output: the aggregate frame plus (optionally) per-cell
/// variances for each aggregate output column.
struct AggResult {
  DataFrame frame;
  VarianceMap variances;
};

/// Incremental hash aggregation over (group_by, aggs).
class GroupedAggState {
 public:
  /// Shard-count bounds: EnableSharding derives the actual count from the
  /// pool's worker count (rounded up to a power of two, clamped to
  /// [kMinShards, kMaxShards]). A pool-less state uses kDefaultShards.
  static constexpr size_t kMinShards = 2;
  static constexpr size_t kDefaultShards = 8;
  static constexpr size_t kMaxShards = 64;
  /// Default partial size that triggers sharding.
  static constexpr size_t kDefaultShardRows = 32 * 1024;
  /// Minimum distinct groups before sharding pays for itself.
  static constexpr size_t kMinShardGroups = 64;

  /// `input_schema` is the schema of frames passed to Consume;
  /// `output_schema` must equal AggOutputSchema(input_schema, ...).
  GroupedAggState(std::vector<std::string> group_by, std::vector<AggSpec> aggs,
                  const Schema& input_schema, Schema output_schema);

  /// Merges one partial into the state (the ⊕ of §2.2/§4.3).
  /// `input_variances` (optional) carries per-row variances of mutable
  /// input columns; they accumulate into the summed-variance term.
  /// `order_ids` (optional; used by sharded routing) gives each row its
  /// global arrival rank, which decides first-appearance output order;
  /// by default rows rank in arrival order.
  void Consume(const DataFrame& partial,
               const VarianceMap* input_variances = nullptr,
               const uint64_t* order_ids = nullptr);

  /// Merges `other` — a state over the same (group_by, aggs, schemas) —
  /// into this one: groups are matched by key, matched accumulators are
  /// combined with the per-aggregate merge rules (sums add, counts add,
  /// extremes compare, distinct sets union, medians concatenate), and
  /// unmatched groups are adopted keeping their first-appearance rank.
  void Merge(const GroupedAggState& other);

  /// Opts this state into hash-sharded parallel consumption: once a
  /// single Consume sees >= min_rows rows and the state holds enough
  /// groups, it splits into hash-disjoint sub-states — as many as the
  /// pool's worker count warrants (power of two in [kMinShards,
  /// kMaxShards]) — and subsequent partials are partitioned and consumed
  /// shard-parallel on `pool` (serially when pool is null). The shard
  /// count never affects the result: groups are whole within a shard and
  /// output order comes from global arrival ranks. Only hot-accumulator
  /// aggregates (count/sum/avg/var/stddev) without input variances shard;
  /// others stay serial.
  void EnableSharding(WorkerPool* pool, size_t min_rows = kDefaultShardRows);

  /// Drops all state (used when the input is refresh-mode and each new
  /// snapshot replaces the previous content).
  void Reset();

  /// Produces the extrinsic state. With scaling disabled this is the exact
  /// aggregate of everything consumed; with scaling enabled, growth-based
  /// inference per §5 is applied (count/sum scale by x̂/x; avg/var/stddev
  /// are ratio-invariant; count-distinct uses the MM1 estimator; min/max
  /// pass through). Output rows appear in group first-appearance order.
  AggResult Finalize(const AggScaling& scaling) const;

  size_t num_groups() const;

  /// True once the state has split into hash-disjoint shards.
  bool sharded() const { return !shards_.empty(); }

  /// Shard count EnableSharding derived from the pool size (meaningful
  /// whether or not the split has happened yet).
  size_t num_shards() const { return num_shards_; }

  /// Total input rows consumed (Σ x_i).
  size_t total_rows() const { return total_rows_; }

  /// Mean group cardinality x̄ (0 if no groups) — the growth-model input.
  double MeanGroupCardinality() const;

  /// Merge-count probe: total per-group fold operations spent building or
  /// refreshing the snapshot view across all Finalize calls on this
  /// state. With the incremental view this stays O(total distinct
  /// groups) no matter how many snapshots are emitted — the old path
  /// re-merged every shard's every group per snapshot, i.e.
  /// O(groups × snapshots).
  size_t snapshot_merge_ops() const { return view_merge_ops_; }

 private:
  // Accumulators are split hot/cold: the numeric merge loops touch only
  // 32-byte HotAccum entries, one dense array per aggregate (the whole
  // group state for a 16k-group aggregate then fits in L2 instead of
  // striding through ~176-byte structs). Cold payloads exist only for the
  // aggregates that need them (min/max/count-distinct/median).
  struct HotAccum {
    double sum = 0.0;
    double sumsq = 0.0;
    int64_t count = 0;        // non-null inputs
    double var_in_sum = 0.0;  // accumulated input variance (CI)
  };
  struct ColdAccum {
    Value extreme;  // min/max payload
    bool has_extreme = false;
    std::unordered_set<std::string> distinct;
    std::vector<double> samples;  // median keeps the group's values (§5.3)
  };
  static bool NeedsCold(AggFunc func) {
    return func == AggFunc::kMin || func == AggFunc::kMax ||
           func == AggFunc::kCountDistinct || func == AggFunc::kMedian;
  }
  /// Shard owning key hash `h` (top log2(num_shards_) mixed bits).
  /// Deliberately a different mixer than FlatHashIndex::HomeSlot's
  /// Fibonacci multiply: reusing that one would make every key within a
  /// shard share its top mixed bits, cramming the shard's own hash table
  /// into 1/num_shards_ of its slots and degenerating its linear probing
  /// into long walks.
  size_t ShardOf(uint64_t h) const {
    return static_cast<size_t>((h * 0xC2B2AE3D27D4EB4FULL) >> shard_shift_);
  }

  /// Appends one zeroed accumulator row (a new group) across all aggs.
  void AppendAccums();

  /// Drops all per-group storage (keys, index, ranks, accumulators,
  /// code cache); totals and shards are the callers' concern.
  void ClearGroupStorage();

  uint32_t FindOrCreateGroup(uint64_t hash, const DataFrame& partial,
                             const std::vector<size_t>& key_cols, size_t row,
                             const KeyEq& eq);

  /// Single dict-encoded group key sharing the stored keys' dict: assigns
  /// group ids through the dense code→gid table (one array load per row,
  /// no hashing). Misses fall back to FindOrCreateGroup and are memoized.
  void AssignGroupsByCode(const DataFrame& partial,
                          const std::vector<size_t>& key_cols,
                          const Column& key_col, uint32_t* gids, size_t n);

  /// Serial ⊕ of one partial (the pre-sharding Consume body).
  void ConsumeSerial(const DataFrame& partial,
                     const VarianceMap* input_variances,
                     const uint64_t* order_ids);

  /// Combines `other`'s group `g` into this state's group `gid`.
  void CombineGroup(uint32_t gid, const GroupedAggState& other, uint32_t g);

  /// Merge internals: group adoption/combination without touching row
  /// totals (Merge adds those once at the top level).
  void MergeGroups(const GroupedAggState& other);
  void MergeGroupList(const GroupedAggState& other, const uint32_t* gids,
                      size_t count);

  /// True if this partial may trigger the split into shards.
  bool ShardTriggered(size_t partial_rows) const;

  /// Splits the accumulated groups into num_shards_ hash-disjoint
  /// sub-states and clears the top-level group storage.
  void SplitIntoShards();

  /// Partitions the partial by group-key hash and consumes each bucket
  /// into its shard (parallel across shards when a pool is set).
  void RouteToShards(const DataFrame& partial);

  /// A (state, group) pair the finalize emission loop reads through.
  /// Accumulators are read in place at Finalize time, so a ref stays
  /// current across further Consumes into the state it points at.
  struct GroupRef {
    const GroupedAggState* src;
    uint32_t g;
  };

  /// Brings the incremental snapshot view up to date with the shards:
  /// groups created since the last refresh are appended in global
  /// first-appearance order (Consume only ever creates groups with ranks
  /// above everything already seen); a Merge that adopted earlier-ranked
  /// groups forces a full rebuild. Mutable state under the class's
  /// single-writer contract.
  void RefreshView() const;

  /// Drops the cached view (shard pointers are about to dangle or ranks
  /// of existing groups may change).
  void InvalidateView() const;

  /// Shared emission body: extrinsic conversion over `refs` (output
  /// order), with group-key columns copied from `keys`.
  AggResult FinalizeRefs(const AggScaling& scaling,
                         const std::vector<GroupRef>& refs,
                         const DataFrame& keys) const;

  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
  Schema input_schema_;
  Schema output_schema_;
  std::vector<size_t> agg_input_cols_;  // index into input schema; npos for *
  std::vector<size_t> stored_key_cols_;  // 0..k-1 into group_keys_
  bool hot_only_ = true;  // no aggregate needs a ColdAccum

  DataFrame group_keys_;  // one row per group (group_by columns)
  // Key-hash -> group-id chains; keys verified on lookup, so hash
  // collisions between distinct group keys never merge.
  FlatHashIndex key_index_;
  // code→gid table for the single-dict-key fast path. Valid only while
  // group_keys_'s dict is the object `code_cache_dict_` points at: codes
  // are append-only within one dict, so entries can be missing but never
  // wrong; a dict pointer change (cross-dict COW) rebuilds from
  // group_keys_. FlatHashIndex::kNil marks unresolved entries.
  const StringDict* code_cache_dict_ = nullptr;
  std::vector<uint32_t> code_to_gid_;
  uint32_t null_gid_ = FlatHashIndex::kNil;
  std::vector<size_t> group_rows_;            // x_i per group
  std::vector<uint64_t> group_hashes_;        // key hash per group
  std::vector<uint64_t> group_first_seen_;    // arrival rank of first row
  std::vector<std::vector<HotAccum>> hot_;    // [agg][group]
  std::vector<std::vector<ColdAccum>> cold_;  // [agg][group]; empty unless
                                              // the agg NeedsCold
  size_t total_rows_ = 0;
  // Arrival-rank source for the current Consume call: explicit per-row
  // ids (sharded routing) or order_base_ + row (serial default).
  const uint64_t* order_ids_ = nullptr;
  uint64_t order_base_ = 0;

  // Sharding (see class comment). shard_min_rows_ == 0 disables.
  WorkerPool* pool_ = nullptr;
  size_t shard_min_rows_ = 0;
  // Set by EnableSharding from the pool size; power of two, with
  // shard_shift_ == 64 - log2(num_shards_) so ShardOf takes the top bits.
  size_t num_shards_ = kDefaultShards;
  unsigned shard_shift_ = 61;
  std::vector<std::unique_ptr<GroupedAggState>> shards_;

  // Incremental snapshot view (sharded states only): output-ordered refs
  // into the shards plus the cached key frame, maintained lazily by
  // Finalize so emitting snapshot N+1 folds only the groups that appeared
  // since snapshot N. view_seen_[s] is the shard-s group count already in
  // the view; view_max_rank_ guards against out-of-order adoption.
  mutable bool view_valid_ = false;
  mutable std::vector<GroupRef> view_refs_;
  mutable DataFrame view_keys_;
  mutable std::vector<size_t> view_seen_;
  mutable uint64_t view_max_rank_ = 0;
  mutable size_t view_merge_ops_ = 0;  // probe; survives InvalidateView
};

}  // namespace wake

#endif  // WAKE_CORE_AGG_STATE_H_
