// Hash-join kernel shared by the exact engine and Wake's join nodes.
//
// The build (right) side accumulates incrementally — Wake's hash-join node
// inserts one partial at a time and the progressive-merge-join node reuses
// the same table with a key watermark — then any number of probe calls run
// against the accumulated state. Per the paper (§3.2), the right side is
// always the build table; chained right-deep joins therefore build all hash
// tables in parallel.
//
// Optional variance plumbing: per-column variances of mutable attributes
// travel with the rows (gathered on probe), so confidence intervals survive
// joins (§6).
#ifndef WAKE_CORE_JOIN_KERNEL_H_
#define WAKE_CORE_JOIN_KERNEL_H_

#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "core/agg_state.h"
#include "frame/data_frame.h"
#include "plan/plan.h"

namespace wake {

class WorkerPool;

/// Incrementally built hash table over the right (build) side of a join.
class JoinHashTable {
 public:
  /// `right_schema` is the build-side schema; `right_keys` the build-side
  /// join key columns (empty only for cross joins).
  JoinHashTable(const Schema& right_schema,
                std::vector<std::string> right_keys);

  /// Pre-sizes the index for an expected total build-row count.
  void Reserve(size_t expected_rows);

  /// Appends build rows (and their variances, if any) to the table.
  void Insert(const DataFrame& right_partial,
              const VarianceMap* variances = nullptr);

  /// Drops all accumulated build rows (refresh-mode build inputs).
  void Reset();

  size_t num_rows() const { return build_.num_rows(); }
  const DataFrame& build_frame() const { return build_; }

  /// Heap footprint of build frame + hash index (§8.2 accounting).
  size_t ByteSize() const { return build_.ByteSize() + index_.ByteSize(); }

  /// Probes with `left`, producing rows per `type` into a frame with
  /// schema `out_schema` (must equal JoinOutputSchema(left.schema(),
  /// right_schema, right_keys, type)). If `out_vars` is non-null, gathers
  /// per-column variances for the output rows from `left_vars` /
  /// accumulated build variances.
  ///
  /// Thread safety: Probe is const and the table is read-mostly after
  /// build, so any number of threads may probe one table concurrently (no
  /// Insert/Reset may run meanwhile). With a non-null `pool`, large
  /// probes additionally split into row-range morsels matched and
  /// gathered across the pool; per-morsel results are stitched in morsel
  /// order, so the output frame is byte-identical to a serial probe at
  /// any worker count.
  DataFrame Probe(const DataFrame& left,
                  const std::vector<std::string>& left_keys, JoinType type,
                  const Schema& out_schema,
                  const VarianceMap* left_vars = nullptr,
                  VarianceMap* out_vars = nullptr,
                  WorkerPool* pool = nullptr) const;

 private:
  /// Match phase over probe rows [begin, end): appends matching row pairs
  /// (absolute indices) to the selection vectors. `dict_key` (nullable)
  /// is the probe key column carrying build-dict codes — the original
  /// column for shared-dict probes, or the translated shadow column for
  /// cross-dict probes — enabling the per-thread code→chain-head memo.
  void MatchRange(const DataFrame& left, const std::vector<size_t>& lcols,
                  const KeyEq& eq, const Column* dict_key, JoinType type,
                  size_t begin, size_t end, std::vector<uint32_t>* lrows,
                  std::vector<uint32_t>* rrows,
                  std::vector<uint8_t>* rvalid) const;
  Schema right_schema_;
  std::vector<std::string> right_keys_;
  std::vector<size_t> key_cols_;
  DataFrame build_;
  VarianceMap build_vars_;
  // Key-hash -> build-row chains; key equality verified on probe, so hash
  // collisions between distinct keys never merge.
  FlatHashIndex index_;
  // Process-unique instance id plus a version bumped by Insert/Reset;
  // probes keyed on a single dict-encoded string column use the pair to
  // validate their thread-local code→chain-head cache. The id (not the
  // address, which allocators recycle) prevents a later table from
  // replaying a destroyed table's cached chain heads.
  uint64_t table_id_;
  uint64_t build_version_ = 0;
};

/// One-shot convenience used by the exact engine.
DataFrame HashJoin(const DataFrame& left, const DataFrame& right,
                   const std::vector<std::string>& left_keys,
                   const std::vector<std::string>& right_keys, JoinType type,
                   const Schema& out_schema);

}  // namespace wake

#endif  // WAKE_CORE_JOIN_KERNEL_H_
