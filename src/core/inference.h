// Aggregate inference: per-cell unbiased estimators of final aggregate
// values from partial observations (§5 of the paper).
//
// Given the observed group cardinality x at progress t and the fitted
// growth power w, the final cardinality estimate is x̂ = x / t^w (Eq 4).
// Each aggregate type then applies its estimator f(y, x, x̂) (§5.3):
//   count          -> x̂
//   sum            -> y·x̂/x
//   avg/var/stddev -> identity (ratios of scaled sums cancel, Eq 5)
//   count-distinct -> finite-population method-of-moments (Eq 6), solved
//                     by safeguarded Newton–Raphson over log-gamma
//   min/max/order  -> identity (latest value)
#ifndef WAKE_CORE_INFERENCE_H_
#define WAKE_CORE_INFERENCE_H_

namespace wake {

/// Final group-cardinality estimate x̂ = x / t^w (Eq 4). `t` in (0, 1];
/// never returns less than `x`.
double EstimateCardinality(double x, double t, double w);

/// Sum estimator f_sum = y·x̂/x (scale-up by the sampling ratio).
double EstimateSum(double y, double x, double xhat);

/// Finite-population method-of-moments count-distinct estimator (Eq 6):
/// solves y = Y·(1 − h(x̂/Y)) for Y, where (Eq 7)
///   h(z) = Γ(x̂−z+1)Γ(x̂−x+1) / (Γ(x̂−x−z+1)Γ(x̂+1)).
/// `y` = currently observed distinct count, `x` = current group cardinality,
/// `xhat` = estimated final cardinality. Returns a value in [y, x̂].
double EstimateCountDistinct(double y, double x, double xhat);

/// log h(z) from Eq 7 (exposed for the CI derivative computation);
/// requires 0 < z < xhat − x + 1.
double LogH(double z, double x, double xhat);

/// dh/dz evaluated via digamma differences (used by Eq 17–19).
double HPrime(double z, double x, double xhat);

}  // namespace wake

#endif  // WAKE_CORE_INFERENCE_H_
