#include "core/edf.h"

#include "common/error.h"

namespace wake {

EdfSession::EdfSession(const Catalog* catalog, WakeOptions options)
    : catalog_(catalog), options_(options) {
  CheckArg(catalog != nullptr, "null catalog");
}

Edf EdfSession::Read(const std::string& table) const {
  CheckArg(catalog_->Has(table), "unknown table '" + table + "'");
  return Edf(this, Plan::Scan(table));
}

// --- EdfResult -------------------------------------------------------------

EdfResult::~EdfResult() {
  if (worker_.joinable()) worker_.join();
}

EdfResult::EdfResult(EdfResult&& other) noexcept
    : shared_(std::move(other.shared_)),
      engine_(std::move(other.engine_)),
      worker_(std::move(other.worker_)) {}

DataFramePtr EdfResult::Get() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->latest;
}

bool EdfResult::is_final() const { return shared_->final_flag.load(); }

double EdfResult::progress() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->progress;
}

size_t EdfResult::num_states() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->states;
}

DataFrame EdfResult::GetFinal() {
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(shared_->mu);
  CheckArg(shared_->latest != nullptr, "query produced no states");
  return *shared_->latest;
}

// --- Edf -------------------------------------------------------------------

Edf Edf::Map(std::vector<NamedExpr> projections) const {
  return Edf(session_, plan_.Map(std::move(projections)));
}
Edf Edf::Derive(std::vector<NamedExpr> projections) const {
  return Edf(session_, plan_.Derive(std::move(projections)));
}
Edf Edf::Project(const std::vector<std::string>& columns) const {
  return Edf(session_, plan_.Project(columns));
}
Edf Edf::Filter(ExprPtr predicate) const {
  return Edf(session_, plan_.Filter(std::move(predicate)));
}
Edf Edf::Join(const Edf& right, std::vector<std::string> left_keys,
              std::vector<std::string> right_keys, JoinType type) const {
  return Edf(session_, plan_.Join(right.plan_, type, std::move(left_keys),
                                  std::move(right_keys)));
}
Edf Edf::Agg(std::vector<std::string> by, std::vector<AggSpec> aggs) const {
  return Edf(session_, plan_.Aggregate(std::move(by), std::move(aggs)));
}
Edf Edf::Sort(std::vector<SortKey> keys, size_t limit) const {
  return Edf(session_, plan_.Sort(std::move(keys), limit));
}

Edf Edf::Sum(const std::string& col, std::vector<std::string> by) const {
  return Agg(std::move(by), {wake::Sum(col, "sum_" + col)});
}
Edf Edf::CountBy(std::vector<std::string> by) const {
  return Agg(std::move(by), {wake::Count("count")});
}
Edf Edf::Avg(const std::string& col, std::vector<std::string> by) const {
  return Agg(std::move(by), {wake::Avg(col, "avg_" + col)});
}
Edf Edf::Min(const std::string& col, std::vector<std::string> by) const {
  return Agg(std::move(by), {wake::Min(col, "min_" + col)});
}
Edf Edf::Max(const std::string& col, std::vector<std::string> by) const {
  return Agg(std::move(by), {wake::Max(col, "max_" + col)});
}
Edf Edf::CountDistinct(const std::string& col,
                       std::vector<std::string> by) const {
  return Agg(std::move(by), {wake::CountDistinct(col, "count_distinct_" + col)});
}

EdfResult Edf::Run() const {
  EdfResult result;
  result.shared_ = std::make_shared<EdfResult::Shared>();
  result.engine_ =
      std::make_unique<WakeEngine>(session_->catalog(), session_->options());
  auto shared = result.shared_;
  WakeEngine* engine = result.engine_.get();
  PlanNodePtr node = plan_.node();
  result.worker_ = std::thread([engine, node, shared] {
    engine->Execute(node, [&](const OlaState& state) {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->latest = state.frame;
      shared->progress = state.progress;
      ++shared->states;
      if (state.is_final) shared->final_flag.store(true);
    });
  });
  return result;
}

void Edf::Subscribe(const StateCallback& on_state) const {
  WakeEngine engine(session_->catalog(), session_->options());
  engine.Execute(plan_.node(), on_state);
}

DataFrame Edf::GetFinal() const {
  WakeEngine engine(session_->catalog(), session_->options());
  return engine.ExecuteFinal(plan_.node());
}

}  // namespace wake
