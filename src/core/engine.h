// WakeEngine: compiles logical plans into pipelined OLA execution graphs
// and streams converging result states to the caller.
//
// Compilation rules (Fig 6 of the paper):
//  - scan            -> ReaderNode over the catalog table's partitions
//  - map / filter    -> stateless Case 1 nodes
//  - join            -> MergeJoinNode when both inputs are append-mode and
//                       clustered exactly on their join keys (the
//                       lineitem ⨝ orders case); HashJoinNode otherwise,
//                       with the right side as build table
//  - aggregate       -> LocalAggNode when the group keys cover the input
//                       clustering key (Case 1); ShuffleAggNode with
//                       growth-based inference otherwise (Case 2)
//  - sort/limit      -> SortLimitNode (Case 3 recompute)
// Every node runs on its own thread; edges are unbounded channels (§7.2).
#ifndef WAKE_CORE_ENGINE_H_
#define WAKE_CORE_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/resource.h"
#include "common/stopwatch.h"
#include "common/worker_pool.h"
#include "core/nodes.h"
#include "exec/trace.h"
#include "plan/props.h"
#include "storage/partitioned_table.h"

namespace wake {

/// Engine configuration.
struct WakeOptions {
  /// Propagate variances and report them with refresh-mode states (§6).
  bool with_ci = false;
  /// Record per-node busy spans (Fig 13).
  bool trace = false;
  /// Ablation: fix the growth power of every shuffle aggregation instead
  /// of fitting it online (-1 = fit; 1.0 = naive linear scaling).
  double fixed_growth_w = -1.0;
  /// Ablation: always pick hash joins, even where merge joins apply
  /// (isolates the OLA-specific join-selection optimization, §7.3).
  bool force_hash_join = false;
  /// Share physically identical subplans (same PlanNode object reachable
  /// through several parents, e.g. Q15's revenue view) instead of
  /// executing them once per parent — the paper's §7.3 reuse optimization.
  bool share_subplans = true;
  /// Intra-operator parallelism: workers available to each node for
  /// morsel-parallel probe/aggregate/filter loops. 0 = use the
  /// process-wide pool (sized from WAKE_WORKERS, default hardware
  /// concurrency); 1 = serial operator bodies (pipeline parallelism
  /// only); N > 1 = engine-owned pool of N workers. Results are
  /// byte-identical across settings.
  size_t workers = 0;
  /// Externally owned worker pool; overrides `workers` when set. This is
  /// how wake::Db shares one pool across concurrent query handles instead
  /// of each engine spawning its own threads. Must outlive the engine and
  /// every EngineRun started from it.
  WorkerPool* pool = nullptr;
  /// Per-query resource tracker (may be null = unbudgeted). Every node
  /// charges/credits it as partials and operator state move through the
  /// graph, and the collector polls it so deadline breaches are observed
  /// even when no memory moves. Must outlive every EngineRun started with
  /// it; breach policy lives in the tracker's on_breach callback.
  ResourceTracker* tracker = nullptr;
};

/// One converging result state delivered to the caller (an edf state).
struct OlaState {
  DataFramePtr frame;   // full current estimate of the query result
  double progress = 0;  // t of the root edf
  bool is_final = false;
  double elapsed_seconds = 0;  // since Execute() started
  /// Per-column variances of the latest snapshot (CI mode, refresh roots).
  std::shared_ptr<const VarianceMap> variances;
};

using StateCallback = std::function<void(const OlaState&)>;

/// One live execution of a plan: owns the compiled node graph (every node
/// thread is already running) and drives the collector. Obtained from
/// WakeEngine::Start; this is what gives wake::QueryHandle its
/// handle-driven lifetime instead of WakeEngine::Execute's internal
/// thread management.
///
/// Lifecycle: Start() spawns the node threads immediately. Exactly one
/// thread then calls Collect(), which blocks until the root stream closes
/// (completion or cancellation) and joins every node thread before
/// returning. Cancel() may be called from any thread at any time — it
/// cancels every channel in the graph so all node threads unwind promptly
/// without draining pending work; a cancelled run delivers no final
/// state. Destroying an uncollected run cancels it and joins its threads.
class EngineRun {
 public:
  ~EngineRun();
  EngineRun(const EngineRun&) = delete;
  EngineRun& operator=(const EngineRun&) = delete;

  /// Drives the root stream: invokes `on_state` (may be null) for every
  /// intermediate state and — unless the run was cancelled — once more
  /// with is_final=true. Joins all node threads before returning, even
  /// when `on_state` throws (the run is cancelled and the exception
  /// re-thrown). Must be called at most once.
  void Collect(const StateCallback& on_state);

  /// Requests cooperative cancellation; thread-safe, idempotent, safe to
  /// race with Collect and with run completion.
  void Cancel();

  /// Requests graceful degradation (the kDegrade budget policy): every
  /// node is drain-stopped, so sources stop feeding the graph, EOF
  /// propagates, and downstream operators finish over the truncated input
  /// — Collect still delivers a genuine last estimate (is_final, with CI)
  /// whose progress reflects how much data was actually processed.
  /// Thread-safe, idempotent, typically invoked from the tracker's
  /// on_breach callback on whichever thread breaches first.
  void DegradeStop();

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Output schema of the root operator.
  const Schema& schema() const { return root_props_.schema; }

  /// Post-Collect stats (see WakeEngine accessors of the same names).
  size_t buffered_bytes() const { return buffered_bytes_; }
  const std::vector<TraceSpan>& trace_spans() const { return spans_; }

 private:
  friend class WakeEngine;
  EngineRun() = default;

  void CollectImpl(const StateCallback& on_state);

  /// Node-failure hook (see ExecNode::SetErrorHandler): records the first
  /// error and cancels the graph; Collect rethrows it after joining.
  void OnNodeError(std::exception_ptr error);

  std::vector<std::unique_ptr<ExecNode>> nodes_;
  PlanProps root_props_;
  MessageChannelPtr channel_;  // claimed root output
  bool trace_enabled_ = false;
  TraceLog trace_;
  Stopwatch clock_;  // runs from Start()
  std::atomic<bool> cancelled_{false};
  ResourceTracker* tracker_ = nullptr;
  std::mutex error_mu_;
  std::exception_ptr error_;
  bool collected_ = false;
  size_t buffered_bytes_ = 0;
  std::vector<TraceSpan> spans_;
};

/// Pipelined OLA query engine.
class WakeEngine {
 public:
  explicit WakeEngine(const Catalog* catalog, WakeOptions options = {});

  /// Compiles `plan` and starts every node thread, returning the live run.
  /// The engine (and its worker pool) must outlive the returned run.
  std::unique_ptr<EngineRun> Start(const PlanNodePtr& plan) const;

  /// Runs `plan` to completion, invoking `on_state` for every intermediate
  /// state and once more with is_final=true at the end. Blocking; a
  /// convenience wrapper over Start() + EngineRun::Collect().
  void Execute(const PlanNodePtr& plan, const StateCallback& on_state);

  /// Convenience: runs the plan and returns only the final (exact) result.
  DataFrame ExecuteFinal(const PlanNodePtr& plan);

  /// Node activity spans of the last Execute (empty unless options.trace).
  const std::vector<TraceSpan>& last_trace() const { return last_trace_; }

  /// Approximate bytes buffered across nodes at the end of the last run
  /// (hash tables, sort content, pending buffers) — the steady-state
  /// footprint used for the §8.2 memory comparison.
  size_t buffered_bytes() const { return buffered_bytes_; }

 private:
  friend class EngineRun;

  struct Compiled {
    ExecNode* node = nullptr;
    PlanProps props;
  };
  using CompileMemo = std::unordered_map<const PlanNode*, Compiled>;

  Compiled CompileRec(const PlanNodePtr& plan,
                      std::vector<std::unique_ptr<ExecNode>>* nodes,
                      CompileMemo* memo) const;

  const Catalog* catalog_;
  WakeOptions options_;
  std::unique_ptr<WorkerPool> owned_pool_;  // when options.workers > 1
  WorkerPool* pool_ = nullptr;              // null = serial operators
  std::vector<TraceSpan> last_trace_;
  size_t buffered_bytes_ = 0;
};

}  // namespace wake

#endif  // WAKE_CORE_ENGINE_H_
