// Growth model: fits group-cardinality growth as a monomial c·t^w (§5.2).
//
// Wake assumes E[X_i(t)] ∝ t^w and fits the shared power w by streaming
// ordinary least squares in log-log space:
//   E[log x̄_t] = log b + w·log t
// where x̄_t is the mean group cardinality at progress t. The fit is O(1)
// time and space per observation. Var(w) (the OLS slope variance) feeds the
// confidence-interval machinery (Eq 10).
#ifndef WAKE_CORE_GROWTH_H_
#define WAKE_CORE_GROWTH_H_

#include <cstddef>

namespace wake {

/// Streaming log-log linear regression for the growth power w.
class GrowthModel {
 public:
  /// Records one observation: at progress `t` (0 < t <= 1) the mean group
  /// cardinality was `mean_cardinality` (> 0). Non-positive inputs are
  /// ignored.
  void Observe(double t, double mean_cardinality);

  /// Fitted growth power, clamped to [0, 3]. Defaults to 1 (linear growth,
  /// the base-table case) until two observations with distinct t exist.
  double w() const;

  /// OLS variance of the slope estimate; 0 until three observations exist
  /// (the residual needs n-2 degrees of freedom).
  double var_w() const;

  /// Fitted log-intercept b in x̄ = b·t^w (1.0 until fitted).
  double coefficient() const;

  size_t num_observations() const { return n_; }
  bool fitted() const;

  void Reset();

 private:
  size_t n_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0, syy_ = 0;
};

}  // namespace wake

#endif  // WAKE_CORE_GROWTH_H_
