#include "core/agg_state.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.h"
#include "common/worker_pool.h"
#include "core/inference.h"

namespace wake {

namespace {

constexpr size_t kNoInput = static_cast<size_t>(-1);

// Byte-exact serialization of a value for the count-distinct set.
std::string DistinctKey(const Column& col, size_t row) {
  if (col.IsNull(row)) return std::string("\0n", 2);
  switch (col.type()) {
    case ValueType::kString:
      return "s" + col.StringAt(row);
    case ValueType::kFloat64: {
      double d = col.DoubleAt(row);
      std::string out(1 + sizeof(double), 'f');
      std::memcpy(out.data() + 1, &d, sizeof(double));
      return out;
    }
    default: {
      int64_t v = col.IntAt(row);
      std::string out(1 + sizeof(int64_t), 'i');
      std::memcpy(out.data() + 1, &v, sizeof(int64_t));
      return out;
    }
  }
}

}  // namespace

GroupedAggState::GroupedAggState(std::vector<std::string> group_by,
                                 std::vector<AggSpec> aggs,
                                 const Schema& input_schema,
                                 Schema output_schema)
    : group_by_(std::move(group_by)),
      aggs_(std::move(aggs)),
      input_schema_(input_schema),
      output_schema_(std::move(output_schema)) {
  for (const auto& a : aggs_) {
    agg_input_cols_.push_back(
        a.input.empty() ? kNoInput : input_schema.FieldIndex(a.input));
    if (NeedsCold(a.func)) hot_only_ = false;
  }
  Schema key_schema;
  for (const auto& g : group_by_) {
    key_schema.AddField(input_schema.field(input_schema.FieldIndex(g)));
  }
  group_keys_ = DataFrame(key_schema);
  for (size_t i = 0; i < group_by_.size(); ++i) stored_key_cols_.push_back(i);
  hot_.resize(aggs_.size());
  cold_.resize(aggs_.size());
}

void GroupedAggState::AppendAccums() {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    hot_[a].emplace_back();
    if (NeedsCold(aggs_[a].func)) cold_[a].emplace_back();
  }
}

void GroupedAggState::EnableSharding(WorkerPool* pool, size_t min_rows) {
  pool_ = pool;
  shard_min_rows_ = min_rows;
  // Smallest power of two covering the pool's workers, clamped to
  // [kMinShards, kMaxShards]; a pool-less state keeps kDefaultShards. A
  // little headroom over the worker count keeps bucket skew from
  // serializing the routing, while a small pool no longer pays the
  // fixed-8 floor's routing overhead; the result never depends on the
  // choice (see class comment).
  size_t want = pool != nullptr ? pool->workers() : kDefaultShards;
  num_shards_ = kMinShards;
  while (num_shards_ < want && num_shards_ < kMaxShards) num_shards_ *= 2;
  shard_shift_ = 64;
  for (size_t n = num_shards_; n > 1; n /= 2) --shard_shift_;
}

void GroupedAggState::ClearGroupStorage() {
  group_keys_ = DataFrame(group_keys_.schema());
  key_index_.Reset();
  group_rows_.clear();
  group_hashes_.clear();
  group_first_seen_.clear();
  for (auto& h : hot_) h.clear();
  for (auto& c : cold_) c.clear();
  code_cache_dict_ = nullptr;
  code_to_gid_.clear();
  null_gid_ = FlatHashIndex::kNil;
}

void GroupedAggState::Reset() {
  ClearGroupStorage();
  total_rows_ = 0;
  InvalidateView();  // before the refs' shards are destroyed
  shards_.clear();   // re-shards when the trigger fires again
}

size_t GroupedAggState::num_groups() const {
  if (shards_.empty()) return group_rows_.size();
  // Shards hold hash-disjoint group sets, so counts add.
  size_t n = 0;
  for (const auto& s : shards_) n += s->group_rows_.size();
  return n;
}

uint32_t GroupedAggState::FindOrCreateGroup(
    uint64_t hash, const DataFrame& partial,
    const std::vector<size_t>& key_cols, size_t row, const KeyEq& eq) {
  for (uint32_t cand = key_index_.Find(hash); cand != FlatHashIndex::kNil;
       cand = key_index_.Next(cand)) {
    if (eq.Equal(row, cand)) return cand;
  }
  uint32_t gid = static_cast<uint32_t>(group_rows_.size());
  for (size_t i = 0; i < key_cols.size(); ++i) {
    // AppendFrom keeps dict-encoded keys as codes (no string materializes).
    group_keys_.mutable_column(i)->AppendFrom(partial.column(key_cols[i]),
                                              row);
  }
  group_rows_.push_back(0);
  group_hashes_.push_back(hash);
  group_first_seen_.push_back(order_ids_ != nullptr ? order_ids_[row]
                                                    : order_base_ + row);
  AppendAccums();
  key_index_.Insert(hash, gid);
  return gid;
}

void GroupedAggState::AssignGroupsByCode(const DataFrame& partial,
                                         const std::vector<size_t>& key_cols,
                                         const Column& key_col,
                                         uint32_t* gids, size_t n) {
  const StringDict* d = key_col.dict().get();
  if (code_cache_dict_ != d) {
    // New dict object (first partial, or the stored dict was re-pointed by
    // a cross-dict COW): rebuild the table from the stored group keys.
    code_cache_dict_ = d;
    code_to_gid_.assign(d->size(), FlatHashIndex::kNil);
    null_gid_ = FlatHashIndex::kNil;
    const auto& gcodes = group_keys_.column(0).codes();
    for (size_t g = 0; g < gcodes.size(); ++g) {
      if (gcodes[g] >= 0) {
        code_to_gid_[gcodes[g]] = static_cast<uint32_t>(g);
      } else {
        null_gid_ = static_cast<uint32_t>(g);
      }
    }
  } else if (code_to_gid_.size() < d->size()) {
    code_to_gid_.resize(d->size(), FlatHashIndex::kNil);
  }
  KeyEq eq(partial, key_cols, group_keys_, stored_key_cols_);
  const int32_t* codes = key_col.codes().data();
  const bool nulls = key_col.has_nulls();
  for (size_t r = 0; r < n; ++r) {
    if (nulls && key_col.IsNull(r)) {
      if (null_gid_ == FlatHashIndex::kNil) {
        null_gid_ = FindOrCreateGroup(partial.HashRowKeys(key_cols, r),
                                      partial, key_cols, r, eq);
      }
      gids[r] = null_gid_;
      continue;
    }
    uint32_t g = code_to_gid_[codes[r]];
    if (g == FlatHashIndex::kNil) {
      // First sighting of this code: resolve through the hash index (the
      // group may predate the cache) and memoize.
      g = FindOrCreateGroup(partial.HashRowKeys(key_cols, r), partial,
                            key_cols, r, eq);
      code_to_gid_[codes[r]] = g;
    }
    gids[r] = g;
  }
}

void GroupedAggState::Consume(const DataFrame& partial,
                              const VarianceMap* input_variances,
                              const uint64_t* order_ids) {
  size_t n = partial.num_rows();
  if (n == 0) {
    // A global aggregate (no group keys) still needs its single group so
    // that count() over an empty stream can converge to 0 only when no
    // rows ever arrive; rows == 0 keeps the state empty.
    return;
  }
  if (!shards_.empty()) {
    CheckArg(input_variances == nullptr,
             "sharded aggregation state cannot consume variance-carrying "
             "partials");
    order_ids_ = order_ids;
    RouteToShards(partial);
    order_ids_ = nullptr;
    return;
  }
  order_ids_ = order_ids;
  order_base_ = total_rows_;
  ConsumeSerial(partial, input_variances, order_ids);
  order_ids_ = nullptr;
  if (input_variances == nullptr && ShardTriggered(n)) SplitIntoShards();
}

bool GroupedAggState::ShardTriggered(size_t partial_rows) const {
  // All criteria are functions of configuration and data — never of the
  // pool — so the split point (and thus the result) is deterministic at
  // any worker count.
  return shard_min_rows_ != 0 && hot_only_ && !group_by_.empty() &&
         partial_rows >= shard_min_rows_ &&
         group_rows_.size() >= kMinShardGroups;
}

void GroupedAggState::SplitIntoShards() {
  shards_.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_.emplace_back(new GroupedAggState(group_by_, aggs_, input_schema_,
                                             output_schema_));
  }
  // Re-home every accumulated group by its key hash. Ranks (first_seen)
  // move with the groups, so the final output order is unchanged.
  std::vector<std::vector<uint32_t>> buckets(num_shards_);
  for (uint32_t g = 0; g < group_rows_.size(); ++g) {
    buckets[ShardOf(group_hashes_[g])].push_back(g);
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    if (!buckets[s].empty()) {
      shards_[s]->MergeGroupList(*this, buckets[s].data(),
                                 buckets[s].size());
    }
  }
  // Group state now lives in the shards; totals stay top-level.
  ClearGroupStorage();
  InvalidateView();  // the view (if any) predates this shard set
}

void GroupedAggState::RouteToShards(const DataFrame& partial) {
  size_t n = partial.num_rows();
  std::vector<size_t> key_cols = partial.ColumnIndices(group_by_);
  static thread_local std::vector<uint64_t> hashes;
  partial.HashRowsBatch(key_cols, &hashes);
  std::vector<std::vector<uint32_t>> buckets(num_shards_);
  for (auto& b : buckets) b.reserve(n / num_shards_ + 16);
  for (size_t r = 0; r < n; ++r) {
    buckets[ShardOf(hashes[r])].push_back(static_cast<uint32_t>(r));
  }
  const uint64_t* ids = order_ids_;
  uint64_t base = total_rows_;
  // Each shard gathers and consumes its bucket; rows keep their global
  // arrival ranks, and a group's rows reach its shard in arrival order,
  // so every accumulator adds in exactly the serial order.
  auto work = [&](size_t s) {
    const std::vector<uint32_t>& idx = buckets[s];
    if (idx.empty()) return;
    DataFrame bucket = partial.Take(idx);
    std::vector<uint64_t> order(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      order[i] = ids != nullptr ? ids[idx[i]] : base + idx[i];
    }
    shards_[s]->Consume(bucket, nullptr, order.data());
  };
  if (pool_ != nullptr) {
    pool_->ParallelShards(num_shards_, work);
  } else {
    for (size_t s = 0; s < num_shards_; ++s) work(s);
  }
  total_rows_ += n;
}

void GroupedAggState::ConsumeSerial(const DataFrame& partial,
                                    const VarianceMap* input_variances,
                                    const uint64_t* order_ids) {
  size_t n = partial.num_rows();
  std::vector<size_t> key_cols = partial.ColumnIndices(group_by_);
  // Per-agg input column pointers and variance vectors.
  std::vector<const Column*> in_cols(aggs_.size(), nullptr);
  std::vector<const std::vector<double>*> in_vars(aggs_.size(), nullptr);
  for (size_t a = 0; a < aggs_.size(); ++a) {
    if (agg_input_cols_[a] == kNoInput) continue;
    in_cols[a] = &partial.column(agg_input_cols_[a]);
    if (input_variances != nullptr) {
      auto it = input_variances->find(aggs_[a].input);
      if (it != input_variances->end()) in_vars[a] = &it->second;
    }
  }

  // Phase 1: assign every row its dense group id (batch hash, then
  // find-or-create against the flat index).
  const size_t num_aggs = aggs_.size();
  static thread_local std::vector<uint32_t> gids;
  gids.assign(n, 0);
  if (group_by_.empty()) {
    // Global aggregate: one group with no key columns.
    if (group_rows_.empty()) {
      group_rows_.push_back(0);
      group_hashes_.push_back(0);
      group_first_seen_.push_back(order_ids != nullptr ? order_ids[0]
                                                       : order_base_);
      AppendAccums();
    }
  } else {
    // Adopt dict encodings before constructing the comparator, so even the
    // first partial verifies candidates by code compare.
    for (size_t k = 0; k < key_cols.size(); ++k) {
      const Column& src = partial.column(key_cols[k]);
      if (src.is_dict()) group_keys_.mutable_column(k)->AdoptDict(src.dict());
    }
    const Column& kc = partial.column(key_cols[0]);
    if (key_cols.size() == 1 && kc.is_dict() &&
        group_keys_.column(0).dict().get() == kc.dict().get()) {
      // Dict group key sharing the stored keys' dict: group ids resolve
      // through the dense code table — no hashing at all.
      AssignGroupsByCode(partial, key_cols, kc, gids.data(), n);
    } else {
      static thread_local std::vector<uint64_t> hashes;
      partial.HashRowsBatch(key_cols, &hashes);
      KeyEq eq(partial, key_cols, group_keys_, stored_key_cols_);
      constexpr size_t kPrefetchAhead = 8;
      for (size_t r = 0; r < n; ++r) {
        if (r + kPrefetchAhead < n) {
          key_index_.Prefetch(hashes[r + kPrefetchAhead]);
        }
        gids[r] = FindOrCreateGroup(hashes[r], partial, key_cols, r, eq);
      }
    }
  }
  for (size_t r = 0; r < n; ++r) ++group_rows_[gids[r]];
  total_rows_ += n;

  // Phase 2: accumulate column-at-a-time — one function/type dispatch per
  // aggregate, then a tight per-row loop over that aggregate's dense
  // HotAccum array (32 bytes per group).
  for (size_t a = 0; a < num_aggs; ++a) {
    HotAccum* hot = hot_[a].data();
    const Column* col = in_cols[a];
    if (col == nullptr) {  // count(*)
      for (size_t r = 0; r < n; ++r) ++hot[gids[r]].count;
      continue;
    }
    const bool nulls = col->has_nulls();
    switch (aggs_[a].func) {
      case AggFunc::kCount:
        for (size_t r = 0; r < n; ++r) {
          if (nulls && col->IsNull(r)) continue;
          ++hot[gids[r]].count;
        }
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
      case AggFunc::kVar:
      case AggFunc::kStddev: {
        const std::vector<double>* vars = in_vars[a];
        const int64_t* ip =
            IsIntPhysical(col->type()) ? col->ints().data() : nullptr;
        const double* dp = ip == nullptr ? col->doubles().data() : nullptr;
        for (size_t r = 0; r < n; ++r) {
          if (nulls && col->IsNull(r)) continue;
          HotAccum& acc = hot[gids[r]];
          double v = ip != nullptr ? static_cast<double>(ip[r]) : dp[r];
          acc.sum += v;
          acc.sumsq += v * v;
          ++acc.count;
          if (vars != nullptr) acc.var_in_sum += (*vars)[r];
        }
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        const bool is_min = aggs_[a].func == AggFunc::kMin;
        ColdAccum* cold = cold_[a].data();
        for (size_t r = 0; r < n; ++r) {
          if (nulls && col->IsNull(r)) continue;
          ColdAccum& acc = cold[gids[r]];
          Value v = col->GetValue(r);
          bool replace = !acc.has_extreme ||
                         (is_min ? v < acc.extreme : acc.extreme < v);
          if (replace) {
            acc.extreme = std::move(v);
            acc.has_extreme = true;
          }
        }
        break;
      }
      case AggFunc::kCountDistinct: {
        ColdAccum* cold = cold_[a].data();
        for (size_t r = 0; r < n; ++r) {
          if (nulls && col->IsNull(r)) continue;
          cold[gids[r]].distinct.insert(DistinctKey(*col, r));
        }
        break;
      }
      case AggFunc::kMedian: {
        ColdAccum* cold = cold_[a].data();
        for (size_t r = 0; r < n; ++r) {
          if (nulls && col->IsNull(r)) continue;
          cold[gids[r]].samples.push_back(col->DoubleAt(r));
        }
        break;
      }
    }
  }
}

void GroupedAggState::CombineGroup(uint32_t gid, const GroupedAggState& other,
                                   uint32_t g) {
  group_rows_[gid] += other.group_rows_[g];
  if (other.group_first_seen_[g] < group_first_seen_[gid]) {
    group_first_seen_[gid] = other.group_first_seen_[g];
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    HotAccum& d = hot_[a][gid];
    const HotAccum& s = other.hot_[a][g];
    d.sum += s.sum;
    d.sumsq += s.sumsq;
    d.count += s.count;
    d.var_in_sum += s.var_in_sum;
    if (!NeedsCold(aggs_[a].func)) continue;
    ColdAccum& dc = cold_[a][gid];
    const ColdAccum& sc = other.cold_[a][g];
    switch (aggs_[a].func) {
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (!sc.has_extreme) break;
        const bool is_min = aggs_[a].func == AggFunc::kMin;
        if (!dc.has_extreme ||
            (is_min ? sc.extreme < dc.extreme : dc.extreme < sc.extreme)) {
          dc.extreme = sc.extreme;
          dc.has_extreme = true;
        }
        break;
      }
      case AggFunc::kCountDistinct:
        dc.distinct.insert(sc.distinct.begin(), sc.distinct.end());
        break;
      case AggFunc::kMedian:
        dc.samples.insert(dc.samples.end(), sc.samples.begin(),
                          sc.samples.end());
        break;
      default:
        break;
    }
  }
}

void GroupedAggState::MergeGroupList(const GroupedAggState& other,
                                     const uint32_t* gids, size_t count) {
  // Adopt dict encodings so candidate verification compares codes.
  for (size_t k = 0; k < stored_key_cols_.size(); ++k) {
    const Column& src = other.group_keys_.column(k);
    if (src.is_dict()) group_keys_.mutable_column(k)->AdoptDict(src.dict());
  }
  KeyEq eq(other.group_keys_, other.stored_key_cols_, group_keys_,
           stored_key_cols_);
  // Created groups inherit the source group's first-appearance rank.
  order_ids_ = other.group_first_seen_.data();
  for (size_t i = 0; i < count; ++i) {
    uint32_t g = gids[i];
    uint32_t gid =
        FindOrCreateGroup(other.group_hashes_[g], other.group_keys_,
                          other.stored_key_cols_, g, eq);
    CombineGroup(gid, other, g);
  }
  order_ids_ = nullptr;
}

void GroupedAggState::MergeGroups(const GroupedAggState& other) {
  if (!other.shards_.empty()) {
    for (const auto& s : other.shards_) MergeGroups(*s);
    return;
  }
  size_t src_groups = other.group_rows_.size();
  if (src_groups == 0) return;
  if (group_by_.empty()) {
    // Global aggregate: at most one group on each side.
    if (group_rows_.empty()) {
      group_rows_.push_back(0);
      group_hashes_.push_back(0);
      group_first_seen_.push_back(other.group_first_seen_[0]);
      AppendAccums();
    }
    CombineGroup(0, other, 0);
    return;
  }
  if (!shards_.empty()) {
    // Sharded destination: groups go to the shard owning their hash. The
    // adopted groups may carry ranks below (or lower the rank of) groups
    // already in the snapshot view, so the cached ordering is stale.
    InvalidateView();
    std::vector<std::vector<uint32_t>> buckets(num_shards_);
    for (uint32_t g = 0; g < src_groups; ++g) {
      buckets[ShardOf(other.group_hashes_[g])].push_back(g);
    }
    for (size_t s = 0; s < num_shards_; ++s) {
      if (!buckets[s].empty()) {
        shards_[s]->MergeGroupList(other, buckets[s].data(),
                                   buckets[s].size());
      }
    }
    return;
  }
  std::vector<uint32_t> all(src_groups);
  std::iota(all.begin(), all.end(), 0u);
  MergeGroupList(other, all.data(), all.size());
}

void GroupedAggState::Merge(const GroupedAggState& other) {
  CheckArg(group_by_.size() == other.group_by_.size() &&
               aggs_.size() == other.aggs_.size(),
           "merge of incompatible aggregation states");
  MergeGroups(other);
  total_rows_ += other.total_rows_;
}

double GroupedAggState::MeanGroupCardinality() const {
  size_t groups = num_groups();
  if (groups == 0) return 0.0;
  return static_cast<double>(total_rows_) / static_cast<double>(groups);
}

void GroupedAggState::InvalidateView() const {
  view_valid_ = false;
  view_refs_.clear();  // refs may point at shards about to be destroyed
  view_keys_ = DataFrame();
  view_seen_.clear();
  view_max_rank_ = 0;
}

void GroupedAggState::RefreshView() const {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!view_valid_) {
      view_refs_.clear();
      view_keys_ = DataFrame(group_keys_.schema());
      view_seen_.assign(shards_.size(), 0);
      view_max_rank_ = 0;
      view_valid_ = true;
    }
    // Collect the groups each shard created since the last refresh.
    // Within a shard, groups append in creation order, so view_seen_[s]
    // is a high-water mark; ranks are globally unique (the global index
    // of the group's first input row).
    struct Fresh {
      uint64_t rank;
      uint32_t shard;
      uint32_t g;
    };
    std::vector<Fresh> fresh;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const GroupedAggState& sh = *shards_[s];
      for (size_t g = view_seen_[s]; g < sh.group_rows_.size(); ++g) {
        fresh.push_back({sh.group_first_seen_[g], static_cast<uint32_t>(s),
                         static_cast<uint32_t>(g)});
      }
      view_seen_[s] = sh.group_rows_.size();
    }
    if (fresh.empty()) return;
    std::sort(fresh.begin(), fresh.end(), [](const Fresh& a, const Fresh& b) {
      return a.rank != b.rank ? a.rank < b.rank
                              : (a.shard != b.shard ? a.shard < b.shard
                                                    : a.g < b.g);
    });
    if (!view_refs_.empty() && fresh.front().rank < view_max_rank_) {
      // A group appeared below the view's frontier (a Merge adopted
      // earlier-ranked groups): the cached ordering is wrong — rebuild
      // the view from scratch on the next pass.
      view_valid_ = false;
      continue;
    }
    // Append the fresh groups in rank order. Adopting the shards' key
    // dicts first keeps the cached key columns code-encoded (mirrors
    // MergeGroupList).
    for (size_t s = 0; s < shards_.size(); ++s) {
      for (size_t k = 0; k < view_keys_.num_columns(); ++k) {
        const Column& src = shards_[s]->group_keys_.column(k);
        if (src.is_dict()) view_keys_.mutable_column(k)->AdoptDict(src.dict());
      }
    }
    for (const Fresh& f : fresh) {
      const GroupedAggState& sh = *shards_[f.shard];
      view_refs_.push_back({&sh, f.g});
      for (size_t k = 0; k < view_keys_.num_columns(); ++k) {
        view_keys_.mutable_column(k)->AppendFrom(sh.group_keys_.column(k),
                                                 f.g);
      }
    }
    view_max_rank_ = fresh.back().rank;
    view_merge_ops_ += fresh.size();
    return;
  }
}

AggResult GroupedAggState::Finalize(const AggScaling& scaling) const {
  if (!shards_.empty()) {
    // Incremental snapshot view: fold in only the groups that appeared
    // since the previous Finalize (no key can live in two shards, and
    // accumulators are read in place, so existing refs stay current).
    // The view holds the global first-appearance order, reproducing the
    // serial output byte for byte.
    RefreshView();
    return FinalizeRefs(scaling, view_refs_, view_keys_);
  }

  size_t num_groups = group_rows_.size();

  // Output rows appear in group first-appearance order. The serial path
  // creates groups in that order already (order == identity); merged
  // states need the permutation.
  bool identity = std::is_sorted(group_first_seen_.begin(),
                                 group_first_seen_.end());
  std::vector<GroupRef> refs(num_groups);
  if (identity) {
    for (uint32_t g = 0; g < num_groups; ++g) refs[g] = {this, g};
    return FinalizeRefs(scaling, refs, group_keys_);
  }
  std::vector<uint32_t> order(num_groups);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [this](uint32_t a, uint32_t b) {
                     return group_first_seen_[a] < group_first_seen_[b];
                   });
  for (size_t oi = 0; oi < num_groups; ++oi) refs[oi] = {this, order[oi]};
  DataFrame keys(group_keys_.schema());
  for (size_t k = 0; k < keys.num_columns(); ++k) {
    *keys.mutable_column(k) = group_keys_.column(k).Take(order);
  }
  return FinalizeRefs(scaling, refs, keys);
}

AggResult GroupedAggState::FinalizeRefs(const AggScaling& scaling,
                                        const std::vector<GroupRef>& refs,
                                        const DataFrame& keys) const {
  AggResult out;
  out.frame = DataFrame(output_schema_);
  size_t num_groups = refs.size();
  size_t num_keys = group_by_.size();

  // Group key columns come straight from the (view or stored) key frame.
  for (size_t k = 0; k < num_keys; ++k) {
    *out.frame.mutable_column(k) = keys.column(k);
  }

  bool scale = scaling.enabled && scaling.t > 0.0 && scaling.t < 1.0;

  std::vector<std::vector<double>*> var_cols(aggs_.size(), nullptr);
  if (scaling.with_ci) {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      var_cols[a] = &out.variances[aggs_[a].output];
      var_cols[a]->assign(num_groups, 0.0);
    }
  }

  for (size_t a = 0; a < aggs_.size(); ++a) {
    Column* col = out.frame.mutable_column(num_keys + a);
    col->Reserve(num_groups);
    static const ColdAccum kNoCold;
    for (size_t oi = 0; oi < num_groups; ++oi) {
      const GroupedAggState& src = *refs[oi].src;
      const uint32_t g = refs[oi].g;
      const HotAccum& acc = src.hot_[a][g];
      const ColdAccum& cold =
          src.cold_[a].empty() ? kNoCold : src.cold_[a][g];
      double x = static_cast<double>(src.group_rows_[g]);
      double xhat = scale ? EstimateCardinality(x, scaling.t, scaling.w) : x;
      double var_xhat = 0.0;
      if (scaling.with_ci && scale) {
        // Eq 10: Var(x̂) = (x̂ ln(1/t))² Var(w).
        double lg = std::log(1.0 / scaling.t);
        var_xhat = xhat * xhat * lg * lg * scaling.var_w;
      }
      double ci_var = 0.0;
      switch (aggs_[a].func) {
        case AggFunc::kCount: {
          // Non-null counts scale like the group cardinality.
          double c = static_cast<double>(acc.count);
          double est = scale && x > 0 ? EstimateSum(c, x, xhat) : c;
          col->AppendInt(static_cast<int64_t>(std::llround(est)));
          ci_var = var_xhat;
          break;
        }
        case AggFunc::kSum: {
          double est = scale && x > 0 ? EstimateSum(acc.sum, x, xhat)
                                      : acc.sum;
          if (col->type() == ValueType::kInt64) {
            col->AppendInt(static_cast<int64_t>(std::llround(est)));
          } else {
            col->AppendDouble(est);
          }
          if (scaling.with_ci) {
            // Eq 13 with CLT sample variance of the addends, plus the
            // accumulated input variances scaled by (x̂/x)².
            double c = static_cast<double>(acc.count);
            double s2 = 0.0;
            if (c > 1.0) {
              double mean = acc.sum / c;
              s2 = std::max(0.0, acc.sumsq / c - mean * mean);
            }
            double var_y = s2 * c;
            double ratio = x > 0 ? xhat / x : 1.0;
            ci_var = x > 0 ? (var_y * xhat * xhat +
                              var_xhat * acc.sum * acc.sum) /
                                 (x * x)
                           : 0.0;
            ci_var += ratio * ratio * acc.var_in_sum;
            if (!scale) ci_var = acc.var_in_sum;
          }
          break;
        }
        case AggFunc::kAvg: {
          double est = acc.count > 0 ? acc.sum / acc.count : 0.0;
          if (acc.count == 0) {
            col->AppendNull();
          } else {
            col->AppendDouble(est);
          }
          if (scaling.with_ci && acc.count > 1) {
            double c = static_cast<double>(acc.count);
            double mean = acc.sum / c;
            double s2 = std::max(0.0, acc.sumsq / c - mean * mean);
            ci_var = s2 / c;  // CLT variance of the sample mean
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          if (!cold.has_extreme) {
            col->AppendNull();
          } else {
            col->AppendValue(cold.extreme);  // order statistics: identity
          }
          break;
        }
        case AggFunc::kCountDistinct: {
          double d = static_cast<double>(cold.distinct.size());
          double est =
              scale && x > 0 ? EstimateCountDistinct(d, x, xhat) : d;
          col->AppendInt(static_cast<int64_t>(std::llround(est)));
          if (scaling.with_ci && scale && x > 0 && est > 0) {
            // Eq 19 with Var(y) = 0: Var(f_cd) = Var(x̂)·(∂Y/∂x̂)². The
            // derivative is taken numerically through the full MM1 solve —
            // h in Eq 7 depends on x̂ both via z = x̂/Y and via the gamma
            // arguments, so the z-partial alone (Eq 18's h′ term) would
            // understate the sensitivity.
            double eps = std::max(1e-4 * xhat, 1e-6);
            double d_hi = EstimateCountDistinct(d, x, xhat + eps);
            double d_lo = EstimateCountDistinct(d, x, xhat - eps);
            double dy_dxhat = (d_hi - d_lo) / (2.0 * eps);
            ci_var = var_xhat * dy_dxhat * dy_dxhat;
          }
          break;
        }
        case AggFunc::kVar:
        case AggFunc::kStddev: {
          if (acc.count == 0) {
            col->AppendNull();
            break;
          }
          double c = static_cast<double>(acc.count);
          double mean = acc.sum / c;
          double v = std::max(0.0, acc.sumsq / c - mean * mean);
          col->AppendDouble(aggs_[a].func == AggFunc::kVar ? v
                                                           : std::sqrt(v));
          break;
        }
        case AggFunc::kMedian: {
          // Order-statistic estimator: the sample median of the observed
          // rows is the estimate (identity f_order, §5.3). Lower-median
          // convention for even counts keeps merges deterministic.
          if (cold.samples.empty()) {
            col->AppendNull();
            break;
          }
          std::vector<double> values = cold.samples;
          size_t mid = (values.size() - 1) / 2;
          std::nth_element(values.begin(), values.begin() + mid,
                           values.end());
          col->AppendDouble(values[mid]);
          break;
        }
      }
      if (scaling.with_ci) (*var_cols[a])[oi] = ci_var;
    }
  }
  return out;
}

}  // namespace wake
